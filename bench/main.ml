(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md 3 for the experiment index).

   Usage: main.exe [options] [experiment ...]
   Experiments: table2 table3 table5 fig4 fig5 fig6 fig7 fig8 fig9 spec
                ablation_split ablation_inter ablation_clusters
                layout_search micro quick all (default: all)

   Options:
     --json-out FILE       also write a machine-readable BENCH_*.json
                           (schema in EXPERIMENTS.md); when no
                           experiments are named, only the JSON is
                           produced
     --json-bench A,B,...  benchmarks to include in the JSON
                           (default: 505.mcf)
     --json-requests N     workload-requests override for the JSON
                           benchmarks (keeps CI runs fast) *)

let experiments =
  [
    ("table2", Experiments.table2);
    ("table3", Experiments.table3);
    ("table5", Experiments.table5);
    ("fig4", Experiments.fig4);
    ("fig5", Experiments.fig5);
    ("fig6", Experiments.fig6);
    ("fig7", Experiments.fig7);
    ("fig8", Experiments.fig8);
    ("fig9", Experiments.fig9);
    ("spec", Experiments.spec_sweep);
    ("ablation_split", Experiments.ablation_split);
    ("ablation_rounds", Experiments.ablation_rounds);
    ("ablation_prefetch", Experiments.ablation_prefetch);
    ("ablation_inter", Experiments.ablation_inter);
    ("ablation_clusters", Experiments.ablation_clusters);
    ("layout_search", Experiments.layout_search);
    ("micro", Micro.run);
  ]

let quick () =
  (* A fast sanity pass on the smallest benchmark only. *)
  let wb = Workbench.get (Option.get (Progen.Suite.by_name "505.mcf")) in
  Printf.printf "quick: mcf propeller %+.2f%%, bolt %+.2f%% vs base\n"
    (Workbench.improvement_pct wb Workbench.Prop)
    (Workbench.improvement_pct wb Workbench.Bolt)

let run_one name =
  match List.assoc_opt name experiments with
  | Some f ->
    let t0 = Unix.gettimeofday () in
    f ();
    Printf.printf "\n[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)
  | None ->
    if name = "quick" then quick ()
    else begin
      Printf.eprintf "unknown experiment %S; available: quick all %s\n" name
        (String.concat " " (List.map fst experiments));
      exit 2
    end

type options = {
  mutable json_out : string option;
  mutable json_bench : string list;
  mutable json_requests : int option;
  mutable jobs : int option;
  mutable jobs_sweep : int list;
  mutable names : string list;  (* experiments, in order *)
}

let usage_exit () =
  Printf.eprintf
    "usage: main.exe [--json-out FILE] [--json-bench A,B] [--json-requests N] [--jobs N] \
     [--jobs-sweep 1,2,8] [experiment ...]\n";
  exit 2

let parse_args argv =
  let o =
    {
      json_out = None;
      json_bench = [ "505.mcf" ];
      json_requests = None;
      jobs = None;
      jobs_sweep = [ 1; 2; 4 ];
      names = [];
    }
  in
  let positive flag n =
    match int_of_string_opt n with
    | Some n when n > 0 -> n
    | _ ->
      Printf.eprintf "%s: positive integer expected, got %S\n" flag n;
      exit 2
  in
  let rec go = function
    | [] -> o
    | "--json-out" :: file :: rest ->
      o.json_out <- Some file;
      go rest
    | "--json-bench" :: names :: rest ->
      o.json_bench <- String.split_on_char ',' names;
      go rest
    | "--json-requests" :: n :: rest ->
      o.json_requests <- Some (positive "--json-requests" n);
      go rest
    | "--jobs" :: n :: rest ->
      o.jobs <- Some (positive "--jobs" n);
      go rest
    | "--jobs-sweep" :: ns :: rest ->
      o.jobs_sweep <-
        List.map (positive "--jobs-sweep") (String.split_on_char ',' ns);
      go rest
    | ("--json-out" | "--json-bench" | "--json-requests" | "--jobs" | "--jobs-sweep") :: [] ->
      usage_exit ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage_exit ()
    | name :: rest ->
      o.names <- o.names @ [ name ];
      go rest
  in
  go (List.tl (Array.to_list argv))

let emit_json o file =
  let specs =
    List.map
      (fun name ->
        match Progen.Suite.by_name name with
        | Some s -> s
        | None ->
          Printf.eprintf "--json-bench: unknown benchmark %S\n" name;
          exit 2)
      o.json_bench
  in
  Jsonout.emit ~jobs_sweep:o.jobs_sweep ~file ~specs ~requests:o.json_requests ()

let () =
  let o = parse_args Sys.argv in
  (match o.jobs with Some j -> Support.Pool.set_default_jobs j | None -> ());
  let names =
    match (o.names, o.json_out) with
    | [], Some _ -> []  (* JSON-only run *)
    | [], None | [ "all" ], _ -> List.map fst experiments
    | names, _ -> names
  in
  Printf.printf "Propeller reproduction bench (deterministic; seeds fixed)\n%!";
  let t0 = Unix.gettimeofday () in
  List.iter run_one names;
  Option.iter (emit_json o) o.json_out;
  if names <> [] then
    Printf.printf "\nTotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)

(* Builds and memoizes every artifact an experiment can ask for about
   one benchmark: the program, the baseline / metadata / optimized /
   BOLT binaries, the shared hardware profile, and the measured
   performance counters of each binary. *)

type measurement = { stats : Exec.Interp.stats; counters : Uarch.Core.counters }

type t = {
  spec : Progen.Spec.t;
  program : Ir.Program.t;
  env : Buildsys.Driver.env;
  base : Buildsys.Driver.result;
  prop : Propeller.Pipeline.result;
  bm : Buildsys.Driver.result;  (* --emit-relocs build for BOLT *)
  bolt : Boltsim.Driver.result;
  mutable measured : (string * measurement) list;
}

let interp_config (spec : Progen.Spec.t) =
  { Exec.Interp.default_config with requests = spec.requests }

let pipeline_config (spec : Progen.Spec.t) =
  {
    Propeller.Pipeline.default_config with
    profile_run = interp_config spec;
    hugepages = spec.hugepages;
  }

let is_asm program f =
  match Ir.Program.find_func program f with
  | Some fn -> fn.Ir.Func.attrs.has_inline_asm
  | None -> false

let bolt_hazards (spec : Progen.Spec.t) =
  { Boltsim.Driver.rseq = spec.hazards.has_rseq; fips_check = spec.hazards.has_fips_check }

let log2i v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

(* Pressure-preserving measurement core: programs generated at 1/2^k
   scale are measured with TLB pages shrunk by the same factor
   (DESIGN.md 6). *)
let core_config (spec : Progen.Spec.t) =
  {
    Uarch.Core.default_config with
    hugepages = spec.hugepages;
    page_scale_bits = log2i spec.scale;
  }

let build spec =
  (* Phase 1 includes ThinLTO-style cross-unit inlining — the transform
     that makes instrumented profiles stale (paper 2.2). *)
  let program = Codegen.Inline.program (Progen.Generate.program spec) in
  let env = Buildsys.Driver.make_env () in
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name:spec.Progen.Spec.name in
  let prop =
    Propeller.Pipeline.run ~config:(pipeline_config spec) ~env ~program
      ~name:spec.Progen.Spec.name ()
  in
  (* The BM build shares codegen flags with the baseline, so its object
     actions all hit the cache; only the link differs. *)
  let bm =
    Buildsys.Driver.build env ~name:(spec.Progen.Spec.name ^ ".bm") ~program
      ~codegen_options:Codegen.default_options
      ~link_options:{ Linker.Link.default_options with emit_relocs = true }
  in
  (* The same hardware profile drives Propeller and BOLT (§5
     methodology); PM and BM binaries share their text layout. *)
  let bolt =
    Boltsim.Driver.optimize ~profile:prop.profile ~binary:bm.binary
      ~is_asm:(is_asm program) ~hazards:(bolt_hazards spec) ~name:spec.Progen.Spec.name ()
  in
  { spec; program; env; base; prop; bm; bolt; measured = [] }

let cache : (string, t) Hashtbl.t = Hashtbl.create 16

let get spec =
  match Hashtbl.find_opt cache spec.Progen.Spec.name with
  | Some wb -> wb
  | None ->
    Printf.printf "[workbench: building %s ...]\n%!" spec.Progen.Spec.name;
    let wb = build spec in
    Hashtbl.replace cache spec.Progen.Spec.name wb;
    wb

type variant = Base | Prop | Bolt

let variant_name = function Base -> "base" | Prop -> "propeller" | Bolt -> "bolt"

let binary wb = function
  | Base -> wb.base.binary
  | Prop -> Propeller.Pipeline.optimized_binary wb.prop
  | Bolt -> wb.bolt.Boltsim.Driver.binary

let measure wb variant =
  let key = variant_name variant in
  match List.assoc_opt key wb.measured with
  | Some m -> m
  | None ->
    let image = Exec.Image.build wb.program (binary wb variant) in
    let core = Uarch.Core.create (core_config wb.spec) in
    let stats =
      Exec.Interp.run_tape ~ctx:wb.env.Buildsys.Driver.ctx image (interp_config wb.spec)
        ~drain:(Uarch.Core.consume core)
    in
    let m = { stats; counters = Uarch.Core.counters core } in
    wb.measured <- (key, m) :: wb.measured;
    m

(* Performance improvement over baseline in the benchmark's own metric
   (walltime / latency / QPS all reduce to a cycle ratio here). *)
let improvement_pct wb variant =
  let b = (measure wb Base).counters.cycles in
  let v = (measure wb variant).counters.cycles in
  match wb.spec.metric with
  | `Walltime | `Latency -> (b -. v) /. b *. 100.0
  | `Qps -> ((b /. v) -. 1.0) *. 100.0

let metric_name (spec : Progen.Spec.t) =
  match spec.metric with `Walltime -> "Walltime" | `Latency -> "Latency" | `Qps -> "QPS"

(* Machine-readable bench output: one BENCH_*.json per run, stable
   schema (EXPERIMENTS.md "Bench JSON schema"), so successive PRs
   accumulate a perf trajectory and `propeller_stat diff` can gate
   regressions in CI. Everything here is a function of the simulated
   run: same seeds, byte-identical file. *)

(* v2: per-benchmark "size" object (hot/cold text, metadata and total
   bytes of the base/pm/po images, from Inspect.Size).
   v3: per-benchmark "parallel" object — the --jobs sweep (measured
   wall-clock, so NOT byte-stable run to run) plus relink-cache hit
   rates. Informational only: Compare's judged allowlist ignores it.
   v4: per-benchmark "resilience" object — a seeded fault-injection
   replay (retry/degradation counts, replay consistency, and the
   degraded=0 => fault-free-digest invariant). Informational only and
   fully deterministic.
   v5: per-benchmark "selfspeed" object — how fast the *optimizer*
   itself runs on this machine: warm relinks/sec, simulated
   requests/sec, allocation per relink. Wall-clock, so NOT byte-stable;
   relinks_per_sec and requests_per_sec are judged by Compare with a
   10x-widened tolerance (ROADMAP item 4's raw-speed trajectory).
   v6: per-benchmark "fleet" object — a quiesced continuous-profiling
   loop over a small simulated fleet: per-cycle cycles-per-request
   trajectory, canary verdicts, and how many relinks the loop needs to
   converge. Simulated clocks only, so fully deterministic.
   Informational only: Compare's judged allowlist ignores it.
   v7: per-benchmark "fidelity" object — the LBR-vs-sampled
   profile-source gap (ISSUE 8): both pipelines over the same workload,
   per-function weight correlation, achieved fall-through rate, Ext-TSP
   score and simulated cycles per source. Fully deterministic.
   Informational only: Compare's judged allowlist ignores it.
   v8: top-level "micro" object — self-timed ns/call of the flat-data
   fast-path kernels (packed-key LBR bump, flat Ext-TSP scoring, batch
   address resolution), so a selfspeed move is attributable to the
   kernel that caused it. Wall-clock, so NOT byte-stable; informational
   only: Compare's judged allowlist ignores it.
   v9: per-benchmark "layout_search" object — the cycle-fitness layout
   policy tournament (ISSUE 10): every registered policy plus mutated
   Ext-TSP variants are relinked and executed through exec+uarch, and
   the object records the winner, its cycles vs the Ext-TSP candidate,
   and the measured Ext-TSP-score-vs-cycles disagreement. Simulated
   clocks only, fully deterministic. Informational only: Compare's
   judged allowlist ignores it. *)
let schema_version = 9

let counters_json (c : Uarch.Core.counters) =
  Obs.Json.Obj
    (List.map (fun (k, v) -> (k, Obs.Json.Int v)) (Uarch.Core.counters_assoc c)
    @ [ ("cycles", Obs.Json.Float c.cycles) ])

(* One sweep point: a fresh env + pool at the given width, a cold
   pipeline run (empty caches), then a warm rerun of the identical
   input (every layout and object action should hit). Wall-clock is
   real time (Unix.gettimeofday); everything else — digests, cache
   accounting — is deterministic and must agree across widths. *)
let sweep_point ~config ~program ~(spec : Progen.Spec.t) jobs =
  Support.Pool.with_pool ~jobs (fun pool ->
      let recorder = Obs.Recorder.create () in
      let env =
        Buildsys.Driver.make_env ~ctx:(Support.Ctx.create ~recorder ~pool ()) ()
      in
      let t0 = Unix.gettimeofday () in
      let cold = Propeller.Pipeline.run ~config ~env ~program ~name:spec.name () in
      let t1 = Unix.gettimeofday () in
      let obj_cache = env.Buildsys.Driver.obj_cache in
      let h0 = Buildsys.Cache.hits obj_cache and m0 = Buildsys.Cache.misses obj_cache in
      let warm = Propeller.Pipeline.run ~config ~env ~program ~name:spec.name () in
      let t2 = Unix.gettimeofday () in
      let digest =
        Support.Digesting.to_hex
          (Linker.Binary.image_digest (Propeller.Pipeline.optimized_binary cold))
      in
      let warm_digest =
        Support.Digesting.to_hex
          (Linker.Binary.image_digest (Propeller.Pipeline.optimized_binary warm))
      in
      let layout_hit_rate =
        let h = warm.wpa.layout_cache_hits and m = warm.wpa.layout_cache_misses in
        if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
      in
      let obj_hit_rate =
        (* Warm-delta rate, like the layout one: lookups of the rerun only. *)
        let h = Buildsys.Cache.hits obj_cache - h0
        and m = Buildsys.Cache.misses obj_cache - m0 in
        if h + m = 0 then 0.0 else float_of_int h /. float_of_int (h + m)
      in
      let critical_path_s =
        Buildsys.Scheduler.critical_path cold.optimized_build.codegen_report
      in
      ( digest,
        warm_digest,
        t1 -. t0,
        t2 -. t1,
        fun ~cold_1 ->
          Obs.Json.Obj
            [
              ("jobs", Obs.Json.Int jobs);
              ("cold_wall_s", Obs.Json.Float (t1 -. t0));
              ("warm_wall_s", Obs.Json.Float (t2 -. t1));
              ( "speedup_vs_jobs1",
                Obs.Json.Float (if t1 -. t0 > 0.0 then cold_1 /. (t1 -. t0) else 1.0) );
              ("layout_cache_hit_rate_warm", Obs.Json.Float layout_hit_rate);
              ("obj_cache_hit_rate_warm", Obs.Json.Float obj_hit_rate);
              ("critical_path_s", Obs.Json.Float critical_path_s);
              ("image_digest", Obs.Json.String digest);
              ("warm_equals_cold", Obs.Json.Bool (String.equal digest warm_digest));
            ] ))

let parallel_json (spec : Progen.Spec.t) ~jobs_sweep =
  match jobs_sweep with
  | [] -> None
  | sweep ->
    let program = Codegen.Inline.program (Progen.Generate.program spec) in
    let config = Workbench.pipeline_config spec in
    let points = List.map (fun j -> sweep_point ~config ~program ~spec j) sweep in
    let cold_1 =
      match points with (_, _, cold_s, _, _) :: _ -> cold_s | [] -> 0.0
    in
    let digests = List.map (fun (d, _, _, _, _) -> d) points in
    let consistent =
      match digests with [] -> true | d :: rest -> List.for_all (String.equal d) rest
    in
    Some
      (Obs.Json.Obj
         [
           ("sweep", Obs.Json.List (List.map (fun (_, _, _, _, f) -> f ~cold_1) points));
           ("digests_consistent", Obs.Json.Bool consistent);
         ])

(* The canonical fault plan of a benchmark's resilience drill: rates
   high enough that every fault class fires on small programs, seeded
   from the benchmark's own seed so the drill is stable run to run. *)
let fault_plan (spec : Progen.Spec.t) =
  match
    Faultsim.Plan.of_spec
      (Printf.sprintf
         "seed=%d,action=0.2,persist=0.1,straggle=0.1,corrupt=0.15,shard-drop=0.1"
         (Int64.to_int spec.seed land 0xffff))
  with
  | Ok p -> p
  | Error e -> failwith ("Jsonout.fault_plan: " ^ e)

let add_faults (a : Buildsys.Driver.fault_stats) (b : Buildsys.Driver.fault_stats) =
  {
    Buildsys.Driver.injected = a.injected + b.injected;
    retried = a.retried + b.retried;
    degraded = a.degraded + b.degraded;
    fallbacks = a.fallbacks + b.fallbacks;
    corrupt_evicted = a.corrupt_evicted + b.corrupt_evicted;
    stragglers = a.stragglers + b.stragglers;
    speculated = a.speculated + b.speculated;
    backoff_seconds = a.backoff_seconds +. b.backoff_seconds;
  }

(* One pipeline run on a fresh env, optionally under a fault plan. *)
let faulted_run ~config ~program ~(spec : Progen.Spec.t) plan =
  Support.Pool.with_pool ~jobs:1 (fun pool ->
      let recorder = Obs.Recorder.create () in
      let ctx = Support.Ctx.create ~recorder ~pool ?faults:plan () in
      let env = Buildsys.Driver.make_env ~ctx () in
      let r = Propeller.Pipeline.run ~config ~env ~program ~name:spec.name () in
      let digest =
        Support.Digesting.to_hex
          (Linker.Binary.image_digest (Propeller.Pipeline.optimized_binary r))
      in
      (digest, r))

(* The resilience drill: a fault-free reference run, then the same
   input twice under the canonical plan. Everything in the emitted
   object is deterministic (counts and digests, no wall clock), so the
   bench file stays byte-stable. Informational only: Compare's judged
   allowlist ignores it. *)
let resilience_json (spec : Progen.Spec.t) =
  let program = Codegen.Inline.program (Progen.Generate.program spec) in
  let config = Workbench.pipeline_config spec in
  let plan = fault_plan spec in
  let clean_digest, _ = faulted_run ~config ~program ~spec None in
  let d1, r1 = faulted_run ~config ~program ~spec (Some plan) in
  let d2, _ = faulted_run ~config ~program ~spec (Some plan) in
  let f = add_faults r1.metadata_build.faults r1.optimized_build.faults in
  let degraded_total = f.degraded + r1.wpa.dropped_hot_funcs in
  Obs.Json.Obj
    [
      ("plan", Obs.Json.String (Faultsim.Plan.to_spec plan));
      ("injected", Obs.Json.Int (f.injected + r1.wpa.shards_dropped));
      ("retried", Obs.Json.Int f.retried);
      ("degraded", Obs.Json.Int degraded_total);
      ("fallback_objects", Obs.Json.Int f.fallbacks);
      ("cache_corrupt_evicted", Obs.Json.Int f.corrupt_evicted);
      ("stragglers", Obs.Json.Int f.stragglers);
      ("speculated", Obs.Json.Int f.speculated);
      ("shards_dropped", Obs.Json.Int r1.wpa.shards_dropped);
      ("dropped_hot_funcs", Obs.Json.Int r1.wpa.dropped_hot_funcs);
      ("backoff_seconds", Obs.Json.Float f.backoff_seconds);
      ("replay_consistent", Obs.Json.Bool (String.equal d1 d2));
      ("image_digest", Obs.Json.String d1);
      ("fault_free_digest", Obs.Json.String clean_digest);
      ("matches_fault_free", Obs.Json.Bool (String.equal d1 clean_digest));
      ( "degradation_free_invariant_ok",
        Obs.Json.Bool (degraded_total > 0 || String.equal d1 clean_digest) );
    ]

let selfspeed_reps = 3

(* The optimizer-speed drill: one cold pipeline run to warm the relink
   caches, then [selfspeed_reps] timed warm reruns (the steady-state
   iteration loop a developer actually sits in), then one timed
   simulator pass over the optimized image. GC words are read around
   the timed reps so allocation is attributed per warm relink. *)
let selfspeed_json (spec : Progen.Spec.t) =
  let program = Codegen.Inline.program (Progen.Generate.program spec) in
  let config = Workbench.pipeline_config spec in
  Support.Pool.with_pool ~jobs:1 (fun pool ->
      let recorder = Obs.Recorder.create () in
      let env =
        Buildsys.Driver.make_env ~ctx:(Support.Ctx.create ~recorder ~pool ()) ()
      in
      let cold = Propeller.Pipeline.run ~config ~env ~program ~name:spec.name () in
      let gc0 = Obs.Hostclock.gc_snapshot () in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to selfspeed_reps do
        ignore
          (Propeller.Pipeline.run ~config ~env ~program ~name:spec.name ()
            : Propeller.Pipeline.result)
      done;
      let relink_s = Unix.gettimeofday () -. t0 in
      let gc1 = Obs.Hostclock.gc_snapshot () in
      let alloc_per_relink =
        Obs.Hostclock.allocated_words (Obs.Hostclock.gc_delta ~before:gc0 ~after:gc1)
        /. float_of_int selfspeed_reps
      in
      let image = Exec.Image.build program (Propeller.Pipeline.optimized_binary cold) in
      let t1 = Unix.gettimeofday () in
      let stats = Exec.Interp.run image (Workbench.interp_config spec) Exec.Event.null in
      let interp_s = Unix.gettimeofday () -. t1 in
      let per_sec dur n = if dur > 0.0 then float_of_int n /. dur else 0.0 in
      Obs.Json.Obj
        [
          ("warm_relinks_timed", Obs.Json.Int selfspeed_reps);
          ("relinks_per_sec", Obs.Json.Float (per_sec relink_s selfspeed_reps));
          ( "requests_per_sec",
            Obs.Json.Float (per_sec interp_s stats.Exec.Interp.requests_completed) );
          ("alloc_words_per_relink", Obs.Json.Float alloc_per_relink);
          ("relink_wall_s", Obs.Json.Float relink_s);
          ("interp_wall_s", Obs.Json.Float interp_s);
        ])

(* The fleet drill: the continuous profile -> relink -> canary loop on
   a small quiesced fleet (steady traffic, dense sampling, single-round
   window) so the fixed point is reachable within the drill. Fixed
   per-machine request count, independent of --json-requests, so the
   trajectory is comparable across bench files. *)
let fleet_json (spec : Progen.Spec.t) =
  let program = Progen.Generate.program spec in
  let config =
    {
      Fleet.Rollout.default_config with
      machines = 4;
      cycles = 3;
      canary = 1;
      requests = 60;
      jitter_pct = 0.0;
      window = 1;
      lbr = { Fleet.Rollout.default_config.lbr with Perfmon.Lbr.period = 1 };
    }
  in
  let ctx = Support.Ctx.create ~recorder:(Obs.Recorder.create ()) () in
  let r = Fleet.Rollout.run ~config ~ctx ~program ~name:spec.name () in
  let cycle_json (c : Fleet.Rollout.cycle_report) =
    Obs.Json.Obj
      [
        ("cycle", Obs.Json.Int c.cycle);
        ("verdict", Obs.Json.String (Fleet.Rollout.verdict_to_string c.verdict));
        ("cycles_per_request", Obs.Json.Float c.cycles_per_request);
        ("fall_through_rate", Obs.Json.Float c.fall_through_rate);
        ("mispredict_rate", Obs.Json.Float c.mispredict_rate);
        ("requests", Obs.Json.Int c.requests);
      ]
  in
  Obs.Json.Obj
    [
      ("machines", Obs.Json.Int config.machines);
      ("cycles", Obs.Json.Int config.cycles);
      ("requests_per_machine", Obs.Json.Int config.requests);
      ("trajectory", Obs.Json.List (List.map cycle_json r.reports));
      ("promotions", Obs.Json.Int r.promotions);
      ("rollbacks", Obs.Json.Int r.rollbacks);
      ("converged", Obs.Json.Bool r.converged);
      ( "converged_after_relinks",
        match r.converged_after_relinks with
        | Some n -> Obs.Json.Int n
        | None -> Obs.Json.Null );
      ("final_generation", Obs.Json.Int r.final_generation);
      ("final_digest", Obs.Json.String r.final_digest);
    ]

(* The profile-source fidelity gap: how much layout quality hardware
   branch records buy over portable software samples, on this very
   workload. Runs both pipelines (shared metadata build) plus the
   baseline; everything is on simulated clocks, so byte-stable. *)
let fidelity_json (spec : Progen.Spec.t) =
  let program = Progen.Generate.program spec in
  let ctx = Support.Ctx.create ~recorder:(Obs.Recorder.create ()) () in
  let fid =
    Diagnostics.Fidelity.analyze
      ~pipeline:(Workbench.pipeline_config spec)
      ~core:(Workbench.core_config spec)
      ~requests:spec.requests ~ctx ~program ~name:spec.name ()
  in
  Diagnostics.Fidelity.to_json fid

(* The layout-policy tournament: a small budget is enough to cover
   every registered policy (round 0) plus two mutation rounds. Seeded,
   simulated clocks only — byte-stable. *)
let layout_search_budget = 14

let layout_search_json (spec : Progen.Spec.t) =
  let program = Progen.Generate.program spec in
  let ctx = Support.Ctx.create ~recorder:(Obs.Recorder.create ()) () in
  let res =
    Diagnostics.Lsearch.analyze
      ~pipeline:(Workbench.pipeline_config spec)
      ~core:(Workbench.core_config spec)
      ~requests:spec.requests ~budget:layout_search_budget
      ~seed:(Int64.to_int spec.seed land 0xffff)
      ~ctx ~program ~name:spec.name ()
  in
  Diagnostics.Lsearch.to_json res

let benchmark_json ?(jobs_sweep = []) (spec : Progen.Spec.t) =
  let wb = Workbench.get spec in
  let prop_pct = Workbench.improvement_pct wb Workbench.Prop in
  let bolt_ok = wb.bolt.Boltsim.Driver.startup_ok in
  let bolt_pct = if bolt_ok then Some (Workbench.improvement_pct wb Workbench.Bolt) else None in
  let base = (Workbench.measure wb Workbench.Base).counters in
  let prop = (Workbench.measure wb Workbench.Prop).counters in
  let report =
    Diagnostics.Report.analyze ~name:spec.name ~counters:(base, prop) ~result:wb.prop ()
  in
  let size_totals binary = Inspect.Size.totals_json (Inspect.Size.measure binary) in
  let json =
    Obs.Json.Obj
      ([
        ("name", Obs.Json.String spec.name);
        ("seed", Obs.Json.Int (Int64.to_int spec.seed));
        ("scale", Obs.Json.Int spec.scale);
        ("requests", Obs.Json.Int spec.requests);
        ("metric", Obs.Json.String (Workbench.metric_name spec));
        ( "speedup_pct",
          Obs.Json.Obj
            [
              ("propeller", Obs.Json.Float prop_pct);
              ( "bolt",
                match bolt_pct with Some p -> Obs.Json.Float p | None -> Obs.Json.Null );
            ] );
        ("bolt_startup_ok", Obs.Json.Bool bolt_ok);
        ("diagnostics", Diagnostics.Report.to_json report);
        ( "size",
          Obs.Json.Obj
            [
              ("base", size_totals wb.base.Buildsys.Driver.binary);
              ("pm", size_totals wb.prop.Propeller.Pipeline.metadata_build.Buildsys.Driver.binary);
              ("po", size_totals (Propeller.Pipeline.optimized_binary wb.prop));
            ] );
        ( "counters",
          Obs.Json.Obj
            [ ("base", counters_json base); ("propeller", counters_json prop) ] );
        ("resilience", resilience_json spec);
        ("selfspeed", selfspeed_json spec);
        ("fleet", fleet_json spec);
        ("fidelity", fidelity_json spec);
        ("layout_search", layout_search_json spec);
      ]
      @
      match parallel_json spec ~jobs_sweep with
      | Some p -> [ ("parallel", p) ]
      | None -> [])
  in
  (json, prop_pct, bolt_pct)

(* Geomean of speedups via ratios: +x% -> 1+x/100, so mixed-sign lists
   stay meaningful. *)
let geomean_pct pcts =
  match pcts with
  | [] -> None
  | _ ->
    let ratios = List.map (fun p -> 1.0 +. (p /. 100.0)) pcts in
    Some ((Support.Stats.geomean ratios -. 1.0) *. 100.0)

let emit ?(jobs_sweep = []) ~file ~specs ~requests () =
  let specs =
    match requests with
    | None -> specs
    | Some r -> List.map (fun (s : Progen.Spec.t) -> { s with Progen.Spec.requests = r }) specs
  in
  let rows = List.map (benchmark_json ~jobs_sweep) specs in
  let prop_pcts = List.map (fun (_, p, _) -> p) rows in
  let bolt_pcts = List.filter_map (fun (_, _, b) -> b) rows in
  let opt_float = function Some f -> Obs.Json.Float f | None -> Obs.Json.Null in
  let json =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Int schema_version);
        ("tool", Obs.Json.String "propeller-bench");
        ( "config",
          Obs.Json.Obj
            [
              ( "benchmarks",
                Obs.Json.List
                  (List.map (fun (s : Progen.Spec.t) -> Obs.Json.String s.name) specs) );
              ( "requests_override",
                match requests with Some r -> Obs.Json.Int r | None -> Obs.Json.Null );
              ("jobs_sweep", Obs.Json.List (List.map (fun j -> Obs.Json.Int j) jobs_sweep));
            ] );
        ("benchmarks", Obs.Json.List (List.map (fun (j, _, _) -> j) rows));
        ("micro", Micro.json ());
        ( "summary",
          Obs.Json.Obj
            [
              ("num_benchmarks", Obs.Json.Int (List.length specs));
              ("geomean_speedup_propeller", opt_float (geomean_pct prop_pcts));
              ("geomean_speedup_bolt", opt_float (geomean_pct bolt_pcts));
              ("bolt_crashes", Obs.Json.Int (List.length specs - List.length bolt_pcts));
            ] );
      ]
  in
  let contents = Obs.Json.to_string json in
  (* Round-trip through our own parser before writing, like the trace
     exporter does: a bench file CI cannot re-read is worse than none. *)
  (match Obs.Json.parse contents with
  | Ok _ -> ()
  | Error e -> failwith (Printf.sprintf "Jsonout.emit: emitted invalid JSON: %s" e));
  let oc = open_out file in
  output_string oc contents;
  output_char oc '\n';
  close_out oc;
  Printf.printf "bench json: %d benchmark(s) -> %s\n%!" (List.length specs) file

(* Machine-readable bench output: one BENCH_*.json per run, stable
   schema (EXPERIMENTS.md "Bench JSON schema"), so successive PRs
   accumulate a perf trajectory and `propeller_stat diff` can gate
   regressions in CI. Everything here is a function of the simulated
   run: same seeds, byte-identical file. *)

(* v2: per-benchmark "size" object (hot/cold text, metadata and total
   bytes of the base/pm/po images, from Inspect.Size). *)
let schema_version = 2

let counters_json (c : Uarch.Core.counters) =
  Obs.Json.Obj
    (List.map (fun (k, v) -> (k, Obs.Json.Int v)) (Uarch.Core.counters_assoc c)
    @ [ ("cycles", Obs.Json.Float c.cycles) ])

let benchmark_json (spec : Progen.Spec.t) =
  let wb = Workbench.get spec in
  let prop_pct = Workbench.improvement_pct wb Workbench.Prop in
  let bolt_ok = wb.bolt.Boltsim.Driver.startup_ok in
  let bolt_pct = if bolt_ok then Some (Workbench.improvement_pct wb Workbench.Bolt) else None in
  let base = (Workbench.measure wb Workbench.Base).counters in
  let prop = (Workbench.measure wb Workbench.Prop).counters in
  let report =
    Diagnostics.Report.analyze ~name:spec.name ~counters:(base, prop) ~result:wb.prop ()
  in
  let size_totals binary = Inspect.Size.totals_json (Inspect.Size.measure binary) in
  let json =
    Obs.Json.Obj
      [
        ("name", Obs.Json.String spec.name);
        ("seed", Obs.Json.Int (Int64.to_int spec.seed));
        ("scale", Obs.Json.Int spec.scale);
        ("requests", Obs.Json.Int spec.requests);
        ("metric", Obs.Json.String (Workbench.metric_name spec));
        ( "speedup_pct",
          Obs.Json.Obj
            [
              ("propeller", Obs.Json.Float prop_pct);
              ( "bolt",
                match bolt_pct with Some p -> Obs.Json.Float p | None -> Obs.Json.Null );
            ] );
        ("bolt_startup_ok", Obs.Json.Bool bolt_ok);
        ("diagnostics", Diagnostics.Report.to_json report);
        ( "size",
          Obs.Json.Obj
            [
              ("base", size_totals wb.base.Buildsys.Driver.binary);
              ("pm", size_totals wb.prop.Propeller.Pipeline.metadata_build.Buildsys.Driver.binary);
              ("po", size_totals (Propeller.Pipeline.optimized_binary wb.prop));
            ] );
        ( "counters",
          Obs.Json.Obj
            [ ("base", counters_json base); ("propeller", counters_json prop) ] );
      ]
  in
  (json, prop_pct, bolt_pct)

(* Geomean of speedups via ratios: +x% -> 1+x/100, so mixed-sign lists
   stay meaningful. *)
let geomean_pct pcts =
  match pcts with
  | [] -> None
  | _ ->
    let ratios = List.map (fun p -> 1.0 +. (p /. 100.0)) pcts in
    Some ((Support.Stats.geomean ratios -. 1.0) *. 100.0)

let emit ~file ~specs ~requests =
  let specs =
    match requests with
    | None -> specs
    | Some r -> List.map (fun (s : Progen.Spec.t) -> { s with Progen.Spec.requests = r }) specs
  in
  let rows = List.map benchmark_json specs in
  let prop_pcts = List.map (fun (_, p, _) -> p) rows in
  let bolt_pcts = List.filter_map (fun (_, _, b) -> b) rows in
  let opt_float = function Some f -> Obs.Json.Float f | None -> Obs.Json.Null in
  let json =
    Obs.Json.Obj
      [
        ("schema_version", Obs.Json.Int schema_version);
        ("tool", Obs.Json.String "propeller-bench");
        ( "config",
          Obs.Json.Obj
            [
              ( "benchmarks",
                Obs.Json.List
                  (List.map (fun (s : Progen.Spec.t) -> Obs.Json.String s.name) specs) );
              ( "requests_override",
                match requests with Some r -> Obs.Json.Int r | None -> Obs.Json.Null );
            ] );
        ("benchmarks", Obs.Json.List (List.map (fun (j, _, _) -> j) rows));
        ( "summary",
          Obs.Json.Obj
            [
              ("num_benchmarks", Obs.Json.Int (List.length specs));
              ("geomean_speedup_propeller", opt_float (geomean_pct prop_pcts));
              ("geomean_speedup_bolt", opt_float (geomean_pct bolt_pcts));
              ("bolt_crashes", Obs.Json.Int (List.length specs - List.length bolt_pcts));
            ] );
      ]
  in
  let contents = Obs.Json.to_string json in
  (* Round-trip through our own parser before writing, like the trace
     exporter does: a bench file CI cannot re-read is worse than none. *)
  (match Obs.Json.parse contents with
  | Ok _ -> ()
  | Error e -> failwith (Printf.sprintf "Jsonout.emit: emitted invalid JSON: %s" e));
  let oc = open_out file in
  output_string oc contents;
  output_char oc '\n';
  close_out oc;
  Printf.printf "bench json: %d benchmark(s) -> %s\n%!" (List.length specs) file

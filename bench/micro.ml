(* Bechamel micro-benchmarks for the core algorithms; one Test.make per
   component, including the pqueue-vs-linear Ext-TSP retrieval ablation
   the paper's 4.7 calls out. *)

open Bechamel
open Toolkit

(* A synthetic hot CFG: chain with side exits and loops, [n] nodes. *)
let synth_graph n =
  let rng = Support.Rng.create 42L in
  let sizes = Array.init n (fun _ -> 8 + Support.Rng.int rng 40) in
  let weights = Array.init n (fun _ -> Support.Rng.float rng *. 1000.0) in
  let edges = ref [] in
  for i = 0 to n - 2 do
    edges := (i, i + 1, 500.0 +. Support.Rng.float rng *. 500.0) :: !edges;
    if i mod 3 = 0 && i + 2 < n then
      edges := (i, i + 2 + Support.Rng.int rng (n - i - 2), Support.Rng.float rng *. 80.0) :: !edges;
    if i mod 7 = 0 && i > 4 then
      edges := (i, i - 1 - Support.Rng.int rng 3, Support.Rng.float rng *. 300.0) :: !edges
  done;
  (sizes, weights, !edges)

let exttsp_test name ~use_pqueue ~n =
  let sizes, weights, edges = synth_graph n in
  let params = { Layout.Exttsp.default_params with use_pqueue } in
  Test.make ~name (Staged.stage (fun () ->
      ignore (Layout.Exttsp.order ~params ~sizes ~weights ~edges ~entry:0 ())))

let hfsort_test =
  let n = 2000 in
  let rng = Support.Rng.create 7L in
  let sizes = Array.init n (fun _ -> 64 + Support.Rng.int rng 4000) in
  let samples = Array.init n (fun _ -> Support.Rng.float rng *. 1.0e5) in
  let arcs =
    List.init (4 * n) (fun _ ->
        (Support.Rng.int rng n, Support.Rng.int rng n, Support.Rng.float rng *. 100.0))
  in
  Test.make ~name:"hfsort_2000_funcs"
    (Staged.stage (fun () -> ignore (Layout.Hfsort.order ~sizes ~samples ~arcs ())))

let mcf_artifacts =
  lazy
    (let spec = Option.get (Progen.Suite.by_name "505.mcf") in
     let program = Progen.Generate.program spec in
     let objs =
       Codegen.compile_program { Codegen.default_options with emit_bb_addr_map = true } program
     in
     let { Linker.Link.binary; _ } =
       Linker.Link.link
         ~options:{ Linker.Link.default_options with keep_bb_addr_map = true }
         ~name:"mcf" ~entry:"main" objs
     in
     let image = Exec.Image.build program binary in
     let profile = Perfmon.Lbr.create_profile () in
     let (_ : Exec.Interp.stats) =
       Exec.Interp.run image
         { Exec.Interp.default_config with requests = 50 }
         (Perfmon.Lbr.collector Perfmon.Lbr.default_config profile)
     in
     (program, objs, binary, image, profile))

let link_test =
  Test.make ~name:"link_relax_mcf"
    (Staged.stage (fun () ->
         let _, objs, _, _, _ = Lazy.force mcf_artifacts in
         ignore (Linker.Link.link ~name:"mcf" ~entry:"main" objs)))

let dcfg_test =
  Test.make ~name:"dcfg_build_mcf"
    (Staged.stage (fun () ->
         let _, _, binary, _, profile = Lazy.force mcf_artifacts in
         ignore (Propeller.Dcfg.build ~profile ~binary)))

let wpa_test =
  Test.make ~name:"wpa_analyze_mcf"
    (Staged.stage (fun () ->
         let _, _, binary, _, profile = Lazy.force mcf_artifacts in
         ignore (Propeller.Wpa.analyze ~profile:(Propeller.Wpa.Lbr profile) ~binary ())))

let exec_test =
  Test.make ~name:"exec_50_requests_mcf"
    (Staged.stage (fun () ->
         let _, _, _, image, _ = Lazy.force mcf_artifacts in
         ignore
           (Exec.Interp.run image
              { Exec.Interp.default_config with requests = 50 }
              Exec.Event.null)))

let pqueue_test =
  Test.make ~name:"pqueue_10k_ops"
    (Staged.stage (fun () ->
         let q = Support.Pqueue.create () in
         let handles = Array.init 1000 (fun i -> Support.Pqueue.add q ~priority:(float_of_int (i * 7 mod 97)) i) in
         Array.iteri
           (fun i h -> if i mod 3 = 0 then Support.Pqueue.update q h ~priority:(float_of_int i))
           handles;
         let rec drain () = match Support.Pqueue.pop_max q with Some _ -> drain () | None -> () in
         drain ()))

let tests () =
  [
    exttsp_test "exttsp_pqueue_300" ~use_pqueue:true ~n:300;
    exttsp_test "exttsp_linear_300" ~use_pqueue:false ~n:300;
    exttsp_test "exttsp_pqueue_1000" ~use_pqueue:true ~n:1000;
    exttsp_test "exttsp_linear_1000" ~use_pqueue:false ~n:1000;
    hfsort_test;
    pqueue_test;
    link_test;
    dcfg_test;
    wpa_test;
    exec_test;
  ]

let run () =
  Report.print_title "Micro-benchmarks (bechamel; ns per run, OLS on monotonic clock)";
  let instances = Instance.[ monotonic_clock ] in
  (* stabilize=false: GC compaction between samples is prohibitively slow
     when the workbench cache holds every benchmark's artifacts. *)
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.4) ~kde:None ~stabilize:false ()
  in
  let raw =
    List.map (fun test -> Benchmark.all cfg instances test) (List.map (fun t -> t) (tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  List.iter
    (fun results ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.one ols Instance.monotonic_clock { Benchmark.stats = result.Benchmark.stats; lr = result.lr; kde = result.kde } with
          | ols_result -> (
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
            | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name))
        results)
    raw

(* Bechamel micro-benchmarks for the core algorithms; one Test.make per
   component, including the pqueue-vs-linear Ext-TSP retrieval ablation
   the paper's 4.7 calls out. *)

open Bechamel
open Toolkit

(* A synthetic hot CFG: chain with side exits and loops, [n] nodes. *)
let synth_graph n =
  let rng = Support.Rng.create 42L in
  let sizes = Array.init n (fun _ -> 8 + Support.Rng.int rng 40) in
  let weights = Array.init n (fun _ -> Support.Rng.float rng *. 1000.0) in
  let edges = ref [] in
  for i = 0 to n - 2 do
    edges := (i, i + 1, 500.0 +. Support.Rng.float rng *. 500.0) :: !edges;
    if i mod 3 = 0 && i + 2 < n then
      edges := (i, i + 2 + Support.Rng.int rng (n - i - 2), Support.Rng.float rng *. 80.0) :: !edges;
    if i mod 7 = 0 && i > 4 then
      edges := (i, i - 1 - Support.Rng.int rng 3, Support.Rng.float rng *. 300.0) :: !edges
  done;
  (sizes, weights, !edges)

let synth_problem n =
  let sizes, weights, edges = synth_graph n in
  Layout.Problem.make ~sizes ~weights ~edges ~entry:0

let exttsp_test name ~use_pqueue ~n =
  let problem = synth_problem n in
  let params = { Layout.Exttsp.default_params with use_pqueue } in
  Test.make ~name (Staged.stage (fun () -> ignore (Layout.Exttsp.order ~params problem)))

let hfsort_test =
  let n = 2000 in
  let rng = Support.Rng.create 7L in
  let sizes = Array.init n (fun _ -> 64 + Support.Rng.int rng 4000) in
  let samples = Array.init n (fun _ -> Support.Rng.float rng *. 1.0e5) in
  let arcs =
    List.init (4 * n) (fun _ ->
        (Support.Rng.int rng n, Support.Rng.int rng n, Support.Rng.float rng *. 100.0))
  in
  let problem = Layout.Problem.make ~sizes ~weights:samples ~edges:arcs ~entry:0 in
  Test.make ~name:"hfsort_2000_funcs"
    (Staged.stage (fun () -> ignore (Layout.Hfsort.order problem)))

let mcf_artifacts =
  lazy
    (let spec = Option.get (Progen.Suite.by_name "505.mcf") in
     let program = Progen.Generate.program spec in
     let objs =
       Codegen.compile_program { Codegen.default_options with emit_bb_addr_map = true } program
     in
     let { Linker.Link.binary; _ } =
       Linker.Link.link
         ~options:{ Linker.Link.default_options with keep_bb_addr_map = true }
         ~name:"mcf" ~entry:"main" objs
     in
     let image = Exec.Image.build program binary in
     let profile = Perfmon.Lbr.create_profile () in
     let (_ : Exec.Interp.stats) =
       Exec.Interp.run image
         { Exec.Interp.default_config with requests = 50 }
         (Perfmon.Lbr.collector Perfmon.Lbr.default_config profile)
     in
     (program, objs, binary, image, profile))

let link_test =
  Test.make ~name:"link_relax_mcf"
    (Staged.stage (fun () ->
         let _, objs, _, _, _ = Lazy.force mcf_artifacts in
         ignore (Linker.Link.link ~name:"mcf" ~entry:"main" objs)))

let dcfg_test =
  Test.make ~name:"dcfg_build_mcf"
    (Staged.stage (fun () ->
         let _, _, binary, _, profile = Lazy.force mcf_artifacts in
         ignore (Propeller.Dcfg.build ~profile ~binary)))

let wpa_test =
  Test.make ~name:"wpa_analyze_mcf"
    (Staged.stage (fun () ->
         let _, _, binary, _, profile = Lazy.force mcf_artifacts in
         ignore (Propeller.Wpa.analyze ~profile:(Propeller.Wpa.Lbr profile) ~binary ())))

let exec_test =
  Test.make ~name:"exec_50_requests_mcf"
    (Staged.stage (fun () ->
         let _, _, _, image, _ = Lazy.force mcf_artifacts in
         ignore
           (Exec.Interp.run image
              { Exec.Interp.default_config with requests = 50 }
              Exec.Event.null)))

(* The flat-data fast-path kernels (ISSUE 9). Each gets a bechamel
   entry below AND a lightweight self-timed measurement ([json]) that
   rides along in the bench JSON, so a selfspeed regression can be
   attributed to the kernel that caused it. *)

(* 4k synthetic branch pairs, then a second pass over the same pairs:
   half the bumps insert, half hit — the collector's steady-state mix. *)
let lbr_pairs =
  let rng = Support.Rng.create 11L in
  Array.init 4096 (fun _ ->
      (0x1000 + Support.Rng.int rng 0xfffff, 0x1000 + Support.Rng.int rng 0xfffff))

let lbr_bump_kernel () =
  let tab = Support.Itab.create 64 in
  for _ = 1 to 2 do
    Array.iter (fun (src, dst) -> Perfmon.Lbr.add_pair tab ~src ~dst 1) lbr_pairs
  done

let score_fixture =
  let problem = synth_problem 1000 in
  (* Warm the flat-edge cache so the kernel measures steady-state
     scoring (the search-loop regime), not the one-time dedupe. *)
  ignore (Layout.Problem.flat problem);
  (problem, List.init 1000 Fun.id)

let exttsp_score_kernel () =
  let problem, order = score_fixture in
  ignore (Layout.Exttsp.score ~order problem : float)

(* 8k uniformly random text-segment addresses against the mcf image —
   every resolution class (code, padding) gets exercised. *)
let resolve_fixture =
  lazy
    (let _, _, binary, _, _ = Lazy.force mcf_artifacts in
     let resolver = Inspect.Resolve.create binary in
     let rng = Support.Rng.create 23L in
     let lo = binary.Linker.Binary.text_start and hi = binary.Linker.Binary.text_end in
     let addrs = Array.init 8192 (fun _ -> lo + Support.Rng.int rng (hi - lo)) in
     (resolver, addrs))

let resolve_batch_kernel () =
  let resolver, addrs = Lazy.force resolve_fixture in
  ignore (Inspect.Resolve.resolve_batch resolver addrs : int array)

let fastpath_kernels =
  [
    ("lbr_bump_packed_8k", lbr_bump_kernel);
    ("exttsp_score_flat_1000", exttsp_score_kernel);
    ("resolve_batch_mcf_8k", resolve_batch_kernel);
  ]

(* Median-of-3 batch averages on the wall clock: coarser than
   bechamel's OLS, but dependency-light and fast enough to run inside
   every bench-JSON emission. Wall-clock, so NOT byte-stable. *)
let time_ns_per_call ?(batch = 30) f =
  f ();
  let sample () =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      f ()
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int batch
  in
  match List.sort compare [ sample (); sample (); sample () ] with
  | [ _; median; _ ] -> median
  | _ -> assert false

let json () =
  Obs.Json.Obj
    [
      ( "kernels",
        Obs.Json.List
          (List.map
             (fun (name, f) ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String name);
                   ("ns_per_call", Obs.Json.Float (time_ns_per_call f));
                 ])
             fastpath_kernels) );
    ]

let pqueue_test =
  Test.make ~name:"pqueue_10k_ops"
    (Staged.stage (fun () ->
         let q = Support.Pqueue.create () in
         let handles = Array.init 1000 (fun i -> Support.Pqueue.add q ~priority:(float_of_int (i * 7 mod 97)) i) in
         Array.iteri
           (fun i h -> if i mod 3 = 0 then Support.Pqueue.update q h ~priority:(float_of_int i))
           handles;
         let rec drain () = match Support.Pqueue.pop_max q with Some _ -> drain () | None -> () in
         drain ()))

let tests () =
  [
    exttsp_test "exttsp_pqueue_300" ~use_pqueue:true ~n:300;
    exttsp_test "exttsp_linear_300" ~use_pqueue:false ~n:300;
    exttsp_test "exttsp_pqueue_1000" ~use_pqueue:true ~n:1000;
    exttsp_test "exttsp_linear_1000" ~use_pqueue:false ~n:1000;
    hfsort_test;
    pqueue_test;
    link_test;
    dcfg_test;
    wpa_test;
    exec_test;
    Test.make ~name:"lbr_bump_packed_8k" (Staged.stage lbr_bump_kernel);
    Test.make ~name:"exttsp_score_flat_1000" (Staged.stage exttsp_score_kernel);
    Test.make ~name:"resolve_batch_mcf_8k" (Staged.stage resolve_batch_kernel);
  ]

let run () =
  Report.print_title "Micro-benchmarks (bechamel; ns per run, OLS on monotonic clock)";
  let instances = Instance.[ monotonic_clock ] in
  (* stabilize=false: GC compaction between samples is prohibitively slow
     when the workbench cache holds every benchmark's artifacts. *)
  let cfg =
    Benchmark.cfg ~limit:100 ~quota:(Time.second 0.4) ~kde:None ~stabilize:false ()
  in
  let raw =
    List.map (fun test -> Benchmark.all cfg instances test) (List.map (fun t -> t) (tests ()))
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  List.iter
    (fun results ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.one ols Instance.monotonic_clock { Benchmark.stats = result.Benchmark.stats; lr = result.lr; kde = result.kde } with
          | ols_result -> (
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
            | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name))
        results)
    raw

(* One function per table/figure of the paper's evaluation (§5), plus
   the ablations DESIGN.md commits to. All output goes to stdout. *)

let large () = Progen.Suite.large

let spec2017 () = Progen.Suite.spec2017

let scale_of (wb : Workbench.t) = wb.spec.scale

(* ------------------------------------------------------------------ *)
(* Table 2: benchmark characteristics.                                  *)

let table2 () =
  Report.print_title "Table 2: Benchmark characteristics (generated vs paper)";
  let row (spec : Progen.Spec.t) =
    let wb = Workbench.get spec in
    let text = Linker.Binary.text_bytes wb.base.binary in
    let funcs = Ir.Program.num_funcs wb.program in
    let bbs = Ir.Program.num_blocks wb.program in
    let cold_pct =
      100.0
      *. float_of_int (wb.prop.total_objects - wb.prop.hot_objects)
      /. float_of_int wb.prop.total_objects
    in
    let paper =
      match Progen.Spec.paper_row spec with
      | Some p ->
        [
          Report.bytes p.paper_text_bytes;
          Report.count p.paper_funcs;
          Report.count p.paper_blocks;
          Printf.sprintf "%.0f%%" p.paper_cold_pct;
        ]
      | None -> [ "-"; "-"; "-"; "-" ]
    in
    [
      spec.name;
      string_of_int spec.scale ^ "x";
      Report.bytes text;
      Report.count funcs;
      Report.count bbs;
      Printf.sprintf "%.0f%%" cold_pct;
    ]
    @ paper
  in
  Report.print_table
    ~header:
      [ "Benchmark"; "Scale"; "Text"; "Funcs"; "BBs"; "%Cold";
        "Text(paper)"; "Funcs(paper)"; "BBs(paper)"; "%Cold(paper)" ]
    (List.map row (large () @ spec2017 ()))

(* ------------------------------------------------------------------ *)
(* Table 3: performance improvements over PGO+ThinLTO.                  *)

let table3 () =
  Report.print_title "Table 3: Performance improvement over PGO+ThinLTO baseline";
  let row (spec : Progen.Spec.t) =
    let wb = Workbench.get spec in
    let prop = Workbench.improvement_pct wb Workbench.Prop in
    let bolt =
      if wb.bolt.startup_ok then Report.pct (Workbench.improvement_pct wb Workbench.Bolt)
      else "Crash"
    in
    [ spec.name; Workbench.metric_name spec; Report.pct prop; bolt ]
  in
  Report.print_table
    ~header:[ "Benchmark"; "Metric"; "Propeller"; "BOLT (lite=0)" ]
    (List.map row (large ()));
  Report.print_note
    "(BOLT 'Crash': rewritten binary fails startup integrity/rseq checks, paper 5.8)\n"

(* ------------------------------------------------------------------ *)
(* Table 5: build phase times.                                          *)

(* Modelled profiling windows (minutes), standing in for the paper's
   benchmark-specific load tests. *)
let profile_window (spec : Progen.Spec.t) =
  match spec.name with
  | "spanner" -> 45.0
  | "search" -> 8.0
  | "superroot" -> 18.0
  | "bigtable" -> 43.0
  | _ -> 8.0

let table5 () =
  Report.print_title "Table 5: Build phases, minutes (model outputs at paper-equivalent scale)";
  let row (spec : Progen.Spec.t) =
    let wb = Workbench.get spec in
    (* Paper-equivalent programs are [scale]x bigger on the same worker
       pool, so build makespans and conversion scale linearly. *)
    let scale = float_of_int (scale_of wb) in
    let mins s = Printf.sprintf "%.0f" (Float.max 1.0 (s *. scale /. 60.0)) in
    let instr_build =
      wb.base.wall_seconds *. Buildsys.Costmodel.instrumentation_overhead
    in
    let opt_build = wb.prop.metadata_build.wall_seconds in
    let convert = wb.prop.wpa.cpu_seconds in
    let prop_opt = wb.prop.optimized_build.wall_seconds in
    [
      spec.name;
      mins instr_build;
      Printf.sprintf "%.0f" (profile_window spec);
      mins opt_build;
      Printf.sprintf "%.0f" (profile_window spec);
      mins convert;
      mins prop_opt;
    ]
  in
  Report.print_table
    ~header:
      [ "Benchmark"; "PGO:Instr"; "PGO:Profile"; "PGO:Opt";
        "Prop:Profile"; "Prop:Convert"; "Prop:Opt" ]
    (List.map row [ Progen.Suite.spanner; Progen.Suite.search; Progen.Suite.superroot; Progen.Suite.bigtable ]);
  Report.print_note
    "(profiling windows are load-test constants; builds/conversion are cost-model outputs\n\
     scaled to paper-equivalent program size; see EXPERIMENTS.md)\n"

(* ------------------------------------------------------------------ *)
(* Fig 4: peak memory, profile conversion + WPA.                        *)

let fig4_row (spec : Progen.Spec.t) =
  let wb = Workbench.get spec in
  let s = scale_of wb in
  let profile_bytes = Perfmon.Lbr.raw_bytes Perfmon.Lbr.default_config wb.prop.profile in
  let prop_mem =
    Buildsys.Costmodel.wpa_mem ~profile_bytes:(profile_bytes * s)
      ~dcfg_blocks:(wb.prop.wpa.dcfg_blocks * s) ~dcfg_edges:(wb.prop.wpa.dcfg_edges * s)
  in
  let text = Linker.Binary.text_bytes wb.base.binary in
  let bolt_mem =
    Boltsim.Costmodel.conversion_mem ~text_bytes:(text * s) ~profile_bytes:(profile_bytes * s)
  in
  [ spec.name; Report.bytes prop_mem; Report.bytes bolt_mem;
    Printf.sprintf "%.1fx" (float_of_int bolt_mem /. float_of_int prop_mem) ]

let fig4 () =
  Report.print_title
    "Fig 4: Peak memory, profile conversion + whole-program analysis (paper-equivalent)";
  Report.print_table
    ~header:[ "Benchmark"; "Propeller (Phase 3)"; "BOLT (perf2bolt)"; "BOLT/Prop" ]
    (List.map fig4_row (large ()));
  Report.print_table
    ~header:[ "Benchmark"; "Propeller (Phase 3)"; "BOLT (perf2bolt)"; "BOLT/Prop" ]
    (List.map fig4_row (spec2017 ()))

(* ------------------------------------------------------------------ *)
(* Fig 5: peak memory of code layout + relink vs BOLT opt vs base link. *)

let fig5_row (spec : Progen.Spec.t) =
  let wb = Workbench.get spec in
  let s = scale_of wb in
  let scale_link (st : Linker.Link.stats) =
    Linker.Costmodel.peak_mem ~input_bytes:(st.input_bytes * s)
      ~num_sections:(st.num_input_sections * s)
  in
  let base_mem = scale_link wb.base.link_stats in
  let prop_mem = scale_link wb.prop.optimized_build.link_stats in
  let text = Linker.Binary.text_bytes wb.base.binary in
  let hot_text =
    List.fold_left
      (fun acc (fm : Codegen.Directive.func_plan) ->
        List.fold_left
          (fun acc (c : Codegen.Directive.cluster) -> acc + (16 * List.length c.blocks))
          acc fm.clusters)
      0 wb.prop.wpa.plans
  in
  let bolt_mem =
    Boltsim.Costmodel.optimize_mem ~text_bytes:(text * s) ~hot_text_bytes:(hot_text * s)
      ~lite:true
  in
  [ spec.name; Report.bytes base_mem; Report.bytes prop_mem; Report.bytes bolt_mem ]

let fig5 () =
  Report.print_title
    "Fig 5: Peak memory, Phase 4 relink vs BOLT optimization vs baseline link (paper-equivalent)";
  Report.print_table
    ~header:[ "Benchmark"; "Baseline link"; "Propeller relink"; "BOLT (llvm-bolt, lite)" ]
    (List.map fig5_row (large () @ spec2017 ()))

(* ------------------------------------------------------------------ *)
(* Fig 6: binary size breakdown.                                        *)

let fig6 () =
  Report.print_title "Fig 6: Section size breakdown, normalized to baseline total (=100)";
  let breakdown binary =
    let k kind = Linker.Binary.size_of_kind binary kind in
    let text = k Objfile.Section.Text in
    let eh = k Objfile.Section.Eh_frame in
    let map = k Objfile.Section.Bb_addr_map in
    let rela = k Objfile.Section.Rela in
    let other =
      k Objfile.Section.Rodata + k Objfile.Section.Data + k Objfile.Section.Symtab
      + k Objfile.Section.Debug
    in
    (text, eh, map, rela, other)
  in
  List.iter
    (fun (spec : Progen.Spec.t) ->
      let wb = Workbench.get spec in
      let base_total = float_of_int (Linker.Binary.total_size wb.base.binary) in
      let row name binary =
        let text, eh, map, rela, other = breakdown binary in
        let n v = Printf.sprintf "%.1f" (100.0 *. float_of_int v /. base_total) in
        let total = text + eh + map + rela + other in
        [ name; n text; n eh; n map; n rela; n other; n total ]
      in
      Printf.printf "\n%s:\n" spec.name;
      Report.print_table
        ~header:[ "Binary"; "text"; "eh_frame"; "bb_addr_map"; "relocs"; "other"; "total" ]
        [
          row "Base" wb.base.binary;
          row "PM" wb.prop.metadata_build.binary;
          row "PO" (Propeller.Pipeline.optimized_binary wb.prop);
          row "BM" wb.bm.binary;
          row "BO" wb.bolt.binary;
        ])
    (large () @ [ List.nth (spec2017 ()) 1 ])

(* ------------------------------------------------------------------ *)
(* Fig 7: instruction access heat maps (clang).                         *)

let fig7 () =
  Report.print_title "Fig 7: Instruction-access heat maps, clang (address x time)";
  let wb = Workbench.get Progen.Suite.clang in
  let render variant label =
    let binary = Workbench.binary wb variant in
    let hm =
      Uarch.Heatmap.create ~lo:binary.text_start ~hi:binary.text_end ~rows:24 ~cols:72
        ~total_requests:wb.spec.requests
    in
    let image = Exec.Image.build wb.program binary in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image (Workbench.interp_config wb.spec) (Uarch.Heatmap.sink hm)
    in
    Printf.printf "\n%s (address span %s, touched rows %d/24):\n%s"
      label
      (Report.bytes (binary.text_end - binary.text_start))
      (Uarch.Heatmap.occupied_rows hm)
      (Uarch.Heatmap.render hm)
  in
  render Workbench.Base "(a) Baseline PGO+ThinLTO";
  render Workbench.Prop "(b) + Propeller";
  render Workbench.Bolt "(c) + BOLT (band sits in the new high segment)"

(* ------------------------------------------------------------------ *)
(* Fig 8: performance counters, normalized to baseline = 100.           *)

let fig8 () =
  Report.print_title "Fig 8: Performance counters, normalized to baseline (=100, lower is better)";
  let table (spec : Progen.Spec.t) =
    let wb = Workbench.get spec in
    let b = (Workbench.measure wb Workbench.Base).counters in
    let p = (Workbench.measure wb Workbench.Prop).counters in
    let o = (Workbench.measure wb Workbench.Bolt).counters in
    let pick (c : Uarch.Core.counters) = function
      | "I1" -> c.i1_l1i_miss
      | "I2" -> c.i2_l2_code_miss
      | "I3" -> c.i3_l3_code_miss
      | "T1" -> c.t1_itlb_miss
      | "T2" -> c.t2_itlb_stall_miss
      | "B1" -> c.b1_baclears
      | "B2" -> c.b2_taken_branches
      | _ -> assert false
    in
    let row label =
      let n c =
        let bv = pick b label in
        if bv = 0 then "-" else Printf.sprintf "%.0f" (100.0 *. float_of_int (pick c label) /. float_of_int bv)
      in
      [ label; n p; n o ]
    in
    Printf.printf "\n%s (%s):\n" spec.name (Workbench.metric_name spec);
    Report.print_table ~header:[ "Counter"; "Propeller"; "BOLT" ]
      (List.map row [ "I1"; "I2"; "I3"; "T1"; "T2"; "B1"; "B2" ])
  in
  table Progen.Suite.search;
  table Progen.Suite.clang

(* ------------------------------------------------------------------ *)
(* Fig 9: optimization run time.                                        *)

let fig9 () =
  Report.print_title "Fig 9: Optimization run time (backends + link), normalized to baseline = 100";
  let row (spec : Progen.Spec.t) =
    let wb = Workbench.get spec in
    let base_backends = wb.base.codegen_report.wall_seconds in
    let base_link = wb.base.link_stats.cpu_seconds in
    let base = base_backends +. base_link in
    let prop_backends = wb.prop.optimized_build.codegen_report.wall_seconds in
    let prop_link = wb.prop.optimized_build.link_stats.cpu_seconds in
    let prop = prop_backends +. prop_link in
    let bolt = wb.bolt.optimize_seconds in
    let n v = Printf.sprintf "%.0f" (100.0 *. v /. base) in
    [
      spec.name;
      n base;
      n prop;
      n bolt;
      Printf.sprintf "%d/%d" wb.prop.hot_objects wb.prop.total_objects;
      Printf.sprintf "%.0f%%" (100.0 *. Buildsys.Cache.hit_rate wb.env.obj_cache);
    ]
  in
  Report.print_table
    ~header:[ "Benchmark"; "Base"; "Propeller(Phase4)"; "BOLT"; "hot objs"; "cache hit" ]
    (List.map row (large () @ spec2017 ()));
  (* Cache ablation: Phase 4 against a cold cache. *)
  let wb = Workbench.get Progen.Suite.clang in
  let cg, ld = Propeller.Pipeline.optimize_options ~hugepages:false wb.prop.wpa in
  let cold_env = Buildsys.Driver.make_env () in
  let cold =
    Buildsys.Driver.build cold_env ~name:"clang.cold" ~program:wb.program ~codegen_options:cg
      ~link_options:ld
  in
  Report.print_note
    (Printf.sprintf "\nCache ablation (clang): Phase 4 wall %s with warm cache vs %s with cold cache\n"
       (Report.seconds wb.prop.optimized_build.wall_seconds)
       (Report.seconds cold.wall_seconds))

(* ------------------------------------------------------------------ *)
(* SPEC 2017 sweep (5.4).                                               *)

let spec_sweep () =
  Report.print_title "SPEC2017: performance and branch/i-cache effects (5.4)";
  let row (spec : Progen.Spec.t) =
    let wb = Workbench.get spec in
    let b = (Workbench.measure wb Workbench.Base).counters in
    let p = (Workbench.measure wb Workbench.Prop).counters in
    let o = (Workbench.measure wb Workbench.Bolt).counters in
    let delta get x = Support.Stats.ratio_pct (float_of_int (get x)) (float_of_int (get b)) in
    [
      spec.name;
      Report.pct2 (Workbench.improvement_pct wb Workbench.Prop);
      Report.pct2 (Workbench.improvement_pct wb Workbench.Bolt);
      Report.pct (delta (fun (c : Uarch.Core.counters) -> c.b2_taken_branches) p);
      Report.pct (delta (fun (c : Uarch.Core.counters) -> c.i1_l1i_miss) p);
      Report.pct (delta (fun (c : Uarch.Core.counters) -> c.dsb_misses) p);
      Report.pct (delta (fun (c : Uarch.Core.counters) -> c.dsb_misses) o);
    ]
  in
  Report.print_table
    ~header:
      [ "Benchmark"; "Prop perf"; "BOLT perf"; "dTaken(P)"; "dL1i(P)"; "dDSB(P)"; "dDSB(B)" ]
    (List.map row (spec2017 ()))

(* ------------------------------------------------------------------ *)
(* Ablation 4.6: function splitting mechanisms.                         *)

let ablation_split () =
  Report.print_title "Ablation (4.6): function splitting - bb sections vs call-based heuristic";
  let wb = Workbench.get Progen.Suite.clang in
  let run_variant label plans split_count =
    (* Unmatched .cold entries in the ordering file are harmless: the
       linker skips symbols with no section. *)
    let wpa = { wb.prop.wpa with plans } in
    let cg, ld = Propeller.Pipeline.optimize_options ~hugepages:false wpa in
    let build =
      Buildsys.Driver.build wb.env ~name:("clang." ^ label) ~program:wb.program
        ~codegen_options:cg ~link_options:ld
    in
    let image = Exec.Image.build wb.program build.binary in
    let core = Uarch.Core.create (Workbench.core_config wb.spec) in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image (Workbench.interp_config wb.spec) (Uarch.Core.sink core)
    in
    let c = Uarch.Core.counters core in
    (label, split_count, c)
  in
  (* Variant A: split everything with cold blocks (bb sections). *)
  let plans_split = wb.prop.wpa.plans in
  let cold_bytes_of (p : Codegen.Directive.func_plan) =
    match Ir.Program.find_func wb.program p.func with
    | None -> 0
    | Some f ->
      let listed = List.concat_map (fun (c : Codegen.Directive.cluster) -> c.blocks) p.clusters in
      let total = Ir.Func.num_blocks f in
      List.init total Fun.id
      |> List.filter (fun b -> not (List.mem b listed))
      |> List.fold_left (fun acc b -> acc + Codegen.Lower.block_code_bytes (Ir.Func.block f b)) 0
  in
  let full_plan (p : Codegen.Directive.func_plan) =
    (* Append the unlisted blocks so nothing is split out. *)
    match Ir.Program.find_func wb.program p.func with
    | None -> p
    | Some f ->
      let listed = List.concat_map (fun (c : Codegen.Directive.cluster) -> c.blocks) p.clusters in
      let rest =
        List.init (Ir.Func.num_blocks f) Fun.id |> List.filter (fun b -> not (List.mem b listed))
      in
      (match p.clusters with
      | [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks } ] ->
        { p with clusters = [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = blocks @ rest } ] }
      | _ -> p)
  in
  let plans_nosplit = List.map full_plan plans_split in
  (* Variant C: call-based extraction heuristic gate. *)
  let plans_heuristic =
    List.map
      (fun (p : Codegen.Directive.func_plan) ->
        if
          Layout.Split.call_split_profitable ~cold_bytes:(cold_bytes_of p) ~entry_count:1.0
            ~cold_entry_count:0.0
        then p
        else full_plan p)
      plans_split
  in
  let count_split plans =
    List.length
      (List.filter (fun (p : Codegen.Directive.func_plan) -> cold_bytes_of p > 0) plans)
  in
  (* Bytes of code in the primary (hot) clusters: splitting shrinks the
     region the front end must cover. *)
  let hot_region plans =
    List.fold_left
      (fun acc (p : Codegen.Directive.func_plan) ->
        match Ir.Program.find_func wb.program p.func with
        | None -> acc
        | Some f ->
          List.fold_left
            (fun acc (c : Codegen.Directive.cluster) ->
              match c.kind with
              | Codegen.Directive.Primary ->
                List.fold_left
                  (fun acc b -> acc + Codegen.Lower.block_code_bytes (Ir.Func.block f b))
                  acc c.blocks
              | Codegen.Directive.Cold | Codegen.Directive.Extra _ -> acc)
            acc p.clusters)
      0 plans
  in
  let results =
    [
      run_variant "nosplit" plans_nosplit 0;
      run_variant "heuristic" plans_heuristic (count_split plans_heuristic);
      run_variant "bbsections" plans_split (count_split plans_split);
    ]
  in
  let regions =
    [ hot_region plans_nosplit; hot_region plans_heuristic; hot_region plans_split ]
  in
  let _, _, base_c = List.hd results in
  let row ((label, nsplit, (c : Uarch.Core.counters)), region) =
    let n v b = Printf.sprintf "%.1f" (100.0 *. float_of_int v /. float_of_int b) in
    [
      label;
      string_of_int nsplit;
      Report.bytes region;
      n c.t1_itlb_miss base_c.t1_itlb_miss;
      n c.t2_itlb_stall_miss (max 1 base_c.t2_itlb_stall_miss);
      n c.i1_l1i_miss base_c.i1_l1i_miss;
      Printf.sprintf "%.2f" (base_c.cycles /. c.cycles);
    ]
  in
  Report.print_table
    ~header:
      [ "Variant"; "funcs split"; "hot region"; "iTLB T1 (nosplit=100)"; "iTLB T2 (=100)";
        "L1i (=100)"; "speedup" ]
    (List.map row (List.combine results regions))

(* ------------------------------------------------------------------ *)
(* Extension 3.5: profile-guided post-link software prefetch.           *)

let ablation_prefetch () =
  Report.print_title
    "Extension (3.5): profile-guided post-link software prefetch insertion (mysql)";
  let wb = Workbench.get Progen.Suite.mysql in
  let run prefetch =
    let env = Buildsys.Driver.make_env () in
    Propeller.Pipeline.run
      ~config:{ (Workbench.pipeline_config wb.spec) with prefetch }
      ~env ~program:wb.program ~name:"mysql.pf" ()
  in
  let plain = run false and pf = run true in
  let measure (r : Propeller.Pipeline.result) =
    let image = Exec.Image.build wb.program (Propeller.Pipeline.optimized_binary r) in
    let core = Uarch.Core.create (Workbench.core_config wb.spec) in
    let stats = Exec.Interp.run image (Workbench.interp_config wb.spec) (Uarch.Core.sink core) in
    (stats, Uarch.Core.counters core)
  in
  let s0, c0 = measure plain in
  let s1, c1 = measure pf in
  (match pf.prefetch with
  | Some p ->
    Report.print_note
      (Printf.sprintf "directives: %d insertion sites covering %d/%d sampled misses\n"
         (List.length p.sites) p.covered_misses p.sampled_misses)
  | None -> ());
  let row label (s : Exec.Interp.stats) (c : Uarch.Core.counters) =
    [
      label;
      string_of_int s.dmisses;
      string_of_int s.dcovered;
      Printf.sprintf "%.3e" c.cycles;
      Report.pct ((c0.cycles -. c.cycles) /. c0.cycles *. 100.0);
    ]
  in
  Report.print_table
    ~header:[ "Variant"; "data-miss stalls"; "prefetch-covered"; "cycles"; "vs layout-only" ]
    [ row "propeller (layout only)" s0 c0; row "propeller + prefetch" s1 c1 ]

(* ------------------------------------------------------------------ *)
(* Ablation 4.6: a second round of hardware profiling.                  *)

let ablation_rounds () =
  Report.print_title
    "Ablation (4.6): additional round of hardware profiling (clang)";
  let wb = Workbench.get Progen.Suite.clang in
  (* Fresh env: run_rounds rebuilds metadata binaries per round. *)
  let env = Buildsys.Driver.make_env () in
  let rounds =
    Propeller.Pipeline.run_rounds ~rounds:2
      ~config:(Workbench.pipeline_config wb.spec)
      ~env ~program:wb.program ~name:"clang.rounds" ()
  in
  let base_cycles = (Workbench.measure wb Workbench.Base).counters.cycles in
  let rows =
    List.mapi
      (fun i (r : Propeller.Pipeline.result) ->
        let image =
          Exec.Image.build wb.program (Propeller.Pipeline.optimized_binary r)
        in
        let core = Uarch.Core.create (Workbench.core_config wb.spec) in
        let (_ : Exec.Interp.stats) =
          Exec.Interp.run image (Workbench.interp_config wb.spec) (Uarch.Core.sink core)
        in
        let c = Uarch.Core.counters core in
        [
          Printf.sprintf "round %d" (i + 1);
          Printf.sprintf "%d" r.wpa.hot_funcs;
          Printf.sprintf "%d/%d" r.hot_objects r.total_objects;
          Report.pct2 ((base_cycles -. c.cycles) /. base_cycles *. 100.0);
        ])
      rounds
  in
  Report.print_table
    ~header:[ "Round"; "hot funcs"; "objects rebuilt"; "perf vs baseline" ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablation 4.7: intra vs inter-procedural layout.                      *)

let ablation_inter () =
  Report.print_title "Ablation (4.7): intra-function vs inter-procedural layout (clang)";
  let wb = Workbench.get Progen.Suite.clang in
  let t0 = Unix.gettimeofday () in
  let wpa_intra =
    Propeller.Wpa.analyze ~config:Propeller.Wpa.default_config
      ~profile:(Propeller.Wpa.Lbr wb.prop.profile) ~binary:wb.prop.metadata_build.binary ()
  in
  let t1 = Unix.gettimeofday () in
  let wpa_inter =
    Propeller.Wpa.analyze
      ~config:{ Propeller.Wpa.default_config with mode = Propeller.Wpa.Interproc }
      ~profile:(Propeller.Wpa.Lbr wb.prop.profile) ~binary:wb.prop.metadata_build.binary ()
  in
  let t2 = Unix.gettimeofday () in
  let build label wpa =
    let cg, ld = Propeller.Pipeline.optimize_options ~hugepages:false wpa in
    let b =
      Buildsys.Driver.build wb.env ~name:("clang." ^ label) ~program:wb.program
        ~codegen_options:cg ~link_options:ld
    in
    let image = Exec.Image.build wb.program b.binary in
    let core = Uarch.Core.create (Workbench.core_config wb.spec) in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image (Workbench.interp_config wb.spec) (Uarch.Core.sink core)
    in
    Uarch.Core.counters core
  in
  let ci = build "intra" wpa_intra in
  let cx = build "inter" wpa_inter in
  let row label (c : Uarch.Core.counters) =
    [
      label;
      Printf.sprintf "%.3e" c.cycles;
      string_of_int c.i1_l1i_miss;
      string_of_int c.t1_itlb_miss;
      string_of_int c.b2_taken_branches;
    ]
  in
  Report.print_table ~header:[ "Mode"; "cycles"; "L1i miss"; "iTLB miss"; "taken br" ]
    [ row "intra" ci; row "inter" cx ];
  Report.kv
    [
      ("inter vs intra speedup", Report.pct ((ci.cycles -. cx.cycles) /. ci.cycles *. 100.0));
      ("analysis time (intra)", Printf.sprintf "%.2fs" (t1 -. t0));
      ( "analysis time (inter)",
        Printf.sprintf "%.2fs (%.1fx)" (t2 -. t1) ((t2 -. t1) /. max 1e-9 (t1 -. t0)) );
    ]

(* ------------------------------------------------------------------ *)
(* Ablation 4.1: cluster sections vs one section per block.             *)

let ablation_clusters () =
  Report.print_title "Ablation (4.1): bb clusters vs one section per basic block (clang)";
  let wb = Workbench.get Progen.Suite.clang in
  let explode (p : Codegen.Directive.func_plan) =
    let blocks = List.concat_map (fun (c : Codegen.Directive.cluster) -> c.blocks) p.clusters in
    let clusters =
      List.mapi
        (fun i b ->
          if i = 0 then { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ b ] }
          else { Codegen.Directive.kind = Codegen.Directive.Extra i; blocks = [ b ] })
        blocks
    in
    { p with clusters }
  in
  let exploded_plans = List.map explode wb.prop.wpa.plans in
  let exploded_ordering =
    List.concat_map
      (fun sym ->
        if Objfile.Symname.is_cold sym then [ sym ]
        else
          match
            List.find_opt
              (fun (p : Codegen.Directive.func_plan) -> String.equal p.func sym)
              exploded_plans
          with
          | None -> [ sym ]
          | Some p -> List.map (Codegen.Directive.symbol p.func) p.clusters)
      wb.prop.wpa.ordering
  in
  let build label plans ordering =
    let wpa = { wb.prop.wpa with plans; ordering } in
    let cg, ld = Propeller.Pipeline.optimize_options ~hugepages:false wpa in
    let env = Buildsys.Driver.make_env () in
    Buildsys.Driver.build env ~name:("clang." ^ label) ~program:wb.program ~codegen_options:cg
      ~link_options:ld
  in
  let clustered = build "clusters" wb.prop.wpa.plans wb.prop.wpa.ordering in
  let exploded = build "allbb" exploded_plans exploded_ordering in
  let row label (b : Buildsys.Driver.result) =
    let objs = List.fold_left (fun a o -> a + Objfile.File.total_size o) 0 b.objs in
    [
      label;
      Report.bytes objs;
      string_of_int b.link_stats.num_input_sections;
      Report.bytes b.link_stats.peak_mem_bytes;
      Report.bytes (Linker.Binary.size_of_kind b.binary Objfile.Section.Eh_frame);
    ]
  in
  Report.print_table
    ~header:[ "Variant"; "object bytes"; "input sections"; "link peak mem"; "eh_frame" ]
    [ row "clusters (Propeller)" clustered; row "all bb sections" exploded ]

(* ------------------------------------------------------------------ *)
(* Layout-policy tournament: cycle-fitness search vs Ext-TSP            *)
(* (AI-PROPELLER setup from PAPERS.md), per progen shape.               *)

let layout_search () =
  Report.print_title
    "Layout search: cycle-fitness policy tournament vs Ext-TSP (per progen shape)";
  let shapes = [ "505.mcf"; "548.exchange2"; "531.deepsjeng" ] in
  let rows =
    List.map
      (fun name ->
        let spec =
          { (Option.get (Progen.Suite.by_name name)) with Progen.Spec.requests = 40 }
        in
        let program = Progen.Generate.program spec in
        let ctx = Support.Ctx.create ~recorder:(Obs.Recorder.create ()) () in
        let res =
          Diagnostics.Lsearch.analyze
            ~pipeline:(Workbench.pipeline_config spec)
            ~core:(Workbench.core_config spec)
            ~requests:spec.requests ~budget:14
            ~seed:(Int64.to_int spec.seed land 0xffff)
            ~ctx ~program ~name:spec.name ()
        in
        [
          spec.name;
          Printf.sprintf "%.3e" res.exttsp_cycles;
          res.winner_policy;
          Printf.sprintf "%.3e" res.winner_cycles;
          Report.pct2 res.win_vs_exttsp_pct;
          Printf.sprintf "%d/%d" res.discordant_pairs res.comparable_pairs;
          Printf.sprintf "%.2f" res.proxy_agreement;
        ])
      shapes
  in
  Report.print_table
    ~header:
      [
        "Shape"; "ext-tsp cycles"; "winner"; "winner cycles"; "win"; "discordant"; "agreement";
      ]
    rows

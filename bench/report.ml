(* Plain-text table rendering for the experiment reports. *)

let hr width = String.make width '-'

let print_title title =
  Printf.printf "\n%s\n%s\n" title (hr (String.length title))

(* Notes are plain strings, not format strings: callers compose with
   [Printf.sprintf] so a '%' in a note (e.g. "5.8%") can never crash the
   renderer at run time. *)
let print_note s = print_string s

(* Aligned key/value notes: [kv [("profile", "LBR"); ...]] renders each
   pair as "  key .....: value" with keys padded to a shared width. *)
let kv pairs =
  let width = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs in
  List.iter
    (fun (k, v) -> Printf.printf "  %s%s: %s\n" k (String.make (width - String.length k) ' ') v)
    pairs

(* Render rows of fixed-width columns; widths derived from content. *)
let print_table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let print_row row =
    List.iteri
      (fun i cell ->
        let pad = widths.(i) - String.length cell in
        if i = 0 then Printf.printf "%s%s" cell (String.make pad ' ')
        else Printf.printf "  %s%s" (String.make pad ' ') cell)
      row;
    print_newline ()
  in
  print_row header;
  Printf.printf "%s\n" (hr (Array.fold_left ( + ) (2 * (cols - 1)) widths));
  List.iter print_row rows

let pct v = Printf.sprintf "%+.1f%%" v

let pct2 v = Printf.sprintf "%+.2f%%" v

let bytes v =
  let f = float_of_int v in
  if f >= 1.0e9 then Printf.sprintf "%.1f GB" (f /. 1.0e9)
  else if f >= 1.0e6 then Printf.sprintf "%.0f MB" (f /. 1.0e6)
  else if f >= 1.0e3 then Printf.sprintf "%.0f KB" (f /. 1.0e3)
  else Printf.sprintf "%d B" v

let count v =
  let f = float_of_int v in
  if f >= 1.0e6 then Printf.sprintf "%.1f M" (f /. 1.0e6)
  else if f >= 1.0e3 then Printf.sprintf "%.0f K" (f /. 1.0e3)
  else string_of_int v

let seconds v =
  if v >= 60.0 then Printf.sprintf "%.1f min" (v /. 60.0) else Printf.sprintf "%.1f s" v

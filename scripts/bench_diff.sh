#!/bin/sh
# Diff two bench JSON files (see EXPERIMENTS.md "Bench JSON schema") and
# fail on regressions past a threshold.
#
#   scripts/bench_diff.sh BASELINE.json CURRENT.json [THRESHOLD_PCT]
#
# Exit codes: 0 ok, 1 regression or missing judged metric, 2 bad input.
set -eu

if [ $# -lt 2 ] || [ $# -gt 3 ]; then
  echo "usage: $0 BASELINE.json CURRENT.json [THRESHOLD_PCT]" >&2
  exit 2
fi

cd "$(dirname "$0")/.."
exec dune exec bin/propeller_stat.exe -- diff "$1" "$2" --threshold "${3:-5}"

#!/bin/sh
# Repo health check: build, full test suite, and an observability smoke
# run of the end-to-end driver. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== repo hygiene =="
# Build artifacts must never be tracked or staged.
if git ls-files | grep -q '^_build/'; then
  echo "FAIL: _build/ paths are tracked by git" >&2
  git ls-files | grep '^_build/' | head >&2
  exit 1
fi
if git status --porcelain | awk '{print $2}' | grep -q '^_build/'; then
  echo "FAIL: _build/ paths are staged or modified in git status" >&2
  exit 1
fi

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== propeller_driver --trace smoke =="
out_dir=$(mktemp -d)
trap 'rm -rf "$out_dir"' EXIT

log="$out_dir/driver.log"
dune exec bin/propeller_driver.exe -- \
  --benchmark 505.mcf --requests 40 \
  --trace "$out_dir/trace.json" \
  --metrics-out "$out_dir/metrics.json" \
  --metrics >"$log"

# The driver re-parses the trace it wrote with its own JSON parser and
# reports the verdict; require that confirmation plus both artifacts.
grep -q "valid JSON" "$log" || {
  echo "FAIL: driver did not validate the emitted trace" >&2
  cat "$log" >&2
  exit 1
}
test -s "$out_dir/trace.json" || { echo "FAIL: empty trace.json" >&2; exit 1; }
test -s "$out_dir/metrics.json" || { echo "FAIL: empty metrics.json" >&2; exit 1; }
grep -q '"traceEvents"' "$out_dir/trace.json" || {
  echo "FAIL: trace.json is not a Chrome trace-event file" >&2
  exit 1
}
# One complete-duration span per pipeline phase (paper Table 5 rows).
for phase in metadata_build profiling wpa optimized_build; do
  grep -q "\"phase:$phase\"" "$out_dir/trace.json" || {
    echo "FAIL: trace.json missing phase:$phase span" >&2
    exit 1
  }
done
grep -q "buildsys.cache" "$out_dir/metrics.json" || {
  echo "FAIL: metrics.json missing build-cache counters" >&2
  exit 1
}

echo "== self-profile smoke =="
# --self-profile-out must emit JSON our own parser accepts (the tool
# validates and prints the verdict) and a non-empty hotspot table.
dune exec bin/propeller_driver.exe -- \
  --benchmark 505.mcf --requests 40 \
  --self-profile-out "$out_dir/selfprof.json" >"$out_dir/selfprof.log"
grep -q "self-profile: .*valid JSON" "$out_dir/selfprof.log" || {
  echo "FAIL: driver did not validate the emitted self-profile" >&2
  cat "$out_dir/selfprof.log" >&2
  exit 1
}
test -s "$out_dir/selfprof.json" || { echo "FAIL: empty selfprof.json" >&2; exit 1; }
grep -q '^self-profile hotspots' "$out_dir/selfprof.log" || {
  echo "FAIL: driver printed no hotspot table" >&2
  exit 1
}
# At least one known phase must rank (the table is never empty on a
# real run).
grep -Eq '^(compile|exec:run|link|codegen|phase:wpa) ' "$out_dir/selfprof.log" || {
  echo "FAIL: hotspot table has no recognizable phase rows" >&2
  cat "$out_dir/selfprof.log" >&2
  exit 1
}
# propeller_stat top re-reads the exported profile.
dune exec bin/propeller_stat.exe -- top --from "$out_dir/selfprof.json" -n 5 \
  >"$out_dir/top.log" || {
  echo "FAIL: propeller_stat top --from rejected the exported profile" >&2
  exit 1
}
test -s "$out_dir/top.log" || { echo "FAIL: propeller_stat top printed nothing" >&2; exit 1; }

echo "== parallel determinism smoke =="
# The --jobs contract: the optimized image and the judged metrics are
# byte-identical at any pool width (traces may differ; they only add
# per-domain lanes) — and stay so with self-profiling on, which must
# never perturb simulated outputs. Run the driver at 4 and 1 and
# compare.
for j in 4 1; do
  dune exec bin/propeller_driver.exe -- \
    --benchmark 505.mcf --requests 40 --jobs "$j" --self-profile \
    --metrics-out "$out_dir/metrics_j$j.json" >"$out_dir/driver_j$j.log"
done
digest4=$(grep '^image digest:' "$out_dir/driver_j4.log")
digest1=$(grep '^image digest:' "$out_dir/driver_j1.log")
test -n "$digest1" || { echo "FAIL: driver printed no image digest" >&2; exit 1; }
if [ "$digest4" != "$digest1" ]; then
  echo "FAIL: image digest differs between --jobs 4 and --jobs 1" >&2
  echo "  jobs=4: $digest4" >&2
  echo "  jobs=1: $digest1" >&2
  exit 1
fi
cmp -s "$out_dir/metrics_j4.json" "$out_dir/metrics_j1.json" || {
  echo "FAIL: metrics JSON differs between --jobs 4 and --jobs 1" >&2
  exit 1
}
# Fast-path equivalence: the flat tape dispatch and the packed-key LBR
# collector feed phase 3, so its deterministic summary (sample and
# hot-func counts) must not depend on pool width either.
prof1=$(sed -n 's/^phase 3 ([^)]*): \([0-9]* samples, [0-9]* hot funcs\).*/\1/p' "$out_dir/driver_j1.log")
prof4=$(sed -n 's/^phase 3 ([^)]*): \([0-9]* samples, [0-9]* hot funcs\).*/\1/p' "$out_dir/driver_j4.log")
test -n "$prof1" || { echo "FAIL: driver printed no phase 3 profile summary" >&2; exit 1; }
if [ "$prof1" != "$prof4" ]; then
  echo "FAIL: profile summary differs between --jobs 1 and --jobs 4" >&2
  echo "  jobs=1: $prof1" >&2
  echo "  jobs=4: $prof4" >&2
  exit 1
fi

echo "== propeller_inspect smoke =="
# Each view must produce JSON that our own Obs.Json parser accepts; the
# validate subcommand exits non-zero on any parse failure.
for view in annotate size paths; do
  dune exec bin/propeller_inspect.exe -- "$view" \
    -b 505.mcf -r 40 --json -o "$out_dir/inspect_$view.json" || {
    echo "FAIL: propeller_inspect $view --json exited non-zero" >&2
    exit 1
  }
  test -s "$out_dir/inspect_$view.json" || {
    echo "FAIL: empty inspect_$view.json" >&2
    exit 1
  }
done
dune exec bin/propeller_inspect.exe -- validate \
  "$out_dir/inspect_annotate.json" "$out_dir/inspect_size.json" \
  "$out_dir/inspect_paths.json" || {
  echo "FAIL: propeller_inspect validate rejected an emitted view" >&2
  exit 1
}

echo "== sampled profile-source smoke =="
# The software-sampler regime (ISSUE 8): --profile-source sampled must
# relink deterministically — byte-identical digest across reruns and
# pool widths — and print the sampler stats line; a bogus source name
# must be rejected with the valid set listed.
for tag in a b j1; do
  jobs=4; [ "$tag" = j1 ] && jobs=1
  dune exec bin/propeller_driver.exe -- \
    --benchmark 505.mcf --requests 40 --jobs "$jobs" \
    --profile-source sampled >"$out_dir/sampled_$tag.log"
done
grep -q 'software sampler:' "$out_dir/sampled_a.log" || {
  echo "FAIL: sampled driver printed no sampler stats line" >&2
  cat "$out_dir/sampled_a.log" >&2
  exit 1
}
grep -q 'source sampled' "$out_dir/sampled_a.log" || {
  echo "FAIL: sampled driver did not report its profile source" >&2
  exit 1
}
sa=$(grep '^image digest:' "$out_dir/sampled_a.log")
sb=$(grep '^image digest:' "$out_dir/sampled_b.log")
sj=$(grep '^image digest:' "$out_dir/sampled_j1.log")
test -n "$sa" || { echo "FAIL: sampled driver printed no image digest" >&2; exit 1; }
if [ "$sa" != "$sb" ] || [ "$sa" != "$sj" ]; then
  echo "FAIL: sampled relink is not deterministic across reruns/pool widths" >&2
  echo "  rerun a (jobs 4): $sa" >&2
  echo "  rerun b (jobs 4): $sb" >&2
  echo "  jobs 1:           $sj" >&2
  exit 1
fi
# The sampled profile must steer the layout somewhere else than the LBR
# profile does (the fidelity gap is nonzero by construction).
lbrd=$(grep '^image digest:' "$out_dir/driver_j1.log")
if [ "$sa" = "$lbrd" ]; then
  echo "FAIL: sampled and LBR profiles produced the same image (gap lost?)" >&2
  exit 1
fi
if dune exec bin/propeller_driver.exe -- \
  --benchmark 505.mcf --requests 40 --profile-source pebs \
  >"$out_dir/sampled_bad.log" 2>&1; then
  echo "FAIL: bogus --profile-source value was accepted" >&2
  exit 1
fi
grep -q 'lbr' "$out_dir/sampled_bad.log" || {
  echo "FAIL: bad --profile-source error does not list valid sources" >&2
  cat "$out_dir/sampled_bad.log" >&2
  exit 1
}

echo "== fidelity report smoke =="
# The LBR-vs-sampled gap experiment: JSON must re-parse with our own
# Obs.Json parser (the tool validates and prints the verdict) and carry
# both sides.
dune exec bin/propeller_stat.exe -- fidelity -b 505.mcf -r 20 \
  --json -o "$out_dir/fidelity.json" >"$out_dir/fidelity.log" || {
  echo "FAIL: propeller_stat fidelity exited non-zero" >&2
  cat "$out_dir/fidelity.log" >&2
  exit 1
}
test -s "$out_dir/fidelity.json" || { echo "FAIL: empty fidelity.json" >&2; exit 1; }
dune exec bin/propeller_inspect.exe -- validate "$out_dir/fidelity.json" || {
  echo "FAIL: fidelity JSON rejected by propeller_inspect validate" >&2
  exit 1
}
for key in '"lbr"' '"sampled"' '"weight_correlation"' '"cycle_gap_pct"'; do
  grep -q "$key" "$out_dir/fidelity.json" || {
    echo "FAIL: fidelity JSON missing $key" >&2
    exit 1
  }
done

echo "== layout policy smoke =="
# Every registered policy must drive the full relink via --layout-policy
# (ISSUE 10); keep this list in sync with Layout.Policy.names. The
# default run must be byte-identical to an explicit --layout-policy
# exttsp run (the policy API redesign may not move the default layout).
for pol in exttsp exttsp-linear callchain greedy hillclimb local-search; do
  dune exec bin/propeller_driver.exe -- \
    --benchmark 505.mcf --requests 40 --layout-policy "$pol" \
    >"$out_dir/policy_$pol.log" || {
    echo "FAIL: --layout-policy $pol run failed" >&2
    cat "$out_dir/policy_$pol.log" >&2
    exit 1
  }
  grep -q '^image digest:' "$out_dir/policy_$pol.log" || {
    echo "FAIL: --layout-policy $pol printed no image digest" >&2
    exit 1
  }
done
default_digest=$(grep '^image digest:' "$out_dir/driver_j1.log")
exttsp_digest=$(grep '^image digest:' "$out_dir/policy_exttsp.log")
if [ "$default_digest" != "$exttsp_digest" ]; then
  echo "FAIL: --layout-policy exttsp diverges from the default run" >&2
  echo "  default: $default_digest" >&2
  echo "  exttsp:  $exttsp_digest" >&2
  exit 1
fi
if dune exec bin/propeller_driver.exe -- \
  --benchmark 505.mcf --requests 40 --layout-policy pettis \
  >"$out_dir/policy_bad.log" 2>&1; then
  echo "FAIL: bogus --layout-policy value was accepted" >&2
  exit 1
fi
grep -q 'exttsp' "$out_dir/policy_bad.log" || {
  echo "FAIL: bad --layout-policy error does not list valid policies" >&2
  cat "$out_dir/policy_bad.log" >&2
  exit 1
}

echo "== layout search smoke =="
# Tiny-budget tournament: the JSON report must re-parse with our own
# parser and carry the exttsp baseline, a winner, and the quantified
# score-vs-cycles agreement.
dune exec bin/propeller_stat.exe -- search -b 505.mcf -r 20 --budget 7 \
  --json -o "$out_dir/search.json" >"$out_dir/search.log" || {
  echo "FAIL: propeller_stat search exited non-zero" >&2
  cat "$out_dir/search.log" >&2
  exit 1
}
test -s "$out_dir/search.json" || { echo "FAIL: empty search.json" >&2; exit 1; }
dune exec bin/propeller_inspect.exe -- validate "$out_dir/search.json" || {
  echo "FAIL: search JSON rejected by propeller_inspect validate" >&2
  exit 1
}
for key in '"winner_policy"' '"exttsp_po_cycles"' '"proxy_agreement"' '"entries"'; do
  grep -q "$key" "$out_dir/search.json" || {
    echo "FAIL: search JSON missing $key" >&2
    exit 1
  }
done

echo "== fault injection smoke =="
# Seeded fault plans replay byte-identically: the same --faults plan and
# seed print the same image digest and the same resilience line on every
# rerun; a degradation-free plan (no persistent failures, no shard
# drops) recovers the fault-free image bit for bit.
plan='action=0.2,persist=0.1,straggle=0.1,corrupt=0.15,shard-drop=0.1'
for seed in 7 11; do
  for rerun in a b; do
    dune exec bin/propeller_driver.exe -- \
      --benchmark 505.mcf --requests 40 \
      --faults "$plan" --seed "$seed" \
      --metrics-out "$out_dir/faults_${seed}_${rerun}.metrics.json" \
      >"$out_dir/faults_${seed}_${rerun}.log"
  done
  cmp -s "$out_dir/faults_${seed}_a.metrics.json" \
    "$out_dir/faults_${seed}_b.metrics.json" || {
    echo "FAIL: faulted metrics JSON differs across reruns (seed $seed)" >&2
    exit 1
  }
  grep -q '^resilience:' "$out_dir/faults_${seed}_a.log" || {
    echo "FAIL: faulted driver printed no resilience line (seed $seed)" >&2
    exit 1
  }
  da=$(grep '^image digest:' "$out_dir/faults_${seed}_a.log")
  db=$(grep '^image digest:' "$out_dir/faults_${seed}_b.log")
  ra=$(grep '^resilience:' "$out_dir/faults_${seed}_a.log")
  rb=$(grep '^resilience:' "$out_dir/faults_${seed}_b.log")
  test -n "$da" || { echo "FAIL: faulted driver printed no image digest" >&2; exit 1; }
  if [ "$da" != "$db" ] || [ "$ra" != "$rb" ]; then
    echo "FAIL: fault replay at seed $seed is not deterministic" >&2
    echo "  run a: $da / $ra" >&2
    echo "  run b: $db / $rb" >&2
    exit 1
  fi
done
dune exec bin/propeller_driver.exe -- \
  --benchmark 505.mcf --requests 40 \
  --faults 'seed=3,action=0.3,straggle=0.2,corrupt=0.3' \
  >"$out_dir/faults_nodeg.log"
clean=$(grep '^image digest:' "$out_dir/driver_j1.log")
nodeg=$(grep '^image digest:' "$out_dir/faults_nodeg.log")
if [ "$clean" != "$nodeg" ]; then
  echo "FAIL: degradation-free fault plan changed the image" >&2
  echo "  fault-free: $clean" >&2
  echo "  faulted:    $nodeg" >&2
  exit 1
fi

echo "== fleet continuous-relink smoke =="
# The continuous profile -> relink -> canary loop. A quiesced run
# (steady traffic, dense sampling, single-round window) must reach its
# fixed point within two relinks and produce a byte-identical JSON
# report on rerun; a sabotaged canary must be judged, rolled back, and
# leave its verdict in the flight-recorder dump.
for rerun in a b; do
  dune exec bin/propeller_fleet.exe -- run \
    -b 505.mcf -r 60 --machines 4 --cycles 3 --seed 7 \
    --lbr-period 1 --jitter 0 --window 1 \
    --json-out "$out_dir/fleet_$rerun.json" >"$out_dir/fleet_$rerun.log"
done
cmp -s "$out_dir/fleet_a.json" "$out_dir/fleet_b.json" || {
  echo "FAIL: fleet JSON report differs across identical reruns" >&2
  exit 1
}
grep -q '"converged":true' "$out_dir/fleet_a.json" || {
  echo "FAIL: quiesced fleet loop did not converge" >&2
  cat "$out_dir/fleet_a.log" >&2
  exit 1
}
grep -Eq '"converged_after_relinks":[12],' "$out_dir/fleet_a.json" || {
  echo "FAIL: fleet loop needed more than two relinks to converge" >&2
  cat "$out_dir/fleet_a.log" >&2
  exit 1
}
dune exec bin/propeller_fleet.exe -- run \
  -b 505.mcf -r 60 --machines 4 --cycles 2 --seed 7 \
  --lbr-period 1 --jitter 0 --window 1 --sabotage-cycle 2 \
  --json-out "$out_dir/fleet_sab.json" \
  >"$out_dir/fleet_sab.log" 2>"$out_dir/fleet_sab.err"
grep -q '"verdict":"rolled_back"' "$out_dir/fleet_sab.json" || {
  echo "FAIL: sabotaged canary was not rolled back" >&2
  cat "$out_dir/fleet_sab.log" >&2
  exit 1
}
grep -q '"rollbacks":1' "$out_dir/fleet_sab.json" || {
  echo "FAIL: sabotage drill recorded no rollback" >&2
  exit 1
}
grep -q 'fleet.rollback' "$out_dir/fleet_sab.err" || {
  echo "FAIL: rollback verdict missing from the flight-recorder dump" >&2
  cat "$out_dir/fleet_sab.err" >&2
  exit 1
}

echo "== bench regression gate =="
# Emit a fresh bench JSON for the small progen workload and diff it
# against the committed golden baseline; >5% regression fails the check.
# --jobs 1 pins the judged metrics to the sequential path (the parallel
# sweep inside the JSON is informational and not diffed).
dune exec bench/main.exe -- --jobs 1 \
  --json-out "$out_dir/bench.json" --json-bench 505.mcf --json-requests 40 \
  >"$out_dir/bench.log" 2>&1 || {
  echo "FAIL: bench --json-out run failed" >&2
  cat "$out_dir/bench.log" >&2
  exit 1
}
# The informational micro object (fast-path kernel timings) must ride
# along in every bench file.
grep -q '"micro"' "$out_dir/bench.json" || {
  echo "FAIL: bench JSON missing the micro kernel-timing object" >&2
  exit 1
}
# The informational layout_search object (schema v9) must ride along
# too, with a strict win recorded against the Ext-TSP baseline.
grep -q '"layout_search"' "$out_dir/bench.json" || {
  echo "FAIL: bench JSON missing the layout_search tournament object" >&2
  exit 1
}
scripts/bench_diff.sh bench/baseline.json "$out_dir/bench.json" 5 || {
  echo "FAIL: bench regression vs bench/baseline.json" >&2
  exit 1
}

echo "OK: build + tests + trace smoke + sampled smoke + fidelity smoke + policy smoke + search smoke + fault smoke + fleet smoke + bench gate all green"

bin/boltsim_driver.mli:

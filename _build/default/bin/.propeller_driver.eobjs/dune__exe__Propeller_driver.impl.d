bin/propeller_driver.ml: Arg Buildsys Cmd Cmdliner Codegen Exec Ir List Printf Progen Propeller String Support Term Uarch

bin/boltsim_driver.ml: Arg Boltsim Buildsys Cmd Cmdliner Codegen Exec Ir Linker Perfmon Printf Progen Term

bin/propeller_driver.mli:

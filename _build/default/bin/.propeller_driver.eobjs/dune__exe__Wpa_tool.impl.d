bin/wpa_tool.ml: Arg Buildsys Cmd Cmdliner Codegen Exec Linker Objfile Perfmon Printf Progen Propeller Term

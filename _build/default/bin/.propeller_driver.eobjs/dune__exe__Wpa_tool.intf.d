bin/wpa_tool.mli:

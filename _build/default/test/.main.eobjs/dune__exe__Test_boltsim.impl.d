test/test_boltsim.ml: Alcotest Boltsim Buildsys Codegen Exec Hashtbl Ir Lazy Linker Objfile Testutil Uarch

test/test_isa.ml: Alcotest Isa List Testutil

test/test_inline.ml: Alcotest Array Codegen Exec Format Ir Linker List Option Testutil

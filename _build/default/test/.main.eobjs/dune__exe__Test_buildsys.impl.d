test/test_buildsys.ml: Alcotest Buildsys Codegen Fun Gen Ir Linker List Option QCheck QCheck_alcotest String Support Testutil

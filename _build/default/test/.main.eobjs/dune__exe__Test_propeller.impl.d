test/test_propeller.ml: Alcotest Buildsys Codegen Exec Hashtbl Ir Lazy Linker List Objfile Perfmon Propeller Testutil Uarch

test/test_codegen.ml: Alcotest Codegen Fun Ir Isa List Objfile Option Result String Testutil

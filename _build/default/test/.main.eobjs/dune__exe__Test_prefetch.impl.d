test/test_prefetch.ml: Alcotest Buildsys Codegen Exec Ir Isa Linker List Perfmon Propeller Testutil

test/test_exec.ml: Alcotest Codegen Exec Fun Ir Linker List Testutil

test/test_properties.ml: Array Buildsys Codegen Exec Hashtbl Int64 Ir Linker List Objfile Option Printf Progen Propeller QCheck QCheck_alcotest Support Uarch

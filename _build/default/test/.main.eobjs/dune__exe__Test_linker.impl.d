test/test_linker.ml: Alcotest Codegen Hashtbl Ir Isa Linker List Objfile Option Testutil

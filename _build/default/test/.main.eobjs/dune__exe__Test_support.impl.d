test/test_support.ml: Alcotest Array List QCheck QCheck_alcotest Support Testutil

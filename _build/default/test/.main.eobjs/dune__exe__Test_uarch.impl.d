test/test_uarch.ml: Alcotest Exec Linker List String Testutil Uarch

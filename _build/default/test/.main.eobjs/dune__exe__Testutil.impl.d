test/testutil.ml: Alcotest Codegen Exec Ir Isa Linker Option Perfmon Progen

test/test_objfile.ml: Alcotest Gen Isa List Objfile Option QCheck QCheck_alcotest String Testutil

test/test_integration.ml: Alcotest Buildsys Codegen Exec Hashtbl Ir Linker List Objfile Option Progen Propeller Testutil Uarch

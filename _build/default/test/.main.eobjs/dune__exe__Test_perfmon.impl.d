test/test_perfmon.ml: Alcotest Exec Hashtbl Ir Linker Perfmon Testutil

test/test_layout.ml: Alcotest Fun Gen Layout List Option Printf QCheck QCheck_alcotest String Testutil

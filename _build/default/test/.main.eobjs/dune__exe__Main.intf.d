test/main.mli:

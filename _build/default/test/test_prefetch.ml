open Testutil

(* A single hot loop whose body does a delinquent load every iteration:
   the simplest prefetch target. *)
let delinquent_program ?(miss_prob = 0.5) () =
  let f =
    Ir.Func.make ~name:"main"
      [|
        Ir.Block.make ~id:0 ~body:[ Ir.Inst.Compute 6 ] ~term:(Ir.Term.Jump 1) ();
        Ir.Block.make ~id:1
          ~body:[ Ir.Inst.DelinquentLoad { bytes = 6; miss_prob }; Ir.Inst.Compute 8 ]
          ~term:(branch ~taken:1 ~fallthrough:2 ~prob:0.9 ())
          ();
        Ir.Block.make ~id:2 ~body:[ Ir.Inst.Compute 4 ] ~term:Ir.Term.Return ();
      |]
  in
  Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ f ] ]

let run_with ?(codegen = Codegen.default_options) ?(requests = 200) program =
  let objs = Codegen.compile_program codegen program in
  let { Linker.Link.binary; _ } = Linker.Link.link ~name:"t" ~entry:"main" objs in
  let image = Exec.Image.build program binary in
  let stats = Exec.Interp.run image { Exec.Interp.default_config with requests } Exec.Event.null in
  (binary, stats)

let test_delinquent_loads_miss () =
  let program = delinquent_program () in
  let _, stats = run_with program in
  check tb "loads retired" true (stats.dloads > 0);
  let rate = float_of_int stats.dmisses /. float_of_int stats.dloads in
  check tb "miss rate near probability" true (rate > 0.4 && rate < 0.6);
  check ti "nothing covered without prefetch" 0 stats.dcovered

let test_prefetch_covers_misses () =
  let program = delinquent_program () in
  let codegen = { Codegen.default_options with prefetch_sites = [ ("main", 1) ] } in
  let _, stats = run_with ~codegen program in
  check ti "all misses covered" 0 stats.dmisses;
  check tb "coverage recorded" true (stats.dcovered > 0)

let test_prefetch_instruction_emitted () =
  let program = delinquent_program () in
  let codegen = { Codegen.default_options with prefetch_sites = [ ("main", 1) ] } in
  let binary, _ = run_with ~codegen program in
  let b1 = Linker.Binary.block_info_exn binary ~func:"main" ~block:1 in
  check tb "prefetch in block 1" true (List.mem Isa.Prefetch b1.insts);
  let b0 = Linker.Binary.block_info_exn binary ~func:"main" ~block:0 in
  check tb "no prefetch elsewhere" false (List.mem Isa.Prefetch b0.insts)

let test_miss_roll_layout_invariant () =
  (* Whether a load would miss is logical, so covered + uncovered counts
     are conserved across prefetch insertion. *)
  let program = delinquent_program () in
  let _, plain = run_with program in
  let _, covered =
    run_with ~codegen:{ Codegen.default_options with prefetch_sites = [ ("main", 1) ] } program
  in
  check ti "total would-miss conserved" (plain.dmisses + plain.dcovered)
    (covered.dmisses + covered.dcovered)

let test_pebs_sampling () =
  let program = delinquent_program () in
  let objs = Codegen.compile_program Codegen.default_options program in
  let { Linker.Link.binary; _ } = Linker.Link.link ~name:"t" ~entry:"main" objs in
  let image = Exec.Image.build program binary in
  let pebs = Perfmon.Pebs.create_profile () in
  let stats =
    Exec.Interp.run image
      { Exec.Interp.default_config with requests = 300 }
      (Perfmon.Pebs.collector { Perfmon.Pebs.period = 7 } pebs)
  in
  check tb "samples collected" true (pebs.num_samples > 0);
  check tb "sampling thins" true (Perfmon.Pebs.total pebs < stats.dmisses);
  check tb "sampling ratio near period" true
    (abs (pebs.num_samples - (stats.dmisses / 7)) <= 1)

let test_analysis_finds_site () =
  let program = delinquent_program () in
  let objs =
    Codegen.compile_program { Codegen.default_options with emit_bb_addr_map = true } program
  in
  let { Linker.Link.binary; _ } =
    Linker.Link.link
      ~options:{ Linker.Link.default_options with keep_bb_addr_map = true }
      ~name:"t" ~entry:"main" objs
  in
  let image = Exec.Image.build program binary in
  let pebs = Perfmon.Pebs.create_profile () in
  let (_ : Exec.Interp.stats) =
    Exec.Interp.run image
      { Exec.Interp.default_config with requests = 300 }
      (Perfmon.Pebs.collector Perfmon.Pebs.default_config pebs)
  in
  let r = Propeller.Prefetch.analyze ~pebs ~binary () in
  check tb "the loop body is nominated" true (List.mem ("main", 1) r.sites);
  check tb "coverage accounted" true (r.covered_misses > 0 && r.covered_misses <= r.sampled_misses)

let test_end_to_end_prefetch_pipeline () =
  let spec, program = medium_program ~seed:77L () in
  let env = Buildsys.Driver.make_env () in
  let result =
    Propeller.Pipeline.run
      ~config:
        {
          Propeller.Pipeline.default_config with
          profile_run = { Exec.Interp.default_config with requests = spec.requests };
          prefetch = true;
        }
      ~env ~program ~name:"pf" ()
  in
  (match result.prefetch with
  | None -> Alcotest.fail "prefetch analysis missing"
  | Some p -> check tb "sites nominated" true (p.sites <> []));
  (* The optimized binary must stall on fewer data misses. *)
  let run binary =
    let image = Exec.Image.build program binary in
    Exec.Interp.run image
      { Exec.Interp.default_config with requests = spec.requests }
      Exec.Event.null
  in
  let before = run result.metadata_build.binary in
  let after = run (Propeller.Pipeline.optimized_binary result) in
  check tb "uncovered misses reduced" true (after.dmisses < before.dmisses);
  check tb "covered misses appeared" true (after.dcovered > 0)

let suite =
  [
    Alcotest.test_case "delinquent loads miss" `Quick test_delinquent_loads_miss;
    Alcotest.test_case "prefetch covers misses" `Quick test_prefetch_covers_misses;
    Alcotest.test_case "prefetch instruction emitted" `Quick test_prefetch_instruction_emitted;
    Alcotest.test_case "miss roll layout invariant" `Quick test_miss_roll_layout_invariant;
    Alcotest.test_case "pebs sampling" `Quick test_pebs_sampling;
    Alcotest.test_case "analysis finds the site" `Quick test_analysis_finds_site;
    Alcotest.test_case "end-to-end pipeline" `Slow test_end_to_end_prefetch_pipeline;
  ]

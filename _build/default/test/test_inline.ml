open Testutil

(* A hot call site in main's entry; callee is a small diamond. *)
let make_program ?(callee_blocks = 4) () =
  let callee =
    if callee_blocks = 1 then
      Ir.Func.make ~name:"callee"
        [| Ir.Block.make ~id:0 ~body:[ Ir.Inst.Compute 9 ] ~term:Ir.Term.Return () |]
    else diamond_func ~name:"callee" ()
  in
  let main =
    Ir.Func.make ~name:"main"
      [|
        Ir.Block.make ~id:0
          ~body:[ Ir.Inst.Compute 6; Ir.Inst.DirectCall "callee"; Ir.Inst.Compute 4 ]
          ~term:(Ir.Term.Jump 1) ();
        Ir.Block.make ~id:1 ~body:[ Ir.Inst.Compute 5 ] ~term:Ir.Term.Return ();
      |]
  in
  Ir.Program.make ~name:"p" ~main:"main"
    [ Ir.Cunit.make ~name:"um" [ main ]; Ir.Cunit.make ~name:"uc" [ callee ] ]

let inlined_main ?config program =
  let main = Ir.Program.find_func_exn program "main" in
  Codegen.Inline.func ?config ~program main

let test_inline_splices_callee () =
  let program = make_program () in
  let main', count = inlined_main program in
  check ti "one site inlined" 1 count;
  (* main had 2 blocks; callee has 4; plus the tail: 2 + 4 + 1 = 7. *)
  check ti "block count" 7 (Ir.Func.num_blocks main');
  (* The call is gone. *)
  check tb "no call left" true
    (not (List.exists (fun (c, _) -> c = "callee") (Ir.Func.calls main')))

let test_inline_wires_control_flow () =
  let program = make_program () in
  let main', _ = inlined_main program in
  (* Head jumps into the cloned entry (id 2 = original 2 blocks). *)
  (match (Ir.Func.block main' 0).term with
  | Ir.Term.Jump 2 -> ()
  | t -> Alcotest.failf "head terminator: %s" (Format.asprintf "%a" Ir.Term.pp t));
  (* Cloned returns jump to the tail (id 6). *)
  let tail_id = 6 in
  let return_target_ok = ref true in
  Array.iter
    (fun (b : Ir.Block.t) ->
      if b.id >= 2 && b.id < 6 then
        match b.term with
        | Ir.Term.Return -> return_target_ok := false
        | _ -> ())
    main'.blocks;
  check tb "no returns in cloned region" true !return_target_ok;
  (* The tail kept the original terminator (Jump 1). *)
  match (Ir.Func.block main' tail_id).term with
  | Ir.Term.Jump 1 -> ()
  | t -> Alcotest.failf "tail terminator: %s" (Format.asprintf "%a" Ir.Term.pp t)

let test_inline_validates () =
  (* The spliced function passes Func.make validation implicitly; also
     the whole program revalidates. *)
  let program = make_program () in
  let program' = Codegen.Inline.program program in
  check ti "sites inlined program-wide" 1 (Codegen.Inline.stats_of_last_run ());
  check tb "main still resolvable" true (Option.is_some (Ir.Program.find_func program' "main"))

let test_inline_respects_size_cap () =
  let program = make_program () in
  let config = { Codegen.Inline.default_config with max_callee_blocks = 2 } in
  let _, count = inlined_main ~config program in
  check ti "big callee not inlined" 0 count

let test_inline_respects_hot_gate () =
  (* Call site in a block the PGO estimate says is cold: not inlined. *)
  let callee =
    Ir.Func.make ~name:"callee"
      [| Ir.Block.make ~id:0 ~body:[ Ir.Inst.Compute 9 ] ~term:Ir.Term.Return () |]
  in
  let main =
    Ir.Func.make ~name:"main"
      [|
        Ir.Block.make ~id:0 ~body:[]
          ~term:(branch ~taken:1 ~fallthrough:2 ~prob:0.01 ~pgo_prob:0.01 ())
          ();
        Ir.Block.make ~id:1 ~body:[ Ir.Inst.DirectCall "callee" ] ~term:(Ir.Term.Jump 2) ();
        Ir.Block.make ~id:2 ~body:[] ~term:Ir.Term.Return ();
      |]
  in
  let program =
    Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ main; callee ] ]
  in
  let main', count = inlined_main program in
  check ti "cold site not inlined" 0 count;
  check ti "unchanged" 3 (Ir.Func.num_blocks main')

let test_inline_skips_inline_asm_callee () =
  let program = make_program ~callee_blocks:1 () in
  let callee = Ir.Program.find_func_exn program "callee" in
  let asm_callee = { callee with Ir.Func.attrs = { callee.attrs with has_inline_asm = true } } in
  let program =
    Ir.Program.make ~name:"p" ~main:"main"
      [
        Ir.Cunit.make ~name:"um" [ Ir.Program.find_func_exn program "main" ];
        Ir.Cunit.make ~name:"uc" [ asm_callee ];
      ]
  in
  let _, count = inlined_main program in
  check ti "asm callee not inlined" 0 count

let test_inline_budget () =
  (* main calls callee in several hot blocks; the budget caps growth. *)
  let callee =
    Ir.Func.make ~name:"callee"
      [| Ir.Block.make ~id:0 ~body:[ Ir.Inst.Compute 9 ] ~term:Ir.Term.Return () |]
  in
  let call_block id next =
    Ir.Block.make ~id ~body:[ Ir.Inst.DirectCall "callee" ]
      ~term:(if next < 0 then Ir.Term.Return else Ir.Term.Jump next)
      ()
  in
  let main =
    Ir.Func.make ~name:"main"
      [|
        call_block 0 1; call_block 1 2; call_block 2 3; call_block 3 4; call_block 4 5;
        call_block 5 (-1);
      |]
  in
  let program =
    Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ main; callee ] ]
  in
  let config = { Codegen.Inline.default_config with max_inlines_per_func = 3 } in
  let _, count = inlined_main ~config program in
  check ti "budget respected" 3 count

let test_inline_preserves_true_probs_dilutes_pgo () =
  let program = make_program () in
  let config = { Codegen.Inline.default_config with dilution_noise = 0.4 } in
  let main', _ = inlined_main ~config program in
  (* The cloned diamond branch is at id 2 (cloned callee entry). *)
  match (Ir.Func.block main' 2).term with
  | Ir.Term.Branch { prob; _ } ->
    (* True probability is exactly the callee's 0.3. *)
    check tf "true prob preserved" 0.3 prob
  | t -> Alcotest.failf "expected branch, got %s" (Format.asprintf "%a" Ir.Term.pp t)

let test_inline_program_runs () =
  (* The inlined program executes and terminates like the original. *)
  let _, program = medium_program () in
  let inlined = Codegen.Inline.program program in
  check tb "inliner found sites" true (Codegen.Inline.stats_of_last_run () > 0);
  let _, { Linker.Link.binary; _ } = compile_and_link ~name:"inl" inlined in
  let image = Exec.Image.build inlined binary in
  let stats = Exec.Interp.run image { Exec.Interp.default_config with requests = 10 } Exec.Event.null in
  check ti "requests complete" 10 stats.requests_completed;
  check tb "work happened" true (stats.blocks_executed > 0)

let suite =
  [
    Alcotest.test_case "splices callee" `Quick test_inline_splices_callee;
    Alcotest.test_case "wires control flow" `Quick test_inline_wires_control_flow;
    Alcotest.test_case "program revalidates" `Quick test_inline_validates;
    Alcotest.test_case "size cap" `Quick test_inline_respects_size_cap;
    Alcotest.test_case "hot gate" `Quick test_inline_respects_hot_gate;
    Alcotest.test_case "asm callee skipped" `Quick test_inline_skips_inline_asm_callee;
    Alcotest.test_case "growth budget" `Quick test_inline_budget;
    Alcotest.test_case "true probs preserved" `Quick test_inline_preserves_true_probs_dilutes_pgo;
    Alcotest.test_case "inlined program runs" `Quick test_inline_program_runs;
  ]

open Testutil

(* Shared BOLT run on the medium program. *)
let fixture =
  lazy
    (let spec, program = medium_program ~seed:21L () in
     let env = Buildsys.Driver.make_env () in
     let bm =
       Buildsys.Driver.build env ~name:"bm" ~program ~codegen_options:Codegen.default_options
         ~link_options:{ Linker.Link.default_options with emit_relocs = true }
     in
     let _, profile = run_with_profile ~requests:spec.requests program bm.binary in
     let is_asm f =
       match Ir.Program.find_func program f with
       | Some fn -> fn.Ir.Func.attrs.has_inline_asm
       | None -> false
     in
     let bolt =
       Boltsim.Driver.optimize ~profile ~binary:bm.binary ~is_asm
         ~hazards:Boltsim.Driver.no_hazards ~name:"bolted" ()
     in
     (spec, program, bm, profile, bolt))

let test_rewrite_preserves_blocks () =
  let _, program, bm, _, bolt = Lazy.force fixture in
  (* Every block of the original binary exists in the rewritten one. *)
  Hashtbl.iter
    (fun key (_ : Linker.Binary.block_info) ->
      if not (Hashtbl.mem bolt.binary.blocks key) then
        Alcotest.failf "block lost in rewrite: %s#%d" (fst key) (snd key))
    bm.binary.blocks;
  check ti "same block count" (Hashtbl.length bm.binary.blocks)
    (Hashtbl.length bolt.binary.blocks);
  ignore program

let test_rewrite_new_segment_above () =
  let _, _, bm, _, bolt = Lazy.force fixture in
  (* New code lives above the original text, 2M aligned (Fig 7c). *)
  let new_blocks =
    Hashtbl.fold (fun _ (b : Linker.Binary.block_info) acc -> min acc b.addr) bolt.binary.blocks
      max_int
  in
  check tb "all code relocated above old text" true (new_blocks >= bm.binary.text_end);
  check ti "2M aligned segment" 0 (new_blocks mod (2 * 1024 * 1024));
  check tb "binary grew (old text retained)" true
    (Linker.Binary.total_size bolt.binary > Linker.Binary.total_size bm.binary)

let test_rewrite_trace_invariant () =
  let spec, program, bm, _, bolt = Lazy.force fixture in
  let run binary =
    let image = Exec.Image.build program binary in
    Exec.Interp.run image
      { Exec.Interp.default_config with requests = spec.requests }
      Exec.Event.null
  in
  let s1 = run bm.binary and s2 = run bolt.binary in
  check ti "same logical blocks" s1.blocks_executed s2.blocks_executed;
  check ti "same calls" s1.calls s2.calls;
  check ti "same conditionals" s1.cond_branches s2.cond_branches

let test_rewrite_improves_layout () =
  let spec, program, bm, _, bolt = Lazy.force fixture in
  let cycles binary =
    let image = Exec.Image.build program binary in
    let core = Uarch.Core.create Uarch.Core.default_config in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image
        { Exec.Interp.default_config with requests = spec.requests }
        (Uarch.Core.sink core)
    in
    Uarch.Core.cycles core
  in
  check tb "bolt does not regress the cycle model" true
    (cycles bolt.binary <= cycles bm.binary *. 1.005)

let test_asm_functions_skipped () =
  let _, program, bm, profile, _ = Lazy.force fixture in
  (* Force every function to be "assembly": nothing is rewritten. *)
  let bolt =
    Boltsim.Driver.optimize ~profile ~binary:bm.binary
      ~is_asm:(fun _ -> true)
      ~hazards:Boltsim.Driver.no_hazards ~name:"allasm" ()
  in
  check ti "nothing rewritten" 0 bolt.rewritten_funcs;
  check tb "all hot funcs skipped" true (bolt.skipped_funcs > 0);
  ignore program

let test_hazards_crash () =
  let _, _, bm, profile, _ = Lazy.force fixture in
  let bolt =
    Boltsim.Driver.optimize ~profile ~binary:bm.binary ~is_asm:(fun _ -> false)
      ~hazards:{ Boltsim.Driver.rseq = true; fips_check = false }
      ~name:"rseq" ()
  in
  check tb "rseq binary fails startup" false bolt.startup_ok;
  let bolt2 =
    Boltsim.Driver.optimize ~profile ~binary:bm.binary ~is_asm:(fun _ -> false)
      ~hazards:{ Boltsim.Driver.rseq = false; fips_check = true }
      ~name:"fips" ()
  in
  check tb "fips binary fails startup" false bolt2.startup_ok

let test_lite_lowers_memory () =
  let _, _, bm, profile, _ = Lazy.force fixture in
  let run options =
    Boltsim.Driver.optimize ~options ~profile ~binary:bm.binary ~is_asm:(fun _ -> false)
      ~hazards:Boltsim.Driver.no_hazards ~name:"m" ()
  in
  let lite = run Boltsim.Driver.fast_options in
  let full = run Boltsim.Driver.perf_options in
  check tb "lite uses less memory" true (lite.optimize_mem_bytes < full.optimize_mem_bytes)

let test_conversion_cost_scales_with_text () =
  let m1 = Boltsim.Costmodel.conversion_mem ~text_bytes:1_000_000 ~profile_bytes:0 in
  let m2 = Boltsim.Costmodel.conversion_mem ~text_bytes:100_000_000 ~profile_bytes:0 in
  (* Unlike Propeller's profile-bound conversion, BOLT's is text-bound
     (5.1): 100x the binary is ~100x the memory. *)
  check tb "text-proportional" true (m2 > 10 * m1)

let test_bolt_binary_has_no_metadata () =
  let _, _, _, _, bolt = Lazy.force fixture in
  check ti "no bb maps" 0
    (Linker.Binary.size_of_kind bolt.binary Objfile.Section.Bb_addr_map);
  check tb "rela retained" true
    (Linker.Binary.size_of_kind bolt.binary Objfile.Section.Rela > 0)

let suite =
  [
    Alcotest.test_case "rewrite preserves blocks" `Quick test_rewrite_preserves_blocks;
    Alcotest.test_case "new segment above old text" `Quick test_rewrite_new_segment_above;
    Alcotest.test_case "rewrite keeps logical trace" `Quick test_rewrite_trace_invariant;
    Alcotest.test_case "rewrite improves layout" `Quick test_rewrite_improves_layout;
    Alcotest.test_case "asm functions skipped" `Quick test_asm_functions_skipped;
    Alcotest.test_case "hazards crash at startup" `Quick test_hazards_crash;
    Alcotest.test_case "lite lowers memory" `Quick test_lite_lowers_memory;
    Alcotest.test_case "conversion cost is text-bound" `Quick test_conversion_cost_scales_with_text;
    Alcotest.test_case "no metadata in BO binary" `Quick test_bolt_binary_has_no_metadata;
  ]

open Testutil

let test_inst_sizes () =
  check ti "compute" 9 (Ir.Inst.byte_size (Ir.Inst.Compute 9));
  check ti "call" 5 (Ir.Inst.byte_size (Ir.Inst.DirectCall "f"));
  check ti "vcall" 3 (Ir.Inst.byte_size (Ir.Inst.VirtualCall { callees = [| ("f", 1.0) |] }));
  check ti "table" 32 (Ir.Inst.byte_size (Ir.Inst.JumpTableData 32))

let test_inst_callees () =
  check tb "direct" true (Ir.Inst.callees (Ir.Inst.DirectCall "f") = [ ("f", 1.0) ]);
  check ti "virtual count" 2
    (List.length (Ir.Inst.callees (Ir.Inst.VirtualCall { callees = [| ("a", 0.5); ("b", 0.5) |] })));
  check tb "compute none" true (Ir.Inst.callees (Ir.Inst.Compute 4) = [])

let test_term_successors () =
  check Alcotest.(list int) "branch" [ 3; 1 ]
    (Ir.Term.successors (branch ~taken:3 ~fallthrough:1 ~prob:0.5 ()));
  check Alcotest.(list int) "jump" [ 7 ] (Ir.Term.successors (Ir.Term.Jump 7));
  check Alcotest.(list int) "return" [] (Ir.Term.successors Ir.Term.Return);
  let sw = Ir.Term.Switch { table = [| 1; 2; 3 |]; probs = [| 0.2; 0.3; 0.5 |]; pgo_probs = [| 0.4; 0.3; 0.3 |] } in
  check Alcotest.(list int) "switch" [ 1; 2; 3 ] (Ir.Term.successors sw)

let test_term_probs () =
  let t = branch ~taken:1 ~fallthrough:2 ~prob:0.3 ~pgo_prob:0.9 () in
  check tb "true probs" true (Ir.Term.successor_probs t = [ (1, 0.3); (2, 0.7) ]);
  (match Ir.Term.successor_pgo_probs t with
  | [ (1, p1); (2, p2) ] ->
    check tf "pgo taken" 0.9 p1;
    check tb "pgo ft" true (abs_float (p2 -. 0.1) < 1e-9)
  | _ -> Alcotest.fail "bad pgo probs")

let test_term_map_blocks () =
  let t = branch ~taken:1 ~fallthrough:2 ~prob:0.5 () in
  check Alcotest.(list int) "mapped" [ 11; 12 ]
    (Ir.Term.successors (Ir.Term.map_blocks (fun b -> b + 10) t))

let test_func_validation () =
  (* Out of range target. *)
  let bad () =
    ignore
      (Ir.Func.make ~name:"bad"
         [| compute_block ~id:0 ~bytes:4 ~term:(Ir.Term.Jump 5) |])
  in
  (try
     bad ();
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ());
  (* Wrong id. *)
  (try
     ignore (Ir.Func.make ~name:"bad2" [| compute_block ~id:1 ~bytes:4 ~term:Ir.Term.Return |]);
     Alcotest.fail "expected failure"
   with Invalid_argument _ -> ());
  (* Empty. *)
  try
    ignore (Ir.Func.make ~name:"bad3" [||]);
    Alcotest.fail "expected failure"
  with Invalid_argument _ -> ()

let test_func_accessors () =
  let f = diamond_func () in
  check ti "blocks" 4 (Ir.Func.num_blocks f);
  check ti "entry id" 0 (Ir.Func.entry f).Ir.Block.id;
  check ti "code bytes" (10 + 12 + 14 + 6) (Ir.Func.code_bytes f)

let test_func_calls () =
  let p = call_program () in
  let main = Ir.Program.find_func_exn p "main" in
  check tb "calls callee" true (List.mem_assoc "callee" (Ir.Func.calls main))

let test_program_validation () =
  (* Duplicate function names. *)
  let f1 = diamond_func ~name:"dup" () and f2 = loop_func ~name:"dup" () in
  (try
     ignore
       (Ir.Program.make ~name:"p" ~main:"dup"
          [ Ir.Cunit.make ~name:"u1" [ f1 ]; Ir.Cunit.make ~name:"u2" [ f2 ] ]);
     Alcotest.fail "expected duplicate failure"
   with Invalid_argument _ -> ());
  (* Missing main. *)
  (try
     ignore (Ir.Program.make ~name:"p" ~main:"nope" [ Ir.Cunit.make ~name:"u" [ f1 ] ]);
     Alcotest.fail "expected missing-main failure"
   with Invalid_argument _ -> ());
  (* Undefined callee. *)
  let calls_ghost =
    Ir.Func.make ~name:"main"
      [|
        Ir.Block.make ~id:0 ~body:[ Ir.Inst.DirectCall "ghost" ] ~term:Ir.Term.Return ();
      |]
  in
  try
    ignore (Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ calls_ghost ] ]);
    Alcotest.fail "expected undefined-callee failure"
  with Invalid_argument _ -> ()

let test_program_lookup () =
  let p = call_program () in
  check tb "find main" true (Option.is_some (Ir.Program.find_func p "main"));
  check tb "find nothing" true (Option.is_none (Ir.Program.find_func p "zzz"));
  check (Alcotest.option ts) "unit of callee" (Some "u_callee") (Ir.Program.unit_of_func p "callee");
  check ti "funcs" 2 (Ir.Program.num_funcs p);
  check ti "blocks" 6 (Ir.Program.num_blocks p)

let test_cfg_predecessors () =
  let f = diamond_func () in
  let preds = Ir.Cfg.predecessors f in
  check Alcotest.(list int) "entry preds" [] preds.(0);
  check Alcotest.(list int) "join preds" [ 1; 2 ] (List.sort compare preds.(3))

let test_cfg_rpo () =
  let f = diamond_func () in
  let rpo = Ir.Cfg.reverse_postorder f in
  check ti "covers all" 4 (List.length rpo);
  check ti "entry first" 0 (List.hd rpo);
  (* 3 must come after both 1 and 2. *)
  let pos b = Option.get (List.find_index (fun x -> x = b) rpo) in
  check tb "join last" true (pos 3 > pos 1 && pos 3 > pos 2)

let test_cfg_unreachable () =
  let f =
    Ir.Func.make ~name:"unreach"
      [|
        compute_block ~id:0 ~bytes:4 ~term:(Ir.Term.Jump 2);
        compute_block ~id:1 ~bytes:4 ~term:Ir.Term.Return;
        compute_block ~id:2 ~bytes:4 ~term:Ir.Term.Return;
      |]
  in
  let reach = Ir.Cfg.reachable f in
  check tb "1 unreachable" false reach.(1);
  check tb "2 reachable" true reach.(2);
  (* RPO still lists every block. *)
  check ti "rpo complete" 3 (List.length (Ir.Cfg.reverse_postorder f))

let test_cfg_frequencies_diamond () =
  let f = diamond_func ~prob:0.3 () in
  let freq = Ir.Cfg.estimate_frequencies ~use_pgo:false f in
  check tb "entry = 1" true (abs_float (freq.(0) -. 1.0) < 1e-6);
  check tb "taken branch freq" true (abs_float (freq.(1) -. 0.3) < 1e-3);
  check tb "ft freq" true (abs_float (freq.(2) -. 0.7) < 1e-3);
  check tb "join = 1" true (abs_float (freq.(3) -. 1.0) < 1e-3)

let test_cfg_frequencies_loop () =
  let f = loop_func () in
  let freq = Ir.Cfg.estimate_frequencies ~use_pgo:false f in
  (* Expected visits to block 1 with back-edge prob 0.75: 1/(1-0.75)=4. *)
  check tb "loop body amplified" true (freq.(1) > 3.0 && freq.(1) < 4.5);
  check tb "exit once" true (abs_float (freq.(2) -. 1.0) < 0.2)

let test_cfg_pgo_vs_true () =
  let f = diamond_func ~prob:0.1 ~pgo_prob:0.9 () in
  let t = Ir.Cfg.estimate_frequencies ~use_pgo:false f in
  let p = Ir.Cfg.estimate_frequencies ~use_pgo:true f in
  check tb "true says block1 cold" true (t.(1) < 0.2);
  check tb "pgo says block1 hot" true (p.(1) > 0.8)

let test_cfg_edge_frequencies () =
  let f = diamond_func ~prob:0.3 () in
  let edges = Ir.Cfg.edge_frequencies ~use_pgo:false f in
  let w s d =
    List.fold_left (fun acc (a, b, w) -> if a = s && b = d then acc +. w else acc) 0.0 edges
  in
  check tb "0->1 weight" true (abs_float (w 0 1 -. 0.3) < 1e-3);
  check tb "0->2 weight" true (abs_float (w 0 2 -. 0.7) < 1e-3)

let test_dominators_diamond () =
  let f = diamond_func () in
  let idom = Ir.Cfg.immediate_dominators f in
  check ti "entry self-dominates" 0 idom.(0);
  check ti "branch arms dominated by entry" 0 idom.(1);
  check ti "other arm too" 0 idom.(2);
  (* The join point's idom is the entry, not either arm. *)
  check ti "join dominated by entry" 0 idom.(3);
  check tb "entry dominates all" true
    (Ir.Cfg.dominates f 0 3 && Ir.Cfg.dominates f 0 1 && Ir.Cfg.dominates f 0 2);
  check tb "arm does not dominate join" false (Ir.Cfg.dominates f 1 3);
  check tb "dominates is reflexive" true (Ir.Cfg.dominates f 2 2)

let test_dominators_chain () =
  let f =
    Ir.Func.make ~name:"chain"
      [|
        compute_block ~id:0 ~bytes:4 ~term:(Ir.Term.Jump 1);
        compute_block ~id:1 ~bytes:4 ~term:(Ir.Term.Jump 2);
        compute_block ~id:2 ~bytes:4 ~term:Ir.Term.Return;
      |]
  in
  let idom = Ir.Cfg.immediate_dominators f in
  check ti "1's idom" 0 idom.(1);
  check ti "2's idom" 1 idom.(2);
  check tb "transitive dominance" true (Ir.Cfg.dominates f 0 2)

let test_dominators_unreachable () =
  let f =
    Ir.Func.make ~name:"unreach"
      [|
        compute_block ~id:0 ~bytes:4 ~term:(Ir.Term.Jump 2);
        compute_block ~id:1 ~bytes:4 ~term:Ir.Term.Return;
        compute_block ~id:2 ~bytes:4 ~term:Ir.Term.Return;
      |]
  in
  let idom = Ir.Cfg.immediate_dominators f in
  check ti "unreachable marked" (-1) idom.(1);
  check tb "unreachable dominates nothing" false (Ir.Cfg.dominates f 1 2)

let test_loop_headers () =
  let f = loop_func () in
  check Alcotest.(list int) "loop body is the header" [ 1 ] (Ir.Cfg.loop_headers f);
  check Alcotest.(list int) "diamond has no loops" [] (Ir.Cfg.loop_headers (diamond_func ()))

let test_loop_headers_nested () =
  (* 0 -> 1 -> 2; 2 -> 2 (inner self-loop), 2 -> 1 (outer), 2 -> 3 exit. *)
  let f =
    Ir.Func.make ~name:"nested"
      [|
        compute_block ~id:0 ~bytes:4 ~term:(Ir.Term.Jump 1);
        compute_block ~id:1 ~bytes:4 ~term:(Ir.Term.Jump 2);
        Ir.Block.make ~id:2 ~body:[]
          ~term:
            (Ir.Term.Switch
               { table = [| 2; 1; 3 |]; probs = [| 0.5; 0.3; 0.2 |]; pgo_probs = [| 0.5; 0.3; 0.2 |] })
          ();
        compute_block ~id:3 ~bytes:4 ~term:Ir.Term.Return;
      |]
  in
  check Alcotest.(list int) "both headers found" [ 1; 2 ] (Ir.Cfg.loop_headers f)

let suite =
  [
    Alcotest.test_case "inst sizes" `Quick test_inst_sizes;
    Alcotest.test_case "inst callees" `Quick test_inst_callees;
    Alcotest.test_case "term successors" `Quick test_term_successors;
    Alcotest.test_case "term probabilities" `Quick test_term_probs;
    Alcotest.test_case "term map_blocks" `Quick test_term_map_blocks;
    Alcotest.test_case "func validation" `Quick test_func_validation;
    Alcotest.test_case "func accessors" `Quick test_func_accessors;
    Alcotest.test_case "func calls" `Quick test_func_calls;
    Alcotest.test_case "program validation" `Quick test_program_validation;
    Alcotest.test_case "program lookup" `Quick test_program_lookup;
    Alcotest.test_case "cfg predecessors" `Quick test_cfg_predecessors;
    Alcotest.test_case "cfg reverse postorder" `Quick test_cfg_rpo;
    Alcotest.test_case "cfg unreachable blocks" `Quick test_cfg_unreachable;
    Alcotest.test_case "cfg frequencies: diamond" `Quick test_cfg_frequencies_diamond;
    Alcotest.test_case "cfg frequencies: loop" `Quick test_cfg_frequencies_loop;
    Alcotest.test_case "cfg frequencies: pgo vs true" `Quick test_cfg_pgo_vs_true;
    Alcotest.test_case "cfg edge frequencies" `Quick test_cfg_edge_frequencies;
    Alcotest.test_case "cfg dominators: diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "cfg dominators: chain" `Quick test_dominators_chain;
    Alcotest.test_case "cfg dominators: unreachable" `Quick test_dominators_unreachable;
    Alcotest.test_case "cfg loop headers" `Quick test_loop_headers;
    Alcotest.test_case "cfg loop headers: nested" `Quick test_loop_headers_nested;
  ]

open Testutil

let link_program ?codegen ?link program = snd (compile_and_link ?codegen ?link program)

let test_addresses_disjoint_sorted () =
  let _, program = medium_program () in
  let { Linker.Link.binary; _ } = link_program program in
  let blocks = Hashtbl.fold (fun _ b acc -> b :: acc) binary.blocks [] in
  let sorted =
    List.sort (fun (a : Linker.Binary.block_info) b -> compare a.addr b.addr) blocks
  in
  let rec walk = function
    | (a : Linker.Binary.block_info) :: (b :: _ as rest) ->
      if a.addr + a.size > b.addr then
        Alcotest.failf "overlap: %s#%d [%d,%d) vs %s#%d [%d,%d)" a.func a.block a.addr
          (a.addr + a.size) b.func b.block b.addr (b.addr + b.size);
      walk rest
    | [ _ ] | [] -> ()
  in
  walk sorted;
  check tb "text within bounds" true
    (List.for_all
       (fun (b : Linker.Binary.block_info) ->
         b.addr >= binary.text_start && b.addr + b.size <= binary.text_end)
       blocks)

let test_entry_resolution () =
  let program = call_program () in
  let { Linker.Link.binary; _ } = link_program program in
  check tb "main resolves" true (Option.is_some (Linker.Binary.symbol_addr binary "main"));
  let main_addr = Option.get (Linker.Binary.symbol_addr binary "main") in
  let entry_block = Linker.Binary.block_info_exn binary ~func:"main" ~block:0 in
  check ti "function symbol = entry block" entry_block.addr main_addr

let test_relaxation_deletes_fallthrough () =
  let program = call_program () in
  let relaxed = link_program program in
  let unrelaxed =
    link_program ~link:{ Linker.Link.default_options with relax = false } program
  in
  check tb "jumps deleted" true (relaxed.stats.deleted_jumps > 0);
  check tb "branches shrunk" true (relaxed.stats.shrunk_branches > 0);
  check ti "no deletion without relax" 0 unrelaxed.stats.deleted_jumps;
  check tb "relaxed text smaller" true
    (Linker.Binary.text_bytes relaxed.binary < Linker.Binary.text_bytes unrelaxed.binary)

let test_relaxation_preserves_targets () =
  (* After relaxation every surviving branch still lands on its block. *)
  let _, program = medium_program () in
  let { Linker.Link.binary; _ } = link_program program in
  Hashtbl.iter
    (fun _ (info : Linker.Binary.block_info) ->
      List.iter
        (fun i ->
          match Isa.branch_target i with
          | Some (Isa.Target.Block { func; block }) ->
            let tgt = Linker.Binary.block_info_exn binary ~func ~block in
            check tb "target exists" true (tgt.size >= 0)
          | Some (Isa.Target.Func f) ->
            check tb "callee symbol" true (Option.is_some (Linker.Binary.symbol_addr binary f))
          | None -> ())
        info.insts)
    binary.blocks

let test_short_branches_in_range () =
  let _, program = medium_program () in
  let { Linker.Link.binary; _ } = link_program program in
  Hashtbl.iter
    (fun _ (info : Linker.Binary.block_info) ->
      let addr = ref info.addr in
      List.iter
        (fun i ->
          let after = !addr + Isa.size i in
          (match i with
          | Isa.Jcc { target = Isa.Target.Block { func; block }; encoding = Isa.Short; _ }
          | Isa.Jmp { target = Isa.Target.Block { func; block }; encoding = Isa.Short } ->
            let tgt = Linker.Binary.block_info_exn binary ~func ~block in
            let disp = tgt.addr - after in
            if not (Isa.fits_short disp) then
              Alcotest.failf "short branch out of range: %s#%d -> %s#%d disp=%d" info.func
                info.block func block disp
          | _ -> ());
          addr := after)
        info.insts)
    binary.blocks

let test_jcc_reversal () =
  (* Layout [0;2;...] with branch taken->2: jcc skips the jmp, so the
     linker must reverse the condition and delete the jump. *)
  let f = diamond_func ~prob:0.9 () in
  let plan =
    {
      Codegen.Directive.func = "diamond";
      clusters =
        [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ 0; 1; 2; 3 ] } ];
    }
  in
  ignore plan;
  let u = Ir.Cunit.make ~name:"u" [ f ] in
  let program = Ir.Program.make ~name:"p" ~main:"diamond" [ u ] in
  (* default order puts 1 right after 0 (hot path): branch to 1 becomes
     the reversed fall-through. *)
  let { Linker.Link.binary; stats } = link_program program in
  check tb "something relaxed" true (stats.deleted_jumps > 0);
  let b0 = Linker.Binary.block_info_exn binary ~func:"diamond" ~block:0 in
  (* Block 0's surviving terminator must be a single conditional. *)
  let branches = List.filter Isa.is_branch b0.insts in
  check ti "one branch remains" 1 (List.length branches)

let test_ordering_file_respected () =
  let program = call_program () in
  let link_opts order =
    { Linker.Link.default_options with ordering = Some order }
  in
  let b1 = (link_program ~link:(link_opts [ "main"; "callee" ]) program).binary in
  let b2 = (link_program ~link:(link_opts [ "callee"; "main" ]) program).binary in
  let addr b f = Option.get (Linker.Binary.symbol_addr b f) in
  check tb "main first" true (addr b1 "main" < addr b1 "callee");
  check tb "callee first" true (addr b2 "callee" < addr b2 "main")

let test_ordering_unlisted_trail () =
  let program = call_program () in
  let b =
    (link_program ~link:{ Linker.Link.default_options with ordering = Some [ "callee" ] } program)
      .binary
  in
  let addr f = Option.get (Linker.Binary.symbol_addr b f) in
  check tb "listed section leads" true (addr "callee" < addr "main")

let test_duplicate_symbol_error () =
  let f1 = diamond_func ~name:"dup" () in
  let u1 = Ir.Cunit.make ~name:"u1" [ f1 ] in
  let o1 = Codegen.compile_unit Codegen.default_options u1 in
  try
    ignore (Linker.Link.link ~name:"t" ~entry:"dup" [ o1; o1 ]);
    Alcotest.fail "expected duplicate symbol error"
  with Linker.Link.Link_error _ -> ()

let test_unresolved_symbol_error () =
  let f =
    Ir.Func.make ~name:"main"
      [| Ir.Block.make ~id:0 ~body:[ Ir.Inst.DirectCall "ghost" ] ~term:Ir.Term.Return () |]
  in
  (* Bypass Program.make validation by lowering the unit directly. *)
  let o = Codegen.compile_unit Codegen.default_options (Ir.Cunit.make ~name:"u" [ f ]) in
  try
    ignore (Linker.Link.link ~name:"t" ~entry:"main" [ o ]);
    Alcotest.fail "expected unresolved symbol error"
  with Linker.Link.Link_error _ -> ()

let test_missing_entry_error () =
  let o = Codegen.compile_unit Codegen.default_options (Ir.Cunit.make ~name:"u" [ diamond_func () ]) in
  try
    ignore (Linker.Link.link ~name:"t" ~entry:"nope" [ o ]);
    Alcotest.fail "expected missing entry error"
  with Linker.Link.Link_error _ -> ()

let test_emit_relocs_section () =
  let program = call_program () in
  let plain = (link_program program).binary in
  let bm =
    (link_program ~link:{ Linker.Link.default_options with emit_relocs = true } program).binary
  in
  check ti "no rela by default" 0 (Linker.Binary.size_of_kind plain Objfile.Section.Rela);
  check tb "rela retained" true (Linker.Binary.size_of_kind bm Objfile.Section.Rela > 0);
  check tb "bm bigger" true (Linker.Binary.total_size bm > Linker.Binary.total_size plain)

let test_bbmap_retained_and_reencoded () =
  let program = call_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  check tb "maps retained" true (binary.bb_maps <> []);
  check tb "bbmap section sized" true
    (Linker.Binary.size_of_kind binary Objfile.Section.Bb_addr_map > 0);
  (* Re-encoded offsets must match final block addresses. *)
  List.iter
    (fun (fm : Objfile.Bbmap.func_map) ->
      let sym = Option.get (Linker.Binary.symbol_addr binary fm.func) in
      List.iter
        (fun (e : Objfile.Bbmap.entry) ->
          let owner = Objfile.Symname.owner fm.func in
          let info = Linker.Binary.block_info_exn binary ~func:owner ~block:e.bb_id in
          check ti "offset matches placement" info.addr (sym + e.offset);
          check ti "size matches placement" info.size e.size)
        fm.entries)
    binary.bb_maps

let test_po_drops_bbmap () =
  let program = call_program () in
  let { Linker.Link.binary; _ } =
    link_program
      ~codegen:{ Codegen.default_options with emit_bb_addr_map = true }
      ~link:{ Linker.Link.default_options with keep_bb_addr_map = false }
      program
  in
  check ti "metadata dropped" 0 (Linker.Binary.size_of_kind binary Objfile.Section.Bb_addr_map);
  check tb "no maps" true (binary.bb_maps = [])

let test_text_alignment () =
  let program = call_program () in
  let huge =
    (link_program ~link:{ Linker.Link.default_options with text_align = 2 * 1024 * 1024 } program)
      .binary
  in
  check ti "2M aligned" 0 (huge.text_start mod (2 * 1024 * 1024))

let test_find_block_by_addr () =
  let program = call_program () in
  let { Linker.Link.binary; _ } = link_program program in
  Hashtbl.iter
    (fun _ (info : Linker.Binary.block_info) ->
      (match Linker.Binary.find_block_by_addr binary info.addr with
      | Some b -> check ti "first byte maps back" info.block b.block
      | None -> Alcotest.fail "lookup failed");
      match Linker.Binary.find_block_by_addr binary (info.addr + info.size - 1) with
      | Some b ->
        check ts "last byte maps back" (Objfile.Symname.block ~func:info.func ~block:info.block)
          (Objfile.Symname.block ~func:b.func ~block:b.block)
      | None -> Alcotest.fail "lookup failed")
    binary.blocks

let test_link_stats () =
  let _, program = medium_program () in
  let { Linker.Link.stats; _ } = link_program program in
  check tb "input bytes positive" true (stats.input_bytes > 0);
  check tb "peak mem >= 2x inputs" true
    (stats.peak_mem_bytes >= 2 * stats.input_bytes);
  check tb "time positive" true (stats.cpu_seconds > 0.0)

(* --- Orderfile ----------------------------------------------------- *)

let test_orderfile_roundtrip () =
  let syms = [ "main"; "foo"; "foo.cold"; "bar.2" ] in
  check Alcotest.(list string) "round trip" syms
    (Linker.Orderfile.of_text (Linker.Orderfile.to_text syms))

let test_orderfile_parsing () =
  let text = "# comment\nmain\n\n  foo  \nmain\n# more\nbar\n" in
  check Alcotest.(list string) "comments, blanks, dups handled" [ "main"; "foo"; "bar" ]
    (Linker.Orderfile.of_text text)

let test_orderfile_validate () =
  let known = function "a" | "b" -> true | _ -> false in
  let ok, stale = Linker.Orderfile.validate ~known [ "a"; "zzz"; "b" ] in
  check Alcotest.(list string) "known" [ "a"; "b" ] ok;
  check Alcotest.(list string) "stale" [ "zzz" ] stale

let suite =
  [
    Alcotest.test_case "addresses disjoint and bounded" `Quick test_addresses_disjoint_sorted;
    Alcotest.test_case "orderfile round trip" `Quick test_orderfile_roundtrip;
    Alcotest.test_case "orderfile parsing" `Quick test_orderfile_parsing;
    Alcotest.test_case "orderfile validate" `Quick test_orderfile_validate;
    Alcotest.test_case "entry resolution" `Quick test_entry_resolution;
    Alcotest.test_case "relaxation deletes fallthroughs" `Quick test_relaxation_deletes_fallthrough;
    Alcotest.test_case "relaxation preserves targets" `Quick test_relaxation_preserves_targets;
    Alcotest.test_case "short branches in range" `Quick test_short_branches_in_range;
    Alcotest.test_case "jcc reversal" `Quick test_jcc_reversal;
    Alcotest.test_case "ordering file respected" `Quick test_ordering_file_respected;
    Alcotest.test_case "unlisted sections trail" `Quick test_ordering_unlisted_trail;
    Alcotest.test_case "duplicate symbol error" `Quick test_duplicate_symbol_error;
    Alcotest.test_case "unresolved symbol error" `Quick test_unresolved_symbol_error;
    Alcotest.test_case "missing entry error" `Quick test_missing_entry_error;
    Alcotest.test_case "emit relocs" `Quick test_emit_relocs_section;
    Alcotest.test_case "bb map retained and re-encoded" `Quick test_bbmap_retained_and_reencoded;
    Alcotest.test_case "optimized link drops bb map" `Quick test_po_drops_bbmap;
    Alcotest.test_case "hugepage text alignment" `Quick test_text_alignment;
    Alcotest.test_case "find block by address" `Quick test_find_block_by_addr;
    Alcotest.test_case "link stats" `Quick test_link_stats;
  ]

(* Shared helpers for the test suites: tiny hand-built programs with
   known shapes, plus convenience wrappers around the pipeline. *)

let check = Alcotest.check

let ti = Alcotest.int

let tf = Alcotest.float 1e-9

let ts = Alcotest.string

let tb = Alcotest.bool

(* A block with [bytes] of pure compute. *)
let compute_block ~id ~bytes ~term =
  Ir.Block.make ~id ~body:[ Ir.Inst.Compute bytes ] ~term ()

let branch ?(cond = Isa.Cond.Eq) ~taken ~fallthrough ~prob ?(pgo_prob = prob) () =
  Ir.Term.Branch { cond; taken; fallthrough; prob; pgo_prob }

(* A diamond: 0 -> (1 | 2) -> 3(ret); block 1 taken with [prob]. *)
let diamond_func ?(name = "diamond") ?(prob = 0.3) ?(pgo_prob = prob) () =
  Ir.Func.make ~name
    [|
      compute_block ~id:0 ~bytes:10
        ~term:(branch ~taken:1 ~fallthrough:2 ~prob ~pgo_prob ());
      compute_block ~id:1 ~bytes:12 ~term:(Ir.Term.Jump 3);
      compute_block ~id:2 ~bytes:14 ~term:(Ir.Term.Jump 3);
      compute_block ~id:3 ~bytes:6 ~term:Ir.Term.Return;
    |]

(* A loop: 0 -> 1 (body, back-edge p=0.75) -> 2 ret. *)
let loop_func ?(name = "loop") () =
  Ir.Func.make ~name
    [|
      compute_block ~id:0 ~bytes:8 ~term:(Ir.Term.Jump 1);
      compute_block ~id:1 ~bytes:20
        ~term:(branch ~taken:1 ~fallthrough:2 ~prob:0.75 ());
      compute_block ~id:2 ~bytes:4 ~term:Ir.Term.Return;
    |]

(* caller -> callee program: main calls f in its entry block. *)
let call_program () =
  let callee = diamond_func ~name:"callee" () in
  let main =
    Ir.Func.make ~name:"main"
      [|
        Ir.Block.make ~id:0
          ~body:[ Ir.Inst.Compute 6; Ir.Inst.DirectCall "callee"; Ir.Inst.Compute 4 ]
          ~term:(branch ~taken:0 ~fallthrough:1 ~prob:0.6 ())
          ();
        compute_block ~id:1 ~bytes:5 ~term:Ir.Term.Return;
      |]
  in
  Ir.Program.make ~name:"callprog" ~main:"main"
    [ Ir.Cunit.make ~name:"u_main" [ main ]; Ir.Cunit.make ~name:"u_callee" [ callee ] ]

(* A multi-unit program exercising calls, loops, switches, cold paths. *)
let medium_program ?(seed = 7L) () =
  let spec =
    {
      (Option.get (Progen.Suite.by_name "505.mcf")) with
      Progen.Spec.name = "testprog";
      seed;
      num_units = 12;
      requests = 40;
    }
  in
  (spec, Progen.Generate.program spec)

let compile_and_link ?(codegen = Codegen.default_options) ?(link = Linker.Link.default_options)
    ?(name = "test") program =
  let objs = Codegen.compile_program codegen program in
  (objs, Linker.Link.link ~options:link ~name ~entry:(Ir.Program.main program) objs)

let metadata_link program =
  compile_and_link
    ~codegen:{ Codegen.default_options with emit_bb_addr_map = true }
    ~link:{ Linker.Link.default_options with keep_bb_addr_map = true }
    program

let run_with_profile ?(requests = 40) program binary =
  let image = Exec.Image.build program binary in
  let profile = Perfmon.Lbr.create_profile () in
  let stats =
    Exec.Interp.run image
      { Exec.Interp.default_config with requests }
      (Perfmon.Lbr.collector Perfmon.Lbr.default_config profile)
  in
  (stats, profile)

open Testutil

let lower_default f =
  Codegen.Lower.lower_func ~emit_bb_addr_map:false ~plan:None
    ~default_order:(List.init (Ir.Func.num_blocks f) Fun.id)
    f

let test_lower_block_explicit_fallthrough () =
  let f = diamond_func () in
  let insts = Codegen.Lower.lower_block ~func:"diamond" (Ir.Func.block f 0) in
  (* Body + jcc(taken) + jmp(fallthrough): explicit fall-through, long
     encodings (4.2). *)
  match List.rev insts with
  | Isa.Jmp { target = Isa.Target.Block { block = 2; _ }; encoding = Isa.Long }
    :: Isa.Jcc { target = Isa.Target.Block { block = 1; _ }; encoding = Isa.Long; _ } :: _ -> ()
  | _ -> Alcotest.failf "unexpected lowering: %s" (String.concat "; " (List.map Isa.to_string insts))

let test_lower_return_and_switch () =
  let f = diamond_func () in
  let ret_insts = Codegen.Lower.lower_block ~func:"diamond" (Ir.Func.block f 3) in
  check tb "ends in ret" true (List.nth ret_insts (List.length ret_insts - 1) = Isa.Ret);
  let sw =
    Ir.Block.make ~id:0 ~body:[]
      ~term:(Ir.Term.Switch { table = [| 0 |]; probs = [| 1.0 |]; pgo_probs = [| 1.0 |] })
      ()
  in
  let insts = Codegen.Lower.lower_block ~func:"s" sw in
  check tb "switch dispatches indirectly" true (List.mem Isa.IndirectJmp insts)

let test_block_code_bytes_consistent () =
  let f = diamond_func () in
  for b = 0 to Ir.Func.num_blocks f - 1 do
    let blk = Ir.Func.block f b in
    let lowered =
      List.fold_left (fun acc i -> acc + Isa.size i) 0 (Codegen.Lower.lower_block ~func:f.name blk)
    in
    check ti "sizing shortcut matches lowering" lowered (Codegen.Lower.block_code_bytes blk)
  done

let test_lower_single_section () =
  let f = diamond_func () in
  match lower_default f with
  | [ s ] ->
    check ts "section name" ".text.diamond" s.Objfile.Section.name;
    check (Alcotest.option ts) "symbol" (Some "diamond") s.Objfile.Section.symbol
  | l -> Alcotest.failf "expected one section, got %d" (List.length l)

let test_lower_with_plan_clusters () =
  let f = diamond_func () in
  let plan =
    {
      Codegen.Directive.func = "diamond";
      clusters = [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ 0; 2 ] } ];
    }
  in
  let secs =
    Codegen.Lower.lower_func ~emit_bb_addr_map:false ~plan:(Some plan) ~default_order:[] f
  in
  (* Primary cluster (0,2) plus the implicit cold cluster (1,3). *)
  check ti "two sections" 2 (List.length secs);
  let names = List.map (fun (s : Objfile.Section.t) -> Option.get s.symbol) secs in
  check Alcotest.(list string) "symbols" [ "diamond"; "diamond.cold" ] names;
  let cold = List.nth secs 1 in
  (match Objfile.Section.fragment cold with
  | Some frag -> check Alcotest.(list int) "cold blocks" [ 1; 3 ] (Objfile.Fragment.block_ids frag)
  | None -> Alcotest.fail "no fragment")

let test_lower_invalid_plan_rejected () =
  let f = diamond_func () in
  let plan =
    {
      Codegen.Directive.func = "diamond";
      clusters = [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ 1 ] } ];
    }
  in
  try
    ignore (Codegen.Lower.lower_func ~emit_bb_addr_map:false ~plan:(Some plan) ~default_order:[] f);
    Alcotest.fail "expected rejection: primary must start with block 0"
  with Invalid_argument _ -> ()

let test_lower_landing_pad_nop () =
  let f =
    Ir.Func.make ~name:"eh"
      ~attrs:{ Ir.Func.exported = false; has_exceptions = true; has_inline_asm = false }
      [|
        compute_block ~id:0 ~bytes:4 ~term:(Ir.Term.Jump 1);
        Ir.Block.make ~id:1 ~body:[ Ir.Inst.Compute 4 ] ~term:Ir.Term.Return ~is_landing_pad:true ();
      |]
  in
  let plan =
    {
      Codegen.Directive.func = "eh";
      clusters =
        [
          { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ 0 ] };
          { Codegen.Directive.kind = Codegen.Directive.Cold; blocks = [ 1 ] };
        ];
    }
  in
  let secs = Codegen.Lower.lower_func ~emit_bb_addr_map:false ~plan:(Some plan) ~default_order:[] f in
  let cold = List.nth secs 1 in
  match Objfile.Section.fragment cold with
  | Some { pieces = p :: _; _ } ->
    (* Landing pad at section start must get the non-zero-offset nop (4.5). *)
    check tb "nop injected" true (List.hd p.insts = Isa.Nop 1)
  | Some { pieces = []; _ } | None -> Alcotest.fail "no cold piece"

let test_bbmap_emitted () =
  let f = diamond_func () in
  let secs =
    Codegen.Lower.lower_func ~emit_bb_addr_map:true ~plan:None
      ~default_order:[ 0; 1; 2; 3 ] f
  in
  check ti "text + map" 2 (List.length secs);
  let map_sec = List.nth secs 1 in
  match map_sec.Objfile.Section.contents with
  | Objfile.Section.Map [ fm ] ->
    check ts "keyed by symbol" "diamond" fm.func;
    check ti "entry per block" 4 (List.length fm.entries);
    (* Offsets are consecutive and sizes positive. *)
    let rec walk expected = function
      | [] -> ()
      | (e : Objfile.Bbmap.entry) :: rest ->
        check ti "offset" expected e.offset;
        check tb "size > 0" true (e.size > 0);
        walk (expected + e.size) rest
    in
    walk 0 fm.entries
  | _ -> Alcotest.fail "no bb map"

let test_intra_order_pgo () =
  (* With a strongly-biased branch, PGO layout puts the hot side next. *)
  let f = diamond_func ~prob:0.95 ~pgo_prob:0.95 () in
  (match Codegen.intra_order ~use_pgo:true f with
  | 0 :: 1 :: _ -> ()
  | o -> Alcotest.failf "hot side not adjacent: %s" (String.concat "," (List.map string_of_int o)));
  (* Without PGO the source order is kept. *)
  check Alcotest.(list int) "source order" [ 0; 1; 2; 3 ] (Codegen.intra_order ~use_pgo:false f)

let test_intra_order_inline_asm_pinned () =
  let f = diamond_func ~prob:0.95 () in
  let f = { f with Ir.Func.attrs = { f.attrs with has_inline_asm = true } } in
  check Alcotest.(list int) "asm never reordered" [ 0; 1; 2; 3 ]
    (Codegen.intra_order ~use_pgo:true f)

let test_compile_unit_sections () =
  let u = Ir.Cunit.make ~name:"u" ~rodata:128 ~data:64 [ diamond_func (); loop_func () ] in
  let o = Codegen.compile_unit { Codegen.default_options with emit_bb_addr_map = true } u in
  check ti "two text sections" 2 (Objfile.File.num_text_sections o);
  check tb "has eh_frame" true (Objfile.File.size_by_kind o Objfile.Section.Eh_frame > 0);
  check ti "rodata carried" 128 (Objfile.File.size_by_kind o Objfile.Section.Rodata);
  check ti "data carried" 64 (Objfile.File.size_by_kind o Objfile.Section.Data);
  check tb "bb maps" true (Objfile.File.size_by_kind o Objfile.Section.Bb_addr_map > 0)

let test_eh_frame_grows_with_clusters () =
  let u = Ir.Cunit.make ~name:"u" [ diamond_func () ] in
  let plain = Codegen.compile_unit Codegen.default_options u in
  let split_plan =
    [
      {
        Codegen.Directive.func = "diamond";
        clusters = [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ 0; 1 ] } ];
      };
    ]
  in
  let split = Codegen.compile_unit { Codegen.default_options with plans = split_plan } u in
  check tb "split pays CFI overhead (4.4)" true
    (Objfile.File.size_by_kind split Objfile.Section.Eh_frame
    > Objfile.File.size_by_kind plain Objfile.Section.Eh_frame)

let test_inline_asm_plan_ignored () =
  let f = diamond_func () in
  let f = { f with Ir.Func.attrs = { f.attrs with has_inline_asm = true } } in
  let u = Ir.Cunit.make ~name:"u" [ f ] in
  let plan =
    [
      {
        Codegen.Directive.func = "diamond";
        clusters = [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ 0; 3 ] } ];
      };
    ]
  in
  let o = Codegen.compile_unit { Codegen.default_options with plans = plan } u in
  check ti "asm function stays in one section" 1 (Objfile.File.num_text_sections o)

(* --- Directive serialization -------------------------------------- *)

let test_directive_roundtrip () =
  let t =
    [
      {
        Codegen.Directive.func = "foo";
        clusters =
          [
            { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ 0; 3; 1 ] };
            { Codegen.Directive.kind = Codegen.Directive.Cold; blocks = [ 2 ] };
            { Codegen.Directive.kind = Codegen.Directive.Extra 1; blocks = [ 4; 5 ] };
          ];
      };
      {
        Codegen.Directive.func = "bar";
        clusters = [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ 0 ] } ];
      };
    ]
  in
  match Codegen.Directive.of_text (Codegen.Directive.to_text t) with
  | Ok t' -> check tb "round trip" true (t = t')
  | Error e -> Alcotest.fail e

let test_directive_parse_errors () =
  check tb "cluster before func" true (Result.is_error (Codegen.Directive.of_text "!!primary 0"));
  check tb "garbage" true (Result.is_error (Codegen.Directive.of_text "hello"));
  check tb "bad block id" true (Result.is_error (Codegen.Directive.of_text "!f\n!!primary x"))

let test_directive_validate () =
  let plan clusters = { Codegen.Directive.func = "f"; clusters } in
  let primary blocks = { Codegen.Directive.kind = Codegen.Directive.Primary; blocks } in
  let cold blocks = { Codegen.Directive.kind = Codegen.Directive.Cold; blocks } in
  check tb "ok" true (Result.is_ok (Codegen.Directive.validate ~num_blocks:4 (plan [ primary [ 0; 1 ]; cold [ 2 ] ])));
  check tb "no primary" true (Result.is_error (Codegen.Directive.validate ~num_blocks:4 (plan [ cold [ 0 ] ])));
  check tb "dup block" true
    (Result.is_error (Codegen.Directive.validate ~num_blocks:4 (plan [ primary [ 0; 1 ]; cold [ 1 ] ])));
  check tb "out of range" true
    (Result.is_error (Codegen.Directive.validate ~num_blocks:2 (plan [ primary [ 0; 5 ] ])));
  check tb "primary must start at 0" true
    (Result.is_error (Codegen.Directive.validate ~num_blocks:4 (plan [ primary [ 1; 0 ] ])))

let test_directive_symbols () =
  let c kind = { Codegen.Directive.kind; blocks = [] } in
  check ts "primary" "f" (Codegen.Directive.symbol "f" (c Codegen.Directive.Primary));
  check ts "cold" "f.cold" (Codegen.Directive.symbol "f" (c Codegen.Directive.Cold));
  check ts "extra" "f.2" (Codegen.Directive.symbol "f" (c (Codegen.Directive.Extra 2)))

let suite =
  [
    Alcotest.test_case "lowering: explicit fallthrough" `Quick test_lower_block_explicit_fallthrough;
    Alcotest.test_case "lowering: return and switch" `Quick test_lower_return_and_switch;
    Alcotest.test_case "lowering: size shortcut" `Quick test_block_code_bytes_consistent;
    Alcotest.test_case "lowering: single section default" `Quick test_lower_single_section;
    Alcotest.test_case "lowering: plan clusters" `Quick test_lower_with_plan_clusters;
    Alcotest.test_case "lowering: invalid plan rejected" `Quick test_lower_invalid_plan_rejected;
    Alcotest.test_case "lowering: landing pad nop" `Quick test_lower_landing_pad_nop;
    Alcotest.test_case "lowering: bb address map" `Quick test_bbmap_emitted;
    Alcotest.test_case "intra order: pgo" `Quick test_intra_order_pgo;
    Alcotest.test_case "intra order: inline asm pinned" `Quick test_intra_order_inline_asm_pinned;
    Alcotest.test_case "compile unit sections" `Quick test_compile_unit_sections;
    Alcotest.test_case "eh_frame grows with clusters" `Quick test_eh_frame_grows_with_clusters;
    Alcotest.test_case "inline asm plan ignored" `Quick test_inline_asm_plan_ignored;
    Alcotest.test_case "directive round trip" `Quick test_directive_roundtrip;
    Alcotest.test_case "directive parse errors" `Quick test_directive_parse_errors;
    Alcotest.test_case "directive validation" `Quick test_directive_validate;
    Alcotest.test_case "directive symbols" `Quick test_directive_symbols;
  ]

open Testutil

let profile_of ?(requests = 30) program =
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let stats, profile = run_with_profile ~requests program binary in
  (binary, stats, profile)

let test_collector_samples () =
  let _, program = medium_program () in
  let _, stats, profile = profile_of program in
  check tb "samples collected" true (profile.num_samples > 0);
  check tb "records accumulate" true (profile.num_records >= profile.num_samples);
  (* One sample per [period] taken branches, buffers hold up to 32. *)
  let taken = Exec.Interp.taken_branches stats in
  let expected = taken / Perfmon.Lbr.default_config.period in
  check tb "sample count near expectation" true
    (abs (profile.num_samples - expected) <= 1)

let test_branch_pairs_valid () =
  let program = call_program () in
  let binary, _, profile = profile_of ~requests:50 program in
  Hashtbl.iter
    (fun (src, dst) n ->
      check tb "count positive" true (n > 0);
      check tb "src in text" true (src > binary.text_start && src <= binary.text_end);
      (* Root returns target the exit stub below the text segment. *)
      check tb "dst in text or exit stub" true
        (dst < binary.text_start || (dst >= binary.text_start && dst < binary.text_end)))
    profile.branches

let test_ranges_ordered () =
  let _, program = medium_program () in
  let _, _, profile = profile_of program in
  Hashtbl.iter
    (fun (lo, hi) _ -> check tb "range well formed" true (lo <= hi))
    profile.ranges

let test_sampling_period_thins_profile () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = metadata_link program in
  let collect period =
    let profile = Perfmon.Lbr.create_profile () in
    let image = Exec.Image.build program binary in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image
        { Exec.Interp.default_config with requests = 30 }
        (Perfmon.Lbr.collector { Perfmon.Lbr.default_config with period } profile)
    in
    profile
  in
  let dense = collect 13 and sparse = collect 1009 in
  check tb "longer period, fewer samples" true (sparse.num_samples < dense.num_samples);
  check tb "still nonempty" true (sparse.num_samples > 0)

let test_merge () =
  let program = call_program () in
  let _, _, p1 = profile_of ~requests:10 program in
  let _, _, p2 = profile_of ~requests:10 program in
  let total_before = Hashtbl.fold (fun _ n acc -> acc + n) p1.branches 0 in
  let samples_before = p1.num_samples in
  Perfmon.Lbr.merge p1 p2;
  let total_after = Hashtbl.fold (fun _ n acc -> acc + n) p1.branches 0 in
  check ti "branch counts add" (2 * total_before) total_after;
  check ti "samples add" (2 * samples_before) p1.num_samples

let test_raw_bytes_model () =
  let program = call_program () in
  let _, _, profile = profile_of program in
  let bytes = Perfmon.Lbr.raw_bytes Perfmon.Lbr.default_config profile in
  check tb "scales with samples" true
    (bytes >= profile.num_samples * 24 * Perfmon.Lbr.default_config.buffer_depth)

let test_hot_edge_dominates () =
  (* The loop back-edge of a hot loop must be among the most counted
     branch pairs. *)
  let f = loop_func ~name:"main" () in
  let program = Ir.Program.make ~name:"p" ~main:"main" [ Ir.Cunit.make ~name:"u" [ f ] ] in
  let binary, _, profile = profile_of ~requests:400 program in
  let b1 = Linker.Binary.block_info_exn binary ~func:"main" ~block:1 in
  let back_edge_count =
    Hashtbl.fold
      (fun (_, dst) n acc -> if dst = b1.addr then max acc n else acc)
      profile.branches 0
  in
  let max_count = Hashtbl.fold (fun _ n acc -> max acc n) profile.branches 0 in
  check ti "back edge is the hottest pair" max_count back_edge_count

let suite =
  [
    Alcotest.test_case "collector samples" `Quick test_collector_samples;
    Alcotest.test_case "branch pairs valid" `Quick test_branch_pairs_valid;
    Alcotest.test_case "ranges ordered" `Quick test_ranges_ordered;
    Alcotest.test_case "sampling period" `Quick test_sampling_period_thins_profile;
    Alcotest.test_case "profile merge" `Quick test_merge;
    Alcotest.test_case "raw bytes model" `Quick test_raw_bytes_model;
    Alcotest.test_case "hot edge dominates" `Quick test_hot_edge_dominates;
  ]

open Testutil

(* Random weighted digraph generator for property tests. *)
let graph_gen =
  QCheck.Gen.(
    sized_size (int_range 2 40) (fun n ->
        let* edge_count = int_range 0 (4 * n) in
        let* edges =
          list_repeat edge_count
            (let* s = int_bound (n - 1) in
             let* d = int_bound (n - 1) in
             let* w = float_bound_inclusive 100.0 in
             return (s, d, w))
        in
        let* sizes = array_repeat n (int_range 1 64) in
        let* weights = array_repeat n (float_bound_inclusive 50.0) in
        return (n, sizes, weights, edges)))

let graph_arb =
  QCheck.make
    ~print:(fun (n, _, _, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (s, d, w) -> Printf.sprintf "%d->%d:%.1f" s d w) edges)))
    graph_gen

let is_permutation n order =
  List.length order = n && List.sort compare order = List.init n Fun.id

let exttsp_permutation_law =
  QCheck.Test.make ~count:150 ~name:"exttsp order is a permutation" graph_arb
    (fun (n, sizes, weights, edges) ->
      let order = Layout.Exttsp.order ~sizes ~weights ~edges ~entry:0 () in
      is_permutation n order)

let exttsp_entry_first_law =
  QCheck.Test.make ~count:150 ~name:"exttsp keeps the entry first" graph_arb
    (fun (n, sizes, weights, edges) ->
      ignore n;
      let order = Layout.Exttsp.order ~sizes ~weights ~edges ~entry:0 () in
      match order with 0 :: _ -> true | _ -> false)

(* Greedy Ext-TSP accumulates only positive merge gains, and its first
   merge captures at least the heaviest edge that can legally become a
   fall-through (an edge into the entry cannot, since the entry stays
   first). Note greedy does NOT dominate the identity layout in general
   — a counterexample exists with 4 nodes — so the sound lower bound is
   this one. *)
let exttsp_lower_bound_law =
  QCheck.Test.make ~count:150 ~name:"exttsp score >= heaviest realizable edge" graph_arb
    (fun (_, sizes, weights, edges) ->
      let order = Layout.Exttsp.order ~sizes ~weights ~edges ~entry:0 () in
      let s_opt = Layout.Exttsp.score ~sizes ~edges ~order () in
      let best =
        List.fold_left
          (fun acc (s, d, w) -> if s <> d && d <> 0 then max acc w else acc)
          0.0 edges
      in
      s_opt >= best -. 1e-6)

let exttsp_pqueue_equals_linear_law =
  QCheck.Test.make ~count:80 ~name:"pqueue and linear retrieval agree" graph_arb
    (fun (_, sizes, weights, edges) ->
      let p1 = { Layout.Exttsp.default_params with use_pqueue = true } in
      let p2 = { Layout.Exttsp.default_params with use_pqueue = false } in
      Layout.Exttsp.order ~params:p1 ~sizes ~weights ~edges ~entry:0 ()
      = Layout.Exttsp.order ~params:p2 ~sizes ~weights ~edges ~entry:0 ())

let test_exttsp_chain () =
  (* A hot chain 0->1->2->3 must be laid out exactly in order. *)
  let sizes = [| 10; 10; 10; 10 |] in
  let weights = [| 1.0; 1.0; 1.0; 1.0 |] in
  let edges = [ (0, 1, 100.0); (1, 2, 100.0); (2, 3, 100.0) ] in
  check Alcotest.(list int) "chain order" [ 0; 1; 2; 3 ]
    (Layout.Exttsp.order ~sizes ~weights ~edges ~entry:0 ())

let test_exttsp_hot_fallthrough () =
  (* Diamond where the taken side is hot: 0 -> 1 (hot), 0 -> 2 (cold),
     both -> 3. The hot successor must be adjacent to 0. *)
  let sizes = [| 10; 10; 10; 10 |] in
  let weights = [| 100.0; 95.0; 5.0; 100.0 |] in
  let edges = [ (0, 1, 95.0); (0, 2, 5.0); (1, 3, 95.0); (2, 3, 5.0) ] in
  match Layout.Exttsp.order ~sizes ~weights ~edges ~entry:0 () with
  | 0 :: 1 :: _ -> ()
  | order ->
    Alcotest.failf "hot path not adjacent: %s"
      (String.concat "," (List.map string_of_int order))

let test_exttsp_singleton () =
  check Alcotest.(list int) "single node" [ 0 ]
    (Layout.Exttsp.order ~sizes:[| 8 |] ~weights:[| 1.0 |] ~edges:[] ~entry:0 ());
  check Alcotest.(list int) "empty" []
    (Layout.Exttsp.order ~sizes:[||] ~weights:[||] ~edges:[] ~entry:0 ())

let test_exttsp_score_fallthrough_beats_jump () =
  let sizes = [| 10; 10 |] in
  let edges = [ (0, 1, 10.0) ] in
  let s_ft = Layout.Exttsp.score ~sizes ~edges ~order:[ 0; 1 ] () in
  let s_back = Layout.Exttsp.score ~sizes ~edges ~order:[ 1; 0 ] () in
  check tb "fallthrough scores higher" true (s_ft > s_back);
  check tb "fallthrough full weight" true (abs_float (s_ft -. 10.0) < 1e-9)

let test_exttsp_window_decay () =
  (* A forward jump beyond the 1024-byte window scores zero. *)
  let sizes = [| 10; 2000; 10 |] in
  let edges = [ (0, 2, 10.0) ] in
  let s = Layout.Exttsp.score ~sizes ~edges ~order:[ 0; 1; 2 ] () in
  check tb "out of window = 0" true (s < 1e-9);
  (* Within the window it is positive but less than a fallthrough. *)
  let sizes2 = [| 10; 100; 10 |] in
  let s2 = Layout.Exttsp.score ~sizes:sizes2 ~edges ~order:[ 0; 1; 2 ] () in
  check tb "in window positive" true (s2 > 0.0 && s2 < 10.0)

let test_exttsp_merge_count () =
  let sizes = [| 10; 10; 10 |] in
  let weights = [| 1.0; 1.0; 1.0 |] in
  let edges = [ (0, 1, 5.0); (1, 2, 5.0) ] in
  ignore (Layout.Exttsp.order ~sizes ~weights ~edges ~entry:0 ());
  check ti "two merges for a 3-chain" 2 (Layout.Exttsp.last_merge_count ())

(* --- hfsort ------------------------------------------------------- *)

let test_hfsort_permutation () =
  let sizes = [| 100; 200; 300; 50 |] in
  let samples = [| 10.0; 500.0; 1.0; 300.0 |] in
  let arcs = [ (1, 3, 100.0); (3, 0, 10.0) ] in
  let order = Layout.Hfsort.order ~sizes ~samples ~arcs () in
  check tb "permutation" true (is_permutation 4 order)

let test_hfsort_caller_callee_adjacent () =
  let sizes = [| 100; 100; 100; 100 |] in
  let samples = [| 1000.0; 900.0; 1.0; 2.0 |] in
  let arcs = [ (0, 1, 500.0) ] in
  let order = Layout.Hfsort.order ~sizes ~samples ~arcs () in
  let pos f = Option.get (List.find_index (fun x -> x = f) order) in
  check ti "callee right after caller" (pos 0 + 1) (pos 1)

let test_hfsort_density_order () =
  (* No arcs: order by hotness density. *)
  let sizes = [| 1000; 10; 100 |] in
  let samples = [| 100.0; 100.0; 100.0 |] in
  let order = Layout.Hfsort.order ~sizes ~samples ~arcs:[] () in
  check Alcotest.(list int) "densest first" [ 1; 2; 0 ] order

let test_hfsort_cluster_cap () =
  (* Merging stops at the size cap, so the callee ends up placed by
     density rather than appended. *)
  let sizes = [| 900; 900 |] in
  let samples = [| 100.0; 50.0 |] in
  let arcs = [ (0, 1, 100.0) ] in
  let order = Layout.Hfsort.order ~sizes ~samples ~arcs ~max_cluster_size:1000 () in
  check tb "still a permutation" true (is_permutation 2 order)

let hfsort_permutation_law =
  QCheck.Test.make ~count:150 ~name:"hfsort is a permutation"
    QCheck.(
      make
        Gen.(
          sized_size (int_range 1 30) (fun n ->
              let* sizes = array_repeat n (int_range 1 5000) in
              let* samples = array_repeat n (float_bound_inclusive 1000.0) in
              let* arc_count = int_range 0 (2 * n) in
              let* arcs =
                list_repeat arc_count
                  (let* s = int_bound (n - 1) in
                   let* d = int_bound (n - 1) in
                   let* w = float_bound_inclusive 100.0 in
                   return (s, d, w))
              in
              return (n, sizes, samples, arcs))))
    (fun (n, sizes, samples, arcs) ->
      is_permutation n (Layout.Hfsort.order ~sizes ~samples ~arcs ()))

(* --- split -------------------------------------------------------- *)

let test_split_partition () =
  let counts = [| 10.0; 0.0; 5.0; 0.0 |] in
  let { Layout.Split.hot; cold } = Layout.Split.partition ~counts () in
  check Alcotest.(list int) "hot" [ 0; 2 ] hot;
  check Alcotest.(list int) "cold" [ 1; 3 ] cold

let test_split_entry_always_hot () =
  let counts = [| 0.0; 7.0 |] in
  let { Layout.Split.hot; _ } = Layout.Split.partition ~counts () in
  check tb "entry hot even at zero count" true (List.mem 0 hot)

let test_split_threshold () =
  let counts = [| 100.0; 3.0; 50.0 |] in
  let { Layout.Split.cold; _ } = Layout.Split.partition ~counts ~threshold:5.0 () in
  check Alcotest.(list int) "below threshold is cold" [ 1 ] cold

let test_call_split_heuristic () =
  check tb "small region not profitable" false
    (Layout.Split.call_split_profitable ~cold_bytes:10 ~entry_count:100.0 ~cold_entry_count:0.0);
  check tb "large cold region profitable" true
    (Layout.Split.call_split_profitable ~cold_bytes:500 ~entry_count:100.0 ~cold_entry_count:0.0);
  check tb "frequently-entered region not profitable" false
    (Layout.Split.call_split_profitable ~cold_bytes:500 ~entry_count:100.0 ~cold_entry_count:50.0)

let suite =
  [
    QCheck_alcotest.to_alcotest exttsp_permutation_law;
    QCheck_alcotest.to_alcotest exttsp_entry_first_law;
    QCheck_alcotest.to_alcotest exttsp_lower_bound_law;
    QCheck_alcotest.to_alcotest exttsp_pqueue_equals_linear_law;
    Alcotest.test_case "exttsp: hot chain" `Quick test_exttsp_chain;
    Alcotest.test_case "exttsp: hot fallthrough wins" `Quick test_exttsp_hot_fallthrough;
    Alcotest.test_case "exttsp: degenerate inputs" `Quick test_exttsp_singleton;
    Alcotest.test_case "exttsp: fallthrough scoring" `Quick test_exttsp_score_fallthrough_beats_jump;
    Alcotest.test_case "exttsp: distance windows" `Quick test_exttsp_window_decay;
    Alcotest.test_case "exttsp: merge count" `Quick test_exttsp_merge_count;
    Alcotest.test_case "hfsort: permutation" `Quick test_hfsort_permutation;
    Alcotest.test_case "hfsort: caller/callee adjacency" `Quick test_hfsort_caller_callee_adjacent;
    Alcotest.test_case "hfsort: density order" `Quick test_hfsort_density_order;
    Alcotest.test_case "hfsort: cluster cap" `Quick test_hfsort_cluster_cap;
    QCheck_alcotest.to_alcotest hfsort_permutation_law;
    Alcotest.test_case "split: partition" `Quick test_split_partition;
    Alcotest.test_case "split: entry hot" `Quick test_split_entry_always_hot;
    Alcotest.test_case "split: threshold" `Quick test_split_threshold;
    Alcotest.test_case "split: call heuristic" `Quick test_call_split_heuristic;
  ]

open Testutil

(* --- Cache -------------------------------------------------------- *)

let test_cache_basic_hit_miss () =
  let c = Uarch.Cache.create Uarch.Cache.l1i_params in
  check tb "cold miss" false (Uarch.Cache.access c 0x1000);
  check tb "warm hit" true (Uarch.Cache.access c 0x1000);
  check tb "same line hit" true (Uarch.Cache.access c 0x103f);
  check tb "next line miss" false (Uarch.Cache.access c 0x1040)

let test_cache_capacity () =
  (* 32 KiB L1i: a 16 KiB loop fits, a 1 MiB loop thrashes. *)
  let c = Uarch.Cache.create Uarch.Cache.l1i_params in
  let sweep bytes =
    let misses = ref 0 in
    for _ = 1 to 3 do
      let a = ref 0 in
      while !a < bytes do
        if not (Uarch.Cache.access c !a) then incr misses;
        a := !a + 64
      done
    done;
    !misses
  in
  let small = sweep (16 * 1024) in
  Uarch.Cache.reset c;
  let large = sweep (1024 * 1024) in
  (* Small working set: only compulsory misses on the first pass. *)
  check ti "resident set hits" (16 * 1024 / 64) small;
  check tb "thrashing misses every pass" true (large > 3 * (1024 * 1024 / 64) - 100)

let test_cache_lru () =
  (* Direct-mapped-ish check: fill one set beyond its ways and confirm
     the least recently used line is the victim. *)
  let p = { Uarch.Cache.sets = 2; ways = 2; line_bytes = 64 } in
  let c = Uarch.Cache.create p in
  (* Set 0 lines: 0, 128, 256 (every 2*64 maps to set 0). *)
  ignore (Uarch.Cache.access c 0);
  ignore (Uarch.Cache.access c 128);
  ignore (Uarch.Cache.access c 0);
  (* touching 0 makes 128 the LRU *)
  ignore (Uarch.Cache.access c 256);
  (* evicts 128 *)
  check tb "0 survives" true (Uarch.Cache.access c 0);
  check tb "128 evicted" false (Uarch.Cache.access c 128)

let test_cache_reset () =
  let c = Uarch.Cache.create Uarch.Cache.l1i_params in
  ignore (Uarch.Cache.access c 4096);
  Uarch.Cache.reset c;
  check tb "cold after reset" false (Uarch.Cache.access c 4096)

(* --- TLB ---------------------------------------------------------- *)

let test_tlb_4k () =
  let t = Uarch.Tlb.create Uarch.Tlb.skylake ~hugepages:false in
  check tb "cold miss" false (Uarch.Tlb.access t 0x400000);
  check tb "same page hit" true (Uarch.Tlb.access t 0x400fff);
  check tb "next page miss" false (Uarch.Tlb.access t 0x401000)

let test_tlb_2m_reach () =
  (* 8 x 2M entries cover 16 MB; with 4K pages, 128 entries cover only
     512 KB — the hugepage effect of 5.5. *)
  let code_bytes = 4 * 1024 * 1024 in
  let sweep t =
    let misses = ref 0 in
    for _ = 1 to 3 do
      let a = ref 0 in
      while !a < code_bytes do
        if not (Uarch.Tlb.access t !a) then incr misses;
        a := !a + 4096
      done
    done;
    !misses
  in
  let small_pages = sweep (Uarch.Tlb.create Uarch.Tlb.skylake ~hugepages:false) in
  let huge_pages = sweep (Uarch.Tlb.create Uarch.Tlb.skylake ~hugepages:true) in
  check tb "hugepages dramatically fewer misses" true (huge_pages * 10 < small_pages)

let test_tlb_page_scaling () =
  (* Shrinking pages by 2^4 makes a working set that fit before now
     overflow the same entry count. *)
  let code = 400 * 1024 in
  let sweep t =
    let misses = ref 0 in
    for _ = 1 to 2 do
      let a = ref 0 in
      while !a < code do
        if not (Uarch.Tlb.access t !a) then incr misses;
        a := !a + 512
      done
    done;
    !misses
  in
  let normal = sweep (Uarch.Tlb.create Uarch.Tlb.skylake ~hugepages:false) in
  let scaled =
    sweep (Uarch.Tlb.create ~page_scale_bits:4 Uarch.Tlb.skylake ~hugepages:false)
  in
  check tb "scaled pages raise pressure" true (scaled > 2 * normal)

(* --- BTB ---------------------------------------------------------- *)

let test_btb_resteer_once () =
  let b = Uarch.Btb.create Uarch.Btb.skylake in
  check tb "first taken resteers" true (Uarch.Btb.taken b ~src:0x1234);
  check tb "tracked afterwards" false (Uarch.Btb.taken b ~src:0x1234)

let test_btb_capacity_pressure () =
  let b = Uarch.Btb.create { Uarch.Btb.entries = 16; ways = 2 } in
  (* 64 distinct branches > 16 entries: revisiting them must resteer. *)
  for i = 0 to 63 do
    ignore (Uarch.Btb.taken b ~src:(i * 8))
  done;
  let resteers = ref 0 in
  for i = 0 to 63 do
    if Uarch.Btb.taken b ~src:(i * 8) then incr resteers
  done;
  check tb "pressure causes resteers" true (!resteers > 32)

(* --- Core counters ------------------------------------------------ *)

let core_run ?(hugepages = false) program binary requests =
  let image = Exec.Image.build program binary in
  let core = Uarch.Core.create { Uarch.Core.default_config with hugepages } in
  let stats = Exec.Interp.run image { Exec.Interp.default_config with requests } (Uarch.Core.sink core) in
  (stats, Uarch.Core.counters core)

let test_core_counter_sanity () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = compile_and_link program in
  let stats, c = core_run program binary 30 in
  check tb "instructions counted" true (c.instructions > 0);
  check tb "cycles accumulate" true (c.cycles > 0.0);
  (* Miss hierarchies are ordered. *)
  check tb "L2 misses <= L1 misses" true (c.i2_l2_code_miss <= c.i1_l1i_miss);
  check tb "L3 misses <= L2 misses" true (c.i3_l3_code_miss <= c.i2_l2_code_miss);
  check tb "stall iTLB <= all iTLB" true (c.t2_itlb_stall_miss <= c.t1_itlb_miss);
  check tb "resteers <= taken" true (c.b1_baclears <= c.b2_taken_branches);
  (* The core's taken-branch counter agrees with the interpreter. *)
  check ti "B2 = taken" (Exec.Interp.taken_branches stats) c.b2_taken_branches

let test_core_counters_deterministic () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } = compile_and_link program in
  let _, c1 = core_run program binary 20 in
  let _, c2 = core_run program binary 20 in
  check tb "same counters" true (c1 = c2)

let test_core_hugepage_itlb () =
  let _, program = medium_program () in
  let _, { Linker.Link.binary; _ } =
    compile_and_link ~link:{ Linker.Link.default_options with text_align = 2 * 1024 * 1024 } program
  in
  let _, c4k = core_run ~hugepages:false program binary 30 in
  let _, c2m = core_run ~hugepages:true program binary 30 in
  check tb "hugepages reduce iTLB misses" true (c2m.t1_itlb_miss <= c4k.t1_itlb_miss)

(* --- Heatmap ------------------------------------------------------ *)

let test_heatmap_accumulates () =
  let program = call_program () in
  let _, { Linker.Link.binary; _ } = compile_and_link program in
  let hm =
    Uarch.Heatmap.create ~lo:binary.text_start ~hi:binary.text_end ~rows:8 ~cols:4
      ~total_requests:20
  in
  let image = Exec.Image.build program binary in
  let (_ : Exec.Interp.stats) =
    Exec.Interp.run image { Exec.Interp.default_config with requests = 20 } (Uarch.Heatmap.sink hm)
  in
  check tb "some rows touched" true (Uarch.Heatmap.occupied_rows hm > 0);
  let total = ref 0 in
  for r = 0 to 7 do
    for c = 0 to 3 do
      total := !total + Uarch.Heatmap.cell hm ~row:r ~col:c
    done
  done;
  check tb "bytes recorded" true (!total > 0);
  let rendered = Uarch.Heatmap.render hm in
  check ti "8 rows rendered" 8 (List.length (String.split_on_char '\n' rendered) - 1);
  check tb "csv has header" true
    (String.length (Uarch.Heatmap.to_csv hm) > String.length "row,col,bytes\n")

let suite =
  [
    Alcotest.test_case "cache: hit/miss" `Quick test_cache_basic_hit_miss;
    Alcotest.test_case "cache: capacity" `Quick test_cache_capacity;
    Alcotest.test_case "cache: LRU eviction" `Quick test_cache_lru;
    Alcotest.test_case "cache: reset" `Quick test_cache_reset;
    Alcotest.test_case "tlb: 4k pages" `Quick test_tlb_4k;
    Alcotest.test_case "tlb: hugepage reach" `Quick test_tlb_2m_reach;
    Alcotest.test_case "tlb: page scaling" `Quick test_tlb_page_scaling;
    Alcotest.test_case "btb: resteer once" `Quick test_btb_resteer_once;
    Alcotest.test_case "btb: capacity pressure" `Quick test_btb_capacity_pressure;
    Alcotest.test_case "core: counter sanity" `Quick test_core_counter_sanity;
    Alcotest.test_case "core: deterministic" `Quick test_core_counters_deterministic;
    Alcotest.test_case "core: hugepage iTLB" `Quick test_core_hugepage_itlb;
    Alcotest.test_case "heatmap" `Quick test_heatmap_accumulates;
  ]

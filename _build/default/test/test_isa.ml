open Testutil

let blk func block = Isa.Target.Block { func; block }

let test_sizes () =
  check ti "alu" 7 (Isa.size (Isa.Alu 7));
  check ti "short jcc" 2 (Isa.size (Isa.Jcc { cond = Isa.Cond.Eq; target = blk "f" 1; encoding = Isa.Short }));
  check ti "long jcc" 6 (Isa.size (Isa.Jcc { cond = Isa.Cond.Eq; target = blk "f" 1; encoding = Isa.Long }));
  check ti "short jmp" 2 (Isa.size (Isa.Jmp { target = blk "f" 1; encoding = Isa.Short }));
  check ti "long jmp" 5 (Isa.size (Isa.Jmp { target = blk "f" 1; encoding = Isa.Long }));
  check ti "call" 5 (Isa.size (Isa.Call (Isa.Target.Func "g")));
  check ti "ret" 1 (Isa.size Isa.Ret);
  check ti "icall" 3 (Isa.size Isa.IndirectCall);
  check ti "ijmp" 3 (Isa.size Isa.IndirectJmp);
  check ti "data" 24 (Isa.size (Isa.InlineData 24))

let test_cond_negate_involution () =
  List.iter
    (fun c -> check tb "double negate" true (Isa.Cond.equal c (Isa.Cond.negate (Isa.Cond.negate c))))
    [ Isa.Cond.Eq; Isa.Cond.Ne; Isa.Cond.Lt; Isa.Cond.Ge; Isa.Cond.Le; Isa.Cond.Gt ];
  List.iter
    (fun c -> check tb "negate changes" false (Isa.Cond.equal c (Isa.Cond.negate c)))
    [ Isa.Cond.Eq; Isa.Cond.Ne; Isa.Cond.Lt; Isa.Cond.Ge; Isa.Cond.Le; Isa.Cond.Gt ]

let test_fits_short () =
  check tb "127" true (Isa.fits_short 127);
  check tb "-128" true (Isa.fits_short (-128));
  check tb "128" false (Isa.fits_short 128);
  check tb "-129" false (Isa.fits_short (-129));
  check tb "0" true (Isa.fits_short 0)

let test_branch_target () =
  let t = blk "f" 3 in
  check tb "jcc has target" true
    (Isa.branch_target (Isa.Jcc { cond = Isa.Cond.Eq; target = t; encoding = Isa.Long })
    = Some t);
  check tb "call has target" true (Isa.branch_target (Isa.Call t) = Some t);
  check tb "alu has none" true (Isa.branch_target (Isa.Alu 4) = None);
  check tb "ret has none" true (Isa.branch_target Isa.Ret = None)

let test_with_target () =
  let t = blk "f" 1 and u = blk "g" 2 in
  let j = Isa.Jmp { target = t; encoding = Isa.Long } in
  check tb "retargeted" true (Isa.branch_target (Isa.with_target j u) = Some u);
  Alcotest.check_raises "non-branch rejected"
    (Invalid_argument "Isa.with_target: not a branching instruction") (fun () ->
      ignore (Isa.with_target (Isa.Alu 1) u))

let test_classification () =
  check tb "jcc is branch" true (Isa.is_branch (Isa.Jcc { cond = Isa.Cond.Eq; target = blk "f" 0; encoding = Isa.Long }));
  check tb "call is not branch" false (Isa.is_branch (Isa.Call (Isa.Target.Func "g")));
  check tb "call is transfer" true (Isa.is_control_transfer (Isa.Call (Isa.Target.Func "g")));
  check tb "ret is transfer" true (Isa.is_control_transfer Isa.Ret);
  check tb "data is not" false (Isa.is_control_transfer (Isa.InlineData 8))

let test_target_symbols () =
  check ts "block symbol" "f#3" (Isa.Target.symbol (blk "f" 3));
  check ts "func symbol" "f" (Isa.Target.symbol (Isa.Target.Func "f"));
  check tb "compare orders blocks first" true
    (Isa.Target.compare (blk "f" 0) (Isa.Target.Func "f") < 0);
  check tb "equal" true (Isa.Target.equal (blk "f" 1) (blk "f" 1));
  check tb "not equal across funcs" false (Isa.Target.equal (blk "f" 1) (blk "g" 1))

let suite =
  [
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "cond negate" `Quick test_cond_negate_involution;
    Alcotest.test_case "fits_short bounds" `Quick test_fits_short;
    Alcotest.test_case "branch targets" `Quick test_branch_target;
    Alcotest.test_case "with_target" `Quick test_with_target;
    Alcotest.test_case "classification" `Quick test_classification;
    Alcotest.test_case "target symbols" `Quick test_target_symbols;
  ]

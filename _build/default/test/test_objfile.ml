open Testutil

let piece block insts = { Objfile.Fragment.block; insts; is_landing_pad = false }

let simple_frag () =
  Objfile.Fragment.make ~func:"f"
    [
      piece 0 [ Isa.Alu 4; Isa.Jcc { cond = Isa.Cond.Eq; target = Isa.Target.Block { func = "f"; block = 1 }; encoding = Isa.Long } ];
      piece 1 [ Isa.Alu 6; Isa.Ret ];
    ]

let test_fragment_sizes () =
  let f = simple_frag () in
  check ti "byte size" (4 + 6 + 6 + 1) (Objfile.Fragment.byte_size f);
  match Objfile.Fragment.piece_offsets f with
  | [ (_, 0); (_, 10) ] -> ()
  | offs -> Alcotest.failf "bad offsets: %s" (String.concat "," (List.map (fun (_, o) -> string_of_int o) offs))

let test_fragment_relocs () =
  let f = simple_frag () in
  check ti "one branch reloc" 1 (Objfile.Fragment.num_relocations f);
  let with_call =
    Objfile.Fragment.make ~func:"g" [ piece 0 [ Isa.Call (Isa.Target.Func "f"); Isa.Ret ] ]
  in
  check ti "calls relocate too" 1 (Objfile.Fragment.num_relocations with_call)

let test_fragment_rejects_empty () =
  try
    ignore (Objfile.Fragment.make ~func:"f" []);
    Alcotest.fail "expected failure"
  with Invalid_argument _ -> ()

let test_bbmap_lookup () =
  let map =
    [
      {
        Objfile.Bbmap.func = "f";
        entries =
          [
            { Objfile.Bbmap.bb_id = 0; offset = 0; size = 10; can_fallthrough = true; is_landing_pad = false };
            { Objfile.Bbmap.bb_id = 3; offset = 10; size = 7; can_fallthrough = false; is_landing_pad = false };
          ];
      };
    ]
  in
  (match Objfile.Bbmap.lookup map ~func:"f" ~offset:12 with
  | Some e -> check ti "maps into second block" 3 e.bb_id
  | None -> Alcotest.fail "lookup failed");
  check tb "off the end" true (Objfile.Bbmap.lookup map ~func:"f" ~offset:17 = None);
  check tb "unknown func" true (Objfile.Bbmap.lookup map ~func:"g" ~offset:0 = None);
  check ti "entries" 2 (Objfile.Bbmap.num_entries map)

let test_bbmap_encoded_size () =
  let entry off = { Objfile.Bbmap.bb_id = 1; offset = off; size = 10; can_fallthrough = true; is_landing_pad = false } in
  let size_small = Objfile.Bbmap.encoded_size [ { Objfile.Bbmap.func = "f"; entries = [ entry 10 ] } ] in
  let size_big = Objfile.Bbmap.encoded_size [ { Objfile.Bbmap.func = "f"; entries = [ entry 100000 ] } ] in
  check tb "uleb grows with offsets" true (size_big > size_small);
  (* header 9 + id(1) + offset(1) + size(1) + flags(1) *)
  check ti "small entry encoding" 13 size_small

let test_symname_roundtrips () =
  check ts "cold" "foo.cold" (Objfile.Symname.cold "foo");
  check ts "cluster" "foo.2" (Objfile.Symname.cluster "foo" 2);
  check ts "owner of cold" "foo" (Objfile.Symname.owner "foo.cold");
  check ts "owner of cluster" "foo" (Objfile.Symname.owner "foo.7");
  check ts "owner of plain" "foo" (Objfile.Symname.owner "foo");
  check ts "owner keeps interior dots" "a.b" (Objfile.Symname.owner "a.b");
  check tb "is_cold" true (Objfile.Symname.is_cold "foo.cold");
  check tb "not cold" false (Objfile.Symname.is_cold "foo.col");
  check tb "block parse" true (Objfile.Symname.parse_block "foo#12" = Some ("foo", 12));
  check tb "block parse fails" true (Objfile.Symname.parse_block "foo" = None);
  check ts "block format" "foo#3" (Objfile.Symname.block ~func:"foo" ~block:3)

let symname_owner_law =
  QCheck.Test.make ~count:200 ~name:"owner inverts cold/cluster naming"
    QCheck.(string_gen_of_size (Gen.int_range 1 12) Gen.(char_range 'a' 'z'))
    (fun f ->
      String.equal (Objfile.Symname.owner (Objfile.Symname.cold f)) f
      && String.equal (Objfile.Symname.owner (Objfile.Symname.cluster f 3)) f)

let test_section_sizes () =
  let s =
    Objfile.Section.make ~name:".text.f" ~kind:Objfile.Section.Text ~symbol:"f"
      (Objfile.Section.Code (simple_frag ()))
  in
  check ti "code section size" 17 (Objfile.Section.size s);
  check tb "is text" true (Objfile.Section.is_text s);
  let raw = Objfile.Section.make ~name:".rodata" ~kind:Objfile.Section.Rodata (Objfile.Section.Raw 100) in
  check ti "raw size" 100 (Objfile.Section.size raw);
  check tb "raw not text" false (Objfile.Section.is_text raw)

let test_file_accessors () =
  let text =
    Objfile.Section.make ~name:".text.f" ~kind:Objfile.Section.Text ~symbol:"f"
      (Objfile.Section.Code (simple_frag ()))
  in
  let ro = Objfile.Section.make ~name:".rodata" ~kind:Objfile.Section.Rodata (Objfile.Section.Raw 64) in
  let o = Objfile.File.make ~name:"u.o" ~unit_name:"u" [ text; ro ] in
  check ti "one text section" 1 (List.length (Objfile.File.text_sections o));
  check ti "text bytes" 17 (Objfile.File.size_by_kind o Objfile.Section.Text);
  check ti "total" (17 + 64) (Objfile.File.total_size o);
  check tb "symbol defined" true (List.mem_assoc "f" (Objfile.File.defined_symbols o));
  check tb "find section" true (Option.is_some (Objfile.File.find_section o ".rodata"));
  check ti "relocs" 1 (Objfile.File.num_relocations o)

let test_file_extra_section_relocs () =
  (* A second text section adds two DWARF range relocations (4.3). *)
  let sec sym frag = Objfile.Section.make ~name:(".text." ^ sym) ~kind:Objfile.Section.Text ~symbol:sym (Objfile.Section.Code frag) in
  let frag sym = Objfile.Fragment.make ~func:sym [ piece 0 [ Isa.Ret ] ] in
  let o = Objfile.File.make ~name:"u.o" ~unit_name:"u" [ sec "f" (frag "f"); sec "f.cold" (frag "f") ] in
  check ti "2 dwarf relocs for extra section" 2 (Objfile.File.num_relocations o)

let suite =
  [
    Alcotest.test_case "fragment sizes and offsets" `Quick test_fragment_sizes;
    Alcotest.test_case "fragment relocations" `Quick test_fragment_relocs;
    Alcotest.test_case "fragment rejects empty" `Quick test_fragment_rejects_empty;
    Alcotest.test_case "bbmap lookup" `Quick test_bbmap_lookup;
    Alcotest.test_case "bbmap encoded size" `Quick test_bbmap_encoded_size;
    Alcotest.test_case "symname conventions" `Quick test_symname_roundtrips;
    QCheck_alcotest.to_alcotest symname_owner_law;
    Alcotest.test_case "section sizes" `Quick test_section_sizes;
    Alcotest.test_case "object accessors" `Quick test_file_accessors;
    Alcotest.test_case "extra-section dwarf relocs" `Quick test_file_extra_section_relocs;
  ]

examples/quickstart.mli:

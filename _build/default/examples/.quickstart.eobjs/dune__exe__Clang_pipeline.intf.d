examples/clang_pipeline.mli:

examples/clang_pipeline.ml: Boltsim Buildsys Codegen Exec Ir Linker List Printf Progen Propeller Uarch

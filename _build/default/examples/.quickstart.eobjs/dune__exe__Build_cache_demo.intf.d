examples/build_cache_demo.mli:

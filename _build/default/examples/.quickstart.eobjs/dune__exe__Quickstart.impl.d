examples/quickstart.ml: Buildsys Codegen Exec Ir Isa Linker List Objfile Printf Propeller Uarch

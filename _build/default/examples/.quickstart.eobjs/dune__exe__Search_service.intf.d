examples/search_service.mli:

examples/search_service.ml: Buildsys Exec Linker List Printf Progen Propeller Support Uarch

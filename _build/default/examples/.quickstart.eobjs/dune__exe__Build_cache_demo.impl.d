examples/build_cache_demo.ml: Buildsys Exec List Printf Progen Propeller

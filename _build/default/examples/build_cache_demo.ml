(* Build-system scenario: why relinking is cheap.

   Shows the content-addressed object cache at work across the four
   phases, then does an *incremental* Propeller round: after the first
   optimization, the profile shifts (a different workload mix), and the
   second Phase 4 only re-generates the objects whose directives
   actually changed.

   Run with: dune exec examples/build_cache_demo.exe *)

let () =
  print_endline "=== build cache demo ===";
  let spec = { Progen.Suite.mysql with Progen.Spec.requests = 120 } in
  let program = Progen.Generate.program spec in
  (* A small worker pool so saved backend work shows up as wall time. *)
  let env = Buildsys.Driver.make_env ~workers:16 () in
  let cache_line label =
    Printf.printf "  %-26s hits=%-5d misses=%-5d hit-rate=%.0f%%  stored=%.1f MB\n" label
      (Buildsys.Cache.hits env.obj_cache)
      (Buildsys.Cache.misses env.obj_cache)
      (100.0 *. Buildsys.Cache.hit_rate env.obj_cache)
      (float_of_int (Buildsys.Cache.stored_bytes env.obj_cache) /. 1.0e6)
  in

  print_endline "\n[1] vanilla build (everything misses):";
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name:"db" in
  Printf.printf "  wall %.1fs, %d objects\n" base.wall_seconds (List.length base.objs);
  cache_line "after baseline";

  print_endline "\n[2] identical rebuild (everything hits):";
  let again = Propeller.Pipeline.baseline_build ~env ~program ~name:"db2" in
  Printf.printf "  wall %.1fs (link only)\n" again.wall_seconds;
  cache_line "after rebuild";

  print_endline "\n[3] Propeller phases 1-4:";
  let run_pipeline requests =
    Propeller.Pipeline.run
      ~config:
        {
          Propeller.Pipeline.default_config with
          profile_run = { Exec.Interp.default_config with requests };
        }
      ~env ~program ~name:"db" ()
  in
  let prop = run_pipeline spec.requests in
  Printf.printf "  metadata build wall %.1fs; Phase 4 wall %.1fs\n"
    prop.times.metadata_build_s prop.times.optimize_build_s;
  Printf.printf "  Phase 4 re-generated %d/%d objects; the other %d came from cache\n"
    prop.hot_objects prop.total_objects (prop.total_objects - prop.hot_objects);
  cache_line "after propeller";

  print_endline "\n[4] re-optimize with a longer profiling run (profile drifts):";
  let prop2 = run_pipeline (2 * spec.requests) in
  Printf.printf "  Phase 4 this time re-generated %d/%d objects (only changed directives)\n"
    prop2.hot_objects prop2.total_objects;
  cache_line "after re-optimize";

  print_endline "\n[5] the same Phase 4 against a cold cache, for contrast:";
  let cold_env = Buildsys.Driver.make_env ~workers:16 () in
  let cg, ld = Propeller.Pipeline.optimize_options prop2.wpa in
  let cold =
    Buildsys.Driver.build cold_env ~name:"db.cold" ~program ~codegen_options:cg ~link_options:ld
  in
  Printf.printf "  cold-cache Phase 4 wall %.1fs vs warm %.1fs (%.1fx)\n" cold.wall_seconds
    prop2.times.optimize_build_s
    (cold.wall_seconds /. prop2.times.optimize_build_s)

(* Server scenario: a Search-shaped service (413 MB text, 95% cold
   objects in the paper; generated at 64:1 scale) measured in QPS, with
   2M hugepages for the text segment like production, plus the Fig-7
   style instruction-access heat map.

   Run with: dune exec examples/search_service.exe *)

let requests = 150

let qps cycles = float_of_int requests /. (cycles /. 2.0e9) (* a 2 GHz core *)

let measure ~hugepages program binary =
  let image = Exec.Image.build program binary in
  let core = Uarch.Core.create { Uarch.Core.default_config with hugepages } in
  let (_ : Exec.Interp.stats) =
    Exec.Interp.run image { Exec.Interp.default_config with requests } (Uarch.Core.sink core)
  in
  Uarch.Core.counters core

let heatmap program (binary : Linker.Binary.t) =
  let hm =
    Uarch.Heatmap.create ~lo:binary.text_start ~hi:binary.text_end ~rows:16 ~cols:60
      ~total_requests:requests
  in
  let image = Exec.Image.build program binary in
  let (_ : Exec.Interp.stats) =
    Exec.Interp.run image { Exec.Interp.default_config with requests } (Uarch.Heatmap.sink hm)
  in
  hm

let () =
  print_endline "=== search service ===";
  let spec = { Progen.Suite.search with Progen.Spec.requests } in
  Printf.printf "generating the search-shaped service (scale %d:1, hugepages=%b)...\n%!"
    spec.scale spec.hugepages;
  let program = Progen.Generate.program spec in
  let env = Buildsys.Driver.make_env () in
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name:"search" in
  Printf.printf "baseline built: %d objects, text %d bytes\n%!"
    (List.length base.objs)
    (Linker.Binary.text_bytes base.binary);

  let prop =
    Propeller.Pipeline.run
      ~config:
        {
          Propeller.Pipeline.default_config with
          profile_run = { Exec.Interp.default_config with requests };
          hugepages = true;
        }
      ~env ~program ~name:"search" ()
  in
  Printf.printf "propeller: %d hot / %d objects; Phase 3 peak memory (modelled) %.2f GB\n%!"
    prop.hot_objects prop.total_objects
    (float_of_int prop.wpa.peak_mem_bytes /. 1.0e9);

  let cb = measure ~hugepages:true program base.binary in
  let cp = measure ~hugepages:true program (Propeller.Pipeline.optimized_binary prop) in
  Printf.printf "\nQPS: baseline %.0f -> propeller %.0f (%+.2f%%)\n" (qps cb.cycles)
    (qps cp.cycles)
    (((qps cp.cycles /. qps cb.cycles) -. 1.0) *. 100.0);
  Printf.printf "iTLB stall misses: %d -> %d (%+.0f%%)\n" cb.t2_itlb_stall_miss
    cp.t2_itlb_stall_miss
    (Support.Stats.ratio_pct (float_of_int cp.t2_itlb_stall_miss)
       (float_of_int cb.t2_itlb_stall_miss));
  Printf.printf "L1i misses:        %d -> %d (%+.0f%%)\n" cb.i1_l1i_miss cp.i1_l1i_miss
    (Support.Stats.ratio_pct (float_of_int cp.i1_l1i_miss) (float_of_int cb.i1_l1i_miss));

  print_endline "\ninstruction-access heat map, baseline (addr rows x time cols):";
  print_string (Uarch.Heatmap.render (heatmap program base.binary));
  print_endline "\ninstruction-access heat map, propeller (hot band packed low):";
  print_string (Uarch.Heatmap.render (heatmap program (Propeller.Pipeline.optimized_binary prop)))

(* Quickstart: drive a tiny hand-written program through the full
   Propeller pipeline and look at every intermediate artifact.

   Run with: dune exec examples/quickstart.exe *)

let () =
  print_endline "=== Propeller quickstart ===\n";

  (* 1. A tiny program: [main] runs a hot loop that mostly calls
     [fast], rarely [slow]; both have a cold error path. *)
  let worker name =
    Ir.Func.make ~name
      [|
        Ir.Block.make ~id:0 ~body:[ Ir.Inst.Compute 12 ]
          ~term:
            (Ir.Term.Branch
               { cond = Isa.Cond.Eq; taken = 2; fallthrough = 1; prob = 0.001; pgo_prob = 0.3 })
          ();
        Ir.Block.make ~id:1 ~body:[ Ir.Inst.Compute 16 ] ~term:Ir.Term.Return ();
        (* Cold error path: big, and in the middle of nowhere useful. *)
        Ir.Block.make ~id:2 ~body:[ Ir.Inst.Compute 120 ] ~term:Ir.Term.Return ();
      |]
  in
  let main =
    Ir.Func.make ~name:"main"
      [|
        Ir.Block.make ~id:0 ~body:[ Ir.Inst.Compute 8 ] ~term:(Ir.Term.Jump 1) ();
        Ir.Block.make ~id:1
          ~body:
            [ Ir.Inst.VirtualCall { callees = [| ("fast", 0.9); ("slow", 0.1) |] } ]
          ~term:
            (Ir.Term.Branch
               { cond = Isa.Cond.Ne; taken = 1; fallthrough = 2; prob = 0.8; pgo_prob = 0.8 })
          ();
        Ir.Block.make ~id:2 ~body:[ Ir.Inst.Compute 4 ] ~term:Ir.Term.Return ();
      |]
  in
  let program =
    Ir.Program.make ~name:"quickstart" ~main:"main"
      [
        Ir.Cunit.make ~name:"main_unit" [ main ];
        Ir.Cunit.make ~name:"workers" [ worker "fast"; worker "slow" ];
      ]
  in
  Printf.printf "program: %d functions, %d basic blocks, %d code bytes\n"
    (Ir.Program.num_funcs program) (Ir.Program.num_blocks program)
    (Ir.Program.code_bytes program);

  (* 2. Phases 1-2: build the metadata (PM) binary through the build
     system. The PGO estimate above wrongly thinks the error path is
     30% likely - exactly the staleness Propeller fixes. *)
  let env = Buildsys.Driver.make_env () in
  let config =
    {
      Propeller.Pipeline.default_config with
      profile_run = { Exec.Interp.default_config with requests = 500 };
    }
  in
  let result = Propeller.Pipeline.run ~config ~env ~program ~name:"quickstart" () in
  let pm = result.metadata_build.binary in
  Printf.printf "\nPhase 1-2: metadata binary: %d text bytes, %d bytes of .llvm_bb_addr_map\n"
    (Linker.Binary.text_bytes pm)
    (Linker.Binary.size_of_kind pm Objfile.Section.Bb_addr_map);

  (* 3. Phase 3 artifacts: the profile and the layout directives. *)
  Printf.printf "\nPhase 3: %d LBR samples -> DCFG with %d blocks / %d edges in %d hot functions\n"
    result.profile.num_samples result.wpa.dcfg_blocks result.wpa.dcfg_edges
    result.wpa.hot_funcs;
  print_endline "\ncc_prof.txt (cluster directives):";
  print_string (Codegen.Directive.to_text result.wpa.plans);
  print_endline "\nld_prof.txt (symbol ordering):";
  List.iter (fun s -> Printf.printf "  %s\n" s) result.wpa.ordering;

  (* 4. Phase 4: the optimized binary. Cold object files came from the
     cache; hot ones were re-generated with the directives. *)
  Printf.printf "\nPhase 4: %d/%d objects re-generated (rest cached)\n" result.hot_objects
    result.total_objects;
  let po = Propeller.Pipeline.optimized_binary result in
  List.iter
    (fun (p : Linker.Binary.placed) ->
      if p.kind = Objfile.Section.Text then
        Printf.printf "  %-28s @ 0x%x (%d bytes)\n" p.name p.addr p.size)
    po.sections;

  (* 5. Measure both binaries on the simulated core. *)
  let measure label binary =
    let image = Exec.Image.build program binary in
    let core = Uarch.Core.create Uarch.Core.default_config in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image { Exec.Interp.default_config with requests = 500 }
        (Uarch.Core.sink core)
    in
    let c = Uarch.Core.counters core in
    Printf.printf "  %-10s cycles=%10.0f  L1i-miss=%-6d taken-branches=%d\n" label c.cycles
      c.i1_l1i_miss c.b2_taken_branches;
    c.cycles
  in
  print_endline "\nPerformance (simulated):";
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name:"quickstart.base" in
  let cb = measure "baseline" base.binary in
  let cp = measure "propeller" po in
  Printf.printf "\nPropeller speedup: %+.2f%%\n" ((cb -. cp) /. cb *. 100.0);
  print_endline
    "(a 300-byte toy fits every cache, so the win is ~0 here; see\n\
    \ examples/clang_pipeline.exe and examples/search_service.exe for\n\
    \ workloads where layout actually moves the needle)"


(* Compiler-workload scenario: optimize a clang-shaped binary (Table 2
   row: 72 MB text / 160 K functions / 2.1 M blocks, generated at 16:1
   scale) and compare walltime, i-cache and iTLB behaviour against the
   PGO+ThinLTO baseline and against a BOLT-style rewriter.

   Run with: dune exec examples/clang_pipeline.exe *)

let requests = 200

let measure program binary =
  let image = Exec.Image.build program binary in
  let core = Uarch.Core.create Uarch.Core.default_config in
  let (_ : Exec.Interp.stats) =
    Exec.Interp.run image { Exec.Interp.default_config with requests } (Uarch.Core.sink core)
  in
  Uarch.Core.counters core

let () =
  print_endline "=== clang pipeline ===";
  let spec = { Progen.Suite.clang with Progen.Spec.requests } in
  Printf.printf "generating the clang-shaped program (scale %d:1)...\n%!" spec.scale;
  let program = Progen.Generate.program spec in
  Printf.printf "  %d units, %d functions, %d blocks, %d code bytes\n%!"
    (List.length (Ir.Program.units program))
    (Ir.Program.num_funcs program) (Ir.Program.num_blocks program)
    (Ir.Program.code_bytes program);

  let env = Buildsys.Driver.make_env () in
  print_endline "building baseline (PGO + ThinLTO)...";
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name:"clang" in

  print_endline "running Propeller phases 1-4...";
  let prop =
    Propeller.Pipeline.run
      ~config:
        {
          Propeller.Pipeline.default_config with
          profile_run = { Exec.Interp.default_config with requests };
        }
      ~env ~program ~name:"clang" ()
  in
  Printf.printf "  hot functions: %d; objects re-generated: %d/%d; relink reused %.0f%% of objects\n"
    prop.wpa.hot_funcs prop.hot_objects prop.total_objects
    (100.0 *. float_of_int (prop.total_objects - prop.hot_objects)
    /. float_of_int prop.total_objects);

  print_endline "running BOLT on the same profile...";
  let bm =
    Buildsys.Driver.build env ~name:"clang.bm" ~program
      ~codegen_options:Codegen.default_options
      ~link_options:{ Linker.Link.default_options with emit_relocs = true }
  in
  let is_asm f =
    match Ir.Program.find_func program f with
    | Some fn -> fn.Ir.Func.attrs.has_inline_asm
    | None -> false
  in
  let bolt =
    Boltsim.Driver.optimize ~profile:prop.profile ~binary:bm.binary ~is_asm
      ~hazards:Boltsim.Driver.no_hazards ~name:"clang" ()
  in

  print_endline "\nmeasuring (simulated Skylake front end):";
  let cb = measure program base.binary in
  let cp = measure program (Propeller.Pipeline.optimized_binary prop) in
  let co = measure program bolt.binary in
  let row label (c : Uarch.Core.counters) =
    Printf.printf "  %-10s walltime=%.3e cycles  L1i=%d  iTLB=%d  taken=%d  (%+.2f%% vs base)\n"
      label c.cycles c.i1_l1i_miss c.t1_itlb_miss c.b2_taken_branches
      ((cb.cycles -. c.cycles) /. cb.cycles *. 100.0)
  in
  row "baseline" cb;
  row "propeller" cp;
  row "bolt" co;

  Printf.printf "\nbinary sizes: baseline %d, PM %d (+%.1f%%), PO %d (+%.1f%%), BOLT %d (+%.0f%%)\n"
    (Linker.Binary.total_size base.binary)
    (Linker.Binary.total_size prop.metadata_build.binary)
    (100.
    *. (float_of_int (Linker.Binary.total_size prop.metadata_build.binary)
        /. float_of_int (Linker.Binary.total_size base.binary)
       -. 1.))
    (Linker.Binary.total_size (Propeller.Pipeline.optimized_binary prop))
    (100.
    *. (float_of_int (Linker.Binary.total_size (Propeller.Pipeline.optimized_binary prop))
        /. float_of_int (Linker.Binary.total_size base.binary)
       -. 1.))
    (Linker.Binary.total_size bolt.binary)
    (100.
    *. (float_of_int (Linker.Binary.total_size bolt.binary)
        /. float_of_int (Linker.Binary.total_size base.binary)
       -. 1.))

bench/micro.ml: Analyze Array Bechamel Benchmark Codegen Exec Hashtbl Instance Layout Lazy Linker List Measure Option Perfmon Printf Progen Propeller Report Staged Support Test Time Toolkit

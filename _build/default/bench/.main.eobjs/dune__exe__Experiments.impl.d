bench/experiments.ml: Boltsim Buildsys Codegen Exec Float Fun Ir Layout Linker List Objfile Perfmon Printf Progen Propeller Report String Support Uarch Unix Workbench

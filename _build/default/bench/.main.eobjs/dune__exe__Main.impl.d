bench/main.ml: Array Experiments List Micro Option Printf Progen String Sys Unix Workbench

bench/workbench.ml: Boltsim Buildsys Codegen Exec Hashtbl Ir Linker List Printf Progen Propeller Uarch

bench/main.mli:

(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md 3 for the experiment index).

   Usage: main.exe [experiment ...]
   Experiments: table2 table3 table5 fig4 fig5 fig6 fig7 fig8 fig9 spec
                ablation_split ablation_inter ablation_clusters micro
                quick all (default: all) *)

let experiments =
  [
    ("table2", Experiments.table2);
    ("table3", Experiments.table3);
    ("table5", Experiments.table5);
    ("fig4", Experiments.fig4);
    ("fig5", Experiments.fig5);
    ("fig6", Experiments.fig6);
    ("fig7", Experiments.fig7);
    ("fig8", Experiments.fig8);
    ("fig9", Experiments.fig9);
    ("spec", Experiments.spec_sweep);
    ("ablation_split", Experiments.ablation_split);
    ("ablation_rounds", Experiments.ablation_rounds);
    ("ablation_prefetch", Experiments.ablation_prefetch);
    ("ablation_inter", Experiments.ablation_inter);
    ("ablation_clusters", Experiments.ablation_clusters);
    ("micro", Micro.run);
  ]

let quick () =
  (* A fast sanity pass on the smallest benchmark only. *)
  let wb = Workbench.get (Option.get (Progen.Suite.by_name "505.mcf")) in
  Printf.printf "quick: mcf propeller %+.2f%%, bolt %+.2f%% vs base\n"
    (Workbench.improvement_pct wb Workbench.Prop)
    (Workbench.improvement_pct wb Workbench.Bolt)

let run_one name =
  match List.assoc_opt name experiments with
  | Some f ->
    let t0 = Unix.gettimeofday () in
    f ();
    Printf.printf "\n[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)
  | None ->
    if name = "quick" then quick ()
    else begin
      Printf.eprintf "unknown experiment %S; available: quick all %s\n" name
        (String.concat " " (List.map fst experiments));
      exit 2
    end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = if args = [] || args = [ "all" ] then List.map fst experiments else args in
  Printf.printf "Propeller reproduction bench (deterministic; seeds fixed)\n%!";
  let t0 = Unix.gettimeofday () in
  List.iter run_one args;
  Printf.printf "\nTotal bench time: %.1fs\n" (Unix.gettimeofday () -. t0)

lib/layout/hfsort.mli:

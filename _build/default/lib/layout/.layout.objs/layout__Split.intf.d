lib/layout/split.mli:

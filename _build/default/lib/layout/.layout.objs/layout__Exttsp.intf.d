lib/layout/exttsp.mli:

lib/layout/split.ml: Array

lib/layout/exttsp.ml: Array Hashtbl List Option Support

lib/layout/hfsort.ml: Array List

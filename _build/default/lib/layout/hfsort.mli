(** C3 function ordering (call-chain clustering), as used by BOLT's
    [-reorder-functions=hfsort] and by Propeller's global function layout.

    Functions are greedily appended to the cluster of their hottest
    caller, subject to a cluster-size cap that preserves locality; final
    clusters are emitted in decreasing hotness density. Nodes are
    integers [0 .. n-1]. *)

(** [order ~sizes ~samples ~arcs ?max_cluster_size ()] returns a
    permutation of [0 .. n-1].

    - [sizes.(i)]: code bytes of function [i];
    - [samples.(i)]: profile samples attributed to function [i];
    - [arcs]: [(caller, callee, weight)] call frequencies;
    - [max_cluster_size]: byte cap beyond which clusters stop growing
      (default 1 MiB). *)
val order :
  sizes:int array ->
  samples:float array ->
  arcs:(int * int * float) list ->
  ?max_cluster_size:int ->
  unit ->
  int list

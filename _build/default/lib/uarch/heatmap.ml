type t = {
  lo : int;
  hi : int;
  grid : int array array;  (** [rows][cols] *)
  rows : int;
  cols : int;
  requests_per_col : int;
  mutable col : int;
}

let create ~lo ~hi ~rows ~cols ~total_requests =
  {
    lo;
    hi = max (lo + 1) hi;
    grid = Array.make_matrix rows cols 0;
    rows;
    cols;
    requests_per_col = max 1 (total_requests / cols);
    col = 0;
  }

let sink t =
  {
    Exec.Event.on_fetch =
      (fun addr len _insts ->
        if addr >= t.lo && addr < t.hi then begin
          let row = (addr - t.lo) * t.rows / (t.hi - t.lo) in
          let row = min (t.rows - 1) row in
          let col = min (t.cols - 1) t.col in
          t.grid.(row).(col) <- t.grid.(row).(col) + len
        end);
    on_branch = (fun ~src:_ ~dst:_ ~kind:_ ~taken:_ -> ());
    on_dmiss = (fun ~src:_ -> ());
    on_request = (fun r -> t.col <- r / t.requests_per_col);
  }

let cell t ~row ~col = t.grid.(row).(col)

let rows t = t.rows

let cols t = t.cols

let shades = [| ' '; '.'; ':'; '*'; '#'; '@' |]

let render t =
  let maxv = Array.fold_left (fun m row -> Array.fold_left max m row) 1 t.grid in
  let buf = Buffer.create (t.rows * (t.cols + 1)) in
  for r = t.rows - 1 downto 0 do
    for c = 0 to t.cols - 1 do
      let v = t.grid.(r).(c) in
      let shade =
        if v = 0 then 0
        else begin
          (* Log scale: heat maps span orders of magnitude. *)
          let f = log (1.0 +. float_of_int v) /. log (1.0 +. float_of_int maxv) in
          1 + int_of_float (f *. float_of_int (Array.length shades - 2))
        end
      in
      Buffer.add_char buf shades.(min shade (Array.length shades - 1))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "row,col,bytes\n";
  for r = 0 to t.rows - 1 do
    for c = 0 to t.cols - 1 do
      if t.grid.(r).(c) > 0 then
        Buffer.add_string buf (Printf.sprintf "%d,%d,%d\n" r c t.grid.(r).(c))
    done
  done;
  Buffer.contents buf

let occupied_rows t =
  let n = ref 0 in
  for r = 0 to t.rows - 1 do
    if Array.exists (fun v -> v > 0) t.grid.(r) then incr n
  done;
  !n

(** Instruction-access heat maps (paper Fig 7).

    A 2D histogram of fetch activity: rows are address buckets across
    the binary image, columns are time buckets (request sequence).
    Rendered as ASCII art and as CSV for external plotting. *)

type t

(** [create ~lo ~hi ~rows ~cols ~total_requests] builds a collector for
    addresses in [\[lo, hi)]. *)
val create : lo:int -> hi:int -> rows:int -> cols:int -> total_requests:int -> t

(** [sink t] attaches the collector to an execution run. *)
val sink : t -> Exec.Event.sink

(** [cell t ~row ~col] is the accumulated byte count of a cell. *)
val cell : t -> row:int -> col:int -> int

val rows : t -> int

val cols : t -> int

(** [render t] draws the map, dark-to-light density (space, [.], [:],
    [*], [#], [@]), one row per line, highest addresses first (like the
    paper's Y axis). *)
val render : t -> string

(** [to_csv t] emits "row,col,count" lines for non-zero cells. *)
val to_csv : t -> string

(** [occupied_rows t] counts address buckets that were ever touched — a
    scalar "code footprint spread" for comparisons. *)
val occupied_rows : t -> int

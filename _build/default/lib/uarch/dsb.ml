type params = { windows : int; ways : int; window_bytes : int }

let skylake = { windows = 256; ways = 8; window_bytes = 32 }

type t = { cache : Cache.t }

let create p =
  { cache = Cache.create { Cache.sets = p.windows / p.ways; ways = p.ways; line_bytes = p.window_bytes } }

let access t addr = Cache.access t.cache addr

let reset t = Cache.reset t.cache

(** Set-associative cache with LRU replacement, used for L1i and L2. *)

type params = {
  sets : int;  (** Power of two. *)
  ways : int;
  line_bytes : int;  (** Power of two. *)
}

(** Skylake-like 32 KiB, 8-way, 64 B lines. *)
val l1i_params : params

(** Skylake-like 1 MiB unified L2 (modelled for code only), 16-way. *)
val l2_params : params

type t

val create : params -> t

(** [access t addr] touches the line containing [addr]; returns [true]
    on hit. *)
val access : t -> int -> bool

(** [line t addr] is the line index of [addr] (for consumers that dedupe
    per-line work). *)
val line : t -> int -> int

val reset : t -> unit

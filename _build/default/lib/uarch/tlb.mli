(** Instruction TLB: a 4 KiB-page structure plus a small 2 MiB-page
    structure, matching Skylake's 128-entry 4K iTLB and 8-entry 2M iTLB
    (paper §5.5 discusses the 8x2M reach explicitly). When the text
    segment is mapped with hugepages, lookups go to the 2M side. *)

type params = {
  entries_4k : int;
  ways_4k : int;
  entries_2m : int;  (** Fully associative. *)
}

val skylake : params

type t

(** [create ?page_scale_bits p ~hugepages] builds the TLB.
    [page_scale_bits] shrinks page sizes by 2^bits — the
    pressure-preserving counterpart to generating programs at reduced
    scale (a 1/64-scale program with 1/64-reach pages sees the paper's
    TLB pressure). Page sizes are clamped to >= 512 B (4K side) and
    >= 16 KiB (2M side). *)
val create : ?page_scale_bits:int -> params -> hugepages:bool -> t

(** [access t addr] returns [true] on hit. *)
val access : t -> int -> bool

(** [page t addr] is the page number (dedupe key). *)
val page : t -> int -> int

val reset : t -> unit

type params = { entries : int; ways : int }

let skylake = { entries = 4096; ways = 4 }

type t = { cache : Cache.t }

(* Reuse the set-associative machinery with 1-byte "lines": the tag is
   the branch source address itself. *)
let create p = { cache = Cache.create { Cache.sets = p.entries / p.ways; ways = p.ways; line_bytes = 1 } }

let taken t ~src = not (Cache.access t.cache src)

let reset t = Cache.reset t.cache

type params = { entries_4k : int; ways_4k : int; entries_2m : int }

let skylake = { entries_4k = 128; ways_4k = 8; entries_2m = 8 }

type t = {
  cache_4k : Cache.t;
  tags_2m : int array;
  lru_2m : int array;
  mutable clock : int;
  hugepages : bool;
  bits_4k : int;
  bits_2m : int;
}

let create ?(page_scale_bits = 0) p ~hugepages =
  (* Pressure-preserving scaling: programs generated at 1/2^k of their
     real size keep realistic TLB pressure when page reach shrinks by
     the same factor. Clamped so pages stay larger than cache lines. *)
  let bits_4k = max 9 (12 - page_scale_bits) in
  let bits_2m = max 14 (21 - page_scale_bits) in
  {
    cache_4k =
      Cache.create
        { Cache.sets = p.entries_4k / p.ways_4k; ways = p.ways_4k; line_bytes = 1 lsl bits_4k };
    tags_2m = Array.make p.entries_2m (-1);
    lru_2m = Array.make p.entries_2m 0;
    clock = 0;
    hugepages;
    bits_4k;
    bits_2m;
  }

let page t addr = if t.hugepages then addr lsr t.bits_2m else addr lsr t.bits_4k

let access_2m t addr =
  let pg = addr lsr t.bits_2m in
  t.clock <- t.clock + 1;
  let n = Array.length t.tags_2m in
  let rec find i = if i >= n then None else if t.tags_2m.(i) = pg then Some i else find (i + 1) in
  match find 0 with
  | Some i ->
    t.lru_2m.(i) <- t.clock;
    true
  | None ->
    let victim = ref 0 and oldest = ref max_int in
    for i = 0 to n - 1 do
      if t.tags_2m.(i) = -1 && !oldest > -1 then begin
        victim := i;
        oldest := -1
      end
      else if !oldest > -1 && t.lru_2m.(i) < !oldest then begin
        victim := i;
        oldest := t.lru_2m.(i)
      end
    done;
    t.tags_2m.(!victim) <- pg;
    t.lru_2m.(!victim) <- t.clock;
    false

let access t addr = if t.hugepages then access_2m t addr else Cache.access t.cache_4k addr

let reset t =
  Cache.reset t.cache_4k;
  Array.fill t.tags_2m 0 (Array.length t.tags_2m) (-1);
  Array.fill t.lru_2m 0 (Array.length t.lru_2m) 0;
  t.clock <- 0

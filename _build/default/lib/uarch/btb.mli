(** Branch target buffer + front-end resteer model.

    A taken branch whose source is not in the BTB forces a front-end
    resteer ([baclears.any], Table 4 B1) and allocates the entry.
    Not-taken conditionals do not allocate, which is why layouts that
    convert taken branches into fall-throughs relieve BTB pressure
    (paper §5.5 "Branches"). *)

type params = { entries : int; ways : int }

val skylake : params

type t

val create : params -> t

(** [taken t ~src] records a taken branch at [src]; returns [true] when
    it resteered (BTB miss). *)
val taken : t -> src:int -> bool

val reset : t -> unit

(** Decoded stream buffer (uop cache) model.

    The DSB caches decoded uops keyed by 32-byte code windows; it is
    sensitive to code alignment and to the number of distinct windows
    the front end touches. Layout changes that pack hot code tightly
    usually help large applications but can *increase* DSB misses on
    small programs whose working set already fits — the effect the paper
    reports on SPEC (§5.4). *)

type params = { windows : int; ways : int; window_bytes : int }

val skylake : params

type t

val create : params -> t

(** [access t addr] touches the window containing [addr]; [true] on
    hit. *)
val access : t -> int -> bool

val reset : t -> unit

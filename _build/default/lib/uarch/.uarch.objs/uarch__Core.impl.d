lib/uarch/core.ml: Btb Cache Dsb Exec Tlb

lib/uarch/tlb.mli:

lib/uarch/dsb.ml: Cache

lib/uarch/btb.ml: Cache

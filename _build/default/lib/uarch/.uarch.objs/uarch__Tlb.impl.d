lib/uarch/tlb.ml: Array Cache

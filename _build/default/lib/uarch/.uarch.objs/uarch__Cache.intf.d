lib/uarch/cache.mli:

lib/uarch/btb.mli:

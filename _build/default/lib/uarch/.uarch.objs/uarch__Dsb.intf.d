lib/uarch/dsb.mli:

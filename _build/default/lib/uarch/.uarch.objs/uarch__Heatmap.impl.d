lib/uarch/heatmap.ml: Array Buffer Exec Printf

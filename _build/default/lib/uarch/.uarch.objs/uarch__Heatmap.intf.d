lib/uarch/heatmap.mli: Exec

lib/uarch/core.mli: Btb Cache Dsb Exec Tlb

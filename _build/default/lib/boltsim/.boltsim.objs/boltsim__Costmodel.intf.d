lib/boltsim/costmodel.mli:

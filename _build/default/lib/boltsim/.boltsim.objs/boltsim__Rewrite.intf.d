lib/boltsim/rewrite.mli: Linker

lib/boltsim/rewrite.ml: Hashtbl Isa Linker List Objfile String

lib/boltsim/driver.mli: Linker Perfmon

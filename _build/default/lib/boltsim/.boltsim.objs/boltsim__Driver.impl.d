lib/boltsim/driver.ml: Array Costmodel Hashtbl Layout Linker List Perfmon Propeller Rewrite String

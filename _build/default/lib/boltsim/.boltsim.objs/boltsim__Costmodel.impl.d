lib/boltsim/costmodel.ml:

(** Binary rewriting, BOLT-style.

    Reconstructs every function from the placed binary (symbolic branch
    targets survive in our image, standing in for successful
    disassembly), reassembles the whole text with the new block orders
    and function order into a fresh segment aligned to a 2 MiB boundary
    *above* the original text — the original [.text] is retained as
    dead bytes, exactly the size/heat-map signature the paper shows
    (Fig 6, Fig 7c). *)

type result = {
  binary : Linker.Binary.t;
  new_text_bytes : int;
  old_text_bytes : int;  (** Retained, never executed. *)
  rewritten_funcs : int;
}

(** [rewrite ~binary ~plans ~func_order ~peephole ~name]:

    - [plans]: per-function (hot order, cold blocks) for optimized
      functions; unlisted functions keep their relative block order;
    - [func_order]: global order for optimized functions (others
      follow in input order);
    - [peephole]: apply the disassembly-level micro-optimizations BOLT
      performs beyond layout (modelled as a small hot-code size
      reduction). *)
val rewrite :
  binary:Linker.Binary.t ->
  plans:(string * int list * int list) list ->
  func_order:string list ->
  peephole:bool ->
  name:string ->
  result

type result = {
  binary : Linker.Binary.t;
  new_text_bytes : int;
  old_text_bytes : int;
  rewritten_funcs : int;
}

let long_form (i : Isa.t) =
  match i with
  | Isa.Jcc j -> Isa.Jcc { j with encoding = Isa.Long }
  | Isa.Jmp j -> Isa.Jmp { j with encoding = Isa.Long }
  | Isa.Alu _ | Isa.Load _ | Isa.Store _ | Isa.Call _ | Isa.IndirectCall | Isa.IndirectJmp
  | Isa.Ret | Isa.Prefetch | Isa.Nop _ | Isa.InlineData _ -> i

(* Shave a byte off oversized ALU ops: stand-in for BOLT's peephole and
   macro-fusion-friendly rewrites on hot code (a ~1-2% effect). *)
let peephole_inst (i : Isa.t) =
  match i with
  | Isa.Alu n when n >= 10 -> Isa.Alu (n - 1)
  | Isa.Alu _ | Isa.Load _ | Isa.Store _ | Isa.Jcc _ | Isa.Jmp _ | Isa.Call _
  | Isa.IndirectCall | Isa.IndirectJmp | Isa.Ret | Isa.Prefetch | Isa.Nop _
  | Isa.InlineData _ -> i

(* Reconstruct a block in relocatable form: normalise branches back to
   their long encodings and make the fall-through explicit again —
   undoing what the original link's relaxation specialised for the old
   layout. *)
let canonical_insts (binary : Linker.Binary.t) (info : Linker.Binary.block_info) ~peephole =
  let insts = if peephole then List.map peephole_inst info.insts else info.insts in
  let rec split_last acc = function
    | [] -> (List.rev acc, None)
    | [ x ] -> (List.rev acc, Some x)
    | x :: rest -> split_last (x :: acc) rest
  in
  let body, last = split_last [] insts in
  let fallthrough_target () =
    match Linker.Binary.find_block_by_addr binary (info.addr + info.size) with
    | Some nxt when String.equal nxt.func info.func ->
      Some (Isa.Target.Block { func = info.func; block = nxt.block })
    | Some _ | None -> None
  in
  let explicit_ft tail =
    match fallthrough_target () with
    | Some target -> tail @ [ Isa.Jmp { target; encoding = Isa.Long } ]
    | None -> tail
  in
  match last with
  | None -> explicit_ft []
  | Some (Isa.Ret | Isa.IndirectJmp) -> List.map long_form insts
  | Some (Isa.Jmp j) -> List.map long_form body @ [ Isa.Jmp { j with encoding = Isa.Long } ]
  | Some (Isa.Jcc _ as jcc) -> explicit_ft (List.map long_form (body @ [ jcc ]))
  | Some
      (Isa.Alu _ | Isa.Load _ | Isa.Store _ | Isa.Call _ | Isa.IndirectCall | Isa.Prefetch
      | Isa.Nop _ | Isa.InlineData _) -> explicit_ft (List.map long_form insts)

let rewrite ~(binary : Linker.Binary.t) ~plans ~func_order ~peephole ~name =
  (* Group placed blocks by function, in old address order. *)
  let by_func : (string, Linker.Binary.block_info list ref) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun _ (info : Linker.Binary.block_info) ->
      match Hashtbl.find_opt by_func info.func with
      | Some l -> l := info :: !l
      | None -> Hashtbl.add by_func info.func (ref [ info ]))
    binary.blocks;
  let old_order f =
    match Hashtbl.find_opt by_func f with
    | None -> []
    | Some l ->
      List.sort (fun (a : Linker.Binary.block_info) b -> compare a.addr b.addr) !l
      |> List.map (fun (i : Linker.Binary.block_info) -> i.block)
  in
  let plan_tbl = Hashtbl.create 256 in
  List.iter (fun (f, hot, cold) -> Hashtbl.replace plan_tbl f (hot, cold)) plans;
  let piece f bb ~hot =
    let info = Linker.Binary.block_info_exn binary ~func:f ~block:bb in
    {
      Objfile.Fragment.block = bb;
      insts = canonical_insts binary info ~peephole:(peephole && hot);
      is_landing_pad = false;
    }
  in
  let section sym f bbs ~hot =
    Objfile.Section.make ~name:(".text.bolt." ^ sym) ~kind:Objfile.Section.Text ~symbol:sym
      (Objfile.Section.Code
         (Objfile.Fragment.make ~func:f (List.map (fun bb -> piece f bb ~hot) bbs)))
  in
  (* Optimized functions: primary + cold sections; others verbatim. *)
  let optimized = Hashtbl.create 256 in
  let sections = ref [] in
  let ordering_hot = ref [] and ordering_rest = ref [] and ordering_cold = ref [] in
  List.iter
    (fun f ->
      match Hashtbl.find_opt plan_tbl f with
      | None -> ()
      | Some (hot, cold) ->
        Hashtbl.replace optimized f ();
        sections := section f f hot ~hot:true :: !sections;
        ordering_hot := f :: !ordering_hot;
        if cold <> [] then begin
          let sym = Objfile.Symname.cold f in
          sections := section sym f cold ~hot:false :: !sections;
          ordering_cold := sym :: !ordering_cold
        end)
    func_order;
  (* Remaining functions in old address order of their entries. *)
  let rest =
    Hashtbl.fold
      (fun f _ acc ->
        if Hashtbl.mem optimized f then acc
        else begin
          match Linker.Binary.block_info binary ~func:f ~block:0 with
          | Some e -> (e.addr, f) :: acc
          | None -> acc
        end)
      by_func []
    |> List.sort compare
  in
  List.iter
    (fun (_, f) ->
      sections := section f f (old_order f) ~hot:false :: !sections;
      ordering_rest := f :: !ordering_rest)
    rest;
  let ordering =
    List.rev !ordering_hot @ List.rev !ordering_rest @ List.rev !ordering_cold
  in
  (* Non-text payloads carried over from the original binary; cold
     splits add CFI FDE overhead (one 56-byte fragment FDE each). *)
  let kind_size k = Linker.Binary.size_of_kind binary k in
  let eh = kind_size Objfile.Section.Eh_frame + (56 * List.length !ordering_cold) in
  let raw nm k size =
    if size = 0 then []
    else [ Objfile.Section.make ~name:nm ~kind:k (Objfile.Section.Raw size) ]
  in
  let payload =
    raw ".rodata" Objfile.Section.Rodata (kind_size Objfile.Section.Rodata)
    @ raw ".data" Objfile.Section.Data (kind_size Objfile.Section.Data)
    @ raw ".eh_frame" Objfile.Section.Eh_frame eh
  in
  let obj =
    Objfile.File.make ~name:(name ^ ".bolt.o") ~unit_name:(name ^ ".bolt")
      (List.rev !sections @ payload)
  in
  let old_text_bytes = Linker.Binary.text_bytes binary in
  let options =
    {
      Linker.Link.default_options with
      ordering = Some ordering;
      base_addr = binary.text_end;
      text_align = 2 * 1024 * 1024;
      relax = true;
      (* BOLTed binaries keep their static relocations (they cannot be
         stripped, paper 5.8). *)
      emit_relocs = true;
    }
  in
  let { Linker.Link.binary = linked; stats = _ } =
    Linker.Link.link ~options ~name ~entry:binary.entry_symbol [ obj ]
  in
  (* The original text is retained as dead bytes below the new segment. *)
  let old_text =
    {
      Linker.Binary.name = ".text";
      kind = Objfile.Section.Text;
      addr = binary.text_start;
      size = old_text_bytes;
      symbol = None;
    }
  in
  let final =
    Linker.Binary.make ~name:linked.name ~entry_symbol:linked.entry_symbol
      ~sections:(old_text :: linked.sections) ~symbols:linked.symbols ~blocks:linked.blocks
      ~text_start:binary.text_start ~text_end:linked.text_end ~bb_maps:[]
  in
  {
    binary = final;
    new_text_bytes = Linker.Binary.text_bytes linked;
    old_text_bytes;
    rewritten_funcs = Hashtbl.length optimized;
  }

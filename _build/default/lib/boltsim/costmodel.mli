(** Resource model of the monolithic binary-optimizer design.

    The driver is function-oriented linear disassembly: the whole text
    section is decoded into in-memory instruction objects before any
    optimization runs (paper §5.1: "BOLT's memory usage is much higher
    due to function-oriented, linear disassembly"), so both phases are
    proportional to *binary* size, not profile size. Lightning-BOLT's
    selective processing ([lite]) decodes hot functions fully and cold
    functions shallowly. Constants calibrated against Fig 4/5/9
    shapes. *)

(** [conversion_mem ~text_bytes ~profile_bytes] — perf2bolt peak RSS. *)
val conversion_mem : text_bytes:int -> profile_bytes:int -> int

(** [conversion_seconds ~text_bytes ~profile_edges] — perf2bolt time. *)
val conversion_seconds : text_bytes:int -> profile_edges:int -> float

(** [optimize_mem ~text_bytes ~hot_text_bytes ~lite] — llvm-bolt peak
    RSS during optimization + rewrite. *)
val optimize_mem : text_bytes:int -> hot_text_bytes:int -> lite:bool -> int

(** [optimize_seconds ~text_bytes ~hot_text_bytes ~lite] — llvm-bolt
    wall time (single machine; parallel passes modelled by a constant
    speedup). *)
val optimize_seconds : text_bytes:int -> hot_text_bytes:int -> lite:bool -> float

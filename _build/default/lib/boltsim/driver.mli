(** The BOLT baseline: a monolithic post-link optimizer (paper §5;
    Lightning BOLT options modelled).

    Consumes the same LBR profile as Propeller and runs the same layout
    algorithms (Ext-TSP blocks, hfsort functions, hot/cold splitting) —
    but through the disassemble-and-rewrite delivery mechanism, with
    its memory/time profile and its failure modes on hardened binaries
    (paper §5.8). *)

type options = {
  lite : bool;
      (** Lightning-BOLT selective processing (lower memory); the paper
          disables it ([-lite=0]) when measuring peak performance. *)
  reorder_blocks : bool;  (** [-reorder-blocks=cache+] (Ext-TSP). *)
  reorder_functions : bool;  (** [-reorder-functions=hfsort]. *)
  split_functions : bool;  (** [-split-functions=3 -split-all-cold]. *)
  peephole : bool;  (** The extra disassembly-level optimizations. *)
}

(** The paper's memory/runtime evaluation configuration (§5). *)
val fast_options : options

(** The paper's performance evaluation configuration ([-lite=0]). *)
val perf_options : options

type hazards = { rseq : bool; fips_check : bool }

val no_hazards : hazards

type result = {
  binary : Linker.Binary.t;  (** The "BO" rewritten binary. *)
  startup_ok : bool;
      (** Whether the rewritten binary survives startup: restartable
          sequences and FIPS startup self-checks break it (§5.8). *)
  rewritten_funcs : int;
  skipped_funcs : int;  (** Functions disassembly refused. *)
  conversion_mem_bytes : int;  (** perf2bolt peak RSS (Fig 4). *)
  conversion_seconds : float;
  optimize_mem_bytes : int;  (** llvm-bolt peak RSS (Fig 5). *)
  optimize_seconds : float;  (** llvm-bolt run time (Fig 9). *)
}

(** [optimize ?options ~profile ~binary ~is_asm ~hazards ~name ()]:
    [binary] must be the relocations-retaining ("BM") build; [is_asm]
    flags functions whose disassembly would fail (hand-written
    assembly). *)
val optimize :
  ?options:options ->
  profile:Perfmon.Lbr.profile ->
  binary:Linker.Binary.t ->
  is_asm:(string -> bool) ->
  hazards:hazards ->
  name:string ->
  unit ->
  result

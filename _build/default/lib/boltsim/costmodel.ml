(* Disassembled instruction objects (MCPlus) cost ~100 B per code byte
   decoded at ~8 B/inst: about 110x the text bytes across conversion
   (matches Fig 4: Superroot 598 MB text -> 73 GB; Search 413 MB ->
   36 GB). *)
let conversion_mem ~text_bytes ~profile_bytes =
  (300 * 1024 * 1024) + (110 * text_bytes) + (profile_bytes / 4)

let conversion_seconds ~text_bytes ~profile_edges =
  5.0 +. (float_of_int text_bytes /. 2_500_000.0) +. (float_of_int profile_edges /. 200_000.0)

(* Optimization keeps decoded functions plus relocation and output
   buffers; lite mode only fully decodes hot functions. *)
let optimize_mem ~text_bytes ~hot_text_bytes ~lite =
  let decoded = if lite then (8 * text_bytes) + (60 * hot_text_bytes) else 45 * text_bytes in
  (250 * 1024 * 1024) + decoded + (2 * text_bytes)

let optimize_seconds ~text_bytes ~hot_text_bytes ~lite =
  let decode =
    if lite then
      (float_of_int text_bytes /. 8_000_000.0) +. (float_of_int hot_text_bytes /. 2_000_000.0)
    else float_of_int text_bytes /. 2_000_000.0
  in
  3.0 +. decode +. (float_of_int text_bytes /. 6_000_000.0 (* emit + rewrite *))

type branch_kind = Cond | Uncond | Indirect | Call | Ret

type sink = {
  on_fetch : int -> int -> int -> unit;
  on_branch : src:int -> dst:int -> kind:branch_kind -> taken:bool -> unit;
  on_dmiss : src:int -> unit;
  on_request : int -> unit;
}

let null =
  {
    on_fetch = (fun _ _ _ -> ());
    on_branch = (fun ~src:_ ~dst:_ ~kind:_ ~taken:_ -> ());
    on_dmiss = (fun ~src:_ -> ());
    on_request = (fun _ -> ());
  }

let tee a b =
  {
    on_fetch =
      (fun addr len insts ->
        a.on_fetch addr len insts;
        b.on_fetch addr len insts);
    on_branch =
      (fun ~src ~dst ~kind ~taken ->
        a.on_branch ~src ~dst ~kind ~taken;
        b.on_branch ~src ~dst ~kind ~taken);
    on_dmiss =
      (fun ~src ->
        a.on_dmiss ~src;
        b.on_dmiss ~src);
    on_request =
      (fun i ->
        a.on_request i;
        b.on_request i);
  }

(** Events emitted by the execution engine.

    The engine streams two kinds of events — sequential instruction
    fetches and control transfers — so downstream consumers (LBR
    sampler, micro-architecture simulator, heat-map builder) never need
    the whole trace in memory. *)

type branch_kind =
  | Cond  (** Conditional branch (emitted for taken and not-taken). *)
  | Uncond  (** Unconditional direct jump. *)
  | Indirect  (** Jump-table dispatch. *)
  | Call  (** Direct or indirect call. *)
  | Ret

type sink = {
  on_fetch : int -> int -> int -> unit;
      (** [on_fetch addr len insts]: [len] code bytes holding [insts]
          instructions executed sequentially starting at [addr]. *)
  on_branch : src:int -> dst:int -> kind:branch_kind -> taken:bool -> unit;
      (** A control transfer instruction retiring at [src] (its end
          address), heading to [dst]. [taken = false] only for
          fall-through conditionals ([dst] is then the next address). *)
  on_dmiss : src:int -> unit;
      (** A delinquent load retiring at [src] missed the data caches
          (not covered by a software prefetch). *)
  on_request : int -> unit;  (** Request [i] completed. *)
}

(** A sink that ignores everything. *)
val null : sink

(** [tee a b] duplicates events to both sinks. *)
val tee : sink -> sink -> sink

type op =
  | Run of int * int * int
  | Do_call of { site_end : int; callees : (string * float) array }
  | Do_dload of { site_end : int; miss_prob : float; covered : bool }

type xblock = { addr : int; size : int; ops : op list; term : Ir.Term.t; uid : int }

type t = {
  funcs : (string, int) Hashtbl.t;
  blocks : xblock array array;  (** [blocks.(func_idx).(block_id)] *)
  entry : int;
}

(* Fuse the lowered instructions (with final sizes) and the IR body:
   non-control bytes accumulate into Run segments; calls close the
   current segment. The k-th call instruction corresponds to the k-th
   call site of the IR body, which supplies virtual-call targets. *)
let compile_ops (ir_block : Ir.Block.t) (insts : Isa.t list) =
  let ir_calls =
    List.filter_map
      (fun (i : Ir.Inst.t) ->
        match i with
        | Ir.Inst.DirectCall f -> Some [| (f, 1.0) |]
        | Ir.Inst.VirtualCall { callees } -> Some callees
        | Ir.Inst.Compute _ | Ir.Inst.MemLoad _ | Ir.Inst.DelinquentLoad _
        | Ir.Inst.MemStore _ | Ir.Inst.JumpTableData _ -> None)
      ir_block.body
  in
  (* The k-th lowered [Load] corresponds to the k-th IR load; delinquent
     ones carry their miss probability. *)
  let ir_loads =
    List.filter_map
      (fun (i : Ir.Inst.t) ->
        match i with
        | Ir.Inst.MemLoad _ -> Some None
        | Ir.Inst.DelinquentLoad { miss_prob; _ } -> Some (Some miss_prob)
        | Ir.Inst.Compute _ | Ir.Inst.MemStore _ | Ir.Inst.DirectCall _ | Ir.Inst.VirtualCall _
        | Ir.Inst.JumpTableData _ -> None)
      ir_block.body
  in
  let rec loop off run_start nrun pending_calls pending_loads ~saw_prefetch acc = function
    | [] ->
      let acc = if off > run_start then Run (run_start, off - run_start, nrun) :: acc else acc in
      List.rev acc
    | inst :: rest -> (
      let size = Isa.size inst in
      match inst with
      | Isa.Load _ -> (
        match pending_loads with
        | Some miss_prob :: pending ->
          (* Delinquent load: close the run so the miss event lands at
             the right instruction boundary. *)
          let acc =
            if off + size > run_start then Run (run_start, off + size - run_start, nrun + 1) :: acc
            else acc
          in
          loop (off + size) (off + size) 0 pending_calls pending
            ~saw_prefetch
            (Do_dload { site_end = off + size; miss_prob; covered = saw_prefetch } :: acc)
            rest
        | None :: pending ->
          loop (off + size) run_start (nrun + 1) pending_calls pending ~saw_prefetch acc rest
        | [] -> loop (off + size) run_start (nrun + 1) pending_calls [] ~saw_prefetch acc rest)
      | Isa.Prefetch ->
        loop (off + size) run_start (nrun + 1) pending_calls pending_loads ~saw_prefetch:true acc
          rest
      | Isa.Call _ | Isa.IndirectCall -> (
        let acc =
          if off > run_start then Run (run_start, off - run_start, nrun + 1) :: acc else acc
        in
        match pending_calls with
        | callees :: pending ->
          loop (off + size) (off + size) 0 pending pending_loads ~saw_prefetch
            (Do_call { site_end = off + size; callees } :: acc)
            rest
        | [] ->
          (* A lowered call with no IR counterpart cannot happen by
             construction. *)
          assert false)
      | Isa.InlineData _ ->
        (* Data in the instruction stream: occupies space, not fetched. *)
        let acc =
          if off > run_start then Run (run_start, off - run_start, nrun) :: acc else acc
        in
        loop (off + size) (off + size) 0 pending_calls pending_loads ~saw_prefetch acc rest
      | Isa.Jcc _ | Isa.Jmp _ | Isa.IndirectJmp | Isa.Ret ->
        (* Terminator instructions count as fetched bytes; the transfer
           itself is driven by the IR terminator. *)
        loop (off + size) run_start (nrun + 1) pending_calls pending_loads ~saw_prefetch acc rest
      | Isa.Alu _ | Isa.Store _ | Isa.Nop _ ->
        loop (off + size) run_start (nrun + 1) pending_calls pending_loads ~saw_prefetch acc rest)
  in
  loop 0 0 0 ir_calls ir_loads ~saw_prefetch:false [] insts

let build program binary =
  let nf = Ir.Program.num_funcs program in
  let funcs = Hashtbl.create nf in
  let blocks = Array.make nf [||] in
  let uid = ref 0 in
  let idx = ref 0 in
  Ir.Program.iter_funcs program (fun f ->
      let fi = !idx in
      incr idx;
      Hashtbl.replace funcs f.name fi;
      blocks.(fi) <-
        Array.init (Ir.Func.num_blocks f) (fun b ->
            let info =
              match Linker.Binary.block_info binary ~func:f.name ~block:b with
              | Some i -> i
              | None ->
                invalid_arg
                  (Printf.sprintf "Image.build: block %s#%d not in binary" f.name b)
            in
            let ir_block = Ir.Func.block f b in
            incr uid;
            {
              addr = info.addr;
              size = info.size;
              ops = compile_ops ir_block info.insts;
              term = ir_block.term;
              uid = !uid;
            }));
  { funcs; blocks; entry = Hashtbl.find funcs (Ir.Program.main program) }

let func_index t name =
  match Hashtbl.find_opt t.funcs name with
  | Some i -> i
  | None -> invalid_arg ("Image.func_index: unknown function " ^ name)

let block t ~func_idx ~block = t.blocks.(func_idx).(block)

let entry_func t = t.entry

let num_funcs t = Array.length t.blocks

let num_blocks t = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.blocks

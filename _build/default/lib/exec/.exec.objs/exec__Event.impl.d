lib/exec/event.ml:

lib/exec/image.mli: Ir Linker

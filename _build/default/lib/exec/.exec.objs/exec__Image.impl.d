lib/exec/image.ml: Array Hashtbl Ir Isa Linker List Printf

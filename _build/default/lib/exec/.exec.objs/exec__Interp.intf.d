lib/exec/interp.mli: Event Image

lib/exec/interp.ml: Array Event Image Ir List Support

lib/exec/event.mli:

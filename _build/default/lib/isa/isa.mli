(** Abstract x86-64-like instruction set.

    The simulator never executes real machine code; what matters for
    Propeller are instruction *byte sizes* (they drive icache/iTLB
    behaviour and binary-size accounting), *branch encodings* (short vs
    long forms drive linker relaxation, paper §4.2), and *symbolic branch
    targets* (they become static relocations). This module defines exactly
    that surface.

    Sizes follow x86-64 conventions: conditional jumps are 2 bytes (rel8)
    or 6 bytes (0F 8x rel32); unconditional jumps 2 or 5 bytes; direct
    calls 5 bytes; returns 1 byte. *)

(** Condition codes for conditional branches. Reversal ({!Cond.negate}) is
    used by the linker when it turns a taken branch into a fall-through. *)
module Cond : sig
  type t = Eq | Ne | Lt | Ge | Le | Gt

  val negate : t -> t

  val to_string : t -> string

  val equal : t -> t -> bool
end

(** Branch target, symbolic until link time. *)
module Target : sig
  type t =
    | Block of { func : string; block : int }
        (** A basic block, identified by owning function and block id. *)
    | Func of string  (** A function entry, by symbol name. *)

  val equal : t -> t -> bool

  val compare : t -> t -> int

  val to_string : t -> string

  (** [symbol t] is the link-time symbol name the target resolves
      through: ["func"] or ["func#block"]. *)
  val symbol : t -> string
end

(** Short/long encoding of a PC-relative branch. Codegen with basic block
    sections must emit [Long] (offsets unknown until link time, §4.2);
    the linker relaxation pass shrinks to [Short] where the final offset
    fits in a signed byte. *)
type encoding = Short | Long

type t =
  | Alu of int  (** Generic computation occupying [n] bytes, 1..15. *)
  | Load of int  (** Memory load, [n] bytes. *)
  | Store of int  (** Memory store, [n] bytes. *)
  | Jcc of { cond : Cond.t; target : Target.t; encoding : encoding }
      (** Conditional PC-relative branch. *)
  | Jmp of { target : Target.t; encoding : encoding }
      (** Unconditional PC-relative branch. *)
  | Call of Target.t  (** Direct call, 5 bytes. *)
  | IndirectCall  (** Register-indirect call, 3 bytes. *)
  | IndirectJmp  (** Register-indirect jump (jump tables), 3 bytes. *)
  | Ret  (** Return, 1 byte. *)
  | Prefetch  (** Software data prefetch (prefetcht0), 5 bytes. *)
  | Nop of int  (** Padding/alignment, [n] bytes. *)
  | InlineData of int
      (** Data embedded in the text stream (jump tables, constants):
          [n] bytes that are *not* instructions. A deliberate hazard for
          disassembly-driven tools (paper §2.4). *)

(** [size i] is the encoded size of [i] in bytes. *)
val size : t -> int

(** [jcc_size e] and [jmp_size e] are the encoded sizes of the two branch
    families under encoding [e]. *)
val jcc_size : encoding -> int

val jmp_size : encoding -> int

(** [fits_short offset] tells whether a PC-relative displacement fits the
    rel8 short form. [offset] is (target - end_of_instruction). *)
val fits_short : int -> bool

(** [is_branch i] is true for [Jcc] and [Jmp]. *)
val is_branch : t -> bool

(** [is_control_transfer i] is true for branches, calls and returns. *)
val is_control_transfer : t -> bool

(** [branch_target i] is the symbolic target of a branch/call, if any. *)
val branch_target : t -> Target.t option

(** [with_target i target] replaces the symbolic target of a branch/call.
    Raises [Invalid_argument] for non-branching instructions. *)
val with_target : t -> Target.t -> t

val to_string : t -> string

val pp : Format.formatter -> t -> unit

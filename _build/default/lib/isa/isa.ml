module Cond = struct
  type t = Eq | Ne | Lt | Ge | Le | Gt

  let negate = function
    | Eq -> Ne
    | Ne -> Eq
    | Lt -> Ge
    | Ge -> Lt
    | Le -> Gt
    | Gt -> Le

  let to_string = function
    | Eq -> "e"
    | Ne -> "ne"
    | Lt -> "l"
    | Ge -> "ge"
    | Le -> "le"
    | Gt -> "g"

  let equal a b = a = b
end

module Target = struct
  type t = Block of { func : string; block : int } | Func of string

  let equal a b =
    match a, b with
    | Block a, Block b -> String.equal a.func b.func && a.block = b.block
    | Func a, Func b -> String.equal a b
    | Block _, Func _ | Func _, Block _ -> false

  let compare a b =
    match a, b with
    | Block a, Block b ->
      let c = String.compare a.func b.func in
      if c <> 0 then c else Int.compare a.block b.block
    | Func a, Func b -> String.compare a b
    | Block _, Func _ -> -1
    | Func _, Block _ -> 1

  let symbol = function
    | Block { func; block } -> Printf.sprintf "%s#%d" func block
    | Func f -> f

  let to_string = symbol
end

type encoding = Short | Long

type t =
  | Alu of int
  | Load of int
  | Store of int
  | Jcc of { cond : Cond.t; target : Target.t; encoding : encoding }
  | Jmp of { target : Target.t; encoding : encoding }
  | Call of Target.t
  | IndirectCall
  | IndirectJmp
  | Ret
  | Prefetch
  | Nop of int
  | InlineData of int

let jcc_size = function Short -> 2 | Long -> 6

let jmp_size = function Short -> 2 | Long -> 5

let size = function
  | Alu n | Load n | Store n | Nop n | InlineData n -> n
  | Jcc { encoding; _ } -> jcc_size encoding
  | Jmp { encoding; _ } -> jmp_size encoding
  | Call _ -> 5
  | IndirectCall | IndirectJmp -> 3
  | Prefetch -> 5
  | Ret -> 1

let fits_short offset = offset >= -128 && offset <= 127

let is_branch = function
  | Jcc _ | Jmp _ -> true
  | Alu _ | Load _ | Store _ | Call _ | IndirectCall | IndirectJmp | Ret | Prefetch | Nop _
  | InlineData _ -> false

let is_control_transfer = function
  | Jcc _ | Jmp _ | Call _ | IndirectCall | IndirectJmp | Ret -> true
  | Alu _ | Load _ | Store _ | Prefetch | Nop _ | InlineData _ -> false

let branch_target = function
  | Jcc { target; _ } | Jmp { target; _ } | Call target -> Some target
  | Alu _ | Load _ | Store _ | IndirectCall | IndirectJmp | Ret | Prefetch | Nop _
  | InlineData _ -> None

let with_target i target =
  match i with
  | Jcc j -> Jcc { j with target }
  | Jmp j -> Jmp { j with target }
  | Call _ -> Call target
  | Alu _ | Load _ | Store _ | IndirectCall | IndirectJmp | Ret | Prefetch | Nop _
  | InlineData _ ->
    invalid_arg "Isa.with_target: not a branching instruction"

let to_string = function
  | Alu n -> Printf.sprintf "alu%d" n
  | Load n -> Printf.sprintf "load%d" n
  | Store n -> Printf.sprintf "store%d" n
  | Jcc { cond; target; encoding } ->
    Printf.sprintf "j%s%s %s" (Cond.to_string cond)
      (match encoding with Short -> "" | Long -> ".l")
      (Target.to_string target)
  | Jmp { target; encoding } ->
    Printf.sprintf "jmp%s %s"
      (match encoding with Short -> "" | Long -> ".l")
      (Target.to_string target)
  | Call t -> Printf.sprintf "call %s" (Target.to_string t)
  | IndirectCall -> "call *r"
  | IndirectJmp -> "jmp *r"
  | Prefetch -> "prefetcht0"
  | Ret -> "ret"
  | Nop n -> Printf.sprintf "nop%d" n
  | InlineData n -> Printf.sprintf ".data %d" n

let pp fmt i = Format.pp_print_string fmt (to_string i)

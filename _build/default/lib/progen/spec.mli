(** Synthetic benchmark specifications.

    Each spec drives {!Generate.program} towards the shape of one of the
    paper's benchmarks (Table 2): text size, function count, basic-block
    count and the fraction of cold compilation units. Warehouse-scale
    programs are generated at [scale]:1 (the simulator does not need 600
    MB of code to show the mechanisms; EXPERIMENTS.md reports both raw
    and scale-adjusted numbers). *)

type hazards = {
  has_rseq : bool;
      (** Uses restartable sequences; binary rewriters corrupt the abort
          handlers (paper §5.8). *)
  has_fips_check : bool;
      (** Performs a startup integrity check over its own text (FIPS
          140-2); rewritten binaries fail it (paper §5.8). *)
  stripped_debug : bool;
      (** Debug info served from separate servers; rewriters that
          cannot strip are unusable (paper §5.8). *)
}

val no_hazards : hazards

type t = {
  name : string;
  seed : int64;
  scale : int;  (** Divisor vs the paper's real program size. *)
  num_units : int;
  funcs_per_unit_mean : float;
  blocks_per_func_mean : float;
  bytes_per_block_mean : float;
  cold_unit_fraction : float;  (** Target "% Cold" of Table 2. *)
  pgo_noise : float;  (** Half-width of noise on PGO edge estimates. *)
  pgo_mismatch : float;  (** Probability a PGO estimate is unrelated. *)
  call_density : float;  (** Expected call sites per block. *)
  delinquent_fraction : float;
      (** Fraction of loads with poor data locality (prefetch targets,
          paper §3.5). *)
  exception_fraction : float;  (** Functions with landing pads. *)
  inline_asm_fraction : float;  (** Hand-written assembly functions. *)
  switch_fraction : float;  (** Blocks terminated by jump tables. *)
  loop_fraction : float;  (** Blocks starting loop back-edges. *)
  rodata_per_unit : int;
  data_per_unit : int;
  hazards : hazards;
  requests : int;  (** Workload requests for performance runs. *)
  metric : [ `Walltime | `Latency | `Qps ];  (** Table 3 metric. *)
  hugepages : bool;  (** Production uses 2M text pages (Search). *)
}

(** Paper-reported characteristics, for Table 2 comparison columns. *)
type paper_row = {
  paper_text_bytes : int;
  paper_funcs : int;
  paper_blocks : int;
  paper_cold_pct : float;
}

val paper_row : t -> paper_row option

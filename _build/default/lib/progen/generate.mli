(** Synthetic program generation.

    Produces a whole program whose shape matches a {!Spec.t}: heavy-tailed
    function sizes, skewed branch probabilities (hot spines with cold
    error paths), loops, jump tables, exception landing pads, a DAG call
    graph rooted at [main] whose hot region avoids cold units, and noisy
    PGO estimates modelling instrumented-profile staleness.

    Generation is deterministic in [spec.seed]. *)

val program : Spec.t -> Ir.Program.t

(** [hot_units spec] is the number of units generated hot (the
    complement of the Table 2 "% Cold" target). Exposed for tests. *)
val hot_units : Spec.t -> int

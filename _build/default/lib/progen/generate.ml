(* The generator works in three passes:
   1. skeletons: per-function CFGs (terminators, probabilities) with no
      bodies, so block frequencies can be estimated;
   2. calls: a DAG call graph (callee index > caller index) where
      frequently-executed blocks only call hot-unit functions;
   3. bodies: straight-line instruction mixes sized to the byte target,
      with the call sites spliced in. *)

type skeleton = {
  sk_name : string;
  sk_unit : int;
  sk_hot : bool;  (** Lives in a hot unit. *)
  sk_terms : Ir.Term.t array;
  sk_lps : bool array;  (** landing-pad flags *)
  sk_has_exceptions : bool;
  sk_has_inline_asm : bool;
  sk_freq : float array;  (** estimated per-invocation block frequency *)
}

let clamp lo hi v = max lo (min hi v)

(* Number of blocks for one function: geometric around the mean with an
   occasional large outlier (warehouse code has multi-hundred-block
   functions). *)
let draw_num_blocks rng mean =
  let base = 1 + Support.Rng.geometric rng (1.0 /. mean) in
  if Support.Rng.bool rng 0.02 then base * (4 + Support.Rng.int rng 8) else base

(* True taken-probability for a forward conditional: bimodal — mostly a
   cold side-exit, sometimes a coin toss, rarely inverted. *)
let draw_branch_prob rng =
  let r = Support.Rng.float rng in
  if r < 0.60 then Support.Rng.float rng *. 0.08 (* cold error path *)
  else if r < 0.85 then 0.2 +. (Support.Rng.float rng *. 0.6)
  else 0.92 +. (Support.Rng.float rng *. 0.07)

let pgo_estimate rng (spec : Spec.t) prob =
  if Support.Rng.bool rng spec.pgo_mismatch then 0.02 +. (Support.Rng.float rng *. 0.96)
  else
    clamp 0.02 0.98 (prob +. ((Support.Rng.float rng -. 0.5) *. 2.0 *. spec.pgo_noise))

let gen_terms rng (spec : Spec.t) n =
  let terms = Array.make n Ir.Term.Return in
  for i = 0 to n - 2 do
    let r = Support.Rng.float rng in
    if r < spec.loop_fraction && i > 0 then begin
      (* Loop back-edge: hot, iterates several times on average. *)
      let depth = 1 + Support.Rng.int rng (min 8 i) in
      let prob = 0.55 +. (Support.Rng.float rng *. 0.38) in
      terms.(i) <-
        Ir.Term.Branch
          {
            cond = Isa.Cond.Ne;
            taken = i - depth;
            fallthrough = i + 1;
            prob;
            pgo_prob = pgo_estimate rng spec prob;
          }
    end
    else if r < spec.loop_fraction +. spec.switch_fraction && n - i > 4 then begin
      (* Jump table over the fall-through and a few forward targets. *)
      let arity = 2 + Support.Rng.int rng 3 in
      let table =
        Array.init arity (fun k ->
            if k = 0 then i + 1 else i + 1 + Support.Rng.int rng (n - i - 1))
      in
      let raw = Array.init arity (fun _ -> 0.05 +. Support.Rng.float rng) in
      let total = Array.fold_left ( +. ) 0.0 raw in
      let probs = Array.map (fun x -> x /. total) raw in
      let pgo_raw = Array.map (fun p -> clamp 0.01 1.0 (pgo_estimate rng spec p)) probs in
      let pgo_total = Array.fold_left ( +. ) 0.0 pgo_raw in
      let pgo_probs = Array.map (fun x -> x /. pgo_total) pgo_raw in
      terms.(i) <- Ir.Term.Switch { table; probs; pgo_probs }
    end
    else begin
      let taken =
        if Support.Rng.bool rng 0.25 then n - 1 (* early exit towards the return *)
        else i + 1 + Support.Rng.int rng (n - i - 1)
      in
      let prob = draw_branch_prob rng in
      terms.(i) <-
        Ir.Term.Branch
          {
            cond = Isa.Cond.Eq;
            taken;
            fallthrough = i + 1;
            prob;
            pgo_prob = pgo_estimate rng spec prob;
          }
    end
  done;
  terms

let make_skeleton rng (spec : Spec.t) ~name ~unit_idx ~hot =
  let n = draw_num_blocks rng spec.blocks_per_func_mean in
  let terms = gen_terms rng spec n in
  let has_exceptions = Support.Rng.bool rng spec.exception_fraction && n >= 4 in
  let lps = Array.make n false in
  if has_exceptions then begin
    (* The trailing non-return blocks become landing pads: reached only
       through rare edges, i.e. cold. *)
    let num_lps = 1 + Support.Rng.int rng (min 2 (n - 2)) in
    for k = 1 to num_lps do
      lps.(n - 1 - k) <- true
    done
  end;
  let has_inline_asm = Support.Rng.bool rng spec.inline_asm_fraction in
  (* Frequencies need a Func value; bodies do not affect them. *)
  let blocks =
    Array.init n (fun i ->
        Ir.Block.make ~is_landing_pad:lps.(i) ~id:i ~body:[] ~term:terms.(i) ())
  in
  let f = Ir.Func.make ~name blocks in
  let sk_freq = Ir.Cfg.estimate_frequencies ~use_pgo:false f in
  {
    sk_name = name;
    sk_unit = unit_idx;
    sk_hot = hot;
    sk_terms = terms;
    sk_lps = lps;
    sk_has_exceptions = has_exceptions;
    sk_has_inline_asm = has_inline_asm;
    sk_freq;
  }

let hot_units (spec : Spec.t) =
  let rng = Support.Rng.split (Support.Rng.create spec.seed) 0xC01D in
  let hot = ref 0 in
  for u = 0 to spec.num_units - 1 do
    if u = 0 || not (Support.Rng.bool rng spec.cold_unit_fraction) then incr hot
  done;
  !hot

(* Straight-line filler summing to [target] bytes. A small fraction of
   loads are delinquent (poor data locality): post-link prefetch
   insertion targets (paper 3.5). *)
let gen_filler rng (spec : Spec.t) target =
  let rec loop remaining acc =
    if remaining <= 0 then List.rev acc
    else begin
      let r = Support.Rng.float rng in
      let size = min remaining (3 + Support.Rng.int rng 8) in
      let inst =
        if r < 0.55 then Ir.Inst.Compute size
        else if r < 0.85 then begin
          if Support.Rng.bool rng spec.delinquent_fraction then
            Ir.Inst.DelinquentLoad
              { bytes = size; miss_prob = 0.1 +. (Support.Rng.float rng *. 0.35) }
          else Ir.Inst.MemLoad size
        end
        else Ir.Inst.MemStore size
      in
      loop (remaining - size) (inst :: acc)
    end
  in
  loop target []

let program (spec : Spec.t) =
  let root = Support.Rng.create spec.seed in
  let unit_rng = Support.Rng.split root 0xC01D in
  (* Unit temperatures; unit 0 (with main) is hot. *)
  let unit_hot =
    Array.init spec.num_units (fun u ->
        u = 0 || not (Support.Rng.bool unit_rng spec.cold_unit_fraction))
  in
  (* Function skeletons, globally indexed; main is index 0. *)
  let skeletons = ref [] in
  let count = ref 0 in
  for u = 0 to spec.num_units - 1 do
    let rng = Support.Rng.split root (0x1000 + u) in
    let nf = max 1 (Support.Rng.geometric rng (1.0 /. spec.funcs_per_unit_mean)) in
    for k = 0 to nf - 1 do
      let name = if u = 0 && k = 0 then "main" else Printf.sprintf "u%d_f%d" u k in
      let sk = make_skeleton rng spec ~name ~unit_idx:u ~hot:unit_hot.(u) in
      skeletons := sk :: !skeletons;
      incr count
    done
  done;
  let sks = Array.of_list (List.rev !skeletons) in
  let n = Array.length sks in
  let hot_idx = ref [] in
  for i = n - 1 downto 0 do
    if sks.(i).sk_hot then hot_idx := i :: !hot_idx
  done;
  let hot_idx = Array.of_list !hot_idx in
  (* Call sites: calls.(i) maps block id -> callee list for function i. *)
  let calls = Array.init n (fun _ -> Hashtbl.create 4) in
  let call_rng = Support.Rng.split root 0xCA11 in
  let add_call i b callee = Hashtbl.replace (calls.(i)) b (callee :: Option.value ~default:[] (Hashtbl.find_opt (calls.(i)) b)) in
  (* Choose a hot callee with index > i (DAG). *)
  let pick_hot_callee i =
    (* binary search for first hot index > i *)
    let lo = ref 0 and hi = ref (Array.length hot_idx) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if hot_idx.(mid) <= i then lo := mid + 1 else hi := mid
    done;
    if !lo >= Array.length hot_idx then None
    else begin
      let pos = !lo + Support.Rng.int call_rng (Array.length hot_idx - !lo) in
      Some hot_idx.(pos)
    end
  in
  let pick_any_callee i =
    if i + 1 >= n then None else Some (i + 1 + Support.Rng.int call_rng (n - i - 1))
  in
  for i = 0 to n - 1 do
    let sk = sks.(i) in
    Array.iteri
      (fun b freq ->
        if Support.Rng.bool call_rng spec.call_density then begin
          let hot_site = sk.sk_hot && freq > 0.05 in
          let callee = if hot_site then pick_hot_callee i else pick_any_callee i in
          match callee with
          | Some c ->
            if Support.Rng.bool call_rng 0.2 then begin
              (* virtual call: 2-4 possible targets of the same temperature *)
              let extra_picks =
                List.init (1 + Support.Rng.int call_rng 3) (fun _ ->
                    if hot_site then pick_hot_callee i else pick_any_callee i)
                |> List.filter_map Fun.id
              in
              let targets = List.sort_uniq compare (c :: extra_picks) in
              let raw = List.map (fun t -> (t, 0.1 +. Support.Rng.float call_rng)) targets in
              let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 raw in
              let callees =
                Array.of_list (List.map (fun (t, w) -> (sks.(t).sk_name, w /. total)) raw)
              in
              Hashtbl.replace (calls.(i)) b
                (`Virtual callees
                :: Option.value ~default:[] (Hashtbl.find_opt (calls.(i)) b))
            end
            else add_call i b (`Direct sks.(c).sk_name)
          | None -> ()
        end)
      sk.sk_freq
  done;
  (* Reachability: every hot function needs a hot caller with a smaller
     index so the hot region is connected from main. *)
  let has_hot_caller = Array.make n false in
  has_hot_caller.(0) <- true;
  let index_of = Hashtbl.create n in
  Array.iteri (fun i sk -> Hashtbl.replace index_of sk.sk_name i) sks;
  Array.iteri
    (fun i sk ->
      if sk.sk_hot then
        Hashtbl.iter
          (fun b cs ->
            if sk.sk_freq.(b) > 0.05 then
              List.iter
                (fun c ->
                  let mark name =
                    match Hashtbl.find_opt index_of name with
                    | Some j when sks.(j).sk_hot -> has_hot_caller.(j) <- true
                    | Some _ | None -> ()
                  in
                  match c with
                  | `Direct name -> mark name
                  | `Virtual callees -> Array.iter (fun (name, _) -> mark name) callees)
                cs)
          (calls.(i)))
    sks;
  Array.iteri
    (fun j sk ->
      if sk.sk_hot && j > 0 && not (has_hot_caller.(j)) then begin
        (* Wire j under an earlier hot function's hottest block. *)
        let rec find_caller tries =
          if tries > 50 then 0
          else begin
            let c = Support.Rng.int call_rng j in
            if sks.(c).sk_hot then c else find_caller (tries + 1)
          end
        in
        let c = find_caller 0 in
        let best = ref 0 and best_f = ref neg_infinity in
        Array.iteri
          (fun b f ->
            if f > !best_f then begin
              best := b;
              best_f := f
            end)
          sks.(c).sk_freq;
        add_call c !best (`Direct sk.sk_name)
      end)
    sks;
  (* Bodies and final assembly. *)
  let body_rng = Support.Rng.split root 0xB0D1 in
  let units = Array.make spec.num_units [] in
  Array.iteri
    (fun i sk ->
      let nb = Array.length sk.sk_terms in
      let blocks =
        Array.init nb (fun b ->
            let call_insts =
              Option.value ~default:[] (Hashtbl.find_opt (calls.(i)) b)
              |> List.rev
              |> List.map (function
                   | `Direct name -> Ir.Inst.DirectCall name
                   | `Virtual callees -> Ir.Inst.VirtualCall { callees })
            in
            let jump_table_bytes =
              match sk.sk_terms.(b) with
              | Ir.Term.Switch { table; _ } -> [ Ir.Inst.JumpTableData (8 * Array.length table) ]
              | Ir.Term.Jump _ | Ir.Term.Branch _ | Ir.Term.Return -> []
            in
            let call_bytes =
              List.fold_left (fun a c -> a + Ir.Inst.byte_size c) 0 call_insts
            in
            let target =
              max 2
                (int_of_float
                   (spec.bytes_per_block_mean *. (0.4 +. (Support.Rng.float body_rng *. 1.2)))
                - call_bytes)
            in
            let body = gen_filler body_rng spec target @ call_insts @ jump_table_bytes in
            Ir.Block.make ~is_landing_pad:sk.sk_lps.(b) ~id:b ~body ~term:sk.sk_terms.(b) ())
      in
      let attrs =
        {
          Ir.Func.exported = (i = 0 || Support.Rng.bool body_rng 0.2);
          has_exceptions = sk.sk_has_exceptions;
          has_inline_asm = sk.sk_has_inline_asm;
        }
      in
      let f = Ir.Func.make ~name:sk.sk_name ~attrs blocks in
      units.(sk.sk_unit) <- f :: units.(sk.sk_unit))
    sks;
  let cunits =
    List.init spec.num_units (fun u ->
        Ir.Cunit.make
          ~name:(Printf.sprintf "%s_u%03d" spec.name u)
          ~rodata:spec.rodata_per_unit ~data:spec.data_per_unit (List.rev units.(u)))
  in
  Ir.Program.make ~name:spec.name ~main:"main" cunits

lib/progen/generate.ml: Array Fun Hashtbl Ir Isa List Option Printf Spec Support

lib/progen/spec.ml: List

lib/progen/generate.mli: Ir Spec

lib/progen/suite.mli: Spec

lib/progen/suite.ml: List Spec String

lib/progen/spec.mli:

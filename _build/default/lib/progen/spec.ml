type hazards = { has_rseq : bool; has_fips_check : bool; stripped_debug : bool }

let no_hazards = { has_rseq = false; has_fips_check = false; stripped_debug = false }

type t = {
  name : string;
  seed : int64;
  scale : int;
  num_units : int;
  funcs_per_unit_mean : float;
  blocks_per_func_mean : float;
  bytes_per_block_mean : float;
  cold_unit_fraction : float;
  pgo_noise : float;
  pgo_mismatch : float;
  call_density : float;
  delinquent_fraction : float;
  exception_fraction : float;
  inline_asm_fraction : float;
  switch_fraction : float;
  loop_fraction : float;
  rodata_per_unit : int;
  data_per_unit : int;
  hazards : hazards;
  requests : int;
  metric : [ `Walltime | `Latency | `Qps ];
  hugepages : bool;
}

type paper_row = {
  paper_text_bytes : int;
  paper_funcs : int;
  paper_blocks : int;
  paper_cold_pct : float;
}

(* Table 2 of the paper; keyed by benchmark name. *)
let paper_rows =
  [
    ("clang", (72_000_000, 160_000, 2_100_000, 67.0));
    ("mysql", (26_000_000, 61_000, 1_400_000, 93.0));
    ("spanner", (175_000_000, 562_000, 7_800_000, 83.0));
    ("search", (413_000_000, 1_700_000, 18_000_000, 95.0));
    ("bigtable", (93_000_000, 368_000, 4_200_000, 88.0));
    ("superroot", (598_000_000, 2_700_000, 30_000_000, 82.0));
  ]

let paper_row t =
  match List.assoc_opt t.name paper_rows with
  | None -> None
  | Some (paper_text_bytes, paper_funcs, paper_blocks, cold) ->
    Some { paper_text_bytes; paper_funcs; paper_blocks; paper_cold_pct = cold }

let base =
  {
    Spec.name = "base";
    seed = 1L;
    scale = 1;
    num_units = 10;
    funcs_per_unit_mean = 25.0;
    blocks_per_func_mean = 12.0;
    bytes_per_block_mean = 24.0;
    cold_unit_fraction = 0.5;
    pgo_noise = 0.35;
    pgo_mismatch = 0.35;
    call_density = 0.25;
    delinquent_fraction = 0.012;
    exception_fraction = 0.10;
    inline_asm_fraction = 0.002;
    switch_fraction = 0.03;
    loop_fraction = 0.12;
    rodata_per_unit = 6_000;
    data_per_unit = 2_000;
    hazards = Spec.no_hazards;
    requests = 200;
    metric = `Qps;
    hugepages = false;
  }

(* Warehouse and open-source benchmarks, shapes from Table 2. Function
   counts are divided by [scale]; per-function block counts and
   per-block byte sizes stay 1:1 so all locality mechanisms operate on
   realistic densities. *)

let clang =
  {
    base with
    Spec.name = "clang";
    seed = 101L;
    scale = 16;
    num_units = 400;
    funcs_per_unit_mean = 25.0;
    blocks_per_func_mean = 13.1;
    bytes_per_block_mean = 34.3;
    cold_unit_fraction = 0.67;
    exception_fraction = 0.12;
    requests = 300;
    metric = `Walltime;
  }

let mysql =
  {
    base with
    Spec.name = "mysql";
    (* MySQL's PGO training (sysbench) matches evaluation closely, so
       its baseline layout is already good (paper: +1%). *)
    pgo_noise = 0.12;
    pgo_mismatch = 0.08;
    seed = 102L;
    scale = 16;
    num_units = 152;
    funcs_per_unit_mean = 25.0;
    blocks_per_func_mean = 23.0;
    bytes_per_block_mean = 18.6;
    cold_unit_fraction = 0.93;
    inline_asm_fraction = 0.01;
    requests = 300;
    metric = `Latency;
  }

let spanner =
  {
    base with
    Spec.name = "spanner";
    seed = 103L;
    scale = 64;
    num_units = 351;
    funcs_per_unit_mean = 25.0;
    blocks_per_func_mean = 13.9;
    bytes_per_block_mean = 22.4;
    cold_unit_fraction = 0.83;
    requests = 200;
    metric = `Latency;
    hazards = { Spec.no_hazards with has_rseq = true; stripped_debug = true };
  }

let search =
  {
    base with
    Spec.name = "search";
    pgo_noise = 0.25;
    pgo_mismatch = 0.20;
    seed = 104L;
    scale = 64;
    num_units = 1062;
    funcs_per_unit_mean = 25.0;
    blocks_per_func_mean = 10.6;
    bytes_per_block_mean = 22.9;
    cold_unit_fraction = 0.95;
    requests = 200;
    metric = `Qps;
    hugepages = true;
  }

let bigtable =
  {
    base with
    Spec.name = "bigtable";
    pgo_noise = 0.25;
    pgo_mismatch = 0.18;
    seed = 105L;
    scale = 64;
    num_units = 230;
    funcs_per_unit_mean = 25.0;
    blocks_per_func_mean = 11.4;
    bytes_per_block_mean = 22.1;
    cold_unit_fraction = 0.88;
    requests = 200;
    metric = `Qps;
    hazards = { Spec.no_hazards with has_rseq = true; stripped_debug = true };
  }

let superroot =
  {
    base with
    Spec.name = "superroot";
    (* Superroot's profiles are mature and stable (paper: +1.1%). *)
    pgo_noise = 0.15;
    pgo_mismatch = 0.10;
    seed = 106L;
    scale = 64;
    num_units = 1688;
    funcs_per_unit_mean = 25.0;
    blocks_per_func_mean = 11.1;
    bytes_per_block_mean = 19.9;
    cold_unit_fraction = 0.82;
    requests = 200;
    metric = `Qps;
    hazards = { Spec.no_hazards with has_fips_check = true; stripped_debug = true };
  }

let large = [ clang; mysql; spanner; search; bigtable; superroot ]

(* SPEC2017 integer benchmarks at 1:1 scale: small programs where BOLT's
   single-machine design is at its best. Training inputs track ref
   inputs closely, so PGO estimates carry less noise. *)
let spec_base =
  {
    base with
    Spec.pgo_noise = 0.12;
    pgo_mismatch = 0.08;
    cold_unit_fraction = 0.4;
    requests = 400;
    metric = `Walltime;
    exception_fraction = 0.02;
  }

let spec name seed ~units ~fpu ~bpf ~bpb ~cold =
  {
    spec_base with
    Spec.name;
    seed;
    num_units = units;
    funcs_per_unit_mean = fpu;
    blocks_per_func_mean = bpf;
    bytes_per_block_mean = bpb;
    cold_unit_fraction = cold;
  }

let spec2017 =
  [
    spec "500.perlbench" 501L ~units:60 ~fpu:40.0 ~bpf:22.0 ~bpb:26.0 ~cold:0.50;
    spec "502.gcc" 502L ~units:260 ~fpu:46.0 ~bpf:9.0 ~bpb:37.0 ~cold:0.60;
    spec "505.mcf" 505L ~units:6 ~fpu:13.0 ~bpf:12.0 ~bpb:30.0 ~cold:0.21;
    spec "523.xalancbmk" 523L ~units:180 ~fpu:50.0 ~bpf:9.0 ~bpb:33.0 ~cold:0.70;
    spec "525.x264" 525L ~units:40 ~fpu:38.0 ~bpf:13.0 ~bpb:30.0 ~cold:0.40;
    spec "531.deepsjeng" 531L ~units:10 ~fpu:30.0 ~bpf:10.0 ~bpb:33.0 ~cold:0.30;
    spec "541.leela" 541L ~units:25 ~fpu:36.0 ~bpf:9.0 ~bpb:33.0 ~cold:0.35;
    spec "548.exchange2" 548L ~units:4 ~fpu:38.0 ~bpf:16.0 ~bpb:48.0 ~cold:0.25;
    spec "557.xz" 557L ~units:15 ~fpu:33.0 ~bpf:12.0 ~bpb:33.0 ~cold:0.88;
  ]

let all = large @ spec2017

let by_name n = List.find_opt (fun (s : Spec.t) -> String.equal s.name n) all

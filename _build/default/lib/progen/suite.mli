(** The benchmark suite of the paper's evaluation (§5, Table 2):
    4 warehouse-scale applications, 2 open-source workloads and the
    SPEC2017 integer benchmarks (520.omnetpp excluded, as in the paper).

    Warehouse programs are generated at reduced [scale]; SPEC programs
    at 1:1. *)

val clang : Spec.t

val mysql : Spec.t

val spanner : Spec.t

val search : Spec.t

val bigtable : Spec.t

val superroot : Spec.t

(** The open-source + warehouse set of Fig 4/5/6/9 and Table 3. *)
val large : Spec.t list

(** The SPEC2017 integer benchmarks of Fig 4/5/6/9 (right panels). *)
val spec2017 : Spec.t list

val all : Spec.t list

val by_name : string -> Spec.t option

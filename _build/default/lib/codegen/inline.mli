(** ThinLTO-style cross-module inlining (paper §2.3, §3.1).

    Phase 1 runs every middle-end optimization, including summary-based
    cross-unit function importing and inlining, *before* the
    profile-mapping metadata is emitted. This module models that pass:
    hot call sites to small functions are replaced by a spliced copy of
    the callee's CFG.

    Inlining is also where instrumented-PGO profiles go stale (paper
    §2.2): the inlined copy's branches execute in a new context the
    training run never attributed, modelled by extra noise
    ([dilution_noise]) on the PGO estimates of cloned blocks — while
    the *true* probabilities (what hardware profiling later observes)
    are preserved. *)

type config = {
  max_callee_blocks : int;  (** Only small callees are inlined. *)
  max_inlines_per_func : int;  (** Growth budget per caller. *)
  hot_site_freq : float;
      (** Minimum PGO-estimated block frequency of the call site. *)
  dilution_noise : float;
      (** Extra uniform noise applied to cloned PGO estimates. *)
  seed : int64;
}

val default_config : config

(** [func ?config ~program f] inlines eligible call sites of [f];
    returns the rewritten function and how many sites were inlined. *)
val func : ?config:config -> program:Ir.Program.t -> Ir.Func.t -> Ir.Func.t * int

(** [program ?config p] applies {!func} to every function. The
    returned program is a valid {!Ir.Program.t} (revalidated). *)
val program : ?config:config -> Ir.Program.t -> Ir.Program.t

(** [stats_of_last_run ()] is the number of call sites inlined by the
    most recent {!program} call on this domain. *)
val stats_of_last_run : unit -> int

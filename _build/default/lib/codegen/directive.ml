type kind = Primary | Cold | Extra of int

type cluster = { kind : kind; blocks : int list }

type func_plan = { func : string; clusters : cluster list }

type t = func_plan list

let symbol func c =
  match c.kind with
  | Primary -> Objfile.Symname.primary func
  | Cold -> Objfile.Symname.cold func
  | Extra n -> Objfile.Symname.cluster func n

let validate ~num_blocks plan =
  let seen = Hashtbl.create 16 in
  let primaries = List.filter (fun c -> c.kind = Primary) plan.clusters in
  let check_cluster c =
    List.fold_left
      (fun acc b ->
        match acc with
        | Error _ as e -> e
        | Ok () ->
          if b < 0 || b >= num_blocks then
            Error (Printf.sprintf "%s: block %d out of range" plan.func b)
          else if Hashtbl.mem seen b then
            Error (Printf.sprintf "%s: block %d in two clusters" plan.func b)
          else begin
            Hashtbl.add seen b ();
            Ok ()
          end)
      (Ok ()) c.blocks
  in
  match primaries with
  | [ p ] -> (
    match p.blocks with
    | 0 :: _ ->
      List.fold_left
        (fun acc c -> match acc with Error _ as e -> e | Ok () -> check_cluster c)
        (Ok ()) plan.clusters
    | [] -> Error (Printf.sprintf "%s: empty primary cluster" plan.func)
    | b :: _ -> Error (Printf.sprintf "%s: primary cluster starts with block %d, not 0" plan.func b))
  | [] -> Error (Printf.sprintf "%s: no primary cluster" plan.func)
  | _ :: _ :: _ -> Error (Printf.sprintf "%s: multiple primary clusters" plan.func)

let find t func = List.find_opt (fun p -> String.equal p.func func) t

let kind_to_text = function Primary -> "primary" | Cold -> "cold" | Extra n -> string_of_int n

let kind_of_text = function
  | "primary" -> Ok Primary
  | "cold" -> Ok Cold
  | s -> (
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok (Extra n)
    | Some _ | None -> Error (Printf.sprintf "bad cluster kind %S" s))

let to_text t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun p ->
      Buffer.add_string buf ("!" ^ p.func ^ "\n");
      List.iter
        (fun c ->
          Buffer.add_string buf ("!!" ^ kind_to_text c.kind);
          List.iter (fun b -> Buffer.add_string buf (" " ^ string_of_int b)) c.blocks;
          Buffer.add_char buf '\n')
        p.clusters)
    t;
  Buffer.contents buf

let of_text s =
  let lines = String.split_on_char '\n' s in
  let finish cur acc =
    match cur with
    | None -> acc
    | Some (func, clusters) -> { func; clusters = List.rev clusters } :: acc
  in
  let rec loop cur acc = function
    | [] -> Ok (List.rev (finish cur acc))
    | line :: rest ->
      let line = String.trim line in
      if line = "" then loop cur acc rest
      else if String.length line >= 2 && String.sub line 0 2 = "!!" then begin
        match cur with
        | None -> Error "cluster line before any function line"
        | Some (func, clusters) -> (
          let parts =
            String.split_on_char ' ' (String.sub line 2 (String.length line - 2))
            |> List.filter (fun x -> x <> "")
          in
          match parts with
          | [] -> Error "empty cluster line"
          | kind_text :: blocks_text -> (
            match kind_of_text kind_text with
            | Error e -> Error e
            | Ok kind -> (
              let blocks = List.map int_of_string_opt blocks_text in
              if List.exists Option.is_none blocks then
                Error (Printf.sprintf "bad block id in %S" line)
              else
                let blocks = List.map Option.get blocks in
                loop (Some (func, { kind; blocks } :: clusters)) acc rest)))
      end
      else if line.[0] = '!' then
        let acc = finish cur acc in
        loop (Some (String.sub line 1 (String.length line - 1), [])) acc rest
      else Error (Printf.sprintf "unparsable line %S" line)
  in
  loop None [] lines

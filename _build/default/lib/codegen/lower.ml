let lower_inst ?(prefetch = false) (i : Ir.Inst.t) : Isa.t list =
  match i with
  | Ir.Inst.Compute n -> [ Isa.Alu n ]
  | Ir.Inst.MemLoad n -> [ Isa.Load n ]
  | Ir.Inst.DelinquentLoad { bytes; _ } ->
    if prefetch then [ Isa.Prefetch; Isa.Load bytes ] else [ Isa.Load bytes ]
  | Ir.Inst.MemStore n -> [ Isa.Store n ]
  | Ir.Inst.DirectCall f -> [ Isa.Call (Isa.Target.Func f) ]
  | Ir.Inst.VirtualCall _ -> [ Isa.IndirectCall ]
  | Ir.Inst.JumpTableData n -> [ Isa.InlineData n ]

let lower_term ~func (t : Ir.Term.t) : Isa.t list =
  let blk block = Isa.Target.Block { func; block } in
  match t with
  | Ir.Term.Jump target -> [ Isa.Jmp { target = blk target; encoding = Isa.Long } ]
  | Ir.Term.Branch { cond; taken; fallthrough; _ } ->
    [
      Isa.Jcc { cond; target = blk taken; encoding = Isa.Long };
      Isa.Jmp { target = blk fallthrough; encoding = Isa.Long };
    ]
  | Ir.Term.Switch _ ->
    (* Index check + table load + indirect dispatch. *)
    [ Isa.Alu 4; Isa.Load 7; Isa.IndirectJmp ]
  | Ir.Term.Return -> [ Isa.Ret ]

let lower_block ?(prefetch = false) ~func (b : Ir.Block.t) =
  List.concat_map (lower_inst ~prefetch) b.body @ lower_term ~func b.term

(* Worst-case (pre-relaxation) lowered size, computed without building
   the instruction list: body bytes plus the long-form terminator. *)
let term_bytes = function
  | Ir.Term.Jump _ -> Isa.jmp_size Isa.Long
  | Ir.Term.Branch _ -> Isa.jcc_size Isa.Long + Isa.jmp_size Isa.Long
  | Ir.Term.Switch _ -> 4 + 7 + 3
  | Ir.Term.Return -> 1

let block_code_bytes (b : Ir.Block.t) = Ir.Block.body_bytes b + term_bytes b.term

let can_fallthrough (b : Ir.Block.t) =
  match b.term with
  | Ir.Term.Branch _ | Ir.Term.Jump _ -> true
  | Ir.Term.Switch _ | Ir.Term.Return -> false

let section_name symbol = ".text." ^ symbol

let cluster_section ?(prefetch_blocks = []) (f : Ir.Func.t) ~symbol blocks =
  let pieces =
    List.map
      (fun bid ->
        let b = Ir.Func.block f bid in
        {
          Objfile.Fragment.block = bid;
          insts = lower_block ~prefetch:(List.mem bid prefetch_blocks) ~func:f.name b;
          is_landing_pad = b.is_landing_pad;
        })
      blocks
  in
  (* The C++ ABI requires non-zero landing pad offsets relative to
     @LPStart: pad when the section itself begins with a landing pad
     (paper §4.5). *)
  let pieces =
    match pieces with
    | first :: rest when first.is_landing_pad ->
      { first with insts = Isa.Nop 1 :: first.insts } :: rest
    | _ -> pieces
  in
  let frag = Objfile.Fragment.make ~func:f.name pieces in
  Objfile.Section.make ~name:(section_name symbol) ~kind:Objfile.Section.Text ~symbol
    (Objfile.Section.Code frag)

let bbmap_of_sections (f : Ir.Func.t) sections =
  let func_maps =
    List.filter_map
      (fun (s : Objfile.Section.t) ->
        match s.contents, s.symbol with
        | Objfile.Section.Code frag, Some sym ->
          let entries =
            List.map
              (fun ((p : Objfile.Fragment.piece), off) ->
                let b = Ir.Func.block f p.block in
                {
                  Objfile.Bbmap.bb_id = p.block;
                  offset = off;
                  size = List.fold_left (fun acc i -> acc + Isa.size i) 0 p.insts;
                  can_fallthrough = can_fallthrough b;
                  is_landing_pad = p.is_landing_pad;
                })
              (Objfile.Fragment.piece_offsets frag)
          in
          Some { Objfile.Bbmap.func = sym; entries }
        | (Objfile.Section.Code _ | Objfile.Section.Map _ | Objfile.Section.Raw _), _ -> None)
      sections
  in
  Objfile.Section.make
    ~name:(".llvm_bb_addr_map." ^ f.name)
    ~kind:Objfile.Section.Bb_addr_map ~align:1
    (Objfile.Section.Map func_maps)

let lower_func ~emit_bb_addr_map ~plan ~default_order ?(prefetch_blocks = []) (f : Ir.Func.t) =
  let texts =
    match plan with
    | None ->
      [ cluster_section ~prefetch_blocks f ~symbol:(Objfile.Symname.primary f.name) default_order ]
    | Some (p : Directive.func_plan) -> (
      match Directive.validate ~num_blocks:(Ir.Func.num_blocks f) p with
      | Error msg -> invalid_arg ("Lower.lower_func: " ^ msg)
      | Ok () ->
        let listed = Hashtbl.create 16 in
        List.iter (fun (c : Directive.cluster) -> List.iter (fun b -> Hashtbl.replace listed b ()) c.blocks) p.clusters;
        let leftovers =
          List.init (Ir.Func.num_blocks f) Fun.id
          |> List.filter (fun b -> not (Hashtbl.mem listed b))
        in
        let has_cold_cluster =
          List.exists (fun (c : Directive.cluster) -> c.kind = Directive.Cold) p.clusters
        in
        let clusters =
          if leftovers = [] then p.clusters
          else if has_cold_cluster then
            (* Fold unlisted blocks into the existing cold cluster. *)
            List.map
              (fun (c : Directive.cluster) ->
                if c.kind = Directive.Cold then { c with blocks = c.blocks @ leftovers } else c)
              p.clusters
          else p.clusters @ [ { Directive.kind = Directive.Cold; blocks = leftovers } ]
        in
        List.map
          (fun (c : Directive.cluster) ->
            cluster_section ~prefetch_blocks f ~symbol:(Directive.symbol f.name c) c.blocks)
          clusters)
  in
  if emit_bb_addr_map then texts @ [ bbmap_of_sections f texts ] else texts

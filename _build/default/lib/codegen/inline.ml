type config = {
  max_callee_blocks : int;
  max_inlines_per_func : int;
  hot_site_freq : float;
  dilution_noise : float;
  seed : int64;
}

let default_config =
  {
    max_callee_blocks = 4;
    max_inlines_per_func = 4;
    hot_site_freq = 0.8;
    dilution_noise = 0.2;
    seed = 0x7417L;
  }

let last_inlined = ref 0

let stats_of_last_run () = !last_inlined

let clamp lo hi v = max lo (min hi v)

(* Extra estimation noise on a cloned block's PGO probabilities: the
   training profile attributed this code to the out-of-line callee, not
   to this inlined context. *)
let dilute rng noise (t : Ir.Term.t) =
  if noise <= 0.0 then t
  else begin
    let wobble p = clamp 0.02 0.98 (p +. ((Support.Rng.float rng -. 0.5) *. 2.0 *. noise)) in
    match t with
    | Ir.Term.Branch b -> Ir.Term.Branch { b with pgo_prob = wobble b.pgo_prob }
    | Ir.Term.Switch s ->
      let raw = Array.map wobble s.pgo_probs in
      let total = Array.fold_left ( +. ) 0.0 raw in
      Ir.Term.Switch { s with pgo_probs = Array.map (fun x -> x /. total) raw }
    | Ir.Term.Jump _ | Ir.Term.Return -> t
  end

let eligible_callee config ~caller (callee : Ir.Func.t) =
  (not (String.equal callee.name caller))
  && Ir.Func.num_blocks callee <= config.max_callee_blocks
  && (not callee.attrs.has_inline_asm)

(* Find the first hot direct call site: (block id, index of the call in
   the body, callee). *)
let find_site config ~program (f : Ir.Func.t) freqs =
  let found = ref None in
  Array.iter
    (fun (b : Ir.Block.t) ->
      if !found = None && freqs.(b.id) >= config.hot_site_freq then
        List.iteri
          (fun i (inst : Ir.Inst.t) ->
            if !found = None then
              match inst with
              | Ir.Inst.DirectCall g -> (
                match Ir.Program.find_func program g with
                | Some callee when eligible_callee config ~caller:f.name callee ->
                  found := Some (b.id, i, callee)
                | Some _ | None -> ())
              | Ir.Inst.Compute _ | Ir.Inst.MemLoad _ | Ir.Inst.DelinquentLoad _
              | Ir.Inst.MemStore _ | Ir.Inst.VirtualCall _ | Ir.Inst.JumpTableData _ -> ())
          b.body)
    f.blocks;
  !found

(* Splice [callee] into [f] at call site (block [bid], body index
   [site]). Block ids: originals keep theirs; the callee's blocks get
   [n .. n+k-1]; the tail (rest of the split block) gets [n+k]. *)
let splice rng config (f : Ir.Func.t) ~bid ~site (callee : Ir.Func.t) =
  let n = Ir.Func.num_blocks f in
  let k = Ir.Func.num_blocks callee in
  let tail_id = n + k in
  let b = Ir.Func.block f bid in
  let rec split i acc = function
    | [] -> invalid_arg "Inline.splice: site out of range"
    | inst :: rest -> if i = site then (List.rev acc, rest) else split (i + 1) (inst :: acc) rest
  in
  let before, after = split 0 [] b.body in
  let head =
    Ir.Block.make ~is_landing_pad:b.is_landing_pad ~id:bid ~body:before ~term:(Ir.Term.Jump n) ()
  in
  let tail = Ir.Block.make ~id:tail_id ~body:after ~term:b.term () in
  let cloned =
    Array.map
      (fun (cb : Ir.Block.t) ->
        let term =
          match cb.term with
          | Ir.Term.Return -> Ir.Term.Jump tail_id
          | t -> dilute rng config.dilution_noise (Ir.Term.map_blocks (fun x -> x + n) t)
        in
        Ir.Block.make ~is_landing_pad:cb.is_landing_pad ~id:(cb.id + n) ~body:cb.body ~term ())
      callee.blocks
  in
  let blocks = Array.concat [ f.blocks; cloned; [| tail |] ] in
  blocks.(bid) <- head;
  let attrs =
    { f.attrs with Ir.Func.has_exceptions = f.attrs.has_exceptions || callee.attrs.has_exceptions }
  in
  Ir.Func.make ~name:f.name ~attrs blocks

let func ?(config = default_config) ~program (f : Ir.Func.t) =
  let rng = Support.Rng.split (Support.Rng.of_string f.name) (Int64.to_int config.seed land 0xffff) in
  let rec go f budget count =
    if budget = 0 then (f, count)
    else begin
      let freqs = Ir.Cfg.estimate_frequencies ~use_pgo:true f in
      match find_site config ~program f freqs with
      | None -> (f, count)
      | Some (bid, site, callee) -> go (splice rng config f ~bid ~site callee) (budget - 1) (count + 1)
    end
  in
  go f config.max_inlines_per_func 0

let program ?(config = default_config) p =
  last_inlined := 0;
  let units =
    List.map
      (fun (u : Ir.Cunit.t) ->
        let funcs =
          List.map
            (fun f ->
              let f', k = func ~config ~program:p f in
              last_inlined := !last_inlined + k;
              f')
            u.funcs
        in
        Ir.Cunit.make ~name:u.name ~rodata:u.rodata ~data:u.data funcs)
      (Ir.Program.units p)
  in
  Ir.Program.make ~name:(Ir.Program.name p) ~main:(Ir.Program.main p) units

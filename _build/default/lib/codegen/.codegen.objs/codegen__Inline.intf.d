lib/codegen/inline.mli: Ir

lib/codegen/lower.ml: Directive Fun Hashtbl Ir Isa List Objfile

lib/codegen/inline.ml: Array Int64 Ir List String Support

lib/codegen/directive.ml: Buffer Hashtbl List Objfile Option Printf String

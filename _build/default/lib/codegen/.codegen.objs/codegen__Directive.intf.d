lib/codegen/directive.mli:

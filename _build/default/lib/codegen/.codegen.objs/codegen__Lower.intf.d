lib/codegen/lower.mli: Directive Ir Isa Objfile

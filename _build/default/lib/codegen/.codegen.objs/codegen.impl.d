lib/codegen/codegen.ml: Array Directive Fun Inline Ir Layout List Lower Objfile String

lib/codegen/codegen.mli: Directive Inline Ir Lower Objfile

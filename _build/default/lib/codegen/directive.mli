(** Code layout directives — the [cc_prof.txt] contract between the
    whole-program analysis (Phase 3) and the distributed codegen backends
    (Phase 4, paper §3.3–3.4).

    A directive assigns each listed function a partition of (some of) its
    blocks into ordered clusters; each cluster becomes one text section.
    Blocks not listed in any cluster implicitly form the cold cluster. *)

type kind =
  | Primary  (** Retains the function's own symbol. *)
  | Cold  (** Gains the [.cold] suffix. *)
  | Extra of int  (** Numbered cluster for inter-procedural layout. *)

type cluster = { kind : kind; blocks : int list }

type func_plan = { func : string; clusters : cluster list }

type t = func_plan list

(** [symbol plan_func cluster] is the link-time symbol of a cluster. *)
val symbol : string -> cluster -> string

(** [validate ~num_blocks plan] checks that clusters partition a subset
    of [0 .. num_blocks-1] with no duplicates, that exactly one cluster
    is [Primary], and that the primary cluster starts with block 0.
    Returns an error message on failure. *)
val validate : num_blocks:int -> func_plan -> (unit, string) result

(** [find t func] is the plan for [func], if directed. *)
val find : t -> string -> func_plan option

(** Serialization in the spirit of the [cc_prof.txt] exchange format:
    ["!func"] introduces a function, ["!!kind 0 3 7"] one cluster. *)
val to_text : t -> string

val of_text : string -> (t, string) result

(** Lowering of IR functions to machine code sections.

    All branches are emitted in their long form with explicit
    fall-through jumps (paper §4.2): with basic block sections the final
    distance between blocks is unknown until link time, so branch
    resolution and shrinking are deferred to the linker's relaxation
    pass. *)

(** [block_code_bytes b] is the lowered size of [b] including its
    terminator in worst-case (long) encoding — the size layout
    algorithms should assume. *)
val block_code_bytes : Ir.Block.t -> int

(** [lower_block ?prefetch ~func b] lowers body and terminator of one
    block; [prefetch] inserts a software prefetch before each
    delinquent load. *)
val lower_block : ?prefetch:bool -> func:string -> Ir.Block.t -> Isa.t list

(** [lower_func ~emit_bb_addr_map ~plan ~default_order ?prefetch_blocks f]
    produces the text sections of [f] — one per cluster when [plan] is
    given ([Error]s from {!Directive.validate} are raised as
    [Invalid_argument]), otherwise a single section laying blocks out in
    [default_order]. When [plan] leaves blocks unlisted they form the
    trailing cold cluster. When [emit_bb_addr_map] is set, a
    [.llvm_bb_addr_map.<func>] section is appended. Blocks listed in
    [prefetch_blocks] get a software prefetch inserted ahead of each
    delinquent load (paper §3.5). *)
val lower_func :
  emit_bb_addr_map:bool ->
  plan:Directive.func_plan option ->
  default_order:int list ->
  ?prefetch_blocks:int list ->
  Ir.Func.t ->
  Objfile.Section.t list

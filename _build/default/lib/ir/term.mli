(** Basic block terminators.

    Each conditional terminator carries two probabilities: [prob], the
    true behaviour under the production workload (used by the execution
    engine), and [pgo_prob], the estimate baked in by instrumented PGO
    training (used by the baseline compile-time layout). The gap between
    the two models the profile-staleness that post-link optimizers
    exploit (paper §2.2, §2.4). *)

type t =
  | Jump of int  (** Unconditional transfer to block [id]. *)
  | Branch of {
      cond : Isa.Cond.t;
      taken : int;
      fallthrough : int;
      prob : float;  (** True probability the branch is taken. *)
      pgo_prob : float;  (** PGO-training estimate of the same. *)
    }
  | Switch of {
      table : int array;  (** Jump-table targets (block ids). *)
      probs : float array;  (** True target distribution. *)
      pgo_probs : float array;  (** PGO estimate of the same. *)
    }
  | Return

(** [successors t] lists successor block ids in deterministic order. *)
val successors : t -> int list

(** [successor_probs t] pairs each successor with its true probability. *)
val successor_probs : t -> (int * float) list

(** [successor_pgo_probs t] pairs each successor with the PGO estimate. *)
val successor_pgo_probs : t -> (int * float) list

(** [map_blocks f t] renames block ids through [f]. *)
val map_blocks : (int -> int) -> t -> t

val pp : Format.formatter -> t -> unit

let successors f b = Term.successors (Func.block f b).term

let predecessors f =
  let n = Func.num_blocks f in
  let preds = Array.make n [] in
  for b = n - 1 downto 0 do
    List.iter (fun s -> preds.(s) <- b :: preds.(s)) (successors f b)
  done;
  preds

let reverse_postorder f =
  let n = Func.num_blocks f in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (successors f b);
      order := b :: !order
    end
  in
  dfs 0;
  let unreachable = ref [] in
  for b = n - 1 downto 0 do
    if not visited.(b) then unreachable := b :: !unreachable
  done;
  !order @ !unreachable

let reachable f =
  let n = Func.num_blocks f in
  let visited = Array.make n false in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (successors f b)
    end
  in
  dfs 0;
  visited

(* Damped fixpoint over edge probabilities. Loop back-edges would need a
   linear solve for exactness; a couple dozen sweeps in reverse postorder
   converge well enough for layout heuristics while staying linear in CFG
   size. The sweep stops early once the iterates are stable. *)
let estimate_frequencies ~use_pgo f =
  let n = Func.num_blocks f in
  let freq = Array.make n 0.0 in
  freq.(0) <- 1.0;
  let probs_of b =
    let term = (Func.block f b).Block.term in
    if use_pgo then Term.successor_pgo_probs term else Term.successor_probs term
  in
  let probs = Array.init n probs_of in
  let order = Array.of_list (reverse_postorder f) in
  let max_freq = 1.0e6 in
  let next = Array.make n 0.0 in
  let rec sweep k =
    if k > 24 then ()
    else begin
      Array.fill next 0 n 0.0;
      next.(0) <- 1.0;
      Array.iter
        (fun b ->
          List.iter
            (fun (s, p) ->
              if s <> 0 then next.(s) <- min max_freq (next.(s) +. (freq.(b) *. p)))
            probs.(b))
        order;
      let delta = ref 0.0 in
      for i = 0 to n - 1 do
        delta := !delta +. abs_float (next.(i) -. freq.(i));
        freq.(i) <- next.(i)
      done;
      if !delta > 1e-4 *. float_of_int n then sweep (k + 1)
    end
  in
  sweep 1;
  freq

let edge_frequencies ?freqs ~use_pgo f =
  let freq = match freqs with Some fr -> fr | None -> estimate_frequencies ~use_pgo f in
  let edges = ref [] in
  for b = Func.num_blocks f - 1 downto 0 do
    let term = (Func.block f b).Block.term in
    let probs = if use_pgo then Term.successor_pgo_probs term else Term.successor_probs term in
    List.iter (fun (s, p) -> edges := (b, s, freq.(b) *. p) :: !edges) (List.rev probs)
  done;
  !edges

(* Cooper-Harvey-Kennedy iterative dominators over the reverse postorder. *)
let immediate_dominators f =
  let n = Func.num_blocks f in
  let rpo = Array.of_list (reverse_postorder f) in
  let reach = reachable f in
  let rpo_pos = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_pos.(b) <- i) rpo;
  let preds = predecessors f in
  let idom = Array.make n (-1) in
  idom.(0) <- 0;
  let intersect a b =
    (* Walk up the (partially built) dominator tree in rpo positions. *)
    let rec go a b =
      if a = b then a
      else if rpo_pos.(a) > rpo_pos.(b) then go idom.(a) b
      else go a idom.(b)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> 0 && reach.(b) then begin
          let processed = List.filter (fun p -> reach.(p) && idom.(p) >= 0) preds.(b) in
          match processed with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  idom

let dominates f a b =
  let idom = immediate_dominators f in
  if idom.(b) < 0 || idom.(a) < 0 then false
  else begin
    let rec up x = if x = a then true else if x = 0 then a = 0 else up idom.(x) in
    up b
  end

let loop_headers f =
  let idom = immediate_dominators f in
  let doms_of b =
    (* The set of dominators of b, by walking idoms. *)
    let rec up x acc = if x = 0 then 0 :: acc else up idom.(x) (x :: acc) in
    if idom.(b) < 0 then [] else up b []
  in
  let headers = Hashtbl.create 8 in
  for b = 0 to Func.num_blocks f - 1 do
    if idom.(b) >= 0 then begin
      let doms = doms_of b in
      List.iter
        (fun s -> if List.mem s doms then Hashtbl.replace headers s ())
        (successors f b)
    end
  done;
  Hashtbl.fold (fun h () acc -> h :: acc) headers [] |> List.sort compare

type t = {
  name : string;
  main : string;
  units : Cunit.t list;
  by_name : (string, Func.t) Hashtbl.t;
  unit_of : (string, string) Hashtbl.t;
}

let make ~name ~main units =
  let by_name = Hashtbl.create 1024 in
  let unit_of = Hashtbl.create 1024 in
  List.iter
    (fun (u : Cunit.t) ->
      List.iter
        (fun (f : Func.t) ->
          if Hashtbl.mem by_name f.name then
            invalid_arg (Printf.sprintf "Program.make %s: duplicate function %s" name f.name);
          Hashtbl.replace by_name f.name f;
          Hashtbl.replace unit_of f.name u.name)
        u.funcs)
    units;
  if not (Hashtbl.mem by_name main) then
    invalid_arg (Printf.sprintf "Program.make %s: main %s undefined" name main);
  Hashtbl.iter
    (fun _ (f : Func.t) ->
      List.iter
        (fun (callee, _) ->
          if not (Hashtbl.mem by_name callee) then
            invalid_arg
              (Printf.sprintf "Program.make %s: %s calls undefined %s" name f.name callee))
        (Func.calls f))
    by_name;
  { name; main; units; by_name; unit_of }

let name t = t.name

let main t = t.main

let units t = t.units

let find_func t fname = Hashtbl.find_opt t.by_name fname

let find_func_exn t fname = Hashtbl.find t.by_name fname

let unit_of_func t fname = Hashtbl.find_opt t.unit_of fname

let iter_funcs t f = List.iter (fun (u : Cunit.t) -> List.iter f u.funcs) t.units

let fold_funcs t init f =
  List.fold_left (fun acc (u : Cunit.t) -> List.fold_left f acc u.funcs) init t.units

let num_funcs t = List.fold_left (fun acc u -> acc + Cunit.num_funcs u) 0 t.units

let num_blocks t = List.fold_left (fun acc u -> acc + Cunit.num_blocks u) 0 t.units

let code_bytes t = List.fold_left (fun acc u -> acc + Cunit.code_bytes u) 0 t.units

let func_names t =
  List.concat_map (fun (u : Cunit.t) -> List.map (fun (f : Func.t) -> f.name) u.funcs) t.units

type t =
  | Jump of int
  | Branch of {
      cond : Isa.Cond.t;
      taken : int;
      fallthrough : int;
      prob : float;
      pgo_prob : float;
    }
  | Switch of { table : int array; probs : float array; pgo_probs : float array }
  | Return

let successors = function
  | Jump b -> [ b ]
  | Branch { taken; fallthrough; _ } -> [ taken; fallthrough ]
  | Switch { table; _ } -> Array.to_list table
  | Return -> []

let successor_probs = function
  | Jump b -> [ (b, 1.0) ]
  | Branch { taken; fallthrough; prob; _ } -> [ (taken, prob); (fallthrough, 1.0 -. prob) ]
  | Switch { table; probs; _ } -> Array.to_list (Array.map2 (fun b p -> (b, p)) table probs)
  | Return -> []

let successor_pgo_probs = function
  | Jump b -> [ (b, 1.0) ]
  | Branch { taken; fallthrough; pgo_prob; _ } ->
    [ (taken, pgo_prob); (fallthrough, 1.0 -. pgo_prob) ]
  | Switch { table; pgo_probs; _ } ->
    Array.to_list (Array.map2 (fun b p -> (b, p)) table pgo_probs)
  | Return -> []

let map_blocks f = function
  | Jump b -> Jump (f b)
  | Branch b -> Branch { b with taken = f b.taken; fallthrough = f b.fallthrough }
  | Switch s -> Switch { s with table = Array.map f s.table }
  | Return -> Return

let pp fmt = function
  | Jump b -> Format.fprintf fmt "jump .%d" b
  | Branch { cond; taken; fallthrough; prob; _ } ->
    Format.fprintf fmt "br.%s .%d (p=%.2f) else .%d" (Isa.Cond.to_string cond) taken prob
      fallthrough
  | Switch { table; _ } ->
    Format.fprintf fmt "switch [%s]"
      (String.concat "; " (Array.to_list (Array.map string_of_int table)))
  | Return -> Format.fprintf fmt "ret"

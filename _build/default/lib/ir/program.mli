(** A whole program: a set of compilation units and a main entry point.

    Function names are globally unique (monorepo-style single namespace);
    {!make} validates that and that all call targets resolve. *)

type t

val make : name:string -> main:string -> Cunit.t list -> t

val name : t -> string

val main : t -> string

val units : t -> Cunit.t list

(** [find_func t fname] resolves a function by name. *)
val find_func : t -> string -> Func.t option

(** [find_func_exn t fname] like {!find_func} but raises [Not_found]. *)
val find_func_exn : t -> string -> Func.t

(** [unit_of_func t fname] is the name of the compilation unit defining
    [fname]. *)
val unit_of_func : t -> string -> string option

(** [iter_funcs t f] applies [f] to every function, in unit order. *)
val iter_funcs : t -> (Func.t -> unit) -> unit

(** [fold_funcs t init f] folds over every function in unit order. *)
val fold_funcs : t -> 'a -> ('a -> Func.t -> 'a) -> 'a

val num_funcs : t -> int

val num_blocks : t -> int

(** [code_bytes t] sums function body bytes over the program. *)
val code_bytes : t -> int

(** [func_names t] lists all function names in unit order. *)
val func_names : t -> string list

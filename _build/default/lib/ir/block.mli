(** A basic block: a straight-line body plus one terminator. *)

type t = {
  id : int;  (** Index of the block within its function's block array. *)
  body : Inst.t list;
  term : Term.t;
  is_landing_pad : bool;
      (** Exception landing pad; constrains layout (paper §4.5). *)
}

(** [make ?is_landing_pad ~id ~body ~term ()] builds a block. *)
val make : ?is_landing_pad:bool -> id:int -> body:Inst.t list -> term:Term.t -> unit -> t

(** [body_bytes b] is the lowered byte size of the body, terminator
    excluded (the terminator's size depends on encoding and layout). *)
val body_bytes : t -> int

(** [calls b] lists callees of all call sites in the body with their
    per-site probabilities. *)
val calls : t -> (string * float) list

val pp : Format.formatter -> t -> unit

type t = { name : string; funcs : Func.t list; rodata : int; data : int }

let make ~name ?(rodata = 0) ?(data = 0) funcs =
  if funcs = [] then invalid_arg (Printf.sprintf "Cunit.make %s: empty unit" name);
  { name; funcs; rodata; data }

let code_bytes u = List.fold_left (fun acc f -> acc + Func.code_bytes f) 0 u.funcs

let num_funcs u = List.length u.funcs

let num_blocks u = List.fold_left (fun acc f -> acc + Func.num_blocks f) 0 u.funcs

let mem u fname = List.exists (fun (f : Func.t) -> String.equal f.name fname) u.funcs

let pp fmt u =
  Format.fprintf fmt "@[<v 2>unit %s (%d funcs)@]" u.name (List.length u.funcs)

type t =
  | Compute of int
  | MemLoad of int
  | DelinquentLoad of { bytes : int; miss_prob : float }
  | MemStore of int
  | DirectCall of string
  | VirtualCall of { callees : (string * float) array }
  | JumpTableData of int

let byte_size = function
  | Compute n | MemLoad n | MemStore n | JumpTableData n -> n
  | DelinquentLoad { bytes; _ } -> bytes
  | DirectCall _ -> 5
  | VirtualCall _ -> 3

let is_call = function
  | DirectCall _ | VirtualCall _ -> true
  | Compute _ | MemLoad _ | DelinquentLoad _ | MemStore _ | JumpTableData _ -> false

let callees = function
  | DirectCall f -> [ (f, 1.0) ]
  | VirtualCall { callees } -> Array.to_list callees
  | Compute _ | MemLoad _ | DelinquentLoad _ | MemStore _ | JumpTableData _ -> []

let pp fmt = function
  | Compute n -> Format.fprintf fmt "compute<%d>" n
  | MemLoad n -> Format.fprintf fmt "load<%d>" n
  | DelinquentLoad { bytes; miss_prob } ->
    Format.fprintf fmt "load.miss<%d,p=%.2f>" bytes miss_prob
  | MemStore n -> Format.fprintf fmt "store<%d>" n
  | DirectCall f -> Format.fprintf fmt "call %s" f
  | VirtualCall { callees } -> Format.fprintf fmt "vcall<%d targets>" (Array.length callees)
  | JumpTableData n -> Format.fprintf fmt "jumptable<%d>" n

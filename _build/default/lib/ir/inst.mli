(** IR-level (pre-codegen) instructions.

    Unlike {!Isa.t}, IR instructions carry semantic call information (the
    callee set of virtual calls) that the backend and the whole-program
    analyses need; plain computation is abstracted to a byte footprint. *)

type t =
  | Compute of int  (** Straight-line ALU work occupying [n] code bytes. *)
  | MemLoad of int  (** Load occupying [n] code bytes. *)
  | DelinquentLoad of { bytes : int; miss_prob : float }
      (** A load with poor data locality: it misses the data caches with
          [miss_prob] unless covered by a software prefetch (paper
          §3.5's post-link prefetch insertion). *)
  | MemStore of int  (** Store occupying [n] code bytes. *)
  | DirectCall of string  (** Call to a known function symbol. *)
  | VirtualCall of { callees : (string * float) array }
      (** Indirect call; [callees] pairs each possible target with its
          true runtime probability (summing to 1). *)
  | JumpTableData of int
      (** [n] bytes of data materialised inside the instruction stream. *)

(** [byte_size i] is the code-bytes footprint after lowering: calls are 5
    bytes, virtual calls 3, data verbatim. *)
val byte_size : t -> int

(** [is_call i] is true for direct and virtual calls. *)
val is_call : t -> bool

(** [callees i] enumerates possible callees with probabilities; a direct
    call yields its single target with probability 1. *)
val callees : t -> (string * float) list

val pp : Format.formatter -> t -> unit

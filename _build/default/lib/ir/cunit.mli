(** A compilation unit (one source module): the granularity at which the
    distributed build system compiles, caches and — for Propeller —
    re-runs codegen (paper §3.1, §3.4). *)

type t = {
  name : string;
  funcs : Func.t list;
  rodata : int;  (** Read-only data bytes contributed by the unit. *)
  data : int;  (** Mutable data bytes contributed by the unit. *)
}

val make : name:string -> ?rodata:int -> ?data:int -> Func.t list -> t

(** [code_bytes u] sums function body bytes. *)
val code_bytes : t -> int

val num_funcs : t -> int

val num_blocks : t -> int

(** [mem u fname] tells whether the unit defines function [fname]. *)
val mem : t -> string -> bool

val pp : Format.formatter -> t -> unit

(** Control-flow-graph analyses over a single {!Func.t}. *)

(** [successors f b] is the successor ids of block [b]. *)
val successors : Func.t -> int -> int list

(** [predecessors f] is an array mapping each block id to its predecessor
    ids (deterministic order). *)
val predecessors : Func.t -> int list array

(** [reverse_postorder f] is the block ids of [f] in reverse postorder
    from the entry; unreachable blocks are appended in id order (they
    still occupy space in the binary). *)
val reverse_postorder : Func.t -> int list

(** [reachable f] marks blocks reachable from the entry. *)
val reachable : Func.t -> bool array

(** [estimate_frequencies ~use_pgo f] computes per-block execution
    frequencies relative to one function invocation by propagating edge
    probabilities ([use_pgo] selects {!Term.successor_pgo_probs} over the
    true probabilities). Cyclic flow is resolved by damped fixpoint
    iteration, capped to keep the analysis linear in practice. *)
val estimate_frequencies : use_pgo:bool -> Func.t -> float array

(** [edge_frequencies ?freqs ~use_pgo f] derives (src, dst, frequency)
    triples from block frequencies ([freqs] if supplied, otherwise
    {!estimate_frequencies} is run). *)
val edge_frequencies : ?freqs:float array -> use_pgo:bool -> Func.t -> (int * int * float) list

(** [immediate_dominators f] computes idoms by the Cooper-Harvey-Kennedy
    iterative algorithm. [idom.(0) = 0]; unreachable blocks get [-1]. *)
val immediate_dominators : Func.t -> int array

(** [dominates f a b] tells whether [a] dominates [b] (reflexive).
    [false] when either block is unreachable. *)
val dominates : Func.t -> int -> int -> bool

(** [loop_headers f] lists the targets of natural back edges (an edge
    [b -> h] where [h] dominates [b]), in ascending order — the blocks a
    backend would consider for loop alignment. *)
val loop_headers : Func.t -> int list

lib/ir/func.ml: Array Block Format List Printf Term

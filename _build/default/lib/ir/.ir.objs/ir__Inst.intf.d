lib/ir/inst.mli: Format

lib/ir/cunit.ml: Format Func List Printf String

lib/ir/program.mli: Cunit Func

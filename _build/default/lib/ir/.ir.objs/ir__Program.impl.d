lib/ir/program.ml: Cunit Func Hashtbl List Printf

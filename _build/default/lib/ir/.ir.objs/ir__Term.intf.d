lib/ir/term.mli: Format Isa

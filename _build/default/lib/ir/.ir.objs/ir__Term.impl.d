lib/ir/term.ml: Array Format Isa String

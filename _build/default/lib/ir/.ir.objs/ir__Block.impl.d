lib/ir/block.ml: Format Inst List Term

lib/ir/inst.ml: Array Format

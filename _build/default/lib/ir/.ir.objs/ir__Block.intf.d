lib/ir/block.mli: Format Inst Term

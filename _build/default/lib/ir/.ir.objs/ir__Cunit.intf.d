lib/ir/cunit.mli: Format Func

lib/ir/func.mli: Block Format

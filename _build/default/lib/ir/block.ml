type t = { id : int; body : Inst.t list; term : Term.t; is_landing_pad : bool }

let make ?(is_landing_pad = false) ~id ~body ~term () = { id; body; term; is_landing_pad }

let body_bytes b = List.fold_left (fun acc i -> acc + Inst.byte_size i) 0 b.body

let calls b = List.concat_map Inst.callees b.body

let pp fmt b =
  Format.fprintf fmt "@[<v 2>.%d%s:@ " b.id (if b.is_landing_pad then " (lp)" else "");
  List.iter (fun i -> Format.fprintf fmt "%a@ " Inst.pp i) b.body;
  Format.fprintf fmt "%a@]" Term.pp b.term

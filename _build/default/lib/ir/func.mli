(** An IR function: an array of basic blocks with block 0 as entry. *)

type attrs = {
  exported : bool;  (** Visible outside its compilation unit. *)
  has_exceptions : bool;  (** Contains landing pads / call-site tables. *)
  has_inline_asm : bool;
      (** Hand-written assembly: exempt from block reordering and a
          hazard for disassembly-driven tools (paper §1.1, §2.4). *)
}

type t = {
  name : string;  (** Global symbol name; unique within a program. *)
  blocks : Block.t array;  (** [blocks.(i).id = i]; block 0 is entry. *)
  attrs : attrs;
}

val default_attrs : attrs

(** [make ~name ?attrs blocks] checks the block-id invariant and that all
    terminator targets are in range; raises [Invalid_argument]
    otherwise. *)
val make : name:string -> ?attrs:attrs -> Block.t array -> t

val entry : t -> Block.t

val block : t -> int -> Block.t

val num_blocks : t -> int

(** [code_bytes f] is the total body byte size over all blocks
    (terminators excluded). *)
val code_bytes : t -> int

(** [calls f] lists (callee, probability-weighted-by-nothing) pairs over
    all blocks; used to build static call graphs. *)
val calls : t -> (string * float) list

(** [landing_pads f] lists ids of landing-pad blocks. *)
val landing_pads : t -> int list

val pp : Format.formatter -> t -> unit

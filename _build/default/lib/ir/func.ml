type attrs = { exported : bool; has_exceptions : bool; has_inline_asm : bool }

type t = { name : string; blocks : Block.t array; attrs : attrs }

let default_attrs = { exported = false; has_exceptions = false; has_inline_asm = false }

let make ~name ?(attrs = default_attrs) blocks =
  let n = Array.length blocks in
  if n = 0 then invalid_arg (Printf.sprintf "Func.make %s: no blocks" name);
  Array.iteri
    (fun i (b : Block.t) ->
      if b.id <> i then
        invalid_arg (Printf.sprintf "Func.make %s: block %d has id %d" name i b.id);
      List.iter
        (fun succ ->
          if succ < 0 || succ >= n then
            invalid_arg
              (Printf.sprintf "Func.make %s: block %d targets out-of-range block %d" name i succ))
        (Term.successors b.term))
    blocks;
  { name; blocks; attrs }

let entry f = f.blocks.(0)

let block f i = f.blocks.(i)

let num_blocks f = Array.length f.blocks

let code_bytes f = Array.fold_left (fun acc b -> acc + Block.body_bytes b) 0 f.blocks

let calls f = Array.to_list f.blocks |> List.concat_map Block.calls

let landing_pads f =
  Array.to_list f.blocks
  |> List.filter_map (fun (b : Block.t) -> if b.is_landing_pad then Some b.id else None)

let pp fmt f =
  Format.fprintf fmt "@[<v 2>func %s (%d blocks):@ " f.name (Array.length f.blocks);
  Array.iter (fun b -> Format.fprintf fmt "%a@ " Block.pp b) f.blocks;
  Format.fprintf fmt "@]"

(** Profile guided, post-link software prefetch insertion (paper §3.5).

    "The whole-program analysis of cache miss profiles determines
    prefetch insertion points. A summary-based directive can then drive
    the distributed code generation actions that modify the objects and
    insert prefetch instructions."

    The analysis maps PEBS miss samples back to machine basic blocks
    through the BB address map (no disassembly, like the layout path)
    and nominates the blocks responsible for the top share of misses. *)

type config = {
  coverage : float;
      (** Nominate the hottest blocks covering this fraction of all
          sampled misses (prefetching rare sites wastes code bytes). *)
  min_samples : int;  (** Ignore blocks below this sample count. *)
}

val default_config : config

type result = {
  sites : (string * int) list;  (** (function, block) directives. *)
  sampled_misses : int;
  covered_misses : int;  (** Samples attributed to nominated sites. *)
}

(** [analyze ?config ~pebs ~binary ()] computes insertion directives
    against a metadata binary. *)
val analyze :
  ?config:config -> pebs:Perfmon.Pebs.profile -> binary:Linker.Binary.t -> unit -> result

type mode = Intra | Interproc

type config = {
  mode : mode;
  exttsp : Layout.Exttsp.params;
  split_threshold : int;
  hfsort_max_cluster : int;
  split_functions : bool;
}

let default_config =
  {
    mode = Intra;
    exttsp = Layout.Exttsp.default_params;
    split_threshold = 0;
    hfsort_max_cluster = 1 lsl 20;
    split_functions = true;
  }

type result = {
  plans : Codegen.Directive.t;
  ordering : string list;
  hot_funcs : int;
  dcfg_blocks : int;
  dcfg_edges : int;
  layout_score : float;
  peak_mem_bytes : int;
  cpu_seconds : float;
}

(* Ext-TSP over one function's sampled blocks. Returns the hot block
   order and the layout score; shared by Propeller's WPA and the BOLT
   baseline (its cache+ algorithm is the same objective). *)
let block_layout ?(params = Layout.Exttsp.default_params) ?(split_threshold = 0)
    (dcfg : Dcfg.t) (d : Dcfg.dfunc) =
  let hot_bbs =
    Hashtbl.fold
      (fun bb (b : Dcfg.mblock) acc -> if b.count > split_threshold then bb :: acc else acc)
      d.dblocks []
    |> List.sort_uniq compare
  in
  let hot_bbs = if List.mem 0 hot_bbs then hot_bbs else 0 :: hot_bbs in
  let hot_arr = Array.of_list hot_bbs in
  let idx_of = Hashtbl.create 16 in
  Array.iteri (fun i bb -> Hashtbl.replace idx_of bb i) hot_arr;
  let sizes =
    Array.map
      (fun bb -> Option.value ~default:16 (Hashtbl.find_opt dcfg.size_of (d.dname, bb)))
      hot_arr
  in
  let weights =
    Array.map
      (fun bb ->
        match Hashtbl.find_opt d.dblocks bb with
        | Some b -> float_of_int b.count
        | None -> 0.0)
      hot_arr
  in
  let edges =
    Hashtbl.fold
      (fun (s, t) r acc ->
        match Hashtbl.find_opt idx_of s, Hashtbl.find_opt idx_of t with
        | Some si, Some ti -> (si, ti, float_of_int !r) :: acc
        | None, _ | _, None -> acc)
      d.dedges []
    |> List.sort compare
  in
  let entry = Hashtbl.find idx_of 0 in
  let order = Layout.Exttsp.order ~params ~sizes ~weights ~edges ~entry () in
  let score = Layout.Exttsp.score ~params ~sizes ~edges ~order () in
  (List.map (fun i -> hot_arr.(i)) order, score)

(* Intra-function plan: Ext-TSP over the function's sampled blocks; the
   cold remainder becomes the implicit .cold cluster in codegen. *)
let intra_plan config (dcfg : Dcfg.t) (d : Dcfg.dfunc) score_acc =
  let ordered_bbs, score =
    block_layout ~params:config.exttsp ~split_threshold:config.split_threshold dcfg d
  in
  score_acc := !score_acc +. score;
  if config.split_functions then
    {
      Codegen.Directive.func = d.dname;
      clusters =
        [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = ordered_bbs } ];
    }
  else begin
    (* Splitting disabled: keep the whole function contiguous by
       appending unsampled blocks to the primary cluster. Blocks the
       address map knows but the profile never saw are appended in id
       order. *)
    let all_bbs = ref [] in
    Array.iter
      (fun (b : Dcfg.mblock) -> if String.equal b.owner d.dname then all_bbs := b.bb :: !all_bbs)
      dcfg.block_index;
    let rest =
      List.sort_uniq compare !all_bbs |> List.filter (fun bb -> not (List.mem bb ordered_bbs))
    in
    {
      Codegen.Directive.func = d.dname;
      clusters =
        [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = ordered_bbs @ rest } ];
    }
  end

let analyze ?(config = default_config) ~profile ~(binary : Linker.Binary.t) () =
  let dcfg = Dcfg.build ~profile ~binary in
  let hot = Dcfg.hot_funcs dcfg in
  let dcfg_blocks = Dcfg.num_blocks dcfg in
  let dcfg_edges = Dcfg.num_edges dcfg in
  let score = ref 0.0 in
  let plans, ordering =
    match config.mode with
    | Intra ->
      let plans = List.map (fun d -> intra_plan config dcfg d score) hot in
      (* Global function order: C3 over the hot call graph. *)
      let hot_names = Array.of_list (List.map (fun (d : Dcfg.dfunc) -> d.dname) hot) in
      let name_idx = Hashtbl.create 64 in
      Array.iteri (fun i nm -> Hashtbl.replace name_idx nm i) hot_names;
      let fsizes =
        Array.map
          (fun nm ->
            let d = Hashtbl.find dcfg.funcs nm in
            Hashtbl.fold (fun _ (b : Dcfg.mblock) acc -> acc + b.msize) d.dblocks 0)
          hot_names
      in
      let fsamples =
        Array.map (fun nm -> float_of_int (Hashtbl.find dcfg.funcs nm).dsamples) hot_names
      in
      let arcs =
        Dcfg.func_arcs dcfg
        |> List.filter_map (fun (caller, callee, w) ->
               match Hashtbl.find_opt name_idx caller, Hashtbl.find_opt name_idx callee with
               | Some a, Some b -> Some (a, b, w)
               | None, _ | _, None -> None)
      in
      let func_order =
        Layout.Hfsort.order ~sizes:fsizes ~samples:fsamples ~arcs
          ~max_cluster_size:config.hfsort_max_cluster ()
      in
      let primaries = List.map (fun i -> hot_names.(i)) func_order in
      let colds =
        if config.split_functions then List.map Objfile.Symname.cold primaries else []
      in
      (plans, primaries @ colds)
    | Interproc ->
      let r =
        Interproc.layout ~params:config.exttsp ~dcfg ~split_threshold:config.split_threshold
          ~entry_func:binary.entry_symbol
      in
      score := r.score;
      (r.plans, r.ordering)
  in
  let profile_bytes = Perfmon.Lbr.raw_bytes Perfmon.Lbr.default_config profile in
  {
    plans;
    ordering;
    hot_funcs = List.length hot;
    dcfg_blocks;
    dcfg_edges;
    layout_score = !score;
    peak_mem_bytes = Buildsys.Costmodel.wpa_mem ~profile_bytes ~dcfg_blocks ~dcfg_edges;
    cpu_seconds =
      Buildsys.Costmodel.wpa_seconds
        ~profile_edges:(Perfmon.Lbr.distinct_edges profile)
        ~dcfg_blocks;
  }

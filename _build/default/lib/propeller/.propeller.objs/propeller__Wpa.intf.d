lib/propeller/wpa.mli: Codegen Dcfg Layout Linker Perfmon

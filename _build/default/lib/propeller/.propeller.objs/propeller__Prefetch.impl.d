lib/propeller/prefetch.ml: Dcfg Hashtbl Linker List Perfmon

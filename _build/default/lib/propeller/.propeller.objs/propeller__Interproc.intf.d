lib/propeller/interproc.mli: Codegen Dcfg Layout

lib/propeller/pipeline.ml: Buildsys Codegen Exec Linker List Perfmon Prefetch Printf Wpa

lib/propeller/dcfg.mli: Hashtbl Linker Perfmon

lib/propeller/wpa.ml: Array Buildsys Codegen Dcfg Hashtbl Interproc Layout Linker List Objfile Option Perfmon String

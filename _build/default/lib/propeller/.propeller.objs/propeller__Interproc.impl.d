lib/propeller/interproc.ml: Array Codegen Dcfg Fun Hashtbl Layout List Objfile Option String

lib/propeller/prefetch.mli: Linker Perfmon

lib/propeller/pipeline.mli: Buildsys Codegen Exec Ir Linker Perfmon Prefetch Wpa

lib/propeller/dcfg.ml: Array Hashtbl Linker List Objfile Option Perfmon String

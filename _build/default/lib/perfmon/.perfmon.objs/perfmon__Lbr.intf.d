lib/perfmon/lbr.mli: Exec Hashtbl

lib/perfmon/lbr.ml: Array Exec Hashtbl

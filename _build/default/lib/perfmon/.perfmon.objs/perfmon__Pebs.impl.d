lib/perfmon/pebs.ml: Exec Hashtbl

lib/perfmon/pebs.mli: Exec Hashtbl

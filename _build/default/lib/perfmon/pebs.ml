type config = { period : int }

let default_config = { period = 19 }

type profile = { misses : (int, int) Hashtbl.t; mutable num_samples : int }

let create_profile () = { misses = Hashtbl.create 256; num_samples = 0 }

let collector config profile =
  let since = ref 0 in
  {
    Exec.Event.null with
    Exec.Event.on_dmiss =
      (fun ~src ->
        incr since;
        if !since >= config.period then begin
          since := 0;
          profile.num_samples <- profile.num_samples + 1;
          match Hashtbl.find_opt profile.misses src with
          | Some c -> Hashtbl.replace profile.misses src (c + 1)
          | None -> Hashtbl.add profile.misses src 1
        end);
  }

let total profile = Hashtbl.fold (fun _ c acc -> acc + c) profile.misses 0

let merge a b =
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt a.misses k with
      | Some c -> Hashtbl.replace a.misses k (c + v)
      | None -> Hashtbl.add a.misses k v)
    b.misses;
  a.num_samples <- a.num_samples + b.num_samples

lib/objfile/fragment.mli: Isa

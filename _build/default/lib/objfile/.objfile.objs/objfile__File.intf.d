lib/objfile/file.mli: Bbmap Section

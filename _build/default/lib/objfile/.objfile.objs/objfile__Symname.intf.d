lib/objfile/symname.mli:

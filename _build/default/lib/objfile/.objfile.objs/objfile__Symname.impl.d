lib/objfile/symname.ml: Printf String

lib/objfile/bbmap.mli:

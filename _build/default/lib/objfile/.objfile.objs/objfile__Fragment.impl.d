lib/objfile/fragment.ml: Isa List Printf

lib/objfile/section.mli: Bbmap Fragment

lib/objfile/bbmap.ml: List String

lib/objfile/file.ml: Fragment List Section String

lib/objfile/section.ml: Bbmap Fragment

(** Machine code carried by a text section.

    A fragment is a contiguous run of lowered basic blocks belonging to a
    single function — a *basic block cluster* in Propeller terms (paper
    §4.1). With plain function sections the fragment holds every block of
    the function; with basic block sections it holds one cluster. *)

type piece = {
  block : int;  (** IR block id this code was lowered from. *)
  insts : Isa.t list;  (** Lowered code, terminator branches included. *)
  is_landing_pad : bool;
}

type t = { func : string; pieces : piece list }

val make : func:string -> piece list -> t

(** [byte_size f] sums instruction sizes over all pieces. *)
val byte_size : t -> int

(** [piece_offsets f] pairs each piece with its byte offset from the
    fragment start, under the current encodings. *)
val piece_offsets : t -> (piece * int) list

(** [num_relocations f] counts instructions whose target needs a static
    relocation (branches and direct calls with symbolic targets). *)
val num_relocations : t -> int

(** [block_ids f] lists block ids in piece order. *)
val block_ids : t -> int list

(** [map_insts f frag] rewrites every instruction (e.g. for relaxation). *)
val map_insts : (Isa.t -> Isa.t) -> t -> t

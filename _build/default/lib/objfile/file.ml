type t = {
  name : string;
  unit_name : string;
  sections : Section.t list;
  has_inline_asm : bool;
}

let make ~name ~unit_name ?(has_inline_asm = false) sections =
  { name; unit_name; sections; has_inline_asm }

let text_sections o = List.filter Section.is_text o.sections

let find_section o name = List.find_opt (fun (s : Section.t) -> String.equal s.name name) o.sections

let defined_symbols o =
  List.filter_map
    (fun (s : Section.t) ->
      match s.symbol with Some sym -> Some (sym, s.name) | None -> None)
    o.sections

let bb_addr_map o =
  List.concat_map
    (fun (s : Section.t) -> match s.contents with Section.Map m -> m | Section.Code _ | Section.Raw _ -> [])
    o.sections

let size_by_kind o kind =
  List.fold_left
    (fun acc (s : Section.t) -> if s.kind = kind then acc + Section.size s else acc)
    0 o.sections

let total_size o = List.fold_left (fun acc s -> acc + Section.size s) 0 o.sections

let num_relocations o =
  let code_relocs =
    List.fold_left
      (fun acc s ->
        match Section.fragment s with Some f -> acc + Fragment.num_relocations f | None -> acc)
      0 o.sections
  in
  let texts = List.length (text_sections o) in
  (* Two DWARF range relocations (start/end symbol) per text section
     beyond the first of each function, see paper §4.3. *)
  code_relocs + (2 * max 0 (texts - 1))

let num_text_sections o = List.length (text_sections o)

let primary f = f

let cold f = f ^ ".cold"

let cluster f n =
  if n < 1 then invalid_arg "Symname.cluster: n must be >= 1";
  Printf.sprintf "%s.%d" f n

let block ~func ~block = Printf.sprintf "%s#%d" func block

let parse_block s =
  match String.rindex_opt s '#' with
  | None -> None
  | Some i -> (
    let func = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt rest with Some b -> Some (func, b) | None -> None)

let is_cold s =
  String.length s > 5 && String.equal (String.sub s (String.length s - 5) 5) ".cold"

let is_numeric_suffix s i =
  let rec loop j =
    if j >= String.length s then j > i + 1
    else match s.[j] with '0' .. '9' -> loop (j + 1) | _ -> false
  in
  loop (i + 1)

let owner s =
  if is_cold s then String.sub s 0 (String.length s - 5)
  else
    match String.rindex_opt s '.' with
    | Some i when is_numeric_suffix s i -> String.sub s 0 i
    | Some _ | None -> s

(** A section: a contiguous range of bytes the linker operates on as a
    single unit (paper §4). *)

type kind =
  | Text  (** Executable code. *)
  | Bb_addr_map  (** Profile-mapping metadata, not loaded at run time. *)
  | Eh_frame  (** Call frame information (CFI FDEs, §4.4). *)
  | Rela  (** Static relocations retained in the output. *)
  | Rodata
  | Data
  | Debug  (** DWARF (ranges made discontiguous-capable, §4.3). *)
  | Symtab  (** Symbol table + string table in the linked output. *)

type contents =
  | Code of Fragment.t
  | Map of Bbmap.t
  | Raw of int  (** Opaque payload of the given byte size. *)

type t = {
  name : string;  (** e.g. [".text.foo"], [".text.split.foo.cold"]. *)
  kind : kind;
  align : int;
  symbol : string option;
      (** Symbol bound at offset 0 (the cluster symbol for text). *)
  contents : contents;
}

val make : name:string -> kind:kind -> ?align:int -> ?symbol:string -> contents -> t

(** [size s] is the byte size of the section under current encodings. *)
val size : t -> int

(** [is_text s] is true for executable sections. *)
val is_text : t -> bool

(** [fragment s] extracts the code fragment of a text section. *)
val fragment : t -> Fragment.t option

val kind_to_string : kind -> string

type entry = {
  bb_id : int;
  offset : int;
  size : int;
  can_fallthrough : bool;
  is_landing_pad : bool;
}

type func_map = { func : string; entries : entry list }

type t = func_map list

let uleb_size v =
  let rec loop v acc = if v < 128 then acc + 1 else loop (v lsr 7) (acc + 1) in
  loop (max 0 v) 0

let entry_size e = uleb_size e.bb_id + uleb_size e.offset + uleb_size e.size + 1 (* flags *)

let encoded_size t =
  List.fold_left
    (fun acc fm ->
      acc + 9 + List.fold_left (fun acc e -> acc + entry_size e) 0 fm.entries)
    0 t

let lookup t ~func ~offset =
  match List.find_opt (fun fm -> String.equal fm.func func) t with
  | None -> None
  | Some fm ->
    List.find_opt (fun e -> offset >= e.offset && offset < e.offset + e.size) fm.entries

let merge maps = List.concat maps

let num_entries t = List.fold_left (fun acc fm -> acc + List.length fm.entries) 0 t

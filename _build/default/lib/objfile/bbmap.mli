(** The [.llvm_bb_addr_map] metadata section (paper §3.2; LLVM
    SHT_LLVM_BB_ADDR_MAP).

    For every function the section records, per machine basic block, its
    id, offset from the function symbol, size, and flags. Phase 3 uses it
    to map LBR virtual addresses back to machine basic blocks without
    disassembly. The section is not loaded at run time, so it costs
    binary size only. *)

type entry = {
  bb_id : int;
  offset : int;  (** Byte offset from the owning fragment's symbol. *)
  size : int;  (** Code bytes of the block, terminator included. *)
  can_fallthrough : bool;
      (** Block may fall through to the next block in the layout. *)
  is_landing_pad : bool;
}

type func_map = {
  func : string;  (** Symbol the offsets are relative to. *)
  entries : entry list;  (** In layout order within the fragment. *)
}

type t = func_map list

(** [encoded_size t] models the ELF section size: a 9-byte function
    header (address + count) plus ULEB128-encoded id/offset/size/flags
    per entry. *)
val encoded_size : t -> int

(** [lookup t ~func ~offset] finds the entry covering byte [offset]
    relative to symbol [func], if any. *)
val lookup : t -> func:string -> offset:int -> entry option

(** [merge maps] concatenates per-object maps into a program-wide map. *)
val merge : t list -> t

val num_entries : t -> int

type kind = Text | Bb_addr_map | Eh_frame | Rela | Rodata | Data | Debug | Symtab

type contents = Code of Fragment.t | Map of Bbmap.t | Raw of int

type t = {
  name : string;
  kind : kind;
  align : int;
  symbol : string option;
  contents : contents;
}

let make ~name ~kind ?(align = 16) ?symbol contents = { name; kind; align; symbol; contents }

let size s =
  match s.contents with
  | Code f -> Fragment.byte_size f
  | Map m -> Bbmap.encoded_size m
  | Raw n -> n

let is_text s = s.kind = Text

let fragment s = match s.contents with Code f -> Some f | Map _ | Raw _ -> None

let kind_to_string = function
  | Text -> "text"
  | Bb_addr_map -> "bb_addr_map"
  | Eh_frame -> "eh_frame"
  | Rela -> "rela"
  | Rodata -> "rodata"
  | Data -> "data"
  | Debug -> "debug"
  | Symtab -> "symtab"

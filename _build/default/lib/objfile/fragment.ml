type piece = { block : int; insts : Isa.t list; is_landing_pad : bool }

type t = { func : string; pieces : piece list }

let make ~func pieces =
  if pieces = [] then invalid_arg (Printf.sprintf "Fragment.make %s: empty" func);
  { func; pieces }

let piece_size p = List.fold_left (fun acc i -> acc + Isa.size i) 0 p.insts

let byte_size f = List.fold_left (fun acc p -> acc + piece_size p) 0 f.pieces

let piece_offsets f =
  let _, rev =
    List.fold_left
      (fun (off, acc) p -> (off + piece_size p, (p, off) :: acc))
      (0, []) f.pieces
  in
  List.rev rev

let num_relocations f =
  List.fold_left
    (fun acc p ->
      List.fold_left
        (fun acc i -> match Isa.branch_target i with Some _ -> acc + 1 | None -> acc)
        acc p.insts)
    0 f.pieces

let block_ids f = List.map (fun p -> p.block) f.pieces

let map_insts fn frag =
  { frag with pieces = List.map (fun p -> { p with insts = List.map fn p.insts }) frag.pieces }

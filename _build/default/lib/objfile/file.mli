(** A relocatable object file: the unit the build system compiles, caches
    and the linker consumes. *)

type t = {
  name : string;  (** e.g. ["s_1.o"]; derived from the compilation unit. *)
  unit_name : string;  (** The compilation unit it was produced from. *)
  sections : Section.t list;
  has_inline_asm : bool;
      (** Object contains hand-written assembly (a disassembly hazard). *)
}

val make : name:string -> unit_name:string -> ?has_inline_asm:bool -> Section.t list -> t

(** [text_sections o] in declaration order. *)
val text_sections : t -> Section.t list

(** [find_section o name] looks a section up by name. *)
val find_section : t -> string -> Section.t option

(** [defined_symbols o] lists (symbol, section name) for every text
    section carrying a symbol. *)
val defined_symbols : t -> (string * string) list

(** [bb_addr_map o] merges all address-map payloads of the object. *)
val bb_addr_map : t -> Bbmap.t

(** [size_by_kind o kind] sums the sizes of sections of [kind]. *)
val size_by_kind : t -> Section.kind -> int

(** [total_size o] sums all section sizes (the object's storage cost in
    the artifact cache). *)
val total_size : t -> int

(** [num_relocations o] counts symbolic branch/call sites over all text
    sections plus 2 DWARF range relocations per extra text section
    (paper §4.3). *)
val num_relocations : t -> int

(** [num_text_sections o] counts text sections (one per cluster). *)
val num_text_sections : t -> int

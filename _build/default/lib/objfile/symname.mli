(** Symbol naming conventions for basic block clusters (paper §3.4).

    The primary (hot) cluster retains the function's own symbol; the cold
    cluster gains a [.cold] suffix; additional clusters for
    inter-procedural layout get numeric suffixes. Block-level symbols —
    used internally as relocation targets — are written [func#block]. *)

(** [primary f] is the symbol of the primary cluster: [f] itself. *)
val primary : string -> string

(** [cold f] is [f ^ ".cold"]. *)
val cold : string -> string

(** [cluster f n] is [f ^ "." ^ n] for extra clusters, [n >= 1]. *)
val cluster : string -> int -> string

(** [block ~func ~block] is the internal per-block symbol. *)
val block : func:string -> block:int -> string

(** [parse_block s] inverts {!block}. *)
val parse_block : string -> (string * int) option

(** [owner s] strips cluster suffixes, recovering the function a cluster
    symbol belongs to ([foo.cold] -> [foo], [foo.2] -> [foo]). *)
val owner : string -> string

(** [is_cold s] is true for [.cold]-suffixed symbols. *)
val is_cold : string -> bool

(** Linker resource cost model.

    The paper characterises linker memory as "somewhat well defined
    (~2X size of inputs)" (§5.2, citing [21]); we adopt exactly that,
    plus a per-section bookkeeping overhead that makes the
    all-bb-sections ablation visible, and a throughput-based time
    model. Absolute constants are calibration, shapes are what the
    benches compare. *)

(** [peak_mem ~input_bytes ~num_sections] in bytes. *)
val peak_mem : input_bytes:int -> num_sections:int -> int

(** [cpu_seconds ~input_bytes ~num_sections ~relax_iters] models link
    time: constant startup + input consumption at a fixed throughput +
    per-section ordering cost + per-relaxation-sweep cost. *)
val cpu_seconds : input_bytes:int -> num_sections:int -> relax_iters:int -> float

let base_mem = 60 * 1024 * 1024 (* resident linker image + tables *)

let bytes_per_section = 96 (* section header, symbol, ordering slot *)

let peak_mem ~input_bytes ~num_sections =
  base_mem + (2 * input_bytes) + (bytes_per_section * num_sections)

let input_throughput = 150.0e6 (* bytes/second consumed *)

let per_section_seconds = 1.5e-6

let per_relax_sweep_seconds = 0.15

let cpu_seconds ~input_bytes ~num_sections ~relax_iters =
  2.0
  +. (float_of_int input_bytes /. input_throughput)
  +. (per_section_seconds *. float_of_int num_sections)
  +. (per_relax_sweep_seconds *. float_of_int relax_iters)

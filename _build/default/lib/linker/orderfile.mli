(** Symbol ordering files ([--symbol-ordering-file], the [ld_prof.txt]
    of Fig 1): one symbol per line, ['#'] comments and blank lines
    ignored, duplicates dropped (first occurrence wins) — the semantics
    modern linkers implement. *)

(** [to_text syms] renders an ordering file with a header comment. *)
val to_text : string list -> string

(** [of_text s] parses an ordering file. *)
val of_text : string -> string list

(** [validate ~known syms] partitions the ordering into symbols the
    binary defines and spurious leftovers (e.g. stale profiles naming
    deleted functions); linkers warn about the latter. *)
val validate : known:(string -> bool) -> string list -> string list * string list

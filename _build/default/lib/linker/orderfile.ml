let to_text syms =
  let buf = Buffer.create (32 * (List.length syms + 1)) in
  Buffer.add_string buf "# symbol ordering file (ld_prof)\n";
  List.iter
    (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')
    syms;
  Buffer.contents buf

let of_text s =
  let seen = Hashtbl.create 64 in
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else if Hashtbl.mem seen line then None
         else begin
           Hashtbl.add seen line ();
           Some line
         end)

let validate ~known syms = List.partition known syms

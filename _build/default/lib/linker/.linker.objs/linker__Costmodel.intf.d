lib/linker/costmodel.mli:

lib/linker/orderfile.ml: Buffer Hashtbl List String

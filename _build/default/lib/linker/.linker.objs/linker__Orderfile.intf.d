lib/linker/orderfile.mli:

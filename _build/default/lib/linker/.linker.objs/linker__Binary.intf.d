lib/linker/binary.mli: Hashtbl Isa Objfile

lib/linker/link.mli: Binary Objfile

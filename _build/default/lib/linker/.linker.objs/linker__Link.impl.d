lib/linker/link.ml: Array Binary Costmodel Fun Hashtbl Isa List Objfile Option Printf String

lib/linker/binary.ml: Array Hashtbl Isa List Objfile Seq

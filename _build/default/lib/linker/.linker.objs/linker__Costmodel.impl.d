lib/linker/costmodel.ml:

(** Small statistics helpers used by benches and the cost models. *)

(** [mean xs] is the arithmetic mean; 0 for the empty list. *)
val mean : float list -> float

(** [geomean xs] is the geometric mean of positive values; 0 for empty. *)
val geomean : float list -> float

(** [percentile p xs] is the [p]-th percentile (0..100) by nearest-rank on
    a sorted copy; raises [Invalid_argument] on empty input. *)
val percentile : float -> float list -> float

(** [sum xs] sums the list. *)
val sum : float list -> float

(** [ratio_pct a b] is [(a - b) / b * 100.], the percent change of [a]
    relative to [b]. *)
val ratio_pct : float -> float -> float

(** Human-readable byte counts, e.g. [72 MB], [413 MB], [1.7 GB]. *)
val pp_bytes : Format.formatter -> int -> unit

(** Human-readable counts, e.g. [160 K], [2.1 M]. *)
val pp_count : Format.formatter -> int -> unit

(** Mutable max-priority queue with stable handles.

    Ext-TSP's "logarithmic time retrieval of the most profitable action"
    (paper §4.7) needs a heap whose entries can be re-prioritised or
    removed when chain merges invalidate candidate gains. This is a binary
    heap with an index side-table providing O(log n) insert, remove,
    update and pop-max. Ties are broken by insertion order so the layout
    algorithms are deterministic. *)

type 'a t

type handle

(** [create ()] returns an empty queue. *)
val create : unit -> 'a t

(** [length t] is the number of live entries. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** [add t ~priority v] inserts [v] and returns a handle for later
    update/removal. *)
val add : 'a t -> priority:float -> 'a -> handle

(** [remove t h] removes the entry behind [h]. Raises [Invalid_argument]
    if the handle is dead. *)
val remove : 'a t -> handle -> unit

(** [mem t h] is [true] if the handle is still live. *)
val mem : 'a t -> handle -> bool

(** [update t h ~priority] changes the priority of a live entry. *)
val update : 'a t -> handle -> priority:float -> unit

(** [pop_max t] removes and returns the highest-priority entry, or [None]
    if empty. *)
val pop_max : 'a t -> ('a * float) option

(** [peek_max t] returns the highest-priority entry without removing it. *)
val peek_max : 'a t -> ('a * float) option

(** [iter t f] applies [f] to every live value (heap order, unspecified). *)
val iter : 'a t -> ('a -> unit) -> unit

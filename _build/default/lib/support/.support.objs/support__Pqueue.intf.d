lib/support/pqueue.mli:

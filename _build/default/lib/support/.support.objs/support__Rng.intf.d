lib/support/rng.mli:

lib/support/rng.ml: Array Char Int64 String

lib/support/digesting.mli: Format

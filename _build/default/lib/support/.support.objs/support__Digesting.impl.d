lib/support/digesting.ml: Buffer Char Format Int64 List Printf String

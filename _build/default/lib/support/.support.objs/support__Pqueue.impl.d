lib/support/pqueue.ml: Array Hashtbl

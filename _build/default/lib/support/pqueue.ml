type handle = int

type 'a entry = { value : 'a; mutable priority : float; seq : int; handle : handle }

type 'a t = {
  mutable heap : 'a entry array; (* dense binary max-heap in [0, size) *)
  mutable size : int;
  mutable next_seq : int;
  mutable next_handle : int;
  positions : (handle, int) Hashtbl.t; (* handle -> heap index *)
}

let create () = { heap = [||]; size = 0; next_seq = 0; next_handle = 0; positions = Hashtbl.create 64 }

let length t = t.size

let is_empty t = t.size = 0

(* Entry [a] outranks [b] on higher priority; earlier insertion wins ties
   to keep pop order deterministic. *)
let outranks a b = a.priority > b.priority || (a.priority = b.priority && a.seq < b.seq)

let set t i e =
  t.heap.(i) <- e;
  Hashtbl.replace t.positions e.handle i

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if outranks t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      set t i t.heap.(parent);
      set t parent tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && outranks t.heap.(l) t.heap.(!best) then best := l;
  if r < t.size && outranks t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    let tmp = t.heap.(i) in
    set t i t.heap.(!best);
    set t !best tmp;
    sift_down t !best
  end

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let new_cap = max 16 (cap * 2) in
    let fresh = Array.make new_cap t.heap.(0) in
    Array.blit t.heap 0 fresh 0 t.size;
    t.heap <- fresh
  end

let add t ~priority v =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  let e = { value = v; priority; seq = t.next_seq; handle = h } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 e else grow t;
  set t t.size e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  h

let mem t h = Hashtbl.mem t.positions h

let remove_at t i =
  let last = t.size - 1 in
  Hashtbl.remove t.positions t.heap.(i).handle;
  if i <> last then begin
    set t i t.heap.(last);
    t.size <- last;
    sift_up t i;
    sift_down t i
  end
  else t.size <- last

let remove t h =
  match Hashtbl.find_opt t.positions h with
  | None -> invalid_arg "Pqueue.remove: dead handle"
  | Some i -> remove_at t i

let update t h ~priority =
  match Hashtbl.find_opt t.positions h with
  | None -> invalid_arg "Pqueue.update: dead handle"
  | Some i ->
    t.heap.(i) <- { (t.heap.(i)) with priority };
    sift_up t i;
    (match Hashtbl.find_opt t.positions h with
    | Some j -> sift_down t j
    | None -> assert false)

let pop_max t =
  if t.size = 0 then None
  else begin
    let e = t.heap.(0) in
    remove_at t 0;
    Some (e.value, e.priority)
  end

let peek_max t = if t.size = 0 then None else Some (t.heap.(0).value, t.heap.(0).priority)

let iter t f =
  for i = 0 to t.size - 1 do
    f t.heap.(i).value
  done

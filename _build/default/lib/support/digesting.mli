(** Content digests for the build system's content-addressed cache.

    A digest is a 128-bit value computed with two independent FNV-1a
    streams; good enough for a simulation where adversarial collisions are
    out of scope, and dependency-free. *)

type t

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

(** [to_hex d] renders the digest as a 32-char lowercase hex string. *)
val to_hex : t -> string

(** [of_string s] digests the full contents of [s]. *)
val of_string : string -> t

(** [concat ds] combines digests in order; used for action keys built from
    (tool id, input digests, flags). *)
val concat : t list -> t

val pp : Format.formatter -> t -> unit

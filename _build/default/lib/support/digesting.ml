type t = { hi : int64; lo : int64 }

let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

let compare a b =
  let c = Int64.compare a.hi b.hi in
  if c <> 0 then c else Int64.compare a.lo b.lo

let hash a = Int64.to_int (Int64.logxor a.hi a.lo)

let fnv ~offset ~prime s =
  let h = ref offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let of_string s =
  {
    hi = fnv ~offset:0xCBF29CE484222325L ~prime:0x100000001B3L s;
    lo = fnv ~offset:0x84222325CBF29CE4L ~prime:0x100000001B3L (s ^ "\x01");
  }

let to_hex d = Printf.sprintf "%016Lx%016Lx" d.hi d.lo

let concat ds =
  let buf = Buffer.create (32 * List.length ds) in
  List.iter (fun d -> Buffer.add_string buf (to_hex d)) ds;
  of_string (Buffer.contents buf)

let pp fmt d = Format.pp_print_string fmt (to_hex d)

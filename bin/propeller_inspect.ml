(* propeller_inspect: binary introspection & profile annotation.

   Project LBR samples onto the final layout:
     dune exec bin/propeller_inspect.exe -- annotate -b 505.mcf --json

   Bloaty-style byte accounting (paper Fig 6):
     dune exec bin/propeller_inspect.exe -- size -b 505.mcf

   Folded-stack hot paths (flamegraph.pl input):
     dune exec bin/propeller_inspect.exe -- paths -b 505.mcf

   Layout diff, baseline vs propeller:
     dune exec bin/propeller_inspect.exe -- diff -b 505.mcf *)

open Cmdliner

type variant = Base | Pm | Po

type ctx = {
  spec : Progen.Spec.t;
  program : Ir.Program.t;
  source : Perfmon.Source.t;
  base : Linker.Binary.t;
  pm : Linker.Binary.t;
  po : Linker.Binary.t;
}

let make_ctx benchmark requests profile_source (common : Cli_common.common) quiet =
  let run_ctx = Cli_common.context_of_common common in
  let spec = Cli_common.lookup_spec ~benchmark ~requests in
  if not quiet then Printf.printf "running pipeline on %s...\n%!" spec.name;
  let program = Progen.Generate.program spec in
  let env = Buildsys.Driver.make_env ~ctx:run_ctx () in
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name:spec.name in
  let config =
    {
      Propeller.Pipeline.default_config with
      profile_run = { Exec.Interp.default_config with requests = spec.requests };
      hugepages = spec.hugepages;
      profile_source;
    }
  in
  let result = Propeller.Pipeline.run ~config ~env ~program ~name:spec.name () in
  Cli_common.export_recorder (Buildsys.Driver.recorder env) ~trace:common.trace
    ~metrics_out:common.metrics_out;
  Cli_common.export_self_profile (Buildsys.Driver.recorder env)
    ~self_profile:common.self_profile ~self_profile_out:common.self_profile_out;
  {
    spec;
    program;
    source = profile_source;
    base = base.Buildsys.Driver.binary;
    pm = result.Propeller.Pipeline.metadata_build.Buildsys.Driver.binary;
    po = Propeller.Pipeline.optimized_binary result;
  }

let binary_of ctx = function Base -> ctx.base | Pm -> ctx.pm | Po -> ctx.po

(* A fresh deterministic profile of [binary] under the benchmark's
   workload — the same collection the pipeline's Phase 3 performs, but
   against whichever image is being inspected. *)
let profile_of ctx binary =
  let image = Exec.Image.build ctx.program binary in
  let run_config =
    { Exec.Interp.default_config with requests = ctx.spec.Progen.Spec.requests }
  in
  (* [ctx] here is the inspection context, not a [Support.Ctx.t]; the
     run stays on the global recorder's "exec:run" span. *)
  match ctx.source with
  | Perfmon.Source.Lbr ->
    let profile = Perfmon.Lbr.create_profile () in
    let c = Perfmon.Lbr.collector_state Perfmon.Lbr.default_config profile in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run_tape image run_config ~drain:(Perfmon.Lbr.consume c)
    in
    profile
  | Perfmon.Source.Sampled ->
    if binary.Linker.Binary.bb_maps = [] then begin
      Printf.eprintf
        "--profile-source sampled needs BB address map metadata to synthesize edge weights; \
         the inspected image has none (use --variant pm or po)\n";
      exit 2
    end;
    let samples = Perfmon.Sampler.create_profile () in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run image run_config
        (Perfmon.Sampler.collector Perfmon.Sampler.default_config samples)
    in
    Propeller.Autofdo.synthesize ~samples ~program:ctx.program ~binary ()

(* Every emitted JSON document round-trips through the parser before it
   leaves the tool; a document we cannot re-read is a bug, not output. *)
let emit ~json ~out ~to_json ~to_text =
  let rendered =
    if json then begin
      let s = Obs.Json.to_string (to_json ()) ^ "\n" in
      match Obs.Json.parse s with
      | Ok _ -> s
      | Error e ->
        Printf.eprintf "internal error: emitted JSON does not parse: %s\n" e;
        exit 1
    end
    else to_text ()
  in
  match out with
  | Some file -> Cli_common.write_file file rendered
  | None -> print_string rendered

let run_annotate benchmark requests profile_source common variant func top json out =
  let ctx = make_ctx benchmark requests profile_source common (json || out <> None) in
  let binary = binary_of ctx variant in
  let profile = profile_of ctx binary in
  let t = Inspect.Annotate.analyze ~binary ~profile in
  emit ~json ~out
    ~to_json:(fun () -> Inspect.Annotate.to_json ?func t)
    ~to_text:(fun () -> Inspect.Annotate.to_text ~top ?func t)

let run_size benchmark requests profile_source common variant top json out =
  let ctx = make_ctx benchmark requests profile_source common (json || out <> None) in
  let t = Inspect.Size.measure (binary_of ctx variant) in
  emit ~json ~out
    ~to_json:(fun () -> Inspect.Size.to_json t)
    ~to_text:(fun () -> Inspect.Size.to_text ~top t)

let run_paths benchmark requests profile_source common variant max_paths max_len json out =
  let ctx = make_ctx benchmark requests profile_source common (json || out <> None) in
  let binary = binary_of ctx variant in
  let profile = profile_of ctx binary in
  let dcfg = Propeller.Dcfg.build_of_blocks ~profile ~binary in
  let paths = Inspect.Paths.extract ~max_paths_per_func:max_paths ~max_len dcfg in
  emit ~json ~out
    ~to_json:(fun () -> Inspect.Paths.to_json paths)
    ~to_text:(fun () -> Inspect.Paths.to_folded paths)

let run_diff benchmark requests profile_source common from_v to_v top json out =
  let ctx = make_ctx benchmark requests profile_source common (json || out <> None) in
  let a = binary_of ctx from_v and b = binary_of ctx to_v in
  let profile = profile_of ctx a in
  let t = Inspect.Diff.compare ~profile a b in
  emit ~json ~out
    ~to_json:(fun () -> Inspect.Diff.to_json t)
    ~to_text:(fun () -> Inspect.Diff.to_text ~top t)

let run_validate files =
  let bad = ref 0 in
  List.iter
    (fun file ->
      match In_channel.with_open_bin file In_channel.input_all with
      | exception Sys_error msg ->
        Printf.eprintf "%s: cannot read: %s\n" file msg;
        incr bad
      | contents -> (
        match Obs.Json.parse contents with
        | Ok _ -> Printf.printf "%s: valid JSON\n" file
        | Error e ->
          Printf.eprintf "%s: invalid JSON: %s\n" file e;
          incr bad))
    files;
  if !bad > 0 then exit 1

let benchmark = Cli_common.benchmark_term

let requests = Cli_common.requests_term

let common = Cli_common.common_term

let profile_source = Cli_common.profile_source_term

(* Shares cli_common's enum plumbing so a typoed --variant gets the
   same "valid values are: ..." usage error as --profile-source. *)
let variant_conv = Cli_common.enum_conv ~what:"variant" [ ("base", Base); ("pm", Pm); ("po", Po) ]

let variant =
  Arg.(
    value
    & opt variant_conv Po
    & info [ "variant" ] ~docv:"VARIANT"
        ~doc:
          "Which linked image to inspect: $(b,base) (PGO+ThinLTO baseline), $(b,pm) \
           (metadata build) or $(b,po) (Propeller-optimized).")

let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the view as JSON.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the view to $(docv) instead of stdout.")

let top n doc = Arg.(value & opt int n & info [ "top" ] ~docv:"N" ~doc)

let func =
  Arg.(
    value
    & opt (some string) None
    & info [ "func" ] ~docv:"NAME" ~doc:"Restrict the view to one function.")

let annotate_cmd =
  Cmd.v
    (Cmd.info "annotate"
       ~doc:
         "Project LBR samples onto the final layout: per-block counts, taken vs fall-through \
          exits and mispredict rates.")
    Term.(
      const run_annotate $ benchmark $ requests $ profile_source $ common $ variant $ func
      $ top 10 "Hottest functions shown in text mode."
      $ json $ out)

let size_cmd =
  Cmd.v
    (Cmd.info "size"
       ~doc:
         "Bloaty-style byte accounting: per-section and per-function bytes, hot/cold split and \
          metadata overhead (paper Fig 6).")
    Term.(
      const run_size $ benchmark $ requests $ profile_source $ common $ variant
      $ top 20 "Largest functions shown in text mode."
      $ json $ out)

let max_paths =
  Arg.(
    value & opt int 10 & info [ "max-paths" ] ~docv:"N" ~doc:"Paths decomposed per function.")

let max_len = Arg.(value & opt int 64 & info [ "max-len" ] ~docv:"N" ~doc:"Blocks per path.")

let paths_cmd =
  Cmd.v
    (Cmd.info "paths"
       ~doc:
         "Reconstruct hot control-flow paths from LBR samples as folded stacks \
          (flamegraph.pl-compatible).")
    Term.(
      const run_paths $ benchmark $ requests $ profile_source $ common $ variant $ max_paths $ max_len $ json
      $ out)

let from_variant =
  Arg.(
    value
    & opt variant_conv Base
    & info [ "from" ] ~docv:"VARIANT" ~doc:"Image A of the comparison (profile source).")

let to_variant =
  Arg.(value & opt variant_conv Po & info [ "to" ] ~docv:"VARIANT" ~doc:"Image B of the comparison.")

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two linked images: block movement between layouts and hot-branch distance \
          histograms.")
    Term.(
      const run_diff $ benchmark $ requests $ profile_source $ common $ from_variant $ to_variant
      $ top 10 "Functions with most moved blocks shown in text mode."
      $ json $ out)

let validate_files =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE" ~doc:"JSON files to validate.")

let validate_cmd =
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Parse each FILE with the Obs.Json parser; exit non-zero on any failure.")
    Term.(const run_validate $ validate_files)

let cmd =
  Cmd.group
    (Cmd.info "propeller_inspect" ~doc:"Binary introspection and profile annotation")
    [ annotate_cmd; size_cmd; paths_cmd; diff_cmd; validate_cmd ]

let () = exit (Cmd.eval cmd)

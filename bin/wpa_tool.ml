(* wpa_tool: the standalone whole-program-analysis tool (the paper's
   [29], create_llvm_prof). Builds the metadata binary of a benchmark,
   profiles it under load, runs Phase 3 and writes the two directive
   files consumed by Phase 4.

   dune exec bin/wpa_tool.exe -- -b clang --cc-out cc_prof.txt --ld-out ld_prof.txt *)

open Cmdliner

let run benchmark requests cc_out ld_out =
  match Progen.Suite.by_name benchmark with
  | None ->
    Printf.eprintf "unknown benchmark %S\n" benchmark;
    exit 2
  | Some spec ->
    let spec = match requests with Some r -> { spec with Progen.Spec.requests = r } | None -> spec in
    let program = Progen.Generate.program spec in
    let env = Buildsys.Driver.make_env () in
    let cg, ld = Propeller.Pipeline.metadata_options in
    let pm =
      Buildsys.Driver.build env ~name:(spec.name ^ ".pm") ~program ~codegen_options:cg
        ~link_options:ld
    in
    Printf.printf "metadata binary: %d bytes (%d bytes of bb_addr_map)\n%!"
      (Linker.Binary.total_size pm.binary)
      (Linker.Binary.size_of_kind pm.binary Objfile.Section.Bb_addr_map);
    let image = Exec.Image.build program pm.binary in
    let profile = Perfmon.Lbr.create_profile () in
    let c = Perfmon.Lbr.collector_state Perfmon.Lbr.default_config profile in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run_tape image
        { Exec.Interp.default_config with requests = spec.requests }
        ~drain:(Perfmon.Lbr.consume c)
    in
    Printf.printf "profile: %d samples, %d records, ~%d raw bytes\n%!" profile.num_samples
      profile.num_records
      (Perfmon.Lbr.raw_bytes Perfmon.Lbr.default_config profile);
    let wpa = Propeller.Wpa.analyze ~profile:(Propeller.Wpa.Lbr profile) ~binary:pm.binary () in
    Printf.printf "WPA: %d hot funcs, DCFG %d blocks / %d edges, score %.1f\n%!" wpa.hot_funcs
      wpa.dcfg_blocks wpa.dcfg_edges wpa.layout_score;
    let write path content =
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Printf.printf "wrote %s\n%!" path
    in
    write cc_out (Codegen.Directive.to_text wpa.plans);
    write ld_out (Linker.Orderfile.to_text wpa.ordering)

let benchmark =
  Arg.(value & opt string "505.mcf" & info [ "b"; "benchmark" ] ~doc:"Benchmark name.")

let requests =
  Arg.(value & opt (some int) None & info [ "r"; "requests" ] ~doc:"Profiling requests.")

let cc_out = Arg.(value & opt string "cc_prof.txt" & info [ "cc-out" ] ~doc:"Directives file.")

let ld_out = Arg.(value & opt string "ld_prof.txt" & info [ "ld-out" ] ~doc:"Ordering file.")

let cmd =
  Cmd.v
    (Cmd.info "wpa_tool" ~doc:"Standalone whole program analysis (Phase 3)")
    Term.(const run $ benchmark $ requests $ cc_out $ ld_out)

let () = exit (Cmd.eval cmd)

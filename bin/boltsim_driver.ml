(* boltsim_driver: run the BOLT-style monolithic post-link optimizer on
   a benchmark and report its costs and result.

   dune exec bin/boltsim_driver.exe -- -b clang --lite *)

open Cmdliner

let run benchmark requests lite =
  match Progen.Suite.by_name benchmark with
  | None ->
    Printf.eprintf "unknown benchmark %S\n" benchmark;
    exit 2
  | Some spec ->
    let spec = match requests with Some r -> { spec with Progen.Spec.requests = r } | None -> spec in
    let program = Progen.Generate.program spec in
    let env = Buildsys.Driver.make_env () in
    let bm =
      Buildsys.Driver.build env ~name:(spec.name ^ ".bm") ~program
        ~codegen_options:Codegen.default_options
        ~link_options:{ Linker.Link.default_options with emit_relocs = true }
    in
    Printf.printf "BM binary (with relocations): %d bytes\n%!"
      (Linker.Binary.total_size bm.binary);
    let image = Exec.Image.build program bm.binary in
    let profile = Perfmon.Lbr.create_profile () in
    let c = Perfmon.Lbr.collector_state Perfmon.Lbr.default_config profile in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run_tape image
        { Exec.Interp.default_config with requests = spec.requests }
        ~drain:(Perfmon.Lbr.consume c)
    in
    let is_asm f =
      match Ir.Program.find_func program f with
      | Some fn -> fn.Ir.Func.attrs.has_inline_asm
      | None -> false
    in
    let hazards =
      { Boltsim.Driver.rseq = spec.hazards.has_rseq; fips_check = spec.hazards.has_fips_check }
    in
    let options = if lite then Boltsim.Driver.fast_options else Boltsim.Driver.perf_options in
    let r =
      Boltsim.Driver.optimize ~options ~profile ~binary:bm.binary ~is_asm ~hazards
        ~name:spec.name ()
    in
    Printf.printf "perf2bolt: %.1fs, peak %.2f GB (modelled)\n" r.conversion_seconds
      (float_of_int r.conversion_mem_bytes /. 1.0e9);
    Printf.printf "llvm-bolt: %.1fs, peak %.2f GB; rewrote %d funcs, skipped %d\n"
      r.optimize_seconds
      (float_of_int r.optimize_mem_bytes /. 1.0e9)
      r.rewritten_funcs r.skipped_funcs;
    Printf.printf "BO binary: %d bytes (%.0f%% of BM)\n"
      (Linker.Binary.total_size r.binary)
      (100.0
      *. float_of_int (Linker.Binary.total_size r.binary)
      /. float_of_int (Linker.Binary.total_size bm.binary));
    if r.startup_ok then print_endline "startup: OK"
    else print_endline "startup: CRASH (rseq/FIPS integrity checks, paper 5.8)"

let benchmark =
  Arg.(value & opt string "505.mcf" & info [ "b"; "benchmark" ] ~doc:"Benchmark name.")

let requests =
  Arg.(value & opt (some int) None & info [ "r"; "requests" ] ~doc:"Profiling requests.")

let lite = Arg.(value & flag & info [ "lite" ] ~doc:"Lightning-BOLT selective processing.")

let cmd =
  Cmd.v
    (Cmd.info "boltsim_driver" ~doc:"Monolithic post-link optimizer baseline")
    Term.(const run $ benchmark $ requests $ lite)

let () = exit (Cmd.eval cmd)

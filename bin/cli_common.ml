(* Shared CLI plumbing for the propeller tools.

   Every executable in bin/ parses --jobs, --seed, --faults, --trace
   and --metrics-out through the terms below, so the flags spell and
   behave identically across propeller_driver, propeller_stat and
   propeller_inspect; benchmark lookup, output writing and recorder
   export share one implementation instead of three copies. *)

open Cmdliner

let jobs_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domain pool width for per-function/per-unit fan-out (default \
           \\$(b,PROPELLER_JOBS) or 1). Outputs are byte-identical for any N.")

let seed_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Override the fault plan's seed (see $(b,--faults)). The same seed and plan \
           replay the same faults, byte-identically. Inert without $(b,--faults).")

let faults_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Arm seeded fault injection. $(docv) is a comma-separated key=value spec, e.g. \
           $(b,seed=7,action=0.2,corrupt=0.1,straggle=0.1,shard-drop=0.05). Keys: seed, \
           action, persist, straggle, straggle-factor, corrupt, shard-drop, shards, \
           attempts, backoff, backoff-mult.")

let trace_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome trace-event JSON of the run (load in Perfetto / chrome://tracing).")

let metrics_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Write the metrics report as JSON to $(docv).")

let self_profile_term =
  Arg.(
    value
    & flag
    & info [ "self-profile" ]
        ~doc:
          "Record host wall-clock and GC deltas per span and print the tool's own hotspot \
           table after the run. Never perturbs simulated metrics or image digests.")

let self_profile_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "self-profile-out" ] ~docv:"FILE"
        ~doc:
          "Write the self-profile (per-path host seconds, allocation, GC counts) as JSON \
           to $(docv). Implies $(b,--self-profile).")

(* Enum-valued flag converter shared by every tool: an unknown value is
   a usage error (exit 124 via Cmdliner) that names each valid value,
   never a bare exception. Used for --variant and --profile-source. *)
let enum_conv ~what values =
  let alts = String.concat ", " (List.map fst values) in
  let parse s =
    match List.assoc_opt s values with
    | Some v -> Ok v
    | None ->
      Error (`Msg (Printf.sprintf "invalid %s %S; valid values are: %s" what s alts))
  in
  let print fmt v =
    match List.find_opt (fun (_, v') -> v' = v) values with
    | Some (name, _) -> Format.pp_print_string fmt name
    | None -> Format.pp_print_string fmt "<unknown>"
  in
  Arg.conv (parse, print)

let profile_source_conv =
  enum_conv ~what:"profile source"
    (List.map (fun s -> (Perfmon.Source.to_string s, s)) Perfmon.Source.all)

let profile_source_term =
  Arg.(
    value
    & opt profile_source_conv Perfmon.Source.Lbr
    & info [ "profile-source" ] ~docv:"SOURCE"
        ~doc:
          "Where the layout profile comes from: $(b,lbr) (hardware branch records, the \
           paper's path) or $(b,sampled) (portable software stack sampler; CFG edge \
           weights are synthesized AutoFDO-style, no mispredict bits).")

(* String-valued on purpose: Wpa.config stores the policy name and
   resolves it against the registry at use, and the registry is the
   single source of truth for what is valid. *)
let layout_policy_conv =
  enum_conv ~what:"layout policy" (List.map (fun n -> (n, n)) (Layout.Policy.names ()))

let layout_policy_term =
  Arg.(
    value
    & opt layout_policy_conv "exttsp"
    & info [ "layout-policy" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf
             "Block-layout policy for WPA. Valid values: %s. The default $(b,exttsp) is the \
              paper's Ext-TSP; the others are the pluggable alternatives the layout-search \
              harness tournaments over."
             (String.concat ", " (Layout.Policy.names ()))))

let benchmark_term =
  Arg.(value & opt string "505.mcf" & info [ "b"; "benchmark" ] ~doc:"Benchmark name (Table 2).")

let requests_term =
  Arg.(value & opt (some int) None & info [ "r"; "requests" ] ~doc:"Workload requests override.")

(* The shared flags bundled, for tools whose subcommands all take them
   (propeller_inspect). *)
type common = {
  jobs : int option;
  seed : int option;
  faults : string option;
  trace : string option;
  metrics_out : string option;
  self_profile : bool;
  self_profile_out : string option;
}

let common_term =
  let make jobs seed faults trace metrics_out self_profile self_profile_out =
    { jobs; seed; faults; trace; metrics_out; self_profile; self_profile_out }
  in
  Term.(
    const make $ jobs_term $ seed_term $ faults_term $ trace_term $ metrics_out_term
    $ self_profile_term $ self_profile_out_term)

let write_file file contents =
  match open_out file with
  | oc ->
    output_string oc contents;
    close_out oc
  | exception Sys_error msg ->
    Printf.eprintf "cannot write %s: %s\n" file msg;
    exit 1

(* Resolve a benchmark name (exit 2 with the known list on a miss) and
   apply the --requests override. *)
let lookup_spec ~benchmark ~requests =
  match Progen.Suite.by_name benchmark with
  | None ->
    Printf.eprintf "unknown benchmark %S; known: %s\n" benchmark
      (String.concat ", " (List.map (fun (s : Progen.Spec.t) -> s.name) Progen.Suite.all));
    exit 2
  | Some spec -> (
    match requests with
    | Some r -> { spec with Progen.Spec.requests = r }
    | None -> spec)

(* Turn the shared flags into the run's execution context: validate and
   apply --jobs to the global pool, parse --faults (exit 2 on a bad
   spec), and let --seed override the plan's seed. *)
let context ?(jobs = None) ?(seed = None) ?(faults = None) ?(self_profile = false)
    ?(self_profile_out = None) () =
  (match jobs with
  | Some j when j < 1 ->
    Printf.eprintf "--jobs: expected a positive pool width, got %d\n" j;
    exit 2
  | Some j -> Support.Pool.set_default_jobs j
  | None -> ());
  let plan =
    match faults with
    | None -> None
    | Some spec -> (
      match Faultsim.Plan.of_spec spec with
      | Error e ->
        Printf.eprintf "--faults: %s\n" e;
        exit 2
      | Ok p -> (
        match seed with
        | Some s -> Some { p with Faultsim.Plan.seed = s }
        | None -> Some p))
  in
  let ctx = Support.Ctx.create ?faults:plan () in
  if self_profile || self_profile_out <> None then
    Obs.Recorder.enable_self_profile ctx.Support.Ctx.recorder;
  ctx

let context_of_common c =
  context ~jobs:c.jobs ~seed:c.seed ~faults:c.faults ~self_profile:c.self_profile
    ~self_profile_out:c.self_profile_out ()

(* Export the run's recorder as the shared flags request. The trace is
   re-parsed with our own JSON parser before it leaves the tool, so the
   smoke scripts need no external JSON tooling. *)
let export_recorder recorder ~trace ~metrics_out =
  (match trace with
  | None -> ()
  | Some file ->
    let contents = Obs.Recorder.trace_json recorder in
    write_file file contents;
    (match Obs.Json.parse contents with
    | Ok _ ->
      Printf.printf "trace: %d events -> %s (valid JSON)\n"
        (Obs.Trace.num_events (Obs.Recorder.trace recorder))
        file
    | Error e ->
      Printf.eprintf "trace: INVALID JSON written to %s: %s\n" file e;
      exit 1));
  match metrics_out with
  | None -> ()
  | Some file ->
    write_file file (Obs.Recorder.metrics_json recorder);
    Printf.printf "metrics: %s\n" file

(* Export / render the self-profile as the shared flags request. Same
   validate-before-leaving discipline as the trace export. *)
let export_self_profile recorder ~self_profile ~self_profile_out =
  if self_profile || self_profile_out <> None then begin
    let sp = Obs.Recorder.selfprof recorder in
    (match self_profile_out with
    | None -> ()
    | Some file ->
      let contents = Obs.Json.to_string (Obs.Selfprof.to_json sp) ^ "\n" in
      write_file file contents;
      (match Obs.Json.parse contents with
      | Ok _ -> Printf.printf "self-profile: %s (valid JSON)\n" file
      | Error e ->
        Printf.eprintf "self-profile: INVALID JSON written to %s: %s\n" file e;
        exit 1));
    let hotspots = Obs.Selfprof.hotspots ~limit:10 sp in
    if hotspots <> [] then begin
      print_endline "self-profile hotspots (host time, coordinator domain):";
      print_string (Obs.Selfprof.render_hotspots hotspots)
    end
  end

(* Run [f] under the flight recorder's crash guard: on any exception the
   recorder's last-K event ring is dumped to stderr before the exception
   propagates, so a crash report carries the run's final moments. *)
let with_flight_guard recorder f =
  try f ()
  with exn ->
    let bt = Printexc.get_raw_backtrace () in
    prerr_string (Obs.Recorder.flight_dump recorder);
    Printexc.raise_with_backtrace exn bt

(* Dump the flight ring when a run degraded (fault path taken): the
   events leading up to the degradation are exactly what a postmortem
   wants, and the dump is deterministic under replay. *)
let flight_dump_on_degradation recorder (f : Buildsys.Driver.fault_stats) =
  if f.Buildsys.Driver.degraded > 0 then print_string (Obs.Recorder.flight_dump recorder)

(* Sum the fault accounting of several builds (a pipeline run holds a
   metadata build and an optimized build). *)
let sum_fault_stats (a : Buildsys.Driver.fault_stats) (b : Buildsys.Driver.fault_stats) =
  {
    Buildsys.Driver.injected = a.injected + b.injected;
    retried = a.retried + b.retried;
    degraded = a.degraded + b.degraded;
    fallbacks = a.fallbacks + b.fallbacks;
    corrupt_evicted = a.corrupt_evicted + b.corrupt_evicted;
    stragglers = a.stragglers + b.stragglers;
    speculated = a.speculated + b.speculated;
    backoff_seconds = a.backoff_seconds +. b.backoff_seconds;
  }

(* One-line resilience summary of a build's fault accounting; printed
   only when a plan was armed so fault-free output stays unchanged. *)
let resilience_line (f : Buildsys.Driver.fault_stats) ~shards_dropped ~dropped_hot_funcs =
  Printf.sprintf
    "resilience: %d injected (%d retried, %d cache-corrupt, %d stragglers/%d speculated, %d \
     shards dropped), %d degraded (%d fallback objects, %d hot funcs on baseline layout)"
    (f.Buildsys.Driver.injected + shards_dropped)
    f.Buildsys.Driver.retried f.Buildsys.Driver.corrupt_evicted f.Buildsys.Driver.stragglers
    f.Buildsys.Driver.speculated shards_dropped
    (f.Buildsys.Driver.degraded + dropped_hot_funcs)
    f.Buildsys.Driver.fallbacks dropped_hot_funcs

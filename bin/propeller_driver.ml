(* propeller_driver: run the full Propeller pipeline on a named
   benchmark and report sizes, phase costs and simulated performance.

   dune exec bin/propeller_driver.exe -- --benchmark clang --requests 200
   dune exec bin/propeller_driver.exe -- -b 505.mcf --faults seed=7,action=0.2 *)

open Cmdliner

let run benchmark requests profile_source layout_policy interproc no_split hugepages prefetch
    jobs seed faults verbose trace_file metrics metrics_out self_profile self_profile_out =
  let ctx = Cli_common.context ~jobs ~seed ~faults ~self_profile ~self_profile_out () in
  Cli_common.with_flight_guard ctx.Support.Ctx.recorder @@ fun () ->
  let spec = Cli_common.lookup_spec ~benchmark ~requests in
  Printf.printf "generating %s (scale %d:1)...\n%!" spec.name spec.scale;
  let program = Progen.Generate.program spec in
  Printf.printf "  %d funcs, %d blocks, %d code bytes\n%!" (Ir.Program.num_funcs program)
    (Ir.Program.num_blocks program) (Ir.Program.code_bytes program);
  let env = Buildsys.Driver.make_env ~ctx () in
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name:spec.name in
  let config =
    {
      Propeller.Pipeline.default_config with
      profile_run = { Exec.Interp.default_config with requests = spec.requests };
      hugepages = hugepages || spec.hugepages;
      prefetch;
      profile_source;
      wpa =
        {
          Propeller.Wpa.default_config with
          mode = (if interproc then Propeller.Wpa.Interproc else Propeller.Wpa.Intra);
          layout_policy;
          split_functions = not no_split;
        };
    }
  in
  let result = Propeller.Pipeline.run ~config ~env ~program ~name:spec.name () in
  Printf.printf "phase 2 (metadata build): %.1fs wall\n" result.times.metadata_build_s;
  Printf.printf "phase 3 (profile + WPA, source %s): %d samples, %d hot funcs, %.1fs, peak %.2f GB\n"
    (Perfmon.Source.to_string result.source) result.profile.num_samples result.wpa.hot_funcs
    result.times.conversion_s
    (float_of_int result.wpa.peak_mem_bytes /. 1.0e9);
  (match result.samples with
  | Some sw ->
    Printf.printf "  software sampler: %d samples, %d frames, %d distinct leaf PCs\n"
      sw.Perfmon.Sampler.num_samples sw.Perfmon.Sampler.num_frames
      (Perfmon.Sampler.distinct_leaves sw)
  | None -> ());
  Printf.printf "phase 4 (relink): %d/%d objects re-generated, %.1fs wall\n"
    result.hot_objects result.total_objects result.times.optimize_build_s;
  Printf.printf "layout cache: %d hits, %d misses (jobs=%d)\n"
    result.wpa.layout_cache_hits result.wpa.layout_cache_misses
    (Support.Pool.jobs (Buildsys.Driver.pool env));
  Printf.printf "image digest: %s\n"
    (Support.Digesting.to_hex
       (Linker.Binary.image_digest (Propeller.Pipeline.optimized_binary result)));
  let fault_totals =
    Cli_common.sum_fault_stats result.metadata_build.faults result.optimized_build.faults
  in
  if Support.Ctx.faults_active ctx then begin
    print_endline
      (Cli_common.resilience_line fault_totals ~shards_dropped:result.wpa.shards_dropped
         ~dropped_hot_funcs:result.wpa.dropped_hot_funcs);
    Cli_common.flight_dump_on_degradation ctx.Support.Ctx.recorder fault_totals
  end;
  (match result.prefetch with
  | Some p ->
    Printf.printf "prefetch (3.5): %d insertion sites covering %d/%d sampled misses\n"
      (List.length p.sites) p.covered_misses p.sampled_misses
  | None -> ());
  if verbose then begin
    print_endline "--- cc_prof.txt ---";
    print_string (Codegen.Directive.to_text result.wpa.plans);
    print_endline "--- ld_prof.txt ---";
    List.iter print_endline result.wpa.ordering
  end;
  let measure run_name binary =
    let image = Exec.Image.build program binary in
    let core =
      Uarch.Core.create { Uarch.Core.default_config with hugepages = config.hugepages }
    in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run_tape ~ctx image
        { Exec.Interp.default_config with requests = spec.requests }
        ~drain:(Uarch.Core.consume core)
    in
    Uarch.Core.publish ~ctx ~name:run_name core;
    Uarch.Core.counters core
  in
  let cb = measure "base" base.binary in
  let cp = measure "propeller" (Propeller.Pipeline.optimized_binary result) in
  Printf.printf "performance: baseline %.3e cycles -> propeller %.3e cycles (%+.2f%%)\n"
    cb.cycles cp.cycles
    ((cb.cycles -. cp.cycles) /. cb.cycles *. 100.0);
  Printf.printf "counters vs baseline: L1i %+.0f%%  iTLB %+.0f%%  taken-branches %+.0f%%\n"
    (Support.Stats.ratio_pct (float_of_int cp.i1_l1i_miss) (float_of_int cb.i1_l1i_miss))
    (Support.Stats.ratio_pct (float_of_int cp.t1_itlb_miss) (float_of_int cb.t1_itlb_miss))
    (Support.Stats.ratio_pct
       (float_of_int cp.b2_taken_branches)
       (float_of_int cb.b2_taken_branches));
  let recorder = Buildsys.Driver.recorder env in
  if metrics then print_string (Obs.Recorder.metrics_report recorder);
  Cli_common.export_recorder recorder ~trace:trace_file ~metrics_out;
  Cli_common.export_self_profile recorder ~self_profile ~self_profile_out

let interproc =
  Arg.(value & flag & info [ "interproc" ] ~doc:"Inter-procedural layout (paper 4.7).")

let no_split = Arg.(value & flag & info [ "no-split" ] ~doc:"Disable hot/cold splitting.")

let hugepages = Arg.(value & flag & info [ "hugepages" ] ~doc:"Map text with 2M pages.")

let prefetch =
  Arg.(value & flag & info [ "prefetch" ] ~doc:"Software prefetch insertion (paper 3.5).")

let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Dump cc_prof/ld_prof.")

let metrics =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Print the metrics report (counters/gauges/histograms).")

let cmd =
  Cmd.v
    (Cmd.info "propeller_driver" ~doc:"Profile guided, relinking optimizer (end to end)")
    Term.(
      const run $ Cli_common.benchmark_term $ Cli_common.requests_term
      $ Cli_common.profile_source_term $ Cli_common.layout_policy_term $ interproc $ no_split
      $ hugepages $ prefetch $ Cli_common.jobs_term $ Cli_common.seed_term
      $ Cli_common.faults_term $ verbose $ Cli_common.trace_term $ metrics
      $ Cli_common.metrics_out_term $ Cli_common.self_profile_term
      $ Cli_common.self_profile_out_term)

let () = exit (Cmd.eval cmd)

(* propeller_stat: profile-quality + layout-quality diagnostics.

   Default command — run the pipeline on a benchmark and judge it:
     dune exec bin/propeller_stat.exe -- -b 505.mcf --json

   Diff two bench JSON files (exit 1 on regression):
     dune exec bin/propeller_stat.exe -- diff baseline.json current.json *)

open Cmdliner

let log2i v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

(* Pressure-preserving measurement, as the bench harness does: TLB pages
   shrink with the program's generation scale (DESIGN.md 6). *)
let measure ~(spec : Progen.Spec.t) ~ctx ~run_name program binary =
  let image = Exec.Image.build program binary in
  let core =
    Uarch.Core.create
      {
        Uarch.Core.default_config with
        hugepages = spec.hugepages;
        page_scale_bits = log2i spec.scale;
      }
  in
  let (_ : Exec.Interp.stats) =
    Exec.Interp.run_tape ~ctx image
      { Exec.Interp.default_config with requests = spec.requests }
      ~drain:(Uarch.Core.consume core)
  in
  Uarch.Core.publish ~ctx ~name:run_name core;
  Uarch.Core.counters core

let run_stat benchmark requests profile_source layout_policy jobs seed faults json out trace
    metrics_out self_profile self_profile_out =
  let ctx = Cli_common.context ~jobs ~seed ~faults ~self_profile ~self_profile_out () in
  Cli_common.with_flight_guard ctx.Support.Ctx.recorder @@ fun () ->
  let spec = Cli_common.lookup_spec ~benchmark ~requests in
  begin
    if not json then Printf.printf "running pipeline on %s...\n%!" spec.name;
    let program = Progen.Generate.program spec in
    let env = Buildsys.Driver.make_env ~ctx () in
    let base = Propeller.Pipeline.baseline_build ~env ~program ~name:spec.name in
    let config =
      {
        Propeller.Pipeline.default_config with
        profile_run = { Exec.Interp.default_config with requests = spec.requests };
        hugepages = spec.hugepages;
        profile_source;
        wpa = { Propeller.Wpa.default_config with layout_policy };
      }
    in
    let result = Propeller.Pipeline.run ~config ~env ~program ~name:spec.name () in
    let recorder = Buildsys.Driver.recorder env in
    let cb = measure ~spec ~ctx ~run_name:"base" program base.binary in
    let cp =
      measure ~spec ~ctx ~run_name:"propeller" program
        (Propeller.Pipeline.optimized_binary result)
    in
    let report = Diagnostics.Report.analyze ~name:spec.name ~counters:(cb, cp) ~result () in
    Diagnostics.Report.publish ~ctx report;
    if not json then
      Printf.printf
        "relink caches: layout %d hits / %d misses; objects %d hits / %d misses (jobs=%d)\n"
        result.wpa.layout_cache_hits result.wpa.layout_cache_misses
        (Buildsys.Cache.hits env.Buildsys.Driver.obj_cache)
        (Buildsys.Cache.misses env.Buildsys.Driver.obj_cache)
        (Support.Pool.jobs (Buildsys.Driver.pool env));
    (if Support.Ctx.faults_active ctx && not json then begin
       let fault_totals =
         Cli_common.sum_fault_stats result.metadata_build.faults
           result.optimized_build.faults
       in
       print_endline
         (Cli_common.resilience_line fault_totals ~shards_dropped:result.wpa.shards_dropped
            ~dropped_hot_funcs:result.wpa.dropped_hot_funcs);
       Cli_common.flight_dump_on_degradation recorder fault_totals
     end);
    let rendered =
      if json then Obs.Json.to_string (Diagnostics.Report.to_json report) ^ "\n"
      else Diagnostics.Report.to_text report
    in
    (match out with
    | Some file ->
      Cli_common.write_file file rendered;
      Printf.printf "diagnostics: %s\n" file
    | None -> print_string rendered);
    Cli_common.export_recorder recorder ~trace ~metrics_out;
    Cli_common.export_self_profile recorder ~self_profile ~self_profile_out
  end

let read_json label file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error msg ->
    Printf.eprintf "cannot read %s %s: %s\n" label file msg;
    exit 2
  | contents -> (
    match Obs.Json.parse contents with
    | Ok v -> v
    | Error e ->
      Printf.eprintf "%s %s: invalid JSON: %s\n" label file e;
      exit 2)

let run_diff baseline_file current_file threshold quiet =
  let baseline = read_json "baseline" baseline_file in
  let current = read_json "current" current_file in
  match Diagnostics.Compare.compare ~threshold_pct:threshold ~baseline ~current () with
  | Error e ->
    Printf.eprintf "diff error: %s\n" e;
    exit 2
  | Ok outcome ->
    if not quiet then begin
      (* Verdict lines are the machine-parseable product and stay on
         stdout; NOTE/informational lines (schema skew, gained metrics)
         go to stderr so piped stdout parses line by line. *)
      print_string (Diagnostics.Compare.render_verdicts outcome);
      prerr_string (Diagnostics.Compare.render_notes outcome)
    end;
    let regs = Diagnostics.Compare.regressions outcome in
    if Diagnostics.Compare.ok outcome then
      Printf.printf "OK: %d judged metrics within %.1f%% of baseline\n"
        (List.length outcome.Diagnostics.Compare.verdicts)
        threshold
    else begin
      Printf.printf "FAIL: %d regression(s), %d missing metric(s) (threshold %.1f%%)\n"
        (List.length regs)
        (List.length outcome.Diagnostics.Compare.missing)
        threshold;
      exit 1
    end

(* [top]: rank the tool's own hotspots — where does *our* host time and
   allocation go while optimizing a benchmark? Reads a saved
   --self-profile-out JSON when given, otherwise runs the pipeline with
   self-profiling on and ranks that run. *)
let run_top from benchmark requests jobs limit folded =
  match from with
  | Some file -> (
    let v = read_json "self-profile" file in
    match Obs.Selfprof.rows_of_json v with
    | Error e ->
      Printf.eprintf "self-profile %s: %s\n" file e;
      exit 2
    | Ok rows ->
      if folded then
        print_string
          (Obs.Folded.to_string
             (List.map
                (fun (r : Obs.Selfprof.row) -> (r.path, Obs.Folded.micros r.self_host_s))
                rows))
      else
        print_string
          (Obs.Selfprof.render_hotspots (Obs.Selfprof.hotspots_of_rows ~limit rows)))
  | None ->
    let ctx = Cli_common.context ~jobs ~self_profile:true () in
    let recorder = ctx.Support.Ctx.recorder in
    let spec = Cli_common.lookup_spec ~benchmark ~requests in
    Printf.printf "profiling ourselves on %s...\n%!" spec.name;
    let program = Progen.Generate.program spec in
    let env = Buildsys.Driver.make_env ~ctx () in
    let config =
      {
        Propeller.Pipeline.default_config with
        profile_run = { Exec.Interp.default_config with requests = spec.requests };
        hugepages = spec.hugepages;
      }
    in
    let (_ : Propeller.Pipeline.result) =
      Propeller.Pipeline.run ~config ~env ~program ~name:spec.name ()
    in
    if folded then print_string (Obs.Selfprof.folded (Obs.Recorder.selfprof recorder))
    else begin
      print_endline "self-profile hotspots (host time, coordinator domain):";
      print_string
        (Obs.Selfprof.render_hotspots
           (Obs.Selfprof.hotspots ~limit (Obs.Recorder.selfprof recorder)))
    end

(* [fidelity]: the LBR-vs-sampled gap experiment — both pipelines over
   one workload, one shared baseline, the deltas as one record. *)
let run_fidelity benchmark requests jobs seed faults json out =
  let ctx = Cli_common.context ~jobs ~seed ~faults () in
  Cli_common.with_flight_guard ctx.Support.Ctx.recorder @@ fun () ->
  let spec = Cli_common.lookup_spec ~benchmark ~requests in
  if not json then
    Printf.printf "measuring profile-source fidelity on %s...\n%!" spec.name;
  let program = Progen.Generate.program spec in
  let pipeline =
    {
      Propeller.Pipeline.default_config with
      profile_run = { Exec.Interp.default_config with requests = spec.requests };
      hugepages = spec.hugepages;
    }
  in
  let core =
    {
      Uarch.Core.default_config with
      hugepages = spec.hugepages;
      page_scale_bits = log2i spec.scale;
    }
  in
  let fid =
    Diagnostics.Fidelity.analyze ~pipeline ~core ~requests:spec.requests ~ctx ~program
      ~name:spec.name ()
  in
  let rendered =
    if json then begin
      let s = Obs.Json.to_string (Diagnostics.Fidelity.to_json fid) ^ "\n" in
      match Obs.Json.parse s with
      | Ok _ -> s
      | Error e ->
        Printf.eprintf "internal error: fidelity JSON does not parse: %s\n" e;
        exit 1
    end
    else Diagnostics.Fidelity.to_text fid
  in
  match out with
  | Some file ->
    Cli_common.write_file file rendered;
    Printf.printf "fidelity: %s\n" file
  | None -> print_string rendered

(* [search]: the cycle-fitness layout-policy tournament — candidates are
   relinked and executed through exec+uarch, fitness is simulated
   cycles, the report quantifies where the Ext-TSP objective and the
   machine disagree. *)
let run_search benchmark requests budget search_seed jobs json out trace metrics_out =
  let ctx = Cli_common.context ~jobs () in
  Cli_common.with_flight_guard ctx.Support.Ctx.recorder @@ fun () ->
  let spec = Cli_common.lookup_spec ~benchmark ~requests in
  if not json then
    Printf.printf "searching layout policies on %s (budget %d)...\n%!" spec.name budget;
  let program = Progen.Generate.program spec in
  let pipeline =
    {
      Propeller.Pipeline.default_config with
      profile_run = { Exec.Interp.default_config with requests = spec.requests };
      hugepages = spec.hugepages;
    }
  in
  let core =
    {
      Uarch.Core.default_config with
      hugepages = spec.hugepages;
      page_scale_bits = log2i spec.scale;
    }
  in
  let res =
    Diagnostics.Lsearch.analyze ~pipeline ~core ~requests:spec.requests ~budget
      ~seed:search_seed ~ctx ~program ~name:spec.name ()
  in
  let rendered =
    if json then begin
      let s = Obs.Json.to_string (Diagnostics.Lsearch.to_json res) ^ "\n" in
      match Obs.Json.parse s with
      | Ok _ -> s
      | Error e ->
        Printf.eprintf "internal error: search JSON does not parse: %s\n" e;
        exit 1
    end
    else Diagnostics.Lsearch.to_text res
  in
  (match out with
  | Some file ->
    Cli_common.write_file file rendered;
    Printf.printf "search: %s\n" file
  | None -> print_string rendered);
  Cli_common.export_recorder ctx.Support.Ctx.recorder ~trace ~metrics_out

let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the diagnostics record as JSON.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the report to $(docv) instead of stdout.")

let run_term =
  Term.(
    const run_stat $ Cli_common.benchmark_term $ Cli_common.requests_term
    $ Cli_common.profile_source_term $ Cli_common.layout_policy_term $ Cli_common.jobs_term
    $ Cli_common.seed_term $ Cli_common.faults_term $ json $ out $ Cli_common.trace_term
    $ Cli_common.metrics_out_term $ Cli_common.self_profile_term
    $ Cli_common.self_profile_out_term)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run the pipeline on one benchmark and report profile/layout diagnostics.")
    run_term

let baseline_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc:"Baseline bench JSON.")

let current_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"CURRENT" ~doc:"Current bench JSON.")

let threshold =
  Arg.(
    value
    & opt float 5.0
    & info [ "t"; "threshold" ] ~docv:"PCT"
        ~doc:"Regression threshold in percent (relative, floored at 1.0 absolute).")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the final verdict.")

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Diff two bench JSON files; exit 1 when a judged metric regresses past the threshold \
          or goes missing.")
    Term.(const run_diff $ baseline_arg $ current_arg $ threshold $ quiet)

let from_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "from" ] ~docv:"FILE"
        ~doc:"Rank a saved $(b,--self-profile-out) JSON instead of running the pipeline.")

let limit_arg =
  Arg.(value & opt int 10 & info [ "n"; "limit" ] ~docv:"N" ~doc:"Rows in the hotspot table.")

let folded_arg =
  Arg.(
    value
    & flag
    & info [ "folded" ]
        ~doc:
          "Print flamegraph-compatible folded stacks (one $(b,path weight) line per span \
           path, weight in self microseconds) instead of the table.")

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Rank the optimizer's own hotspots: host seconds and allocation per span path, \
          from a saved self-profile or a fresh self-profiled run.")
    Term.(
      const run_top $ from_arg $ Cli_common.benchmark_term $ Cli_common.requests_term
      $ Cli_common.jobs_term $ limit_arg $ folded_arg)

let fidelity_cmd =
  Cmd.v
    (Cmd.info "fidelity"
       ~doc:
         "Measure the LBR-vs-sampled profile fidelity gap on one benchmark: weight \
          correlation, achieved fall-through rate, Ext-TSP score and final simulated \
          cycles under each profile source.")
    Term.(
      const run_fidelity $ Cli_common.benchmark_term $ Cli_common.requests_term
      $ Cli_common.jobs_term $ Cli_common.seed_term $ Cli_common.faults_term $ json $ out)

let budget_arg =
  Arg.(
    value
    & opt int 12
    & info [ "budget" ] ~docv:"N"
        ~doc:"Evaluation budget: how many candidate layouts are relinked and executed.")

let search_seed_arg =
  Arg.(
    value
    & opt int 1
    & info [ "search-seed" ] ~docv:"N"
        ~doc:"Tournament seed; the same budget and seed reproduce the same winner.")

let search_cmd =
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Tournament-search layout policies with simulated cycles as fitness: each candidate \
          is relinked and executed through the uarch model, and the report quantifies the \
          Ext-TSP-score-vs-cycles gap.")
    Term.(
      const run_search $ Cli_common.benchmark_term $ Cli_common.requests_term $ budget_arg
      $ search_seed_arg $ Cli_common.jobs_term $ json $ out $ Cli_common.trace_term
      $ Cli_common.metrics_out_term)

let cmd =
  Cmd.group ~default:run_term
    (Cmd.info "propeller_stat"
       ~doc:"Profile-quality diagnostics and bench regression comparison")
    [ run_cmd; diff_cmd; top_cmd; fidelity_cmd; search_cmd ]

let () = exit (Cmd.eval cmd)

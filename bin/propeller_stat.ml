(* propeller_stat: profile-quality + layout-quality diagnostics.

   Default command — run the pipeline on a benchmark and judge it:
     dune exec bin/propeller_stat.exe -- -b 505.mcf --json

   Diff two bench JSON files (exit 1 on regression):
     dune exec bin/propeller_stat.exe -- diff baseline.json current.json *)

open Cmdliner

let log2i v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

(* Pressure-preserving measurement, as the bench harness does: TLB pages
   shrink with the program's generation scale (DESIGN.md 6). *)
let measure ~(spec : Progen.Spec.t) ~ctx ~run_name program binary =
  let image = Exec.Image.build program binary in
  let core =
    Uarch.Core.create
      {
        Uarch.Core.default_config with
        hugepages = spec.hugepages;
        page_scale_bits = log2i spec.scale;
      }
  in
  let (_ : Exec.Interp.stats) =
    Exec.Interp.run image
      { Exec.Interp.default_config with requests = spec.requests }
      (Uarch.Core.sink core)
  in
  Uarch.Core.publish ~ctx ~name:run_name core;
  Uarch.Core.counters core

let run_stat benchmark requests jobs seed faults json out trace metrics_out =
  let ctx = Cli_common.context ~jobs ~seed ~faults () in
  let spec = Cli_common.lookup_spec ~benchmark ~requests in
  begin
    if not json then Printf.printf "running pipeline on %s...\n%!" spec.name;
    let program = Progen.Generate.program spec in
    let env = Buildsys.Driver.make_env ~ctx () in
    let base = Propeller.Pipeline.baseline_build ~env ~program ~name:spec.name in
    let config =
      {
        Propeller.Pipeline.default_config with
        profile_run = { Exec.Interp.default_config with requests = spec.requests };
        hugepages = spec.hugepages;
      }
    in
    let result = Propeller.Pipeline.run ~config ~env ~program ~name:spec.name () in
    let recorder = Buildsys.Driver.recorder env in
    let cb = measure ~spec ~ctx ~run_name:"base" program base.binary in
    let cp =
      measure ~spec ~ctx ~run_name:"propeller" program
        (Propeller.Pipeline.optimized_binary result)
    in
    let report = Diagnostics.Report.analyze ~name:spec.name ~counters:(cb, cp) ~result () in
    Diagnostics.Report.publish ~ctx report;
    if not json then
      Printf.printf
        "relink caches: layout %d hits / %d misses; objects %d hits / %d misses (jobs=%d)\n"
        result.wpa.layout_cache_hits result.wpa.layout_cache_misses
        (Buildsys.Cache.hits env.Buildsys.Driver.obj_cache)
        (Buildsys.Cache.misses env.Buildsys.Driver.obj_cache)
        (Support.Pool.jobs (Buildsys.Driver.pool env));
    if Support.Ctx.faults_active ctx && not json then
      print_endline
        (Cli_common.resilience_line
           (Cli_common.sum_fault_stats result.metadata_build.faults
              result.optimized_build.faults)
           ~shards_dropped:result.wpa.shards_dropped
           ~dropped_hot_funcs:result.wpa.dropped_hot_funcs);
    let rendered =
      if json then Obs.Json.to_string (Diagnostics.Report.to_json report) ^ "\n"
      else Diagnostics.Report.to_text report
    in
    (match out with
    | Some file ->
      Cli_common.write_file file rendered;
      Printf.printf "diagnostics: %s\n" file
    | None -> print_string rendered);
    Cli_common.export_recorder recorder ~trace ~metrics_out
  end

let read_json label file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error msg ->
    Printf.eprintf "cannot read %s %s: %s\n" label file msg;
    exit 2
  | contents -> (
    match Obs.Json.parse contents with
    | Ok v -> v
    | Error e ->
      Printf.eprintf "%s %s: invalid JSON: %s\n" label file e;
      exit 2)

let run_diff baseline_file current_file threshold quiet =
  let baseline = read_json "baseline" baseline_file in
  let current = read_json "current" current_file in
  match Diagnostics.Compare.compare ~threshold_pct:threshold ~baseline ~current () with
  | Error e ->
    Printf.eprintf "diff error: %s\n" e;
    exit 2
  | Ok outcome ->
    if not quiet then print_string (Diagnostics.Compare.render outcome);
    let regs = Diagnostics.Compare.regressions outcome in
    if Diagnostics.Compare.ok outcome then
      Printf.printf "OK: %d judged metrics within %.1f%% of baseline\n"
        (List.length outcome.Diagnostics.Compare.verdicts)
        threshold
    else begin
      Printf.printf "FAIL: %d regression(s), %d missing metric(s) (threshold %.1f%%)\n"
        (List.length regs)
        (List.length outcome.Diagnostics.Compare.missing)
        threshold;
      exit 1
    end

let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the diagnostics record as JSON.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the report to $(docv) instead of stdout.")

let run_term =
  Term.(
    const run_stat $ Cli_common.benchmark_term $ Cli_common.requests_term $ Cli_common.jobs_term
    $ Cli_common.seed_term $ Cli_common.faults_term $ json $ out $ Cli_common.trace_term
    $ Cli_common.metrics_out_term)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run the pipeline on one benchmark and report profile/layout diagnostics.")
    run_term

let baseline_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc:"Baseline bench JSON.")

let current_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"CURRENT" ~doc:"Current bench JSON.")

let threshold =
  Arg.(
    value
    & opt float 5.0
    & info [ "t"; "threshold" ] ~docv:"PCT"
        ~doc:"Regression threshold in percent (relative, floored at 1.0 absolute).")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the final verdict.")

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Diff two bench JSON files; exit 1 when a judged metric regresses past the threshold \
          or goes missing.")
    Term.(const run_diff $ baseline_arg $ current_arg $ threshold $ quiet)

let cmd =
  Cmd.group ~default:run_term
    (Cmd.info "propeller_stat"
       ~doc:"Profile-quality diagnostics and bench regression comparison")
    [ run_cmd; diff_cmd ]

let () = exit (Cmd.eval cmd)

(* propeller_stat: profile-quality + layout-quality diagnostics.

   Default command — run the pipeline on a benchmark and judge it:
     dune exec bin/propeller_stat.exe -- -b 505.mcf --json

   Diff two bench JSON files (exit 1 on regression):
     dune exec bin/propeller_stat.exe -- diff baseline.json current.json *)

open Cmdliner

let log2i v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

(* Pressure-preserving measurement, as the bench harness does: TLB pages
   shrink with the program's generation scale (DESIGN.md 6). *)
let measure ~(spec : Progen.Spec.t) ~recorder ~run_name program binary =
  let image = Exec.Image.build program binary in
  let core =
    Uarch.Core.create
      {
        Uarch.Core.default_config with
        hugepages = spec.hugepages;
        page_scale_bits = log2i spec.scale;
      }
  in
  let (_ : Exec.Interp.stats) =
    Exec.Interp.run image
      { Exec.Interp.default_config with requests = spec.requests }
      (Uarch.Core.sink core)
  in
  Uarch.Core.publish ~recorder ~name:run_name core;
  Uarch.Core.counters core

let write_file file contents =
  match open_out file with
  | oc ->
    output_string oc contents;
    close_out oc
  | exception Sys_error msg ->
    Printf.eprintf "cannot write %s: %s\n" file msg;
    exit 1

let run_stat benchmark requests jobs json out =
  (match jobs with
  | Some j when j < 1 ->
    Printf.eprintf "--jobs: expected a positive pool width, got %d\n" j;
    exit 2
  | Some j -> Support.Pool.set_default_jobs j
  | None -> ());
  match Progen.Suite.by_name benchmark with
  | None ->
    Printf.eprintf "unknown benchmark %S; known: %s\n" benchmark
      (String.concat ", " (List.map (fun (s : Progen.Spec.t) -> s.name) Progen.Suite.all));
    exit 2
  | Some spec ->
    let spec =
      match requests with Some r -> { spec with Progen.Spec.requests = r } | None -> spec
    in
    if not json then Printf.printf "running pipeline on %s...\n%!" spec.name;
    let program = Progen.Generate.program spec in
    let env = Buildsys.Driver.make_env () in
    let base = Propeller.Pipeline.baseline_build ~env ~program ~name:spec.name in
    let config =
      {
        Propeller.Pipeline.default_config with
        profile_run = { Exec.Interp.default_config with requests = spec.requests };
        hugepages = spec.hugepages;
      }
    in
    let result = Propeller.Pipeline.run ~config ~env ~program ~name:spec.name () in
    let recorder = env.Buildsys.Driver.recorder in
    let cb = measure ~spec ~recorder ~run_name:"base" program base.binary in
    let cp =
      measure ~spec ~recorder ~run_name:"propeller" program
        (Propeller.Pipeline.optimized_binary result)
    in
    let report = Diagnostics.Report.analyze ~name:spec.name ~counters:(cb, cp) ~result () in
    Diagnostics.Report.publish ~recorder report;
    if not json then
      Printf.printf
        "relink caches: layout %d hits / %d misses; objects %d hits / %d misses (jobs=%d)\n"
        result.wpa.layout_cache_hits result.wpa.layout_cache_misses
        (Buildsys.Cache.hits env.Buildsys.Driver.obj_cache)
        (Buildsys.Cache.misses env.Buildsys.Driver.obj_cache)
        (Support.Pool.jobs env.Buildsys.Driver.pool);
    let rendered =
      if json then Obs.Json.to_string (Diagnostics.Report.to_json report) ^ "\n"
      else Diagnostics.Report.to_text report
    in
    (match out with
    | Some file ->
      write_file file rendered;
      Printf.printf "diagnostics: %s\n" file
    | None -> print_string rendered)

let read_json label file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error msg ->
    Printf.eprintf "cannot read %s %s: %s\n" label file msg;
    exit 2
  | contents -> (
    match Obs.Json.parse contents with
    | Ok v -> v
    | Error e ->
      Printf.eprintf "%s %s: invalid JSON: %s\n" label file e;
      exit 2)

let run_diff baseline_file current_file threshold quiet =
  let baseline = read_json "baseline" baseline_file in
  let current = read_json "current" current_file in
  match Diagnostics.Compare.compare ~threshold_pct:threshold ~baseline ~current () with
  | Error e ->
    Printf.eprintf "diff error: %s\n" e;
    exit 2
  | Ok outcome ->
    if not quiet then print_string (Diagnostics.Compare.render outcome);
    let regs = Diagnostics.Compare.regressions outcome in
    if Diagnostics.Compare.ok outcome then
      Printf.printf "OK: %d judged metrics within %.1f%% of baseline\n"
        (List.length outcome.Diagnostics.Compare.verdicts)
        threshold
    else begin
      Printf.printf "FAIL: %d regression(s), %d missing metric(s) (threshold %.1f%%)\n"
        (List.length regs)
        (List.length outcome.Diagnostics.Compare.missing)
        threshold;
      exit 1
    end

let benchmark =
  Arg.(value & opt string "505.mcf" & info [ "b"; "benchmark" ] ~doc:"Benchmark name (Table 2).")

let requests =
  Arg.(value & opt (some int) None & info [ "r"; "requests" ] ~doc:"Workload requests override.")

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Domain pool width (default \\$(b,PROPELLER_JOBS) or 1).")

let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit the diagnostics record as JSON.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the report to $(docv) instead of stdout.")

let run_term = Term.(const run_stat $ benchmark $ requests $ jobs $ json $ out)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run the pipeline on one benchmark and report profile/layout diagnostics.")
    run_term

let baseline_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"BASELINE" ~doc:"Baseline bench JSON.")

let current_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"CURRENT" ~doc:"Current bench JSON.")

let threshold =
  Arg.(
    value
    & opt float 5.0
    & info [ "t"; "threshold" ] ~docv:"PCT"
        ~doc:"Regression threshold in percent (relative, floored at 1.0 absolute).")

let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only print the final verdict.")

let diff_cmd =
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Diff two bench JSON files; exit 1 when a judged metric regresses past the threshold \
          or goes missing.")
    Term.(const run_diff $ baseline_arg $ current_arg $ threshold $ quiet)

let cmd =
  Cmd.group ~default:run_term
    (Cmd.info "propeller_stat"
       ~doc:"Profile-quality diagnostics and bench regression comparison")
    [ run_cmd; diff_cmd ]

let () = exit (Cmd.eval cmd)

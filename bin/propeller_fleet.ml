(* propeller_fleet: the continuous profiling loop over a simulated
   machine fleet (paper §2, Fig 1).

   Run N machines for K optimization cycles and print the fleet health
   report:
     dune exec bin/propeller_fleet.exe -- run --machines 4 --cycles 3 --seed 7

   Everything runs on simulated clocks: the same flags produce
   byte-identical reports and --json-out files at any --jobs width. *)

open Cmdliner

let log2i v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let run_fleet benchmark requests profile_source machines cycles canary fleet_requests jitter
    lbr_period window decay threshold sabotage_cycle json json_out jobs seed faults trace
    metrics_out self_profile self_profile_out =
  let ctx = Cli_common.context ~jobs ~seed ~faults ~self_profile ~self_profile_out () in
  let recorder = ctx.Support.Ctx.recorder in
  Cli_common.with_flight_guard recorder @@ fun () ->
  let spec = Cli_common.lookup_spec ~benchmark ~requests in
  let config =
    {
      Fleet.Rollout.default_config with
      machines;
      cycles;
      canary;
      requests = (match fleet_requests with Some r -> r | None -> spec.Progen.Spec.requests);
      jitter_pct = jitter;
      lbr = { Fleet.Rollout.default_config.lbr with Perfmon.Lbr.period = lbr_period };
      profile_source;
      seed = Option.value seed ~default:Fleet.Rollout.default_config.seed;
      window;
      decay;
      threshold_pct = threshold;
      sabotage_cycle;
      core =
        {
          Uarch.Core.default_config with
          hugepages = spec.hugepages;
          page_scale_bits = log2i spec.scale;
        };
    }
  in
  if not json then
    Printf.printf "fleet loop on %s: %d machines, %d cycles...\n%!" spec.name machines cycles;
  let program = Progen.Generate.program spec in
  let result = Fleet.Rollout.run ~config ~ctx ~program ~name:spec.name () in
  (* A rollback is a caught degradation: surface the flight recorder's
     verdict trail the same way fault drills do. *)
  if result.Fleet.Rollout.rollbacks > 0 && not json then begin
    prerr_endline "rollback occurred; flight recorder dump follows:";
    prerr_string (Obs.Recorder.flight_dump recorder)
  end;
  let rendered_json = Obs.Json.to_string (Fleet.Rollout.to_json result) ^ "\n" in
  (match Obs.Json.parse rendered_json with
  | Ok _ -> ()
  | Error e ->
    Printf.eprintf "fleet report: INVALID JSON: %s\n" e;
    exit 1);
  if json then print_string rendered_json
  else print_string (Fleet.Rollout.report result);
  (match json_out with
  | None -> ()
  | Some file ->
    Cli_common.write_file file rendered_json;
    if not json then Printf.printf "fleet report: %s (valid JSON)\n" file);
  Cli_common.export_recorder recorder ~trace ~metrics_out;
  Cli_common.export_self_profile recorder ~self_profile ~self_profile_out

let machines_term =
  Arg.(value & opt int 4 & info [ "machines" ] ~docv:"N" ~doc:"Fleet size (at least 2).")

let cycles_term =
  Arg.(value & opt int 3 & info [ "cycles" ] ~docv:"K" ~doc:"Optimization cycles to run.")

let canary_term =
  Arg.(
    value
    & opt int 1
    & info [ "canary" ] ~docv:"N"
        ~doc:"Canary slice size for candidate pushes (clamped to machines - 1).")

let fleet_requests_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "fleet-requests" ] ~docv:"R"
        ~doc:
          "Mean requests per machine per serve round (default: the benchmark's request \
           count). Per-round traffic jitters deterministically around this mean.")

let jitter_term =
  Arg.(
    value
    & opt float 0.2
    & info [ "jitter" ] ~docv:"F"
        ~doc:"Traffic spread around the per-round request mean, as a fraction in [0,1].")

let lbr_period_term =
  Arg.(
    value
    & opt int 13
    & info [ "lbr-period" ] ~docv:"N"
        ~doc:
          "Taken branches between LBR samples on the fleet tier. Production fleets sample \
           sparsely per machine and recover density by merging shards; the simulated fleet \
           defaults denser so per-round profiles are stable.")

let window_term =
  Arg.(
    value
    & opt int 4
    & info [ "window" ] ~docv:"ROUNDS" ~doc:"Profile aggregation window, in serve rounds.")

let decay_term =
  Arg.(
    value
    & opt float 0.5
    & info [ "decay" ] ~docv:"F" ~doc:"Per-round decay of older profile shards, in [0,1].")

let threshold_term =
  Arg.(
    value
    & opt float 5.0
    & info [ "threshold" ] ~docv:"PCT" ~doc:"Canary-vs-control regression threshold.")

let sabotage_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "sabotage-cycle" ] ~docv:"C"
        ~doc:
          "Deploy a deliberately pathological candidate at cycle $(docv) — the \
           stale-profile drill; the canary judge must catch it and roll back.")

let json_term =
  Arg.(value & flag & info [ "json" ] ~doc:"Print the fleet report as JSON instead of text.")

let json_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "json-out" ] ~docv:"FILE" ~doc:"Also write the JSON fleet report to $(docv).")

let run_term =
  Term.(
    const run_fleet $ Cli_common.benchmark_term $ Cli_common.requests_term
    $ Cli_common.profile_source_term $ machines_term $ cycles_term $ canary_term $ fleet_requests_term $ jitter_term $ lbr_period_term
    $ window_term $ decay_term
    $ threshold_term $ sabotage_term $ json_term $ json_out_term $ Cli_common.jobs_term
    $ Cli_common.seed_term $ Cli_common.faults_term $ Cli_common.trace_term
    $ Cli_common.metrics_out_term $ Cli_common.self_profile_term
    $ Cli_common.self_profile_out_term)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run the continuous profile/relink/canary loop on a simulated fleet and report \
          its health.")
    run_term

let cmd =
  Cmd.group ~default:run_term
    (Cmd.info "propeller_fleet"
       ~doc:"Fleet-wide continuous profiling: sharded aggregation, canary-judged relinks")
    [ run_cmd ]

let () = exit (Cmd.eval cmd)

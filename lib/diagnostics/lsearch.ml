type entry = { id : int; round : int; policy : string; cycles : float; score : float }

type t = {
  name : string;
  requests : int;
  budget : int;
  seed : int;
  evaluated : int;
  rounds : int;
  base_cycles : float;
  exttsp_cycles : float;
  exttsp_score : float;
  winner_policy : string;
  winner_cycles : float;
  winner_score : float;
  win_vs_exttsp_pct : float;
  comparable_pairs : int;
  discordant_pairs : int;
  proxy_agreement : float;
  entries : entry list;
}

(* Ground-truth cycles of one binary, same measurement as
   Fidelity.measure: build the image, run the request tape, drain into
   the core model. Control flow is a pure function of (block id, visit
   count), so every layout sees the same work. *)
let measure_cycles ~ctx ~core ~requests ~program binary =
  let image = Exec.Image.build program binary in
  let c = Uarch.Core.create core in
  ignore
    (Exec.Interp.run_tape ~ctx image
       { Exec.Interp.default_config with requests }
       ~drain:(Uarch.Core.consume c));
  Uarch.Core.cycles c

let analyze ?(pipeline = Propeller.Pipeline.default_config) ?(core = Uarch.Core.default_config)
    ?(requests = 40) ?(budget = 12) ?(seed = 1) ~(ctx : Support.Ctx.t) ~program ~name () =
  let env = Buildsys.Driver.make_env ~ctx () in
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name in
  let base_cycles = measure_cycles ~ctx ~core ~requests ~program base.Buildsys.Driver.binary in
  (* One pipeline run supplies the shared profile and metadata binary;
     every candidate reuses them, so the tournament varies layout and
     nothing else. *)
  let r = Propeller.Pipeline.run ~config:pipeline ~env ~program ~name () in
  let n_eval = ref 0 in
  let evaluate (c : Layout.Search.candidate) =
    let wpa_config =
      { pipeline.Propeller.Pipeline.wpa with
        Propeller.Wpa.layout_policy = c.policy;
        policy_params = c.params;
      }
    in
    let wpa =
      Propeller.Wpa.analyze ~config:wpa_config ~ctx ~layout_cache:env.Buildsys.Driver.layout_cache
        ~profile:(Propeller.Wpa.Lbr r.Propeller.Pipeline.profile)
        ~binary:r.Propeller.Pipeline.metadata_build.Buildsys.Driver.binary ()
    in
    let codegen_options, link_options =
      Propeller.Pipeline.optimize_options ~hugepages:pipeline.Propeller.Pipeline.hugepages wpa
    in
    let cand_name = Printf.sprintf "%s.cand%d" name !n_eval in
    incr n_eval;
    let b = Buildsys.Driver.build env ~name:cand_name ~program ~codegen_options ~link_options in
    let cycles = measure_cycles ~ctx ~core ~requests ~program b.Buildsys.Driver.binary in
    { Layout.Search.fitness = cycles; proxy = wpa.Propeller.Wpa.layout_score }
  in
  let report =
    Layout.Search.run ~recorder:ctx.Support.Ctx.recorder ~seed ~budget ~evaluate ()
  in
  let exttsp_cycles, exttsp_score =
    match report.baseline with
    | Some b -> (b.outcome.fitness, b.outcome.proxy)
    | None -> (nan, nan)
  in
  let winner = report.winner in
  {
    name;
    requests;
    budget;
    seed;
    evaluated = List.length report.entries;
    rounds = report.rounds;
    base_cycles;
    exttsp_cycles;
    exttsp_score;
    winner_policy = winner.candidate.policy;
    winner_cycles = winner.outcome.fitness;
    winner_score = winner.outcome.proxy;
    win_vs_exttsp_pct =
      (if exttsp_cycles > 0.0 then
         (exttsp_cycles -. winner.outcome.fitness) /. exttsp_cycles *. 100.0
       else 0.0);
    comparable_pairs = report.comparable_pairs;
    discordant_pairs = report.discordant_pairs;
    proxy_agreement = report.proxy_agreement;
    entries =
      List.map
        (fun (e : Layout.Search.entry) ->
          {
            id = e.id;
            round = e.round;
            policy = e.candidate.policy;
            cycles = e.outcome.fitness;
            score = e.outcome.proxy;
          })
        report.entries;
  }

(* Keys are chosen to stay clear of every judged-metric suffix in
   {!Compare.judged}: the whole object is informational. *)
let entry_to_json e =
  Obs.Json.Obj
    [
      ("id", Obs.Json.Int e.id);
      ("round", Obs.Json.Int e.round);
      ("policy", Obs.Json.String e.policy);
      ("po_cycles", Obs.Json.Float e.cycles);
      ("exttsp_objective", Obs.Json.Float e.score);
    ]

let to_json t =
  Obs.Json.Obj
    [
      ("name", Obs.Json.String t.name);
      ("requests", Obs.Json.Int t.requests);
      ("search_budget", Obs.Json.Int t.budget);
      ("search_seed", Obs.Json.Int t.seed);
      ("evaluated", Obs.Json.Int t.evaluated);
      ("rounds", Obs.Json.Int t.rounds);
      ("base_cycles", Obs.Json.Float t.base_cycles);
      ("exttsp_po_cycles", Obs.Json.Float t.exttsp_cycles);
      ("exttsp_objective", Obs.Json.Float t.exttsp_score);
      ("winner_policy", Obs.Json.String t.winner_policy);
      ("winner_po_cycles", Obs.Json.Float t.winner_cycles);
      ("winner_objective", Obs.Json.Float t.winner_score);
      ("win_vs_exttsp_pct", Obs.Json.Float t.win_vs_exttsp_pct);
      ("comparable_pairs", Obs.Json.Int t.comparable_pairs);
      ("discordant_pairs", Obs.Json.Int t.discordant_pairs);
      ("proxy_agreement", Obs.Json.Float t.proxy_agreement);
      ("entries", Obs.Json.List (List.map entry_to_json t.entries));
    ]

let to_text t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "layout search (%s, %d requests, budget %d, seed %d)\n" t.name t.requests
       t.budget t.seed);
  Buffer.add_string buf
    (Printf.sprintf "  base cycles          %.0f\n" t.base_cycles);
  Buffer.add_string buf
    (Printf.sprintf "  ext-tsp cycles       %.0f  (objective %.1f)\n" t.exttsp_cycles
       t.exttsp_score);
  Buffer.add_string buf
    (Printf.sprintf "  winner               %s\n" t.winner_policy);
  Buffer.add_string buf
    (Printf.sprintf "  winner cycles        %.0f  (objective %.1f)\n" t.winner_cycles
       t.winner_score);
  Buffer.add_string buf
    (Printf.sprintf "  win vs ext-tsp       %+.3f%%\n" t.win_vs_exttsp_pct);
  Buffer.add_string buf
    (Printf.sprintf "  evaluations          %d in %d rounds\n" t.evaluated t.rounds);
  Buffer.add_string buf
    (Printf.sprintf "  score-vs-cycles gap  %d discordant of %d comparable pairs (agreement %.2f)\n"
       t.discordant_pairs t.comparable_pairs t.proxy_agreement);
  Buffer.add_string buf "  evaluation log\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "    #%-3d r%-2d %-14s cycles %-12.0f objective %.1f\n" e.id e.round
           e.policy e.cycles e.score))
    t.entries;
  Buffer.contents buf

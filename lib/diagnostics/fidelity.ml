type side = {
  source : Perfmon.Source.t;
  profile_samples : int;
  profile_records : int;
  distinct_edges : int;
  hot_funcs : int;
  exttsp_norm : float;
  fall_through_rate : float;
  po_cycles : float;
  speedup_pct : float;
}

type t = {
  name : string;
  requests : int;
  base_cycles : float;
  base_fall_through_rate : float;
  lbr : side;
  sampled : side;
  weight_correlation : float;
  fall_through_gap : float;
  cycle_gap_pct : float;
}

(* Ground-truth measurement of one binary: simulated cycles from the
   core model and the achieved fall-through rate from the interpreter's
   retired-branch statistics (same definition as Fleet.Machine). *)
let measure ~ctx ~core ~requests ~program binary =
  let image = Exec.Image.build program binary in
  let c = Uarch.Core.create core in
  let stats =
    Exec.Interp.run_tape ~ctx image
      { Exec.Interp.default_config with requests }
      ~drain:(Uarch.Core.consume c)
  in
  let sites = stats.Exec.Interp.cond_branches + stats.Exec.Interp.uncond_jumps in
  let ftr =
    if sites = 0 then 0.0
    else
      float_of_int (stats.Exec.Interp.cond_branches - stats.Exec.Interp.cond_taken)
      /. float_of_int sites
  in
  (Uarch.Core.cycles c, ftr)

(* Per-function weight fractions of one profile: each hot function's
   share of total sample mass. Fractions, not raw counts — the two
   sources operate at wildly different sampling scales and only the
   shape of the distribution is comparable. *)
let weight_fractions (dcfg : Propeller.Dcfg.t) =
  let total =
    Hashtbl.fold (fun _ (d : Propeller.Dcfg.dfunc) acc -> acc + d.dsamples) dcfg.funcs 0
  in
  let out = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name (d : Propeller.Dcfg.dfunc) ->
      if d.dsamples > 0 then
        Hashtbl.replace out name (float_of_int d.dsamples /. float_of_int (max 1 total)))
    dcfg.funcs;
  out

let correlate a b =
  let names = Hashtbl.create 64 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) a;
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) b;
  let pairs =
    Hashtbl.fold (fun k () acc -> k :: acc) names []
    |> List.sort compare
    |> List.map (fun k ->
           ( Option.value ~default:0.0 (Hashtbl.find_opt a k),
             Option.value ~default:0.0 (Hashtbl.find_opt b k) ))
  in
  Support.Stats.pearson pairs

let analyze ?(pipeline = Propeller.Pipeline.default_config)
    ?(core = Uarch.Core.default_config) ?(requests = 40) ~ctx ~program ~name () =
  let env = Buildsys.Driver.make_env ~ctx () in
  let base = Propeller.Pipeline.baseline_build ~env ~program ~name in
  let run source =
    Propeller.Pipeline.run
      ~config:{ pipeline with Propeller.Pipeline.profile_source = source }
      ~env ~program ~name ()
  in
  (* The metadata phase is identical under both sources, so the second
     run's PM objects all come from the shared env's cache. *)
  let rl = run Perfmon.Source.Lbr in
  let rs = run Perfmon.Source.Sampled in
  let base_cycles, base_ftr =
    measure ~ctx ~core ~requests ~program base.Buildsys.Driver.binary
  in
  let side (r : Propeller.Pipeline.result) =
    let dcfg =
      Propeller.Dcfg.build ~profile:r.profile ~binary:r.metadata_build.binary
    in
    let lq = Layoutq.analyze ~dcfg ~final:(Propeller.Pipeline.optimized_binary r) () in
    let cycles, ftr =
      measure ~ctx ~core ~requests ~program (Propeller.Pipeline.optimized_binary r)
    in
    ( dcfg,
      {
        source = r.source;
        profile_samples = r.profile.Perfmon.Lbr.num_samples;
        profile_records = r.profile.Perfmon.Lbr.num_records;
        distinct_edges = Perfmon.Lbr.distinct_edges r.profile;
        hot_funcs = r.wpa.Propeller.Wpa.hot_funcs;
        exttsp_norm = lq.exttsp_norm;
        fall_through_rate = ftr;
        po_cycles = cycles;
        speedup_pct =
          (if base_cycles = 0.0 then 0.0
           else (base_cycles -. cycles) /. base_cycles *. 100.0);
      } )
  in
  let dcfg_l, lbr = side rl in
  let dcfg_s, sampled = side rs in
  {
    name;
    requests;
    base_cycles;
    base_fall_through_rate = base_ftr;
    lbr;
    sampled;
    weight_correlation = correlate (weight_fractions dcfg_l) (weight_fractions dcfg_s);
    fall_through_gap = lbr.fall_through_rate -. sampled.fall_through_rate;
    cycle_gap_pct =
      (if lbr.po_cycles = 0.0 then 0.0
       else (sampled.po_cycles -. lbr.po_cycles) /. lbr.po_cycles *. 100.0);
  }

(* Keys are chosen to stay clear of every judged-metric suffix in
   {!Compare.judged}: the whole object is informational. *)
let side_to_json s =
  Obs.Json.Obj
    [
      ("source", Obs.Json.String (Perfmon.Source.to_string s.source));
      ("profile_samples", Obs.Json.Int s.profile_samples);
      ("profile_records", Obs.Json.Int s.profile_records);
      ("distinct_edges", Obs.Json.Int s.distinct_edges);
      ("hot_funcs", Obs.Json.Int s.hot_funcs);
      ("exttsp_norm", Obs.Json.Float s.exttsp_norm);
      ("fall_through_rate", Obs.Json.Float s.fall_through_rate);
      ("po_cycles", Obs.Json.Float s.po_cycles);
      ("speedup_pct", Obs.Json.Float s.speedup_pct);
    ]

let to_json t =
  Obs.Json.Obj
    [
      ("name", Obs.Json.String t.name);
      ("requests", Obs.Json.Int t.requests);
      ("base_cycles", Obs.Json.Float t.base_cycles);
      ("base_fall_through_rate", Obs.Json.Float t.base_fall_through_rate);
      ("lbr", side_to_json t.lbr);
      ("sampled", side_to_json t.sampled);
      ("weight_correlation", Obs.Json.Float t.weight_correlation);
      ("fall_through_gap", Obs.Json.Float t.fall_through_gap);
      ("cycle_gap_pct", Obs.Json.Float t.cycle_gap_pct);
    ]

let to_text t =
  let buf = Buffer.create 1024 in
  let section title rows =
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    let width = List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 rows in
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "  %s%s  %s\n" k (String.make (width - String.length k) ' ') v))
      rows;
    Buffer.add_char buf '\n'
  in
  let side_rows (s : side) =
    [
      ("profile samples", string_of_int s.profile_samples);
      ("profile records", string_of_int s.profile_records);
      ("distinct edges", string_of_int s.distinct_edges);
      ("hot funcs", string_of_int s.hot_funcs);
      ("ext-TSP normalized", Printf.sprintf "%.4f" s.exttsp_norm);
      ("fall-through rate", Printf.sprintf "%.2f%%" (100.0 *. s.fall_through_rate));
      ("po cycles", Printf.sprintf "%.0f" s.po_cycles);
      ("speedup vs base", Printf.sprintf "%+.2f%%" s.speedup_pct);
    ]
  in
  section
    (Printf.sprintf "profile fidelity (%s, %d requests)" t.name t.requests)
    [
      ("base cycles", Printf.sprintf "%.0f" t.base_cycles);
      ( "base fall-through rate",
        Printf.sprintf "%.2f%%" (100.0 *. t.base_fall_through_rate) );
    ];
  section "lbr source" (side_rows t.lbr);
  section "sampled source" (side_rows t.sampled);
  section "gap (lbr vs sampled)"
    [
      ("weight correlation", Printf.sprintf "%.4f" t.weight_correlation);
      ("fall-through gap", Printf.sprintf "%+.2f pp" (100.0 *. t.fall_through_gap));
      ("cycle gap", Printf.sprintf "%+.2f%%" t.cycle_gap_pct);
    ];
  Buffer.contents buf

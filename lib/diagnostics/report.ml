type uarch_delta = {
  speedup_pct : float;
  cycles_pct : float;
  l1i_miss_pct : float;
  l2_code_miss_pct : float;
  l3_code_miss_pct : float;
  itlb_miss_pct : float;
  itlb_stall_pct : float;
  btb_resteer_pct : float;
  taken_branch_pct : float;
  dsb_miss_pct : float;
}

let delta ~(base : Uarch.Core.counters) ~(opt : Uarch.Core.counters) =
  let pct get = Support.Stats.ratio_pct (float_of_int (get opt)) (float_of_int (get base)) in
  {
    speedup_pct =
      (if base.cycles = 0.0 then 0.0 else (base.cycles -. opt.cycles) /. base.cycles *. 100.0);
    cycles_pct = Support.Stats.ratio_pct opt.cycles base.cycles;
    l1i_miss_pct = pct (fun c -> c.Uarch.Core.i1_l1i_miss);
    l2_code_miss_pct = pct (fun c -> c.Uarch.Core.i2_l2_code_miss);
    l3_code_miss_pct = pct (fun c -> c.Uarch.Core.i3_l3_code_miss);
    itlb_miss_pct = pct (fun c -> c.Uarch.Core.t1_itlb_miss);
    itlb_stall_pct = pct (fun c -> c.Uarch.Core.t2_itlb_stall_miss);
    btb_resteer_pct = pct (fun c -> c.Uarch.Core.b1_baclears);
    taken_branch_pct = pct (fun c -> c.Uarch.Core.b2_taken_branches);
    dsb_miss_pct = pct (fun c -> c.Uarch.Core.dsb_misses);
  }

type t = {
  name : string;
  quality : Quality.t;
  layout : Layoutq.t;
  wpa_layout_score : float;
  hot_funcs : int;
  hot_objects : int;
  total_objects : int;
  phases : (string * float) list;
  uarch : uarch_delta option;
}

let analyze ~name ?counters ~(result : Propeller.Pipeline.result) () =
  let dcfg =
    Propeller.Dcfg.build ~profile:result.profile ~binary:result.metadata_build.binary
  in
  let quality = Quality.analyze ~dcfg ~profile:result.profile () in
  let layout =
    Layoutq.analyze ~dcfg ~final:(Propeller.Pipeline.optimized_binary result) ()
  in
  {
    name;
    quality;
    layout;
    wpa_layout_score = result.wpa.layout_score;
    hot_funcs = result.wpa.hot_funcs;
    hot_objects = result.hot_objects;
    total_objects = result.total_objects;
    phases =
      [
        ("metadata_build_s", result.times.metadata_build_s);
        ("profiling_s", result.times.profiling_s);
        ("conversion_s", result.times.conversion_s);
        ("optimize_build_s", result.times.optimize_build_s);
      ];
    uarch = Option.map (fun (base, opt) -> delta ~base ~opt) counters;
  }

let uarch_to_json (u : uarch_delta) =
  Obs.Json.Obj
    [
      ("speedup_pct", Obs.Json.Float u.speedup_pct);
      ("cycles_pct", Obs.Json.Float u.cycles_pct);
      ("l1i_miss_pct", Obs.Json.Float u.l1i_miss_pct);
      ("l2_code_miss_pct", Obs.Json.Float u.l2_code_miss_pct);
      ("l3_code_miss_pct", Obs.Json.Float u.l3_code_miss_pct);
      ("itlb_miss_pct", Obs.Json.Float u.itlb_miss_pct);
      ("itlb_stall_pct", Obs.Json.Float u.itlb_stall_pct);
      ("btb_resteer_pct", Obs.Json.Float u.btb_resteer_pct);
      ("taken_branch_pct", Obs.Json.Float u.taken_branch_pct);
      ("dsb_miss_pct", Obs.Json.Float u.dsb_miss_pct);
    ]

let to_json t =
  Obs.Json.Obj
    [
      ("name", Obs.Json.String t.name);
      ("profile_quality", Quality.to_json t.quality);
      ("layout_quality", Layoutq.to_json t.layout);
      ( "wpa",
        Obs.Json.Obj
          [
            ("layout_score", Obs.Json.Float t.wpa_layout_score);
            ("hot_funcs", Obs.Json.Int t.hot_funcs);
          ] );
      ( "build",
        Obs.Json.Obj
          [
            ("hot_objects", Obs.Json.Int t.hot_objects);
            ("total_objects", Obs.Json.Int t.total_objects);
          ] );
      ("phases", Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Float v)) t.phases));
      ( "uarch_delta",
        match t.uarch with Some u -> uarch_to_json u | None -> Obs.Json.Null );
    ]

(* Aligned key/value rendering: one block per judgement area. *)
let to_text t =
  let buf = Buffer.create 1024 in
  let section title rows =
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    let width =
      List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 rows
    in
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "  %s%s  %s\n" k (String.make (width - String.length k) ' ') v))
      rows;
    Buffer.add_char buf '\n'
  in
  let q = t.quality and l = t.layout in
  let f1 v = Printf.sprintf "%.1f%%" (100.0 *. v) in
  section
    (Printf.sprintf "profile quality (%s)" t.name)
    [
      ("lbr samples", string_of_int q.total_samples);
      ("branch records", string_of_int q.total_records);
      ("block coverage", Printf.sprintf "%s (%d/%d blocks)" (f1 q.block_coverage) q.sampled_blocks q.mapped_blocks);
      ("byte coverage", f1 q.byte_coverage);
      ("func coverage", f1 q.func_coverage);
      ("mismatch rate", Printf.sprintf "%s (%d records)" (f1 q.mismatch_rate) q.mismatch_records);
      ("p90 concentration", f1 q.concentration_p90);
      ("pebs samples", string_of_int q.pebs_samples);
    ];
  section "layout quality"
    [
      ("ext-TSP score", Printf.sprintf "%.1f" l.exttsp_score);
      ("ext-TSP normalized", Printf.sprintf "%.4f" l.exttsp_norm);
      ("fall-through rate", Printf.sprintf "%s (%d/%d edge weight)" (f1 l.fall_through_rate) l.fall_through_weight l.edge_weight);
      ("hot funcs scored", string_of_int l.hot_funcs_scored);
      ("blocks missing", string_of_int l.blocks_missing);
      ("wpa target score", Printf.sprintf "%.1f" t.wpa_layout_score);
    ];
  section "build"
    [
      ("hot funcs", string_of_int t.hot_funcs);
      ("objects re-generated", Printf.sprintf "%d/%d" t.hot_objects t.total_objects);
      ( "phase seconds",
        String.concat "  "
          (List.map (fun (k, v) -> Printf.sprintf "%s=%.1f" k v) t.phases) );
    ];
  (match t.uarch with
  | None -> ()
  | Some u ->
    let p v = Printf.sprintf "%+.2f%%" v in
    section "uarch delta (optimized vs baseline)"
      [
        ("speedup", p u.speedup_pct);
        ("cycles", p u.cycles_pct);
        ("L1i misses (I1)", p u.l1i_miss_pct);
        ("L2 code misses (I2)", p u.l2_code_miss_pct);
        ("L3 code misses (I3)", p u.l3_code_miss_pct);
        ("iTLB misses (T1)", p u.itlb_miss_pct);
        ("iTLB stall misses (T2)", p u.itlb_stall_pct);
        ("BTB resteers (B1)", p u.btb_resteer_pct);
        ("taken branches (B2)", p u.taken_branch_pct);
        ("DSB misses", p u.dsb_miss_pct);
      ]);
  Buffer.contents buf

let publish_with ?recorder t =
  let r = match recorder with Some r -> r | None -> Obs.Recorder.global in
  let g area metric v = Obs.Recorder.set_gauge r (Printf.sprintf "diag.%s.%s" area metric) v in
  let q = t.quality and l = t.layout in
  g "profile" "block_coverage" q.block_coverage;
  g "profile" "byte_coverage" q.byte_coverage;
  g "profile" "func_coverage" q.func_coverage;
  g "profile" "mismatch_rate" q.mismatch_rate;
  g "profile" "concentration_p90" q.concentration_p90;
  g "layout" "exttsp_score" l.exttsp_score;
  g "layout" "exttsp_norm" l.exttsp_norm;
  g "layout" "fall_through_rate" l.fall_through_rate;
  g "layout" "blocks_missing" (float_of_int l.blocks_missing);
  match t.uarch with
  | None -> ()
  | Some u ->
    g "uarch" "speedup_pct" u.speedup_pct;
    g "uarch" "l1i_miss_pct" u.l1i_miss_pct;
    g "uarch" "itlb_miss_pct" u.itlb_miss_pct;
    g "uarch" "btb_resteer_pct" u.btb_resteer_pct;
    g "uarch" "taken_branch_pct" u.taken_branch_pct

let publish ?ctx t =
  publish_with ?recorder:(Option.map (fun c -> c.Support.Ctx.recorder) ctx) t

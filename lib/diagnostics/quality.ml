type t = {
  total_samples : int;
  total_records : int;
  mapped_blocks : int;
  sampled_blocks : int;
  block_coverage : float;
  byte_coverage : float;
  func_coverage : float;
  mismatch_records : int;
  mismatch_rate : float;
  concentration_p90 : float;
  pebs_samples : int;
}

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(* Fraction of sampled blocks needed to cover [mass] of the samples,
   hottest-first. 0 when nothing was sampled. *)
let concentration ~mass counts =
  let counts = List.filter (fun c -> c > 0) counts in
  match counts with
  | [] -> 0.0
  | _ ->
    let arr = Array.of_list counts in
    Array.sort (fun a b -> compare b a) arr;
    let total = Array.fold_left ( + ) 0 arr in
    let target = mass *. float_of_int total in
    let n = Array.length arr in
    let rec walk i cum =
      if i >= n then n
      else begin
        let cum = cum + arr.(i) in
        if float_of_int cum >= target then i + 1 else walk (i + 1) cum
      end
    in
    float_of_int (walk 0 0) /. float_of_int n

let analyze ?pebs ~(dcfg : Propeller.Dcfg.t) ~(profile : Perfmon.Lbr.profile) () =
  let blocks = dcfg.Propeller.Dcfg.block_index in
  let mapped_blocks = Array.length blocks in
  let sampled_blocks = ref 0 in
  let mapped_bytes = ref 0 in
  let sampled_bytes = ref 0 in
  let mapped_funcs = Hashtbl.create 256 in
  let sampled_funcs = Hashtbl.create 256 in
  Array.iter
    (fun (b : Propeller.Dcfg.mblock) ->
      mapped_bytes := !mapped_bytes + b.msize;
      Hashtbl.replace mapped_funcs b.owner ();
      if b.count > 0 then begin
        incr sampled_blocks;
        sampled_bytes := !sampled_bytes + b.msize;
        Hashtbl.replace sampled_funcs b.owner ()
      end)
    blocks;
  (* Stale-profile detection from the raw records: an endpoint that maps
     to no block of this binary cannot have come from it. The branch
     retires at its end address, so the source lookup probes [src - 1]
     (matching Dcfg's attribution). *)
  let mismatch_records = ref 0 in
  let total_branch = ref 0 in
  Perfmon.Lbr.iter_pairs
    (fun ~src ~dst n ->
      total_branch := !total_branch + n;
      let maps addr = Propeller.Dcfg.find_block dcfg addr <> None in
      if not (maps (src - 1) && maps dst) then mismatch_records := !mismatch_records + n)
    profile.Perfmon.Lbr.branches;
  let counts = Array.to_list (Array.map (fun (b : Propeller.Dcfg.mblock) -> b.count) blocks) in
  {
    total_samples = profile.Perfmon.Lbr.num_samples;
    total_records = profile.Perfmon.Lbr.num_records;
    mapped_blocks;
    sampled_blocks = !sampled_blocks;
    block_coverage = ratio !sampled_blocks mapped_blocks;
    byte_coverage = ratio !sampled_bytes !mapped_bytes;
    func_coverage = ratio (Hashtbl.length sampled_funcs) (Hashtbl.length mapped_funcs);
    mismatch_records = !mismatch_records;
    mismatch_rate = ratio !mismatch_records !total_branch;
    concentration_p90 = concentration ~mass:0.9 counts;
    pebs_samples =
      (match pebs with Some p -> p.Perfmon.Pebs.num_samples | None -> 0);
  }

let to_json q =
  Obs.Json.Obj
    [
      ("total_samples", Obs.Json.Int q.total_samples);
      ("total_records", Obs.Json.Int q.total_records);
      ("mapped_blocks", Obs.Json.Int q.mapped_blocks);
      ("sampled_blocks", Obs.Json.Int q.sampled_blocks);
      ("block_coverage", Obs.Json.Float q.block_coverage);
      ("byte_coverage", Obs.Json.Float q.byte_coverage);
      ("func_coverage", Obs.Json.Float q.func_coverage);
      ("mismatch_records", Obs.Json.Int q.mismatch_records);
      ("mismatch_rate", Obs.Json.Float q.mismatch_rate);
      ("concentration_p90", Obs.Json.Float q.concentration_p90);
      ("pebs_samples", Obs.Json.Int q.pebs_samples);
    ]

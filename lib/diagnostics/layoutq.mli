(** Layout-quality scores of a *final* (linked, post-relaxation) binary
    against the sampled dynamic CFG.

    Where {!Propeller.Wpa} reports the Ext-TSP objective its own layout
    *aimed for* (on metadata-binary block sizes), this module scores the
    layout the linker actually *produced*: per hot function, the block
    order induced by final virtual addresses is evaluated with
    {!Layout.Exttsp.score} over the profiled edges, using final
    (relaxed) block sizes. The normalized score and the weighted
    fall-through rate are comparable across programs and PRs; the raw
    score is not (it scales with sample mass). *)

type t = {
  exttsp_score : float;  (** Sum of per-hot-function Ext-TSP scores. *)
  exttsp_norm : float;
      (** exttsp_score / total profiled edge weight, in
          [0, fallthrough_weight]. *)
  edge_weight : int;  (** Total intra-function profiled edge weight. *)
  fall_through_weight : int;
      (** ... of which lands on a block placed immediately after its
          source (an achieved fall-through). *)
  fall_through_rate : float;  (** fall_through_weight / edge_weight. *)
  hot_funcs_scored : int;  (** Hot functions found in the final binary. *)
  blocks_missing : int;
      (** Sampled blocks with no placement in the final binary (0 for a
          healthy build). *)
}

(** [analyze ?params ~dcfg ~final ()] scores [final]'s layout against
    the profile aggregated in [dcfg]. [params] defaults to
    {!Layout.Exttsp.default_params} (the scoring half only; no ordering
    runs). Edges whose endpoints were never placed are dropped and
    surface in [blocks_missing]. *)
val analyze :
  ?params:Layout.Exttsp.params -> dcfg:Propeller.Dcfg.t -> final:Linker.Binary.t -> unit -> t

val to_json : t -> Obs.Json.t

(** Cycle-fitness layout-policy search against a real program.

    Drives {!Layout.Search} with the concrete evaluator the harness
    abstracts over: each candidate (policy, params) pair is run through
    WPA against the shared metadata profile, the program is relinked
    under the candidate's plan via the content-addressed build cache,
    and the resulting image is executed through [exec]+[uarch] —
    fitness is simulated cycles (seeded, no wall-clock), the proxy is
    the candidate's Ext-TSP layout score. The report therefore measures
    the Ext-TSP-score-vs-cycles gap directly: how often the proxy
    objective and the machine disagree about which layout is better
    (the AI-PROPELLER observation from PAPERS.md). *)

type entry = {
  id : int;
  round : int;
  policy : string;
  cycles : float;  (** fitness: simulated cycles, lower is better *)
  score : float;  (** proxy: Ext-TSP layout score, higher is better *)
}

type t = {
  name : string;
  requests : int;
  budget : int;
  seed : int;
  evaluated : int;
  rounds : int;
  base_cycles : float;  (** the PGO+ThinLTO baseline binary *)
  exttsp_cycles : float;  (** the round-0 Ext-TSP candidate *)
  exttsp_score : float;
  winner_policy : string;
  winner_cycles : float;
  winner_score : float;
  win_vs_exttsp_pct : float;
      (** cycles saved by the winner relative to Ext-TSP, in percent;
          positive when the search beat Ext-TSP *)
  comparable_pairs : int;
  discordant_pairs : int;
      (** candidate pairs where the better Ext-TSP score had the worse
          cycle count *)
  proxy_agreement : float;  (** concordant / comparable, 1.0 when none *)
  entries : entry list;  (** in evaluation order *)
}

(** [analyze ?pipeline ?core ?requests ?budget ?seed ~ctx ~program ~name
    ()] runs one pipeline to obtain the shared profile and metadata
    binary, then a [budget]-evaluation tournament (default 12) relinking
    and executing each candidate. Per-round spans go to [ctx]'s
    recorder. Deterministic for fixed inputs at any [--jobs] width. *)
val analyze :
  ?pipeline:Propeller.Pipeline.config ->
  ?core:Uarch.Core.config ->
  ?requests:int ->
  ?budget:int ->
  ?seed:int ->
  ctx:Support.Ctx.t ->
  program:Ir.Program.t ->
  name:string ->
  unit ->
  t

val to_json : t -> Obs.Json.t

val to_text : t -> string

type direction = Higher | Lower

type rule = { suffix : string; direction : direction; tolerance_scale : float }

type verdict = {
  metric : string;
  baseline : float;
  current : float;
  delta_pct : float;
  direction : direction;
  regressed : bool;
  improved : bool;
}

type outcome = { verdicts : verdict list; missing : string list; notes : string list }

(* Wall-clock judged metrics (the selfspeed group) carry a widened
   tolerance: machine noise moves them tens of percent run to run, so
   only order-of-magnitude collapses should gate. *)
let rule ?(scale = 1.0) suffix direction = { suffix; direction; tolerance_scale = scale }

let judged =
  let r = rule in
  [
    r "speedup_pct.propeller" Higher;
    r "speedup_pct.bolt" Higher;
    r "summary.geomean_speedup_propeller" Higher;
    r "profile_quality.block_coverage" Higher;
    r "profile_quality.byte_coverage" Higher;
    r "profile_quality.mismatch_rate" Lower;
    r "layout_quality.exttsp_norm" Higher;
    r "layout_quality.fall_through_rate" Higher;
    r "layout_quality.blocks_missing" Lower;
    r ~scale:10.0 "selfspeed.relinks_per_sec" Higher;
    r ~scale:10.0 "selfspeed.requests_per_sec" Higher;
  ]

(* The canary judgment allowlist: the per-machine time-series a fleet
   rollout compares between the canary slice and the control slice.
   All three are simulated (no wall-clock noise), so they judge at the
   caller's raw threshold. *)
let fleet_rules =
  [
    rule "fleet.cycles_per_request" Lower;
    rule "fleet.fall_through_rate" Higher;
    rule "fleet.mispredict_rate" Lower;
  ]

(* Flatten numeric leaves to dotted paths. List elements keyed by their
   "name" member when present (stable under reordering), else by index. *)
let flatten json =
  let out = Hashtbl.create 256 in
  let join prefix k = if prefix = "" then k else prefix ^ "." ^ k in
  let rec go prefix = function
    | Obs.Json.Int i -> Hashtbl.replace out prefix (float_of_int i)
    | Obs.Json.Float f -> Hashtbl.replace out prefix f
    | Obs.Json.Obj fields -> List.iter (fun (k, v) -> go (join prefix k) v) fields
    | Obs.Json.List items ->
      List.iteri
        (fun i item ->
          let key =
            match Obs.Json.member "name" item with
            | Some (Obs.Json.String n) -> n
            | _ -> string_of_int i
          in
          go (join prefix key) item)
        items
    | Obs.Json.Null | Obs.Json.Bool _ | Obs.Json.String _ -> ()
  in
  go "" json;
  out

let suffix_matches key rule =
  let lk = String.length key and ls = String.length rule.suffix in
  lk >= ls
  && String.sub key (lk - ls) ls = rule.suffix
  && (lk = ls || key.[lk - ls - 1] = '.')

let judge rules key = List.find_opt (suffix_matches key) rules

let schema_version json =
  match Obs.Json.member "schema_version" json with
  | Some (Obs.Json.Int v) -> Ok v
  | _ -> Error "missing or non-integer schema_version"

let compare ?(threshold_pct = 5.0) ?(rules = judged) ~baseline ~current () =
  match (baseline, current) with
  | Obs.Json.Obj _, Obs.Json.Obj _ -> (
    match (schema_version baseline, schema_version current) with
    | Error e, _ -> Error ("baseline: " ^ e)
    | _, Error e -> Error ("current: " ^ e)
    | Ok vb, Ok vc when vb > vc ->
      (* An older current file against a newer baseline cannot be the
         intended comparison direction; refuse rather than silently
         judge a subset. *)
      Error
        (Printf.sprintf "schema_version mismatch: baseline %d is newer than current %d" vb
           vc)
    | Ok vb, Ok vc ->
      let notes = ref [] in
      if vb < vc then
        notes :=
          [
            Printf.sprintf
              "baseline schema v%d predates current v%d; judged metrics absent from the \
               baseline are informational, not regressions"
              vb vc;
          ];
      let fb = flatten baseline and fc = flatten current in
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) fb [] |> List.sort String.compare
      in
      let verdicts = ref [] and missing = ref [] in
      List.iter
        (fun key ->
          match judge rules key with
          | None -> ()
          | Some rule -> (
            let base = Hashtbl.find fb key in
            match Hashtbl.find_opt fc key with
            | None -> missing := key :: !missing
            | Some cur ->
              let denom = Float.max (Float.abs base) 1.0 in
              let delta_pct = (cur -. base) /. denom *. 100.0 in
              let worse =
                match rule.direction with Higher -> -.delta_pct | Lower -> delta_pct
              in
              let effective = threshold_pct *. rule.tolerance_scale in
              verdicts :=
                {
                  metric = key;
                  baseline = base;
                  current = cur;
                  delta_pct;
                  direction = rule.direction;
                  regressed = worse > effective;
                  improved = -.worse > effective;
                }
                :: !verdicts))
        keys;
      (* Judged keys the current file gained over an older baseline:
         nothing to diff against, so note them instead of judging. *)
      let gained =
        Hashtbl.fold
          (fun k v acc ->
            if judge rules k <> None && not (Hashtbl.mem fb k) then (k, v) :: acc else acc)
          fc []
        |> List.sort Stdlib.compare
      in
      List.iter
        (fun (k, v) ->
          notes :=
            Printf.sprintf "%s = %g is new in the current schema (no baseline value)" k v
            :: !notes)
        gained;
      Ok { verdicts = List.rev !verdicts; missing = List.rev !missing; notes = List.rev !notes })
  | _ -> Error "bench JSON must be an object at top level"

let regressions o = List.filter (fun v -> v.regressed) o.verdicts

let ok o = regressions o = [] && o.missing = []

let render_verdicts o =
  let buf = Buffer.create 512 in
  List.iter
    (fun v ->
      let mark =
        if v.regressed then "REGRESSED" else if v.improved then "improved" else "ok"
      in
      Buffer.add_string buf
        (Printf.sprintf "%-9s %-55s %12.4f -> %12.4f  (%+.2f%%)\n" mark v.metric v.baseline
           v.current v.delta_pct))
    o.verdicts;
  List.iter
    (fun k -> Buffer.add_string buf (Printf.sprintf "MISSING   %s (present in baseline)\n" k))
    o.missing;
  (if o.verdicts = [] && o.missing = [] then
     Buffer.add_string buf "no judged metrics found in baseline\n");
  Buffer.contents buf

let render_notes o =
  String.concat "" (List.map (fun n -> Printf.sprintf "NOTE      %s\n" n) o.notes)

let render o = render_verdicts o ^ render_notes o

type t = {
  exttsp_score : float;
  exttsp_norm : float;
  edge_weight : int;
  fall_through_weight : int;
  fall_through_rate : float;
  hot_funcs_scored : int;
  blocks_missing : int;
}

(* Score one hot function: nodes are its sampled blocks that the final
   binary placed, ordered by final address; sizes are final (relaxed)
   sizes; edges are the profiled intra-function transfers. Returns
   (score, edge_weight, fall_through_weight, missing_blocks,
   placed_blocks). *)
let score_func params (final : Linker.Binary.t) (d : Propeller.Dcfg.dfunc) =
  let placed = ref [] in
  let missing = ref 0 in
  Hashtbl.iter
    (fun bb (_ : Propeller.Dcfg.mblock) ->
      match Linker.Binary.block_info final ~func:d.dname ~block:bb with
      | Some info -> placed := (bb, info) :: !placed
      | None -> incr missing)
    d.dblocks;
  let placed =
    List.sort
      (fun (_, (a : Linker.Binary.block_info)) (_, (b : Linker.Binary.block_info)) ->
        compare a.addr b.addr)
      !placed
  in
  match placed with
  | [] -> (0.0, 0, 0, !missing, 0)
  | _ ->
    let n = List.length placed in
    let index = Hashtbl.create n in
    List.iteri (fun i (bb, _) -> Hashtbl.replace index bb i) placed;
    let sizes = Array.make n 0 in
    let addr_of = Array.make n 0 in
    List.iteri
      (fun i (_, (info : Linker.Binary.block_info)) ->
        sizes.(i) <- info.size;
        addr_of.(i) <- info.addr)
      placed;
    let edges = ref [] in
    let edge_weight = ref 0 in
    let fall_through = ref 0 in
    Support.Itab.iter
      (fun key cnt ->
        let src_bb = Support.Packed.src key and dst_bb = Support.Packed.dst key in
        if src_bb <> dst_bb then
          match (Hashtbl.find_opt index src_bb, Hashtbl.find_opt index dst_bb) with
          | Some s, Some dst ->
            edges := (s, dst, float_of_int cnt) :: !edges;
            edge_weight := !edge_weight + cnt;
            if addr_of.(dst) = addr_of.(s) + sizes.(s) then
              fall_through := !fall_through + cnt
          | None, _ | _, None -> ())
      d.dedges;
    (* Deterministic scoring input: dedges iteration order is arbitrary. *)
    let edges = List.sort compare !edges in
    let order = List.init n Fun.id in
    let problem = Layout.Problem.make ~sizes ~weights:(Array.make n 0.0) ~edges ~entry:0 in
    let score = Layout.Exttsp.score ~params ~order problem in
    (score, !edge_weight, !fall_through, !missing, n)

let analyze ?(params = Layout.Exttsp.default_params) ~(dcfg : Propeller.Dcfg.t)
    ~(final : Linker.Binary.t) () =
  let score = ref 0.0 in
  let edge_weight = ref 0 in
  let fall_through = ref 0 in
  let missing = ref 0 in
  let scored = ref 0 in
  List.iter
    (fun d ->
      let s, w, ft, m, placed = score_func params final d in
      if placed > 0 then incr scored;
      score := !score +. s;
      edge_weight := !edge_weight + w;
      fall_through := !fall_through + ft;
      missing := !missing + m)
    (Propeller.Dcfg.hot_funcs dcfg);
  let fw = float_of_int !edge_weight in
  {
    exttsp_score = !score;
    exttsp_norm = (if fw > 0.0 then !score /. fw else 0.0);
    edge_weight = !edge_weight;
    fall_through_weight = !fall_through;
    fall_through_rate = (if fw > 0.0 then float_of_int !fall_through /. fw else 0.0);
    hot_funcs_scored = !scored;
    blocks_missing = !missing;
  }

let to_json l =
  Obs.Json.Obj
    [
      ("exttsp_score", Obs.Json.Float l.exttsp_score);
      ("exttsp_norm", Obs.Json.Float l.exttsp_norm);
      ("edge_weight", Obs.Json.Int l.edge_weight);
      ("fall_through_weight", Obs.Json.Int l.fall_through_weight);
      ("fall_through_rate", Obs.Json.Float l.fall_through_rate);
      ("hot_funcs_scored", Obs.Json.Int l.hot_funcs_scored);
      ("blocks_missing", Obs.Json.Int l.blocks_missing);
    ]

(** The per-run diagnostics record: profile quality + layout quality +
    µarch counter deltas, computed from one {!Propeller.Pipeline}
    result.

    This is what [propeller_stat] prints, what the bench JSON emitter
    embeds per benchmark, and what {!publish} pushes into a recorder's
    metrics registry as [diag.*] gauges — so a trace/metrics export of
    an instrumented run carries the run's quality verdict alongside its
    spans. Everything is a function of the simulated run: same seed,
    byte-identical {!to_json} output. *)

type uarch_delta = {
  speedup_pct : float;  (** Cycle improvement of opt vs base (+ = faster). *)
  cycles_pct : float;  (** Cycle delta (negative = fewer cycles). *)
  l1i_miss_pct : float;  (** I1: demand L1i misses. *)
  l2_code_miss_pct : float;  (** I2. *)
  l3_code_miss_pct : float;  (** I3. *)
  itlb_miss_pct : float;  (** T1. *)
  itlb_stall_pct : float;  (** T2: stall-causing iTLB misses. *)
  btb_resteer_pct : float;  (** B1: BACLEARS front-end resteers. *)
  taken_branch_pct : float;  (** B2. *)
  dsb_miss_pct : float;
}

(** [delta ~base ~opt] is the counter movement of [opt] relative to
    [base], in percent ({!Support.Stats.ratio_pct} per counter). *)
val delta : base:Uarch.Core.counters -> opt:Uarch.Core.counters -> uarch_delta

type t = {
  name : string;
  quality : Quality.t;
  layout : Layoutq.t;
  wpa_layout_score : float;  (** The objective WPA aimed for. *)
  hot_funcs : int;
  hot_objects : int;
  total_objects : int;
  phases : (string * float) list;  (** Phase name -> modelled seconds. *)
  uarch : uarch_delta option;  (** Present when both binaries were measured. *)
}

(** [analyze ~name ?counters ~result ()] computes the full record from a
    pipeline result. The DCFG is rebuilt from the metadata binary (the
    authoritative sample-to-block mapping); the layout score targets the
    optimized binary. [counters] carries (baseline, optimized) µarch
    measurements when the caller ran them. *)
val analyze :
  name:string ->
  ?counters:Uarch.Core.counters * Uarch.Core.counters ->
  result:Propeller.Pipeline.result ->
  unit ->
  t

val to_json : t -> Obs.Json.t

(** [to_text t] is the human-readable rendering (aligned key/value
    blocks, one per judgement area). *)
val to_text : t -> string

(** [publish ?ctx t] records every scalar as a [diag.<area>.<metric>]
    gauge on the context's recorder (default: the global one). *)
val publish : ?ctx:Support.Ctx.t -> t -> unit

(** Bench-trajectory comparison: diff two BENCH_*.json files (see
    EXPERIMENTS.md for the schema) and flag regressions.

    Both files are flattened to [path -> number] maps — benchmark array
    entries are keyed by their ["name"] field, so
    [benchmarks.505.mcf.speedup_pct.propeller] is stable across
    reorderings. Only the *judged* metrics (a fixed allowlist of path
    suffixes with a better-direction each) enter the verdict; raw
    counters travel in the file for humans but never fail a build.

    A judged metric present in the baseline but absent from the current
    file is reported in [missing] and fails {!ok} — schema erosion is a
    regression too. *)

type direction = Higher | Lower  (** Which way is better. *)

type verdict = {
  metric : string;  (** Flattened path. *)
  baseline : float;
  current : float;
  delta_pct : float;
      (** Relative change in percent; computed against
          [max |baseline| 1.0] so near-zero baselines degrade to
          absolute deltas instead of exploding. *)
  direction : direction;
  regressed : bool;  (** Moved the wrong way past the threshold. *)
  improved : bool;  (** Moved the right way past the threshold. *)
}

type outcome = {
  verdicts : verdict list;  (** Judged metrics present in both files. *)
  missing : string list;  (** Judged metrics the current file lost. *)
}

(** The allowlist of judged metrics: (path suffix, better direction). *)
val judged : (string * direction) list

(** [compare ?threshold_pct ~baseline ~current] diffs two parsed bench
    JSON trees. Errors on schema_version mismatch or non-object input.
    [threshold_pct] defaults to 5.0. *)
val compare :
  ?threshold_pct:float ->
  baseline:Obs.Json.t ->
  current:Obs.Json.t ->
  unit ->
  (outcome, string) result

(** [regressions o] is the subset of verdicts that regressed. *)
val regressions : outcome -> verdict list

(** [ok o] is true when nothing regressed and nothing judged went
    missing — the comparator's exit-code predicate. *)
val ok : outcome -> bool

(** [render o] is a plain-text report (one line per judged metric,
    regressions marked). *)
val render : outcome -> string

(** Bench-trajectory comparison: diff two BENCH_*.json files (see
    EXPERIMENTS.md for the schema) and flag regressions.

    Both files are flattened to [path -> number] maps — benchmark array
    entries are keyed by their ["name"] field, so
    [benchmarks.505.mcf.speedup_pct.propeller] is stable across
    reorderings. Only the *judged* metrics (a fixed allowlist of path
    suffixes with a better-direction each) enter the verdict; raw
    counters travel in the file for humans but never fail a build.

    A judged metric present in the baseline but absent from the current
    file is reported in [missing] and fails {!ok} — schema erosion is a
    regression too. The reverse is tolerated: a baseline whose
    [schema_version] predates the current file's compares the judged
    metrics both sides have and reports the rest in [notes]
    (informational), so extending the schema never forces a flag-day
    baseline regeneration. *)

type direction = Higher | Lower  (** Which way is better. *)

(** One allowlist entry. [tolerance_scale] multiplies the caller's
    threshold for this metric — wall-clock metrics (selfspeed) use 10.0
    so machine noise doesn't gate, while a real order-of-magnitude
    collapse still does. *)
type rule = { suffix : string; direction : direction; tolerance_scale : float }

type verdict = {
  metric : string;  (** Flattened path. *)
  baseline : float;
  current : float;
  delta_pct : float;
      (** Relative change in percent; computed against
          [max |baseline| 1.0] so near-zero baselines degrade to
          absolute deltas instead of exploding. *)
  direction : direction;
  regressed : bool;  (** Moved the wrong way past the threshold. *)
  improved : bool;  (** Moved the right way past the threshold. *)
}

type outcome = {
  verdicts : verdict list;  (** Judged metrics present in both files. *)
  missing : string list;  (** Judged metrics the current file lost. *)
  notes : string list;
      (** Informational: schema-skew explanation and judged metrics the
          current file gained over an older baseline. Never fail {!ok}. *)
}

(** The allowlist of judged metrics. *)
val judged : rule list

(** The canary-judgment allowlist of a fleet rollout: per-machine
    time-series aggregates ([fleet.cycles_per_request],
    [fleet.fall_through_rate], [fleet.mispredict_rate]) compared
    between a canary slice and its control slice. *)
val fleet_rules : rule list

(** [compare ?threshold_pct ?rules ~baseline ~current] diffs two parsed
    bench JSON trees under the [rules] allowlist (default {!judged};
    fleet rollouts pass {!fleet_rules}). Errors on non-object input or
    when the baseline's schema_version is *newer* than the current
    file's; an older baseline degrades gracefully (see [notes]).
    [threshold_pct] defaults to 5.0. *)
val compare :
  ?threshold_pct:float ->
  ?rules:rule list ->
  baseline:Obs.Json.t ->
  current:Obs.Json.t ->
  unit ->
  (outcome, string) result

(** [regressions o] is the subset of verdicts that regressed. *)
val regressions : outcome -> verdict list

(** [ok o] is true when nothing regressed and nothing judged went
    missing — the comparator's exit-code predicate. [notes] never
    affect it. *)
val ok : outcome -> bool

(** [render o] is a plain-text report (one line per judged metric,
    regressions marked, NOTE lines last). CLI consumers should prefer
    the split pair below so informational notes never pollute a piped
    stdout. *)
val render : outcome -> string

(** [render_verdicts o] is the machine-parseable half of {!render}:
    verdict and MISSING lines only — every line starts with a fixed
    mark ([ok]/[improved]/[REGRESSED]/[MISSING]), so piped consumers
    can split on whitespace. *)
val render_verdicts : outcome -> string

(** [render_notes o] is the informational half: the NOTE lines
    ([propeller_stat diff] routes these to stderr). *)
val render_notes : outcome -> string

(** Observability of the observer: how much layout quality do hardware
    branch records buy over portable software samples?

    Runs the full Propeller pipeline twice over the same workload — once
    per {!Perfmon.Source} — and reports the gap: per-function weight
    correlation between the two profiles, achieved fall-through rate and
    Ext-TSP score of each final layout, and ground-truth simulated
    cycles (base vs each optimized binary) from a shared {!Uarch.Core}
    measurement run. This is the experiment the Go PGO proposal ran
    informally when it chose pprof samples over LBRs and accepted the
    fidelity loss; here the loss is a number per workload. *)

(** One profile regime's half of the comparison. *)
type side = {
  source : Perfmon.Source.t;
  profile_samples : int;  (** Samples in the (possibly synthesized) profile. *)
  profile_records : int;
  distinct_edges : int;
  hot_funcs : int;
  exttsp_norm : float;  (** {!Layoutq} score of the final layout. *)
  fall_through_rate : float;
      (** Ground truth from executing the optimized binary: physically
          not-taken conditionals over all transfer sites. *)
  po_cycles : float;  (** Simulated cycles of the optimized binary. *)
  speedup_pct : float;  (** vs the shared baseline build. *)
}

type t = {
  name : string;
  requests : int;  (** Measurement-run request count. *)
  base_cycles : float;
  base_fall_through_rate : float;
  lbr : side;
  sampled : side;
  weight_correlation : float;
      (** Pearson correlation of per-function profile weight fractions
          across the two sources, over the union of hot functions. *)
  fall_through_gap : float;  (** lbr - sampled, achieved rate. *)
  cycle_gap_pct : float;
      (** How much slower the sampled-profile binary runs than the
          LBR-profile one, in percent (positive = LBR wins). *)
}

(** [analyze ?pipeline ?core ?requests ~ctx ~program ~name ()] runs both
    pipelines (sharing one build env, so the identical metadata phase is
    built once) plus a baseline build, measures all three binaries under
    [requests] of traffic on [core], and assembles the gap report.
    Deterministic for a fixed configuration. Pipeline telemetry lands in
    [ctx]'s recorder. *)
val analyze :
  ?pipeline:Propeller.Pipeline.config ->
  ?core:Uarch.Core.config ->
  ?requests:int ->
  ctx:Support.Ctx.t ->
  program:Ir.Program.t ->
  name:string ->
  unit ->
  t

val to_json : t -> Obs.Json.t

val to_text : t -> string

(** Profile-quality metrics: is this LBR profile trustworthy?

    The paper's premise (and BOLT's experience) is that layout payoff is
    bounded by profile coverage and freshness. Three judgements are
    computed from the aggregated LBR profile against the metadata
    binary's block map (via the reconstructed {!Propeller.Dcfg}):

    - {b coverage} — how much of the mapped code received samples, by
      block, by byte and by function. Low coverage means the load test
      exercised little of the binary and the layout is trained on a
      sliver.
    - {b mismatch rate} — the weighted fraction of taken-branch records
      whose endpoints do not map to any block of the binary. A profile
      collected against the binary it is applied to mismatches ~never;
      a stale profile (different binary version or layout) mismatches
      heavily. This is the stale-profile detector.
    - {b hot-path concentration} — the fraction of sampled blocks needed
      to cover 90% of the sample mass. Warehouse workloads concentrate
      (small is typical); a flat profile suggests sampling noise or an
      untrained workload. *)

type t = {
  total_samples : int;  (** LBR sample events taken. *)
  total_records : int;  (** Branch records across all samples. *)
  mapped_blocks : int;  (** Blocks described by the address map. *)
  sampled_blocks : int;  (** ... of which received >= 1 sample. *)
  block_coverage : float;  (** sampled_blocks / mapped_blocks. *)
  byte_coverage : float;  (** Sampled code bytes / mapped code bytes. *)
  func_coverage : float;  (** Functions with samples / mapped functions. *)
  mismatch_records : int;  (** Weighted records with unmappable endpoints. *)
  mismatch_rate : float;  (** mismatch_records / total branch records. *)
  concentration_p90 : float;
      (** Fraction of sampled blocks covering 90% of sample mass. *)
  pebs_samples : int;  (** Data-miss samples, when PEBS ran. *)
}

(** [analyze ?pebs ~dcfg ~profile ()] judges [profile] against the
    binary whose block map produced [dcfg] (build it with
    {!Propeller.Dcfg.build} on the metadata binary). The mismatch rate
    is computed from the raw profile records, not the DCFG, so stale
    records that the DCFG silently dropped are still counted. *)
val analyze :
  ?pebs:Perfmon.Pebs.profile ->
  dcfg:Propeller.Dcfg.t ->
  profile:Perfmon.Lbr.profile ->
  unit ->
  t

(** [to_json q] is a stable-field-order JSON object (schema documented
    in EXPERIMENTS.md). *)
val to_json : t -> Obs.Json.t

type t = { hot : int list; cold : int list }

let partition ~counts ?(threshold = 0.0) () =
  let hot = ref [] and cold = ref [] in
  for i = Array.length counts - 1 downto 0 do
    if i = 0 || counts.(i) > threshold then hot := i :: !hot else cold := i :: !cold
  done;
  { hot = !hot; cold = !cold }

let partition_batch ~pool ?(threshold = 0.0) ~counts () =
  Support.Pool.map_array pool (Array.length counts) (fun i ->
      partition ~counts:counts.(i) ~threshold ())

let trampoline_bytes = 16

let call_split_profitable ~cold_bytes ~entry_count ~cold_entry_count =
  cold_bytes >= 4 * trampoline_bytes
  && (entry_count <= 0.0 || cold_entry_count /. entry_count < 0.01)

(** Pluggable layout policies.

    A policy is a named function from a {!Problem.t} to a layout — a
    permutation of [0 .. n-1] with the problem's entry first. All
    policies registered here are deterministic: any randomness is drawn
    from {!Support.Rng} streams derived from [params.seed], so the same
    (problem, params) pair always yields the same layout on any number
    of domains.

    Registered policies (see {!all}):
    - ["exttsp"] — Ext-TSP chain merging with priority-queue retrieval
      (paper §3.3/§4.7); the default everywhere.
    - ["exttsp-linear"] — Ext-TSP with linear candidate rescan; same
      layouts, different running time (the §4.7 ablation).
    - ["callchain"] — C³/hfsort call-chain clustering lifted to block
      granularity: blocks cluster onto their hottest predecessor, entry
      pinned first.
    - ["greedy"] — greedy fall-through chaining: follow the heaviest
      untaken successor edge from the entry, restarting from the hottest
      unplaced block.
    - ["hillclimb"] — random-restart hill climbing: [params.restarts]
      seeded shuffles, each improved by first-improvement adjacent
      swaps, best Ext-TSP score wins.
    - ["local-search"] — seeded local search over a swap / segment-move
      / segment-reverse neighborhood, starting from the Ext-TSP layout
      ([params.steps] proposals, greedy acceptance). Never scores below
      Ext-TSP.

    The search harness ({!Search}) mutates [params] per candidate, so
    every tunable shared by policies lives in one flat record. *)

type params = {
  exttsp : Exttsp.params;  (** Ext-TSP knobs; also the scoring objective. *)
  max_cluster_size : int;  (** Cluster byte cap for ["callchain"]. *)
  seed : int;  (** Root seed for stochastic policies. *)
  restarts : int;  (** Restart count for ["hillclimb"]. *)
  steps : int;  (** Proposal budget for ["local-search"] / "hillclimb". *)
}

val default_params : params
(** [{ exttsp = Exttsp.default_params; max_cluster_size = 1 lsl 20;
      seed = 1; restarts = 4; steps = 256 }] *)

type t = {
  name : string;
  order : ?params:params -> Problem.t -> int list;
      (** Returns a permutation of [0 .. size-1], entry first. *)
}

(** [register p] adds a policy to the registry; a policy with the same
    name replaces the old one (insertion position preserved). *)
val register : t -> unit

(** [find name] looks up a registered policy. *)
val find : string -> t option

(** [all ()] lists registered policies in registration order. *)
val all : unit -> t list

(** [names ()] lists registered policy names in registration order. *)
val names : unit -> string list

(** [order_batch ?params ~pool policy problems] solves every problem
    across the domain pool and returns [(order, exttsp_score)] per
    problem, in input order. The score is always the Ext-TSP objective
    under [params.exttsp] regardless of policy, so layouts from
    different policies are comparable. Results commit in index order —
    identical output for any pool width (the §3.4 sharding contract). *)
val order_batch :
  ?params:params -> pool:Support.Pool.t -> t -> Problem.t array -> (int list * float) array

type params = {
  exttsp : Exttsp.params;
  max_cluster_size : int;
  seed : int;
  restarts : int;
  steps : int;
}

let default_params =
  { exttsp = Exttsp.default_params; max_cluster_size = 1 lsl 20; seed = 1; restarts = 4; steps = 256 }

type t = { name : string; order : ?params:params -> Problem.t -> int list }

let registry : t list ref = ref []

let register p =
  if List.exists (fun q -> q.name = p.name) !registry then
    registry := List.map (fun q -> if q.name = p.name then p else q) !registry
  else registry := !registry @ [ p ]

let find name = List.find_opt (fun p -> p.name = name) !registry

let all () = !registry

let names () = List.map (fun p -> p.name) !registry

(* Move [entry] to the front, preserving the relative order of the
   rest. Policies built from entry-less orderings (function-granularity
   clustering) use this to satisfy the entry-first contract. *)
let pin_entry entry order = entry :: List.filter (fun n -> n <> entry) order

(* Per-source successor slices over the problem's flat edges. The flat
   bundle is sorted by (src, dst), so each slice is contiguous and
   dst-ascending — deterministic tie-breaking for free. *)
let successor_offsets (p : Problem.t) =
  let n = Problem.size p in
  let e = Problem.flat p in
  let m = Array.length e.esrc in
  let off = Array.make (n + 1) 0 in
  for i = 0 to m - 1 do
    off.(e.esrc.(i) + 1) <- off.(e.esrc.(i) + 1) + 1
  done;
  for i = 1 to n do
    off.(i) <- off.(i) + off.(i - 1)
  done;
  (e, off)

let exttsp_order ?(params = default_params) p = Exttsp.order ~params:params.exttsp p

let exttsp_linear_order ?(params = default_params) p =
  Exttsp.order ~params:{ params.exttsp with use_pqueue = false } p

let callchain_order ?(params = default_params) p =
  Hfsort.order ~max_cluster_size:params.max_cluster_size p |> pin_entry p.Problem.entry

(* Greedy fall-through chaining (Pettis-Hansen style): from the current
   block, fall through to its heaviest unplaced successor; when none,
   restart from the hottest unplaced block (ties by smallest id). *)
let greedy_order ?params:_ (p : Problem.t) =
  let n = Problem.size p in
  if n = 0 then []
  else begin
    let e, off = successor_offsets p in
    let placed = Array.make n false in
    let next_successor src =
      let best = ref (-1) and best_w = ref 0.0 in
      for i = off.(src) to off.(src + 1) - 1 do
        let dst = e.edst.(i) in
        if (not placed.(dst)) && e.ew.(i) > !best_w then begin
          best := dst;
          best_w := e.ew.(i)
        end
      done;
      !best
    in
    let hottest_unplaced () =
      let best = ref (-1) and best_w = ref neg_infinity in
      for i = 0 to n - 1 do
        if (not placed.(i)) && p.weights.(i) > !best_w then begin
          best := i;
          best_w := p.weights.(i)
        end
      done;
      !best
    in
    let out = ref [] in
    let place node =
      placed.(node) <- true;
      out := node :: !out
    in
    place p.entry;
    let cur = ref p.entry in
    for _ = 1 to n - 1 do
      let nxt = next_successor !cur in
      let nxt = if nxt >= 0 then nxt else hottest_unplaced () in
      place nxt;
      cur := nxt
    done;
    List.rev !out
  end

(* Shared by the stochastic policies: score the whole arrangement under
   the Ext-TSP objective, allocation-free per evaluation. *)
let make_scorer params p =
  let scratch = Exttsp.scratch (Problem.size p) in
  fun arr -> Exttsp.score_into ~params:params.exttsp scratch p arr

(* Random-restart hill climbing: each restart shuffles the non-entry
   suffix, then runs first-improvement adjacent-swap passes until a
   full pass makes no progress or the proposal budget runs out. *)
let hillclimb_order ?(params = default_params) (p : Problem.t) =
  let n = Problem.size p in
  if n <= 2 then List.init n (fun i -> if i = 0 then p.entry else if i <= p.entry then i - 1 else i)
  else begin
    let score = make_scorer params p in
    let root = Support.Rng.create (Int64.of_int params.seed) in
    let best_arr = ref [||] and best_s = ref neg_infinity in
    for r = 0 to max 1 params.restarts - 1 do
      let rng = Support.Rng.split root r in
      let arr = Array.init n (fun i -> if i = 0 then p.entry else if i <= p.entry then i - 1 else i) in
      let tail = Array.sub arr 1 (n - 1) in
      Support.Rng.shuffle rng tail;
      Array.blit tail 0 arr 1 (n - 1);
      let s = ref (score arr) in
      let budget = ref (max 1 params.steps) in
      let improved = ref true in
      while !improved && !budget > 0 do
        improved := false;
        let i = ref 1 in
        while !i < n - 1 && !budget > 0 do
          decr budget;
          let a = arr.(!i) and b = arr.(!i + 1) in
          arr.(!i) <- b;
          arr.(!i + 1) <- a;
          let s' = score arr in
          if s' > !s then begin
            s := s';
            improved := true
          end
          else begin
            arr.(!i) <- a;
            arr.(!i + 1) <- b
          end;
          incr i
        done
      done;
      if !s > !best_s then begin
        best_s := !s;
        best_arr := Array.copy arr
      end
    done;
    Array.to_list !best_arr
  end

(* Seeded local search: start from the Ext-TSP layout and propose
   [steps] random swap / segment-move / segment-reverse mutations of
   the non-entry suffix, keeping strict improvements. Monotone in the
   objective, so it never scores below its Ext-TSP seed. *)
let local_search_order ?(params = default_params) (p : Problem.t) =
  let base = Exttsp.order ~params:params.exttsp p in
  let n = Problem.size p in
  if n <= 2 then base
  else begin
    let score = make_scorer params p in
    let arr = Array.of_list base in
    let rng = Support.Rng.split (Support.Rng.create (Int64.of_int params.seed)) 0x10ca1 in
    let s = ref (score arr) in
    let swap i j =
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    in
    let reverse i j =
      let a = ref i and b = ref j in
      while !a < !b do
        swap !a !b;
        incr a;
        decr b
      done
    in
    (* Move arr.(i) to position j, shifting the segment between. Its own
       inverse is moving back from j to i. *)
    let move i j =
      let v = arr.(i) in
      if i < j then Array.blit arr (i + 1) arr i (j - i)
      else Array.blit arr j arr (j + 1) (i - j);
      arr.(j) <- v
    in
    for _ = 1 to max 1 params.steps do
      let i = 1 + Support.Rng.int rng (n - 1) in
      let j = 1 + Support.Rng.int rng (n - 1) in
      if i <> j then begin
        let kind = Support.Rng.int rng 3 in
        (match kind with
        | 0 -> swap i j
        | 1 -> move i j
        | _ -> reverse (min i j) (max i j));
        let s' = score arr in
        if s' > !s then s := s'
        else
          match kind with
          | 0 -> swap i j
          | 1 -> move j i
          | _ -> reverse (min i j) (max i j)
      end
    done;
    Array.to_list arr
  end

let () =
  register { name = "exttsp"; order = exttsp_order };
  register { name = "exttsp-linear"; order = exttsp_linear_order };
  register { name = "callchain"; order = callchain_order };
  register { name = "greedy"; order = greedy_order };
  register { name = "hillclimb"; order = hillclimb_order };
  register { name = "local-search"; order = local_search_order }

let order_batch ?(params = default_params) ~pool policy problems =
  Support.Pool.map_array pool (Array.length problems) (fun i ->
      let p = problems.(i) in
      let o = policy.order ~params p in
      let s = Exttsp.score ~params:params.exttsp ~order:o p in
      (o, s))

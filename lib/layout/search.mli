(** Deterministic, evaluation-budgeted tournament search over layout
    policies (the AI-PROPELLER setup from PAPERS.md, fitted to this
    repo's simulator).

    The harness owns candidate generation — which policies run with
    which {!Policy.params} — and is generic over how a candidate is
    scored: callers supply [evaluate], which typically relinks the
    program under the candidate policy and executes the image through
    [exec]+[uarch], returning simulated cycles as fitness (see
    [Diagnostics.Lsearch] for that evaluator). Keeping the evaluator
    abstract keeps this module free of engine dependencies and lets
    tests drive the tournament with synthetic fitness functions.

    Determinism: candidate mutation draws from a {!Support.Rng} stream
    derived from [seed]; rounds, candidate order and tie-breaking are
    all fixed, so the same (budget, seed, evaluator) triple reproduces
    the same winner bit-for-bit. No wall-clock anywhere.

    Round 1 evaluates every registered policy once under default
    parameters — so the report always contains an Ext-TSP baseline to
    beat. Subsequent rounds mutate the best candidate so far (parameter
    scaling, window resizing, reseeding, occasional policy switches)
    until the evaluation budget is spent. *)

type candidate = { policy : string;  (** registered policy name *) params : Policy.params }

type outcome = {
  fitness : float;  (** simulated cycles — lower is better *)
  proxy : float;  (** Ext-TSP score of the layout — higher is better *)
}

type entry = { id : int;  (** evaluation index, 0-based *) round : int; candidate : candidate; outcome : outcome }

type report = {
  budget : int;
  seed : int;
  rounds : int;
  entries : entry list;  (** in evaluation order; length <= budget *)
  winner : entry;  (** lowest fitness; ties broken by earliest id *)
  baseline : entry option;  (** the round-1 ["exttsp"] entry *)
  comparable_pairs : int;
      (** entry pairs whose fitness AND proxy both differ — the pairs on
          which proxy and cycles can agree or disagree *)
  discordant_pairs : int;
      (** comparable pairs where the better Ext-TSP score has the worse
          cycle count — the score-vs-cycles gap, counted *)
  proxy_agreement : float;
      (** concordant / comparable, in [0, 1]; 1.0 when no pair is
          comparable *)
}

(** [run ?recorder ?seed ?round_size ~budget ~evaluate ()] runs the
    tournament: at most [budget] evaluations (at least 1), grouped in
    rounds of [round_size] (default 4) after the all-policies opening
    round. When [recorder] is given, each round is wrapped in a
    ["layout_search.round"] trace span carrying the round's best
    fitness. [evaluate] must be deterministic for reproducibility. *)
val run :
  ?recorder:Obs.Recorder.t ->
  ?seed:int ->
  ?round_size:int ->
  budget:int ->
  evaluate:(candidate -> outcome) ->
  unit ->
  report

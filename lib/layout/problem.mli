(** One code-layout problem, shared by every layout policy.

    A problem is the (sizes, weights, edges, entry) quadruple that the
    old unit-terminated [Exttsp.order]/[Hfsort.order] signatures took as
    labelled arguments, packaged as a first-class value so policies can
    be passed around, registered and batch-solved uniformly.

    Nodes are integers [0 .. n-1]; at block granularity they are basic
    blocks and [edges] are branch/fall-through frequencies, at function
    granularity they are functions and [edges] are call arcs.

    The record carries a lazily computed {e flat edge} cache: the edge
    list deduplicated (duplicate pairs accumulated in input order, so
    float sums are bit-stable), self-edges and non-positive weights
    dropped, sorted by (src, dst) — exactly the preprocessing every
    scoring call used to redo from scratch. Search loops score the same
    problem hundreds of times; with the cache the list is parsed once. *)

(** Deduplicated edges as flat parallel arrays in (src, dst) order.
    Element order is the float accumulation order of scoring, so it is
    part of the determinism contract. *)
type flat = { esrc : int array; edst : int array; ew : float array }

type t = {
  sizes : int array;  (** [sizes.(i)]: code bytes of node [i]. *)
  weights : float array;  (** [weights.(i)]: execution count of node [i]. *)
  edges : (int * int * float) list;
      (** [(src, dst, weight)] transfer frequencies; duplicates allowed. *)
  entry : int;  (** Node pinned to the front of every layout. *)
  mutable flat_cache : flat option;  (** Use {!flat}, not this field. *)
  mutable total_cache : float option;  (** Use {!total_weight}. *)
}

(** [make ~sizes ~weights ~edges ~entry] packages one problem. The
    caches start empty; arrays are owned by the problem and must not be
    mutated afterwards. *)
val make :
  sizes:int array -> weights:float array -> edges:(int * int * float) list -> entry:int -> t

(** Number of nodes. *)
val size : t -> int

(** [flat t] is the deduplicated flat-edge form, computed on first use
    and cached. Duplicate (src, dst) pairs are accumulated in input
    order; self-edges and weights <= 0 are dropped; the result is
    sorted by (src, dst). *)
val flat : t -> flat

(** [total_weight t] is the sum of non-self edge weights in input
    order (the normalizer of [Exttsp.score_norm]), cached. *)
val total_weight : t -> float

type candidate = { policy : string; params : Policy.params }

type outcome = { fitness : float; proxy : float }

type entry = { id : int; round : int; candidate : candidate; outcome : outcome }

type report = {
  budget : int;
  seed : int;
  rounds : int;
  entries : entry list;
  winner : entry;
  baseline : entry option;
  comparable_pairs : int;
  discordant_pairs : int;
  proxy_agreement : float;
}

(* Mutate the incumbent candidate: one random tweak per child. All
   choice arrays are fixed so the proposal distribution is part of the
   determinism contract. *)
let forward_windows = [| 256; 512; 1024; 2048; 4096 |]
let backward_windows = [| 160; 320; 640; 1280; 2560 |]
let weight_scales = [| 0.5; 0.8; 1.25; 2.0 |]
let split_chains = [| 8; 16; 24; 48 |]
let step_budgets = [| 256; 512; 1024; 2048 |]
let restart_counts = [| 2; 4; 8 |]

let mutate rng (c : candidate) =
  let p = c.params in
  let e = p.exttsp in
  match Support.Rng.int rng 8 with
  | 0 ->
    let fw = Support.Rng.choose rng weight_scales *. e.Exttsp.forward_weight in
    { c with params = { p with exttsp = { e with forward_weight = fw } } }
  | 1 ->
    let bw = Support.Rng.choose rng weight_scales *. e.Exttsp.backward_weight in
    { c with params = { p with exttsp = { e with backward_weight = bw } } }
  | 2 ->
    { c with
      params = { p with exttsp = { e with forward_window = Support.Rng.choose rng forward_windows } }
    }
  | 3 ->
    { c with
      params =
        { p with exttsp = { e with backward_window = Support.Rng.choose rng backward_windows } }
    }
  | 4 ->
    { c with
      params = { p with exttsp = { e with max_split_chain = Support.Rng.choose rng split_chains } }
    }
  | 5 ->
    (* Reseed the stochastic policies and resize their budgets. *)
    { c with
      params =
        { p with
          seed = Support.Rng.int rng 0x3fffffff;
          steps = Support.Rng.choose rng step_budgets;
          restarts = Support.Rng.choose rng restart_counts;
        }
    }
  | 6 -> { c with policy = Support.Rng.choose rng (Array.of_list (Policy.names ())) }
  | _ ->
    (* Compound: switch policy and reseed in one step, so policy
       switches are not stuck with the incumbent's seed. *)
    { policy = Support.Rng.choose rng (Array.of_list (Policy.names ()));
      params = { p with seed = Support.Rng.int rng 0x3fffffff };
    }

let pair_stats entries =
  let arr = Array.of_list entries in
  let n = Array.length arr in
  let comparable = ref 0 and discordant = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = arr.(i).outcome and b = arr.(j).outcome in
      if a.fitness <> b.fitness && a.proxy <> b.proxy then begin
        incr comparable;
        (* Concordant: the higher proxy score has the lower cycle
           count. *)
        let proxy_says_a = a.proxy > b.proxy in
        let cycles_say_a = a.fitness < b.fitness in
        if proxy_says_a <> cycles_say_a then incr discordant
      end
    done
  done;
  let comparable = !comparable and discordant = !discordant in
  let agreement =
    if comparable = 0 then 1.0
    else float_of_int (comparable - discordant) /. float_of_int comparable
  in
  (comparable, discordant, agreement)

let run ?recorder ?(seed = 1) ?(round_size = 4) ~budget ~evaluate () =
  let budget = max 1 budget in
  let rng = Support.Rng.split (Support.Rng.create (Int64.of_int seed)) 0x5ea5c4 in
  let entries = ref [] in
  let next_id = ref 0 in
  let best = ref None in
  let better (a : entry) (b : entry) =
    a.outcome.fitness < b.outcome.fitness
    || (a.outcome.fitness = b.outcome.fitness && a.id < b.id)
  in
  let eval round candidate =
    let outcome = evaluate candidate in
    let e = { id = !next_id; round; candidate; outcome } in
    incr next_id;
    entries := e :: !entries;
    (match !best with Some b when not (better e b) -> () | _ -> best := Some e);
    e
  in
  let run_round round candidates =
    let body () =
      List.iter (fun c -> if !next_id < budget then ignore (eval round c)) candidates;
      match recorder with
      | None -> ()
      | Some r ->
        Obs.Recorder.span_args r
          [
            ("round", Obs.Trace.Int round);
            ("evaluated", Obs.Trace.Int !next_id);
            ( "best_fitness",
              Obs.Trace.Float (match !best with Some b -> b.outcome.fitness | None -> nan) );
          ]
    in
    match recorder with
    | None -> body ()
    | Some r -> Obs.Recorder.with_span r "layout_search.round" body
  in
  (* Round 0: every registered policy under default parameters, seeded
     with the tournament seed. Guarantees an exttsp baseline entry. *)
  let opening =
    List.map
      (fun name -> { policy = name; params = { Policy.default_params with seed } })
      (Policy.names ())
  in
  run_round 0 opening;
  let round = ref 0 in
  while !next_id < budget do
    incr round;
    let incumbent = (Option.get !best).candidate in
    let children = List.init round_size (fun _ -> mutate rng incumbent) in
    run_round !round children
  done;
  let entries = List.rev !entries in
  let winner = Option.get !best in
  let baseline = List.find_opt (fun e -> e.round = 0 && e.candidate.policy = "exttsp") entries in
  let comparable_pairs, discordant_pairs, proxy_agreement = pair_stats entries in
  { budget; seed; rounds = !round + 1; entries; winner; baseline; comparable_pairs;
    discordant_pairs; proxy_agreement }

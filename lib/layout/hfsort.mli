(** C3 function ordering (call-chain clustering), as used by BOLT's
    [-reorder-functions=hfsort] and by Propeller's global function layout.

    Functions are greedily appended to the cluster of their hottest
    caller, subject to a cluster-size cap that preserves locality; final
    clusters are emitted in decreasing hotness density. Nodes are
    integers [0 .. n-1].

    Takes the same {!Problem.t} as the block-level policies: [sizes] are
    code bytes, [weights] are profile samples per function, [edges] are
    [(caller, callee, weight)] call arcs. The problem's [entry] is
    ignored — function ordering has no pinned entry (the block-level
    [callchain] policy in {!Policy} adds the pin). *)

(** [order ?max_cluster_size problem] returns a permutation of
    [0 .. n-1]. [max_cluster_size] is the byte cap beyond which clusters
    stop growing (default 1 MiB). *)
val order : ?max_cluster_size:int -> Problem.t -> int list

type params = {
  forward_window : int;
  backward_window : int;
  fallthrough_weight : float;
  forward_weight : float;
  backward_weight : float;
  max_split_chain : int;
  use_pqueue : bool;
}

let default_params =
  {
    forward_window = 1024;
    backward_window = 640;
    fallthrough_weight = 1.0;
    forward_weight = 0.1;
    backward_weight = 0.1;
    max_split_chain = 24;
    use_pqueue = true;
  }

(* Domain-local so concurrent [order] calls from a pool batch don't
   race; [last_merge_count] reports the calling domain's last run. *)
let merge_count_key : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let merge_count () = Domain.DLS.get merge_count_key

let last_merge_count () = !(merge_count ())

(* Contribution of one edge given the jump distance in bytes. [dist] is
   (dst_start - src_end): 0 means fall-through. *)
let edge_gain p w dist =
  if dist = 0 then p.fallthrough_weight *. w
  else if dist > 0 && dist <= p.forward_window then
    p.forward_weight *. w *. (1.0 -. (float_of_int dist /. float_of_int p.forward_window))
  else if dist < 0 && -dist <= p.backward_window then
    p.backward_weight *. w *. (1.0 -. (float_of_int (-dist) /. float_of_int p.backward_window))
  else 0.0

(* Edge bundles: flat (src, dst, w) parallel arrays in a fixed order —
   the problem's cached {!Problem.flat} form, and the same shape for the
   merge machinery's intermediate sets. Scoring folds a bundle left to
   right, so element order is the float accumulation order — every
   construction below mirrors the historical list order exactly (a
   bundle is the list it replaces, element for element), keeping scores
   bit-identical. *)
type ebundle = Problem.flat = { esrc : int array; edst : int array; ew : float array }

let ebundle_empty = { esrc = [||]; edst = [||]; ew = [||] }

let ebundle_len e = Array.length e.esrc

let ebundle_singleton src dst w = { esrc = [| src |]; edst = [| dst |]; ew = [| w |] }

(* [rev_concat x y] is reverse(x) ++ y — the bundle form of
   [List.rev_append x y]. *)
let rev_concat x y =
  let nx = ebundle_len x and ny = ebundle_len y in
  let esrc = Array.make (nx + ny) 0
  and edst = Array.make (nx + ny) 0
  and ew = Array.make (nx + ny) 0.0 in
  for i = 0 to nx - 1 do
    let j = nx - 1 - i in
    esrc.(i) <- x.esrc.(j);
    edst.(i) <- x.edst.(j);
    ew.(i) <- x.ew.(j)
  done;
  Array.blit y.esrc 0 esrc nx ny;
  Array.blit y.edst 0 edst nx ny;
  Array.blit y.ew 0 ew nx ny;
  { esrc; edst; ew }

(* [assemble cross ai bi] is reverse(cross) ++ reverse(ai) ++ bi — the
   bundle form of [List.rev_append cross (List.rev_append ai bi)], the
   edge set of a candidate (a, b) merge. *)
let assemble cross ai bi =
  let nc = ebundle_len cross and na = ebundle_len ai and nb = ebundle_len bi in
  let n = nc + na + nb in
  let esrc = Array.make n 0 and edst = Array.make n 0 and ew = Array.make n 0.0 in
  for i = 0 to nc - 1 do
    let j = nc - 1 - i in
    esrc.(i) <- cross.esrc.(j);
    edst.(i) <- cross.edst.(j);
    ew.(i) <- cross.ew.(j)
  done;
  for i = 0 to na - 1 do
    let j = na - 1 - i and k = nc + i in
    esrc.(k) <- ai.esrc.(j);
    edst.(k) <- ai.edst.(j);
    ew.(k) <- ai.ew.(j)
  done;
  Array.blit bi.esrc 0 esrc (nc + na) nb;
  Array.blit bi.edst 0 edst (nc + na) nb;
  Array.blit bi.ew 0 ew (nc + na) nb;
  { esrc; edst; ew }

type chain = {
  cid : int;
  nodes : int array;
  size : int;  (** total code bytes *)
  weight : float;  (** total execution count *)
  score : float;  (** Ext-TSP score of internal edges under this order *)
  internal : ebundle;  (** edges with both ends inside *)
  gen : int;  (** bumped via replacement; used to detect stale candidates *)
}

(* Scratch state threaded through scoring to avoid re-allocating
   position maps for every candidate evaluation. [abuf] holds the
   candidate arrangement under evaluation, so best_merge never builds
   throwaway Array.append/concat/sub arrays. *)
type scratch = {
  pos : int array;
  end_pos : int array;
  stamp : int array;
  mutable cur : int;
  abuf : int array;
}

let make_scratch n =
  {
    pos = Array.make n 0;
    end_pos = Array.make n 0;
    stamp = Array.make n (-1);
    cur = 0;
    abuf = Array.make n 0;
  }

let scratch = make_scratch

(* Score the first [len] nodes of [arr] (ids in layout order) against
   the bundle; edges with an endpoint outside contribute 0. Index loops
   with the exact left-to-right accumulation order of the historical
   List.fold_left. *)
let score_arrangement p scratch sizes arr len (e : ebundle) =
  scratch.cur <- scratch.cur + 1;
  let cur = scratch.cur in
  let pos = scratch.pos and end_pos = scratch.end_pos and stamp = scratch.stamp in
  let off = ref 0 in
  for i = 0 to len - 1 do
    let n = Array.unsafe_get arr i in
    Array.unsafe_set pos n !off;
    off := !off + Array.unsafe_get sizes n;
    Array.unsafe_set end_pos n !off;
    Array.unsafe_set stamp n cur
  done;
  let acc = ref 0.0 in
  let m = Array.length e.esrc in
  for i = 0 to m - 1 do
    let src = Array.unsafe_get e.esrc i and dst = Array.unsafe_get e.edst i in
    if Array.unsafe_get stamp src = cur && Array.unsafe_get stamp dst = cur then
      acc :=
        !acc
        +. edge_gain p (Array.unsafe_get e.ew i)
             (Array.unsafe_get pos dst - Array.unsafe_get end_pos src)
  done;
  !acc

let score_into ?(params = default_params) scratch (p : Problem.t) arr =
  score_arrangement params scratch p.sizes arr (Array.length arr) (Problem.flat p)

let score ?(params = default_params) ~order (p : Problem.t) =
  let arr = Array.of_list order in
  let scratch = make_scratch (Array.length p.sizes) in
  score_arrangement params scratch p.sizes arr (Array.length arr) (Problem.flat p)

let score_norm ?(params = default_params) ~order (p : Problem.t) =
  let total = Problem.total_weight p in
  if total <= 0.0 then 0.0 else score ~params ~order p /. total

(* Evaluate the best way to merge chains [a] and [b]. Returns
   (gain, merged node array, merged score) for the best arrangement that
   keeps [entry] first when present, or None if no arrangement is valid
   or profitable. Candidates are materialised into the shared
   [scratch.abuf] (never allocated); only the winner is copied out. *)
let best_merge p scratch sizes entry a b cross =
  let edges = assemble cross a.internal b.internal in
  let na = Array.length a.nodes and nb = Array.length b.nodes in
  let total = na + nb in
  let buf = scratch.abuf in
  let entry_in arr = Array.exists (fun n -> n = entry) arr in
  let constrained = entry_in a.nodes || entry_in b.nodes in
  (* Candidate descriptors: 0 = a++b, 1 = b++a, 2 = split (a[0..k) ++ b
     ++ a[k..)). Trial order and keep-first tie-breaking mirror the
     historical code exactly. *)
  let best_s = ref 0.0 and best_kind = ref (-1) and best_split = ref 0 in
  let fill kind split =
    match kind with
    | 0 ->
      Array.blit a.nodes 0 buf 0 na;
      Array.blit b.nodes 0 buf na nb
    | 1 ->
      Array.blit b.nodes 0 buf 0 nb;
      Array.blit a.nodes 0 buf nb na
    | _ ->
      Array.blit a.nodes 0 buf 0 split;
      Array.blit b.nodes 0 buf split nb;
      Array.blit a.nodes split buf (split + nb) (na - split)
  in
  let consider kind split first_node =
    if not (constrained && first_node <> entry) then begin
      fill kind split;
      let s = score_arrangement p scratch sizes buf total edges in
      if !best_kind < 0 || s > !best_s then begin
        best_s := s;
        best_kind := kind;
        best_split := split
      end
    end
  in
  consider 0 0 a.nodes.(0);
  consider 1 0 b.nodes.(0);
  (* Split [a] at every interior point and wedge [b] inside: the
     X1-Y-X2 merge type from Newell & Pupyrev. *)
  if na <= p.max_split_chain && na > 1 then
    for split = 1 to na - 1 do
      consider 2 split a.nodes.(0)
    done;
  if !best_kind < 0 then None
  else begin
    let s = !best_s in
    let gain = s -. a.score -. b.score in
    if gain > 1e-9 then begin
      let arr = Array.make total 0 in
      fill !best_kind !best_split;
      Array.blit buf 0 arr 0 total;
      Some (gain, arr, s)
    end
    else None
  end

let order ?(params = default_params) (problem : Problem.t) =
  let merge_count = merge_count () in
  merge_count := 0;
  let sizes = problem.sizes and weights = problem.weights and entry = problem.entry in
  let n = Array.length sizes in
  if n = 0 then []
  else begin
    let edges = Problem.flat problem in
    let scratch = make_scratch n in
    (* Chain state. [chains] maps live chain ids to chains; merging
       allocates a fresh id so stale pqueue entries are detectable. *)
    let chains : (int, chain) Hashtbl.t = Hashtbl.create (2 * n) in
    let node_chain = Array.init n (fun i -> i) in
    let next_cid = ref n in
    for i = 0 to n - 1 do
      Hashtbl.replace chains i
        { cid = i; nodes = [| i |]; size = sizes.(i); weight = weights.(i); score = 0.0;
          internal = ebundle_empty; gen = 0 }
    done;
    (* Cross edges per unordered chain pair, and neighbor sets. The keys
       stay tuples on purpose: their Hashtbl iteration order seeds the
       pqueue insertion order, which breaks exact-gain ties. *)
    let pair_key a b = if a < b then (a, b) else (b, a)
    in
    let cross : (int * int, ebundle) Hashtbl.t = Hashtbl.create (2 * n) in
    let neighbors : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create (2 * n) in
    let neighbor_set cid =
      match Hashtbl.find_opt neighbors cid with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.replace neighbors cid s;
        s
    in
    let add_cross a b es =
      if a <> b && ebundle_len es > 0 then begin
        let key = pair_key a b in
        let prev = Option.value ~default:ebundle_empty (Hashtbl.find_opt cross key) in
        Hashtbl.replace cross key (rev_concat es prev);
        Hashtbl.replace (neighbor_set a) b ();
        Hashtbl.replace (neighbor_set b) a ()
      end
    in
    for i = 0 to ebundle_len edges - 1 do
      let src = edges.esrc.(i) and dst = edges.edst.(i) in
      add_cross node_chain.(src) node_chain.(dst) (ebundle_singleton src dst edges.ew.(i))
    done;
    (* Candidate queue. Entries carry the chain ids they were computed
       for; an entry is stale if either id is no longer live. *)
    let pq : (int * int) Support.Pqueue.t = Support.Pqueue.create () in
    let candidates : (int * int, float) Hashtbl.t = Hashtbl.create (2 * n) in
    let eval_pair a_id b_id =
      match Hashtbl.find_opt chains a_id, Hashtbl.find_opt chains b_id with
      | Some a, Some b -> (
        match Hashtbl.find_opt cross (pair_key a_id b_id) with
        | None -> None
        | Some es -> (
          match best_merge params scratch sizes entry a b es with
          | None -> None
          | Some (gain, arr, s) -> Some (gain, arr, s)))
      | None, _ | _, None -> None
    in
    let push_pair a_id b_id =
      match eval_pair a_id b_id with
      | None -> Hashtbl.remove candidates (pair_key a_id b_id)
      | Some (gain, _, _) ->
        Hashtbl.replace candidates (pair_key a_id b_id) gain;
        if params.use_pqueue then ignore (Support.Pqueue.add pq ~priority:gain (pair_key a_id b_id))
    in
    Hashtbl.iter (fun (a, b) _ -> push_pair a b) cross;
    let live cid = Hashtbl.mem chains cid in
    (* Pop the best candidate according to the configured strategy. *)
    let rec next_candidate () =
      if params.use_pqueue then
        match Support.Pqueue.pop_max pq with
        | None -> None
        | Some ((a, b), gain) ->
          if live a && live b
             && (match Hashtbl.find_opt candidates (pair_key a b) with
                | Some g -> abs_float (g -. gain) < 1e-12
                | None -> false)
          then Some (a, b)
          else next_candidate ()
      else begin
        (* Linear rescan: the pre-Propeller O(n) retrieval. *)
        let best = ref None in
        Hashtbl.iter
          (fun (a, b) g ->
            if live a && live b then
              match !best with
              | Some (_, _, bg) when bg >= g -> ()
              | Some _ | None -> best := Some (a, b, g))
          candidates;
        match !best with Some (a, b, _) -> Some (a, b) | None -> None
      end
    in
    let merge a_id b_id =
      match eval_pair a_id b_id with
      | None ->
        (* The candidate table was stale; drop it. *)
        Hashtbl.remove candidates (pair_key a_id b_id)
      | Some (_, arr, s) ->
        incr merge_count;
        let a = Hashtbl.find chains a_id and b = Hashtbl.find chains b_id in
        let key = pair_key a_id b_id in
        let cross_ab = Option.value ~default:ebundle_empty (Hashtbl.find_opt cross key) in
        let merged =
          {
            cid = !next_cid;
            nodes = arr;
            size = a.size + b.size;
            weight = a.weight +. b.weight;
            score = s;
            internal = assemble cross_ab a.internal b.internal;
            gen = 0;
          }
        in
        incr next_cid;
        Hashtbl.remove chains a_id;
        Hashtbl.remove chains b_id;
        Hashtbl.replace chains merged.cid merged;
        Array.iter (fun nd -> node_chain.(nd) <- merged.cid) arr;
        Hashtbl.remove cross key;
        Hashtbl.remove candidates key;
        (* Re-route cross edges of both old chains to the merged chain
           and refresh affected candidates. *)
        let old_neighbors cid =
          match Hashtbl.find_opt neighbors cid with
          | None -> []
          | Some s -> Hashtbl.fold (fun k () acc -> k :: acc) s []
        in
        let touched = ref [] in
        List.iter
          (fun old_id ->
            List.iter
              (fun nb ->
                if nb <> a_id && nb <> b_id && live nb then begin
                  let k = pair_key old_id nb in
                  (match Hashtbl.find_opt cross k with
                  | Some es ->
                    Hashtbl.remove cross k;
                    Hashtbl.remove candidates k;
                    add_cross merged.cid nb es
                  | None -> ());
                  touched := nb :: !touched
                end)
              (old_neighbors old_id);
            Hashtbl.remove neighbors old_id)
          [ a_id; b_id ];
        List.sort_uniq compare !touched |> List.iter (fun nb -> push_pair merged.cid nb)
    in
    let rec loop () =
      match next_candidate () with
      | None -> ()
      | Some (a, b) ->
        merge a b;
        loop ()
    in
    loop ();
    (* Final order: the entry chain first, then remaining chains by
       decreasing hotness density, ties by smallest node id for
       determinism. *)
    let all = Hashtbl.fold (fun _ c acc -> c :: acc) chains [] in
    let density c = if c.size = 0 then 0.0 else c.weight /. float_of_int c.size in
    let min_node c = Array.fold_left min max_int c.nodes in
    let is_entry c = Array.exists (fun nd -> nd = entry) c.nodes in
    let sorted =
      List.sort
        (fun c1 c2 ->
          match is_entry c2, is_entry c1 with
          | true, false -> 1
          | false, true -> -1
          | true, true | false, false ->
            let d = compare (density c2) (density c1) in
            if d <> 0 then d else compare (min_node c1) (min_node c2))
        all
    in
    List.concat_map (fun c -> Array.to_list c.nodes) sorted
  end

let order_batch ?(params = default_params) ~pool problems =
  Support.Pool.map_array pool (Array.length problems) (fun i ->
      let p = problems.(i) in
      let o = order ~params p in
      let s = score ~params ~order:o p in
      (o, s))

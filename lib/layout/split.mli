(** Hot/cold function splitting (paper §4.6).

    Given per-block execution counts, partition blocks into a hot set and
    a cold set. Two extraction mechanisms are modelled:

    - {b Basic block sections} (Propeller): the cold blocks move to a
      [.cold] cluster at zero code cost, so *every* function with cold
      blocks can be split — no profitability heuristic needed.
    - {b Call-based extraction} (pre-Propeller LLVM machine function
      splitter, Fig 2 centre): reaching the cold part costs a call-like
      trampoline, so splitting only pays off beyond a size threshold —
      the heuristic the paper says bb sections eliminate. *)

type t = {
  hot : int list;  (** Hot block ids, original relative order. *)
  cold : int list;  (** Cold block ids, original relative order. *)
}

(** [partition ~counts ?threshold ()] marks blocks with count <=
    [threshold] (default 0) as cold. Block 0 (the entry) is always hot. *)
val partition : counts:float array -> ?threshold:float -> unit -> t

(** [partition_batch ~pool ?threshold ~counts ()] partitions one count
    vector per function across the domain pool; results are committed
    in input order, so the outcome is independent of pool width. *)
val partition_batch :
  pool:Support.Pool.t -> ?threshold:float -> counts:float array array -> unit -> t array

(** [call_split_profitable ~cold_bytes ~entry_count ~cold_entry_count]
    implements the call-based splitter's gate: the cold region must be
    big enough to amortise the ~16-byte trampoline and must be entered
    rarely relative to the function (cold extraction via call costs a
    call + spill at each entry, Fig 2). *)
val call_split_profitable : cold_bytes:int -> entry_count:float -> cold_entry_count:float -> bool

(** [trampoline_bytes] is the modelled code-size overhead of reaching a
    call-extracted cold region (lea+mov+call+mov+jmp of Fig 2 centre). *)
val trampoline_bytes : int

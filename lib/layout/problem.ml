type flat = { esrc : int array; edst : int array; ew : float array }

type t = {
  sizes : int array;
  weights : float array;
  edges : (int * int * float) list;
  entry : int;
  mutable flat_cache : flat option;
  mutable total_cache : float option;
}

let make ~sizes ~weights ~edges ~entry =
  { sizes; weights; edges; entry; flat_cache = None; total_cache = None }

let size t = Array.length t.sizes

(* Accumulate duplicate pairs (input order, so float sums are stable)
   and emit a bundle sorted by (src, dst) — the historical sorted-list
   order of [Exttsp.dedupe_edges]. Packed keys keep the table
   allocation-free per edge and sort exactly like (src, dst) pairs. *)
let dedupe edges =
  let tbl : (int, float) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (src, dst, w) ->
      if src <> dst && w > 0.0 then begin
        let key = Support.Packed.pack ~src ~dst in
        match Hashtbl.find_opt tbl key with
        | Some w0 -> Hashtbl.replace tbl key (w0 +. w)
        | None -> Hashtbl.add tbl key w
      end)
    edges;
  let n = Hashtbl.length tbl in
  let keys = Array.make n 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun k _ ->
      keys.(!i) <- k;
      incr i)
    tbl;
  Array.sort compare keys;
  let esrc = Array.make n 0 and edst = Array.make n 0 and ew = Array.make n 0.0 in
  for j = 0 to n - 1 do
    let k = keys.(j) in
    esrc.(j) <- Support.Packed.src k;
    edst.(j) <- Support.Packed.dst k;
    ew.(j) <- Hashtbl.find tbl k
  done;
  { esrc; edst; ew }

let flat t =
  match t.flat_cache with
  | Some f -> f
  | None ->
    let f = dedupe t.edges in
    t.flat_cache <- Some f;
    f

let total_weight t =
  match t.total_cache with
  | Some w -> w
  | None ->
    let w =
      List.fold_left (fun acc (src, dst, w) -> if src <> dst then acc +. w else acc) 0.0 t.edges
    in
    t.total_cache <- Some w;
    w

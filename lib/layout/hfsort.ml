type cluster = {
  mutable funcs : int list;  (** reverse layout order *)
  mutable size : int;
  mutable samples : float;
  mutable frozen : bool;
}

let order ?(max_cluster_size = 1 lsl 20) (problem : Problem.t) =
  let sizes = problem.sizes and samples = problem.weights and arcs = problem.edges in
  let n = Array.length sizes in
  let clusters = Array.init n (fun i -> { funcs = [ i ]; size = sizes.(i); samples = samples.(i); frozen = false }) in
  let cluster_of = Array.init n (fun i -> i) in
  (* Hottest caller per callee. *)
  let best_caller = Array.make n None in
  List.iter
    (fun (caller, callee, w) ->
      if caller <> callee && w > 0.0 then
        match best_caller.(callee) with
        | Some (_, w0) when w0 >= w -> ()
        | Some _ | None -> best_caller.(callee) <- Some (caller, w))
    arcs;
  (* Process functions by decreasing hotness (ties by id). *)
  let by_hotness = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare samples.(b) samples.(a) in
      if c <> 0 then c else compare a b)
    by_hotness;
  let rec find_root c = if cluster_of.(c) = c then c else find_root cluster_of.(c) in
  Array.iter
    (fun f ->
      match best_caller.(f) with
      | None -> ()
      | Some (caller, _) ->
        let cf = find_root f and cc = find_root caller in
        if cf <> cc then begin
          let a = clusters.(cc) and b = clusters.(cf) in
          if (not a.frozen) && (not b.frozen) && a.size + b.size <= max_cluster_size then begin
            (* Append the callee's cluster after the caller's. *)
            a.funcs <- b.funcs @ a.funcs;
            a.size <- a.size + b.size;
            a.samples <- a.samples +. b.samples;
            cluster_of.(cf) <- cc
          end
          else begin
            a.frozen <- true;
            b.frozen <- true
          end
        end)
    by_hotness;
  let roots = ref [] in
  for i = n - 1 downto 0 do
    if cluster_of.(i) = i then roots := i :: !roots
  done;
  let density c = if c.size = 0 then 0.0 else c.samples /. float_of_int c.size in
  let sorted =
    List.sort
      (fun a b ->
        let c = compare (density clusters.(b)) (density clusters.(a)) in
        if c <> 0 then c else compare a b)
      !roots
  in
  List.concat_map (fun r -> List.rev clusters.(r).funcs) sorted

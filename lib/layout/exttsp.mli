(** Ext-TSP basic block reordering (Newell & Pupyrev, "Improved Basic
    Block Reordering", 2018; paper §3.3, §4.7).

    The algorithm greedily merges chains of nodes to maximise the Ext-TSP
    objective, which rewards fall-through edges fully and short forward /
    backward jumps partially. Propeller's contribution for warehouse
    scale is the *logarithmic-time retrieval of the most profitable
    merge* (paper §4.7): candidate merges live in a priority queue keyed
    by gain instead of being rescanned linearly. Both strategies are
    implemented; the bench compares them ([ablation_inter]).

    Nodes are integers [0 .. n-1]. The produced order is a permutation
    with the entry node first. *)

type params = {
  forward_window : int;  (** Max rewarded forward-jump distance (bytes). *)
  backward_window : int;  (** Max rewarded backward-jump distance. *)
  fallthrough_weight : float;
  forward_weight : float;
  backward_weight : float;
  max_split_chain : int;
      (** Chains longer than this are only merged by concatenation (the
          split-point search is quadratic). *)
  use_pqueue : bool;
      (** Retrieve the best merge from a priority queue (O(log n)) rather
          than a linear rescan of all candidates. Results are identical;
          only the running time differs. *)
}

val default_params : params

(** [order ?params ~sizes ~weights ~edges ~entry ()] computes a layout.

    - [sizes.(i)]: code bytes of node [i];
    - [weights.(i)]: execution count of node [i] (used to order the final
      chains by hotness density);
    - [edges]: [(src, dst, weight)] branch/fall-through frequencies;
      duplicate pairs are accumulated; self-edges are ignored;
    - [entry]: node pinned to the front of the layout.

    Returns a permutation of [0 .. n-1]. *)
val order :
  ?params:params ->
  sizes:int array ->
  weights:float array ->
  edges:(int * int * float) list ->
  entry:int ->
  unit ->
  int list

(** [score ?params ~sizes ~edges ~order ()] evaluates the Ext-TSP
    objective of a given layout (higher is better). *)
val score :
  ?params:params -> sizes:int array -> edges:(int * int * float) list -> order:int list -> unit -> float

(** [score_norm ...] is {!score} divided by the total (non-self) edge
    weight — a layout-quality figure in [0, fallthrough_weight] that is
    comparable across programs of different sizes and sample counts.
    1.0 means every observed transfer is a rewarded fall-through; 0 when
    no edges carry weight. *)
val score_norm :
  ?params:params -> sizes:int array -> edges:(int * int * float) list -> order:int list -> unit -> float

(** Number of chain merges performed by the last {!order} call on this
    domain; exposed for the benches' work accounting. The counter is
    domain-local, so concurrent {!order_batch} tasks don't race. *)
val last_merge_count : unit -> int

(** One per-function reordering problem, for the batch entry point. *)
type instance = {
  sizes : int array;
  weights : float array;
  edges : (int * int * float) list;
  entry : int;
}

(** [order_batch ?params ~pool instances] solves every instance across
    the domain pool and returns [(order, score)] per instance, in input
    order. Each instance is computed exactly as {!order} + {!score}
    would sequentially, and results commit in index order, so the
    output is identical for any pool width (the §3.4 sharding
    contract). *)
val order_batch :
  ?params:params -> pool:Support.Pool.t -> instance array -> (int list * float) array

(** Ext-TSP basic block reordering (Newell & Pupyrev, "Improved Basic
    Block Reordering", 2018; paper §3.3, §4.7).

    The algorithm greedily merges chains of nodes to maximise the Ext-TSP
    objective, which rewards fall-through edges fully and short forward /
    backward jumps partially. Propeller's contribution for warehouse
    scale is the *logarithmic-time retrieval of the most profitable
    merge* (paper §4.7): candidate merges live in a priority queue keyed
    by gain instead of being rescanned linearly. Both strategies are
    implemented; the bench compares them ([ablation_inter]).

    Takes a {!Problem.t}; the produced order is a permutation of
    [0 .. n-1] with the problem's entry node first. *)

type params = {
  forward_window : int;  (** Max rewarded forward-jump distance (bytes). *)
  backward_window : int;  (** Max rewarded backward-jump distance. *)
  fallthrough_weight : float;
  forward_weight : float;
  backward_weight : float;
  max_split_chain : int;
      (** Chains longer than this are only merged by concatenation (the
          split-point search is quadratic). *)
  use_pqueue : bool;
      (** Retrieve the best merge from a priority queue (O(log n)) rather
          than a linear rescan of all candidates. Results are identical;
          only the running time differs. *)
}

val default_params : params

(** [order ?params problem] computes a layout: a permutation of
    [0 .. n-1] with [problem.entry] first. *)
val order : ?params:params -> Problem.t -> int list

(** [score ?params ~order problem] evaluates the Ext-TSP objective of a
    given layout (higher is better), over the problem's cached flat
    edges. *)
val score : ?params:params -> order:int list -> Problem.t -> float

(** [score_norm ?params ~order problem] is {!score} divided by the total
    (non-self) edge weight — a layout-quality figure in
    [0, fallthrough_weight] that is comparable across programs of
    different sizes and sample counts. 1.0 means every observed transfer
    is a rewarded fall-through; 0 when no edges carry weight. *)
val score_norm : ?params:params -> order:int list -> Problem.t -> float

(** Reusable scoring scratch for layouts held as arrays: position maps
    sized for [n] nodes, so search loops that score hundreds of
    candidate arrangements of one problem allocate nothing per
    evaluation. *)
type scratch

(** [scratch n] makes scoring scratch for problems of up to [n] nodes. *)
val scratch : int -> scratch

(** [score_into ?params scratch problem arr] scores the arrangement
    [arr] (all of it) against the problem's flat edges, reusing
    [scratch]. Equivalent to {!score} with [order = Array.to_list arr]
    but allocation-free. *)
val score_into : ?params:params -> scratch -> Problem.t -> int array -> float

(** Number of chain merges performed by the last {!order} call on this
    domain; exposed for the benches' work accounting. The counter is
    domain-local, so concurrent {!order_batch} tasks don't race. *)
val last_merge_count : unit -> int

(** [order_batch ?params ~pool problems] solves every problem across
    the domain pool and returns [(order, score)] per problem, in input
    order. Each problem is computed exactly as {!order} + {!score}
    would sequentially, and results commit in index order, so the
    output is identical for any pool width (the §3.4 sharding
    contract). *)
val order_batch :
  ?params:params -> pool:Support.Pool.t -> Problem.t array -> (int list * float) array

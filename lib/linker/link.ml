exception Link_error of string

type options = {
  ordering : string list option;
  keep_bb_addr_map : bool;
  emit_relocs : bool;
  relax : bool;
  text_align : int;
  base_addr : int;
}

let default_options =
  {
    ordering = None;
    keep_bb_addr_map = false;
    emit_relocs = false;
    relax = true;
    text_align = 4096;
    base_addr = 0x400000;
  }

type stats = {
  input_bytes : int;
  output_bytes : int;
  num_input_sections : int;
  relax_iters : int;
  deleted_jumps : int;
  shrunk_branches : int;
  peak_mem_bytes : int;
  cpu_seconds : float;
}

type outcome = { binary : Binary.t; stats : stats }

(* Mutable working form of a text section during relaxation. Branch
   targets are resolved to piece/section references up front so the
   relaxation sweeps never consult a symbol table. *)
type wpiece = {
  block : int;
  insts : winst array;
  mutable paddr : int;
  is_landing_pad : bool;
}

and winst = { mutable i : Isa.t; mutable dead : bool; mutable tgt : wtarget }

and wtarget = No_target | To_piece of wpiece | To_sec_addr of int ref

type wsec = {
  sname : string;
  ssymbol : string option;
  sfunc : string;
  salign : int;
  pieces : wpiece array;
  saddr : int ref;
  had_bbmap : bool;
}

let align_up v a = if a <= 1 then v else (v + a - 1) / a * a

let winst_size w = if w.dead then 0 else Isa.size w.i

let piece_size p = Array.fold_left (fun acc w -> acc + winst_size w) 0 p.insts

let sec_size s = Array.fold_left (fun acc p -> acc + piece_size p) 0 s.pieces

let target_addr w =
  match w.tgt with
  | No_target -> invalid_arg "Link.target_addr: no target"
  | To_piece p -> p.paddr
  | To_sec_addr a -> !a

(* Assign piece/section addresses sequentially from [base]. *)
let assign_addresses base sections =
  let cur = ref base in
  List.iter
    (fun s ->
      cur := align_up !cur s.salign;
      s.saddr := !cur;
      Array.iter
        (fun p ->
          p.paddr <- !cur;
          cur := !cur + piece_size p)
        s.pieces)
    sections;
  !cur

(* Working-form instruction array straight from the fragment's list:
   counted fill, no intermediate cons cell per instruction (the linker
   rebuilds this form on every relink). *)
let winsts_of_list insts =
  match insts with
  | [] -> [||]
  | first :: _ ->
    let n = List.length insts in
    let arr = Array.make n { i = first; dead = true; tgt = No_target } in
    List.iteri (fun k i -> arr.(k) <- { i; dead = false; tgt = No_target }) insts;
    arr

let wpieces_of_frag (frag : Objfile.Fragment.t) =
  match frag.pieces with
  | [] -> [||]
  | (first : Objfile.Fragment.piece) :: _ ->
    let n = List.length frag.pieces in
    let dummy = { block = first.block; insts = [||]; paddr = 0; is_landing_pad = false } in
    let arr = Array.make n dummy in
    List.iteri
      (fun k (p : Objfile.Fragment.piece) ->
        arr.(k) <-
          {
            block = p.block;
            insts = winsts_of_list p.insts;
            paddr = 0;
            is_landing_pad = p.is_landing_pad;
          })
      frag.pieces;
    arr

let gather_text_sections objs =
  List.concat_map
    (fun (o : Objfile.File.t) ->
      List.filter_map
        (fun (s : Objfile.Section.t) ->
          match s.contents with
          | Objfile.Section.Code frag ->
            let had_bbmap =
              Option.is_some (Objfile.File.find_section o (".llvm_bb_addr_map." ^ frag.func))
            in
            Some
              {
                sname = s.name;
                ssymbol = s.symbol;
                sfunc = frag.func;
                salign = s.align;
                pieces = wpieces_of_frag frag;
                saddr = ref 0;
                had_bbmap;
              }
          | Objfile.Section.Map _ | Objfile.Section.Raw _ -> None)
        o.sections)
    objs

let order_text_sections options all =
  match options.ordering with
  | None -> all
  | Some syms ->
    let rank = Hashtbl.create (List.length syms) in
    List.iteri (fun i s -> if not (Hashtbl.mem rank s) then Hashtbl.add rank s i) syms;
    let ranked, unranked =
      List.partition
        (fun s -> match s.ssymbol with Some sym -> Hashtbl.mem rank sym | None -> false)
        all
    in
    let key s = match s.ssymbol with Some sym -> Hashtbl.find rank sym | None -> max_int in
    List.stable_sort (fun a b -> compare (key a) (key b)) ranked @ unranked

(* Resolve every branch target to its piece/section once. Blocks are
   indexed by a packed (dense function index, block id) int key — the
   resolution loop runs once per branch instruction per link, and a
   tuple key would allocate on every probe. *)
let resolve_targets sections =
  let syms : (string, int ref) Hashtbl.t = Hashtbl.create 1024 in
  let func_idx : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let idx_of_func f =
    match Hashtbl.find_opt func_idx f with
    | Some i -> i
    | None ->
      let i = Hashtbl.length func_idx in
      Hashtbl.add func_idx f i;
      i
  in
  let blocks : (int, wpiece) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun s ->
      (match s.ssymbol with
      | Some sym ->
        if Hashtbl.mem syms sym then raise (Link_error ("duplicate symbol " ^ sym));
        Hashtbl.add syms sym s.saddr
      | None -> ());
      let fi = idx_of_func s.sfunc in
      Array.iter
        (fun p ->
          let key = Support.Packed.pack ~src:fi ~dst:p.block in
          if Hashtbl.mem blocks key then
            raise (Link_error (Printf.sprintf "block %s#%d defined twice" s.sfunc p.block));
          Hashtbl.add blocks key p)
        s.pieces)
    sections;
  List.iter
    (fun s ->
      Array.iter
        (fun p ->
          Array.iter
            (fun w ->
              (* Match the instruction directly — [Isa.branch_target]
                 would box an option per probe, once per instruction per
                 relink. *)
              match w.i with
              | Isa.Alu _ | Isa.Load _ | Isa.Store _ | Isa.IndirectCall | Isa.IndirectJmp
              | Isa.Ret | Isa.Prefetch | Isa.Nop _ | Isa.InlineData _ -> ()
              | Isa.Jcc { target = Isa.Target.Block { func; block }; _ }
              | Isa.Jmp { target = Isa.Target.Block { func; block }; _ }
              | Isa.Call (Isa.Target.Block { func; block }) -> (
                match Hashtbl.find_opt func_idx func with
                | None ->
                  raise (Link_error (Printf.sprintf "unresolved block target %s#%d" func block))
                | Some fi -> (
                  match Hashtbl.find_opt blocks (Support.Packed.pack ~src:fi ~dst:block) with
                  | Some piece -> w.tgt <- To_piece piece
                  | None ->
                    raise
                      (Link_error (Printf.sprintf "unresolved block target %s#%d" func block))))
              | Isa.Jcc { target = Isa.Target.Func f; _ }
              | Isa.Jmp { target = Isa.Target.Func f; _ }
              | Isa.Call (Isa.Target.Func f) -> (
                match Hashtbl.find_opt syms f with
                | Some addr -> w.tgt <- To_sec_addr addr
                | None -> raise (Link_error ("unresolved function symbol " ^ f))))
            p.insts)
        s.pieces)
    sections;
  syms

(* Index of the next live instruction at or after [j], or [-1]. Top
   level so the sweep's inner scan costs no closure per conditional
   branch. *)
let rec next_live_idx insts n j =
  if j >= n then -1 else if insts.(j).dead then next_live_idx insts n (j + 1) else j

(* One relaxation sweep; returns whether anything changed. Rules:
   1. an unconditional jump whose target is the next address is dead;
   2. a conditional branch that skips exactly over a live trailing jump
      gets its condition reversed, takes the jump's destination, and
      kills the jump;
   3. long branches whose displacement fits rel8 shrink to short. *)
let relax_sweep sections ~deleted ~shrunk =
  let changed = ref false in
  List.iter
    (fun s ->
      Array.iter
        (fun p ->
          let addr = ref p.paddr in
          let n = Array.length p.insts in
          Array.iteri
            (fun idx w ->
              if not w.dead then begin
                let size = Isa.size w.i in
                let after = !addr + size in
                (match w.i with
                | Isa.Jmp { target; encoding } ->
                  let tgt = target_addr w in
                  if tgt = after then begin
                    w.dead <- true;
                    incr deleted;
                    changed := true
                  end
                  else if
                    encoding = Isa.Long
                    && Isa.fits_short (tgt - (!addr + Isa.jmp_size Isa.Short))
                  then begin
                    w.i <- Isa.Jmp { target; encoding = Isa.Short };
                    incr shrunk;
                    changed := true
                  end
                | Isa.Jcc { cond; target; encoding } ->
                  let tgt = target_addr w in
                  let next_live = next_live_idx p.insts n (idx + 1) in
                  let reversed =
                    match next_live with
                    | -1 -> false
                    | j -> (
                      match p.insts.(j).i with
                      | Isa.Jmp _ ->
                        let jmp_size = Isa.size p.insts.(j).i in
                        if tgt = after + jmp_size then begin
                          w.i <-
                            Isa.Jcc
                              { cond = Isa.Cond.negate cond;
                                target =
                                  (match Isa.branch_target p.insts.(j).i with
                                  | Some t -> t
                                  | None -> assert false);
                                encoding };
                          w.tgt <- p.insts.(j).tgt;
                          p.insts.(j).dead <- true;
                          incr deleted;
                          changed := true;
                          true
                        end
                        else false
                      | Isa.Alu _ | Isa.Load _ | Isa.Store _ | Isa.Jcc _ | Isa.Call _
                      | Isa.IndirectCall | Isa.IndirectJmp | Isa.Ret | Isa.Prefetch
                      | Isa.Nop _ | Isa.InlineData _ -> false)
                  in
                  if (not reversed) && encoding = Isa.Long then begin
                    let tgt = target_addr w in
                    if Isa.fits_short (tgt - (!addr + Isa.jcc_size Isa.Short)) then begin
                      w.i <- Isa.Jcc { cond; target; encoding = Isa.Short };
                      incr shrunk;
                      changed := true
                    end
                  end
                | Isa.Alu _ | Isa.Load _ | Isa.Store _ | Isa.Call _ | Isa.IndirectCall
                | Isa.IndirectJmp | Isa.Ret | Isa.Prefetch | Isa.Nop _ | Isa.InlineData _ -> ());
                addr := !addr + winst_size w
              end)
            p.insts)
        s.pieces)
    sections;
  !changed

let symtab_bytes syms =
  Hashtbl.fold (fun name _ acc -> acc + 24 + String.length name + 1) syms 0

let link_with ?recorder ?(options = default_options) ~name ~entry objs =
  let recorder =
    match recorder with Some r -> r | None -> Obs.Recorder.global
  in
  let input_bytes = List.fold_left (fun acc o -> acc + Objfile.File.total_size o) 0 objs in
  let num_input_sections =
    List.fold_left (fun acc (o : Objfile.File.t) -> acc + List.length o.sections) 0 objs
  in
  let texts = order_text_sections options (gather_text_sections objs) in
  let syms = resolve_targets texts in
  if not (Hashtbl.mem syms entry) then raise (Link_error ("undefined entry symbol " ^ entry));
  let text_base = align_up options.base_addr options.text_align in
  let deleted = ref 0 and shrunk = ref 0 in
  let rec fix iters =
    ignore (assign_addresses text_base texts);
    if options.relax && iters < 32 && relax_sweep texts ~deleted ~shrunk then fix (iters + 1)
    else iters
  in
  let relax_iters = fix 1 in
  let text_end = assign_addresses text_base texts in
  (* Final block infos and symbol addresses. *)
  let blocks = Hashtbl.create 4096 in
  List.iter
    (fun s ->
      Array.iter
        (fun p ->
          let insts =
            Array.fold_right (fun w acc -> if w.dead then acc else w.i :: acc) p.insts []
          in
          Hashtbl.replace blocks (s.sfunc, p.block)
            { Binary.func = s.sfunc; block = p.block; addr = p.paddr; size = piece_size p; insts })
        s.pieces)
    texts;
  let final_syms = Hashtbl.create (Hashtbl.length syms) in
  Hashtbl.iter (fun sym addr -> Hashtbl.replace final_syms sym !addr) syms;
  (* Re-encoded address map for retained metadata. *)
  let bb_maps =
    if not options.keep_bb_addr_map then []
    else
      List.filter_map
        (fun s ->
          match s.ssymbol with
          | Some sym when s.had_bbmap ->
            let entries =
              Array.to_list s.pieces
              |> List.map (fun p ->
                     let last_live =
                       Array.fold_left
                         (fun acc w -> if w.dead then acc else Some w.i)
                         None p.insts
                     in
                     let can_fallthrough =
                       match last_live with
                       | Some (Isa.Jmp _ | Isa.Ret | Isa.IndirectJmp) -> false
                       | Some _ | None -> true
                     in
                     {
                       Objfile.Bbmap.bb_id = p.block;
                       offset = p.paddr - !(s.saddr);
                       size = piece_size p;
                       can_fallthrough;
                       is_landing_pad = p.is_landing_pad;
                     })
            in
            Some { Objfile.Bbmap.func = sym; entries }
          | Some _ | None -> None)
        texts
  in
  (* Placed sections: text in layout order, then aggregated non-text. *)
  let placed_texts =
    List.map
      (fun s ->
        {
          Binary.name = s.sname;
          kind = Objfile.Section.Text;
          addr = !(s.saddr);
          size = sec_size s;
          symbol = s.ssymbol;
        })
      texts
  in
  let sum_kind kind =
    List.fold_left (fun acc o -> acc + Objfile.File.size_by_kind o kind) 0 objs
  in
  let cur = ref (align_up text_end 4096) in
  let mk sec_name kind size =
    if size = 0 then None
    else begin
      let p = { Binary.name = sec_name; kind; addr = !cur; size; symbol = None } in
      cur := !cur + size;
      Some p
    end
  in
  let reloc_bytes =
    if options.emit_relocs then
      24 * List.fold_left (fun acc o -> acc + Objfile.File.num_relocations o) 0 objs
    else 0
  in
  let bbmap_bytes = if options.keep_bb_addr_map then Objfile.Bbmap.encoded_size bb_maps else 0 in
  let non_text =
    List.filter_map Fun.id
      [
        mk ".rodata" Objfile.Section.Rodata (sum_kind Objfile.Section.Rodata);
        mk ".data" Objfile.Section.Data (sum_kind Objfile.Section.Data);
        mk ".eh_frame" Objfile.Section.Eh_frame (sum_kind Objfile.Section.Eh_frame);
        mk ".llvm_bb_addr_map" Objfile.Section.Bb_addr_map bbmap_bytes;
        mk ".rela.text" Objfile.Section.Rela reloc_bytes;
        mk ".symtab" Objfile.Section.Symtab (symtab_bytes final_syms);
      ]
  in
  let binary =
    Binary.make ~name ~entry_symbol:entry ~sections:(placed_texts @ non_text)
      ~symbols:final_syms ~blocks ~text_start:text_base ~text_end ~bb_maps
  in
  let stats =
    {
      input_bytes;
      output_bytes = Binary.total_size binary;
      num_input_sections;
      relax_iters;
      deleted_jumps = !deleted;
      shrunk_branches = !shrunk;
      peak_mem_bytes = Costmodel.peak_mem ~input_bytes ~num_sections:num_input_sections;
      cpu_seconds =
        Costmodel.cpu_seconds ~input_bytes ~num_sections:num_input_sections ~relax_iters;
    }
  in
  Obs.Recorder.incr_counter recorder "linker.links";
  Obs.Recorder.add_counter recorder "linker.relax.iters" relax_iters;
  Obs.Recorder.add_counter recorder "linker.relax.deleted_jumps" !deleted;
  Obs.Recorder.add_counter recorder "linker.relax.shrunk_branches" !shrunk;
  Obs.Recorder.add_counter recorder "linker.symbols.resolved" (Hashtbl.length final_syms);
  Obs.Recorder.observe recorder "linker.cpu_seconds" stats.cpu_seconds;
  { binary; stats }

let link ?ctx ?options ~name ~entry objs =
  link_with
    ?recorder:(Option.map (fun c -> c.Support.Ctx.recorder) ctx)
    ?options ~name ~entry objs

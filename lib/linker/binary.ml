type block_info = { func : string; block : int; addr : int; size : int; insts : Isa.t list }

type placed = {
  name : string;
  kind : Objfile.Section.kind;
  addr : int;
  size : int;
  symbol : string option;
}

type t = {
  name : string;
  entry_symbol : string;
  sections : placed list;
  symbols : (string, int) Hashtbl.t;
  blocks : (string * int, block_info) Hashtbl.t;
  text_start : int;
  text_end : int;
  bb_maps : Objfile.Bbmap.t;
  uid : int;  (** Distinguishes binaries for internal caching. *)
}

let next_uid = ref 0

let make ~name ~entry_symbol ~sections ~symbols ~blocks ~text_start ~text_end ~bb_maps =
  incr next_uid;
  { name; entry_symbol; sections; symbols; blocks; text_start; text_end; bb_maps;
    uid = !next_uid }

let symbol_addr t s = Hashtbl.find_opt t.symbols s

let block_info t ~func ~block = Hashtbl.find_opt t.blocks (func, block)

let block_info_exn t ~func ~block = Hashtbl.find t.blocks (func, block)

let size_of_kind t kind =
  List.fold_left (fun acc p -> if p.kind = kind then acc + p.size else acc) 0 t.sections

let total_size t = List.fold_left (fun acc p -> acc + p.size) 0 t.sections

let text_bytes t = size_of_kind t Objfile.Section.Text

let num_symbols t = Hashtbl.length t.symbols

(* Sorted block array for address lookups, built lazily per binary via
   memo table keyed on physical identity. *)
let sorted_blocks_cache : (int, block_info array) Hashtbl.t = Hashtbl.create 8

let sorted_blocks t =
  match Hashtbl.find_opt sorted_blocks_cache t.uid with
  | Some arr -> arr
  | None ->
    let arr = Array.of_seq (Seq.map snd (Hashtbl.to_seq t.blocks)) in
    Array.sort (fun (a : block_info) (b : block_info) -> compare a.addr b.addr) arr;
    Hashtbl.replace sorted_blocks_cache t.uid arr;
    arr

let find_block_by_addr t addr =
  let arr = sorted_blocks t in
  let rec search lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let b = arr.(mid) in
      if addr < b.addr then search lo (mid - 1)
      else if addr >= b.addr + b.size then search (mid + 1) hi
      else Some b
    end
  in
  search 0 (Array.length arr - 1)

let funcs t =
  let seen = Hashtbl.create 64 in
  Hashtbl.iter (fun (f, _) _ -> Hashtbl.replace seen f ()) t.blocks;
  Hashtbl.fold (fun f () acc -> f :: acc) seen [] |> List.sort compare

let blocks_in_address_order t = Array.to_list (sorted_blocks t)

let symbols_sorted t =
  Hashtbl.fold (fun name addr acc -> (name, addr) :: acc) t.symbols []
  |> List.sort (fun (na, aa) (nb, ab) ->
         match compare aa ab with 0 -> String.compare na nb | c -> c)

let kind_tag = function
  | Objfile.Section.Text -> "text"
  | Bb_addr_map -> "bbmap"
  | Eh_frame -> "eh"
  | Rela -> "rela"
  | Rodata -> "ro"
  | Data -> "data"
  | Debug -> "dbg"
  | Symtab -> "sym"

let image_digest t =
  (* Canonical serialization: layout-ordered sections, address-ordered
     blocks with their final instruction streams, and the sorted symbol
     table. Two binaries digest equal iff the images an interpreter or
     disassembler could observe are equal — the byte-identity oracle of
     the --jobs determinism contract. *)
  let b = Buffer.create 4096 in
  Printf.bprintf b "image-v1|%s|entry=%s|text=%d-%d" t.name t.entry_symbol
    t.text_start t.text_end;
  List.iter
    (fun (s : placed) ->
      Printf.bprintf b "|S%s:%s@%d+%d:%s" (kind_tag s.kind) s.name s.addr s.size
        (Option.value ~default:"-" s.symbol))
    t.sections;
  List.iter
    (fun (bi : block_info) ->
      Printf.bprintf b "|B%s#%d@%d+%d" bi.func bi.block bi.addr bi.size;
      List.iter (fun i -> Printf.bprintf b ";%s" (Isa.to_string i)) bi.insts)
    (blocks_in_address_order t);
  List.iter (fun (nm, addr) -> Printf.bprintf b "|Y%s=%d" nm addr) (symbols_sorted t);
  Support.Digesting.of_string (Buffer.contents b)

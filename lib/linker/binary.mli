(** A fully linked executable image.

    The binary records, for every placed basic block, its final virtual
    address, size, and instruction sequence (post-relaxation). The
    execution engine walks this image; the micro-architecture simulator
    consumes the resulting address stream. *)

type block_info = {
  func : string;
  block : int;  (** IR block id. *)
  addr : int;  (** Final virtual address. *)
  size : int;  (** Final encoded size. *)
  insts : Isa.t list;  (** Final instructions, deleted branches removed. *)
}

type placed = {
  name : string;
  kind : Objfile.Section.kind;
  addr : int;
  size : int;
  symbol : string option;
}

type t = {
  name : string;
  entry_symbol : string;
  sections : placed list;  (** In final layout order. *)
  symbols : (string, int) Hashtbl.t;  (** Global symbol -> address. *)
  blocks : (string * int, block_info) Hashtbl.t;  (** (func, block id). *)
  text_start : int;
  text_end : int;
  bb_maps : Objfile.Bbmap.t;  (** Merged metadata, if retained. *)
  uid : int;  (** Unique per constructed binary; used for caching. *)
}

(** [make ...] assembles a binary, assigning it a fresh [uid]. *)
val make :
  name:string ->
  entry_symbol:string ->
  sections:placed list ->
  symbols:(string, int) Hashtbl.t ->
  blocks:(string * int, block_info) Hashtbl.t ->
  text_start:int ->
  text_end:int ->
  bb_maps:Objfile.Bbmap.t ->
  t

(** [symbol_addr t s] resolves a global symbol. *)
val symbol_addr : t -> string -> int option

(** [block_info t ~func ~block] looks a placed block up. *)
val block_info : t -> func:string -> block:int -> block_info option

(** [block_info_exn t ~func ~block] raises [Not_found] when absent. *)
val block_info_exn : t -> func:string -> block:int -> block_info

(** [size_of_kind t kind] sums placed section sizes of [kind]. *)
val size_of_kind : t -> Objfile.Section.kind -> int

(** [total_size t] is the file-size model: the sum of all sections. *)
val total_size : t -> int

(** [text_bytes t] is the size of executable code. *)
val text_bytes : t -> int

(** [num_symbols t] counts global symbols. *)
val num_symbols : t -> int

(** [find_block_by_addr t addr] maps a virtual address to the placed
    block covering it, if any; O(log n). *)
val find_block_by_addr : t -> int -> block_info option

(** [funcs t] lists function names with placed blocks. *)
val funcs : t -> string list

(** [blocks_in_address_order t] lists every placed block sorted by final
    virtual address — the deterministic iteration order introspection
    tools need (the raw [blocks] table iterates in hash order). Shares
    the cached sorted index of {!find_block_by_addr}. *)
val blocks_in_address_order : t -> block_info list

(** [symbols_sorted t] lists (symbol, address) pairs sorted by address,
    ties broken by name — a stable walk of the symbol table for listings
    and diffs. *)
val symbols_sorted : t -> (string * int) list

(** [image_digest t] is a content digest of the observable image: the
    placed section list, every block's final address/size/instructions
    (in address order), and the sorted symbol table. Binaries built from
    the same inputs digest equal regardless of [uid] or construction
    order — the byte-identity oracle behind the [--jobs] determinism
    tests. *)
val image_digest : t -> Support.Digesting.t

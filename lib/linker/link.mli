(** The linker (LLD stand-in).

    Responsibilities mirror the real tool as used by Propeller (paper
    §3.4, §4.2): gather input sections, order text sections by a symbol
    ordering file, resolve symbols, run the relaxation pass that deletes
    explicit fall-through jumps and shrinks branch encodings, assign
    final addresses, and emit the binary plus resource statistics from
    the {!Costmodel}. *)

exception Link_error of string

type options = {
  ordering : string list option;
      (** Symbol ordering file ([ld_prof.txt]): cluster symbols in
          desired layout order. Sections whose symbol is unlisted follow
          in input order. [None] keeps pure input order. *)
  keep_bb_addr_map : bool;
      (** Retain [.llvm_bb_addr_map] in the output (the "PM" metadata
          build). The final optimized relink drops it (§3.4). The
          retained map is re-encoded against final addresses. *)
  emit_relocs : bool;
      (** Keep static relocations in the output ([--emit-relocs], needed
          by BOLT-style rewriters; the "BM" build of Fig 6). *)
  relax : bool;  (** Run the relaxation pass (§4.2). *)
  text_align : int;  (** Alignment of the text segment start (4K / 2M). *)
  base_addr : int;
}

val default_options : options

type stats = {
  input_bytes : int;
  output_bytes : int;
  num_input_sections : int;
  relax_iters : int;  (** Sweeps until the relaxation fixpoint. *)
  deleted_jumps : int;  (** Fall-through jumps removed. *)
  shrunk_branches : int;  (** Long -> short encodings. *)
  peak_mem_bytes : int;
  cpu_seconds : float;
}

type outcome = { binary : Binary.t; stats : stats }

(** [link ?ctx ?options ~name ~entry objs] produces the executable.
    Raises {!Link_error} on duplicate or unresolved symbols.
    Relaxation-iteration, deleted-jump, shrunk-branch and
    resolved-symbol counters are recorded on the context's recorder
    (default {!Obs.Recorder.global}). *)
val link :
  ?ctx:Support.Ctx.t ->
  ?options:options ->
  name:string ->
  entry:string ->
  Objfile.File.t list ->
  outcome

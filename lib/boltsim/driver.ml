type options = {
  lite : bool;
  reorder_blocks : bool;
  reorder_functions : bool;
  split_functions : bool;
  peephole : bool;
}

let fast_options =
  { lite = true; reorder_blocks = true; reorder_functions = true; split_functions = true;
    peephole = false }

let perf_options = { fast_options with lite = false; peephole = true }

type hazards = { rseq : bool; fips_check : bool }

let no_hazards = { rseq = false; fips_check = false }

type result = {
  binary : Linker.Binary.t;
  startup_ok : bool;
  rewritten_funcs : int;
  skipped_funcs : int;
  conversion_mem_bytes : int;
  conversion_seconds : float;
  optimize_mem_bytes : int;
  optimize_seconds : float;
}

let optimize ?(options = perf_options) ~profile ~(binary : Linker.Binary.t) ~is_asm ~hazards
    ~name () =
  (* "perf2bolt": disassemble and aggregate the profile against the
     reconstructed CFG. *)
  let dcfg = Propeller.Dcfg.build_of_blocks ~profile ~binary in
  let hot = Propeller.Dcfg.hot_funcs dcfg in
  let skipped = ref 0 in
  let plans =
    List.filter_map
      (fun (d : Propeller.Dcfg.dfunc) ->
        if is_asm d.dname then begin
          incr skipped;
          None
        end
        else begin
          let hot_order =
            if options.reorder_blocks then (Propeller.Wpa.block_layout dcfg d).blocks
            else begin
              let bbs = Hashtbl.fold (fun bb _ acc -> bb :: acc) d.dblocks [] in
              List.sort_uniq compare (0 :: bbs)
            end
          in
          (* All blocks the binary has for this function. *)
          let all = ref [] in
          Hashtbl.iter
            (fun (f, bb) (_ : Linker.Binary.block_info) ->
              if String.equal f d.dname then all := bb :: !all)
            binary.blocks;
          let rest =
            List.sort_uniq compare !all |> List.filter (fun bb -> not (List.mem bb hot_order))
          in
          if options.split_functions then Some (d.dname, hot_order, rest)
          else Some (d.dname, hot_order @ rest, [])
        end)
      hot
  in
  let func_order =
    if options.reorder_functions then begin
      let names = Array.of_list (List.map (fun (f, _, _) -> f) plans) in
      let name_idx = Hashtbl.create 64 in
      Array.iteri (fun i nm -> Hashtbl.replace name_idx nm i) names;
      let fsizes =
        Array.map
          (fun nm ->
            let d = Hashtbl.find dcfg.funcs nm in
            Hashtbl.fold (fun _ (b : Propeller.Dcfg.mblock) acc -> acc + b.msize) d.dblocks 0)
          names
      in
      let fsamples =
        Array.map (fun nm -> float_of_int (Hashtbl.find dcfg.funcs nm).dsamples) names
      in
      let arcs =
        Propeller.Dcfg.func_arcs dcfg
        |> List.filter_map (fun (a, b, w) ->
               match Hashtbl.find_opt name_idx a, Hashtbl.find_opt name_idx b with
               | Some ai, Some bi -> Some (ai, bi, w)
               | None, _ | _, None -> None)
      in
      Layout.Hfsort.order
        (Layout.Problem.make ~sizes:fsizes ~weights:fsamples ~edges:arcs ~entry:0)
      |> List.map (fun i -> names.(i))
    end
    else List.map (fun (f, _, _) -> f) plans
  in
  let rw = Rewrite.rewrite ~binary ~plans ~func_order ~peephole:options.peephole ~name in
  let text_bytes = Linker.Binary.text_bytes binary in
  let hot_text_bytes =
    List.fold_left
      (fun acc (d : Propeller.Dcfg.dfunc) ->
        Hashtbl.fold (fun _ (b : Propeller.Dcfg.mblock) a -> a + b.msize) d.dblocks acc)
      0 hot
  in
  let profile_bytes = Perfmon.Lbr.raw_bytes Perfmon.Lbr.default_config profile in
  {
    binary = rw.binary;
    startup_ok = not (hazards.rseq || hazards.fips_check);
    rewritten_funcs = rw.rewritten_funcs;
    skipped_funcs = !skipped;
    conversion_mem_bytes = Costmodel.conversion_mem ~text_bytes ~profile_bytes;
    conversion_seconds =
      Costmodel.conversion_seconds ~text_bytes
        ~profile_edges:(Perfmon.Lbr.distinct_edges profile);
    optimize_mem_bytes = Costmodel.optimize_mem ~text_bytes ~hot_text_bytes ~lite:options.lite;
    optimize_seconds =
      Costmodel.optimize_seconds ~text_bytes ~hot_text_bytes ~lite:options.lite;
  }

(** The compiler backend: turns IR compilation units into object files.

    Mirrors Phase 1–2 of the Propeller pipeline (paper §3.1–3.2): all
    optimizations — including PGO-driven intra-function block layout —
    run here, and the [.llvm_bb_addr_map] metadata section is emitted on
    request. In Phase 4 the same backend re-runs over hot units only,
    this time steered by cluster {!Directive}s from the whole-program
    analysis. *)

(** Re-exported submodules: layout directives, the lowering layer, and
    the ThinLTO-style inliner. *)
module Directive = Directive

module Lower = Lower

module Inline = Inline


type options = {
  emit_bb_addr_map : bool;
      (** Emit profile-mapping metadata (the "PM" build of Fig 6). *)
  pgo_layout : bool;
      (** Order blocks within a function by Ext-TSP over PGO-estimated
          edge frequencies (instrumented-PGO baseline); otherwise keep
          source order (-O3-only). *)
  plans : Directive.t;
      (** Cluster directives for hot functions (Phase 4); empty for
          vanilla builds. *)
  prefetch_sites : (string * int) list;
      (** (function, block) pairs where a software prefetch should be
          inserted ahead of the delinquent loads — the summary-based
          directive of the paper's §3.5 prefetch design. *)
}

val default_options : options

(** [intra_order ~use_pgo f] is the compile-time block order for [f]:
    Ext-TSP over estimated frequencies, or source order when [use_pgo]
    is false or the function carries inline assembly (which is never
    reordered). *)
val intra_order : use_pgo:bool -> Ir.Func.t -> int list

(** [compile_unit ?ctx options u] emits the object file of unit [u]:
    per-function text sections (respecting [options.plans]), address-map
    metadata, [.eh_frame] (one CIE plus one FDE per text section; extra
    fragments pay the callee-saved re-emission toll of §4.4), exception
    tables, and the unit's rodata/data. With [ctx], per-function
    lowering fans out across the context's domain pool; the emitted
    object is byte-identical to the sequential one. *)
val compile_unit : ?ctx:Support.Ctx.t -> options -> Ir.Cunit.t -> Objfile.File.t

(** [compile_program ?ctx options p] compiles every unit, fanning out
    across units when a context is given. *)
val compile_program : ?ctx:Support.Ctx.t -> options -> Ir.Program.t -> Objfile.File.t list

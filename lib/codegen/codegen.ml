module Directive = Directive
module Lower = Lower
module Inline = Inline

type options = {
  emit_bb_addr_map : bool;
  pgo_layout : bool;
  plans : Directive.t;
  prefetch_sites : (string * int) list;
}

let default_options =
  { emit_bb_addr_map = false; pgo_layout = true; plans = []; prefetch_sites = [] }

let intra_order ~use_pgo (f : Ir.Func.t) =
  let n = Ir.Func.num_blocks f in
  if (not use_pgo) || f.attrs.has_inline_asm || n = 1 then List.init n Fun.id
  else begin
    let sizes = Array.init n (fun i -> Lower.block_code_bytes (Ir.Func.block f i)) in
    let weights = Ir.Cfg.estimate_frequencies ~use_pgo:true f in
    let edges = Ir.Cfg.edge_frequencies ~freqs:weights ~use_pgo:true f in
    Layout.Exttsp.order (Layout.Problem.make ~sizes ~weights ~edges ~entry:0)
  end

(* Call frame information model (paper §4.4): one 32-byte CIE per
   object; a 40-byte FDE per contiguous text fragment; fragments beyond
   a function's first re-emit callee-saved CFI and redefine the CFA,
   modelled as 16 extra bytes. *)
let cie_bytes = 32

let fde_bytes ~primary = if primary then 40 else 40 + 16

(* Exception tables (paper §4.5): the call-site table is split per
   section range; each extra range adds header bytes. *)
let except_table_bytes (f : Ir.Func.t) ~num_sections =
  if not f.attrs.has_exceptions then 0
  else begin
    let call_sites =
      List.length (Ir.Func.calls f)
    in
    16 + (8 * call_sites) + (8 * max 0 (num_sections - 1))
  end

let compile_func options (f : Ir.Func.t) =
  (* Hand-written assembly is never reordered: its layout directives
     (if any slipped through) are dropped, like the real backend. *)
  let plan = if f.attrs.has_inline_asm then None else Directive.find options.plans f.name in
  let default_order = intra_order ~use_pgo:options.pgo_layout f in
  let prefetch_blocks =
    List.filter_map
      (fun (fn, bb) -> if String.equal fn f.name then Some bb else None)
      options.prefetch_sites
  in
  Lower.lower_func ~emit_bb_addr_map:options.emit_bb_addr_map ~plan ~default_order
    ~prefetch_blocks f

let compile_unit_with ?pool options (u : Ir.Cunit.t) =
  (* Per-function lowering fans out on the pool; section assembly and
     the eh_frame/except accounting stay on the caller, folding in
     function order so emitted objects are identical for any width. *)
  let funcs = Array.of_list u.funcs in
  let lowered =
    match pool with
    | None -> Array.map (fun f -> compile_func options f) funcs
    | Some p ->
      Support.Pool.map_array p (Array.length funcs) (fun i -> compile_func options funcs.(i))
  in
  let func_sections =
    List.mapi (fun i f -> (f, lowered.(i))) (Array.to_list funcs)
  in
  let sections = List.concat_map snd func_sections in
  let eh_bytes =
    List.fold_left
      (fun acc (_, secs) ->
        let texts = List.filter Objfile.Section.is_text secs in
        List.fold_left
          (fun (acc, primary) _ -> (acc + fde_bytes ~primary, false))
          (acc, true) texts
        |> fst)
      cie_bytes func_sections
  in
  let except_bytes =
    List.fold_left
      (fun acc (f, secs) ->
        let texts = List.length (List.filter Objfile.Section.is_text secs) in
        acc + except_table_bytes f ~num_sections:texts)
      0 func_sections
  in
  let raw name kind bytes =
    if bytes = 0 then []
    else [ Objfile.Section.make ~name ~kind (Objfile.Section.Raw bytes) ]
  in
  let extra =
    raw ".eh_frame" Objfile.Section.Eh_frame eh_bytes
    @ raw ".gcc_except_table" Objfile.Section.Rodata except_bytes
    @ raw ".rodata" Objfile.Section.Rodata u.rodata
    @ raw ".data" Objfile.Section.Data u.data
  in
  let has_inline_asm = List.exists (fun (f : Ir.Func.t) -> f.attrs.has_inline_asm) u.funcs in
  Objfile.File.make ~name:(u.name ^ ".o") ~unit_name:u.name ~has_inline_asm (sections @ extra)

let compile_program_with ?pool options p =
  match pool with
  | None -> List.map (compile_unit_with options) (Ir.Program.units p)
  | Some pl ->
    (* Unit-level fan-out; the per-function batches inside each unit
       run inline on whichever domain compiles the unit (nested pool
       use serializes by design). *)
    let units = Array.of_list (Ir.Program.units p) in
    Array.to_list
      (Support.Pool.map_array pl (Array.length units) (fun i ->
           compile_unit_with ~pool:pl options units.(i)))

let ctx_pool = Option.map (fun c -> c.Support.Ctx.pool)

let compile_unit ?ctx options u = compile_unit_with ?pool:(ctx_pool ctx) options u

let compile_program ?ctx options p = compile_program_with ?pool:(ctx_pool ctx) options p

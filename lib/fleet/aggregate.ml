type batch = { round : int; shards : Machine.shard list }

type stats = {
  shards_merged : int;
  stale_shards : int;
  dropped_shards : int;
  translated_pairs : int;
  dropped_pairs : int;
  batches : int;
}

(* One registered image: its placed blocks in final address order (the
   range-walk index, mirroring how the WPA's DCFG walks sequential
   ranges), plus flat (addr, size) arrays for batch binary search. *)
type index = {
  locs : Inspect.Resolve.location array;
  laddrs : int array;
  lsizes : int array;
}

type t = {
  window : int;
  decay : float;
  branch_weight : float;
  mutable batches : batch list;  (* newest first *)
  resolvers : (string, index) Hashtbl.t;  (* hex digest -> index *)
}

let create ?(window = 4) ?(decay = 0.5) ?(lbr_depth = 32) () =
  if window < 1 then invalid_arg "Aggregate.create: window must be positive";
  if decay < 0.0 || decay > 1.0 then invalid_arg "Aggregate.create: decay must be in [0, 1]";
  (* Count inference, as the paper's profile conversion does: a ring of
     depth D replays a taken-branch record in ~D consecutive samples
     but a fall-through range pair (two adjacent slots) in only ~D-1,
     so branch-derived counts are deflated by (D-1)/D to put both
     encodings of the same logical edge on one scale. Without this the
     aggregate inherits a taken-vs-fall-through skew from whichever
     layout the shard was collected on. *)
  let branch_weight =
    if lbr_depth >= 2 then float_of_int (lbr_depth - 1) /. float_of_int lbr_depth else 1.0
  in
  { window; decay; branch_weight; batches = []; resolvers = Hashtbl.create 8 }

let register t binary =
  let hex = Support.Digesting.to_hex (Linker.Binary.image_digest binary) in
  if not (Hashtbl.mem t.resolvers hex) then begin
    let res = Inspect.Resolve.create binary in
    let locs =
      List.concat_map (Inspect.Resolve.blocks_of_func res) (Inspect.Resolve.funcs res)
      |> List.sort (fun (a : Inspect.Resolve.location) b ->
             compare a.block_addr b.block_addr)
      |> Array.of_list
    in
    let laddrs = Array.map (fun (l : Inspect.Resolve.location) -> l.block_addr) locs in
    let lsizes = Array.map (fun (l : Inspect.Resolve.location) -> l.block_size) locs in
    Hashtbl.add t.resolvers hex { locs; laddrs; lsizes }
  end

let registered t digest = Hashtbl.mem t.resolvers digest

let push t ~round shards =
  let shards =
    List.sort (fun (a : Machine.shard) b -> Stdlib.compare a.machine b.machine) shards
  in
  let batches = { round; shards } :: t.batches in
  let rec cap n = function [] -> [] | _ when n = 0 -> [] | x :: rest -> x :: cap (n - 1) rest in
  t.batches <- cap t.window batches

(* The logical units an LBR profile decodes to. Addresses drop out
   entirely — this is what makes the merged aggregate independent of
   the layout each shard was collected on. *)
type item =
  | Edge of string * int * int  (** Intra-function transfer a -> b. *)
  | Call of string * int * string  (** caller block -> callee entry. *)
  | Landing of string * int * string * int * int
      (** Cross-function landing mid-block (returns): source block,
          destination (func, block, offset) — visit evidence only. *)

let find_loc (idx : index) addr =
  match Support.Isearch.covering ~addrs:idx.laddrs ~sizes:idx.lsizes addr with
  | -1 -> None
  | i -> Some (i, idx.locs.(i))

(* Decode one profile against the layout it was collected on, exactly
   mirroring the DCFG's reading of the record streams: a taken-branch
   record's source block contains [src - 1]; a sequential range covers
   the blocks below [range_hi] and yields the fall-through edges
   between address-adjacent same-function blocks. Emitted weights are
   floats: branch-derived evidence carries the ring-multiplicity
   deflation so both encodings of a logical edge weigh the same. *)
let decode t (idx : index) (p : Perfmon.Lbr.profile) emit drop =
  (* Both endpoints of every taken-branch record resolve as flat
     batches against the source layout's block index. *)
  let items = Support.Itab.sorted_items p.Perfmon.Lbr.branches in
  let srcs = Array.map (fun (key, _) -> Support.Packed.src key - 1) items in
  let dsts = Array.map (fun (key, _) -> Support.Packed.dst key) items in
  let si = Support.Isearch.covering_batch ~addrs:idx.laddrs ~sizes:idx.lsizes srcs in
  let di = Support.Isearch.covering_batch ~addrs:idx.laddrs ~sizes:idx.lsizes dsts in
  Array.iteri
    (fun j (_, n) ->
      let w = float_of_int n *. t.branch_weight in
      if si.(j) >= 0 && di.(j) >= 0 then begin
        let sb = idx.locs.(si.(j)) and db = idx.locs.(di.(j)) in
        if String.equal sb.func db.func then emit (Edge (sb.func, sb.block, db.block)) w
        else if db.block = 0 && db.offset = 0 then emit (Call (sb.func, sb.block, db.func)) w
        else emit (Landing (sb.func, sb.block, db.func, db.block, db.offset)) w
      end
      else drop n)
    items;
  Perfmon.Lbr.iter_pairs
    (fun ~src:range_lo ~dst:range_hi n ->
      match find_loc idx range_lo with
      | None -> drop n
      | Some (i0, _) ->
        let rec walk i =
          if i + 1 < Array.length idx.locs then begin
            let b = idx.locs.(i) and nxt = idx.locs.(i + 1) in
            if
              nxt.block_addr < range_hi
              && nxt.block_addr = b.block_addr + b.block_size
              && String.equal nxt.func b.func
            then begin
              emit (Edge (b.func, b.block, nxt.block)) (float_of_int n);
              walk (i + 1)
            end
            else if nxt.block_addr < range_hi then walk (i + 1)
          end
        in
        walk i0)
    p.Perfmon.Lbr.ranges

(* Re-encode a logical item the way a profile collected *on the target
   layout* would have recorded it: transfers to the address-adjacent
   next block become fall-through range evidence (post-relaxation they
   retire no taken branch), everything else a taken-branch record.
   Calls always record as taken branches, landing on the callee entry. *)
(* Weight accumulators are packed-key float tables: one immediate int
   key per logical pair ({!Support.Packed}), no tuple allocation per
   bump. *)
let encode tbl item n ~branches ~ranges ~translated ~dropped =
  let tloc f b : Inspect.Resolve.location option = Hashtbl.find_opt tbl (f, b) in
  let bump (table : (int, float) Hashtbl.t) ~src ~dst n =
    let key = Support.Packed.pack ~src ~dst in
    Hashtbl.replace table key (n +. Option.value ~default:0.0 (Hashtbl.find_opt table key))
  in
  let end_addr (l : Inspect.Resolve.location) = l.block_addr + l.block_size in
  match item with
  | Edge (f, a, b) -> (
    match (tloc f a, tloc f b) with
    | Some la, Some lb when la.block_size > 0 && lb.block_size > 0 ->
      translated := !translated + 1;
      if lb.block_addr = end_addr la then
        bump ranges ~src:la.block_addr ~dst:(lb.block_addr + 1) n
      else bump branches ~src:(end_addr la) ~dst:lb.block_addr n
    | _ -> dropped := !dropped + 1)
  | Call (f, a, g) -> (
    match (tloc f a, tloc g 0) with
    | Some la, Some lg when la.block_size > 0 ->
      translated := !translated + 1;
      bump branches ~src:(end_addr la) ~dst:lg.block_addr n
    | _ -> dropped := !dropped + 1)
  | Landing (f, a, g, b, off) -> (
    match (tloc f a, tloc g b) with
    | Some la, Some lb when la.block_size > 0 && lb.block_size > 0 ->
      let off = min off (lb.block_size - 1) in
      (* A landing at a callee entry's first byte would re-encode as a
         call arc; nudge inside the block (or drop a 1-byte entry). *)
      if b = 0 && off = 0 && lb.block_size < 2 then dropped := !dropped + 1
      else begin
        translated := !translated + 1;
        let off = if b = 0 && off = 0 then 1 else off in
        bump branches ~src:(end_addr la) ~dst:(lb.block_addr + off) n
      end
    | _ -> dropped := !dropped + 1)

(* Sorted (packed key, weight) pairs of a packed-key table. Packed keys
   sort exactly like their (src, dst) pairs. *)
let sorted_pairs tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort Stdlib.compare

(* Rebuild an int table by inserting pairs in sorted order: slot layout
   (hence iteration order) becomes a pure function of contents, so
   downstream consumers (WPA's DCFG construction) see the same profile
   no matter what order the shards merged in. *)
let canonical (tbl : Support.Itab.t) =
  let items = Support.Itab.sorted_items tbl in
  let out = Support.Itab.create (max 16 (Array.length items)) in
  Array.iter (fun (k, v) -> Support.Itab.add out k v) items;
  out

let block_table (target : index) =
  let tbl = Hashtbl.create 1024 in
  Array.iter
    (fun (loc : Inspect.Resolve.location) -> Hashtbl.replace tbl (loc.func, loc.block) loc)
    target.locs;
  tbl

let merged t ~target =
  let target_idx =
    match Hashtbl.find_opt t.resolvers target with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Aggregate.merged: unregistered target %s" target)
  in
  let tbl = block_table target_idx in
  let out = Perfmon.Lbr.create_profile () in
  let fbranches : (int, float) Hashtbl.t = Hashtbl.create 4096 in
  let franges : (int, float) Hashtbl.t = Hashtbl.create 4096 in
  let shards_merged = ref 0
  and stale = ref 0
  and dropped_shards = ref 0
  and translated = ref 0
  and dropped = ref 0 in
  let newest = match t.batches with [] -> 0 | b :: _ -> b.round in
  List.iter
    (fun b ->
      let factor = t.decay ** float_of_int (newest - b.round) in
      let scale n = int_of_float (float_of_int n *. factor) in
      List.iter
        (fun (sh : Machine.shard) ->
          match Hashtbl.find_opt t.resolvers sh.digest with
          | None -> incr dropped_shards
          | Some source ->
            incr shards_merged;
            if sh.digest <> target then incr stale;
            let p = sh.profile in
            (* Every shard — current generation included — goes through
               decode/encode, so the aggregate is one canonical function
               of (logical traffic, target layout): the fixed point the
               relink loop converges to. Weights accumulate as floats
               and round once at the end; decayed evidence fades to
               zero and is dropped from the tables. *)
            decode t source p
              (fun item w ->
                let w = w *. factor in
                if w > 0.0 then
                  encode tbl item w ~branches:fbranches ~ranges:franges ~translated
                    ~dropped)
              (fun n -> if scale n > 0 then dropped := !dropped + 1);
            Perfmon.Lbr.iter_pairs
              (fun ~src ~dst n ->
                let n = scale n in
                if n > 0 then
                  match (find_loc source (src - 1), find_loc source dst) with
                  | Some (_, sb), Some (_, db) -> (
                    match (Hashtbl.find_opt tbl (sb.func, sb.block),
                           Hashtbl.find_opt tbl (db.func, db.block))
                    with
                    | Some la, Some lb when la.block_size > 0 ->
                      Perfmon.Lbr.add_pair out.Perfmon.Lbr.mispredicts
                        ~src:(la.block_addr + la.block_size) ~dst:lb.block_addr n
                    | _ -> ())
                  | _ -> ())
              p.Perfmon.Lbr.mispredicts;
            out.num_samples <- out.num_samples + scale p.num_samples;
            out.num_records <- out.num_records + scale p.num_records)
        b.shards)
    t.batches;
  (* Round the float accumulators into canonical int tables: sorted
     insertion keeps slot layout a pure function of contents. *)
  let rounded ftbl =
    let itbl = Support.Itab.create (max 16 (Hashtbl.length ftbl)) in
    List.iter
      (fun (k, w) ->
        let n = int_of_float (Float.round w) in
        if n > 0 then Support.Itab.add itbl k n)
      (sorted_pairs ftbl);
    itbl
  in
  let out =
    {
      out with
      Perfmon.Lbr.branches = rounded fbranches;
      ranges = rounded franges;
      mispredicts = canonical out.mispredicts;
    }
  in
  ( out,
    {
      shards_merged = !shards_merged;
      stale_shards = !stale;
      dropped_shards = !dropped_shards;
      translated_pairs = !translated;
      dropped_pairs = !dropped;
      batches = List.length t.batches;
    } )

let signature (p : Perfmon.Lbr.profile) =
  let buf = Buffer.create 4096 in
  let dump tag tbl =
    Array.iter
      (fun (key, c) ->
        Printf.bprintf buf "%s %d %d %d\n" tag (Support.Packed.src key)
          (Support.Packed.dst key) c)
      (Support.Itab.sorted_items tbl)
  in
  dump "b" p.branches;
  dump "r" p.ranges;
  dump "m" p.mispredicts;
  Printf.bprintf buf "t %d %d\n" p.num_samples p.num_records;
  Support.Digesting.to_hex (Support.Digesting.of_string (Buffer.contents buf))

type batch = { round : int; shards : Machine.shard list }

type stats = {
  shards_merged : int;
  stale_shards : int;
  dropped_shards : int;
  translated_pairs : int;
  dropped_pairs : int;
  batches : int;
}

(* One registered image: its placed blocks in final address order (the
   range-walk index, mirroring how the WPA's DCFG walks sequential
   ranges). *)
type index = { locs : Inspect.Resolve.location array }

type t = {
  window : int;
  decay : float;
  branch_weight : float;
  mutable batches : batch list;  (* newest first *)
  resolvers : (string, index) Hashtbl.t;  (* hex digest -> index *)
}

let create ?(window = 4) ?(decay = 0.5) ?(lbr_depth = 32) () =
  if window < 1 then invalid_arg "Aggregate.create: window must be positive";
  if decay < 0.0 || decay > 1.0 then invalid_arg "Aggregate.create: decay must be in [0, 1]";
  (* Count inference, as the paper's profile conversion does: a ring of
     depth D replays a taken-branch record in ~D consecutive samples
     but a fall-through range pair (two adjacent slots) in only ~D-1,
     so branch-derived counts are deflated by (D-1)/D to put both
     encodings of the same logical edge on one scale. Without this the
     aggregate inherits a taken-vs-fall-through skew from whichever
     layout the shard was collected on. *)
  let branch_weight =
    if lbr_depth >= 2 then float_of_int (lbr_depth - 1) /. float_of_int lbr_depth else 1.0
  in
  { window; decay; branch_weight; batches = []; resolvers = Hashtbl.create 8 }

let register t binary =
  let hex = Support.Digesting.to_hex (Linker.Binary.image_digest binary) in
  if not (Hashtbl.mem t.resolvers hex) then begin
    let res = Inspect.Resolve.create binary in
    let locs =
      List.concat_map (Inspect.Resolve.blocks_of_func res) (Inspect.Resolve.funcs res)
      |> List.sort (fun (a : Inspect.Resolve.location) b ->
             compare a.block_addr b.block_addr)
      |> Array.of_list
    in
    Hashtbl.add t.resolvers hex { locs }
  end

let registered t digest = Hashtbl.mem t.resolvers digest

let push t ~round shards =
  let shards =
    List.sort (fun (a : Machine.shard) b -> Stdlib.compare a.machine b.machine) shards
  in
  let batches = { round; shards } :: t.batches in
  let rec cap n = function [] -> [] | _ when n = 0 -> [] | x :: rest -> x :: cap (n - 1) rest in
  t.batches <- cap t.window batches

(* The logical units an LBR profile decodes to. Addresses drop out
   entirely — this is what makes the merged aggregate independent of
   the layout each shard was collected on. *)
type item =
  | Edge of string * int * int  (** Intra-function transfer a -> b. *)
  | Call of string * int * string  (** caller block -> callee entry. *)
  | Landing of string * int * string * int * int
      (** Cross-function landing mid-block (returns): source block,
          destination (func, block, offset) — visit evidence only. *)

let find_loc (locs : Inspect.Resolve.location array) addr =
  let rec search lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let b = locs.(mid) in
      if addr < b.block_addr then search lo (mid - 1)
      else if addr >= b.block_addr + b.block_size then search (mid + 1) hi
      else Some (mid, b)
    end
  in
  search 0 (Array.length locs - 1)

(* Decode one profile against the layout it was collected on, exactly
   mirroring the DCFG's reading of the record streams: a taken-branch
   record's source block contains [src - 1]; a sequential range covers
   the blocks below [range_hi] and yields the fall-through edges
   between address-adjacent same-function blocks. Emitted weights are
   floats: branch-derived evidence carries the ring-multiplicity
   deflation so both encodings of a logical edge weigh the same. *)
let decode t (idx : index) (p : Perfmon.Lbr.profile) emit drop =
  Hashtbl.iter
    (fun (src, dst) n ->
      let w = float_of_int n *. t.branch_weight in
      match (find_loc idx.locs (src - 1), find_loc idx.locs dst) with
      | Some (_, sb), Some (_, db) ->
        if String.equal sb.func db.func then emit (Edge (sb.func, sb.block, db.block)) w
        else if db.block = 0 && db.offset = 0 then emit (Call (sb.func, sb.block, db.func)) w
        else emit (Landing (sb.func, sb.block, db.func, db.block, db.offset)) w
      | None, _ | _, None -> drop n)
    p.Perfmon.Lbr.branches;
  Hashtbl.iter
    (fun (range_lo, range_hi) n ->
      match find_loc idx.locs range_lo with
      | None -> drop n
      | Some (i0, _) ->
        let rec walk i =
          if i + 1 < Array.length idx.locs then begin
            let b = idx.locs.(i) and nxt = idx.locs.(i + 1) in
            if
              nxt.block_addr < range_hi
              && nxt.block_addr = b.block_addr + b.block_size
              && String.equal nxt.func b.func
            then begin
              emit (Edge (b.func, b.block, nxt.block)) (float_of_int n);
              walk (i + 1)
            end
            else if nxt.block_addr < range_hi then walk (i + 1)
          end
        in
        walk i0)
    p.Perfmon.Lbr.ranges

(* Re-encode a logical item the way a profile collected *on the target
   layout* would have recorded it: transfers to the address-adjacent
   next block become fall-through range evidence (post-relaxation they
   retire no taken branch), everything else a taken-branch record.
   Calls always record as taken branches, landing on the callee entry. *)
let encode tbl item n ~branches ~ranges ~translated ~dropped =
  let tloc f b : Inspect.Resolve.location option = Hashtbl.find_opt tbl (f, b) in
  let bump table key n =
    Hashtbl.replace table key (n +. Option.value ~default:0.0 (Hashtbl.find_opt table key))
  in
  let end_addr (l : Inspect.Resolve.location) = l.block_addr + l.block_size in
  match item with
  | Edge (f, a, b) -> (
    match (tloc f a, tloc f b) with
    | Some la, Some lb when la.block_size > 0 && lb.block_size > 0 ->
      translated := !translated + 1;
      if lb.block_addr = end_addr la then bump ranges (la.block_addr, lb.block_addr + 1) n
      else bump branches (end_addr la, lb.block_addr) n
    | _ -> dropped := !dropped + 1)
  | Call (f, a, g) -> (
    match (tloc f a, tloc g 0) with
    | Some la, Some lg when la.block_size > 0 ->
      translated := !translated + 1;
      bump branches (end_addr la, lg.block_addr) n
    | _ -> dropped := !dropped + 1)
  | Landing (f, a, g, b, off) -> (
    match (tloc f a, tloc g b) with
    | Some la, Some lb when la.block_size > 0 && lb.block_size > 0 ->
      let off = min off (lb.block_size - 1) in
      (* A landing at a callee entry's first byte would re-encode as a
         call arc; nudge inside the block (or drop a 1-byte entry). *)
      if b = 0 && off = 0 && lb.block_size < 2 then dropped := !dropped + 1
      else begin
        translated := !translated + 1;
        let off = if b = 0 && off = 0 then 1 else off in
        bump branches (end_addr la, lb.block_addr + off) n
      end
    | _ -> dropped := !dropped + 1)

let sorted_pairs tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort Stdlib.compare

(* Rebuild a hashtable by inserting pairs in sorted order: iteration
   order becomes a pure function of contents, so downstream consumers
   (WPA's DCFG construction) see the same profile no matter what order
   the shards merged in. *)
let canonical tbl =
  let out = Hashtbl.create (max 16 (Hashtbl.length tbl)) in
  List.iter (fun (k, v) -> Hashtbl.add out k v) (sorted_pairs tbl);
  out

let block_table (target : index) =
  let tbl = Hashtbl.create 1024 in
  Array.iter
    (fun (loc : Inspect.Resolve.location) -> Hashtbl.replace tbl (loc.func, loc.block) loc)
    target.locs;
  tbl

let merged t ~target =
  let target_idx =
    match Hashtbl.find_opt t.resolvers target with
    | Some r -> r
    | None -> invalid_arg (Printf.sprintf "Aggregate.merged: unregistered target %s" target)
  in
  let tbl = block_table target_idx in
  let out = Perfmon.Lbr.create_profile () in
  let fbranches : (int * int, float) Hashtbl.t = Hashtbl.create 4096 in
  let franges : (int * int, float) Hashtbl.t = Hashtbl.create 4096 in
  let shards_merged = ref 0
  and stale = ref 0
  and dropped_shards = ref 0
  and translated = ref 0
  and dropped = ref 0 in
  let newest = match t.batches with [] -> 0 | b :: _ -> b.round in
  List.iter
    (fun b ->
      let factor = t.decay ** float_of_int (newest - b.round) in
      let scale n = int_of_float (float_of_int n *. factor) in
      List.iter
        (fun (sh : Machine.shard) ->
          match Hashtbl.find_opt t.resolvers sh.digest with
          | None -> incr dropped_shards
          | Some source ->
            incr shards_merged;
            if sh.digest <> target then incr stale;
            let p = sh.profile in
            (* Every shard — current generation included — goes through
               decode/encode, so the aggregate is one canonical function
               of (logical traffic, target layout): the fixed point the
               relink loop converges to. Weights accumulate as floats
               and round once at the end; decayed evidence fades to
               zero and is dropped from the tables. *)
            decode t source p
              (fun item w ->
                let w = w *. factor in
                if w > 0.0 then
                  encode tbl item w ~branches:fbranches ~ranges:franges ~translated
                    ~dropped)
              (fun n -> if scale n > 0 then dropped := !dropped + 1);
            Hashtbl.iter
              (fun (src, dst) n ->
                let n = scale n in
                if n > 0 then
                  match (find_loc source.locs (src - 1), find_loc source.locs dst) with
                  | Some (_, sb), Some (_, db) -> (
                    match (Hashtbl.find_opt tbl (sb.func, sb.block),
                           Hashtbl.find_opt tbl (db.func, db.block))
                    with
                    | Some la, Some lb when la.block_size > 0 ->
                      let key = (la.block_addr + la.block_size, lb.block_addr) in
                      Hashtbl.replace out.Perfmon.Lbr.mispredicts key
                        (n
                        + Option.value ~default:0
                            (Hashtbl.find_opt out.Perfmon.Lbr.mispredicts key))
                    | _ -> ())
                  | _ -> ())
              p.Perfmon.Lbr.mispredicts;
            out.num_samples <- out.num_samples + scale p.num_samples;
            out.num_records <- out.num_records + scale p.num_records)
        b.shards)
    t.batches;
  let rounded ftbl =
    let itbl = Hashtbl.create (max 16 (Hashtbl.length ftbl)) in
    Hashtbl.iter
      (fun k w ->
        let n = int_of_float (Float.round w) in
        if n > 0 then Hashtbl.replace itbl k n)
      ftbl;
    itbl
  in
  let out =
    {
      out with
      Perfmon.Lbr.branches = canonical (rounded fbranches);
      ranges = canonical (rounded franges);
      mispredicts = canonical out.mispredicts;
    }
  in
  ( out,
    {
      shards_merged = !shards_merged;
      stale_shards = !stale;
      dropped_shards = !dropped_shards;
      translated_pairs = !translated;
      dropped_pairs = !dropped;
      batches = List.length t.batches;
    } )

let signature (p : Perfmon.Lbr.profile) =
  let buf = Buffer.create 4096 in
  let dump tag tbl =
    List.iter
      (fun ((a, b), c) -> Printf.bprintf buf "%s %d %d %d\n" tag a b c)
      (sorted_pairs tbl)
  in
  dump "b" p.branches;
  dump "r" p.ranges;
  dump "m" p.mispredicts;
  Printf.bprintf buf "t %d %d\n" p.num_samples p.num_records;
  Support.Digesting.to_hex (Support.Digesting.of_string (Buffer.contents buf))

type shard = {
  machine : int;
  generation : int;
  digest : string;
  requests : int;
  cycles : float;
  cycles_per_request : float;
  fall_through_rate : float;
  mispredict_rate : float;
  profile : Perfmon.Lbr.profile;
}

type t = {
  id : int;
  program : Ir.Program.t;
  core_config : Uarch.Core.config;
  series : Obs.Timeseries.t;
  mutable generation : int;
  mutable binary : Linker.Binary.t;
  mutable image : Exec.Image.t;
  mutable digest : string;
}

let hex binary = Support.Digesting.to_hex (Linker.Binary.image_digest binary)

let create ~id ~program ~core_config ~clock ?window_s ?capacity ?decay ~generation binary =
  {
    id;
    program;
    core_config;
    series = Obs.Timeseries.create ?window_s ?capacity ?decay clock;
    generation;
    binary;
    image = Exec.Image.build program binary;
    digest = hex binary;
  }

let id t = t.id

let generation t = t.generation

let binary t = t.binary

let digest t = t.digest

let series t = t.series

let deploy t ~generation binary =
  t.generation <- generation;
  t.binary <- binary;
  t.image <- Exec.Image.build t.program binary;
  t.digest <- hex binary

let serve ?ctx ?(source = Perfmon.Source.Lbr)
    ?(sampler = Perfmon.Sampler.default_config) t ~lbr ~requests =
  let lbr_profile = Perfmon.Lbr.create_profile () in
  let samples = Perfmon.Sampler.create_profile () in
  (* Per-machine sampler stream: machines must not sample in lockstep
     (they serve different request mixes), so salt the jitter seed. *)
  let sampler =
    { sampler with Perfmon.Sampler.seed = sampler.Perfmon.Sampler.seed + (7919 * t.id) }
  in
  let core = Uarch.Core.create t.core_config in
  (* Direct tape drains for the hot consumers; the software sampler
     stays a closure sink behind the replay adapter. The collectors are
     independent state machines over disjoint event kinds, so draining
     them one after the other observes exactly what the tee did. *)
  let drain =
    match source with
    | Perfmon.Source.Lbr ->
      let c = Perfmon.Lbr.collector_state lbr lbr_profile in
      fun tape ->
        Perfmon.Lbr.consume c tape;
        Uarch.Core.consume core tape
    | Perfmon.Source.Sampled ->
      let sink = Perfmon.Sampler.collector sampler samples in
      fun tape ->
        Exec.Event.replay tape sink;
        Uarch.Core.consume core tape
  in
  let stats =
    Exec.Interp.run_tape ?ctx t.image { Exec.Interp.default_config with requests } ~drain
  in
  (* A sampled machine synthesizes locally against the binary it ran
     (the AutoFDO shape: perf.data -> profile conversion on the host,
     LBR-shaped shards upstream), so the aggregation tier's
     cross-generation re-encoding works unchanged. *)
  let profile =
    match source with
    | Perfmon.Source.Lbr -> lbr_profile
    | Perfmon.Source.Sampled ->
      Propeller.Autofdo.synthesize ~period:sampler.Perfmon.Sampler.period ~samples
        ~program:t.program ~binary:t.binary ()
  in
  let served = stats.Exec.Interp.requests_completed in
  let cycles = Uarch.Core.cycles core in
  let cycles_per_request = cycles /. float_of_int (max 1 served) in
  (* Layout quality as the hardware sees it: a good layout places the
     hot successor of a conditional next (not taken) and relaxes away
     unconditional jumps, so the not-taken share of all transfer sites
     rises with layout quality. *)
  let transfer_sites = stats.cond_branches + stats.uncond_jumps in
  let fall_through_rate =
    if transfer_sites = 0 then 0.0
    else float_of_int (stats.cond_branches - stats.cond_taken) /. float_of_int transfer_sites
  in
  let mispredict_rate =
    if profile.Perfmon.Lbr.num_records = 0 then 0.0
    else
      float_of_int (Perfmon.Lbr.mispredict_total profile)
      /. float_of_int profile.Perfmon.Lbr.num_records
  in
  Obs.Timeseries.add t.series "machine.requests" (float_of_int served);
  Obs.Timeseries.set t.series "machine.cycles_per_request" cycles_per_request;
  Obs.Timeseries.set t.series "machine.fall_through_rate" fall_through_rate;
  Obs.Timeseries.set t.series "machine.mispredict_rate" mispredict_rate;
  {
    machine = t.id;
    generation = t.generation;
    digest = t.digest;
    requests = served;
    cycles;
    cycles_per_request;
    fall_through_rate;
    mispredict_rate;
    profile;
  }

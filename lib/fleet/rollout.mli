(** The continuous profile → relink → canary → promote loop (paper §2,
    Fig 1) over a simulated machine fleet.

    Each cycle: every machine serves a round of seeded traffic and
    ships its LBR shard to the {!Aggregate} store; the coordinator
    relinks a candidate image from the decayed aggregate window (WPA
    consumes the profile directly — machines run metadata builds with
    the previous cycle's layout applied, so samples come from
    already-optimized binaries); if the candidate's image digest equals
    the deployed one the fleet has {e converged}, otherwise the
    candidate deploys to a canary slice, a second serve round runs, and
    {!Diagnostics.Compare} with {!Diagnostics.Compare.fleet_rules}
    judges the canary slice against the control slice. A clean canary
    promotes fleet-wide; a regression rolls the canary back — and the
    rejected candidate's shards, already in the store, are translated
    back through {!Inspect.Resolve} like any stale shard.

    Everything runs on simulated clocks, so a (seed, config) pair
    yields byte-identical reports and JSON at any [--jobs] width. *)

type config = {
  machines : int;
  cycles : int;
  canary : int;  (** Canary slice size (clamped to machines - 1). *)
  requests : int;  (** Mean requests per machine per serve round. *)
  jitter_pct : float;  (** Per-(seed, machine, round) traffic spread. *)
  seed : int;
  window : int;  (** Aggregation window, in serve rounds. *)
  decay : float;  (** Per-round shard decay. *)
  serve_window_s : float;  (** Simulated duration of one serve round. *)
  threshold_pct : float;  (** Canary judgment threshold. *)
  sabotage_cycle : int option;
      (** Force a pathological candidate (every block its own cluster,
          ordering reversed) at this cycle — the stale-profile drill
          that must be caught by the canary judge and rolled back. *)
  lbr : Perfmon.Lbr.config;
  profile_source : Perfmon.Source.t;
      (** Shard regime for every machine: hardware LBR (default) or the
          software stack sampler with local AutoFDO synthesis. Sampled
          runs aggregate at [lbr_depth = 1] — synthesized shards carry
          no LBR ring multiplicity to deflate. *)
  sampler : Perfmon.Sampler.config;  (** Used when [profile_source = Sampled]. *)
  wpa : Propeller.Wpa.config;
  core : Uarch.Core.config;
}

val default_config : config

type verdict =
  | Promoted  (** Canary judged clean; candidate deployed fleet-wide. *)
  | Rolled_back  (** Canary regressed; slice redeployed the old image. *)
  | Converged  (** Candidate digest equals the deployed digest. *)

val verdict_to_string : verdict -> string

type cycle_report = {
  cycle : int;  (** 1-based. *)
  generation : int;  (** Deployed generation after the cycle's verdict. *)
  candidate_digest : string;
  verdict : verdict;
  judged : Diagnostics.Compare.outcome option;  (** [None] on converge. *)
  aggregate : Aggregate.stats;
  aggregate_signature : string;
  aggregate_edges : int;
  cycles_per_request : float;  (** Fleet mean over the serve round. *)
  fall_through_rate : float;
  mispredict_rate : float;
  requests : int;  (** Total requests served this cycle (all rounds). *)
}

type result = {
  name : string;
  config : config;
  machines : Machine.t list;
  fleet_series : Obs.Timeseries.t;
  reports : cycle_report list;  (** One per cycle, in order. *)
  promotions : int;
  rollbacks : int;
  converged : bool;  (** Some cycle reached {!Converged}. *)
  converged_after_relinks : int option;
      (** Promotions before the first converged cycle. *)
  final_generation : int;
  final_digest : string;
}

(** [run ?config ~ctx ~program ~name ()] boots [config.machines]
    machines on the generation-0 metadata build of [program] and runs
    [config.cycles] optimization cycles. Canary pushes, promotions and
    rollbacks are recorded as flight-recorder notes and every machine's
    serve rounds appear as spans on its own Chrome-trace process lane
    (pid [100 + id]). *)
val run :
  ?config:config -> ctx:Support.Ctx.t -> program:Ir.Program.t -> name:string -> unit -> result

(** [report r] is the plain-text fleet health report: one line per
    cycle plus the fleet and per-machine time-series with sparklines. *)
val report : result -> string

(** [to_json r] is the deterministic fleet report (schema_version 1):
    config echo, per-cycle verdicts, aggregate accounting, fleet and
    per-machine series. No wall-clock anywhere. *)
val to_json : result -> Obs.Json.t

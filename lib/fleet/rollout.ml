type config = {
  machines : int;
  cycles : int;
  canary : int;
  requests : int;
  jitter_pct : float;
  seed : int;
  window : int;
  decay : float;
  serve_window_s : float;
  threshold_pct : float;
  sabotage_cycle : int option;
  lbr : Perfmon.Lbr.config;
  profile_source : Perfmon.Source.t;
  sampler : Perfmon.Sampler.config;
  wpa : Propeller.Wpa.config;
  core : Uarch.Core.config;
}

let default_config =
  {
    machines = 4;
    cycles = 3;
    canary = 1;
    requests = 60;
    jitter_pct = 0.2;
    seed = 1;
    window = 4;
    decay = 0.5;
    serve_window_s = 60.0;
    threshold_pct = 5.0;
    sabotage_cycle = None;
    lbr = Perfmon.Lbr.default_config;
    profile_source = Perfmon.Source.Lbr;
    sampler = Perfmon.Sampler.default_config;
    wpa = Propeller.Wpa.default_config;
    core = Uarch.Core.default_config;
  }

type verdict = Promoted | Rolled_back | Converged

let verdict_to_string = function
  | Promoted -> "promoted"
  | Rolled_back -> "rolled_back"
  | Converged -> "converged"

type cycle_report = {
  cycle : int;
  generation : int;
  candidate_digest : string;
  verdict : verdict;
  judged : Diagnostics.Compare.outcome option;
  aggregate : Aggregate.stats;
  aggregate_signature : string;
  aggregate_edges : int;
  cycles_per_request : float;
  fall_through_rate : float;
  mispredict_rate : float;
  requests : int;
}

type result = {
  name : string;
  config : config;
  machines : Machine.t list;
  fleet_series : Obs.Timeseries.t;
  reports : cycle_report list;
  promotions : int;
  rollbacks : int;
  converged : bool;
  converged_after_relinks : int option;
  final_generation : int;
  final_digest : string;
}

(* Deterministic per-(seed, machine, round) traffic jitter: an FNV-1a
   fold, no global RNG state, so fleets replay byte-identically. *)
let hash3 a b c =
  let h = ref 0x2545f4914f6cdd1d in
  let step v =
    h := !h lxor v;
    h := !h * 0x100000001b3 land max_int
  in
  step a;
  step b;
  step c;
  !h

let jittered (config : config) ~machine ~round =
  let span = int_of_float (float_of_int config.requests *. config.jitter_pct) in
  if span <= 0 then config.requests
  else config.requests - span + (hash3 config.seed machine round mod ((2 * span) + 1))

let machine_pid id = 100 + id

let hex binary = Support.Digesting.to_hex (Linker.Binary.image_digest binary)

(* The generation-N build: a metadata build (bb_addr_map kept, so WPA
   can consume profiles collected on it directly) with generation N-1's
   layout applied — exactly the paper's continuous deployment shape,
   where samples always come from already-optimized binaries. *)
let build_generation env ~name ~program layout =
  let cg_meta, ld_meta = Propeller.Pipeline.metadata_options in
  let cg, ld =
    match layout with
    | None -> (cg_meta, ld_meta)
    | Some (plans, ordering) ->
      ( { cg_meta with Codegen.plans },
        { ld_meta with Linker.Link.ordering = Some ordering } )
  in
  (* One fixed artifact name for every generation: the binary's name
     participates in the image digest, and convergence is digest
     equality — the generation is rollout state, not image content. *)
  Buildsys.Driver.build env ~name:(name ^ ".fleet") ~program ~codegen_options:cg
    ~link_options:ld

(* The stale-profile drill: a syntactically valid but pathological
   candidate — every block its own cluster, global ordering reversed —
   so physical fall-through collapses and the canary judge must catch
   it. Derived from the deployed layout's own block inventory. *)
let sabotage_layout resolver =
  let plans =
    List.filter_map
      (fun func ->
        let ids =
          Inspect.Resolve.blocks_of_func resolver func
          |> List.map (fun (l : Inspect.Resolve.location) -> l.block)
          |> List.sort_uniq Stdlib.compare
        in
        if not (List.mem 0 ids) then None
        else
          let rest = List.filter (fun b -> b <> 0) ids |> List.rev in
          let clusters =
            { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = [ 0 ] }
            :: List.mapi
                 (fun i b ->
                   { Codegen.Directive.kind = Codegen.Directive.Extra (i + 1); blocks = [ b ] })
                 rest
          in
          Some { Codegen.Directive.func; clusters })
      (Inspect.Resolve.funcs resolver)
  in
  let ordering =
    List.concat_map
      (fun (p : Codegen.Directive.func_plan) ->
        List.map (Codegen.Directive.symbol p.func) p.clusters)
      plans
    |> List.rev
  in
  (plans, ordering)

(* Requests-weighted slice aggregates wrapped as a minimal bench-shaped
   JSON object, so Diagnostics.Compare judges canary vs control with
   the same machinery that gates bench trajectories. *)
let slice_json shards =
  let reqs = List.fold_left (fun a (s : Machine.shard) -> a + s.requests) 0 shards in
  let fr = float_of_int (max 1 reqs) in
  let cycles = List.fold_left (fun a (s : Machine.shard) -> a +. s.cycles) 0.0 shards in
  let wmean f =
    List.fold_left (fun a (s : Machine.shard) -> a +. (f s *. float_of_int s.requests)) 0.0 shards
    /. fr
  in
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 1);
      ( "fleet",
        Obs.Json.Obj
          [
            ("cycles_per_request", Obs.Json.Float (cycles /. fr));
            ("fall_through_rate", Obs.Json.Float (wmean (fun s -> s.fall_through_rate)));
            ("mispredict_rate", Obs.Json.Float (wmean (fun s -> s.mispredict_rate)));
          ] );
    ]

let run ?(config = default_config) ~ctx ~program ~name () =
  if config.machines < 2 then invalid_arg "Rollout.run: need at least 2 machines";
  if config.cycles < 1 then invalid_arg "Rollout.run: need at least 1 cycle";
  let canary_n = max 1 (min config.canary (config.machines - 1)) in
  let rec_ = ctx.Support.Ctx.recorder in
  let env = Buildsys.Driver.make_env ~ctx () in
  let fleet_clock = Obs.Clock.create () in
  let fleet_series =
    Obs.Timeseries.create ~window_s:1.0 ~capacity:256 ~decay:config.decay fleet_clock
  in
  (* Synthesized (sampled) shards have no LBR ring multiplicity, so the
     aggregation tier must not deflate their branch counts by ring
     depth: depth 1 makes the re-encode pass-through. *)
  let agg =
    let lbr_depth =
      match config.profile_source with
      | Perfmon.Source.Lbr -> config.lbr.Perfmon.Lbr.buffer_depth
      | Perfmon.Source.Sampled -> 1
    in
    Aggregate.create ~window:config.window ~decay:config.decay ~lbr_depth ()
  in
  Obs.Recorder.with_span rec_ "fleet:run" @@ fun () ->
  let gen0 = build_generation env ~name ~program None in
  Aggregate.register agg gen0.Buildsys.Driver.binary;
  let machines =
    List.init config.machines (fun id ->
        Machine.create ~id ~program ~core_config:config.core ~clock:fleet_clock ~window_s:1.0
          ~capacity:256 ~decay:config.decay ~generation:0 gen0.Buildsys.Driver.binary)
  in
  let trace = Obs.Recorder.trace rec_ in
  Obs.Trace.set_process_name trace ~pid:1 "fleet-coordinator";
  List.iter
    (fun m ->
      let pid = machine_pid (Machine.id m) in
      Obs.Trace.set_process_name trace ~pid (Printf.sprintf "machine-%02d" (Machine.id m));
      Obs.Trace.set_thread_name trace ~pid ~tid:1 "serve")
    machines;
  let round = ref 0 in
  (* One fleet-wide serve round: every machine serves its jittered
     traffic, gets a span on its own trace lane, and the round lands in
     its own time-series window (the fleet clock ticks once a round). *)
  let serve_round label =
    incr round;
    let start = Obs.Recorder.now rec_ in
    let shards =
      List.map
        (fun m ->
          let id = Machine.id m in
          let requests = jittered config ~machine:id ~round:!round in
          let sh =
            Machine.serve ~ctx ~source:config.profile_source ~sampler:config.sampler m
              ~lbr:config.lbr ~requests
          in
          Obs.Recorder.emit_span ~pid:(machine_pid id)
            ~args:
              [
                ("requests", Obs.Trace.Int sh.Machine.requests);
                ("generation", Obs.Trace.Int sh.Machine.generation);
              ]
            rec_ label ~start ~duration:config.serve_window_s;
          sh)
        machines
    in
    Obs.Recorder.advance rec_ config.serve_window_s;
    let reqs = List.fold_left (fun a (s : Machine.shard) -> a + s.requests) 0 shards in
    let cycles = List.fold_left (fun a (s : Machine.shard) -> a +. s.cycles) 0.0 shards in
    let wmean f =
      List.fold_left
        (fun a (s : Machine.shard) -> a +. (f s *. float_of_int s.requests))
        0.0 shards
      /. float_of_int (max 1 reqs)
    in
    Obs.Timeseries.add fleet_series "fleet.requests" (float_of_int reqs);
    Obs.Timeseries.add fleet_series "fleet.shards" (float_of_int (List.length shards));
    Obs.Timeseries.set fleet_series "fleet.cycles_per_request"
      (cycles /. float_of_int (max 1 reqs));
    Obs.Timeseries.set fleet_series "fleet.fall_through_rate"
      (wmean (fun s -> s.Machine.fall_through_rate));
    Obs.Timeseries.set fleet_series "fleet.mispredict_rate"
      (wmean (fun s -> s.Machine.mispredict_rate));
    Obs.Clock.advance fleet_clock 1.0;
    Aggregate.push agg ~round:!round shards;
    shards
  in
  let deployed = ref gen0.Buildsys.Driver.binary in
  let generation = ref 0 in
  let promotions = ref 0 in
  let rollbacks = ref 0 in
  let converged_after = ref None in
  let reports = ref [] in
  for cycle = 1 to config.cycles do
    Obs.Recorder.with_span rec_ (Printf.sprintf "fleet:cycle:%d" cycle) @@ fun () ->
    let shards = serve_round "serve" in
    let reqs_serve = List.fold_left (fun a (s : Machine.shard) -> a + s.requests) 0 shards in
    let deployed_hex = hex !deployed in
    let profile, astats = Aggregate.merged agg ~target:deployed_hex in
    let signature = Aggregate.signature profile in
    let sabotaged = config.sabotage_cycle = Some cycle in
    let layout =
      if sabotaged then sabotage_layout (Inspect.Resolve.create !deployed)
      else begin
        let wpa =
          Propeller.Wpa.analyze ~config:config.wpa ~ctx
            ~layout_cache:env.Buildsys.Driver.layout_cache ~profile:(Propeller.Wpa.Lbr profile)
            ~binary:!deployed ()
        in
        (wpa.Propeller.Wpa.plans, wpa.Propeller.Wpa.ordering)
      end
    in
    let candidate = build_generation env ~name ~program (Some layout) in
    let cand_digest = hex candidate.Buildsys.Driver.binary in
    let serve_metric f =
      List.fold_left (fun a (s : Machine.shard) -> a +. (f s *. float_of_int s.requests)) 0.0 shards
      /. float_of_int (max 1 reqs_serve)
    in
    let finish verdict judged total_requests =
      reports :=
        {
          cycle;
          generation = !generation;
          candidate_digest = cand_digest;
          verdict;
          judged;
          aggregate = astats;
          aggregate_signature = signature;
          aggregate_edges = Perfmon.Lbr.distinct_edges profile;
          cycles_per_request =
            List.fold_left (fun a (s : Machine.shard) -> a +. s.cycles) 0.0 shards
            /. float_of_int (max 1 reqs_serve);
          fall_through_rate = serve_metric (fun s -> s.Machine.fall_through_rate);
          mispredict_rate = serve_metric (fun s -> s.Machine.mispredict_rate);
          requests = total_requests;
        }
        :: !reports
    in
    if cand_digest = deployed_hex then begin
      if !converged_after = None then converged_after := Some !promotions;
      Obs.Recorder.flight_note rec_ "fleet.converged"
        (Printf.sprintf "cycle %d gen %d digest %s" cycle !generation cand_digest);
      finish Converged None reqs_serve
    end
    else begin
      Aggregate.register agg candidate.Buildsys.Driver.binary;
      let is_canary m = Machine.id m < canary_n in
      List.iter
        (fun m ->
          if is_canary m then
            Machine.deploy m ~generation:(!generation + 1) candidate.Buildsys.Driver.binary)
        machines;
      Obs.Recorder.flight_note rec_ "fleet.canary"
        (Printf.sprintf "cycle %d candidate %s to %d/%d machines%s" cycle cand_digest canary_n
           config.machines
           (if sabotaged then " (sabotaged)" else ""));
      let canary_shards = serve_round "canary" in
      let reqs_canary =
        List.fold_left (fun a (s : Machine.shard) -> a + s.requests) 0 canary_shards
      in
      let slice p = List.filter (fun (s : Machine.shard) -> p s.Machine.machine) canary_shards in
      let canary = slice (fun id -> id < canary_n) in
      let control = slice (fun id -> id >= canary_n) in
      let outcome =
        match
          Diagnostics.Compare.compare ~threshold_pct:config.threshold_pct
            ~rules:Diagnostics.Compare.fleet_rules ~baseline:(slice_json control)
            ~current:(slice_json canary) ()
        with
        | Ok o -> o
        | Error e -> failwith ("fleet canary judgment: " ^ e)
      in
      if Diagnostics.Compare.ok outcome then begin
        incr promotions;
        incr generation;
        deployed := candidate.Buildsys.Driver.binary;
        List.iter
          (fun m -> Machine.deploy m ~generation:!generation candidate.Buildsys.Driver.binary)
          machines;
        Obs.Recorder.flight_note rec_ "fleet.promote"
          (Printf.sprintf "cycle %d gen %d digest %s" cycle !generation cand_digest);
        finish Promoted (Some outcome) (reqs_serve + reqs_canary)
      end
      else begin
        incr rollbacks;
        List.iter
          (fun m -> if is_canary m then Machine.deploy m ~generation:!generation !deployed)
          machines;
        let regressed =
          Diagnostics.Compare.regressions outcome
          |> List.map (fun (v : Diagnostics.Compare.verdict) ->
                 Printf.sprintf "%s %+.2f%%" v.metric v.delta_pct)
          |> String.concat ", "
        in
        Obs.Recorder.flight_note rec_ "fleet.rollback"
          (Printf.sprintf "cycle %d candidate %s regressed: %s" cycle cand_digest regressed);
        finish Rolled_back (Some outcome) (reqs_serve + reqs_canary)
      end
    end
  done;
  {
    name;
    config;
    machines;
    fleet_series;
    reports = List.rev !reports;
    promotions = !promotions;
    rollbacks = !rollbacks;
    converged = !converged_after <> None;
    converged_after_relinks = !converged_after;
    final_generation = !generation;
    final_digest = hex !deployed;
  }

let report r =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "fleet %s: %d machines, %d cycles, canary %d, seed %d\n" r.name
    r.config.machines r.config.cycles
    (max 1 (min r.config.canary (r.config.machines - 1)))
    r.config.seed;
  List.iter
    (fun c ->
      Printf.bprintf buf
        "cycle %d: gen %d  cand %s  %-11s shards %d (stale %d, dropped pairs %d)  cpr %.1f  \
         ftr %.4f  mr %.4f\n"
        c.cycle c.generation
        (String.sub c.candidate_digest 0 12)
        (verdict_to_string c.verdict) c.aggregate.Aggregate.shards_merged
        c.aggregate.Aggregate.stale_shards c.aggregate.Aggregate.dropped_pairs
        c.cycles_per_request c.fall_through_rate c.mispredict_rate)
    r.reports;
  Printf.bprintf buf
    "promotions %d, rollbacks %d%s; final gen %d (digest %s)\n" r.promotions r.rollbacks
    (match r.converged_after_relinks with
    | Some n -> Printf.sprintf ", converged after %d relink(s)" n
    | None -> "")
    r.final_generation r.final_digest;
  Buffer.add_string buf "\nfleet series:\n";
  Buffer.add_string buf (Obs.Timeseries.render r.fleet_series);
  Buffer.add_string buf "\nper-machine cycles/request:\n";
  List.iter
    (fun m ->
      Printf.bprintf buf "machine-%02d gen %d  %s\n" (Machine.id m) (Machine.generation m)
        (Obs.Timeseries.sparkline (Machine.series m) "machine.cycles_per_request"))
    r.machines;
  Buffer.contents buf

let aggregate_json (a : Aggregate.stats) =
  Obs.Json.Obj
    [
      ("shards_merged", Obs.Json.Int a.shards_merged);
      ("stale_shards", Obs.Json.Int a.stale_shards);
      ("dropped_shards", Obs.Json.Int a.dropped_shards);
      ("translated_pairs", Obs.Json.Int a.translated_pairs);
      ("dropped_pairs", Obs.Json.Int a.dropped_pairs);
      ("batches", Obs.Json.Int a.batches);
    ]

let judged_json = function
  | None -> Obs.Json.Null
  | Some (o : Diagnostics.Compare.outcome) ->
    Obs.Json.Obj
      [
        ("ok", Obs.Json.Bool (Diagnostics.Compare.ok o));
        ( "verdicts",
          Obs.Json.List
            (List.map
               (fun (v : Diagnostics.Compare.verdict) ->
                 Obs.Json.Obj
                   [
                     ("metric", Obs.Json.String v.metric);
                     ("baseline", Obs.Json.Float v.baseline);
                     ("current", Obs.Json.Float v.current);
                     ("delta_pct", Obs.Json.Float v.delta_pct);
                     ("regressed", Obs.Json.Bool v.regressed);
                   ])
               o.verdicts) );
      ]

let to_json r =
  Obs.Json.Obj
    [
      ("schema_version", Obs.Json.Int 1);
      ("tool", Obs.Json.String "propeller-fleet");
      ("name", Obs.Json.String r.name);
      ( "config",
        Obs.Json.Obj
          [
            ("machines", Obs.Json.Int r.config.machines);
            ("cycles", Obs.Json.Int r.config.cycles);
            ("canary", Obs.Json.Int r.config.canary);
            ("requests", Obs.Json.Int r.config.requests);
            ("jitter_pct", Obs.Json.Float r.config.jitter_pct);
            ("seed", Obs.Json.Int r.config.seed);
            ("window", Obs.Json.Int r.config.window);
            ("decay", Obs.Json.Float r.config.decay);
            ("threshold_pct", Obs.Json.Float r.config.threshold_pct);
            ( "sabotage_cycle",
              match r.config.sabotage_cycle with
              | None -> Obs.Json.Null
              | Some c -> Obs.Json.Int c );
          ] );
      ( "cycles",
        Obs.Json.List
          (List.map
             (fun c ->
               Obs.Json.Obj
                 [
                   ("cycle", Obs.Json.Int c.cycle);
                   ("generation", Obs.Json.Int c.generation);
                   ("candidate_digest", Obs.Json.String c.candidate_digest);
                   ("verdict", Obs.Json.String (verdict_to_string c.verdict));
                   ("judged", judged_json c.judged);
                   ("aggregate", aggregate_json c.aggregate);
                   ("aggregate_signature", Obs.Json.String c.aggregate_signature);
                   ("aggregate_edges", Obs.Json.Int c.aggregate_edges);
                   ("cycles_per_request", Obs.Json.Float c.cycles_per_request);
                   ("fall_through_rate", Obs.Json.Float c.fall_through_rate);
                   ("mispredict_rate", Obs.Json.Float c.mispredict_rate);
                   ("requests", Obs.Json.Int c.requests);
                 ])
             r.reports) );
      ("promotions", Obs.Json.Int r.promotions);
      ("rollbacks", Obs.Json.Int r.rollbacks);
      ("converged", Obs.Json.Bool r.converged);
      ( "converged_after_relinks",
        match r.converged_after_relinks with
        | None -> Obs.Json.Null
        | Some n -> Obs.Json.Int n );
      ("final_generation", Obs.Json.Int r.final_generation);
      ("final_digest", Obs.Json.String r.final_digest);
      ("fleet_series", Obs.Timeseries.to_json r.fleet_series);
      ( "machines",
        Obs.Json.List
          (List.map
             (fun m ->
               Obs.Json.Obj
                 [
                   ("id", Obs.Json.Int (Machine.id m));
                   ("generation", Obs.Json.Int (Machine.generation m));
                   ("digest", Obs.Json.String (Machine.digest m));
                   ("series", Obs.Timeseries.to_json (Machine.series m));
                 ])
             r.machines) );
    ]

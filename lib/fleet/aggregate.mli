(** Sharded fleet profile aggregation (paper §2: the profile store that
    merges samples streaming in from many machines, including samples
    collected on {e already-optimized} binaries of older generations).

    Shards are pushed per serve round and kept for a bounded window of
    rounds. Merging targets one layout generation (by image digest).
    Every shard — current generation included — is decoded against the
    layout it was collected on into logical (function, block) transfer
    evidence via {!Inspect.Resolve}, then re-encoded the way a profile
    collected {e on the target layout} would have recorded it: a
    transfer whose destination block is placed address-adjacent after
    its source becomes fall-through range evidence, everything else a
    taken-branch record. The merged aggregate is therefore one
    canonical function of (logical traffic, target layout) — it does
    not depend on which layout any shard was sampled on, which gives
    the continuous relink loop a true fixed point to converge to.
    Address pairs whose block no longer exists are dropped and counted.

    Older rounds decay: a pair's weight is scaled by [decay^age] where
    age is in rounds, so stale layouts fade from the aggregate instead
    of pinning it forever.

    Merging is order-independent: pushing the same shards in any order
    yields a byte-identical canonical profile (the qcheck law in the
    test suite), so jobs-N and jobs-1 fleets relink identical images. *)

type t

(** Per-merge accounting. *)
type stats = {
  shards_merged : int;  (** Shards contributing to the aggregate. *)
  stale_shards : int;  (** ... of which needed layout translation. *)
  dropped_shards : int;
      (** Shards skipped because their image was never registered. *)
  translated_pairs : int;  (** Address pairs re-projected successfully. *)
  dropped_pairs : int;  (** Pairs whose block vanished from the target. *)
  batches : int;  (** Rounds in the window at merge time. *)
}

(** [create ()] builds an empty store. [window] is the number of serve
    rounds retained (default 4); [decay] the per-round count decay
    (default 0.5); [lbr_depth] the ring depth of the collector the
    shards came from (default 32) — used to deflate taken-branch
    record counts by [(depth - 1) / depth] so they sit on the same
    scale as fall-through range evidence, whose ring multiplicity is
    one lower. Weights accumulate as floats and round once at merge
    end, so decayed evidence fades to zero instead of pinning the
    aggregate. *)
val create : ?window:int -> ?decay:float -> ?lbr_depth:int -> unit -> t

(** [register t binary] indexes an image for shard translation. Every
    image a shard can be collected on — deployed generations and
    canary candidates, including rejected ones — must be registered. *)
val register : t -> Linker.Binary.t -> unit

(** [registered t digest] is true when [digest] (hex) is indexed. *)
val registered : t -> string -> bool

(** [push t ~round shards] stores one serve round's shards (internally
    sorted by machine id — push order never matters) and expires
    rounds older than the window. *)
val push : t -> round:int -> Machine.shard list -> unit

(** [merged t ~target] merges the window into one canonical profile in
    the address space of the registered image [target] (hex digest),
    with decay applied per round of age. The returned profile's
    hashtables are rebuilt in sorted pair order, so its layout is a
    pure function of its contents. *)
val merged : t -> target:string -> Perfmon.Lbr.profile * stats

(** [signature p] is a content digest (hex) over the sorted branch,
    range and mispredict pairs and the sample totals of [p] —
    the aggregate identity used by determinism checks. *)
val signature : Perfmon.Lbr.profile -> string

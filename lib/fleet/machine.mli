(** One simulated fleet machine (paper §2, Fig 1: the profiled tier).

    A machine holds a deployed binary image, serves seeded request
    traffic through {!Exec.Interp.run} with an LBR collector and a
    {!Uarch.Core} teed on the event stream, and keeps a per-machine
    {!Obs.Timeseries} of its service health. Every serve round yields a
    profile {e shard} stamped with the digest of the image it was
    collected on — the aggregation tier uses that stamp to translate
    shards from older (or rolled-back) layouts before merging. *)

type t

(** One serve round's contribution to the fleet profile store. *)
type shard = {
  machine : int;
  generation : int;  (** Deployed generation when collected. *)
  digest : string;  (** Image digest (hex) the profile was observed on. *)
  requests : int;  (** Requests completed this round. *)
  cycles : float;  (** Modelled front-end cycles this round. *)
  cycles_per_request : float;
  fall_through_rate : float;
      (** Physically not-taken conditionals over all conditional +
          unconditional transfer sites — rises as layout improves. *)
  mispredict_rate : float;  (** Mispredicted LBR records / records. *)
  profile : Perfmon.Lbr.profile;
}

(** [create ~id ~program ~core_config ~clock ~generation binary] boots a
    machine with [binary] deployed. Its time-series store shares
    [clock] (the fleet round clock: one window per serve round);
    [window_s]/[capacity]/[decay] forward to {!Obs.Timeseries.create}. *)
val create :
  id:int ->
  program:Ir.Program.t ->
  core_config:Uarch.Core.config ->
  clock:Obs.Clock.t ->
  ?window_s:float ->
  ?capacity:int ->
  ?decay:float ->
  generation:int ->
  Linker.Binary.t ->
  t

val id : t -> int

val generation : t -> int

val binary : t -> Linker.Binary.t

(** [digest t] is the deployed image digest, in hex. *)
val digest : t -> string

(** [series t] is the machine's health time-series
    ([machine.requests], [machine.cycles_per_request],
    [machine.fall_through_rate], [machine.mispredict_rate]). *)
val series : t -> Obs.Timeseries.t

(** [deploy t ~generation binary] swaps the running image (canary push,
    promotion, or rollback). *)
val deploy : t -> generation:int -> Linker.Binary.t -> unit

(** [serve ?ctx ?source ?sampler t ~lbr ~requests] serves one round of
    traffic, records the round into the machine's time-series, and
    returns the profile shard. Under [source = Lbr] (default) the shard
    carries raw branch records; under [Sampled] the machine runs the
    software stack sampler (jitter seed salted per machine) and
    synthesizes the shard into LBR shape locally against its own
    deployed binary — the AutoFDO flow — so aggregation re-encodes it
    like any other shard. Sampled shards have an empty mispredict table
    and report [mispredict_rate = 0]. Deterministic: all randomness
    lives in the interpreter's and sampler's stateless hashes. *)
val serve :
  ?ctx:Support.Ctx.t ->
  ?source:Perfmon.Source.t ->
  ?sampler:Perfmon.Sampler.config ->
  t ->
  lbr:Perfmon.Lbr.config ->
  requests:int ->
  shard

(** The execution engine.

    Interprets an {!Image.t} for a fixed number of requests (invocations
    of [main]), streaming fetch/branch events to a sink. Control-flow
    decisions are stateless hashes of (block uid, visit count), so two
    images of the *same program* under *different layouts* execute the
    identical logical trace — only addresses differ. That is precisely
    the property needed to compare layouts fairly.

    Bounded execution: each request stops after [max_steps_per_request]
    block executions (loops are probabilistic and unbounded otherwise),
    and calls deeper than [call_depth_limit] are elided (deterministic,
    layout-independent). *)

type config = {
  requests : int;
  max_steps_per_request : int;
  call_depth_limit : int;
}

val default_config : config

type stats = {
  blocks_executed : int;
  bytes_fetched : int;
  cond_branches : int;  (** Conditional branch instructions retired. *)
  cond_taken : int;  (** ... of which physically taken. *)
  uncond_jumps : int;  (** Unconditional jumps retired (post-relax). *)
  indirect_jumps : int;
  calls : int;
  returns : int;
  dloads : int;  (** Delinquent loads retired. *)
  dmisses : int;  (** ... that missed the data caches uncovered. *)
  dcovered : int;  (** ... whose miss a software prefetch hid. *)
  requests_completed : int;
}

(** [taken_branches s] counts all physically taken transfers — the
    [br_inst_retired.near_taken] proxy (Table 4, B2). *)
val taken_branches : stats -> int

(** [run ?ctx image config sink] executes and returns aggregate
    counters, under an ["exec:run"] span on the context's recorder
    (default {!Obs.Recorder.global}). Events are delivered to [sink] in
    emission order via the flat tape ({!run_tape} is the direct path);
    [Event.null] short-circuits delivery entirely. *)
val run : ?ctx:Support.Ctx.t -> Image.t -> config -> Event.sink -> stats

(** [run_tape ?ctx image config ~drain] is the flat fast path: the
    engine writes events onto a preallocated {!Event.tape} and calls
    [drain] each time it fills and once at end of run. [drain] must
    consume the tape synchronously (the buffer is reused after it
    returns). Hot consumers pair this with their [consume] drains
    ([Uarch.Core.consume], [Perfmon.Lbr.consume]) to process events
    without closure indirection or float boxing; {!Event.replay} adapts
    a tape back onto any closure sink. *)
val run_tape : ?ctx:Support.Ctx.t -> Image.t -> config -> drain:(Event.tape -> unit) -> stats

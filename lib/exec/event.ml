type branch_kind = Cond | Uncond | Indirect | Call | Ret

type sink = {
  on_fetch : int -> int -> int -> unit;
  on_branch : src:int -> dst:int -> kind:branch_kind -> taken:bool -> unit;
  on_dmiss : src:int -> unit;
  on_request : int -> unit;
}

let null =
  {
    on_fetch = (fun _ _ _ -> ());
    on_branch = (fun ~src:_ ~dst:_ ~kind:_ ~taken:_ -> ());
    on_dmiss = (fun ~src:_ -> ());
    on_request = (fun _ -> ());
  }

(* Flat event tape: the engine's zero-allocation transport. Each event
   is one tag byte plus three int operands written into preallocated
   arrays; hot consumers drain the tape in monomorphic loops, and
   [replay] adapts a full tape back onto a closure sink in emission
   order, so both paths observe the identical event stream. *)

let tape_capacity = 8192

type tape = {
  tags : Bytes.t;
  a : int array;
  b : int array;
  c : int array;
  mutable len : int;
}

let tag_fetch = '\000'

let tag_branch = '\001'

let tag_dmiss = '\002'

let tag_request = '\003'

let create_tape () =
  {
    tags = Bytes.create tape_capacity;
    a = Array.make tape_capacity 0;
    b = Array.make tape_capacity 0;
    c = Array.make tape_capacity 0;
    len = 0;
  }

let kind_to_int = function Cond -> 0 | Uncond -> 1 | Indirect -> 2 | Call -> 3 | Ret -> 4

let kind_of_int = function
  | 0 -> Cond
  | 1 -> Uncond
  | 2 -> Indirect
  | 3 -> Call
  | 4 -> Ret
  | n -> invalid_arg (Printf.sprintf "Event.kind_of_int: %d" n)

(* Branch operand [c] encoding: kind in the high bits, taken in bit 0. *)
let encode_branch_meta ~kind ~taken = (kind_to_int kind lsl 1) lor (if taken then 1 else 0)

let replay tape sink =
  let tags = tape.tags and a = tape.a and b = tape.b and c = tape.c in
  for i = 0 to tape.len - 1 do
    match Bytes.unsafe_get tags i with
    | '\000' ->
      sink.on_fetch (Array.unsafe_get a i) (Array.unsafe_get b i) (Array.unsafe_get c i)
    | '\001' ->
      let meta = Array.unsafe_get c i in
      sink.on_branch ~src:(Array.unsafe_get a i) ~dst:(Array.unsafe_get b i)
        ~kind:(kind_of_int (meta lsr 1))
        ~taken:(meta land 1 = 1)
    | '\002' -> sink.on_dmiss ~src:(Array.unsafe_get a i)
    | _ -> sink.on_request (Array.unsafe_get a i)
  done

let tee a b =
  {
    on_fetch =
      (fun addr len insts ->
        a.on_fetch addr len insts;
        b.on_fetch addr len insts);
    on_branch =
      (fun ~src ~dst ~kind ~taken ->
        a.on_branch ~src ~dst ~kind ~taken;
        b.on_branch ~src ~dst ~kind ~taken);
    on_dmiss =
      (fun ~src ->
        a.on_dmiss ~src;
        b.on_dmiss ~src);
    on_request =
      (fun i ->
        a.on_request i;
        b.on_request i);
  }

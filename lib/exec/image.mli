(** Executable image: the IR program fused with the linked binary's
    final addresses, precompiled for fast interpretation.

    For each basic block the image stores the fetch segments (inline
    data excluded — it occupies space but is never executed), the call
    sites with their end offsets, and the terminator. Control-flow
    decisions are *not* stored: they are made by the interpreter from
    stateless hashes so that the logical trace is identical across
    layouts of the same program. *)

type op =
  | Run of int * int * int
      (** [(offset, len, insts)]: sequential code, instruction count
          included for retirement accounting. *)
  | Do_call of { site_end : int; callee_idx : int array; callee_cum : float array }
      (** Call retiring at block offset [site_end]. Callee names are
          pre-resolved to dense function indices at build time (the
          interpreter never looks up a string); a single-entry
          [callee_idx] is a direct call. [callee_cum] holds the
          left-to-right partial sums of the virtual-call weights, so the
          interpreter's weighted pick is pure comparisons. *)
  | Do_dload of { site_end : int; miss_prob : float; covered : bool }
      (** Delinquent load; [covered] when a software prefetch precedes
          it in the same block (paper §3.5). *)

type xblock = {
  addr : int;
  size : int;
  ops : op array;
  term : Ir.Term.t;
  term_cum : float array;
      (** Partial sums of [Switch] case probabilities ([[||]] for other
          terminators), precomputed for the interpreter's weighted pick. *)
  uid : int;  (** Globally unique id; feeds the stateless coin. *)
  mutable succ0 : xblock;
      (** [Jump] target / [Branch] taken successor, patched once all
          blocks of the image exist (a shared dummy before that). The
          interpreter follows these record fields instead of re-indexing
          the per-function block array on every transition. *)
  mutable succ1 : xblock;  (** [Branch] fallthrough successor. *)
  mutable succ_tab : xblock array;
      (** [Switch] successors in table order; [[||]] otherwise. *)
}

type t

(** [build program binary] fuses the two views. Raises
    [Invalid_argument] when a program block is missing from the binary
    (they must describe the same build). *)
val build : Ir.Program.t -> Linker.Binary.t -> t

(** [func_index t name] is the dense index of a function. *)
val func_index : t -> string -> int

(** [block t ~func_idx ~block] fetches a precompiled block. *)
val block : t -> func_idx:int -> block:int -> xblock

(** [entry_func t] is the index of the program's main. *)
val entry_func : t -> int

val num_funcs : t -> int

val num_blocks : t -> int

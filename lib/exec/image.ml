type op =
  | Run of int * int * int
  | Do_call of { site_end : int; callee_idx : int array; callee_cum : float array }
  | Do_dload of { site_end : int; miss_prob : float; covered : bool }

type xblock = {
  addr : int;
  size : int;
  ops : op array;
  term : Ir.Term.t;
  term_cum : float array;
      (** For [Switch] terminators: left-to-right partial sums of the case
          probabilities, precomputed so the interpreter's weighted pick is
          pure comparisons (a runtime float accumulator costs a box per
          add on the classic compiler). [[||]] for every other term. *)
  uid : int;
  mutable succ0 : xblock;
      (** Jump target / Branch taken successor (see the .mli); patched
          by [build] once every block exists. *)
  mutable succ1 : xblock;  (** Branch fallthrough successor. *)
  mutable succ_tab : xblock array;  (** Switch successors, table order. *)
}

(* Placeholder successor for blocks whose terminator has none (Return)
   and for records mid-construction; never followed by the interpreter. *)
let rec dummy_xblock =
  {
    addr = 0;
    size = 0;
    ops = [||];
    term = Ir.Term.Return;
    term_cum = [||];
    uid = 0;
    succ0 = dummy_xblock;
    succ1 = dummy_xblock;
    succ_tab = [||];
  }

(* Left-to-right running sums, starting from 0.0 — the identical float
   operation sequence the interpreter's old per-execution accumulation
   performed, so every stateless draw still lands on the same side of
   every partial sum. *)
let cumulative w =
  let n = Array.length w in
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. w.(i);
    cum.(i) <- !acc
  done;
  cum

type t = {
  funcs : (string, int) Hashtbl.t;
  blocks : xblock array array;  (** [blocks.(func_idx).(block_id)] *)
  entry : int;
  nblocks : int;
}

(* Fuse the lowered instructions (with final sizes) and the IR body:
   non-control bytes accumulate into Run segments; calls close the
   current segment. The k-th call instruction corresponds to the k-th
   call site of the IR body, which supplies virtual-call targets.
   Callee names are resolved to dense function indices here, at build
   time, so the interpreter never touches a string. *)
let compile_ops ~resolve (ir_block : Ir.Block.t) (insts : Isa.t list) =
  let split_callees (callees : (string * float) array) =
    let n = Array.length callees in
    let idx = Array.make n 0 and w = Array.make n 0.0 in
    for i = 0 to n - 1 do
      let name, wi = callees.(i) in
      idx.(i) <- resolve name;
      w.(i) <- wi
    done;
    (idx, cumulative w)
  in
  let ir_calls =
    List.filter_map
      (fun (i : Ir.Inst.t) ->
        match i with
        | Ir.Inst.DirectCall f -> Some (split_callees [| (f, 1.0) |])
        | Ir.Inst.VirtualCall { callees } -> Some (split_callees callees)
        | Ir.Inst.Compute _ | Ir.Inst.MemLoad _ | Ir.Inst.DelinquentLoad _
        | Ir.Inst.MemStore _ | Ir.Inst.JumpTableData _ -> None)
      ir_block.body
  in
  (* The k-th lowered [Load] corresponds to the k-th IR load; delinquent
     ones carry their miss probability. *)
  let ir_loads =
    List.filter_map
      (fun (i : Ir.Inst.t) ->
        match i with
        | Ir.Inst.MemLoad _ -> Some None
        | Ir.Inst.DelinquentLoad { miss_prob; _ } -> Some (Some miss_prob)
        | Ir.Inst.Compute _ | Ir.Inst.MemStore _ | Ir.Inst.DirectCall _ | Ir.Inst.VirtualCall _
        | Ir.Inst.JumpTableData _ -> None)
      ir_block.body
  in
  let rec loop off run_start nrun pending_calls pending_loads ~saw_prefetch acc = function
    | [] ->
      let acc = if off > run_start then Run (run_start, off - run_start, nrun) :: acc else acc in
      List.rev acc
    | inst :: rest -> (
      let size = Isa.size inst in
      match inst with
      | Isa.Load _ -> (
        match pending_loads with
        | Some miss_prob :: pending ->
          (* Delinquent load: close the run so the miss event lands at
             the right instruction boundary. *)
          let acc =
            if off + size > run_start then Run (run_start, off + size - run_start, nrun + 1) :: acc
            else acc
          in
          loop (off + size) (off + size) 0 pending_calls pending
            ~saw_prefetch
            (Do_dload { site_end = off + size; miss_prob; covered = saw_prefetch } :: acc)
            rest
        | None :: pending ->
          loop (off + size) run_start (nrun + 1) pending_calls pending ~saw_prefetch acc rest
        | [] -> loop (off + size) run_start (nrun + 1) pending_calls [] ~saw_prefetch acc rest)
      | Isa.Prefetch ->
        loop (off + size) run_start (nrun + 1) pending_calls pending_loads ~saw_prefetch:true acc
          rest
      | Isa.Call _ | Isa.IndirectCall -> (
        let acc =
          if off > run_start then Run (run_start, off - run_start, nrun + 1) :: acc else acc
        in
        match pending_calls with
        | (callee_idx, callee_cum) :: pending ->
          loop (off + size) (off + size) 0 pending pending_loads ~saw_prefetch
            (Do_call { site_end = off + size; callee_idx; callee_cum } :: acc)
            rest
        | [] ->
          (* A lowered call with no IR counterpart cannot happen by
             construction. *)
          assert false)
      | Isa.InlineData _ ->
        (* Data in the instruction stream: occupies space, not fetched. *)
        let acc =
          if off > run_start then Run (run_start, off - run_start, nrun) :: acc else acc
        in
        loop (off + size) (off + size) 0 pending_calls pending_loads ~saw_prefetch acc rest
      | Isa.Jcc _ | Isa.Jmp _ | Isa.IndirectJmp | Isa.Ret ->
        (* Terminator instructions count as fetched bytes; the transfer
           itself is driven by the IR terminator. *)
        loop (off + size) run_start (nrun + 1) pending_calls pending_loads ~saw_prefetch acc rest
      | Isa.Alu _ | Isa.Store _ | Isa.Nop _ ->
        loop (off + size) run_start (nrun + 1) pending_calls pending_loads ~saw_prefetch acc rest)
  in
  Array.of_list (loop 0 0 0 ir_calls ir_loads ~saw_prefetch:false [] insts)

let build program binary =
  let nf = Ir.Program.num_funcs program in
  let funcs = Hashtbl.create nf in
  (* First pass: assign every function its dense index, so call sites
     can resolve forward references during block compilation. *)
  let idx = ref 0 in
  Ir.Program.iter_funcs program (fun f ->
      Hashtbl.replace funcs f.name !idx;
      incr idx);
  let resolve name =
    match Hashtbl.find_opt funcs name with
    | Some i -> i
    | None -> invalid_arg ("Image.build: call to unknown function " ^ name)
  in
  let blocks = Array.make nf [||] in
  let uid = ref 0 in
  let fi = ref 0 in
  Ir.Program.iter_funcs program (fun f ->
      let me = !fi in
      incr fi;
      blocks.(me) <-
        Array.init (Ir.Func.num_blocks f) (fun b ->
            let info =
              match Linker.Binary.block_info binary ~func:f.name ~block:b with
              | Some i -> i
              | None ->
                invalid_arg
                  (Printf.sprintf "Image.build: block %s#%d not in binary" f.name b)
            in
            let ir_block = Ir.Func.block f b in
            incr uid;
            {
              addr = info.addr;
              size = info.size;
              ops = compile_ops ~resolve ir_block info.insts;
              term = ir_block.term;
              term_cum =
                (match ir_block.term with
                | Ir.Term.Switch { probs; _ } -> cumulative probs
                | Ir.Term.Jump _ | Ir.Term.Branch _ | Ir.Term.Return -> [||]);
              uid = !uid;
              succ0 = dummy_xblock;
              succ1 = dummy_xblock;
              succ_tab = [||];
            }));
  (* Second pass: resolve terminator targets (intra-function block ids)
     to direct xblock references, so the interpreter never re-indexes
     the block table on a transition. *)
  Array.iter
    (fun fb ->
      Array.iter
        (fun xb ->
          match xb.term with
          | Ir.Term.Jump next -> xb.succ0 <- fb.(next)
          | Ir.Term.Branch { taken; fallthrough; _ } ->
            xb.succ0 <- fb.(taken);
            xb.succ1 <- fb.(fallthrough)
          | Ir.Term.Switch { table; _ } -> xb.succ_tab <- Array.map (fun b -> fb.(b)) table
          | Ir.Term.Return -> ())
        fb)
    blocks;
  {
    funcs;
    blocks;
    entry = Hashtbl.find funcs (Ir.Program.main program);
    nblocks = Array.fold_left (fun acc a -> acc + Array.length a) 0 blocks;
  }

let func_index t name =
  match Hashtbl.find_opt t.funcs name with
  | Some i -> i
  | None -> invalid_arg ("Image.func_index: unknown function " ^ name)

let[@inline] block t ~func_idx ~block = t.blocks.(func_idx).(block)

let entry_func t = t.entry

let num_funcs t = Array.length t.blocks

let num_blocks t = t.nblocks

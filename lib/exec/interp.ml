type config = { requests : int; max_steps_per_request : int; call_depth_limit : int }

let default_config = { requests = 100; max_steps_per_request = 5_000; call_depth_limit = 48 }

type stats = {
  blocks_executed : int;
  bytes_fetched : int;
  cond_branches : int;
  cond_taken : int;
  uncond_jumps : int;
  indirect_jumps : int;
  calls : int;
  returns : int;
  dloads : int;  (** Delinquent loads retired. *)
  dmisses : int;  (** ... that missed (no prefetch cover). *)
  dcovered : int;  (** ... whose miss a prefetch hid. *)
  requests_completed : int;
}

let taken_branches s = s.cond_taken + s.uncond_jumps + s.indirect_jumps + s.calls + s.returns

exception Out_of_steps

(* Branch-event [c] operands, precomputed (see Event.encode_branch_meta). *)
let meta_cond_taken = Event.encode_branch_meta ~kind:Event.Cond ~taken:true

let meta_cond_not_taken = Event.encode_branch_meta ~kind:Event.Cond ~taken:false

let meta_uncond = Event.encode_branch_meta ~kind:Event.Uncond ~taken:true

let meta_indirect = Event.encode_branch_meta ~kind:Event.Indirect ~taken:true

let meta_call = Event.encode_branch_meta ~kind:Event.Call ~taken:true

let meta_ret = Event.encode_branch_meta ~kind:Event.Ret ~taken:true

type state = {
  image : Image.t;
  tape : Event.tape;
  record : bool;
      (** [false] only when the caller's sink is {!Event.null}: events
          would be dropped anyway, so the writes are skipped. Purely an
          engine-side shortcut — stats never depend on the tape. *)
  drain : Event.tape -> unit;
  depth_limit : int;
  visits : int array;  (** per block uid *)
  mutable call_seq : int;
  mutable steps : int;
  mutable budget : int;
  mutable s_blocks : int;
  mutable s_bytes : int;
  mutable s_cond : int;
  mutable s_cond_taken : int;
  mutable s_uncond : int;
  mutable s_indirect : int;
  mutable s_calls : int;
  mutable s_returns : int;
  mutable s_dloads : int;
  mutable s_dmisses : int;
  mutable s_dcovered : int;
  mutable dload_seq : int;
}

let flush st =
  if st.tape.len > 0 then begin
    st.drain st.tape;
    st.tape.len <- 0
  end

let[@inline] emit st tag a b c =
  if st.record then begin
    let t = st.tape in
    if t.len = Event.tape_capacity then flush st;
    let i = t.len in
    Bytes.unsafe_set t.tags i tag;
    Array.unsafe_set t.a i a;
    Array.unsafe_set t.b i b;
    Array.unsafe_set t.c i c;
    t.len <- i + 1
  end

let[@inline] emit_fetch st addr len insts = emit st Event.tag_fetch addr len insts

let[@inline] emit_branch st src dst meta = emit st Event.tag_branch src dst meta

let[@inline] emit_dmiss st src = emit st Event.tag_dmiss src 0 0

let[@inline] emit_request st i = emit st Event.tag_request i 0 0

(* Execute function [fi] from its entry block; returns the address just
   past the retiring [ret] instruction (the Ret branch source).
   Top-level recursion with explicit arguments: the hot loop allocates
   no closures, and transitions follow the image's patched [succ]
   references — no block-table indexing on the hot path at all. *)
let rec exec_func st fi depth =
  exec_block st depth (Image.block st.image ~func_idx:fi ~block:0)

and exec_block st depth xb =
  st.s_blocks <- st.s_blocks + 1;
  st.steps <- st.steps + 1;
  if st.steps > st.budget then raise Out_of_steps;
  let ops = xb.Image.ops in
  for k = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops k with
    | Image.Run (off, len, insts) ->
      emit_fetch st (xb.Image.addr + off) len insts;
      st.s_bytes <- st.s_bytes + len
    | Image.Do_call { site_end; callee_idx; callee_cum } ->
      (* Calls beyond the depth limit are elided; the decision only
         depends on logical state, so it is layout-independent. *)
      if depth < st.depth_limit then begin
        st.call_seq <- st.call_seq + 1;
        let ci =
          if Array.length callee_idx = 1 then Array.unsafe_get callee_idx 0
          else Support.Rng.hash_pick xb.Image.uid st.call_seq callee_idx callee_cum
        in
        let centry = Image.block st.image ~func_idx:ci ~block:0 in
        let src = xb.Image.addr + site_end in
        st.s_calls <- st.s_calls + 1;
        emit_branch st src centry.Image.addr meta_call;
        let ret_src = exec_block st (depth + 1) centry in
        st.s_returns <- st.s_returns + 1;
        emit_branch st ret_src src meta_ret
      end
    | Image.Do_dload { site_end; miss_prob; covered } ->
      st.s_dloads <- st.s_dloads + 1;
      st.dload_seq <- st.dload_seq + 1;
      (* The miss roll depends only on logical state, so whether the
         access *would* miss is layout-invariant; prefetch coverage
         decides whether the pipeline actually stalls. *)
      if Support.Rng.hash_choice xb.Image.uid (0x0D10AD + st.dload_seq) miss_prob then begin
        if covered then st.s_dcovered <- st.s_dcovered + 1
        else begin
          st.s_dmisses <- st.s_dmisses + 1;
          emit_dmiss st (xb.Image.addr + site_end)
        end
      end
  done;
  (* [uid < Array.length st.visits] by construction: visits is sized
     from [Image.num_blocks] of the very image being executed. *)
  let uid = xb.Image.uid in
  let visit = Array.unsafe_get st.visits uid in
  Array.unsafe_set st.visits uid (visit + 1);
  match xb.Image.term with
  | Ir.Term.Jump _ -> goto st depth xb xb.Image.succ0 1
  | Ir.Term.Branch { prob; _ } ->
    let take = Support.Rng.hash_choice uid visit prob in
    goto st depth xb (if take then xb.Image.succ0 else xb.Image.succ1) 0
  | Ir.Term.Switch _ ->
    let s = xb.Image.succ_tab in
    let i = Support.Rng.hash_pick_pos uid visit xb.Image.term_cum (Array.length s) in
    goto st depth xb (Array.unsafe_get s i) 2
  | Ir.Term.Return -> xb.Image.addr + xb.Image.size

(* [kindc]: 0 = Cond, 1 = Uncond, 2 = Indirect (dense codes shared with
   Event.kind_to_int). *)
and goto st depth xb nxt kindc =
  let src = xb.Image.addr + xb.Image.size in
  let physically_taken = nxt.Image.addr <> src in
  (if kindc = 0 then begin
     st.s_cond <- st.s_cond + 1;
     if physically_taken then begin
       st.s_cond_taken <- st.s_cond_taken + 1;
       emit_branch st src nxt.Image.addr meta_cond_taken
     end
     else emit_branch st src nxt.Image.addr meta_cond_not_taken
   end
   else if kindc = 1 then begin
     if physically_taken then begin
       st.s_uncond <- st.s_uncond + 1;
       emit_branch st src nxt.Image.addr meta_uncond
     end
   end
   else begin
     st.s_indirect <- st.s_indirect + 1;
     emit_branch st src nxt.Image.addr meta_indirect
   end);
  exec_block st depth nxt

(* The drain-based entry point: the engine writes the flat event tape
   and hands full tapes to [drain]. [run] below adapts a closure sink
   onto it, so both observe the identical stream. *)
let run_tape_internal ?ctx image config ~record ~drain =
  let r =
    match ctx with
    | Some c -> c.Support.Ctx.recorder
    | None -> Obs.Recorder.global
  in
  Obs.Recorder.with_span r "exec:run" @@ fun () ->
  let st =
    {
      image;
      tape = Event.create_tape ();
      record;
      drain;
      depth_limit = config.call_depth_limit;
      visits = Array.make (Image.num_blocks image + 2) 0;
      call_seq = 0;
      steps = 0;
      budget = 0;
      s_blocks = 0;
      s_bytes = 0;
      s_cond = 0;
      s_cond_taken = 0;
      s_uncond = 0;
      s_indirect = 0;
      s_calls = 0;
      s_returns = 0;
      s_dloads = 0;
      s_dmisses = 0;
      s_dcovered = 0;
      dload_seq = 0;
    }
  in
  let completed = ref 0 in
  for r = 0 to config.requests - 1 do
    st.budget <- st.steps + config.max_steps_per_request;
    (try
       let ret_src = exec_func st (Image.entry_func image) 0 in
       (* The root return leaves the program (to the libc stub below the
          text segment); real LBRs record it, so the profiler must see
          it too — otherwise fall-through ranges ending at the entry
          function's exit are unobservable. *)
       emit_branch st ret_src 0x1000 meta_ret
     with Out_of_steps -> ());
    incr completed;
    emit_request st r
  done;
  flush st;
  {
    blocks_executed = st.s_blocks;
    bytes_fetched = st.s_bytes;
    cond_branches = st.s_cond;
    cond_taken = st.s_cond_taken;
    uncond_jumps = st.s_uncond;
    indirect_jumps = st.s_indirect;
    calls = st.s_calls;
    returns = st.s_returns;
    dloads = st.s_dloads;
    dmisses = st.s_dmisses;
    dcovered = st.s_dcovered;
    requests_completed = !completed;
  }

let run_tape ?ctx image config ~drain =
  run_tape_internal ?ctx image config ~record:true ~drain

let drain_ignore (_ : Event.tape) = ()

let run ?ctx image config sink =
  if sink == Event.null then
    run_tape_internal ?ctx image config ~record:false ~drain:drain_ignore
  else run_tape ?ctx image config ~drain:(fun tape -> Event.replay tape sink)

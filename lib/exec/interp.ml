type config = { requests : int; max_steps_per_request : int; call_depth_limit : int }

let default_config = { requests = 100; max_steps_per_request = 5_000; call_depth_limit = 48 }

type stats = {
  blocks_executed : int;
  bytes_fetched : int;
  cond_branches : int;
  cond_taken : int;
  uncond_jumps : int;
  indirect_jumps : int;
  calls : int;
  returns : int;
  dloads : int;  (** Delinquent loads retired. *)
  dmisses : int;  (** ... that missed (no prefetch cover). *)
  dcovered : int;  (** ... whose miss a prefetch hid. *)
  requests_completed : int;
}

let taken_branches s = s.cond_taken + s.uncond_jumps + s.indirect_jumps + s.calls + s.returns

exception Out_of_steps

type state = {
  image : Image.t;
  sink : Event.sink;
  depth_limit : int;
  visits : int array;  (** per block uid *)
  mutable call_seq : int;
  mutable steps : int;
  mutable budget : int;
  mutable s_blocks : int;
  mutable s_bytes : int;
  mutable s_cond : int;
  mutable s_cond_taken : int;
  mutable s_uncond : int;
  mutable s_indirect : int;
  mutable s_calls : int;
  mutable s_returns : int;
  mutable s_dloads : int;
  mutable s_dmisses : int;
  mutable s_dcovered : int;
  mutable dload_seq : int;
}

let pick_weighted u seq callees =
  let r = Support.Rng.hash_float u seq in
  let n = Array.length callees in
  let rec go i acc =
    if i >= n - 1 then fst callees.(n - 1)
    else begin
      let name, w = callees.(i) in
      let acc = acc +. w in
      if r < acc then name else go (i + 1) acc
    end
  in
  go 0 0.0

(* Execute function [fi]; returns the address just past the retiring
   [ret] instruction (the Ret branch source). *)
let rec exec_func st fi depth =
  let rec exec_block b =
    let xb = Image.block st.image ~func_idx:fi ~block:b in
    st.s_blocks <- st.s_blocks + 1;
    st.steps <- st.steps + 1;
    if st.steps > st.budget then raise Out_of_steps;
    List.iter
      (fun (op : Image.op) ->
        match op with
        | Image.Run (off, len, insts) ->
          st.sink.on_fetch (xb.addr + off) len insts;
          st.s_bytes <- st.s_bytes + len
        | Image.Do_call { site_end; callees } ->
          (* Calls beyond the depth limit are elided; the decision only
             depends on logical state, so it is layout-independent. *)
          if depth < st.depth_limit then begin
            st.call_seq <- st.call_seq + 1;
            let callee = pick_weighted xb.uid st.call_seq callees in
            let ci = Image.func_index st.image callee in
            let centry = Image.block st.image ~func_idx:ci ~block:0 in
            let src = xb.addr + site_end in
            st.s_calls <- st.s_calls + 1;
            st.sink.on_branch ~src ~dst:centry.addr ~kind:Event.Call ~taken:true;
            let ret_src = exec_func st ci (depth + 1) in
            st.s_returns <- st.s_returns + 1;
            st.sink.on_branch ~src:ret_src ~dst:src ~kind:Event.Ret ~taken:true
          end
        | Image.Do_dload { site_end; miss_prob; covered } ->
          st.s_dloads <- st.s_dloads + 1;
          st.dload_seq <- st.dload_seq + 1;
          (* The miss roll depends only on logical state, so whether the
             access *would* miss is layout-invariant; prefetch coverage
             decides whether the pipeline actually stalls. *)
          if Support.Rng.hash_choice xb.uid (0x0D10AD + st.dload_seq) miss_prob then begin
            if covered then st.s_dcovered <- st.s_dcovered + 1
            else begin
              st.s_dmisses <- st.s_dmisses + 1;
              st.sink.on_dmiss ~src:(xb.addr + site_end)
            end
          end)
      xb.ops;
    let uid = xb.uid in
    let visit = st.visits.(uid) in
    st.visits.(uid) <- visit + 1;
    let goto next kind =
      let nxt = Image.block st.image ~func_idx:fi ~block:next in
      let src = xb.addr + xb.size in
      let physically_taken = nxt.addr <> src in
      (match kind with
      | Event.Cond ->
        st.s_cond <- st.s_cond + 1;
        if physically_taken then st.s_cond_taken <- st.s_cond_taken + 1;
        st.sink.on_branch ~src ~dst:nxt.addr ~kind ~taken:physically_taken
      | Event.Uncond ->
        if physically_taken then begin
          st.s_uncond <- st.s_uncond + 1;
          st.sink.on_branch ~src ~dst:nxt.addr ~kind ~taken:true
        end
      | Event.Indirect ->
        st.s_indirect <- st.s_indirect + 1;
        st.sink.on_branch ~src ~dst:nxt.addr ~kind ~taken:true
      | Event.Call | Event.Ret -> assert false);
      exec_block next
    in
    match xb.term with
    | Ir.Term.Jump next -> goto next Event.Uncond
    | Ir.Term.Branch { taken; fallthrough; prob; _ } ->
      let take = Support.Rng.hash_choice uid visit prob in
      goto (if take then taken else fallthrough) Event.Cond
    | Ir.Term.Switch { table; probs; _ } ->
      let r = Support.Rng.hash_float uid visit in
      let n = Array.length table in
      let rec pick i acc =
        if i >= n - 1 then table.(n - 1)
        else begin
          let acc = acc +. probs.(i) in
          if r < acc then table.(i) else pick (i + 1) acc
        end
      in
      goto (pick 0 0.0) Event.Indirect
    | Ir.Term.Return -> xb.addr + xb.size
  in
  exec_block 0

let run ?ctx image config sink =
  let r =
    match ctx with
    | Some c -> c.Support.Ctx.recorder
    | None -> Obs.Recorder.global
  in
  Obs.Recorder.with_span r "exec:run" @@ fun () ->
  let st =
    {
      image;
      sink;
      depth_limit = config.call_depth_limit;
      visits = Array.make (Image.num_blocks image + 2) 0;
      call_seq = 0;
      steps = 0;
      budget = 0;
      s_blocks = 0;
      s_bytes = 0;
      s_cond = 0;
      s_cond_taken = 0;
      s_uncond = 0;
      s_indirect = 0;
      s_calls = 0;
      s_returns = 0;
      s_dloads = 0;
      s_dmisses = 0;
      s_dcovered = 0;
      dload_seq = 0;
    }
  in
  let completed = ref 0 in
  for r = 0 to config.requests - 1 do
    st.budget <- st.steps + config.max_steps_per_request;
    (try
       let ret_src = exec_func st (Image.entry_func image) 0 in
       (* The root return leaves the program (to the libc stub below the
          text segment); real LBRs record it, so the profiler must see
          it too — otherwise fall-through ranges ending at the entry
          function's exit are unobservable. *)
       sink.on_branch ~src:ret_src ~dst:0x1000 ~kind:Event.Ret ~taken:true
     with Out_of_steps -> ());
    incr completed;
    sink.on_request r
  done;
  {
    blocks_executed = st.s_blocks;
    bytes_fetched = st.s_bytes;
    cond_branches = st.s_cond;
    cond_taken = st.s_cond_taken;
    uncond_jumps = st.s_uncond;
    indirect_jumps = st.s_indirect;
    calls = st.s_calls;
    returns = st.s_returns;
    dloads = st.s_dloads;
    dmisses = st.s_dmisses;
    dcovered = st.s_dcovered;
    requests_completed = !completed;
  }

(** Events emitted by the execution engine.

    The engine streams two kinds of events — sequential instruction
    fetches and control transfers — so downstream consumers (LBR
    sampler, micro-architecture simulator, heat-map builder) never need
    the whole trace in memory. *)

type branch_kind =
  | Cond  (** Conditional branch (emitted for taken and not-taken). *)
  | Uncond  (** Unconditional direct jump. *)
  | Indirect  (** Jump-table dispatch. *)
  | Call  (** Direct or indirect call. *)
  | Ret

type sink = {
  on_fetch : int -> int -> int -> unit;
      (** [on_fetch addr len insts]: [len] code bytes holding [insts]
          instructions executed sequentially starting at [addr]. *)
  on_branch : src:int -> dst:int -> kind:branch_kind -> taken:bool -> unit;
      (** A control transfer instruction retiring at [src] (its end
          address), heading to [dst]. [taken = false] only for
          fall-through conditionals ([dst] is then the next address). *)
  on_dmiss : src:int -> unit;
      (** A delinquent load retiring at [src] missed the data caches
          (not covered by a software prefetch). *)
  on_request : int -> unit;  (** Request [i] completed. *)
}

(** A sink that ignores everything. *)
val null : sink

(** [tee a b] duplicates events to both sinks. *)
val tee : sink -> sink -> sink

(** {1 Flat event tape}

    The zero-allocation transport between the engine and its hottest
    consumers. Events are encoded as one tag byte plus three int
    operands in preallocated parallel arrays; the engine flushes the
    tape to a drain function when it fills and at end of run. Consumers
    either walk the arrays directly in a monomorphic loop
    ([Uarch.Core.consume], [Perfmon.Lbr.consume]) or adapt the tape
    back onto a closure {!sink} with {!replay} — both observe the
    identical event stream in emission order. *)

type tape = {
  tags : Bytes.t;  (** Per-event tag: {!tag_fetch} … {!tag_request}. *)
  a : int array;  (** fetch: addr; branch: src; dmiss: src; request: index. *)
  b : int array;  (** fetch: len; branch: dst. *)
  c : int array;  (** fetch: insts; branch: [(kind lsl 1) lor taken]. *)
  mutable len : int;  (** Events currently on the tape. *)
}

val tape_capacity : int
(** Fixed capacity of every tape (events between flushes). *)

val create_tape : unit -> tape

val tag_fetch : char

val tag_branch : char

val tag_dmiss : char

val tag_request : char

val kind_to_int : branch_kind -> int
(** Dense 0-4 code of a branch kind (stable across runs). *)

val kind_of_int : int -> branch_kind
(** Inverse of {!kind_to_int}; raises [Invalid_argument] otherwise. *)

val encode_branch_meta : kind:branch_kind -> taken:bool -> int
(** The [c] operand of a branch event. *)

val replay : tape -> sink -> unit
(** [replay tape sink] redelivers every taped event to [sink] in
    emission order. *)

(** Control-flow path reconstruction from LBR samples, as folded stacks.

    The aggregated LBR profile is a weighted dynamic CFG, not a path
    list; this view recovers representative hot paths by flow
    decomposition: repeatedly peel the heaviest residual walk of each
    function's sampled edges (entry-first, ties to the smallest block
    id), subtracting each path's weight from the edges it used, until
    the residual drains or a per-function path budget is hit.

    Output is flamegraph.pl-compatible folded-stack lines —
    [func;b<id>;b<id>;... weight] — heaviest first, deterministic for a
    fixed seed. *)

type path = {
  pfunc : string;
  blocks : int list;  (** Block ids along the path, in order. *)
  weight : int;  (** Flow peeled off with this path. *)
}

(** [extract ?max_paths_per_func ?max_len dcfg] decomposes every sampled
    function of [dcfg] (defaults: 10 paths per function, 64 blocks per
    path). Paths are returned weight-descending, ties by function then
    block sequence. *)
val extract : ?max_paths_per_func:int -> ?max_len:int -> Propeller.Dcfg.t -> path list

(** [to_folded paths] renders one folded-stack line per path. *)
val to_folded : path list -> string

val to_json : path list -> Obs.Json.t

(** Final-layout address resolution.

    Maps any virtual address of a linked image back to the code that
    owns it: (function, basic block, placed section, fragment kind),
    with the block-relative byte offset. This is the inverse of what the
    linker did — and exactly what `perf annotate` needs to project LBR
    samples onto a listing, cold-split fragments included.

    Resolution is total: every address classifies as code, alignment
    padding inside the text segment, a placed non-text section, or
    outside the image. *)

(** Which cluster of its function a block landed in (paper §3.4
    naming: [foo], [foo.cold], [foo.N]). *)
type fragment = Primary | Cold | Cluster of int

type location = {
  func : string;  (** Owning function (cluster suffixes stripped). *)
  block : int;  (** IR block id. *)
  block_addr : int;  (** Final address of the block's first byte. *)
  block_size : int;
  offset : int;  (** Queried address minus [block_addr]. *)
  section : string;  (** Placed section name, e.g. [".text.foo.cold"]. *)
  section_symbol : string option;  (** The cluster symbol, when bound. *)
  fragment : fragment;
}

type resolution =
  | Code of location
  | Padding of { prev : string option; next : string option }
      (** Alignment gap inside the text segment; [prev]/[next] name the
          nearest cluster symbols below and above the address. *)
  | Noncode of string  (** Inside a placed non-text section (name). *)
  | Outside  (** Not covered by any placed section. *)

type t

(** [create binary] builds the resolver's sorted indices once;
    lookups are O(log n). *)
val create : Linker.Binary.t -> t

val binary : t -> Linker.Binary.t

(** [resolve t addr] classifies [addr]. *)
val resolve : t -> int -> resolution

(** {1 Flat block index}

    The allocation-free face of the resolver: blocks addressed by their
    position in final address order, lookups over sorted flat int
    arrays ({!Support.Isearch}). The fast path for bulk consumers
    (annotation, fleet profile translation) that resolve every record
    of a profile and only need the owning block. *)

val num_blocks : t -> int

val find_block_index : t -> int -> int
(** [find_block_index t addr] is the address-order index of the block
    covering [addr], or [-1] when no block covers it (equivalently:
    {!resolve} would not return [Code _]). *)

val block_at : t -> int -> Linker.Binary.block_info
(** The block at an address-order index returned by
    {!find_block_index}/{!resolve_batch}. *)

val resolve_batch : t -> int array -> int array
(** [resolve_batch t queries] resolves a whole batch of addresses to
    block indices in one sweep: [out.(j) = find_block_index t
    queries.(j)]. *)

(** [section_at t addr] finds the placed text section covering [addr]. *)
val section_at : t -> int -> Linker.Binary.placed option

(** [blocks_of_func t func] lists the function's placed blocks as
    locations in final address order — primary and cold/cluster
    fragments interleaved exactly as laid out. *)
val blocks_of_func : t -> string -> location list

(** [funcs t] lists function names with placed blocks, sorted. *)
val funcs : t -> string list

(** [fragment_of_symbol sym] classifies a cluster symbol by its naming
    convention ([None] means an unnamed section: primary). *)
val fragment_of_symbol : string option -> fragment

val fragment_to_string : fragment -> string

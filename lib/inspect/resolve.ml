type fragment = Primary | Cold | Cluster of int

type location = {
  func : string;
  block : int;
  block_addr : int;
  block_size : int;
  offset : int;
  section : string;
  section_symbol : string option;
  fragment : fragment;
}

type resolution =
  | Code of location
  | Padding of { prev : string option; next : string option }
  | Noncode of string
  | Outside

type t = {
  bin : Linker.Binary.t;
  blocks : Linker.Binary.block_info array;  (* address order *)
  baddrs : int array;  (* blocks.(i).addr — flat index for binary search *)
  bsizes : int array;  (* blocks.(i).size *)
  texts : Linker.Binary.placed array;  (* text sections, address order *)
  others : Linker.Binary.placed array;  (* non-text sections, address order *)
}

let binary t = t.bin

let fragment_of_symbol = function
  | None -> Primary
  | Some s ->
    if Objfile.Symname.is_cold s then Cold
    else begin
      let owner = Objfile.Symname.owner s in
      if String.equal owner s then Primary
      else begin
        let suffix =
          String.sub s (String.length owner + 1) (String.length s - String.length owner - 1)
        in
        match int_of_string_opt suffix with Some n -> Cluster n | None -> Primary
      end
    end

let fragment_to_string = function
  | Primary -> "primary"
  | Cold -> "cold"
  | Cluster n -> Printf.sprintf "cluster.%d" n

let create (bin : Linker.Binary.t) =
  let blocks = Array.of_list (Linker.Binary.blocks_in_address_order bin) in
  let baddrs = Array.map (fun (b : Linker.Binary.block_info) -> b.addr) blocks in
  let bsizes = Array.map (fun (b : Linker.Binary.block_info) -> b.size) blocks in
  let texts, others =
    List.partition (fun (p : Linker.Binary.placed) -> p.kind = Objfile.Section.Text) bin.sections
  in
  let by_addr (a : Linker.Binary.placed) (b : Linker.Binary.placed) = compare a.addr b.addr in
  let texts = Array.of_list (List.sort by_addr texts) in
  let others = Array.of_list (List.sort by_addr others) in
  { bin; blocks; baddrs; bsizes; texts; others }

let num_blocks t = Array.length t.blocks

let find_block_index t addr = Support.Isearch.covering ~addrs:t.baddrs ~sizes:t.bsizes addr

let block_at t i = t.blocks.(i)

let resolve_batch t queries =
  Support.Isearch.covering_batch ~addrs:t.baddrs ~sizes:t.bsizes queries

(* Generic covering-interval binary search over an address-sorted array. *)
let find_covering arr ~addr_of ~size_of addr =
  let rec search lo hi =
    if lo > hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let a = addr_of arr.(mid) in
      if addr < a then search lo (mid - 1)
      else if addr >= a + size_of arr.(mid) then search (mid + 1) hi
      else Some arr.(mid)
    end
  in
  search 0 (Array.length arr - 1)

let section_at t addr =
  find_covering t.texts
    ~addr_of:(fun (p : Linker.Binary.placed) -> p.addr)
    ~size_of:(fun (p : Linker.Binary.placed) -> p.size)
    addr

let location_of ~(sec : Linker.Binary.placed option) (b : Linker.Binary.block_info) addr =
  let section, section_symbol =
    match sec with Some s -> (s.name, s.symbol) | None -> ("", None)
  in
  {
    func = b.func;
    block = b.block;
    block_addr = b.addr;
    block_size = b.size;
    offset = addr - b.addr;
    section;
    section_symbol;
    fragment = fragment_of_symbol (match sec with Some s -> s.symbol | None -> None);
  }

(* Nearest cluster symbols around an uncovered text address. *)
let neighbours t addr =
  let n = Array.length t.texts in
  let first_above i = if i >= n then None else Some t.texts.(i) in
  (* Index of the first section starting above addr. *)
  let rec lower lo hi =
    if lo > hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.texts.(mid).Linker.Binary.addr <= addr then lower (mid + 1) hi else lower lo (mid - 1)
    end
  in
  let i = lower 0 (n - 1) in
  let name_of (p : Linker.Binary.placed) =
    match p.symbol with Some s -> Some s | None -> Some p.name
  in
  let prev = if i = 0 then None else name_of t.texts.(i - 1) in
  let next = Option.bind (first_above i) name_of in
  Padding { prev; next }

let resolve t addr =
  match find_block_index t addr with
  | i when i >= 0 -> Code (location_of ~sec:(section_at t addr) t.blocks.(i) addr)
  | _ ->
    if addr >= t.bin.text_start && addr < t.bin.text_end then neighbours t addr
    else begin
      match
        find_covering t.others
          ~addr_of:(fun (p : Linker.Binary.placed) -> p.addr)
          ~size_of:(fun (p : Linker.Binary.placed) -> p.size)
          addr
      with
      | Some p -> Noncode p.name
      | None -> Outside
    end

let blocks_of_func t func =
  Array.to_list t.blocks
  |> List.filter_map (fun (b : Linker.Binary.block_info) ->
         if String.equal b.func func then Some (location_of ~sec:(section_at t b.addr) b b.addr)
         else None)

let funcs t = Linker.Binary.funcs t.bin

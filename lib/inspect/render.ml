let table ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> if i < cols then width.(i) <- max width.(i) (String.length cell)))
    all;
  let buf = Buffer.create 1024 in
  let render_row r =
    List.iteri
      (fun i cell ->
        let pad = width.(i) - String.length cell in
        if i = 0 then begin
          Buffer.add_string buf cell;
          if i < cols - 1 then Buffer.add_string buf (String.make pad ' ')
        end
        else begin
          Buffer.add_string buf (String.make pad ' ');
          Buffer.add_string buf cell
        end;
        if i < cols - 1 then Buffer.add_string buf "  ")
      r;
    Buffer.add_char buf '\n'
  in
  render_row header;
  render_row (List.mapi (fun i _ -> String.make width.(i) '-') header);
  List.iter render_row rows;
  Buffer.contents buf

let bar ~width frac =
  let frac = Float.max 0.0 (Float.min 1.0 frac) in
  let n = int_of_float (Float.round (frac *. float_of_int width)) in
  String.make n '#'

let pct f = Printf.sprintf "%.1f%%" (100.0 *. f)

let addr_hex a = Printf.sprintf "0x%x" a

let bytes_exact n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

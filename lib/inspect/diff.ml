type movement = {
  blocks_a : int;
  blocks_b : int;
  common : int;
  moved : int;
  resized : int;
  hot_to_cold : int;
  cold_to_hot : int;
  only_a : int;
  only_b : int;
}

type bucket = { label : string; weight_a : int; weight_b : int }

type t = {
  name_a : string;
  name_b : string;
  movement : movement;
  func_moves : (string * int) list;
  buckets : bucket list;
  branch_weight : int;
  unmatched_weight : int;
}

(* Per-block layout facts of one image: rank within the function's
   address-ordered block list, plus size and temperature. *)
type fact = { rank : int; size : int; cold : bool }

let facts_of (resolver : Resolve.t) =
  let tbl : (string * int, fact) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun f ->
      List.iteri
        (fun rank (l : Resolve.location) ->
          Hashtbl.replace tbl (f, l.block)
            { rank; size = l.block_size; cold = l.fragment = Resolve.Cold })
        (Resolve.blocks_of_func resolver f))
    (Resolve.funcs resolver);
  tbl

let block_movement ra rb =
  let fa = facts_of ra and fb = facts_of rb in
  let moves : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let init =
    {
      blocks_a = Hashtbl.length fa;
      blocks_b = Hashtbl.length fb;
      common = 0;
      moved = 0;
      resized = 0;
      hot_to_cold = 0;
      cold_to_hot = 0;
      only_a = 0;
      only_b = 0;
    }
  in
  let m =
    Hashtbl.fold
      (fun key (a : fact) m ->
        match Hashtbl.find_opt fb key with
        | None -> { m with only_a = m.only_a + 1 }
        | Some b ->
          let m = { m with common = m.common + 1 } in
          let m = if a.rank <> b.rank then { m with moved = m.moved + 1 } else m in
          (if a.rank <> b.rank then
             let f = fst key in
             match Hashtbl.find_opt moves f with
             | Some r -> incr r
             | None -> Hashtbl.replace moves f (ref 1));
          let m = if a.size <> b.size then { m with resized = m.resized + 1 } else m in
          if (not a.cold) && b.cold then { m with hot_to_cold = m.hot_to_cold + 1 }
          else if a.cold && not b.cold then { m with cold_to_hot = m.cold_to_hot + 1 }
          else m)
      fa init
  in
  let m = { m with only_b = m.blocks_b - m.common } in
  let func_moves =
    Hashtbl.fold (fun f r acc -> (f, !r) :: acc) moves []
    |> List.sort (fun (fa', na) (fb', nb) ->
           match compare nb na with 0 -> String.compare fa' fb' | c -> c)
  in
  (m, func_moves)

let bucket_labels = [ "adjacent"; "<=64B"; "<=4KB"; "<=64KB"; "<=2MB"; ">2MB" ]

let bucket_index dist =
  if dist = 0 then 0
  else if dist <= 64 then 1
  else if dist <= 4096 then 2
  else if dist <= 65536 then 3
  else if dist <= 2 * 1024 * 1024 then 4
  else 5

(* Distance a taken branch travels in image [bin]: from the source
   block's end to the target block's start, both looked up by block
   identity so the same branch is measurable in either layout. *)
let distance_in bin ~src:(sf, sb) ~dst:(df, db) =
  match
    (Linker.Binary.block_info bin ~func:sf ~block:sb, Linker.Binary.block_info bin ~func:df ~block:db)
  with
  | Some s, Some d -> Some (abs (d.Linker.Binary.addr - (s.addr + s.size)))
  | _ -> None

let histograms ra (a : Linker.Binary.t) (b : Linker.Binary.t) (profile : Perfmon.Lbr.profile) =
  let wa = Array.make 6 0 and wb = Array.make 6 0 in
  let total = ref 0 and unmatched = ref 0 in
  Perfmon.Lbr.iter_pairs
    (fun ~src ~dst cnt ->
      total := !total + cnt;
      match (Resolve.resolve ra (src - 1), Resolve.resolve ra dst) with
      | Resolve.Code ls, Resolve.Code ld ->
        let key_s = (ls.Resolve.func, ls.Resolve.block)
        and key_d = (ld.Resolve.func, ld.Resolve.block) in
        (match distance_in a ~src:key_s ~dst:key_d with
        | Some d -> wa.(bucket_index d) <- wa.(bucket_index d) + cnt
        | None -> ());
        (match distance_in b ~src:key_s ~dst:key_d with
        | Some d -> wb.(bucket_index d) <- wb.(bucket_index d) + cnt
        | None -> unmatched := !unmatched + cnt)
      | _ -> unmatched := !unmatched + cnt)
    profile.Perfmon.Lbr.branches;
  let buckets =
    List.mapi (fun i label -> { label; weight_a = wa.(i); weight_b = wb.(i) }) bucket_labels
  in
  (buckets, !total, !unmatched)

let compare ~(profile : Perfmon.Lbr.profile) (a : Linker.Binary.t) (b : Linker.Binary.t) =
  let ra = Resolve.create a and rb = Resolve.create b in
  let movement, func_moves = block_movement ra rb in
  let buckets, branch_weight, unmatched_weight = histograms ra a b profile in
  {
    name_a = a.Linker.Binary.name;
    name_b = b.Linker.Binary.name;
    movement;
    func_moves;
    buckets;
    branch_weight;
    unmatched_weight;
  }

let to_text ?(top = 10) t =
  let buf = Buffer.create 2048 in
  let m = t.movement in
  Printf.bprintf buf "diff %s -> %s\n\n" t.name_a t.name_b;
  Printf.bprintf buf
    "blocks: %d in A, %d in B, %d common (%d moved, %d resized, %d hot->cold, %d cold->hot), %d \
     only in A, %d only in B\n\n"
    m.blocks_a m.blocks_b m.common m.moved m.resized m.hot_to_cold m.cold_to_hot m.only_a m.only_b;
  (if t.func_moves <> [] then begin
     let rows =
       List.filteri (fun i _ -> i < top) t.func_moves
       |> List.map (fun (f, n) -> [ "  " ^ f; string_of_int n ])
     in
     Buffer.add_string buf (Render.table ~header:[ "  function"; "moved blocks" ] rows);
     Buffer.add_char buf '\n'
   end);
  Printf.bprintf buf "hot-branch distance (%d samples, %d unmatched in B):\n" t.branch_weight
    t.unmatched_weight;
  let denom = max 1 t.branch_weight in
  let rows =
    List.map
      (fun bk ->
        [
          "  " ^ bk.label;
          string_of_int bk.weight_a;
          Render.pct (float_of_int bk.weight_a /. float_of_int denom);
          string_of_int bk.weight_b;
          Render.pct (float_of_int bk.weight_b /. float_of_int denom);
          Render.bar ~width:16 (float_of_int bk.weight_b /. float_of_int denom);
        ])
      t.buckets
  in
  Buffer.add_string buf
    (Render.table ~header:[ "  distance"; "A"; "A%"; "B"; "B%"; "B heat" ] rows);
  Buffer.contents buf

let to_json t =
  let m = t.movement in
  Obs.Json.Obj
    [
      ("tool", Obs.Json.String "propeller_inspect");
      ("view", Obs.Json.String "diff");
      ("binary_a", Obs.Json.String t.name_a);
      ("binary_b", Obs.Json.String t.name_b);
      ( "movement",
        Obs.Json.Obj
          [
            ("blocks_a", Obs.Json.Int m.blocks_a);
            ("blocks_b", Obs.Json.Int m.blocks_b);
            ("common", Obs.Json.Int m.common);
            ("moved", Obs.Json.Int m.moved);
            ("resized", Obs.Json.Int m.resized);
            ("hot_to_cold", Obs.Json.Int m.hot_to_cold);
            ("cold_to_hot", Obs.Json.Int m.cold_to_hot);
            ("only_a", Obs.Json.Int m.only_a);
            ("only_b", Obs.Json.Int m.only_b);
          ] );
      ( "func_moves",
        Obs.Json.List
          (List.map
             (fun (f, n) ->
               Obs.Json.Obj [ ("name", Obs.Json.String f); ("moved", Obs.Json.Int n) ])
             t.func_moves) );
      ("branch_weight", Obs.Json.Int t.branch_weight);
      ("unmatched_weight", Obs.Json.Int t.unmatched_weight);
      ( "distance_histogram",
        Obs.Json.List
          (List.map
             (fun bk ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String bk.label);
                   ("weight_a", Obs.Json.Int bk.weight_a);
                   ("weight_b", Obs.Json.Int bk.weight_b);
                 ])
             t.buckets) );
    ]

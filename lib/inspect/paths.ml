type path = { pfunc : string; blocks : int list; weight : int }

(* Residual out-edge adjacency for one function: src block id -> ordered
   (dst, residual count) cells. Dst-ascending order makes the max-edge
   scan deterministic regardless of hash order. *)
let adjacency (d : Propeller.Dcfg.dfunc) =
  let out : (int, (int * int ref) list ref) Hashtbl.t = Hashtbl.create 32 in
  let edges =
    Support.Itab.fold
      (fun key r acc -> (Support.Packed.src key, Support.Packed.dst key, r) :: acc)
      d.Propeller.Dcfg.dedges []
    |> List.sort compare
  in
  List.iter
    (fun (s, dst, n) ->
      if n > 0 then begin
        match Hashtbl.find_opt out s with
        | Some cell -> cell := !cell @ [ (dst, ref n) ]
        | None -> Hashtbl.replace out s (ref [ (dst, ref n) ])
      end)
    edges;
  out

let best_out out src =
  match Hashtbl.find_opt out src with
  | None -> None
  | Some cell ->
    List.fold_left
      (fun acc (dst, r) ->
        if !r <= 0 then acc
        else begin
          match acc with
          | Some (_, best) when !best >= !r -> acc
          | _ -> Some (dst, r)
        end)
      None !cell

(* The heaviest residual edge overall decides where a decomposition
   round starts when the entry block has drained. *)
let heaviest_source out =
  Hashtbl.fold
    (fun src cell acc ->
      List.fold_left
        (fun acc (_, r) ->
          if !r <= 0 then acc
          else begin
            match acc with
            | Some (_, best) when best > !r || (best = !r && fst (Option.get acc) <= src) -> acc
            | _ -> Some (src, !r)
          end)
        acc !cell)
    out None

let decompose ~max_paths ~max_len (d : Propeller.Dcfg.dfunc) =
  let out = adjacency d in
  let entry = 0 in
  let paths = ref [] in
  let rounds = ref 0 in
  let continue = ref true in
  while !continue && !rounds < max_paths do
    incr rounds;
    let start =
      match best_out out entry with
      | Some _ -> Some entry
      | None -> Option.map fst (heaviest_source out)
    in
    match start with
    | None -> continue := false
    | Some start ->
      let visited = Hashtbl.create 16 in
      Hashtbl.replace visited start ();
      let rec walk src acc_blocks acc_edges len =
        if len >= max_len then (List.rev acc_blocks, acc_edges)
        else begin
          match best_out out src with
          | None -> (List.rev acc_blocks, acc_edges)
          | Some (dst, r) ->
            if Hashtbl.mem visited dst then (List.rev acc_blocks, acc_edges)
            else begin
              Hashtbl.replace visited dst ();
              walk dst (dst :: acc_blocks) (r :: acc_edges) (len + 1)
            end
        end
      in
      let blocks, edges = walk start [ start ] [] 1 in
      (match edges with
      | [] -> continue := false
      | _ ->
        let weight = List.fold_left (fun acc r -> min acc !r) max_int edges in
        List.iter (fun r -> r := !r - weight) edges;
        paths := { pfunc = d.Propeller.Dcfg.dname; blocks; weight } :: !paths)
  done;
  List.rev !paths

let extract ?(max_paths_per_func = 10) ?(max_len = 64) (dcfg : Propeller.Dcfg.t) =
  Propeller.Dcfg.hot_funcs dcfg
  |> List.concat_map (decompose ~max_paths:max_paths_per_func ~max_len)
  |> List.sort (fun a b ->
         match compare b.weight a.weight with
         | 0 -> (
           match String.compare a.pfunc b.pfunc with 0 -> compare a.blocks b.blocks | c -> c)
         | c -> c)

let folded_frames p =
  String.concat ";" (p.pfunc :: List.map (fun b -> "b" ^ string_of_int b) p.blocks)

let to_folded paths =
  Obs.Folded.to_string (List.map (fun p -> (folded_frames p, p.weight)) paths)

let to_json paths =
  Obs.Json.Obj
    [
      ("tool", Obs.Json.String "propeller_inspect");
      ("view", Obs.Json.String "paths");
      ("num_paths", Obs.Json.Int (List.length paths));
      ( "paths",
        Obs.Json.List
          (List.map
             (fun p ->
               Obs.Json.Obj
                 [
                   ("func", Obs.Json.String p.pfunc);
                   ("blocks", Obs.Json.List (List.map (fun b -> Obs.Json.Int b) p.blocks));
                   ("weight", Obs.Json.Int p.weight);
                   ("folded", Obs.Json.String (folded_frames p));
                 ])
             paths) );
    ]

(** Bloaty-style byte accounting of a linked image (paper Fig 6).

    Three reconciling breakdowns of the same binary:

    - {b by section kind} — text, eh_frame, bb_addr_map, relocs,
      rodata/data/symtab; sums exactly to
      {!Linker.Binary.total_size} and each kind to
      {!Linker.Binary.size_of_kind};
    - {b text by temperature} — hot (primary + numbered clusters) vs
      cold ([.cold] fragments); sums exactly to
      {!Linker.Binary.text_bytes}. Alignment gaps between text sections
      are reported separately as padding (they are address-space, not
      file bytes, so they do not enter the section sums);
    - {b text by function} — per-function hot/cold bytes and block
      counts, the Fig 6 "where did the bytes go" attribution.

    Metadata overhead groups the sections that exist only to carry
    profile/rewriter metadata: [.llvm_bb_addr_map] (the PM build's
    mapping section), [.eh_frame] growth and retained relocations. *)

type kind_row = { kind : string; bytes : int }

type func_row = {
  func : string;
  hot_bytes : int;
  cold_bytes : int;
  hot_blocks : int;
  cold_blocks : int;
}

type t = {
  binary_name : string;
  total_bytes : int;  (** = {!Linker.Binary.total_size}. *)
  kinds : kind_row list;  (** Fixed kind order; sums to [total_bytes]. *)
  text_bytes : int;
  hot_text_bytes : int;
  cold_text_bytes : int;
  text_padding_bytes : int;  (** Alignment gaps inside the text segment. *)
  bb_addr_map_bytes : int;
  eh_frame_bytes : int;
  rela_bytes : int;
  metadata_bytes : int;  (** bb_addr_map + eh_frame + relocs. *)
  num_text_sections : int;
  funcs : func_row list;  (** Name order; hot+cold sums to [text_bytes]. *)
}

(** [measure binary] computes the full accounting. *)
val measure : Linker.Binary.t -> t

val to_text : ?top:int -> t -> string

val to_json : t -> Obs.Json.t

(** [totals_json t] is the compact record the bench JSON embeds:
    hot/cold text, metadata and total bytes. *)
val totals_json : t -> Obs.Json.t

(** Shared text rendering for the inspect views: right-aligned numeric
    tables, heat bars, percentages. Pure string building — every view
    stays printable without a terminal. *)

(** [table ~header rows] renders an aligned table. The first column is
    left-aligned, the rest right-aligned; [header] is underlined by
    column width. *)
val table : header:string list -> string list list -> string

(** [bar ~width frac] is a [frac]-filled bar of '#' over [width] cells,
    [frac] clamped to [0, 1]. *)
val bar : width:int -> float -> string

(** [pct f] formats a ratio as "12.3%". *)
val pct : float -> string

(** [addr_hex a] formats an address as "0x401000". *)
val addr_hex : int -> string

(** [bytes_exact n] formats a byte count with thousands separators,
    e.g. "1,234,567". Exact — size views must reconcile to the byte. *)
val bytes_exact : int -> string

(** `perf annotate`-style heat listing over the final layout.

    Projects an LBR profile (collected on the inspected binary) onto the
    resolved block layout: per-block execution counts from the
    sequential ranges, taken-branch and fall-through exit weights,
    and per-block mispredict rates from the records' MISPRED bits.

    Functions are reported hottest-first; blocks in final address
    order, cold fragments marked. The JSON form is deterministic —
    byte-identical across runs at a fixed seed — and round-trips
    through {!Obs.Json.parse}. *)

type block_row = {
  bb : int;
  addr : int;
  size : int;
  section : string;
  fragment : Resolve.fragment;
  count : int;  (** Execution count recovered from LBR ranges. *)
  taken_out : int;  (** Weighted taken-branch records leaving the block. *)
  fallthrough_out : int;  (** Weighted sequential exits into the next block. *)
  mispredicted : int;  (** Taken records leaving the block with MISPRED set. *)
}

type func_report = {
  fname : string;
  samples : int;  (** Sample mass attributed to the function. *)
  code_bytes : int;
  cold_bytes : int;
  rows : block_row list;  (** Final address order, all fragments. *)
}

type t = {
  binary_name : string;
  num_samples : int;
  num_records : int;
  total_mispredicts : int;
  functions : func_report list;  (** Sample mass desc, then name. *)
}

(** [analyze ~binary ~profile] projects [profile] onto [binary]'s
    layout. Only functions that received samples are listed. *)
val analyze : binary:Linker.Binary.t -> profile:Perfmon.Lbr.profile -> t

(** [taken_ratio r] is taken / (taken + fall-through) exit weight. *)
val taken_ratio : block_row -> float

(** [mispredict_rate r] is mispredicted / taken exit weight. *)
val mispredict_rate : block_row -> float

(** [to_text ?top ?func t] renders the listing; [top] bounds the number
    of functions (default 10), [func] selects one by name. *)
val to_text : ?top:int -> ?func:string -> t -> string

(** [to_json ?func t] is the full record with a stable field order. *)
val to_json : ?func:string -> t -> Obs.Json.t

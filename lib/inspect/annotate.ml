type block_row = {
  bb : int;
  addr : int;
  size : int;
  section : string;
  fragment : Resolve.fragment;
  count : int;
  taken_out : int;
  fallthrough_out : int;
  mispredicted : int;
}

type func_report = {
  fname : string;
  samples : int;
  code_bytes : int;
  cold_bytes : int;
  rows : block_row list;
}

type t = {
  binary_name : string;
  num_samples : int;
  num_records : int;
  total_mispredicts : int;
  functions : func_report list;
}

let taken_ratio r =
  let total = r.taken_out + r.fallthrough_out in
  if total = 0 then 0.0 else float_of_int r.taken_out /. float_of_int total

let mispredict_rate r =
  if r.taken_out = 0 then 0.0 else float_of_int r.mispredicted /. float_of_int r.taken_out

let bump tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl key (ref n)

let get tbl key = match Hashtbl.find_opt tbl key with Some r -> !r | None -> 0

(* Sequential-range walk over the resolver's address-ordered flat
   block index: a range [lo, hi) executed the blocks it covers; each
   adjacent same-function pair inside it is one fall-through exit
   (mirrors Dcfg's attribution). The range starts are resolved as one
   batch. *)
let fallthrough_exits (resolver : Resolve.t) (profile : Perfmon.Lbr.profile) =
  let n = Resolve.num_blocks resolver in
  let items = Support.Itab.sorted_items profile.Perfmon.Lbr.ranges in
  let starts = Array.map (fun (key, _) -> Support.Packed.src key) items in
  let start_idx = Resolve.resolve_batch resolver starts in
  let ft : (string * int, int ref) Hashtbl.t = Hashtbl.create 1024 in
  Array.iteri
    (fun j (key, cnt) ->
      let range_hi = Support.Packed.dst key in
      let i0 = start_idx.(j) in
      if i0 >= 0 then begin
        let rec walk i =
          if i < n then begin
            let b = Resolve.block_at resolver i in
            if b.Linker.Binary.addr < range_hi then begin
              (if i + 1 < n then begin
                 let nxt = Resolve.block_at resolver (i + 1) in
                 if
                   nxt.Linker.Binary.addr = b.addr + b.size
                   && String.equal nxt.func b.func
                   && nxt.addr < range_hi
                 then bump ft (b.func, b.block) cnt
               end);
              walk (i + 1)
            end
          end
        in
        walk i0
      end)
    items;
  ft

let analyze ~(binary : Linker.Binary.t) ~(profile : Perfmon.Lbr.profile) =
  let resolver = Resolve.create binary in
  let dcfg = Propeller.Dcfg.build_of_blocks ~profile ~binary in
  (* Taken exits and mispredicts, attributed to the source block: the
     branch retires at src (its end address), so probe src - 1. All
     record sources resolve as one batch against the flat block index. *)
  let taken : (string * int, int ref) Hashtbl.t = Hashtbl.create 1024 in
  let mis : (string * int, int ref) Hashtbl.t = Hashtbl.create 1024 in
  let items = Support.Itab.sorted_items profile.Perfmon.Lbr.branches in
  let srcs = Array.map (fun (key, _) -> Support.Packed.src key - 1) items in
  let idxs = Resolve.resolve_batch resolver srcs in
  Array.iteri
    (fun j (key, cnt) ->
      if idxs.(j) >= 0 then begin
        let b = Resolve.block_at resolver idxs.(j) in
        bump taken (b.Linker.Binary.func, b.block) cnt;
        let m =
          Perfmon.Lbr.mispredict_count profile ~src:(Support.Packed.src key)
            ~dst:(Support.Packed.dst key)
        in
        if m > 0 then bump mis (b.func, b.block) m
      end)
    items;
  let ft = fallthrough_exits resolver profile in
  let func_report fname (d : Propeller.Dcfg.dfunc) =
    let rows =
      List.map
        (fun (l : Resolve.location) ->
          let count =
            match Hashtbl.find_opt d.Propeller.Dcfg.dblocks l.block with
            | Some (mb : Propeller.Dcfg.mblock) -> mb.count
            | None -> 0
          in
          {
            bb = l.block;
            addr = l.block_addr;
            size = l.block_size;
            section = l.section;
            fragment = l.fragment;
            count;
            taken_out = get taken (fname, l.block);
            fallthrough_out = get ft (fname, l.block);
            mispredicted = get mis (fname, l.block);
          })
        (Resolve.blocks_of_func resolver fname)
    in
    let code_bytes, cold_bytes =
      List.fold_left
        (fun (code, cold) r ->
          (code + r.size, if r.fragment = Resolve.Cold then cold + r.size else cold))
        (0, 0) rows
    in
    { fname; samples = d.Propeller.Dcfg.dsamples; code_bytes; cold_bytes; rows }
  in
  let functions =
    Propeller.Dcfg.hot_funcs dcfg
    |> List.map (fun (d : Propeller.Dcfg.dfunc) -> func_report d.dname d)
    |> List.sort (fun a b ->
           match compare b.samples a.samples with
           | 0 -> String.compare a.fname b.fname
           | c -> c)
  in
  {
    binary_name = binary.Linker.Binary.name;
    num_samples = profile.Perfmon.Lbr.num_samples;
    num_records = profile.Perfmon.Lbr.num_records;
    total_mispredicts = Perfmon.Lbr.mispredict_total profile;
    functions;
  }

let select ?func t =
  match func with
  | None -> t.functions
  | Some f -> List.filter (fun fr -> String.equal fr.fname f) t.functions

let to_text ?(top = 10) ?func t =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "annotate %s: %d samples, %d records, %d mispredicted\n\n" t.binary_name
    t.num_samples t.num_records t.total_mispredicts;
  let selected = select ?func t in
  let shown = if func = None then List.filteri (fun i _ -> i < top) selected else selected in
  List.iter
    (fun fr ->
      Printf.bprintf buf "%s  (%d samples, %d blocks, %s bytes%s)\n" fr.fname fr.samples
        (List.length fr.rows)
        (Render.bytes_exact fr.code_bytes)
        (if fr.cold_bytes > 0 then Printf.sprintf ", %s cold" (Render.bytes_exact fr.cold_bytes)
         else "");
      let hottest =
        List.fold_left (fun acc r -> max acc r.count) 0 fr.rows |> max 1 |> float_of_int
      in
      let rows =
        List.map
          (fun r ->
            [
              Printf.sprintf "  %s" (Render.addr_hex r.addr);
              string_of_int r.bb;
              (match r.fragment with
              | Resolve.Primary -> ""
              | Resolve.Cold -> "cold"
              | Resolve.Cluster n -> Printf.sprintf "c%d" n);
              string_of_int r.size;
              string_of_int r.count;
              string_of_int r.taken_out;
              string_of_int r.fallthrough_out;
              (if r.taken_out = 0 then "-" else Render.pct (mispredict_rate r));
              Render.bar ~width:16 (float_of_int r.count /. hottest);
            ])
          fr.rows
      in
      Buffer.add_string buf
        (Render.table
           ~header:
             [ "  addr"; "bb"; "frag"; "size"; "count"; "taken"; "fallthru"; "mispred"; "heat" ]
           rows);
      Buffer.add_char buf '\n')
    shown;
  (if func <> None && selected = [] then
     Printf.bprintf buf "function %s: no samples attributed\n" (Option.get func));
  Buffer.contents buf

let row_json r =
  Obs.Json.Obj
    [
      ("bb", Obs.Json.Int r.bb);
      ("addr", Obs.Json.Int r.addr);
      ("size", Obs.Json.Int r.size);
      ("section", Obs.Json.String r.section);
      ("fragment", Obs.Json.String (Resolve.fragment_to_string r.fragment));
      ("count", Obs.Json.Int r.count);
      ("taken", Obs.Json.Int r.taken_out);
      ("fallthrough", Obs.Json.Int r.fallthrough_out);
      ("mispredicted", Obs.Json.Int r.mispredicted);
      ("mispredict_rate", Obs.Json.Float (mispredict_rate r));
    ]

let to_json ?func t =
  Obs.Json.Obj
    [
      ("tool", Obs.Json.String "propeller_inspect");
      ("view", Obs.Json.String "annotate");
      ("binary", Obs.Json.String t.binary_name);
      ("num_samples", Obs.Json.Int t.num_samples);
      ("num_records", Obs.Json.Int t.num_records);
      ("total_mispredicts", Obs.Json.Int t.total_mispredicts);
      ( "functions",
        Obs.Json.List
          (List.map
             (fun fr ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String fr.fname);
                   ("samples", Obs.Json.Int fr.samples);
                   ("code_bytes", Obs.Json.Int fr.code_bytes);
                   ("cold_bytes", Obs.Json.Int fr.cold_bytes);
                   ("blocks", Obs.Json.List (List.map row_json fr.rows));
                 ])
             (select ?func t)) );
    ]

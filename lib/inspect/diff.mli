(** Layout diff between two linked images of the same program.

    Propeller's whole effect is block placement, so the interesting
    delta between a baseline and an optimized link is not bytes changed
    but {e where blocks went}:

    - {b block movement} — blocks are matched by (function, block id)
      identity. A matched block "moved" when its rank in the function's
      final address order changed (absolute addresses always differ
      between layouts, ranks only differ on reordering); temperature
      transitions (primary/cluster -> [.cold] and back) are counted
      separately, as are resizes (relaxation picked a different
      encoding).
    - {b hot-branch distance} — every taken branch of a profile
      (collected on image A) is replayed against both layouts: the
      byte distance from the source block's end to the target block's
      start, weighted by sample count, bucketed adjacent / <=64B /
      <=4KB / <=64KB / <=2MB / >2MB. A good layout shifts weight
      toward the short buckets (paper §2: i-cache and iTLB locality).

    Both views are deterministic for a fixed seed. *)

type movement = {
  blocks_a : int;
  blocks_b : int;
  common : int;
  moved : int;  (** Rank within the function's address order changed. *)
  resized : int;
  hot_to_cold : int;  (** Primary/cluster fragment in A, [.cold] in B. *)
  cold_to_hot : int;
  only_a : int;
  only_b : int;
}

type bucket = {
  label : string;
  weight_a : int;  (** Branch samples landing in this distance bucket on A. *)
  weight_b : int;
}

type t = {
  name_a : string;
  name_b : string;
  movement : movement;
  func_moves : (string * int) list;
      (** Functions with moved blocks, count-descending. *)
  buckets : bucket list;  (** Fixed bucket order, near to far. *)
  branch_weight : int;  (** Total samples replayed into the histogram. *)
  unmatched_weight : int;
      (** Samples whose source or target block has no match in B. *)
}

(** [compare ~profile a b] diffs image [b] against image [a]; [profile]
    must have been collected on [a] (its addresses are resolved there). *)
val compare : profile:Perfmon.Lbr.profile -> Linker.Binary.t -> Linker.Binary.t -> t

val to_text : ?top:int -> t -> string

val to_json : t -> Obs.Json.t

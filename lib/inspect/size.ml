type kind_row = { kind : string; bytes : int }

type func_row = {
  func : string;
  hot_bytes : int;
  cold_bytes : int;
  hot_blocks : int;
  cold_blocks : int;
}

type t = {
  binary_name : string;
  total_bytes : int;
  kinds : kind_row list;
  text_bytes : int;
  hot_text_bytes : int;
  cold_text_bytes : int;
  text_padding_bytes : int;
  bb_addr_map_bytes : int;
  eh_frame_bytes : int;
  rela_bytes : int;
  metadata_bytes : int;
  num_text_sections : int;
  funcs : func_row list;
}

let all_kinds =
  [
    Objfile.Section.Text;
    Objfile.Section.Rodata;
    Objfile.Section.Data;
    Objfile.Section.Eh_frame;
    Objfile.Section.Bb_addr_map;
    Objfile.Section.Rela;
    Objfile.Section.Symtab;
    Objfile.Section.Debug;
  ]

let measure (binary : Linker.Binary.t) =
  let resolver = Resolve.create binary in
  let texts =
    List.filter (fun (p : Linker.Binary.placed) -> p.kind = Objfile.Section.Text) binary.sections
  in
  (* Per-function temperature attribution via the cluster symbol each
     placed text section is bound to. *)
  let acc : (string, func_row ref) Hashtbl.t = Hashtbl.create 256 in
  let touch owner =
    match Hashtbl.find_opt acc owner with
    | Some r -> r
    | None ->
      let r = ref { func = owner; hot_bytes = 0; cold_bytes = 0; hot_blocks = 0; cold_blocks = 0 } in
      Hashtbl.replace acc owner r;
      r
  in
  let hot_text = ref 0 and cold_text = ref 0 in
  List.iter
    (fun (p : Linker.Binary.placed) ->
      let owner =
        match p.symbol with Some s -> Objfile.Symname.owner s | None -> p.name
      in
      let cold = Resolve.fragment_of_symbol p.symbol = Resolve.Cold in
      let r = touch owner in
      if cold then begin
        cold_text := !cold_text + p.size;
        r := { !r with cold_bytes = !r.cold_bytes + p.size }
      end
      else begin
        hot_text := !hot_text + p.size;
        r := { !r with hot_bytes = !r.hot_bytes + p.size }
      end)
    texts;
  (* Block counts per temperature from the resolver. *)
  List.iter
    (fun f ->
      List.iter
        (fun (l : Resolve.location) ->
          let r = touch f in
          if l.fragment = Resolve.Cold then r := { !r with cold_blocks = !r.cold_blocks + 1 }
          else r := { !r with hot_blocks = !r.hot_blocks + 1 })
        (Resolve.blocks_of_func resolver f))
    (Resolve.funcs resolver);
  let k kind = Linker.Binary.size_of_kind binary kind in
  let text_bytes = k Objfile.Section.Text in
  let bb = k Objfile.Section.Bb_addr_map in
  let eh = k Objfile.Section.Eh_frame in
  let rela = k Objfile.Section.Rela in
  {
    binary_name = binary.name;
    total_bytes = Linker.Binary.total_size binary;
    kinds =
      List.map (fun kind -> { kind = Objfile.Section.kind_to_string kind; bytes = k kind }) all_kinds;
    text_bytes;
    hot_text_bytes = !hot_text;
    cold_text_bytes = !cold_text;
    text_padding_bytes = binary.text_end - binary.text_start - text_bytes;
    bb_addr_map_bytes = bb;
    eh_frame_bytes = eh;
    rela_bytes = rela;
    metadata_bytes = bb + eh + rela;
    num_text_sections = List.length texts;
    funcs =
      Hashtbl.fold (fun _ r out -> !r :: out) acc []
      |> List.sort (fun a b -> String.compare a.func b.func);
  }

let to_text ?(top = 20) t =
  let buf = Buffer.create 2048 in
  Printf.bprintf buf "size %s: %s bytes total\n\n" t.binary_name (Render.bytes_exact t.total_bytes);
  let kind_rows =
    List.filter_map
      (fun { kind; bytes } ->
        if bytes = 0 then None
        else
          Some
            [
              "  " ^ kind;
              Render.bytes_exact bytes;
              Render.pct (float_of_int bytes /. float_of_int (max 1 t.total_bytes));
            ])
      t.kinds
  in
  Buffer.add_string buf (Render.table ~header:[ "  section"; "bytes"; "share" ] kind_rows);
  Printf.bprintf buf "\ntext: %s hot + %s cold = %s across %d sections (+%s alignment padding)\n"
    (Render.bytes_exact t.hot_text_bytes)
    (Render.bytes_exact t.cold_text_bytes)
    (Render.bytes_exact t.text_bytes) t.num_text_sections
    (Render.bytes_exact t.text_padding_bytes);
  Printf.bprintf buf "metadata overhead: %s (bb_addr_map %s, eh_frame %s, relocs %s)\n\n"
    (Render.bytes_exact t.metadata_bytes)
    (Render.bytes_exact t.bb_addr_map_bytes)
    (Render.bytes_exact t.eh_frame_bytes)
    (Render.bytes_exact t.rela_bytes);
  let ranked =
    List.sort
      (fun a b ->
        match compare (b.hot_bytes + b.cold_bytes) (a.hot_bytes + a.cold_bytes) with
        | 0 -> String.compare a.func b.func
        | c -> c)
      t.funcs
    |> List.filteri (fun i _ -> i < top)
  in
  let func_rows =
    List.map
      (fun f ->
        let total = f.hot_bytes + f.cold_bytes in
        [
          "  " ^ f.func;
          Render.bytes_exact total;
          Render.bytes_exact f.hot_bytes;
          Render.bytes_exact f.cold_bytes;
          Printf.sprintf "%d+%d" f.hot_blocks f.cold_blocks;
          Render.bar ~width:16 (float_of_int total /. float_of_int (max 1 t.text_bytes));
        ])
      ranked
  in
  Buffer.add_string buf
    (Render.table
       ~header:[ "  function"; "bytes"; "hot"; "cold"; "blocks(h+c)"; "share" ]
       func_rows);
  Buffer.contents buf

let totals_json t =
  Obs.Json.Obj
    [
      ("hot_text_bytes", Obs.Json.Int t.hot_text_bytes);
      ("cold_text_bytes", Obs.Json.Int t.cold_text_bytes);
      ("metadata_bytes", Obs.Json.Int t.metadata_bytes);
      ("bb_addr_map_bytes", Obs.Json.Int t.bb_addr_map_bytes);
      ("eh_frame_bytes", Obs.Json.Int t.eh_frame_bytes);
      ("total_bytes", Obs.Json.Int t.total_bytes);
    ]

let to_json t =
  Obs.Json.Obj
    [
      ("tool", Obs.Json.String "propeller_inspect");
      ("view", Obs.Json.String "size");
      ("binary", Obs.Json.String t.binary_name);
      ("total_bytes", Obs.Json.Int t.total_bytes);
      ( "sections",
        Obs.Json.Obj (List.map (fun { kind; bytes } -> (kind, Obs.Json.Int bytes)) t.kinds) );
      ( "text",
        Obs.Json.Obj
          [
            ("total_bytes", Obs.Json.Int t.text_bytes);
            ("hot_bytes", Obs.Json.Int t.hot_text_bytes);
            ("cold_bytes", Obs.Json.Int t.cold_text_bytes);
            ("padding_bytes", Obs.Json.Int t.text_padding_bytes);
            ("num_sections", Obs.Json.Int t.num_text_sections);
          ] );
      ( "metadata",
        Obs.Json.Obj
          [
            ("total_bytes", Obs.Json.Int t.metadata_bytes);
            ("bb_addr_map_bytes", Obs.Json.Int t.bb_addr_map_bytes);
            ("eh_frame_bytes", Obs.Json.Int t.eh_frame_bytes);
            ("rela_bytes", Obs.Json.Int t.rela_bytes);
          ] );
      ( "functions",
        Obs.Json.List
          (List.map
             (fun f ->
               Obs.Json.Obj
                 [
                   ("name", Obs.Json.String f.func);
                   ("hot_bytes", Obs.Json.Int f.hot_bytes);
                   ("cold_bytes", Obs.Json.Int f.cold_bytes);
                   ("hot_blocks", Obs.Json.Int f.hot_blocks);
                   ("cold_blocks", Obs.Json.Int f.cold_blocks);
                 ])
             t.funcs) );
    ]

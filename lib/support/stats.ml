let sum = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map (fun x -> if x <= 0.0 then neg_infinity else log x) xs in
    exp (mean logs)

(* Linear interpolation between closest ranks, matching Obs.Metrics'
   summaries (the two implementations must agree byte for byte; obs
   cannot depend on this module). Exact for small samples: p of 1
   sample is that sample, p50 of 2 is their midpoint (== median). *)
let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = max 0 (min (n - 1) (int_of_float (floor rank))) in
      let hi = min (n - 1) (lo + 1) in
      arr.(lo) +. ((rank -. float_of_int lo) *. (arr.(hi) -. arr.(lo)))
    end

let stddev = function
  | [] -> 0.0
  | xs ->
    let m = mean xs in
    sqrt (mean (List.map (fun x -> (x -. m) *. (x -. m)) xs))

let median = function
  | [] -> 0.0
  | xs ->
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let ratio_pct a b = if b = 0.0 then 0.0 else (a -. b) /. b *. 100.0

let pearson pairs =
  match pairs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let n = float_of_int (List.length pairs) in
    let xs = List.map fst pairs and ys = List.map snd pairs in
    let mx = mean xs and my = mean ys in
    let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
    List.iter
      (fun (x, y) ->
        let dx = x -. mx and dy = y -. my in
        cov := !cov +. (dx *. dy);
        vx := !vx +. (dx *. dx);
        vy := !vy +. (dy *. dy))
      pairs;
    let denom = sqrt (!vx /. n) *. sqrt (!vy /. n) in
    if denom = 0.0 then 0.0 else !cov /. n /. denom

let pp_bytes fmt n =
  let f = float_of_int n in
  if f >= 1.0e9 then Format.fprintf fmt "%.1f GB" (f /. 1.0e9)
  else if f >= 1.0e6 then Format.fprintf fmt "%.0f MB" (f /. 1.0e6)
  else if f >= 1.0e3 then Format.fprintf fmt "%.0f KB" (f /. 1.0e3)
  else Format.fprintf fmt "%d B" n

let pp_count fmt n =
  let f = float_of_int n in
  if f >= 1.0e6 then Format.fprintf fmt "%.1f M" (f /. 1.0e6)
  else if f >= 1.0e3 then Format.fprintf fmt "%.0f K" (f /. 1.0e3)
  else Format.fprintf fmt "%d" n

(* Packed (src, dst) address-pair keys.

   Profile tables index on pairs of text-segment addresses. A tuple key
   costs one 3-word allocation per lookup *and* per insertion; packing
   both halves into one immediate int makes the pair hashable and
   comparable for free. 31 bits per half covers any text segment we can
   simulate (2 GiB), and 62 bits fit OCaml's 63-bit native int with the
   sign bit left clear. *)

let addr_bits = 31

let max_addr = (1 lsl addr_bits) - 1

let pack ~src ~dst =
  if src < 0 || src > max_addr || dst < 0 || dst > max_addr then
    invalid_arg
      (Printf.sprintf "Packed.pack: address out of range (src=%d dst=%d max=%d)" src dst
         max_addr);
  (src lsl addr_bits) lor dst

(* Unchecked variant for hot loops whose inputs are already image
   addresses (validated at build time). *)
let pack_unsafe ~src ~dst = (src lsl addr_bits) lor dst

let src key = key lsr addr_bits

let dst key = key land max_addr

(* Covering-interval binary search over sorted flat int arrays. The
   polymorphic-compare-free, closure-free core of every address-to-block
   lookup: [addrs] holds interval start addresses in ascending order,
   [sizes] the matching lengths. *)

let covering ~addrs ~sizes addr =
  let lo = ref 0 and hi = ref (Array.length addrs - 1) and found = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) lsr 1 in
    let a = Array.unsafe_get addrs mid in
    if addr < a then hi := mid - 1
    else if addr >= a + Array.unsafe_get sizes mid then lo := mid + 1
    else begin
      found := mid;
      lo := !hi + 1
    end
  done;
  !found

let covering_batch ~addrs ~sizes queries =
  let n = Array.length queries in
  let out = Array.make n (-1) in
  for i = 0 to n - 1 do
    out.(i) <- covering ~addrs ~sizes (Array.unsafe_get queries i)
  done;
  out

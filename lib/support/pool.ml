(* One contiguous slice of a batch's index space, owned by one worker.
   The owner pops from [lo]; thieves pop from [hi - 1]. Both ends move
   under the segment mutex — the critical section is a couple of loads
   and a store, so contention stays negligible next to task bodies. *)
type segment = { seg_m : Mutex.t; mutable lo : int; mutable hi : int }

type batch = {
  run : int -> unit;
  segments : segment array;
  mutable finished_workers : int;  (* guarded by the pool mutex *)
  (* First (lowest task index) exception observed, guarded by the pool
     mutex; re-raised by the coordinator so failure is deterministic. *)
  mutable first_error : (int * exn * Printexc.raw_backtrace) option;
  batch_tasks : int array;  (* per worker; each slot written by its owner *)
  batch_steals : int array;
}

type stats = { tasks_per_worker : int array; steals : int; batches : int }

type t = {
  n_jobs : int;
  m : Mutex.t;
  work : Condition.t;  (* new batch available / stop requested *)
  done_ : Condition.t;  (* a worker finished its share of the batch *)
  mutable batch : batch option;
  mutable generation : int;
  mutable stop : bool;
  mutable domains : unit Domain.t array;  (* spawned lazily; n_jobs - 1 *)
  cum_tasks : int array;
  mutable cum_steals : int;
  mutable cum_batches : int;
}

(* --- defaults and the shared pool --------------------------------- *)

let env_jobs () =
  match Sys.getenv_opt "PROPELLER_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | Some _ | None -> None)

let default_jobs_override = ref None

let default_jobs () =
  match !default_jobs_override with
  | Some j -> j
  | None -> ( match env_jobs () with Some j -> j | None -> 1)

let set_default_jobs j =
  if j < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  default_jobs_override := Some j

let jobs t = t.n_jobs

let create ?jobs () =
  let n_jobs = match jobs with Some j -> j | None -> default_jobs () in
  if n_jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  {
    n_jobs;
    m = Mutex.create ();
    work = Condition.create ();
    done_ = Condition.create ();
    batch = None;
    generation = 0;
    stop = false;
    domains = [||];
    cum_tasks = Array.make n_jobs 0;
    cum_steals = 0;
    cum_batches = 0;
  }

(* --- worker protocol ----------------------------------------------- *)

(* Tasks must not re-enter the pool's barrier (a worker waiting on a
   nested batch would starve the outer one), so batches issued from
   inside a task run inline on the calling domain. *)
let inside_task : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let take_own (s : segment) =
  Mutex.lock s.seg_m;
  let r =
    if s.lo < s.hi then begin
      let i = s.lo in
      s.lo <- s.lo + 1;
      Some i
    end
    else None
  in
  Mutex.unlock s.seg_m;
  r

let steal_from (s : segment) =
  Mutex.lock s.seg_m;
  let r =
    if s.lo < s.hi then begin
      s.hi <- s.hi - 1;
      Some s.hi
    end
    else None
  in
  Mutex.unlock s.seg_m;
  r

let record_error pool b idx e bt =
  Mutex.lock pool.m;
  (match b.first_error with
  | Some (i0, _, _) when i0 <= idx -> ()
  | Some _ | None -> b.first_error <- Some (idx, e, bt));
  Mutex.unlock pool.m

let run_task pool b idx =
  try b.run idx
  with e -> record_error pool b idx e (Printexc.get_raw_backtrace ())

(* Drain the batch as worker [w]: own segment first, then steal from
   the victim with the most remaining work (a scan is fine at pool
   widths; the paper's backends are O(10) wide, not O(10^3)). *)
let run_worker pool b w =
  let flag = Domain.DLS.get inside_task in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := false) @@ fun () ->
  let rec own () =
    match take_own b.segments.(w) with
    | Some i ->
      run_task pool b i;
      b.batch_tasks.(w) <- b.batch_tasks.(w) + 1;
      own ()
    | None -> steal ()
  and steal () =
    let victim = ref (-1) and best = ref 0 in
    Array.iteri
      (fun v s ->
        if v <> w then begin
          let remaining = s.hi - s.lo in
          if remaining > !best then begin
            best := remaining;
            victim := v
          end
        end)
      b.segments;
    if !victim < 0 then ()
    else
      match steal_from b.segments.(!victim) with
      | Some i ->
        run_task pool b i;
        b.batch_tasks.(w) <- b.batch_tasks.(w) + 1;
        b.batch_steals.(w) <- b.batch_steals.(w) + 1;
        steal ()
      | None -> steal ()  (* lost the race; rescan *)
  in
  own ()

let worker_loop pool wid =
  let my_gen = ref 0 in
  let rec loop () =
    Mutex.lock pool.m;
    while (not pool.stop) && pool.generation = !my_gen do
      Condition.wait pool.work pool.m
    done;
    if pool.stop then Mutex.unlock pool.m
    else begin
      my_gen := pool.generation;
      let b = Option.get pool.batch in
      Mutex.unlock pool.m;
      run_worker pool b wid;
      Mutex.lock pool.m;
      b.finished_workers <- b.finished_workers + 1;
      if b.finished_workers = pool.n_jobs then Condition.broadcast pool.done_;
      Mutex.unlock pool.m;
      loop ()
    end
  in
  loop ()

(* --- lifecycle ----------------------------------------------------- *)

let shutdown pool =
  Mutex.lock pool.m;
  pool.stop <- true;
  Condition.broadcast pool.work;
  let ds = pool.domains in
  pool.domains <- [||];
  Mutex.unlock pool.m;
  Array.iter Domain.join ds

(* Every pool that ever spawned a domain, so a single [at_exit] hook
   can join them all — leaked worker domains must never hang exit. *)
let live_pools : t list ref = ref []

let live_m = Mutex.create ()

let at_exit_installed = ref false

let register_live pool =
  Mutex.lock live_m;
  live_pools := pool :: !live_pools;
  if not !at_exit_installed then begin
    at_exit_installed := true;
    at_exit (fun () ->
        Mutex.lock live_m;
        let ps = !live_pools in
        live_pools := [];
        Mutex.unlock live_m;
        List.iter shutdown ps)
  end;
  Mutex.unlock live_m

let unregister_live pool =
  Mutex.lock live_m;
  live_pools := List.filter (fun p -> p != pool) !live_pools;
  Mutex.unlock live_m

let spawn_if_needed pool =
  if Array.length pool.domains = 0 && pool.n_jobs > 1 && not pool.stop then begin
    pool.domains <-
      Array.init (pool.n_jobs - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool (i + 1)));
    register_live pool
  end

(* --- batch execution ----------------------------------------------- *)

let run_sequential pool total run =
  for i = 0 to total - 1 do
    run i
  done;
  pool.cum_tasks.(0) <- pool.cum_tasks.(0) + total;
  pool.cum_batches <- pool.cum_batches + 1

let make_segments n_jobs total =
  let base = total / n_jobs and extra = total mod n_jobs in
  Array.init n_jobs (fun w ->
      let lo = (w * base) + min w extra in
      let len = base + if w < extra then 1 else 0 in
      { seg_m = Mutex.create (); lo; hi = lo + len })

let run_batch pool ~total run =
  if total = 0 then ()
  else if pool.n_jobs = 1 || pool.stop || total = 1 || !(Domain.DLS.get inside_task) then begin
    (* Sequential path: jobs=1, nested call, or degenerate batch. Runs
       in index order — the reference behaviour parallel runs must
       reproduce. Exceptions propagate directly from the failing task,
       which is also the lowest-index failure. *)
    let flag = Domain.DLS.get inside_task in
    let was = !flag in
    flag := true;
    Fun.protect ~finally:(fun () -> flag := was) @@ fun () ->
    run_sequential pool total run
  end
  else begin
    spawn_if_needed pool;
    if Array.length pool.domains = 0 then run_sequential pool total run
    else begin
      let b =
        {
          run;
          segments = make_segments pool.n_jobs total;
          finished_workers = 0;
          first_error = None;
          batch_tasks = Array.make pool.n_jobs 0;
          batch_steals = Array.make pool.n_jobs 0;
        }
      in
      Mutex.lock pool.m;
      pool.batch <- Some b;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.work;
      Mutex.unlock pool.m;
      run_worker pool b 0;
      Mutex.lock pool.m;
      b.finished_workers <- b.finished_workers + 1;
      if b.finished_workers = pool.n_jobs then Condition.broadcast pool.done_;
      while b.finished_workers < pool.n_jobs do
        Condition.wait pool.done_ pool.m
      done;
      pool.batch <- None;
      Mutex.unlock pool.m;
      Array.iteri (fun w k -> pool.cum_tasks.(w) <- pool.cum_tasks.(w) + k) b.batch_tasks;
      pool.cum_steals <- pool.cum_steals + Array.fold_left ( + ) 0 b.batch_steals;
      pool.cum_batches <- pool.cum_batches + 1;
      match b.first_error with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* --- derived operations -------------------------------------------- *)

let map_array pool n f =
  if n < 0 then invalid_arg "Pool.map_array: negative size";
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_batch pool ~total:n (fun i -> results.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list pool f xs =
  let arr = Array.of_list xs in
  Array.to_list (map_array pool (Array.length arr) (fun i -> f arr.(i)))

let map_reduce pool ~n ~task ~init ~fold = Array.fold_left fold init (map_array pool n task)

let parallel_iter pool ~n f =
  if n < 0 then invalid_arg "Pool.parallel_iter: negative size";
  run_batch pool ~total:n f

let stats pool =
  { tasks_per_worker = Array.copy pool.cum_tasks; steals = pool.cum_steals; batches = pool.cum_batches }

let reset_stats pool =
  Array.fill pool.cum_tasks 0 (Array.length pool.cum_tasks) 0;
  pool.cum_steals <- 0;
  pool.cum_batches <- 0

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect
    ~finally:(fun () ->
      shutdown pool;
      unregister_live pool)
    (fun () -> f pool)

(* The shared default pool. Swapped out (old workers joined) when the
   process default changes — [--jobs] flags call [set_default_jobs]
   once at startup, before any build runs. *)
let global_pool = ref None

let global () =
  match !global_pool with
  | Some p when p.n_jobs = default_jobs () && not p.stop -> p
  | prev ->
    (match prev with
    | Some p ->
      shutdown p;
      unregister_live p
    | None -> ());
    let p = create ~jobs:(default_jobs ()) () in
    global_pool := Some p;
    p

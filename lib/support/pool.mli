(** A fixed-size work-stealing domain pool (OCaml 5 [Domain]s).

    The pool runs batches of independent, integer-indexed tasks. Tasks
    are split into one contiguous segment per worker; a worker drains
    its own segment from the front and, when empty, steals from the
    back of the most loaded victim — classic work stealing, hand-rolled
    on [Domain]/[Mutex]/[Condition] (no external deps).

    {b Determinism guarantee}: results are committed in task-index
    order, so every [map_*]/[map_reduce] result is identical for any
    [jobs] value — byte-identical outputs are the contract the relink
    pipeline builds on (the paper's parallel sharding must not change
    the image, §3.4). Only wall-clock time and the per-domain telemetry
    in {!stats} vary with [jobs].

    A pool of [jobs = 1] never spawns a domain and runs every batch
    inline in index order — exactly the sequential code path. Worker
    domains are spawned lazily on the first parallel batch and torn
    down by {!shutdown} (also installed via [at_exit] as a backstop, so
    a forgotten pool cannot hang process exit).

    Nested use is safe: a task that itself calls into the pool (any
    pool) runs that inner batch sequentially inline, avoiding worker
    starvation deadlocks. *)

type t

(** [default_jobs ()] is the pool width used when none is given
    explicitly: the last {!set_default_jobs} value, else the
    [PROPELLER_JOBS] environment variable, else 1. *)
val default_jobs : unit -> int

(** [set_default_jobs j] sets the process-wide default (the [--jobs N]
    CLI flags call this). Raises [Invalid_argument] when [j < 1]. *)
val set_default_jobs : int -> unit

(** [create ?jobs ()] makes a pool of [jobs] workers (default
    {!default_jobs}). Raises [Invalid_argument] when [jobs < 1]. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** [global ()] is the shared pool sized to {!default_jobs} — what
    [Buildsys.Driver.make_env] uses when no pool is passed. Re-created
    (old one shut down) if the default changed since the last call. *)
val global : unit -> t

(** [map_array pool n f] computes [[| f 0; ...; f (n-1) |]] across the
    pool. If any task raises, the exception of the {e lowest} raising
    index is re-raised (deterministically) after the batch drains. *)
val map_array : t -> int -> (int -> 'a) -> 'a array

(** [map_list pool f xs] is [List.map f xs] across the pool. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [map_reduce pool ~n ~task ~init ~fold] folds task results in index
    order: [fold (... (fold init (task 0))) (task (n-1))]. *)
val map_reduce : t -> n:int -> task:(int -> 'a) -> init:'b -> fold:('b -> 'a -> 'b) -> 'b

(** [parallel_iter pool ~n f] runs [f i] for [0 <= i < n]; [f] must
    only write state owned by task [i] (e.g. slot [i] of an array). *)
val parallel_iter : t -> n:int -> (int -> unit) -> unit

(** Cumulative fan-out telemetry since the last {!reset_stats}: how
    many tasks each worker executed, how many of those were stolen from
    another worker's segment, and the number of batches run. Per-domain
    assignment is scheduling-dependent — informational only, never part
    of judged output. *)
type stats = { tasks_per_worker : int array; steals : int; batches : int }

val stats : t -> stats

val reset_stats : t -> unit

(** [shutdown pool] joins all worker domains. Idempotent; the pool
    falls back to inline sequential execution afterwards. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] runs [f] on a fresh pool and shuts it down on
    the way out (exceptions included). *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(** The unified execution context threaded through the build/relink
    pipeline.

    Before this module existed, every entry point grew its own
    [?recorder]/[?pool] optional arguments ([Buildsys.Driver.make_env],
    [Propeller.Wpa.analyze], [Codegen.compile_unit],
    [Linker.Link.link], [Uarch.Core.publish],
    [Diagnostics.Report.publish] — six hand-maintained copies of the
    same plumbing). A [Ctx.t] collapses that sprawl into one record —
    telemetry scope, domain pool, pool width, and the fault-injection
    plan of this run — passed explicitly as [?ctx].

    Every entry point takes [?ctx] directly; the transitional
    [@deprecated] [*_legacy] shims have been removed. *)

type t = {
  recorder : Obs.Recorder.t;  (** Telemetry scope (spans, counters). *)
  pool : Pool.t;  (** Domain pool for per-function/per-unit fan-out. *)
  jobs : int;  (** The pool's width, denormalized for reporting. *)
  faults : Faultsim.Plan.t option;
      (** The seeded fault plan driving this run's injected action
          failures, stragglers, cache rot and shard drops; [None]
          disables injection entirely (the fault-free fast path). *)
}

(** [create ()] assembles a context. [recorder] defaults to
    {!Obs.Recorder.global}; [pool] defaults to {!Pool.global} (sized by
    [--jobs] / [PROPELLER_JOBS]) unless [jobs] is given, in which case
    a fresh pool of that width is created (caller shuts it down, or
    relies on the pool's at-exit backstop). [faults] defaults to no
    injection. *)
val create :
  ?recorder:Obs.Recorder.t ->
  ?pool:Pool.t ->
  ?jobs:int ->
  ?faults:Faultsim.Plan.t ->
  unit ->
  t

(** [default ()] is [create ()]: global recorder, global pool, no
    faults. Cheap to call; not cached (the global pool may be resized
    between calls by [Pool.set_default_jobs]). *)
val default : unit -> t

(** [with_recorder t r] is [t] recording into [r] instead. *)
val with_recorder : t -> Obs.Recorder.t -> t

(** [with_faults t plan] is [t] with the fault plan replaced. *)
val with_faults : t -> Faultsim.Plan.t option -> t

(** [faults_active t] is true when a plan is present and any of its
    rates is positive. *)
val faults_active : t -> bool

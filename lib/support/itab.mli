(** Flat open-addressing int -> int hash table.

    Zero-allocation steady-state bumps and lookups: keys and values
    live in two plain int arrays (linear probing, power-of-two
    capacity, load factor <= 1/2). Keys must be non-negative —
    addresses and {!Packed} pair keys are.

    Iteration order is slot order: deterministic for a given insertion
    sequence but not sorted; use {!sorted_items} for canonical dumps.
    Consumers that were robust to stdlib [Hashtbl]'s order keep the
    same contract here. *)

type t

val create : int -> t
(** [create n] sizes the table for about [n] expected keys. *)

val length : t -> int
(** Number of distinct keys present. *)

val add : t -> int -> int -> unit
(** [add t key delta] bumps [key]'s value by [delta], inserting it at
    [delta] when absent. Raises [Invalid_argument] on negative keys. *)

val set : t -> int -> int -> unit
(** [set t key v] binds [key] to [v], replacing any previous value. *)

val find : t -> int -> int
(** [find t key] is [key]'s value, or [0] when absent. *)

val find_default : t -> default:int -> int -> int
(** [find_default t ~default key] is [key]'s value, or [default]. *)

val mem : t -> int -> bool

val iter : (int -> int -> unit) -> t -> unit
(** [iter f t] applies [f key value] in slot order. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val sorted_items : t -> (int * int) array
(** All (key, value) pairs sorted by key — canonical content order. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* Inlined so callers see the whole Int64 chain and the intermediates
   stay unboxed — this hash runs once per simulated branch decision. *)
let[@inline] mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }

let fnv64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_string s = create (fnv64 s)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t tag =
  (* Derive a child state from the parent state and tag without advancing
     the parent, so sibling streams are independent of iteration order. *)
  let child = mix64 (Int64.add t.state (Int64.of_int ((tag * 2) + 1))) in
  create child

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value stays non-negative in OCaml's native int. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t p = float t < p

let geometric t p =
  let p = if p <= 0.0 then 1e-9 else if p > 1.0 then 1.0 else p in
  let rec loop n = if n >= 10_000 || bool t p then n else loop (n + 1) in
  loop 1

let pareto t ~alpha ~xmin =
  let u = 1.0 -. float t in
  let u = if u <= 0.0 then 1e-12 else u in
  xmin /. (u ** (1.0 /. alpha))

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let[@inline] hash_float k1 k2 =
  let h = mix64 (Int64.add (Int64.of_int k1) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (k2 + 1)))) in
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let[@inline] hash_choice k1 k2 p = hash_float k1 k2 < p

(* Weighted pick: first index whose cumulative weight exceeds the draw,
   else the last. Lives next to [hash_float] on purpose — intra-module
   inlining keeps the draw unboxed; a cross-module caller would box the
   returned float once per pick. *)
let hash_pick k1 k2 idx cum =
  let r = hash_float k1 k2 in
  let n = Array.length idx in
  let i = ref 0 in
  while !i < n - 1 && r >= Array.unsafe_get cum !i do
    incr i
  done;
  Array.unsafe_get idx !i

(* Same draw and walk as [hash_pick], but returns the position instead
   of an element — for callers whose choices live in a parallel array
   of [n] entries. *)
let hash_pick_pos k1 k2 cum n =
  let r = hash_float k1 k2 in
  let i = ref 0 in
  while !i < n - 1 && r >= Array.unsafe_get cum !i do
    incr i
  done;
  !i

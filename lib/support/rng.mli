(** Deterministic pseudo-random number generation.

    Every stochastic choice in the simulator flows through this module so
    that all experiments are reproducible bit-for-bit. The generator is
    splitmix64, which is cheap, has a 64-bit state, and supports O(1)
    derivation of independent sub-streams ({!split}). *)

type t

(** [create seed] returns a fresh generator seeded with [seed]. *)
val create : int64 -> t

(** [of_string s] seeds a generator from the FNV-1a hash of [s]; used to
    derive stable per-entity streams (e.g. one stream per function). *)
val of_string : string -> t

(** [split t tag] derives an independent generator from [t] and [tag]
    without perturbing [t]. *)
val split : t -> int -> t

(** [next t] returns the next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] returns a uniform integer in [\[0, bound)]. [bound] must
    be positive. *)
val int : t -> int -> int

(** [float t] returns a uniform float in [\[0, 1)]. *)
val float : t -> float

(** [bool t p] returns [true] with probability [p]. *)
val bool : t -> float -> bool

(** [geometric t p] samples a geometric number of trials (>= 1) with
    success probability [p]; capped at 10_000 to bound loops. *)
val geometric : t -> float -> int

(** [pareto t ~alpha ~xmin] samples a Pareto-distributed float; used for
    heavy-tailed hotness distributions typical of warehouse workloads. *)
val pareto : t -> alpha:float -> xmin:float -> float

(** [choose t arr] picks a uniform element of [arr]. [arr] must be
    non-empty. *)
val choose : t -> 'a array -> 'a

(** [shuffle t arr] shuffles [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [hash_choice key1 key2 p] is a stateless biased coin: returns [true]
    with probability [p], determined only by the two integer keys. The
    execution engine uses it so that a program's control flow is a pure
    function of (block id, visit count), independent of code layout. *)
val hash_choice : int -> int -> float -> bool

(** [hash_pick key1 key2 idx cum] draws [hash_float key1 key2] and
    returns [idx.(i)] for the first [i] with the draw below [cum.(i)]
    ([cum] = cumulative weights, ascending), else the last entry.
    Weighted virtual-call and switch picks in the interpreter's hot
    loop: allocation-free. *)
val hash_pick : int -> int -> int array -> float array -> int

(** [hash_pick_pos key1 key2 cum n] is {!hash_pick} returning the chosen
    *position* in [0, n) instead of an element, for callers whose
    choices live in a parallel array of [n] entries. Identical draw and
    walk, so the two agree for equal [n]. *)
val hash_pick_pos : int -> int -> float array -> int -> int

(** [hash_float key1 key2] is the underlying stateless uniform float in
    [\[0, 1)]; used for multi-way choices (switches, virtual calls). *)
val hash_float : int -> int -> float

(** Small statistics helpers used by benches and the cost models. *)

(** [mean xs] is the arithmetic mean; 0 for the empty list. *)
val mean : float list -> float

(** [geomean xs] is the geometric mean of positive values; 0 for empty. *)
val geomean : float list -> float

(** [percentile p xs] is the [p]-th percentile (0..100) by linear
    interpolation between closest ranks on a sorted copy (numpy's
    "linear" method, matching [Obs.Metrics] summaries): exact for small
    samples — any percentile of a singleton is that sample, and
    [percentile 50.] equals {!median} for every length. Raises
    [Invalid_argument] on empty input. *)
val percentile : float -> float list -> float

(** [sum xs] sums the list. *)
val sum : float list -> float

(** [stddev xs] is the population standard deviation; 0 for the empty
    list (and for singletons, by the formula). *)
val stddev : float list -> float

(** [median xs] is the true median: the middle element of a sorted copy,
    or the mean of the two middle elements for even lengths; 0 for the
    empty list (where [percentile] raises). *)
val median : float list -> float

(** [ratio_pct a b] is [(a - b) / b * 100.], the percent change of [a]
    relative to [b]. *)
val ratio_pct : float -> float -> float

(** Pearson correlation coefficient of paired samples, in [-1, 1].
    0 for fewer than two pairs or when either side is constant. *)
val pearson : (float * float) list -> float

(** Human-readable byte counts, e.g. [72 MB], [413 MB], [1.7 GB]. *)
val pp_bytes : Format.formatter -> int -> unit

(** Human-readable counts, e.g. [160 K], [2.1 M]. *)
val pp_count : Format.formatter -> int -> unit

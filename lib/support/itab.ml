(* Flat open-addressing int -> int hash table.

   The profile hot path bumps one counter per retired taken branch;
   stdlib [Hashtbl] costs a bucket cons per insert and an option per
   lookup, and with tuple keys another allocation per probe. This table
   keeps keys and values in two plain int arrays (linear probing,
   power-of-two capacity, load factor <= 1/2), so steady-state bumps
   allocate nothing.

   Keys must be >= 0 (packed addresses and addresses are); [min_int]
   marks an empty slot. Iteration is in slot order, which is a
   deterministic function of the insertion sequence — the same contract
   stdlib [Hashtbl] gave the order-robust consumers. *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  mutable size : int;
}

let empty_key = min_int

(* Multiplicative mixer (62-bit-safe odd constant) so dense address keys
   spread over the low bits the mask keeps. *)
let mix k =
  let h = k lxor (k lsr 31) in
  let h = h * 0x3C79AC492BA7B653 in
  h lxor (h lsr 29)

let capacity_for n =
  let rec go c = if c >= n then c else go (c * 2) in
  go 8

let create n =
  let cap = capacity_for (max 8 (2 * n)) in
  { keys = Array.make cap empty_key; vals = Array.make cap 0; mask = cap - 1; size = 0 }

let length t = t.size

(* Slot holding [key], or the empty slot where it would go. *)
let rec probe keys mask key i =
  let k = Array.unsafe_get keys i in
  if k = key || k = empty_key then i else probe keys mask key ((i + 1) land mask)

let slot t key = probe t.keys t.mask key (mix key land t.mask)

let grow t =
  let okeys = t.keys and ovals = t.vals in
  let cap = (t.mask + 1) * 2 in
  t.keys <- Array.make cap empty_key;
  t.vals <- Array.make cap 0;
  t.mask <- cap - 1;
  for i = 0 to Array.length okeys - 1 do
    let k = Array.unsafe_get okeys i in
    if k <> empty_key then begin
      let j = slot t k in
      t.keys.(j) <- k;
      t.vals.(j) <- ovals.(i)
    end
  done

let add t key delta =
  if key < 0 then invalid_arg "Itab.add: negative key";
  let i = slot t key in
  if Array.unsafe_get t.keys i = empty_key then begin
    t.keys.(i) <- key;
    t.vals.(i) <- delta;
    t.size <- t.size + 1;
    if 2 * t.size > t.mask then grow t
  end
  else t.vals.(i) <- t.vals.(i) + delta

let set t key v =
  if key < 0 then invalid_arg "Itab.set: negative key";
  let i = slot t key in
  if Array.unsafe_get t.keys i = empty_key then begin
    t.keys.(i) <- key;
    t.vals.(i) <- v;
    t.size <- t.size + 1;
    if 2 * t.size > t.mask then grow t
  end
  else t.vals.(i) <- v

let find_default t ~default key =
  if key < 0 then default
  else begin
    let i = slot t key in
    if Array.unsafe_get t.keys i = empty_key then default else Array.unsafe_get t.vals i
  end

let find t key = find_default t ~default:0 key

let mem t key =
  key >= 0 && Array.unsafe_get t.keys (slot t key) <> empty_key

let iter f t =
  let keys = t.keys and vals = t.vals in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k <> empty_key then f k (Array.unsafe_get vals i)
  done

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let sorted_items t =
  let a = Array.make t.size (0, 0) in
  let n = ref 0 in
  iter
    (fun k v ->
      a.(!n) <- (k, v);
      incr n)
    t;
  Array.sort compare a;
  a

(** Covering-interval binary search over sorted flat int arrays.

    The allocation-free core of address-to-block resolution: intervals
    are given as parallel [addrs] (ascending start addresses) and
    [sizes] arrays; a query returns the index of the interval covering
    it. Intervals are assumed disjoint. *)

val covering : addrs:int array -> sizes:int array -> int -> int
(** [covering ~addrs ~sizes addr] is the index [i] with
    [addrs.(i) <= addr < addrs.(i) + sizes.(i)], or [-1] when no
    interval covers [addr]. *)

val covering_batch : addrs:int array -> sizes:int array -> int array -> int array
(** [covering_batch ~addrs ~sizes queries] resolves every query:
    [out.(j) = covering ~addrs ~sizes queries.(j)]. *)

(** Packed (src, dst) address-pair keys for flat profile tables.

    One immediate int per pair instead of a heap tuple: 31 bits per
    address half (2 GiB of text), 62 bits total, sign bit clear. The
    encoding is order-preserving: sorting packed keys sorts by (src,
    dst) lexicographically. *)

val addr_bits : int
(** Bits per address half (31). *)

val max_addr : int
(** Largest packable address, [2^addr_bits - 1]. *)

val pack : src:int -> dst:int -> int
(** [pack ~src ~dst] packs a pair. Raises [Invalid_argument] when either
    half is negative or exceeds {!max_addr}. *)

val pack_unsafe : src:int -> dst:int -> int
(** Unchecked {!pack} for hot loops over already-validated addresses. *)

val src : int -> int
(** First half of a packed key. *)

val dst : int -> int
(** Second half of a packed key. *)

type t = { hi : int64; lo : int64 }

let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

let compare a b =
  let c = Int64.compare a.hi b.hi in
  if c <> 0 then c else Int64.compare a.lo b.lo

let hash a = Int64.to_int (Int64.logxor a.hi a.lo)

let mask32 = 0xFFFFFFFF

(* One FNV-1a stream, computed in 32-bit halves on native ints: Int64
   arithmetic boxes every intermediate on the classic compiler, which
   made digesting the dominant allocator of warm relink keys. The FNV
   prime is 2^40 + 0x1B3, so h*prime mod 2^64 reduces to a byte shift
   and one small multiply per half — bit-identical to the Int64
   reference (the unit tests keep one and compare). [extra], when
   non-negative, is processed as one trailing byte — the lo stream's
   "\x01" suffix without copying the string. *)
let fnv32 ~hi0 ~lo0 s ~extra =
  let hi = ref hi0 and lo = ref lo0 in
  let n = String.length s in
  for i = 0 to n - 1 do
    let l = !lo lxor Char.code (String.unsafe_get s i) in
    let pl = l * 0x1B3 in
    hi := ((l lsl 8) + (!hi * 0x1B3) + (pl lsr 32)) land mask32;
    lo := pl land mask32
  done;
  if extra >= 0 then begin
    let l = !lo lxor extra in
    let pl = l * 0x1B3 in
    hi := ((l lsl 8) + (!hi * 0x1B3) + (pl lsr 32)) land mask32;
    lo := pl land mask32
  end;
  Int64.logor (Int64.shift_left (Int64.of_int !hi) 32) (Int64.of_int !lo)

let of_string s =
  {
    hi = fnv32 ~hi0:0xCBF29CE4 ~lo0:0x84222325 s ~extra:(-1);
    lo = fnv32 ~hi0:0x84222325 ~lo0:0xCBF29CE4 s ~extra:1;
  }

let hex_digits = "0123456789abcdef"

(* Same rendering as [Printf.sprintf "%016Lx%016Lx"], without the
   format machinery: action-key hex feeds fault-plan decisions, so the
   bytes must stay identical. *)
let to_hex d =
  let b = Bytes.create 32 in
  let put off v64 =
    let hi = Int64.to_int (Int64.shift_right_logical v64 32) land mask32 in
    let lo = Int64.to_int v64 land mask32 in
    for i = 0 to 7 do
      Bytes.unsafe_set b (off + i) hex_digits.[(hi lsr ((7 - i) * 4)) land 0xF];
      Bytes.unsafe_set b (off + 8 + i) hex_digits.[(lo lsr ((7 - i) * 4)) land 0xF]
    done
  in
  put 0 d.hi;
  put 16 d.lo;
  Bytes.unsafe_to_string b

let concat ds =
  let buf = Buffer.create (32 * List.length ds) in
  List.iter (fun d -> Buffer.add_string buf (to_hex d)) ds;
  of_string (Buffer.contents buf)

let pp fmt d = Format.pp_print_string fmt (to_hex d)

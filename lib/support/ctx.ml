type t = {
  recorder : Obs.Recorder.t;
  pool : Pool.t;
  jobs : int;
  faults : Faultsim.Plan.t option;
}

let create ?recorder ?pool ?jobs ?faults () =
  let recorder = match recorder with Some r -> r | None -> Obs.Recorder.global in
  let pool =
    match (pool, jobs) with
    | Some p, _ -> p
    | None, Some j -> Pool.create ~jobs:j ()
    | None, None -> Pool.global ()
  in
  { recorder; pool; jobs = Pool.jobs pool; faults }

let default () = create ()

let with_recorder t recorder = { t with recorder }

let with_faults t faults = { t with faults }

let faults_active t =
  match t.faults with Some p -> Faultsim.Plan.is_active p | None -> false

(** Seeded, replayable fault plans for the distributed build/relink
    simulation (paper §3.1, §3.4).

    A plan is a small record of fault {e rates} plus a seed; every
    concrete fault decision — does backend action [k] fail on attempt
    [a], does cache entry [k] rot, is profile shard [s] dropped — is a
    {e pure function} of (plan, identity). Nothing is pre-drawn and no
    generator state is consumed, so decisions are independent of
    evaluation order: the same plan replays identically whether the
    build fans out over 1 domain or 16, which is what makes the
    fault-injection invariant testable (same seed + plan ⇒ byte-identical
    image).

    The library is dependency-free on purpose: it sits {e below}
    [Support] in the stack so that [Support.Ctx] can carry a plan
    through every pipeline entry point. *)

type t = {
  seed : int;  (** Stream selector; two seeds give independent plans. *)
  action_fail : float;
      (** Per-attempt probability that a backend (codegen) action
          fails transiently; retried with exponential backoff. *)
  persist : float;
      (** Probability that a compilation unit is {e persistently}
          failing: every attempt fails, and the build degrades to the
          unit's last known-good object when one exists. *)
  straggle : float;
      (** Probability that a scheduled action straggles (runs at
          [straggle_factor] its nominal cost). *)
  straggle_factor : float;  (** Slowdown multiplier of a straggler. *)
  corrupt : float;
      (** Probability that a freshly stored cache entry rots in place
          (detected by digest-verified reads, then evicted). *)
  shard_drop : float;
      (** Probability that one of the [shards] profile shards never
          arrives; hot functions whose samples live in dropped shards
          keep their baseline layout. *)
  shards : int;  (** Number of profile shards the collection models. *)
  max_attempts : int;
      (** Attempt budget per action (1 = no retries). A transiently
          failing action is forced to succeed on the last attempt so
          the link always completes. *)
  backoff_base : float;  (** Seconds before the first retry. *)
  backoff_mult : float;  (** Exponential backoff multiplier. *)
}

(** All rates zero (nothing injected), seed 0, 16 shards, 4 attempts,
    0.5 s base backoff doubling per retry. *)
val default : t

(** [is_active t] is true when any fault rate is positive. *)
val is_active : t -> bool

(** [of_spec s] parses a [--faults] plan spec: comma-separated [k=v]
    pairs over the keys [seed], [action], [persist], [straggle],
    [straggle-factor], [corrupt], [shard-drop], [shards], [attempts],
    [backoff], [backoff-mult]; unset keys keep {!default}s. Rates must
    lie in [0, 1]. E.g. ["seed=7,action=0.2,corrupt=0.05"]. *)
val of_spec : string -> (t, string) result

(** [to_spec t] renders the canonical spec string; round-trips through
    {!of_spec}. *)
val to_spec : t -> string

(* Decisions — all pure and stateless. *)

(** [attempt_fails t ~key ~attempt] — does attempt [attempt] (1-based)
    of the action identified by [key] fail transiently? *)
val attempt_fails : t -> key:string -> attempt:int -> bool

(** [attempts_for t ~key] is the attempt on which action [key] first
    succeeds, in [1 .. max_attempts]; an action whose whole budget
    would fail is forced to succeed on the last attempt. *)
val attempts_for : t -> key:string -> int

(** [persistent t ~unit_name] — is this compilation unit persistently
    failing (every rebuild of it, under any action key)? *)
val persistent : t -> unit_name:string -> bool

(** [straggles t ~key] — does the scheduled action [key] straggle? *)
val straggles : t -> key:string -> bool

(** [corrupts t ~key] — does the cache entry stored under [key] rot? *)
val corrupts : t -> key:string -> bool

(** [shard_of t ~key] is the profile shard ([0 .. shards-1]) the
    samples of function [key] were collected into. *)
val shard_of : t -> key:string -> int

(** [shard_dropped t ~shard] — did shard [shard] never arrive? *)
val shard_dropped : t -> shard:int -> bool

(** [dropped_shards t] lists the dropped shard ids, ascending. *)
val dropped_shards : t -> int list

(** [backoff_seconds t ~retry] is the delay before retry [retry]
    (1-based): [backoff_base *. backoff_mult ^ (retry - 1)]. *)
val backoff_seconds : t -> retry:int -> float

(** [retry_cost t ~attempts ~cpu_seconds] is the extra modelled time a
    [cpu_seconds]-long action spends on [attempts - 1] failed runs and
    the backoff gaps between them. 0 when [attempts = 1]. *)
val retry_cost : t -> attempts:int -> cpu_seconds:float -> float

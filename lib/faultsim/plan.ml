type t = {
  seed : int;
  action_fail : float;
  persist : float;
  straggle : float;
  straggle_factor : float;
  corrupt : float;
  shard_drop : float;
  shards : int;
  max_attempts : int;
  backoff_base : float;
  backoff_mult : float;
}

let default =
  {
    seed = 0;
    action_fail = 0.0;
    persist = 0.0;
    straggle = 0.0;
    straggle_factor = 8.0;
    corrupt = 0.0;
    shard_drop = 0.0;
    shards = 16;
    max_attempts = 4;
    backoff_base = 0.5;
    backoff_mult = 2.0;
  }

let is_active t =
  t.action_fail > 0.0 || t.persist > 0.0 || t.straggle > 0.0 || t.corrupt > 0.0
  || t.shard_drop > 0.0

(* FNV-1a + a splitmix64 finalizer: a dependency-free stateless hash.
   Every decision below draws one uniform float from it, keyed by
   (seed, decision kind, identity) — no generator state, so decisions
   are order- and parallelism-independent by construction. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let raw t ~salt ~key ~n =
  mix (fnv1a (Printf.sprintf "%d|%d|%d|%s" t.seed salt n key))

let unit_float t ~salt ~key ~n =
  Int64.to_float (Int64.shift_right_logical (raw t ~salt ~key ~n) 11)
  *. (1.0 /. 9007199254740992.0)

let attempt_fails t ~key ~attempt =
  unit_float t ~salt:1 ~key ~n:attempt < t.action_fail

let attempts_for t ~key =
  let rec go a =
    if a >= t.max_attempts then t.max_attempts
    else if attempt_fails t ~key ~attempt:a then go (a + 1)
    else a
  in
  go 1

let persistent t ~unit_name = unit_float t ~salt:2 ~key:unit_name ~n:0 < t.persist

let straggles t ~key = unit_float t ~salt:3 ~key ~n:0 < t.straggle

let corrupts t ~key = unit_float t ~salt:4 ~key ~n:0 < t.corrupt

let shard_of t ~key =
  if t.shards <= 1 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (raw t ~salt:5 ~key ~n:0) 1)
                       (Int64.of_int t.shards))

let shard_dropped t ~shard =
  unit_float t ~salt:6 ~key:(string_of_int shard) ~n:0 < t.shard_drop

let dropped_shards t =
  List.filter (fun s -> shard_dropped t ~shard:s) (List.init t.shards Fun.id)

let backoff_seconds t ~retry =
  if retry < 1 then invalid_arg "Plan.backoff_seconds: retry must be >= 1";
  t.backoff_base *. (t.backoff_mult ** float_of_int (retry - 1))

let retry_cost t ~attempts ~cpu_seconds =
  let rec go r acc =
    if r > attempts - 1 then acc
    else go (r + 1) (acc +. cpu_seconds +. backoff_seconds t ~retry:r)
  in
  go 1 0.0

(* --- spec strings ------------------------------------------------- *)

let to_spec t =
  Printf.sprintf
    "seed=%d,action=%g,persist=%g,straggle=%g,straggle-factor=%g,corrupt=%g,shard-drop=%g,shards=%d,attempts=%d,backoff=%g,backoff-mult=%g"
    t.seed t.action_fail t.persist t.straggle t.straggle_factor t.corrupt t.shard_drop
    t.shards t.max_attempts t.backoff_base t.backoff_mult

let of_spec s =
  let parse_int key v =
    match int_of_string_opt (String.trim v) with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "%s: integer expected, got %S" key v)
  in
  let parse_float key v =
    match float_of_string_opt (String.trim v) with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "%s: number expected, got %S" key v)
  in
  let parse_rate key v =
    match parse_float key v with
    | Ok f when f >= 0.0 && f <= 1.0 -> Ok f
    | Ok f -> Error (Printf.sprintf "%s: rate must be in [0, 1], got %g" key f)
    | Error _ as e -> e
  in
  let ( let* ) = Result.bind in
  let apply t kv =
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
    | Some i ->
      let key = String.trim (String.sub kv 0 i) in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      (match key with
      | "seed" ->
        let* n = parse_int key v in
        Ok { t with seed = n }
      | "action" ->
        let* r = parse_rate key v in
        Ok { t with action_fail = r }
      | "persist" ->
        let* r = parse_rate key v in
        Ok { t with persist = r }
      | "straggle" ->
        let* r = parse_rate key v in
        Ok { t with straggle = r }
      | "straggle-factor" ->
        let* f = parse_float key v in
        if f < 1.0 then Error "straggle-factor: must be >= 1"
        else Ok { t with straggle_factor = f }
      | "corrupt" ->
        let* r = parse_rate key v in
        Ok { t with corrupt = r }
      | "shard-drop" ->
        let* r = parse_rate key v in
        Ok { t with shard_drop = r }
      | "shards" ->
        let* n = parse_int key v in
        if n < 1 then Error "shards: must be >= 1" else Ok { t with shards = n }
      | "attempts" ->
        let* n = parse_int key v in
        if n < 1 then Error "attempts: must be >= 1" else Ok { t with max_attempts = n }
      | "backoff" ->
        let* f = parse_float key v in
        if f < 0.0 then Error "backoff: must be >= 0" else Ok { t with backoff_base = f }
      | "backoff-mult" ->
        let* f = parse_float key v in
        if f < 1.0 then Error "backoff-mult: must be >= 1"
        else Ok { t with backoff_mult = f }
      | _ ->
        Error
          (Printf.sprintf
             "unknown fault key %S (known: seed action persist straggle straggle-factor \
              corrupt shard-drop shards attempts backoff backoff-mult)"
             key))
  in
  String.split_on_char ',' s
  |> List.filter (fun kv -> String.trim kv <> "")
  |> List.fold_left (fun acc kv -> Result.bind acc (fun t -> apply t kv)) (Ok default)

(** The self-profiler: where the *simulator itself* spends host time
    and allocation, attributed to the same spans the simulated-clock
    {!Trace} records.

    Every {!Obs.Recorder.with_span} additionally opens a self-profile
    frame when profiling is enabled; on close, the frame's host-clock
    and GC deltas ({!Hostclock}) accumulate under the span's *path* —
    the ";"-joined names of the open span stack, e.g.
    ["round:1;phase:wpa"]. Self (exclusive) figures subtract time and
    words consumed by child spans, so a parent is never charged twice.

    Disabled (the default), a profiler costs one branch per span and
    records nothing — enabling it provably changes no simulated output
    (tested as a qcheck law: same image digest, same metrics JSON).

    Determinism contract: the set of paths and the per-path [count]s
    are functions of the deterministic span tree; host seconds and word
    counts are informational and differ run to run. Frames are opened
    and closed on the coordinator domain only (pool workers report via
    {!Obs.Trace.complete} lanes, which carry no self-profile). *)

type t

val create : unit -> t

(** [enable t] turns profiling on (idempotent; there is deliberately no
    disable — a half-profiled run renders a misleading profile). *)
val enable : t -> unit

val enabled : t -> bool

(** [reset t] drops all accumulated frames and aggregates; the enabled
    flag is preserved. *)
val reset : t -> unit

(** An open frame, as returned by {!enter}: [None] when profiling is
    disabled. *)
type frame

(** [enter t name] opens a frame under the innermost open frame.
    Callers must balance every [enter] with {!leave} (use {!with_span}
    unless interleaving with other bookkeeping, as the recorder does). *)
val enter : t -> string -> frame option

val leave : t -> frame option -> unit

(** [with_span t name f] runs [f] inside a frame (closed on raise). *)
val with_span : t -> string -> (unit -> 'a) -> 'a

(** One aggregated span path. Inclusive fields ([host_s],
    [alloc_words], GC words/collections) cover the whole subtree;
    [self_*] fields are exclusive of child spans. *)
type row = {
  path : string;
  name : string;  (** Leaf component of [path]. *)
  count : int;
  host_s : float;
  self_host_s : float;
  alloc_words : float;
  self_alloc_words : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

(** [rows t] lists every path, sorted by path (deterministic order). *)
val rows : t -> row list

val num_paths : t -> int

(** A hotspot: rows merged by leaf span name, ranked by self host
    seconds (allocation words break ties). *)
type hotspot = {
  hname : string;
  hcount : int;
  hself_host_s : float;
  hhost_s : float;
  hself_alloc_words : float;
  hminor_collections : int;
  hmajor_collections : int;
}

val hotspots : ?limit:int -> t -> hotspot list

(** [hotspots_of_rows rows] ranks pre-loaded rows (the [--from FILE]
    path of [propeller_stat top]). *)
val hotspots_of_rows : ?limit:int -> row list -> hotspot list

(** [folded t] is flamegraph.pl-compatible folded-stack output: one
    ["path;to;span weight"] line per path, sorted by path. [`Host]
    weighs by self microseconds, [`Alloc] by self allocated words.
    Line structure is deterministic; [`Host] weights are not. *)
val folded : ?weight:[ `Host | `Alloc ] -> t -> string

val to_json : t -> Json.t

(** [rows_of_json j] re-reads an exported profile; [Error] when [j] is
    not a self-profile tree. *)
val rows_of_json : Json.t -> (row list, string) result

(** [render_hotspots hs] is the aligned text table [propeller_stat top]
    prints (top [limit] rows, default 15). *)
val render_hotspots : ?limit:int -> hotspot list -> string

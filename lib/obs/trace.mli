(** Nested span tracing on the simulated {!Clock}.

    A span covers the simulated-time interval of one unit of work
    (a pipeline phase, one distributed build, one link). Spans nest via
    a stack: a span opened while another is open becomes its child.
    Counter samples record named values at the current simulated time.

    {!to_chrome_json} exports everything in the Chrome trace-event
    format (an object with a ["traceEvents"] array of ["ph":"X"]
    complete-duration events and ["ph":"C"] counter events), directly
    loadable in Perfetto / chrome://tracing. Timestamps are integral
    microseconds of simulated time. *)

type arg = Int of int | Float of float | Str of string

type span = {
  id : int;  (** Creation order; root span of a run is 0. *)
  name : string;
  start : float;  (** Simulated seconds at open. *)
  duration : float;  (** Simulated seconds between open and close. *)
  depth : int;  (** Nesting depth; 0 for top-level spans. *)
  pid : int;  (** Chrome-trace process group; 1 for the coordinator,
                  one pid per fleet machine so Perfetto groups their
                  lanes under a named process. *)
  tid : int;  (** Chrome-trace lane; 1 for stack spans, one lane per
                  pool domain for parallel fan-out spans. *)
  args : (string * arg) list;
}

type t

val create : Clock.t -> t

val clock : t -> Clock.t

(** [with_span t name ?args f] opens a span, runs [f], and closes the
    span when [f] returns (or raises — the span is closed either way,
    so the trace stays well-nested). *)
val with_span : ?args:(string * arg) list -> t -> string -> (unit -> 'a) -> 'a

(** [complete ?pid ?tid ?args t name ~start ~duration] records an
    already-timed span on process [pid] (default 1), lane [tid]
    (default 1). This is how parallel phases report per-domain fan-out
    — the coordinator commits one span per worker domain after the
    batch, keeping the trace deterministic in structure while exposing
    the concurrency in Perfetto — and how fleet runs give every
    simulated machine its own process group. *)
val complete :
  ?pid:int ->
  ?tid:int ->
  ?args:(string * arg) list ->
  t ->
  string ->
  start:float ->
  duration:float ->
  unit

(** [set_process_name t ~pid name] attaches a human-readable name to a
    Chrome-trace process group, exported as a ["ph":"M"]
    ["process_name"] metadata event; the last call per pid wins. *)
val set_process_name : t -> pid:int -> string -> unit

(** [set_thread_name t ~pid ~tid name] names one lane of a process
    group (["thread_name"] metadata). *)
val set_thread_name : t -> pid:int -> tid:int -> string -> unit

(** [set_args t args] appends [args] to the innermost open span (for
    values only known at the end of the work). No-op when no span is
    open. *)
val set_args : t -> (string * arg) list -> unit

(** [counter t name values] records a counter sample at the current
    simulated time, e.g. [counter t "buildsys.cache" ["hits", 12.; ...]]. *)
val counter : t -> string -> (string * float) list -> unit

(** [spans t] lists completed spans sorted by (start time, id) —
    parents precede their children. *)
val spans : t -> span list

(** [find_spans t name] is [spans t] filtered by exact name. *)
val find_spans : t -> string -> span list

(** [num_events t] counts exportable events (spans + counter samples). *)
val num_events : t -> int

val to_chrome_json : t -> Json.t

(** [reset t] drops all recorded spans and counter samples (open spans
    included). *)
val reset : t -> unit

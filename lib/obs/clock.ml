type t = { start : float; mutable now : float }

let create ?(start = 0.0) () = { start; now = start }

let now t = t.now

let advance t dt =
  if dt < 0.0 then invalid_arg "Clock.advance: negative duration";
  t.now <- t.now +. dt

let reset t = t.now <- t.start

type kind = Counter | Gauge | Rate

let kind_to_string = function Counter -> "counter" | Gauge -> "gauge" | Rate -> "rate"

type summary = {
  index : int;
  start_s : float;
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  last : float;
  p50 : float;
  p99 : float;
  value : float;
}

type window = {
  w_index : int;
  mutable w_count : int;
  mutable w_sum : float;
  mutable w_min : float;
  mutable w_max : float;
  mutable w_last : float;
  mutable w_samples : float list;  (* reversed *)
}

type series = { s_kind : kind; mutable wins : window list (* newest first *) }

type t = {
  clk : Clock.t;
  width : float;
  capacity : int;
  decay : float;
  series : (string, series) Hashtbl.t;
}

let create ?(window_s = 1.0) ?(capacity = 120) ?(decay = 0.5) clk =
  if window_s <= 0.0 then invalid_arg "Timeseries.create: window_s must be positive";
  if capacity < 1 then invalid_arg "Timeseries.create: capacity must be positive";
  if decay < 0.0 || decay > 1.0 then invalid_arg "Timeseries.create: decay must be in [0, 1]";
  { clk; width = window_s; capacity; decay; series = Hashtbl.create 16 }

let window_s t = t.width

(* Window index of a simulated time. Quotients within 1e-9 of an
   integer snap to it, so a sample at exactly [k * window_s] opens
   window [k] even when the division is inexact (0.3 /. 0.1 < 3.0). *)
let index_of t now =
  let q = now /. t.width in
  let r = Float.round q in
  if Float.abs (q -. r) < 1e-9 then int_of_float r else int_of_float (floor q)

let fresh_window w_index =
  {
    w_index;
    w_count = 0;
    w_sum = 0.0;
    w_min = Float.infinity;
    w_max = Float.neg_infinity;
    w_last = 0.0;
    w_samples = [];
  }

let record t kind name v =
  let s =
    match Hashtbl.find_opt t.series name with
    | Some s ->
      if s.s_kind <> kind then
        invalid_arg
          (Printf.sprintf "Timeseries.record: %s is a %s series, not a %s" name
             (kind_to_string s.s_kind) (kind_to_string kind));
      s
    | None ->
      let s = { s_kind = kind; wins = [] } in
      Hashtbl.add t.series name s;
      s
  in
  let idx = index_of t (Clock.now t.clk) in
  let w =
    match s.wins with
    | w :: _ when w.w_index = idx -> w
    | _ ->
      let w = fresh_window idx in
      s.wins <- w :: s.wins;
      (* Drop windows beyond capacity (the ring). *)
      let rec cap n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: cap (n - 1) rest
      in
      s.wins <- cap t.capacity s.wins;
      w
  in
  w.w_count <- w.w_count + 1;
  w.w_sum <- w.w_sum +. v;
  w.w_min <- Float.min w.w_min v;
  w.w_max <- Float.max w.w_max v;
  w.w_last <- v;
  w.w_samples <- v :: w.w_samples

let add t name v = record t Counter name v

let set t name v = record t Gauge name v

let rate t name v = record t Rate name v

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.series [] |> List.sort String.compare

let kind_of t name = Option.map (fun s -> s.s_kind) (Hashtbl.find_opt t.series name)

let reading t kind (w : window) =
  if w.w_count = 0 then 0.0
  else
    match kind with
    | Counter -> w.w_sum
    | Gauge -> w.w_last
    | Rate -> w.w_sum /. t.width

let summarize t kind w =
  let empty = w.w_count = 0 in
  {
    index = w.w_index;
    start_s = float_of_int w.w_index *. t.width;
    count = w.w_count;
    sum = w.w_sum;
    vmin = (if empty then 0.0 else w.w_min);
    vmax = (if empty then 0.0 else w.w_max);
    last = w.w_last;
    p50 = (if empty then 0.0 else Metrics.percentile 50.0 w.w_samples);
    p99 = (if empty then 0.0 else Metrics.percentile 99.0 w.w_samples);
    value = reading t kind w;
  }

(* Occupied windows oldest-first with interior gaps filled by empty
   windows (capacity-bounded by construction: gaps wider than the ring
   would have evicted the older window anyway). *)
let filled_windows (s : series) =
  let occupied = List.rev s.wins in
  let rec fill = function
    | a :: (b :: _ as rest) ->
      let gap = List.init (b.w_index - a.w_index - 1) (fun i -> fresh_window (a.w_index + 1 + i)) in
      (a :: gap) @ fill rest
    | tail -> tail
  in
  fill occupied

let windows t name =
  match Hashtbl.find_opt t.series name with
  | None -> []
  | Some s -> List.map (summarize t s.s_kind) (filled_windows s)

let latest t name =
  match Hashtbl.find_opt t.series name with
  | None | Some { wins = []; _ } -> None
  | Some s -> Some (summarize t s.s_kind (List.hd s.wins))

let decayed t name =
  match Hashtbl.find_opt t.series name with
  | None | Some { wins = []; _ } -> 0.0
  | Some s ->
    let newest = (List.hd s.wins).w_index in
    let num, den =
      List.fold_left
        (fun (num, den) w ->
          if w.w_count = 0 then (num, den)
          else begin
            let weight = t.decay ** float_of_int (newest - w.w_index) in
            (num +. (weight *. reading t s.s_kind w), den +. weight)
          end)
        (0.0, 0.0) s.wins
    in
    if den = 0.0 then 0.0 else num /. den

(* The 8-step block ramp; a space for empty windows so quiet periods
   read as gaps. *)
let ramp = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
              "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline t name =
  match Hashtbl.find_opt t.series name with
  | None | Some { wins = []; _ } -> ""
  | Some s ->
    let ws = filled_windows s in
    let readings = List.map (fun w -> reading t s.s_kind w) ws in
    let top = List.fold_left Float.max 0.0 readings in
    let buf = Buffer.create (List.length ws * 3) in
    List.iter2
      (fun (w : window) v ->
        if w.w_count = 0 then Buffer.add_char buf ' '
        else begin
          let step =
            if top <= 0.0 then 0
            else min 7 (int_of_float (v /. top *. 7.999))
          in
          Buffer.add_string buf ramp.(step)
        end)
      ws readings;
    Buffer.contents buf

let render t =
  let buf = Buffer.create 512 in
  List.iter
    (fun name ->
      match latest t name with
      | None -> ()
      | Some l ->
        let s = Hashtbl.find t.series name in
        Printf.bprintf buf "%-36s %-7s last=%-12.4f decayed=%-12.4f p99=%-12.4f %s\n" name
          (kind_to_string s.s_kind) l.value (decayed t name) l.p99 (sparkline t name))
    (names t);
  Buffer.contents buf

let summary_json (s : summary) =
  Json.Obj
    [
      ("index", Json.Int s.index);
      ("start_s", Json.Float s.start_s);
      ("count", Json.Int s.count);
      ("sum", Json.Float s.sum);
      ("min", Json.Float s.vmin);
      ("max", Json.Float s.vmax);
      ("last", Json.Float s.last);
      ("p50", Json.Float s.p50);
      ("p99", Json.Float s.p99);
      ("value", Json.Float s.value);
    ]

let to_json t =
  Json.Obj
    [
      ("window_s", Json.Float t.width);
      ("capacity", Json.Int t.capacity);
      ("decay", Json.Float t.decay);
      ( "series",
        Json.Obj
          (List.map
             (fun name ->
               let s = Hashtbl.find t.series name in
               ( name,
                 Json.Obj
                   [
                     ("kind", Json.String (kind_to_string s.s_kind));
                     ("decayed", Json.Float (decayed t name));
                     ("windows", Json.List (List.map summary_json (windows t name)));
                   ] ))
             (names t)) );
    ]

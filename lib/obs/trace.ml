type arg = Int of int | Float of float | Str of string

type span = {
  id : int;
  name : string;
  start : float;
  duration : float;
  depth : int;
  pid : int;
  tid : int;
  args : (string * arg) list;
}

type open_span = { oid : int; oname : string; ostart : float; mutable oargs : (string * arg) list }

type counter_sample = { cname : string; ts : float; values : (string * float) list }

type t = {
  clk : Clock.t;
  mutable stack : open_span list;
  mutable completed : span list;  (* reverse completion order *)
  mutable samples : counter_sample list;  (* reverse order *)
  mutable next_id : int;
  mutable process_names : (int * string) list;  (* pid -> display name *)
  mutable thread_names : ((int * int) * string) list;  (* (pid, tid) -> name *)
}

let create clk =
  {
    clk;
    stack = [];
    completed = [];
    samples = [];
    next_id = 0;
    process_names = [];
    thread_names = [];
  }

let clock t = t.clk

let with_span ?(args = []) t name f =
  let o = { oid = t.next_id; oname = name; ostart = Clock.now t.clk; oargs = args } in
  t.next_id <- t.next_id + 1;
  let depth = List.length t.stack in
  t.stack <- o :: t.stack;
  Fun.protect
    ~finally:(fun () ->
      (match t.stack with o' :: rest when o' == o -> t.stack <- rest | _ -> ());
      t.completed <-
        {
          id = o.oid;
          name = o.oname;
          start = o.ostart;
          duration = Clock.now t.clk -. o.ostart;
          depth;
          pid = 1;
          tid = 1;
          args = o.oargs;
        }
        :: t.completed)
    f

let complete ?(pid = 1) ?(tid = 1) ?(args = []) t name ~start ~duration =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  t.completed <-
    { id; name; start; duration; depth = List.length t.stack; pid; tid; args } :: t.completed

let set_process_name t ~pid name =
  t.process_names <- (pid, name) :: List.remove_assoc pid t.process_names

let set_thread_name t ~pid ~tid name =
  t.thread_names <- ((pid, tid), name) :: List.remove_assoc (pid, tid) t.thread_names

let set_args t args =
  match t.stack with
  | [] -> ()
  | o :: _ -> o.oargs <- o.oargs @ args

let counter t name values =
  t.samples <- { cname = name; ts = Clock.now t.clk; values } :: t.samples

let spans t =
  List.stable_sort
    (fun a b -> if a.start = b.start then compare a.id b.id else compare a.start b.start)
    t.completed

let find_spans t name = List.filter (fun s -> String.equal s.name name) (spans t)

let num_events t = List.length t.completed + List.length t.samples

let usec seconds = int_of_float (Float.round (seconds *. 1e6))

let arg_json = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.String s

let span_event s =
  let base =
    [
      ("name", Json.String s.name);
      ("cat", Json.String "propeller");
      ("ph", Json.String "X");
      ("ts", Json.Int (usec s.start));
      ("dur", Json.Int (usec s.duration));
      ("pid", Json.Int s.pid);
      ("tid", Json.Int s.tid);
    ]
  in
  let args = ("depth", Json.Int s.depth) :: List.map (fun (k, v) -> (k, arg_json v)) s.args in
  Json.Obj (base @ [ ("args", Json.Obj args) ])

let counter_event c =
  Json.Obj
    [
      ("name", Json.String c.cname);
      ("cat", Json.String "propeller");
      ("ph", Json.String "C");
      ("ts", Json.Int (usec c.ts));
      ("pid", Json.Int 1);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) c.values));
    ]

(* Perfetto groups lanes by these "ph":"M" metadata events; they carry
   no timestamp and sort to the head of the event list, one per named
   pid/tid, pid-ascending so exports stay byte-stable. *)
let metadata_events t =
  let process (pid, name) =
    Json.Obj
      [
        ("name", Json.String "process_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  let thread ((pid, tid), name) =
    Json.Obj
      [
        ("name", Json.String "thread_name");
        ("ph", Json.String "M");
        ("pid", Json.Int pid);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.String name) ]);
      ]
  in
  List.map process (List.sort compare t.process_names)
  @ List.map thread (List.sort compare t.thread_names)

let to_chrome_json t =
  let samples =
    List.stable_sort (fun a b -> compare (a.ts, a.cname) (b.ts, b.cname)) t.samples
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (metadata_events t @ List.map span_event (spans t)
          @ List.map counter_event samples) );
      ("displayTimeUnit", Json.String "ms");
    ]

let reset t =
  t.stack <- [];
  t.completed <- [];
  t.samples <- [];
  t.next_id <- 0;
  t.process_names <- [];
  t.thread_names <- []

(** Windowed time-series on the simulated {!Clock}: the fleet-telemetry
    store behind per-machine health metrics.

    A store holds named series; each series buckets its samples into
    fixed-width windows keyed by [floor (now / window_s)] and keeps the
    last [capacity] windows in a ring — old windows fall off, so memory
    is bounded no matter how long a fleet run lasts. Three kinds:

    - {b Counter}: the window's reading is the sum of samples (events
      per window: requests served, shards merged);
    - {b Gauge}: the reading is the last sample (levels: cycles per
      request, fall-through rate);
    - {b Rate}: the reading is the sum divided by the window width
      (events per second).

    Every window also summarizes its raw samples (count, sum, min/max,
    p50/p99 by the same interpolated-percentile rule as
    {!Metrics.summary}), so tail latencies survive the bucketing.
    Cross-window aggregation applies exponential decay: a window [a]
    steps older than the newest weighs [decay ** a], which is how the
    profile-aggregation service forgets drifted traffic. [decay = 0]
    degrades to "newest window only"; [decay = 1] to an unweighted
    mean.

    Everything is a pure function of the recorded samples and the
    simulated clock — no wall time anywhere — so two identical runs
    render and serialize byte-identically. *)

type kind = Counter | Gauge | Rate

val kind_to_string : kind -> string

(** One window's digest. [value] is the kind-dependent reading
    described above; [p50]/[p99] interpolate the window's raw samples. *)
type summary = {
  index : int;  (** Window number since the clock's epoch. *)
  start_s : float;  (** Simulated start of the window. *)
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  last : float;
  p50 : float;
  p99 : float;
  value : float;
}

type t

(** [create clock] makes an empty store bucketing at [window_s]
    (default 1.0) simulated seconds, keeping the last [capacity]
    (default 120) windows per series, decaying at [decay] (default 0.5)
    per window of age. Raises [Invalid_argument] on a non-positive
    width/capacity or a decay outside [0, 1]. *)
val create : ?window_s:float -> ?capacity:int -> ?decay:float -> Clock.t -> t

val window_s : t -> float

(** [record t kind name v] appends one sample at the clock's current
    time. The first record of a name fixes the series kind; a later
    mismatch raises [Invalid_argument]. A sample landing exactly on a
    window boundary [k * window_s] opens window [k] (half-open
    windows). *)
val record : t -> kind -> string -> float -> unit

(** [add]/[set]/[rate] are {!record} with the kind spelled out. *)
val add : t -> string -> float -> unit

val set : t -> string -> float -> unit

val rate : t -> string -> float -> unit

(** [names t] lists series names, sorted. *)
val names : t -> string list

val kind_of : t -> string -> kind option

(** [windows t name] summarizes the live windows, oldest first. Gaps
    between occupied windows are materialized as empty summaries
    (count 0, value 0) so renderings show quiet periods; an unknown
    name is []. *)
val windows : t -> string -> summary list

(** [latest t name] is the newest window's summary. *)
val latest : t -> string -> summary option

(** [decayed t name] is the exponential-decay weighted mean of the live
    windows' readings, newest weighing 1; 0 for an unknown or empty
    series. Empty gap windows are skipped (they carry no reading). *)
val decayed : t -> string -> float

(** [sparkline t name] draws one character per live window (oldest
    first) from the 8-step block ramp, scaled to the series' maximum
    reading; empty for an unknown series. *)
val sparkline : t -> string -> string

(** [render t] is an aligned plain-text table: one row per series with
    its kind, newest reading, decayed mean, p99 and sparkline. *)
val render : t -> string

val to_json : t -> Json.t

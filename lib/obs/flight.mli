(** The flight recorder: a bounded ring buffer of the last K span and
    metric events, dumped on crash or fault-path degradation for
    postmortems.

    Always on and O(1) per event, so instrumented code records
    unconditionally. The text {!dump} contains only replay-deterministic
    fields (sequence number, simulated time, kind, name, detail) — two
    identical runs dump identical bytes. Host timestamps are captured
    per event but surface only in {!to_json}, marked informational. *)

type kind = Span_begin | Span_end | Span_complete | Counter | Gauge | Observe | Note

val kind_to_string : kind -> string

type event = {
  seq : int;  (** Record index since creation/reset (monotonic). *)
  sim : float;  (** Simulated seconds at record time. *)
  host : float;  (** Host seconds at record time; informational. *)
  kind : kind;
  name : string;
  detail : string;
}

type t

(** [create ()] makes a recorder holding the last [capacity] (default
    512) events; older events are overwritten. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** [recorded t] is the total number of events ever recorded (not
    capped by capacity). *)
val recorded : t -> int

val record : t -> sim:float -> kind -> string -> string -> unit

(** [events t] lists the surviving events, oldest first. *)
val events : t -> event list

val reset : t -> unit

(** [dump t] is the deterministic postmortem text (no host times). *)
val dump : t -> string

val to_json : t -> Json.t

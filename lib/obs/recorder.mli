(** One telemetry scope: a simulated {!Clock}, a {!Metrics} registry and
    a span {!Trace} that share that clock.

    Library code records against a recorder passed in by its caller
    (e.g. [Buildsys.Driver.env] carries one); code with no natural
    injection point (a bare [Linker.Link.link] call) defaults to
    {!global}. Tests that need isolation — e.g. asserting that two
    identical pipeline runs export byte-identical metrics — create
    fresh recorders instead. *)

type t

val create : unit -> t

(** The process-wide default recorder (what [propeller_driver --trace]
    exports). *)
val global : t

val clock : t -> Clock.t

val metrics : t -> Metrics.t

val trace : t -> Trace.t

(** [reset t] clears the metrics, the trace and the clock. *)
val reset : t -> unit

(* Conveniences that forward to the underlying components. *)

val with_span : ?args:(string * Trace.arg) list -> t -> string -> (unit -> 'a) -> 'a

(** [emit_span t name ~start ~duration] forwards to {!Trace.complete}:
    an externally-timed span, placed on lane [tid] (per-domain fan-out
    reporting for parallel phases). *)
val emit_span :
  ?tid:int ->
  ?args:(string * Trace.arg) list ->
  t ->
  string ->
  start:float ->
  duration:float ->
  unit

(** [now t] is the current simulated time of [t]'s clock. *)
val now : t -> float

val span_args : t -> (string * Trace.arg) list -> unit

(** [advance t dt] moves simulated time forward by [dt] seconds. *)
val advance : t -> float -> unit

val incr_counter : t -> string -> unit

val add_counter : t -> string -> int -> unit

val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit

(** [counter_sample t name values] records a trace counter event. *)
val counter_sample : t -> string -> (string * float) list -> unit

(* Exporters. *)

(** [trace_json t] is the Chrome trace-event file contents. *)
val trace_json : t -> string

(** [metrics_json t] is the metrics report as compact JSON. *)
val metrics_json : t -> string

(** [metrics_report t] is the plain-text metrics report. *)
val metrics_report : t -> string

(** One telemetry scope: a simulated {!Clock}, a {!Metrics} registry, a
    span {!Trace} sharing that clock, a host-time/GC {!Selfprof} and a
    ring-buffer {!Flight} recorder.

    Library code records against a recorder passed in by its caller
    (e.g. [Buildsys.Driver.env] carries one inside its [Support.Ctx.t]);
    code with no natural injection point (a bare [Linker.Link.link]
    call) defaults to {!global}. Tests that need isolation — e.g.
    asserting that two identical pipeline runs export byte-identical
    metrics — create fresh recorders instead.

    Every {!with_span} and metric call also feeds the flight recorder
    (bounded, O(1)); spans additionally feed the self-profiler when
    {!enable_self_profile} was called. Self-profiling never alters the
    simulated outputs — metrics, traces and image digests are
    byte-identical with it on or off (qcheck law in the test suite). *)

type t

val create : ?flight_capacity:int -> unit -> t

(** The process-wide default recorder (what [propeller_driver --trace]
    exports). *)
val global : t

val clock : t -> Clock.t

val metrics : t -> Metrics.t

val trace : t -> Trace.t

(** [selfprof t] is the host-time/GC self-profile of this scope. *)
val selfprof : t -> Selfprof.t

(** [flight t] is the scope's flight recorder (always on). *)
val flight : t -> Flight.t

(** [enable_self_profile t] arms span-attributed host-clock and GC
    profiling ([--self-profile]); off by default and free when off. *)
val enable_self_profile : t -> unit

val self_profile_enabled : t -> bool

(** [reset t] clears the metrics, the trace, the clock, the
    self-profile and the flight buffer. *)
val reset : t -> unit

(* Conveniences that forward to the underlying components. *)

val with_span : ?args:(string * Trace.arg) list -> t -> string -> (unit -> 'a) -> 'a

(** [emit_span t name ~start ~duration] forwards to {!Trace.complete}:
    an externally-timed span, placed on process [pid] / lane [tid]
    (per-domain fan-out reporting for parallel phases; per-machine
    process groups for fleet runs). *)
val emit_span :
  ?pid:int ->
  ?tid:int ->
  ?args:(string * Trace.arg) list ->
  t ->
  string ->
  start:float ->
  duration:float ->
  unit

(** [now t] is the current simulated time of [t]'s clock. *)
val now : t -> float

val span_args : t -> (string * Trace.arg) list -> unit

(** [advance t dt] moves simulated time forward by [dt] seconds. *)
val advance : t -> float -> unit

val incr_counter : t -> string -> unit

val add_counter : t -> string -> int -> unit

val set_gauge : t -> string -> float -> unit

val observe : t -> string -> float -> unit

(** [flight_note t name detail] records a [Note] flight event — fault
    degradations and other postmortem breadcrumbs that are not metrics. *)
val flight_note : t -> string -> string -> unit

(** [counter_sample t name values] records a trace counter event. *)
val counter_sample : t -> string -> (string * float) list -> unit

(* Exporters. *)

(** [trace_json t] is the Chrome trace-event file contents. *)
val trace_json : t -> string

(** [metrics_json t] is the metrics report as compact JSON. *)
val metrics_json : t -> string

(** [metrics_report t] is the plain-text metrics report. *)
val metrics_report : t -> string

(** [selfprof_json t] is the self-profile as compact JSON
    ([--self-profile-out]). *)
val selfprof_json : t -> string

(** [flight_dump t] is the deterministic postmortem text of the last K
    events. *)
val flight_dump : t -> string

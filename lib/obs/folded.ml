let add buf ~path ~weight = Buffer.add_string buf (Printf.sprintf "%s %d\n" path weight)

let to_string rows =
  let buf = Buffer.create 1024 in
  List.iter (fun (path, weight) -> add buf ~path ~weight) rows;
  Buffer.contents buf

let micros seconds = int_of_float (Float.round (seconds *. 1e6))

(** The simulated telemetry clock.

    All recorded timestamps come from this clock, never from
    [Unix.gettimeofday]: instrumented code advances it by *modelled*
    durations (scheduler makespans, link cost-model seconds, profiling
    windows), so two identical runs produce byte-identical traces. *)

type t

(** [create ()] starts a clock at [start] (default 0) seconds. *)
val create : ?start:float -> unit -> t

(** [now t] is the current simulated time, in seconds. *)
val now : t -> float

(** [advance t dt] moves the clock forward by [dt] seconds; negative
    [dt] raises [Invalid_argument] (simulated time is monotonic). *)
val advance : t -> float -> unit

(** [reset t] rewinds to the creation start time. *)
val reset : t -> unit

(* Span-attributed self-profile: host seconds and GC words per span
   *path* ("round:1;phase:wpa"), with self (exclusive) attribution so a
   parent is not charged for its children. Disabled profilers cost one
   branch per span. Structure (the set of paths, counts) is a function
   of the deterministic span tree; host-time and word values are not. *)

type agg = {
  mutable count : int;
  mutable host_s : float;
  mutable self_host_s : float;
  mutable alloc_words : float;
  mutable self_alloc_words : float;
  mutable minor_words : float;
  mutable major_words : float;
  mutable promoted_words : float;
  mutable minor_collections : int;
  mutable major_collections : int;
}

let fresh_agg () =
  {
    count = 0;
    host_s = 0.0;
    self_host_s = 0.0;
    alloc_words = 0.0;
    self_alloc_words = 0.0;
    minor_words = 0.0;
    major_words = 0.0;
    promoted_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
  }

type frame = {
  fname : string;
  fpath : string;
  t0 : float;
  gc0 : Hostclock.gc_snapshot;
  mutable child_host_s : float;
  mutable child_alloc_words : float;
}

type t = {
  mutable enabled : bool;
  mutable stack : frame list;
  paths : (string, agg) Hashtbl.t;
}

let create () = { enabled = false; stack = []; paths = Hashtbl.create 64 }

let enable t = t.enabled <- true

let enabled t = t.enabled

let reset t =
  t.stack <- [];
  Hashtbl.reset t.paths

let enter t name =
  if not t.enabled then None
  else begin
    let fpath =
      match t.stack with [] -> name | parent :: _ -> parent.fpath ^ ";" ^ name
    in
    let fr =
      {
        fname = name;
        fpath;
        t0 = Hostclock.now ();
        gc0 = Hostclock.gc_snapshot ();
        child_host_s = 0.0;
        child_alloc_words = 0.0;
      }
    in
    t.stack <- fr :: t.stack;
    Some fr
  end

let agg_of t path =
  match Hashtbl.find_opt t.paths path with
  | Some a -> a
  | None ->
    let a = fresh_agg () in
    Hashtbl.add t.paths path a;
    a

let leave t frame =
  match frame with
  | None -> ()
  | Some fr ->
    (match t.stack with
    | top :: rest when top == fr -> t.stack <- rest
    | _ -> () (* enable() raced a span open; drop the orphan quietly *));
    let dt = Float.max 0.0 (Hostclock.now () -. fr.t0) in
    let d = Hostclock.gc_delta ~before:fr.gc0 ~after:(Hostclock.gc_snapshot ()) in
    let words = Hostclock.allocated_words d in
    let a = agg_of t fr.fpath in
    a.count <- a.count + 1;
    a.host_s <- a.host_s +. dt;
    a.self_host_s <- a.self_host_s +. Float.max 0.0 (dt -. fr.child_host_s);
    a.alloc_words <- a.alloc_words +. words;
    a.self_alloc_words <- a.self_alloc_words +. Float.max 0.0 (words -. fr.child_alloc_words);
    a.minor_words <- a.minor_words +. d.minor_words;
    a.major_words <- a.major_words +. d.major_words;
    a.promoted_words <- a.promoted_words +. d.promoted_words;
    a.minor_collections <- a.minor_collections + d.minor_collections;
    a.major_collections <- a.major_collections + d.major_collections;
    (match t.stack with
    | parent :: _ ->
      parent.child_host_s <- parent.child_host_s +. dt;
      parent.child_alloc_words <- parent.child_alloc_words +. words
    | [] -> ())

let with_span t name f =
  let fr = enter t name in
  Fun.protect ~finally:(fun () -> leave t fr) f

(* --- Views -------------------------------------------------------- *)

type row = {
  path : string;
  name : string;  (* leaf component of [path] *)
  count : int;
  host_s : float;
  self_host_s : float;
  alloc_words : float;
  self_alloc_words : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let leaf path =
  match String.rindex_opt path ';' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let row_of path (a : agg) =
  {
    path;
    name = leaf path;
    count = a.count;
    host_s = a.host_s;
    self_host_s = a.self_host_s;
    alloc_words = a.alloc_words;
    self_alloc_words = a.self_alloc_words;
    minor_words = a.minor_words;
    major_words = a.major_words;
    promoted_words = a.promoted_words;
    minor_collections = a.minor_collections;
    major_collections = a.major_collections;
  }

let rows t =
  Hashtbl.fold (fun path a acc -> row_of path a :: acc) t.paths []
  |> List.sort (fun a b -> String.compare a.path b.path)

let num_paths t = Hashtbl.length t.paths

(* Hotspots: rows merged by leaf span name (the "phase" label), ranked
   by self host seconds, allocation words as the tiebreak. *)
type hotspot = {
  hname : string;
  hcount : int;
  hself_host_s : float;
  hhost_s : float;
  hself_alloc_words : float;
  hminor_collections : int;
  hmajor_collections : int;
}

let hotspots_of_rows ?limit rows =
  let tbl : (string, hotspot ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun r ->
      let h =
        match Hashtbl.find_opt tbl r.name with
        | Some h -> h
        | None ->
          let h =
            ref
              {
                hname = r.name;
                hcount = 0;
                hself_host_s = 0.0;
                hhost_s = 0.0;
                hself_alloc_words = 0.0;
                hminor_collections = 0;
                hmajor_collections = 0;
              }
          in
          Hashtbl.add tbl r.name h;
          h
      in
      h :=
        {
          !h with
          hcount = !h.hcount + r.count;
          hself_host_s = !h.hself_host_s +. r.self_host_s;
          hhost_s = !h.hhost_s +. r.host_s;
          hself_alloc_words = !h.hself_alloc_words +. r.self_alloc_words;
          hminor_collections = !h.hminor_collections + r.minor_collections;
          hmajor_collections = !h.hmajor_collections + r.major_collections;
        })
    rows;
  let all =
    Hashtbl.fold (fun _ h acc -> !h :: acc) tbl []
    |> List.sort (fun a b ->
           match Float.compare b.hself_host_s a.hself_host_s with
           | 0 -> (
             match Float.compare b.hself_alloc_words a.hself_alloc_words with
             | 0 -> String.compare a.hname b.hname
             | c -> c)
           | c -> c)
  in
  match limit with
  | None -> all
  | Some n -> List.filteri (fun i _ -> i < n) all

let hotspots ?limit t = hotspots_of_rows ?limit (rows t)

(* --- Folded output ------------------------------------------------ *)

(* flamegraph.pl-compatible: one "path weight" line per span path,
   sorted by path. Weights are integral; `Host gives self microseconds,
   `Alloc self words. Line *structure* is deterministic; `Host weights
   are not (strip trailing integers to compare runs). *)
let folded ?(weight = `Host) t =
  Folded.to_string
    (List.map
       (fun r ->
         let w =
           match weight with
           | `Host -> Folded.micros r.self_host_s
           | `Alloc -> int_of_float (Float.round r.self_alloc_words)
         in
         (r.path, w))
       (rows t))

(* --- JSON --------------------------------------------------------- *)

let row_json r =
  Json.Obj
    [
      ("path", Json.String r.path);
      ("name", Json.String r.name);
      ("count", Json.Int r.count);
      ("host_s", Json.Float r.host_s);
      ("self_host_s", Json.Float r.self_host_s);
      ("alloc_words", Json.Float r.alloc_words);
      ("self_alloc_words", Json.Float r.self_alloc_words);
      ("minor_words", Json.Float r.minor_words);
      ("major_words", Json.Float r.major_words);
      ("promoted_words", Json.Float r.promoted_words);
      ("minor_collections", Json.Int r.minor_collections);
      ("major_collections", Json.Int r.major_collections);
    ]

let to_json t =
  Json.Obj
    [
      ("tool", Json.String "propeller-selfprof");
      ("enabled", Json.Bool t.enabled);
      ("num_paths", Json.Int (num_paths t));
      ("spans", Json.List (List.map row_json (rows t)));
    ]

(* Re-read an exported self-profile (propeller_stat top --from FILE). *)
let rows_of_json json =
  match Json.member "spans" json with
  | Some (Json.List spans) -> (
    let field name j = Json.member name j in
    let str name j = match field name j with Some (Json.String s) -> Some s | _ -> None in
    let num name j =
      match field name j with
      | Some (Json.Float f) -> Some f
      | Some (Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    let int name j = match field name j with Some (Json.Int i) -> Some i | _ -> None in
    let parse_row j =
      match (str "path" j, int "count" j) with
      | Some path, Some count ->
        let f name = Option.value (num name j) ~default:0.0 in
        let i name = Option.value (int name j) ~default:0 in
        Ok
          {
            path;
            name = leaf path;
            count;
            host_s = f "host_s";
            self_host_s = f "self_host_s";
            alloc_words = f "alloc_words";
            self_alloc_words = f "self_alloc_words";
            minor_words = f "minor_words";
            major_words = f "major_words";
            promoted_words = f "promoted_words";
            minor_collections = i "minor_collections";
            major_collections = i "major_collections";
          }
      | _ -> Error "selfprof span entry missing \"path\" or \"count\""
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | j :: rest -> ( match parse_row j with Ok r -> go (r :: acc) rest | Error e -> Error e)
    in
    go [] spans)
  | _ -> Error "not a self-profile: missing \"spans\" array"

(* --- Rendering ---------------------------------------------------- *)

let pp_words w =
  if w >= 1.0e9 then Printf.sprintf "%.2fGw" (w /. 1.0e9)
  else if w >= 1.0e6 then Printf.sprintf "%.1fMw" (w /. 1.0e6)
  else if w >= 1.0e3 then Printf.sprintf "%.0fKw" (w /. 1.0e3)
  else Printf.sprintf "%.0fw" w

let render_hotspots ?(limit = 15) hotspots =
  let buf = Buffer.create 1024 in
  let total_self = List.fold_left (fun acc h -> acc +. h.hself_host_s) 0.0 hotspots in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %6s %10s %6s %12s %8s\n" "phase" "count" "self-host" "%" "self-alloc"
       "gc(mn/mj)");
  List.iteri
    (fun i h ->
      if i < limit then
        Buffer.add_string buf
          (Printf.sprintf "%-28s %6d %9.3fs %5.1f%% %12s %5d/%d\n" h.hname h.hcount
             h.hself_host_s
             (if total_self > 0.0 then h.hself_host_s /. total_self *. 100.0 else 0.0)
             (pp_words h.hself_alloc_words)
             h.hminor_collections h.hmajor_collections))
    hotspots;
  if hotspots = [] then Buffer.add_string buf "(no spans self-profiled)\n";
  Buffer.contents buf

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, float list ref) Hashtbl.t;  (* reversed observations *)
}

let create () =
  { counters = Hashtbl.create 64; gauges = Hashtbl.create 16; histograms = Hashtbl.create 16 }

let cell tbl make name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
    let r = make () in
    Hashtbl.add tbl name r;
    r

let add_counter t name n =
  if n < 0 then invalid_arg "Metrics.add_counter: counters are monotonic";
  let r = cell t.counters (fun () -> ref 0) name in
  r := !r + n

let incr_counter t name = add_counter t name 1

let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v = cell t.gauges (fun () -> ref 0.0) name := v

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let observe t name v =
  let r = cell t.histograms (fun () -> ref []) name in
  r := v :: !r

type summary = {
  count : int;
  sum : float;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

(* Summary statistics, kept local so obs has no library dependencies:
   Support sits *above* obs in the stack (Support.Ctx carries an
   Obs.Recorder.t), so obs cannot call into Support.Stats. The
   algorithms are identical (same interpolated percentile, same
   population stddev), keeping exported summaries byte-stable. *)
module Summ = struct
  let sum = List.fold_left ( +. ) 0.0

  let mean = function [] -> 0.0 | xs -> sum xs /. float_of_int (List.length xs)

  (* Linear interpolation between closest ranks (numpy's "linear").
     Small samples stay exact: any percentile of 1 sample is that
     sample, p50 of 2 samples is their midpoint (== median), p100 is
     the max — the old nearest-rank rule returned the *lower* sample
     for p50 of 2, disagreeing with [median]. *)
  let percentile p xs =
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n = 0 then invalid_arg "Metrics.percentile: empty sample list";
    if n = 1 then arr.(0)
    else begin
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = max 0 (min (n - 1) (int_of_float (floor rank))) in
      let hi = min (n - 1) (lo + 1) in
      arr.(lo) +. ((rank -. float_of_int lo) *. (arr.(hi) -. arr.(lo)))
    end

  let stddev xs =
    let m = mean xs in
    sqrt (mean (List.map (fun x -> (x -. m) *. (x -. m)) xs))

  let median xs =
    let arr = Array.of_list xs in
    Array.sort compare arr;
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0
end

let summarize = function
  | [] -> None
  | xs ->
    Some
      {
        count = List.length xs;
        sum = Summ.sum xs;
        mean = Summ.mean xs;
        stddev = Summ.stddev xs;
        min = List.fold_left Float.min Float.infinity xs;
        max = List.fold_left Float.max Float.neg_infinity xs;
        median = Summ.median xs;
        p90 = Summ.percentile 90.0 xs;
        p99 = Summ.percentile 99.0 xs;
      }

let summary t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some r -> summarize !r

let percentile = Summ.percentile

let sorted_bindings tbl value =
  Hashtbl.fold (fun k r acc -> (k, value r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters ( ! )

let gauges t = sorted_bindings t.gauges ( ! )

let summaries t =
  Hashtbl.fold
    (fun k r acc -> match summarize !r with Some s -> (k, s) :: acc | None -> acc)
    t.histograms []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.histograms

let summary_json (s : summary) =
  Json.Obj
    [
      ("count", Json.Int s.count);
      ("sum", Json.Float s.sum);
      ("mean", Json.Float s.mean);
      ("stddev", Json.Float s.stddev);
      ("min", Json.Float s.min);
      ("max", Json.Float s.max);
      ("median", Json.Float s.median);
      ("p90", Json.Float s.p90);
      ("p99", Json.Float s.p99);
    ]

let to_json t =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges t)));
      ("histograms", Json.Obj (List.map (fun (k, s) -> (k, summary_json s)) (summaries t)));
    ]

let report t =
  let buf = Buffer.create 1024 in
  let section name = Printf.bprintf buf "== %s ==\n" name in
  (match counters t with
  | [] -> ()
  | cs ->
    section "counters";
    List.iter (fun (k, v) -> Printf.bprintf buf "%-44s %12d\n" k v) cs);
  (match gauges t with
  | [] -> ()
  | gs ->
    section "gauges";
    List.iter (fun (k, v) -> Printf.bprintf buf "%-44s %12.3f\n" k v) gs);
  (match summaries t with
  | [] -> ()
  | hs ->
    section "histograms";
    List.iter
      (fun (k, s) ->
        Printf.bprintf buf
          "%-44s n=%-6d mean=%-10.3f stddev=%-10.3f p50=%-10.3f p90=%-10.3f p99=%-10.3f max=%.3f\n"
          k s.count s.mean s.stddev s.median s.p90 s.p99 s.max)
      hs);
  Buffer.contents buf

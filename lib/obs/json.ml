type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------ *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "bad \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            let code = try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape" in
            (* Only BMP codepoints below 0x80 are emitted by the writer;
               decode others to '?' rather than doing full UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else Buffer.add_char buf '?';
            pos := !pos + 4
          | c -> fail (Printf.sprintf "bad escape %C" c));
          incr pos;
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '+' | '-' ->
        is_float := true;
        true
      | _ -> false
    do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with Some f -> Float f | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with Some f -> Float f | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr pos;
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr pos;
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad (!pos, "trailing garbage"));
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "json error at byte %d: %s" at msg)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

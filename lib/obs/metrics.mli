(** The metric registry: counters, gauges and histograms.

    Counters are monotonically increasing integers (events: cache hits,
    relaxation sweeps, resolved symbols). Gauges are last-write-wins
    floats (levels: bytes stored, modelled cycles). Histograms collect
    float observations and summarize them with percentile/stddev/median
    statistics (linear-interpolation percentiles — exact for 1–2
    samples — and population stddev).

    Exports are sorted by metric name, so a registry filled by a
    deterministic run serializes byte-identically every time. *)

type t

val create : unit -> t

(** [incr_counter t name] / [add_counter t name n] bump a counter,
    creating it at 0 first; [n < 0] raises [Invalid_argument]. *)
val incr_counter : t -> string -> unit

val add_counter : t -> string -> int -> unit

(** [counter t name] is the current value; 0 when never bumped. *)
val counter : t -> string -> int

val set_gauge : t -> string -> float -> unit

val gauge : t -> string -> float option

(** [observe t name v] appends one histogram observation. *)
val observe : t -> string -> float -> unit

type summary = {
  count : int;
  sum : float;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  p99 : float;
}

(** [summary t name] summarizes a histogram; [None] when empty. *)
val summary : t -> string -> summary option

(** [percentile p xs] is the linear-interpolation percentile the
    summaries use (numpy's "linear"; exact for 1–2 samples), shared
    with {!Timeseries} so every percentile in an export follows one
    rule. Raises [Invalid_argument] on the empty list. *)
val percentile : float -> float list -> float

(** Sorted views for exporters. *)
val counters : t -> (string * int) list

val gauges : t -> (string * float) list

val summaries : t -> (string * summary) list

(** [reset t] drops every metric. *)
val reset : t -> unit

(** [to_json t] is the metrics report as a JSON tree. *)
val to_json : t -> Json.t

(** [report t] is a fixed-width plain-text rendering of the registry. *)
val report : t -> string

(** flamegraph.pl folded-stack format: one ["path weight\n"] line per
    row, where [path] is a semicolon-joined frame stack and [weight] an
    integral count. The one writer shared by every producer (self
    profiles, flow-decomposed hot paths) so their outputs stay
    byte-compatible with each other and with flamegraph.pl. *)

(** [add buf ~path ~weight] appends one folded line. *)
val add : Buffer.t -> path:string -> weight:int -> unit

(** [to_string rows] renders [(path, weight)] rows in list order. *)
val to_string : (string * int) list -> string

(** [micros seconds] is the integral microsecond weight used for
    host-time rows (round-half-away-from-zero). *)
val micros : float -> int

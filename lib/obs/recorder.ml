type t = { clk : Clock.t; metrics : Metrics.t; trace : Trace.t }

let create () =
  let clk = Clock.create () in
  { clk; metrics = Metrics.create (); trace = Trace.create clk }

let global = create ()

let clock t = t.clk

let metrics t = t.metrics

let trace t = t.trace

let reset t =
  Clock.reset t.clk;
  Metrics.reset t.metrics;
  Trace.reset t.trace

let with_span ?args t name f = Trace.with_span ?args t.trace name f

let emit_span ?tid ?args t name ~start ~duration =
  Trace.complete ?tid ?args t.trace name ~start ~duration

let now t = Clock.now t.clk

let span_args t args = Trace.set_args t.trace args

let advance t dt = Clock.advance t.clk dt

let incr_counter t name = Metrics.incr_counter t.metrics name

let add_counter t name n = Metrics.add_counter t.metrics name n

let set_gauge t name v = Metrics.set_gauge t.metrics name v

let observe t name v = Metrics.observe t.metrics name v

let counter_sample t name values = Trace.counter t.trace name values

let trace_json t = Json.to_string (Trace.to_chrome_json t.trace)

let metrics_json t = Json.to_string (Metrics.to_json t.metrics)

let metrics_report t = Metrics.report t.metrics

type t = {
  clk : Clock.t;
  metrics : Metrics.t;
  trace : Trace.t;
  selfprof : Selfprof.t;
  flight : Flight.t;
}

let create ?flight_capacity () =
  let clk = Clock.create () in
  {
    clk;
    metrics = Metrics.create ();
    trace = Trace.create clk;
    selfprof = Selfprof.create ();
    flight = Flight.create ?capacity:flight_capacity ();
  }

let global = create ()

let clock t = t.clk

let metrics t = t.metrics

let trace t = t.trace

let selfprof t = t.selfprof

let flight t = t.flight

let enable_self_profile t = Selfprof.enable t.selfprof

let self_profile_enabled t = Selfprof.enabled t.selfprof

let reset t =
  Clock.reset t.clk;
  Metrics.reset t.metrics;
  Trace.reset t.trace;
  Selfprof.reset t.selfprof;
  Flight.reset t.flight

let with_span ?args t name f =
  Flight.record t.flight ~sim:(Clock.now t.clk) Flight.Span_begin name "";
  let frame = Selfprof.enter t.selfprof name in
  Fun.protect
    ~finally:(fun () ->
      Selfprof.leave t.selfprof frame;
      Flight.record t.flight ~sim:(Clock.now t.clk) Flight.Span_end name "")
    (fun () -> Trace.with_span ?args t.trace name f)

let emit_span ?pid ?tid ?args t name ~start ~duration =
  Flight.record t.flight ~sim:(Clock.now t.clk) Flight.Span_complete name
    (Printf.sprintf "start=%.6f dur=%.6f%s%s" start duration
       (match pid with None -> "" | Some pid -> Printf.sprintf " pid=%d" pid)
       (match tid with None -> "" | Some tid -> Printf.sprintf " tid=%d" tid));
  Trace.complete ?pid ?tid ?args t.trace name ~start ~duration

let now t = Clock.now t.clk

let span_args t args = Trace.set_args t.trace args

let advance t dt = Clock.advance t.clk dt

let incr_counter t name =
  Flight.record t.flight ~sim:(Clock.now t.clk) Flight.Counter name "+1";
  Metrics.incr_counter t.metrics name

let add_counter t name n =
  Flight.record t.flight ~sim:(Clock.now t.clk) Flight.Counter name (Printf.sprintf "+%d" n);
  Metrics.add_counter t.metrics name n

let set_gauge t name v =
  Flight.record t.flight ~sim:(Clock.now t.clk) Flight.Gauge name (Printf.sprintf "=%g" v);
  Metrics.set_gauge t.metrics name v

let observe t name v =
  Flight.record t.flight ~sim:(Clock.now t.clk) Flight.Observe name (Printf.sprintf "%g" v);
  Metrics.observe t.metrics name v

let flight_note t name detail =
  Flight.record t.flight ~sim:(Clock.now t.clk) Flight.Note name detail

let counter_sample t name values = Trace.counter t.trace name values

let trace_json t = Json.to_string (Trace.to_chrome_json t.trace)

let metrics_json t = Json.to_string (Metrics.to_json t.metrics)

let metrics_report t = Metrics.report t.metrics

let selfprof_json t = Json.to_string (Selfprof.to_json t.selfprof)

let flight_dump t = Flight.dump t.flight

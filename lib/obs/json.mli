(** A minimal JSON tree: enough to emit Chrome trace-event files and
    metrics reports, and to re-parse them for validation (the smoke
    check and the well-formedness tests round-trip through {!parse}).
    Dependency-free on purpose. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] renders compact JSON. Strings are escaped per RFC
    8259; non-finite floats degrade to [0] (JSON has no NaN/inf). *)
val to_string : t -> string

(** [parse s] reads one JSON value (surrounding whitespace allowed).
    Numbers with a fraction or exponent parse as [Float], others as
    [Int]. Returns a descriptive error with a byte offset on failure. *)
val parse : string -> (t, string) result

(** [member name v] looks up a field of an [Obj]. *)
val member : string -> t -> t option

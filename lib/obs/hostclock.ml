(* The host clock is the one source of real time in the tree: every
   other timestamp is simulated. Monotonicity is enforced here (a
   gettimeofday step backwards would otherwise produce negative span
   durations in the self-profile). *)

let last = Atomic.make 0.0

let now () =
  let t = Unix.gettimeofday () in
  let rec clamp () =
    let l = Atomic.get last in
    if t <= l then l else if Atomic.compare_and_set last l t then t else clamp ()
  in
  clamp ()

type gc_snapshot = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let gc_snapshot () =
  let s = Gc.quick_stat () in
  {
    (* quick_stat's minor_words lags until the next minor collection on
       the multicore runtime; Gc.minor_words reads the allocation
       pointer directly, so short spans see their allocation. *)
    minor_words = Gc.minor_words ();
    major_words = s.Gc.major_words;
    promoted_words = s.Gc.promoted_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
  }

(* Word counters are monotonic within a domain but quick_stat reads the
   minor counter non-atomically; clamp at zero so a delta can never go
   negative in the aggregate. *)
let gc_delta ~before ~after =
  {
    minor_words = Float.max 0.0 (after.minor_words -. before.minor_words);
    major_words = Float.max 0.0 (after.major_words -. before.major_words);
    promoted_words = Float.max 0.0 (after.promoted_words -. before.promoted_words);
    minor_collections = max 0 (after.minor_collections - before.minor_collections);
    major_collections = max 0 (after.major_collections - before.major_collections);
  }

(* Net words allocated: minor + major - promoted (promoted words are
   counted in both the minor and major totals). *)
let allocated_words d = d.minor_words +. d.major_words -. d.promoted_words

(* Bounded ring buffer of the last K telemetry events, kept cheap
   enough to stay always-on. The dump is the postmortem artifact: what
   the run was doing just before a crash or a fault-path degradation.
   Dump *content* is replay-deterministic (simulated time, kinds,
   names, details); host timestamps ride along in the JSON export only,
   marked informational. *)

type kind = Span_begin | Span_end | Span_complete | Counter | Gauge | Observe | Note

let kind_to_string = function
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"
  | Span_complete -> "span_complete"
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Observe -> "observe"
  | Note -> "note"

type event = {
  seq : int;  (* 0-based record index since creation/reset *)
  sim : float;  (* simulated seconds *)
  host : float;  (* host seconds; informational *)
  kind : kind;
  name : string;
  detail : string;
}

type t = { slots : event option array; capacity : int; mutable recorded : int }

let default_capacity = 512

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight.create: capacity must be >= 1";
  { slots = Array.make capacity None; capacity; recorded = 0 }

let capacity t = t.capacity

let recorded t = t.recorded

let record t ~sim kind name detail =
  let ev = { seq = t.recorded; sim; host = Hostclock.now (); kind; name; detail } in
  t.slots.(t.recorded mod t.capacity) <- Some ev;
  t.recorded <- t.recorded + 1

(* Oldest-first; at most [capacity] events. *)
let events t =
  let n = min t.recorded t.capacity in
  List.init n (fun i ->
      match t.slots.((t.recorded - n + i) mod t.capacity) with
      | Some ev -> ev
      | None -> assert false)

let reset t =
  Array.fill t.slots 0 t.capacity None;
  t.recorded <- 0

let event_line ev =
  Printf.sprintf "  #%-6d t=%.6fs %-13s %s%s" ev.seq ev.sim (kind_to_string ev.kind) ev.name
    (if ev.detail = "" then "" else " " ^ ev.detail)

let dump t =
  let evs = events t in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "flight recorder: last %d of %d events (oldest first)\n" (List.length evs)
       t.recorded);
  List.iter
    (fun ev ->
      Buffer.add_string buf (event_line ev);
      Buffer.add_char buf '\n')
    evs;
  Buffer.contents buf

let event_json ev =
  Json.Obj
    [
      ("seq", Json.Int ev.seq);
      ("sim_s", Json.Float ev.sim);
      ("host_unix_s", Json.Float ev.host);  (* informational: varies run to run *)
      ("kind", Json.String (kind_to_string ev.kind));
      ("name", Json.String ev.name);
      ("detail", Json.String ev.detail);
    ]

let to_json t =
  Json.Obj
    [
      ("tool", Json.String "propeller-flight");
      ("capacity", Json.Int t.capacity);
      ("recorded", Json.Int t.recorded);
      ("events", Json.List (List.map event_json (events t)));
    ]

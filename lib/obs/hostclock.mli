(** The host clock: real (wall) time and GC accounting, as opposed to
    the simulated {!Clock} everything else in [obs] runs on.

    Host time is what the self-profiler ({!Selfprof}) attributes to
    spans — where the *simulator itself* burns seconds and allocation,
    not where the modelled warehouse build does. Host timestamps are
    informational by definition: they differ run to run, and nothing
    deterministic (metrics, traces, digests) may depend on them. *)

(** [now ()] is host wall-clock time in seconds, monotonically
    non-decreasing across calls (a backwards step of the underlying
    clock is clamped). *)
val now : unit -> float

(** One reading of the GC counters ([Gc.quick_stat], cheap: no heap
    walk). Word counts cover the calling domain's minor allocation plus
    the shared major heap. *)
type gc_snapshot = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

val gc_snapshot : unit -> gc_snapshot

(** [gc_delta ~before ~after] is the per-field difference, clamped at
    zero so aggregates stay monotonic. *)
val gc_delta : before:gc_snapshot -> after:gc_snapshot -> gc_snapshot

(** [allocated_words d] is the net words allocated in a delta:
    minor + major - promoted (promoted words appear in both totals). *)
val allocated_words : gc_snapshot -> float

type action = { label : string; cpu_seconds : float; peak_mem_bytes : int }

type placement = { action : action; worker : int; start : float; finish : float }

type result = {
  num_actions : int;
  wall_seconds : float;
  cpu_seconds : float;
  max_action_mem : int;
  over_limit : string list;
  workers : int;
  placements : placement list;
}

(* LPT replans the same action multiset on every build of a program:
   Phase 2 and Phase 4 schedule near-identical sets, and bench sweeps
   replay them dozens of times. Memoize the descending-cost sort on the
   action list itself (structural key); the memo is only touched from
   the build coordinator, never from pool workers. *)
let sort_memo : (action list, action list) Hashtbl.t = Hashtbl.create 64

let memo_hits = ref 0

let plan_memo_hits () = !memo_hits

let lpt_order actions =
  match Hashtbl.find_opt sort_memo actions with
  | Some sorted ->
    incr memo_hits;
    sorted
  | None ->
    let sorted =
      List.stable_sort
        (fun (a : action) (b : action) -> compare b.cpu_seconds a.cpu_seconds)
        actions
    in
    if Hashtbl.length sort_memo > 512 then Hashtbl.reset sort_memo;
    Hashtbl.replace sort_memo actions sorted;
    sorted

let schedule ?mem_limit ~workers actions =
  if workers < 1 then invalid_arg "Scheduler.schedule: workers must be >= 1";
  let sorted = lpt_order actions in
  let finish = Array.make workers 0.0 in
  let least_loaded () =
    let best = ref 0 in
    for w = 1 to workers - 1 do
      if finish.(w) < finish.(!best) then best := w
    done;
    !best
  in
  let placements =
    List.map
      (fun (a : action) ->
        let w = least_loaded () in
        let start = finish.(w) in
        finish.(w) <- start +. a.cpu_seconds;
        { action = a; worker = w; start; finish = finish.(w) })
      sorted
  in
  let over_limit =
    match mem_limit with
    | None -> []
    | Some limit ->
      List.filter_map (fun (a : action) -> if a.peak_mem_bytes > limit then Some a.label else None) actions
  in
  {
    num_actions = List.length actions;
    wall_seconds = Array.fold_left Float.max 0.0 finish;
    cpu_seconds = List.fold_left (fun acc (a : action) -> acc +. a.cpu_seconds) 0.0 actions;
    max_action_mem = List.fold_left (fun acc (a : action) -> max acc a.peak_mem_bytes) 0 actions;
    over_limit;
    workers;
    placements;
  }

let critical_path r =
  List.fold_left (fun acc p -> Float.max acc p.action.cpu_seconds) 0.0 r.placements

let worker_timeline r w =
  List.filter (fun p -> p.worker = w) r.placements
  |> List.stable_sort (fun (a : placement) (b : placement) -> compare a.start b.start)

type action = { label : string; cpu_seconds : float; peak_mem_bytes : int }

type placement = { action : action; worker : int; start : float; finish : float }

type result = {
  num_actions : int;
  wall_seconds : float;
  cpu_seconds : float;
  max_action_mem : int;
  over_limit : string list;
  workers : int;
  placements : placement list;
}

let schedule ?mem_limit ~workers actions =
  if workers < 1 then invalid_arg "Scheduler.schedule: workers must be >= 1";
  let sorted =
    List.stable_sort
      (fun (a : action) (b : action) -> compare b.cpu_seconds a.cpu_seconds)
      actions
  in
  let finish = Array.make workers 0.0 in
  let least_loaded () =
    let best = ref 0 in
    for w = 1 to workers - 1 do
      if finish.(w) < finish.(!best) then best := w
    done;
    !best
  in
  let placements =
    List.map
      (fun (a : action) ->
        let w = least_loaded () in
        let start = finish.(w) in
        finish.(w) <- start +. a.cpu_seconds;
        { action = a; worker = w; start; finish = finish.(w) })
      sorted
  in
  let over_limit =
    match mem_limit with
    | None -> []
    | Some limit ->
      List.filter_map (fun (a : action) -> if a.peak_mem_bytes > limit then Some a.label else None) actions
  in
  {
    num_actions = List.length actions;
    wall_seconds = Array.fold_left Float.max 0.0 finish;
    cpu_seconds = List.fold_left (fun acc (a : action) -> acc +. a.cpu_seconds) 0.0 actions;
    max_action_mem = List.fold_left (fun acc (a : action) -> max acc a.peak_mem_bytes) 0 actions;
    over_limit;
    workers;
    placements;
  }

let worker_timeline r w =
  List.filter (fun p -> p.worker = w) r.placements
  |> List.stable_sort (fun (a : placement) (b : placement) -> compare a.start b.start)

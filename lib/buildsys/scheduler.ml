type action = { label : string; cpu_seconds : float; peak_mem_bytes : int }

type placement = { action : action; worker : int; start : float; finish : float }

type result = {
  num_actions : int;
  wall_seconds : float;
  cpu_seconds : float;
  max_action_mem : int;
  over_limit : string list;
  workers : int;
  placements : placement list;
  stragglers : int;
  speculated : int;
}

(* LPT replans the same action multiset on every build of a program:
   Phase 2 and Phase 4 schedule near-identical sets, and bench sweeps
   replay them dozens of times. Memoize the descending-cost sort on the
   action list itself (structural key); the memo is only touched from
   the build coordinator, never from pool workers. *)
let sort_memo : (action list, action list) Hashtbl.t = Hashtbl.create 64

let memo_hits = ref 0

let plan_memo_hits () = !memo_hits

let lpt_order actions =
  match Hashtbl.find_opt sort_memo actions with
  | Some sorted ->
    incr memo_hits;
    sorted
  | None ->
    let sorted =
      List.stable_sort
        (fun (a : action) (b : action) -> compare b.cpu_seconds a.cpu_seconds)
        actions
    in
    if Hashtbl.length sort_memo > 512 then Hashtbl.reset sort_memo;
    Hashtbl.replace sort_memo actions sorted;
    sorted

(* Effective on-worker duration of an action under a fault plan, plus a
   tag for the straggler accounting. Retries serialize on the action's
   worker: each failed attempt costs a full run plus its backoff wait.
   A straggler runs [straggle_factor] slower; once a full fault-free
   duration has elapsed without completion, a speculative copy is
   issued (the MapReduce backup-task move), so the action completes at
   [min (slowed, detection + rerun)] = [min (slowed, 2 * base)]. *)
let effective_duration plan (a : action) =
  match plan with
  | None -> (a.cpu_seconds, `Normal)
  | Some p ->
    let attempts = Faultsim.Plan.attempts_for p ~key:a.label in
    let base =
      a.cpu_seconds +. Faultsim.Plan.retry_cost p ~attempts ~cpu_seconds:a.cpu_seconds
    in
    if Faultsim.Plan.straggles p ~key:a.label then begin
      let slowed = base *. p.Faultsim.Plan.straggle_factor in
      let backup_done = 2.0 *. base in
      if backup_done < slowed then (backup_done, `Speculated) else (slowed, `Straggler)
    end
    else (base, `Normal)

let schedule ?mem_limit ?faults ~workers actions =
  if workers < 1 then invalid_arg "Scheduler.schedule: workers must be >= 1";
  let sorted = lpt_order actions in
  let finish = Array.make workers 0.0 in
  let least_loaded () =
    let best = ref 0 in
    for w = 1 to workers - 1 do
      if finish.(w) < finish.(!best) then best := w
    done;
    !best
  in
  let stragglers = ref 0 in
  let speculated = ref 0 in
  let placements =
    List.map
      (fun (a : action) ->
        let duration, tag = effective_duration faults a in
        (match tag with
        | `Normal -> ()
        | `Straggler -> incr stragglers
        | `Speculated ->
          incr stragglers;
          incr speculated);
        let w = least_loaded () in
        let start = finish.(w) in
        finish.(w) <- start +. duration;
        { action = a; worker = w; start; finish = finish.(w) })
      sorted
  in
  let over_limit =
    match mem_limit with
    | None -> []
    | Some limit ->
      List.filter_map (fun (a : action) -> if a.peak_mem_bytes > limit then Some a.label else None) actions
  in
  {
    num_actions = List.length actions;
    wall_seconds = Array.fold_left Float.max 0.0 finish;
    cpu_seconds =
      List.fold_left (fun acc (p : placement) -> acc +. (p.finish -. p.start)) 0.0 placements;
    max_action_mem = List.fold_left (fun acc (a : action) -> max acc a.peak_mem_bytes) 0 actions;
    over_limit;
    workers;
    placements;
    stragglers = !stragglers;
    speculated = !speculated;
  }

let critical_path r =
  List.fold_left (fun acc p -> Float.max acc p.action.cpu_seconds) 0.0 r.placements

let worker_timeline r w =
  List.filter (fun p -> p.worker = w) r.placements
  |> List.stable_sort (fun (a : placement) (b : placement) -> compare a.start b.start)

(** Build-system resource cost models.

    Like {!Linker.Costmodel} and {!Boltsim.Costmodel}, absolute
    constants are calibration; the benches compare shapes (who wins,
    ratios, crossovers — Table 5, Fig 4, Fig 9). All outputs are
    deterministic functions of program/profile sizes. *)

(** [codegen_seconds ~code_bytes] — one backend action's compile time:
    constant startup plus throughput-limited code generation.
    Monotonic in [code_bytes]. *)
val codegen_seconds : code_bytes:int -> float

(** [codegen_mem ~code_bytes] — one backend action's peak RSS. *)
val codegen_mem : code_bytes:int -> int

(** Wall-time multiplier of an instrumented (-fprofile-generate) build
    over the plain build — the "PGO: Instrumented build" row of
    Table 5. *)
val instrumentation_overhead : float

(** [wpa_mem ~profile_bytes ~dcfg_blocks ~dcfg_edges] — Phase-3 profile
    conversion + whole-program-analysis peak RSS (Fig 4). The profile
    term is capped: raw profiles are read in fixed-size chunks (§5.1),
    so peak memory scales with the DCFG, not the perf.data size —
    unlike BOLT's {!Boltsim.Costmodel.conversion_mem}. *)
val wpa_mem : profile_bytes:int -> dcfg_blocks:int -> dcfg_edges:int -> int

(** [wpa_seconds ~profile_edges ~dcfg_blocks] — Phase-3 conversion +
    analysis time (Table 5 "Convert"). *)
val wpa_seconds : profile_edges:int -> dcfg_blocks:int -> float

(* Backend actions: a compiler invocation pays process + IR-reading
   startup, then generates code at a fixed throughput. The constants
   put a ~3 KB scaled unit at ~0.5 s, so a 12-unit test program builds
   in seconds and the Table-5 scale-up lands in paper-like minutes. *)
let codegen_startup_seconds = 0.4

let codegen_bytes_per_second = 25_000.0

let codegen_seconds ~code_bytes =
  codegen_startup_seconds +. (float_of_int code_bytes /. codegen_bytes_per_second)

let codegen_mem ~code_bytes = (160 * 1024 * 1024) + (48 * code_bytes)

let instrumentation_overhead = 1.30

(* Phase 3 streams the raw profile in fixed chunks (5.1): the profile
   contribution to peak RSS is capped at one chunk, so conversion
   memory is dominated by the DCFG — blocks and edges that actually
   took samples — not by binary or perf.data size. *)
let profile_chunk_bytes = 256 * 1024 * 1024

let wpa_mem ~profile_bytes ~dcfg_blocks ~dcfg_edges =
  (48 * 1024 * 1024)
  + (160 * dcfg_blocks)
  + (56 * dcfg_edges)
  + (min profile_bytes profile_chunk_bytes / 8)

let wpa_seconds ~profile_edges ~dcfg_blocks =
  2.0 +. (float_of_int profile_edges /. 150_000.0) +. (float_of_int dcfg_blocks /. 40_000.0)

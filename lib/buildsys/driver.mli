(** The distributed-build driver (paper §3.1, §3.4).

    A build turns a program into one object per compilation unit plus a
    linked binary. Each unit is one *action*, keyed by a content digest
    of (tool, unit IR, relevant codegen flags); the object comes from
    the content-addressed {!Cache} on a key hit and from a scheduled
    backend run on a miss. Phase 4 of the pipeline exploits this: only
    units whose layout directives changed get new action keys, so the
    relink re-generates ~hot objects and reuses everything else.

    Every build is instrumented: spans for the codegen fan-out and the
    link (on the env's simulated-clock recorder), cache hit/miss/stored
    counters, and per-action cost histograms.

    {2 Fault tolerance}

    When the env's {!Support.Ctx.t} carries an active
    {!Faultsim.Plan.t}, builds run the warehouse failure drill:

    - cache reads are digest verified ({!Cache.find_verified}); a
      rotted entry is evicted and its unit recompiled from source;
    - transiently failing actions are replayed with exponential backoff
      until an attempt succeeds (the plan forces success at the last
      attempt, so the link always completes);
    - persistently failing units degrade to the last object they
      successfully built ([last_good], the cached base object) — the
      only injected fault, together with Wpa's dropped profile shards,
      that changes output bytes, and every occurrence increments
      [degraded];
    - stragglers and speculative re-issue are modelled by the
      {!Scheduler} (wall time only).

    Invariant: the same plan replays byte-identically at any [--jobs]
    width, and whenever [faults.degraded = 0] the image digest equals
    the fault-free digest. *)

type env = {
  obj_cache : Objfile.File.t Cache.t;
  layout_cache : (Codegen.Directive.func_plan * float) Cache.t;
      (** Content-addressed per-function layout results (plan, score),
          keyed by (function shape, profile counts, layout config); the
          incremental-relink cache Wpa consults on warm relinks. *)
  workers : int;  (** Remote-executor pool size. *)
  mem_limit : int option;  (** Per-action RSS flag threshold. *)
  ctx : Support.Ctx.t;  (** Recorder, pool and fault plan of this env. *)
  last_good : (string, Objfile.File.t) Hashtbl.t;
      (** Last successfully built object per unit name — the fallback
          store persistent action failures degrade to. *)
  corrupted : (Support.Digesting.t, unit) Hashtbl.t;
      (** Keys whose cache entry was already rot-flipped once; the
          recompiled store after detection stays clean. *)
}

(** [recorder env] is the env's telemetry scope ([env.ctx.recorder]). *)
val recorder : env -> Obs.Recorder.t

(** [pool env] is the env's domain pool ([env.ctx.pool]). *)
val pool : env -> Support.Pool.t

(** [make_env ()] builds a fresh env with empty caches. [ctx] defaults
    to {!Support.Ctx.default} (global recorder, global pool sized by
    [--jobs] / [PROPELLER_JOBS], no fault plan); pass an explicit
    context to isolate a run's telemetry or to arm fault injection.
    Results commit in index order, so build outputs are byte-identical
    for any pool width. *)
val make_env : ?workers:int -> ?mem_limit:int -> ?ctx:Support.Ctx.t -> unit -> env

(** Fault accounting of one build. All zero ({!no_faults}) when the
    env's context carries no active plan. *)
type fault_stats = {
  injected : int;
      (** Total injected events: failed attempts, rot flips,
          stragglers (Wpa's dropped shards are counted by the
          pipeline, not here). *)
  retried : int;  (** Extra action attempts beyond the first. *)
  degraded : int;  (** Units that fell back to their last-good object. *)
  fallbacks : int;  (** Same as [degraded] at the driver layer. *)
  corrupt_evicted : int;  (** Verified reads that caught rot. *)
  stragglers : int;  (** Slowed actions (scheduler model). *)
  speculated : int;  (** Stragglers rescued by a backup copy. *)
  backoff_seconds : float;  (** Total modelled backoff wait. *)
}

val no_faults : fault_stats

type result = {
  binary : Linker.Binary.t;
  objs : Objfile.File.t list;  (** One per unit, in program unit order. *)
  cache_hits : int;  (** Units served from the cache in this build. *)
  cache_misses : int;  (** Units re-generated in this build. *)
  wall_seconds : float;  (** Codegen makespan + link time. *)
  cpu_seconds : float;  (** Total backend compute + link time. *)
  codegen_report : Scheduler.result;  (** The codegen fan-out. *)
  link_stats : Linker.Link.stats;
  faults : fault_stats;  (** Fault accounting; {!no_faults} when clean. *)
}

(** [unit_action_key u options] is the content-addressed action key of
    compiling [u] under [options]. Sensitive to the unit's IR, to the
    global codegen flags, and to the directives/prefetch sites naming
    functions of *this* unit — a plan for a foreign function must not
    invalidate it (that selectivity is what Fig 9's cache column
    measures). *)
val unit_action_key : Ir.Cunit.t -> Codegen.options -> Support.Digesting.t

(** [build env ~name ~program ~codegen_options ~link_options] compiles
    every unit (through the cache) and links the result. With an
    active fault plan in [env.ctx] the build additionally runs the
    retry/degradation machinery described above; fault counters
    ([fault.injected/retried/degraded], ...) are recorded only in that
    case, keeping fault-free telemetry byte-identical. *)
val build :
  env ->
  name:string ->
  program:Ir.Program.t ->
  codegen_options:Codegen.options ->
  link_options:Linker.Link.options ->
  result

(** The distributed-build driver (paper §3.1, §3.4).

    A build turns a program into one object per compilation unit plus a
    linked binary. Each unit is one *action*, keyed by a content digest
    of (tool, unit IR, relevant codegen flags); the object comes from
    the content-addressed {!Cache} on a key hit and from a scheduled
    backend run on a miss. Phase 4 of the pipeline exploits this: only
    units whose layout directives changed get new action keys, so the
    relink re-generates ~hot objects and reuses everything else.

    Every build is instrumented: spans for the codegen fan-out and the
    link (on the env's simulated-clock recorder), cache hit/miss/stored
    counters, and per-action cost histograms. *)

type env = {
  obj_cache : Objfile.File.t Cache.t;
  layout_cache : (Codegen.Directive.func_plan * float) Cache.t;
      (** Content-addressed per-function layout results (plan, score),
          keyed by (function shape, profile counts, layout config); the
          incremental-relink cache Wpa consults on warm relinks. *)
  workers : int;  (** Remote-executor pool size. *)
  mem_limit : int option;  (** Per-action RSS flag threshold. *)
  recorder : Obs.Recorder.t;  (** Telemetry scope of this env's builds. *)
  pool : Support.Pool.t;  (** Domain pool for per-function fan-out. *)
}

(** [make_env ()] builds a fresh env with empty caches. [recorder]
    defaults to {!Obs.Recorder.global}; pass a fresh one to isolate a
    run's telemetry (tests do, to compare two runs' exports). [pool]
    defaults to {!Support.Pool.global}, sized by [--jobs] /
    [PROPELLER_JOBS]; results commit in index order, so build outputs
    are byte-identical for any pool width. *)
val make_env :
  ?workers:int ->
  ?mem_limit:int ->
  ?recorder:Obs.Recorder.t ->
  ?pool:Support.Pool.t ->
  unit ->
  env

type result = {
  binary : Linker.Binary.t;
  objs : Objfile.File.t list;  (** One per unit, in program unit order. *)
  cache_hits : int;  (** Units served from the cache in this build. *)
  cache_misses : int;  (** Units re-generated in this build. *)
  wall_seconds : float;  (** Codegen makespan + link time. *)
  cpu_seconds : float;  (** Total backend compute + link time. *)
  codegen_report : Scheduler.result;  (** The codegen fan-out. *)
  link_stats : Linker.Link.stats;
}

(** [unit_action_key u options] is the content-addressed action key of
    compiling [u] under [options]. Sensitive to the unit's IR, to the
    global codegen flags, and to the directives/prefetch sites naming
    functions of *this* unit — a plan for a foreign function must not
    invalidate it (that selectivity is what Fig 9's cache column
    measures). *)
val unit_action_key : Ir.Cunit.t -> Codegen.options -> Support.Digesting.t

(** [build env ~name ~program ~codegen_options ~link_options] compiles
    every unit (through the cache) and links the result. *)
val build :
  env ->
  name:string ->
  program:Ir.Program.t ->
  codegen_options:Codegen.options ->
  link_options:Linker.Link.options ->
  result

type env = {
  obj_cache : Objfile.File.t Cache.t;
  workers : int;
  mem_limit : int option;
  recorder : Obs.Recorder.t;
}

(* Default pool models the distributed backend of a warehouse-scale
   build (paper §3.1): wide enough that codegen wall time is dominated
   by the longest unit, not by queueing. *)
let make_env ?(workers = 256) ?mem_limit ?recorder () =
  let recorder =
    match recorder with Some r -> r | None -> Obs.Recorder.global
  in
  { obj_cache = Cache.create (); workers; mem_limit; recorder }

type result = {
  binary : Linker.Binary.t;
  objs : Objfile.File.t list;
  cache_hits : int;
  cache_misses : int;
  wall_seconds : float;
  cpu_seconds : float;
  codegen_report : Scheduler.result;
  link_stats : Linker.Link.stats;
}

let tool_digest = Support.Digesting.of_string "propeller-backend-v1"

(* Function IR digests are memoized structurally: units are immutable
   between builds, so the Phase-4 rebuild re-digests nothing. *)
let func_digests : (Ir.Func.t, Support.Digesting.t) Hashtbl.t =
  Hashtbl.create 1024

let func_digest f =
  match Hashtbl.find_opt func_digests f with
  | Some d -> d
  | None ->
    let d = Support.Digesting.of_string (Format.asprintf "%a" Ir.Func.pp f) in
    Hashtbl.replace func_digests f d;
    d

let unit_action_key (u : Ir.Cunit.t) (options : Codegen.options) =
  (* Only directives and prefetch sites naming this unit's functions
     enter the key: a plan for a foreign unit must not invalidate it. *)
  let plans =
    List.filter
      (fun (p : Codegen.Directive.func_plan) -> Ir.Cunit.mem u p.func)
      options.plans
  in
  let sites =
    List.filter (fun (f, _) -> Ir.Cunit.mem u f) options.prefetch_sites
  in
  let flags =
    Printf.sprintf "unit=%s|rodata=%d|data=%d|bbmap=%b|pgo=%b|sites=%s"
      u.name u.rodata u.data options.emit_bb_addr_map options.pgo_layout
      (String.concat ";"
         (List.map (fun (f, b) -> Printf.sprintf "%s#%d" f b) sites))
  in
  Support.Digesting.concat
    ((tool_digest :: List.map func_digest u.funcs)
    @ [
        Support.Digesting.of_string flags;
        Support.Digesting.of_string (Codegen.Directive.to_text plans);
      ])

let build env ~name ~program ~codegen_options ~link_options =
  let r = env.recorder in
  Obs.Recorder.with_span r ("build:" ^ name) @@ fun () ->
  let hits = ref 0 and misses = ref 0 in
  let actions = ref [] in
  let objs, codegen_report =
    Obs.Recorder.with_span r "codegen" @@ fun () ->
    let objs =
      List.map
        (fun (u : Ir.Cunit.t) ->
          let key = unit_action_key u codegen_options in
          let obj, hit =
            Cache.find_or_add env.obj_cache key ~size:Objfile.File.total_size
              (fun () -> Codegen.compile_unit codegen_options u)
          in
          (if hit then incr hits
           else begin
             incr misses;
             let code_bytes = Ir.Cunit.code_bytes u in
             let a =
               {
                 Scheduler.label = u.name;
                 cpu_seconds = Costmodel.codegen_seconds ~code_bytes;
                 peak_mem_bytes = Costmodel.codegen_mem ~code_bytes;
               }
             in
             Obs.Recorder.observe r "buildsys.action.cpu_seconds" a.cpu_seconds;
             actions := a :: !actions
           end);
          obj)
        (Ir.Program.units program)
    in
    let report =
      Scheduler.schedule ?mem_limit:env.mem_limit ~workers:env.workers
        (List.rev !actions)
    in
    Obs.Recorder.advance r report.wall_seconds;
    Obs.Recorder.span_args r
      [
        ("actions", Obs.Trace.Int report.num_actions);
        ("cache_hits", Obs.Trace.Int !hits);
        ("workers", Obs.Trace.Int env.workers);
      ];
    (objs, report)
  in
  let outcome =
    Obs.Recorder.with_span r "link" @@ fun () ->
    let o =
      Linker.Link.link ~recorder:r ~options:link_options ~name
        ~entry:(Ir.Program.main program) objs
    in
    Obs.Recorder.advance r o.stats.cpu_seconds;
    o
  in
  Obs.Recorder.incr_counter r "buildsys.builds";
  Obs.Recorder.add_counter r "buildsys.cache.hits" !hits;
  Obs.Recorder.add_counter r "buildsys.cache.misses" !misses;
  Obs.Recorder.set_gauge r "buildsys.cache.stored_bytes"
    (float_of_int (Cache.stored_bytes env.obj_cache));
  Obs.Recorder.counter_sample r "buildsys.cache"
    [
      ("hits", float_of_int (Cache.hits env.obj_cache));
      ("misses", float_of_int (Cache.misses env.obj_cache));
    ];
  {
    binary = outcome.binary;
    objs;
    cache_hits = !hits;
    cache_misses = !misses;
    wall_seconds = codegen_report.wall_seconds +. outcome.stats.cpu_seconds;
    cpu_seconds = codegen_report.cpu_seconds +. outcome.stats.cpu_seconds;
    codegen_report;
    link_stats = outcome.stats;
  }

type env = {
  obj_cache : Objfile.File.t Cache.t;
  layout_cache : (Codegen.Directive.func_plan * float) Cache.t;
  workers : int;
  mem_limit : int option;
  recorder : Obs.Recorder.t;
  pool : Support.Pool.t;
}

(* Default pool models the distributed backend of a warehouse-scale
   build (paper §3.1): wide enough that codegen wall time is dominated
   by the longest unit, not by queueing. *)
let make_env ?(workers = 256) ?mem_limit ?recorder ?pool () =
  let recorder =
    match recorder with Some r -> r | None -> Obs.Recorder.global
  in
  let pool = match pool with Some p -> p | None -> Support.Pool.global () in
  {
    obj_cache = Cache.create ();
    layout_cache = Cache.create ();
    workers;
    mem_limit;
    recorder;
    pool;
  }

type result = {
  binary : Linker.Binary.t;
  objs : Objfile.File.t list;
  cache_hits : int;
  cache_misses : int;
  wall_seconds : float;
  cpu_seconds : float;
  codegen_report : Scheduler.result;
  link_stats : Linker.Link.stats;
}

let tool_digest = Support.Digesting.of_string "propeller-backend-v1"

(* Function IR digests are memoized structurally: units are immutable
   between builds, so the Phase-4 rebuild re-digests nothing. Key
   computation fans out across units on the pool, so the memo is
   guarded by a mutex (writes are rare after the first build). *)
let func_digests : (Ir.Func.t, Support.Digesting.t) Hashtbl.t =
  Hashtbl.create 1024

let func_digests_m = Mutex.create ()

let func_digest f =
  Mutex.lock func_digests_m;
  let cached = Hashtbl.find_opt func_digests f in
  Mutex.unlock func_digests_m;
  match cached with
  | Some d -> d
  | None ->
    let d = Support.Digesting.of_string (Format.asprintf "%a" Ir.Func.pp f) in
    Mutex.lock func_digests_m;
    Hashtbl.replace func_digests f d;
    Mutex.unlock func_digests_m;
    d

let unit_action_key (u : Ir.Cunit.t) (options : Codegen.options) =
  (* Only directives and prefetch sites naming this unit's functions
     enter the key: a plan for a foreign unit must not invalidate it. *)
  let plans =
    List.filter
      (fun (p : Codegen.Directive.func_plan) -> Ir.Cunit.mem u p.func)
      options.plans
  in
  let sites =
    List.filter (fun (f, _) -> Ir.Cunit.mem u f) options.prefetch_sites
  in
  let flags =
    Printf.sprintf "unit=%s|rodata=%d|data=%d|bbmap=%b|pgo=%b|sites=%s"
      u.name u.rodata u.data options.emit_bb_addr_map options.pgo_layout
      (String.concat ";"
         (List.map (fun (f, b) -> Printf.sprintf "%s#%d" f b) sites))
  in
  Support.Digesting.concat
    ((tool_digest :: List.map func_digest u.funcs)
    @ [
        Support.Digesting.of_string flags;
        Support.Digesting.of_string (Codegen.Directive.to_text plans);
      ])

(* Per-unit outcome of the sequential cache pass. [Dup] marks a unit
   whose key is already being compiled for an earlier unit this build:
   its lookup is deferred to the commit pass, where it hits — exactly
   the accounting the one-pass sequential build produced. *)
type slot =
  | Hit of Objfile.File.t
  | Miss of int  (* index into the compiled-misses array *)
  | Dup

(* Commit one domain-lane span per pool worker that ran tasks during
   the phase, so the Chrome trace shows the fan-out (lane = tid 2+w;
   lane 1 keeps the sequential stack spans). *)
let emit_pool_spans r pool ~label ~start ~duration =
  let st = Support.Pool.stats pool in
  let steals = st.steals in
  Array.iteri
    (fun w tasks ->
      if tasks > 0 then
        Obs.Recorder.emit_span r label ~tid:(2 + w) ~start ~duration
          ~args:
            [
              ("domain", Obs.Trace.Int w);
              ("tasks", Obs.Trace.Int tasks);
              ("steals", Obs.Trace.Int (if w = 0 then steals else 0));
            ])
    st.tasks_per_worker

let build env ~name ~program ~codegen_options ~link_options =
  let r = env.recorder in
  Obs.Recorder.with_span r ("build:" ^ name) @@ fun () ->
  let hits = ref 0 and misses = ref 0 in
  let actions = ref [] in
  let objs, codegen_report =
    Obs.Recorder.with_span r "codegen" @@ fun () ->
    Support.Pool.reset_stats env.pool;
    let phase_start = Obs.Recorder.now r in
    let units = Array.of_list (Ir.Program.units program) in
    let n = Array.length units in
    (* Action keys: pure per-unit digesting, fanned out on the pool. *)
    let keys =
      Support.Pool.map_array env.pool n (fun i -> unit_action_key units.(i) codegen_options)
    in
    (* Sequential cache pass in unit order: all Cache state (hit/miss
       counters, LRU stamps) mutates on the coordinator only, so the
       accounting is identical for any pool width. *)
    let pending : (Support.Digesting.t, unit) Hashtbl.t = Hashtbl.create 64 in
    let miss_units = ref [] and num_miss = ref 0 in
    let slots =
      Array.init n (fun i ->
          let key = keys.(i) in
          if Hashtbl.mem pending key then Dup
          else
            match Cache.find env.obj_cache key with
            | Some obj -> Hit obj
            | None ->
              Hashtbl.replace pending key ();
              miss_units := units.(i) :: !miss_units;
              let s = Miss !num_miss in
              incr num_miss;
              s)
    in
    let miss_units = Array.of_list (List.rev !miss_units) in
    (* Backend fan-out: compile every missed unit across the pool. *)
    let compiled =
      Support.Pool.map_array env.pool (Array.length miss_units) (fun j ->
          Codegen.compile_unit ~pool:env.pool codegen_options miss_units.(j))
    in
    (* Commit pass, unit order: store artifacts, settle dup lookups,
       and account scheduler actions — deterministic by construction. *)
    let objs =
      Array.to_list
        (Array.mapi
           (fun i slot ->
             let u = units.(i) in
             match slot with
             | Hit obj ->
               incr hits;
               obj
             | Dup -> (
               match Cache.find env.obj_cache keys.(i) with
               | Some obj ->
                 incr hits;
                 obj
               | None -> assert false (* committed by an earlier index *))
             | Miss j ->
               let obj = compiled.(j) in
               Cache.add env.obj_cache keys.(i) ~size:Objfile.File.total_size obj;
               incr misses;
               let code_bytes = Ir.Cunit.code_bytes u in
               let a =
                 {
                   Scheduler.label = u.name;
                   cpu_seconds = Costmodel.codegen_seconds ~code_bytes;
                   peak_mem_bytes = Costmodel.codegen_mem ~code_bytes;
                 }
               in
               Obs.Recorder.observe r "buildsys.action.cpu_seconds" a.cpu_seconds;
               actions := a :: !actions;
               obj)
           slots)
    in
    let report =
      Scheduler.schedule ?mem_limit:env.mem_limit ~workers:env.workers
        (List.rev !actions)
    in
    Obs.Recorder.advance r report.wall_seconds;
    Obs.Recorder.span_args r
      [
        ("actions", Obs.Trace.Int report.num_actions);
        ("cache_hits", Obs.Trace.Int !hits);
        ("workers", Obs.Trace.Int env.workers);
        ("jobs", Obs.Trace.Int (Support.Pool.jobs env.pool));
      ];
    emit_pool_spans r env.pool ~label:"codegen:domain" ~start:phase_start
      ~duration:report.wall_seconds;
    (objs, report)
  in
  let outcome =
    Obs.Recorder.with_span r "link" @@ fun () ->
    let o =
      Linker.Link.link ~recorder:r ~options:link_options ~name
        ~entry:(Ir.Program.main program) objs
    in
    Obs.Recorder.advance r o.stats.cpu_seconds;
    o
  in
  Obs.Recorder.incr_counter r "buildsys.builds";
  Obs.Recorder.add_counter r "buildsys.cache.hits" !hits;
  Obs.Recorder.add_counter r "buildsys.cache.misses" !misses;
  Obs.Recorder.set_gauge r "buildsys.cache.stored_bytes"
    (float_of_int (Cache.stored_bytes env.obj_cache));
  Obs.Recorder.counter_sample r "buildsys.cache"
    [
      ("hits", float_of_int (Cache.hits env.obj_cache));
      ("misses", float_of_int (Cache.misses env.obj_cache));
    ];
  {
    binary = outcome.binary;
    objs;
    cache_hits = !hits;
    cache_misses = !misses;
    wall_seconds = codegen_report.wall_seconds +. outcome.stats.cpu_seconds;
    cpu_seconds = codegen_report.cpu_seconds +. outcome.stats.cpu_seconds;
    codegen_report;
    link_stats = outcome.stats;
  }

type env = {
  obj_cache : Objfile.File.t Cache.t;
  layout_cache : (Codegen.Directive.func_plan * float) Cache.t;
  workers : int;
  mem_limit : int option;
  ctx : Support.Ctx.t;
  last_good : (string, Objfile.File.t) Hashtbl.t;
  corrupted : (Support.Digesting.t, unit) Hashtbl.t;
}

let recorder env = env.ctx.Support.Ctx.recorder

let pool env = env.ctx.Support.Ctx.pool

(* Default pool models the distributed backend of a warehouse-scale
   build (paper §3.1): wide enough that codegen wall time is dominated
   by the longest unit, not by queueing. *)
let make_env ?(workers = 256) ?mem_limit ?ctx () =
  let ctx = match ctx with Some c -> c | None -> Support.Ctx.default () in
  {
    obj_cache = Cache.create ();
    layout_cache = Cache.create ();
    workers;
    mem_limit;
    ctx;
    last_good = Hashtbl.create 64;
    corrupted = Hashtbl.create 64;
  }

type fault_stats = {
  injected : int;
  retried : int;
  degraded : int;
  fallbacks : int;
  corrupt_evicted : int;
  stragglers : int;
  speculated : int;
  backoff_seconds : float;
}

let no_faults =
  {
    injected = 0;
    retried = 0;
    degraded = 0;
    fallbacks = 0;
    corrupt_evicted = 0;
    stragglers = 0;
    speculated = 0;
    backoff_seconds = 0.0;
  }

type result = {
  binary : Linker.Binary.t;
  objs : Objfile.File.t list;
  cache_hits : int;
  cache_misses : int;
  wall_seconds : float;
  cpu_seconds : float;
  codegen_report : Scheduler.result;
  link_stats : Linker.Link.stats;
  faults : fault_stats;
}

let tool_digest = Support.Digesting.of_string "propeller-backend-v1"

(* Function IR digests are memoized structurally: units are immutable
   between builds, so the Phase-4 rebuild re-digests nothing. Key
   computation fans out across units on the pool, so the memo is
   guarded by a mutex (writes are rare after the first build). *)
let func_digests : (Ir.Func.t, Support.Digesting.t) Hashtbl.t =
  Hashtbl.create 1024

let func_digests_m = Mutex.create ()

let func_digest f =
  Mutex.lock func_digests_m;
  let cached = Hashtbl.find_opt func_digests f in
  Mutex.unlock func_digests_m;
  match cached with
  | Some d -> d
  | None ->
    let d = Support.Digesting.of_string (Format.asprintf "%a" Ir.Func.pp f) in
    Mutex.lock func_digests_m;
    Hashtbl.replace func_digests f d;
    Mutex.unlock func_digests_m;
    d

let unit_action_key (u : Ir.Cunit.t) (options : Codegen.options) =
  (* Only directives and prefetch sites naming this unit's functions
     enter the key: a plan for a foreign unit must not invalidate it. *)
  let plans =
    List.filter
      (fun (p : Codegen.Directive.func_plan) -> Ir.Cunit.mem u p.func)
      options.plans
  in
  let sites =
    List.filter (fun (f, _) -> Ir.Cunit.mem u f) options.prefetch_sites
  in
  let flags =
    Printf.sprintf "unit=%s|rodata=%d|data=%d|bbmap=%b|pgo=%b|sites=%s"
      u.name u.rodata u.data options.emit_bb_addr_map options.pgo_layout
      (String.concat ";"
         (List.map (fun (f, b) -> Printf.sprintf "%s#%d" f b) sites))
  in
  Support.Digesting.concat
    ((tool_digest :: List.map func_digest u.funcs)
    @ [
        Support.Digesting.of_string flags;
        Support.Digesting.of_string (Codegen.Directive.to_text plans);
      ])

(* Structural content digest of a stored object, recorded at cache-add
   time and re-checked by verified reads. Only has to be deterministic
   and sensitive to the object's shape — the rot we detect is a flipped
   *stored* digest (Cache.corrupt), not adversarial tampering. *)
let obj_digest_uncached (o : Objfile.File.t) =
  Support.Digesting.of_string
    (String.concat "|"
       (o.name :: o.unit_name
       :: string_of_bool o.has_inline_asm
       :: List.map
            (fun (s : Objfile.Section.t) ->
              Printf.sprintf "%s:%s:%d:%s:%d" s.name
                (Objfile.Section.kind_to_string s.kind)
                s.align
                (Option.value s.symbol ~default:"")
                (Objfile.Section.size s))
            o.sections))

(* Objects are immutable once built, so their digest is a pure function
   of physical identity — memoized, the verified read of every warm
   cache hit skips the string rebuild. Keyed by physical equality
   (structural hash, [==] compare): a recompiled object is a new key and
   re-digests, and [Cache.corrupt] flips the *stored* digest, so rot
   detection still compares against a freshly correct value. Sequential
   passes only (cache pass / commit pass), hence no lock. *)
module PhysObjTbl = Hashtbl.Make (struct
  type t = Objfile.File.t

  let equal = ( == )

  let hash = Hashtbl.hash
end)

let obj_digests : Support.Digesting.t PhysObjTbl.t = PhysObjTbl.create 256

let obj_digest (o : Objfile.File.t) =
  match PhysObjTbl.find_opt obj_digests o with
  | Some d -> d
  | None ->
    let d = obj_digest_uncached o in
    PhysObjTbl.add obj_digests o d;
    d

(* Per-unit outcome of the sequential cache pass. [Dup] marks a unit
   whose key is already being compiled for an earlier unit this build:
   its lookup is deferred to the commit pass, where it hits — exactly
   the accounting the one-pass sequential build produced. *)
type slot =
  | Hit of Objfile.File.t
  | Miss of int  (* index into the compiled-misses array *)
  | Dup

(* Commit one domain-lane span per pool worker that ran tasks during
   the phase, so the Chrome trace shows the fan-out (lane = tid 2+w;
   lane 1 keeps the sequential stack spans). *)
let emit_pool_spans r pool ~label ~start ~duration =
  let st = Support.Pool.stats pool in
  let steals = st.steals in
  Array.iteri
    (fun w tasks ->
      if tasks > 0 then
        Obs.Recorder.emit_span r label ~tid:(2 + w) ~start ~duration
          ~args:
            [
              ("domain", Obs.Trace.Int w);
              ("tasks", Obs.Trace.Int tasks);
              ("steals", Obs.Trace.Int (if w = 0 then steals else 0));
            ])
    st.tasks_per_worker

let build env ~name ~program ~codegen_options ~link_options =
  let r = recorder env in
  let pool = pool env in
  (* Fault decisions are pure functions of (plan, identity), never of
     schedule state, so every count and every byte below replays
     identically for the same plan at any [--jobs] width. *)
  let plan =
    match env.ctx.Support.Ctx.faults with
    | Some p when Faultsim.Plan.is_active p -> Some p
    | Some _ | None -> None
  in
  Obs.Recorder.with_span r ("build:" ^ name) @@ fun () ->
  let hits = ref 0 and misses = ref 0 in
  let actions = ref [] in
  let injected = ref 0
  and retried = ref 0
  and degraded = ref 0
  and fallbacks = ref 0
  and corrupt_evicted = ref 0
  and backoff_total = ref 0.0 in
  (* Fallback objects of units whose action persistently failed this
     build, keyed by action key so a Dup of the same key resolves to
     the same bytes. Never committed to the cache: the key must stay a
     miss so a later fault-free build recompiles and recovers. *)
  let fallback_keys : (Support.Digesting.t, Objfile.File.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let objs, codegen_report =
    Obs.Recorder.with_span r "codegen" @@ fun () ->
    Support.Pool.reset_stats pool;
    let phase_start = Obs.Recorder.now r in
    let units = Array.of_list (Ir.Program.units program) in
    let n = Array.length units in
    (* Action keys: pure per-unit digesting, fanned out on the pool. *)
    let keys =
      Obs.Recorder.with_span r "digest" @@ fun () ->
      Support.Pool.map_array pool n (fun i -> unit_action_key units.(i) codegen_options)
    in
    (* Sequential cache pass in unit order: all Cache state (hit/miss
       counters, LRU stamps) mutates on the coordinator only, so the
       accounting is identical for any pool width. Reads are digest
       verified: an entry that rotted in storage is evicted and
       recompiled from source, exactly like any other miss. *)
    let pending : (Support.Digesting.t, unit) Hashtbl.t = Hashtbl.create 64 in
    let miss_units = ref [] and num_miss = ref 0 in
    let slots =
      Obs.Recorder.with_span r "cache_pass" @@ fun () ->
      Array.init n (fun i ->
          let key = keys.(i) in
          if Hashtbl.mem pending key then Dup
          else
            let outcome = Cache.find_verified env.obj_cache key ~digest_of:obj_digest in
            (match outcome with
            | `Corrupt ->
              incr corrupt_evicted;
              Obs.Recorder.flight_note r "fault.cache_corrupt" units.(i).Ir.Cunit.name
            | `Hit _ | `Miss -> ());
            match outcome with
            | `Hit obj -> Hit obj
            | `Miss | `Corrupt ->
              Hashtbl.replace pending key ();
              miss_units := units.(i) :: !miss_units;
              let s = Miss !num_miss in
              incr num_miss;
              s)
    in
    let miss_units = Array.of_list (List.rev !miss_units) in
    (* Backend fan-out: compile every missed unit across the pool. *)
    let compiled =
      Obs.Recorder.with_span r "compile" @@ fun () ->
      Support.Pool.map_array pool (Array.length miss_units) (fun j ->
          Codegen.compile_unit ~ctx:env.ctx codegen_options miss_units.(j))
    in
    (* Commit pass, unit order: store artifacts, settle dup lookups,
       account retries/fallbacks, and collect scheduler actions —
       deterministic by construction. *)
    let objs =
      Array.to_list
        (Array.mapi
           (fun i slot ->
             let u = units.(i) in
             let settle obj =
               Hashtbl.replace env.last_good u.Ir.Cunit.name obj;
               obj
             in
             match slot with
             | Hit obj ->
               incr hits;
               settle obj
             | Dup -> (
               match Cache.find env.obj_cache keys.(i) with
               | Some obj ->
                 incr hits;
                 settle obj
               | None -> (
                 match Hashtbl.find_opt fallback_keys keys.(i) with
                 | Some obj -> obj (* same degraded bytes as the earlier index *)
                 | None -> assert false (* committed by an earlier index *)))
             | Miss j ->
               incr misses;
               let persistent_fail =
                 match plan with
                 | Some p ->
                   Faultsim.Plan.persistent p ~unit_name:u.Ir.Cunit.name
                   && Hashtbl.mem env.last_good u.Ir.Cunit.name
                 | None -> false
               in
               if persistent_fail then begin
                 (* Every attempt burned; degrade to the last object
                    this unit successfully built (the cached base
                    object of the fault-free link). *)
                 let p = Option.get plan in
                 let burned = p.Faultsim.Plan.max_attempts in
                 injected := !injected + burned;
                 retried := !retried + (burned - 1);
                 for retry = 1 to burned - 1 do
                   backoff_total :=
                     !backoff_total +. Faultsim.Plan.backoff_seconds p ~retry
                 done;
                 incr fallbacks;
                 incr degraded;
                 Obs.Recorder.flight_note r "fault.fallback" u.Ir.Cunit.name;
                 let obj = Hashtbl.find env.last_good u.Ir.Cunit.name in
                 Hashtbl.replace fallback_keys keys.(i) obj;
                 obj
               end
               else begin
                 (match plan with
                 | Some p ->
                   (* Transient failures: replay until an attempt
                      succeeds (the plan forces success at the last
                      attempt), waiting out the exponential backoff
                      between attempts. Bytes are unaffected. *)
                   let attempts =
                     Faultsim.Plan.attempts_for p ~key:u.Ir.Cunit.name
                   in
                   if attempts > 1 then begin
                     injected := !injected + (attempts - 1);
                     retried := !retried + (attempts - 1);
                     for retry = 1 to attempts - 1 do
                       backoff_total :=
                         !backoff_total +. Faultsim.Plan.backoff_seconds p ~retry
                     done
                   end
                 | None -> ());
                 let obj = compiled.(j) in
                 Cache.add ~digest_of:obj_digest env.obj_cache keys.(i)
                   ~size:Objfile.File.total_size obj;
                 (match plan with
                 | Some p
                   when (not (Hashtbl.mem env.corrupted keys.(i)))
                        && Faultsim.Plan.corrupts p
                             ~key:(Support.Digesting.to_hex keys.(i)) ->
                   (* Rot the entry once per key: the next verified
                      read detects the mismatch, evicts, recompiles —
                      and the recompiled store stays clean. *)
                   Hashtbl.replace env.corrupted keys.(i) ();
                   ignore (Cache.corrupt env.obj_cache keys.(i));
                   incr injected
                 | Some _ | None -> ());
                 let code_bytes = Ir.Cunit.code_bytes u in
                 let a =
                   {
                     Scheduler.label = u.Ir.Cunit.name;
                     cpu_seconds = Costmodel.codegen_seconds ~code_bytes;
                     peak_mem_bytes = Costmodel.codegen_mem ~code_bytes;
                   }
                 in
                 Obs.Recorder.observe r "buildsys.action.cpu_seconds" a.cpu_seconds;
                 actions := a :: !actions;
                 settle obj
               end)
           slots)
    in
    let report =
      Obs.Recorder.with_span r "schedule" @@ fun () ->
      Scheduler.schedule ?mem_limit:env.mem_limit ?faults:plan ~workers:env.workers
        (List.rev !actions)
    in
    injected := !injected + report.stragglers;
    Obs.Recorder.advance r report.wall_seconds;
    Obs.Recorder.span_args r
      [
        ("actions", Obs.Trace.Int report.num_actions);
        ("cache_hits", Obs.Trace.Int !hits);
        ("workers", Obs.Trace.Int env.workers);
        ("jobs", Obs.Trace.Int (Support.Pool.jobs pool));
      ];
    emit_pool_spans r pool ~label:"codegen:domain" ~start:phase_start
      ~duration:report.wall_seconds;
    (objs, report)
  in
  let outcome =
    Obs.Recorder.with_span r "link" @@ fun () ->
    let o =
      Linker.Link.link ~ctx:(Support.Ctx.with_recorder env.ctx r) ~options:link_options
        ~name ~entry:(Ir.Program.main program) objs
    in
    Obs.Recorder.advance r o.stats.cpu_seconds;
    o
  in
  Obs.Recorder.incr_counter r "buildsys.builds";
  Obs.Recorder.add_counter r "buildsys.cache.hits" !hits;
  Obs.Recorder.add_counter r "buildsys.cache.misses" !misses;
  Obs.Recorder.set_gauge r "buildsys.cache.stored_bytes"
    (float_of_int (Cache.stored_bytes env.obj_cache));
  Obs.Recorder.counter_sample r "buildsys.cache"
    [
      ("hits", float_of_int (Cache.hits env.obj_cache));
      ("misses", float_of_int (Cache.misses env.obj_cache));
    ];
  let faults =
    {
      injected = !injected;
      retried = !retried;
      degraded = !degraded;
      fallbacks = !fallbacks;
      corrupt_evicted = !corrupt_evicted;
      stragglers = codegen_report.stragglers;
      speculated = codegen_report.speculated;
      backoff_seconds = !backoff_total;
    }
  in
  (* Fault telemetry only exists when a plan is in force: the fault-free
     path must export byte-identical metrics to the pre-faultsim tree
     (bench baselines compare whole exports). *)
  (match plan with
  | None -> ()
  | Some _ ->
    Obs.Recorder.add_counter r "fault.injected" faults.injected;
    Obs.Recorder.add_counter r "fault.retried" faults.retried;
    Obs.Recorder.add_counter r "fault.degraded" faults.degraded;
    Obs.Recorder.add_counter r "fault.fallbacks" faults.fallbacks;
    Obs.Recorder.add_counter r "fault.cache_corrupt" faults.corrupt_evicted;
    Obs.Recorder.add_counter r "fault.stragglers" faults.stragglers;
    Obs.Recorder.add_counter r "fault.speculated" faults.speculated;
    if faults.backoff_seconds > 0.0 then
      Obs.Recorder.observe r "fault.backoff_seconds" faults.backoff_seconds);
  {
    binary = outcome.binary;
    objs;
    cache_hits = !hits;
    cache_misses = !misses;
    wall_seconds = codegen_report.wall_seconds +. outcome.stats.cpu_seconds;
    cpu_seconds = codegen_report.cpu_seconds +. outcome.stats.cpu_seconds;
    codegen_report;
    link_stats = outcome.stats;
    faults;
  }

(** The remote-executor scheduler: places independent actions (backend
    codegen runs) on a fixed worker pool and accounts the makespan.

    Placement is LPT (longest processing time first): actions sorted by
    descending cost, each assigned to the least-loaded worker — the
    classic 4/3-approximation, and a fair stand-in for a work-stealing
    remote execution service. The resulting per-worker timelines are
    what the build-phase wall times of Table 5 / Fig 9 are made of.

    Actions whose peak memory exceeds the executor's per-action limit
    are flagged in [over_limit] (they would be evicted or re-routed to
    big-RAM workers in the real system — the fate BOLT's monolithic
    memory profile suffers and Propeller's per-object actions avoid). *)

type action = {
  label : string;
  cpu_seconds : float;  (** Modelled backend cost of the action. *)
  peak_mem_bytes : int;  (** Modelled peak RSS of the action. *)
}

(** One scheduled run of an action on a worker. *)
type placement = { action : action; worker : int; start : float; finish : float }

type result = {
  num_actions : int;
  wall_seconds : float;  (** Makespan across the pool. *)
  cpu_seconds : float;
      (** Total compute: sum of effective on-worker durations (equals
          the sum of action costs in a fault-free schedule). *)
  max_action_mem : int;  (** Peak per-action memory over the set. *)
  over_limit : string list;  (** Labels exceeding [mem_limit], input order. *)
  workers : int;
  placements : placement list;  (** In placement (LPT) order. *)
  stragglers : int;  (** Actions slowed by the fault plan. *)
  speculated : int;
      (** Stragglers rescued by a speculative backup copy (the backup
          finished before the slowed original would have). *)
}

(** [schedule ?mem_limit ?faults ~workers actions] places every action;
    raises [Invalid_argument] when [workers < 1].

    With a fault plan, each action's on-worker duration is its modelled
    effective duration: failed attempts replay the action and wait out
    the exponential backoff ({!Faultsim.Plan.retry_cost}); stragglers
    run [straggle_factor] slower, capped by speculative re-issue — once
    a full fault-free duration elapses without completion a backup copy
    is launched, so the action finishes at [min (slowed, 2 * base)].
    Placement order itself never changes (decisions are keyed on action
    labels, not on schedule state), so the same plan replays the same
    schedule at any worker count. *)
val schedule : ?mem_limit:int -> ?faults:Faultsim.Plan.t -> workers:int -> action list -> result

(** [worker_timeline r w] is worker [w]'s placements in start order. *)
val worker_timeline : result -> int -> placement list

(** [critical_path r] is the longest single action's cost — the floor
    the makespan cannot beat no matter how many workers are added (the
    Amdahl bound the [--jobs] sweep report quotes against measured
    speedups). 0 for an empty schedule. *)
val critical_path : result -> float

(** [plan_memo_hits ()] counts LPT plans served from the memoized sort
    (the sorted task list is cached per action list, so repeated builds
    of the same program don't replan from scratch). *)
val plan_memo_hits : unit -> int

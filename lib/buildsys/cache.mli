(** The content-addressed artifact cache (paper §3.1, §3.4).

    Actions are keyed by a digest of (tool, inputs, flags); a key hit
    returns the stored artifact without running the action — the
    mechanism that makes Propeller's Phase-4 relink cheap: only objects
    whose directives changed get re-generated, everything cold is a
    cache hit.

    Hit/miss/stored-bytes accounting is kept per cache; {!Driver}
    mirrors the deltas into its telemetry recorder. *)

type 'a t

val create : unit -> 'a t

(** [find_or_add c key ~size compute] returns [(artifact, hit)]: the
    cached artifact when [key] is present ([hit = true]), otherwise
    [compute ()], stored under [key] and charged [size artifact] bytes
    ([hit = false]). *)
val find_or_add : 'a t -> Support.Digesting.t -> size:('a -> int) -> (unit -> 'a) -> 'a * bool

val hits : 'a t -> int

val misses : 'a t -> int

(** [stored_bytes c] is the total size of all stored artifacts. *)
val stored_bytes : 'a t -> int

(** [hit_rate c] is [hits / (hits + misses)]; 0 before any lookup. *)
val hit_rate : 'a t -> float

(** [num_entries c] counts stored artifacts. *)
val num_entries : 'a t -> int

(** [reset_stats c] zeroes the hit/miss counters; contents (and their
    [stored_bytes] accounting) survive. *)
val reset_stats : 'a t -> unit

(** The content-addressed artifact cache (paper §3.1, §3.4).

    Actions are keyed by a digest of (tool, inputs, flags); a key hit
    returns the stored artifact without running the action — the
    mechanism that makes Propeller's Phase-4 relink cheap: only objects
    whose directives changed get re-generated, and only functions whose
    profile counts changed get their layout recomputed; everything cold
    is a cache hit.

    The cache is optionally bounded: give [create] a byte capacity and
    least-recently-used artifacts are evicted once the store overflows.
    Eviction order is a pure function of the lookup/insert sequence, so
    cache contents stay deterministic for any [--jobs] width (lookups
    and commits always happen on the build coordinator, in unit order).

    Hit/miss/eviction/stored-bytes accounting is kept per cache;
    {!Driver} mirrors the deltas into its telemetry recorder. *)

type 'a t

(** [create ?capacity_bytes ()] makes an empty cache; no capacity means
    unbounded (the warehouse CAS model). *)
val create : ?capacity_bytes:int -> unit -> 'a t

(** [find c key] looks [key] up, counting a hit (and refreshing its LRU
    stamp) or a miss. The build driver uses the split [find]/[add] pair
    so artifact computation can fan out on the domain pool between the
    two, while all cache mutation stays on the coordinator. *)
val find : 'a t -> Support.Digesting.t -> 'a option

(** [add c key ~size v] stores [v] under [key], charging [size v] bytes
    (replacing any previous entry), then evicts LRU entries until the
    store fits the capacity. The just-added key is never evicted.
    When [digest_of] is given, a content digest of [v] is recorded with
    the entry so later {!find_verified} reads can detect rot. *)
val add :
  ?digest_of:('a -> Support.Digesting.t) -> 'a t -> Support.Digesting.t -> size:('a -> int) -> 'a -> unit

(** [find_verified c key ~digest_of] is [find] with an integrity check:
    the stored value is re-digested on read and compared against the
    digest recorded at {!add} time. A mismatch means the entry rotted in
    storage — it is evicted, counted as both a miss and a corruption,
    and reported as [`Corrupt] so the caller re-runs the action (the
    checksum-failure path of a warehouse CAS). Entries stored without a
    digest are trusted and hit normally. *)
val find_verified :
  'a t -> Support.Digesting.t -> digest_of:('a -> Support.Digesting.t) -> [ `Hit of 'a | `Miss | `Corrupt ]

(** [corrupt c key] simulates bit rot: the entry's stored digest is
    flipped in place so the next {!find_verified} read fails
    verification. Returns false when [key] is absent. Used by the fault
    injector ({!Faultsim.Plan.corrupts}) and by tests; plain {!find}
    does not check digests and is unaffected. *)
val corrupt : 'a t -> Support.Digesting.t -> bool

(** [corruptions c] counts verified reads that failed the digest check
    (each also counted as a miss and an eviction of the rotten entry). *)
val corruptions : 'a t -> int

(** [find_or_add c key ~size compute] returns [(artifact, hit)]: the
    cached artifact when [key] is present ([hit = true]), otherwise
    [compute ()], stored under [key] ([hit = false]). *)
val find_or_add : 'a t -> Support.Digesting.t -> size:('a -> int) -> (unit -> 'a) -> 'a * bool

val hits : 'a t -> int

val misses : 'a t -> int

(** [evictions c] counts artifacts dropped by the capacity bound. *)
val evictions : 'a t -> int

(** [stored_bytes c] is the total size of all stored artifacts. *)
val stored_bytes : 'a t -> int

(** [hit_rate c] is [hits / (hits + misses)]; 0 before any lookup. *)
val hit_rate : 'a t -> float

(** [num_entries c] counts stored artifacts. *)
val num_entries : 'a t -> int

(** [mem c key] is presence without touching any counter or LRU state. *)
val mem : 'a t -> Support.Digesting.t -> bool

(** [reset_stats c] zeroes the hit/miss/eviction counters; contents
    (and their [stored_bytes] accounting) survive. *)
val reset_stats : 'a t -> unit

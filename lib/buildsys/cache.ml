type 'a t = {
  entries : (Support.Digesting.t, 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable stored : int;
}

let create () = { entries = Hashtbl.create 256; hits = 0; misses = 0; stored = 0 }

let find_or_add c key ~size compute =
  match Hashtbl.find_opt c.entries key with
  | Some v ->
    c.hits <- c.hits + 1;
    (v, true)
  | None ->
    c.misses <- c.misses + 1;
    let v = compute () in
    Hashtbl.add c.entries key v;
    c.stored <- c.stored + size v;
    (v, false)

let hits c = c.hits

let misses c = c.misses

let stored_bytes c = c.stored

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0.0 else float_of_int c.hits /. float_of_int total

let num_entries c = Hashtbl.length c.entries

let reset_stats c =
  c.hits <- 0;
  c.misses <- 0

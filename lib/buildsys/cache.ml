type 'a entry = {
  value : 'a;
  bytes : int;
  mutable stamp : int;
  mutable stored_digest : Support.Digesting.t option;
      (* Content digest recorded at store time; [find_verified]
         re-digests the value on read and compares. [corrupt] flips it
         to simulate bit rot in the backing store. *)
}

type 'a t = {
  entries : (Support.Digesting.t, 'a entry) Hashtbl.t;
  capacity_bytes : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable corruptions : int;
  mutable stored : int;
  mutable tick : int;  (* LRU clock: bumped on every find/add *)
}

let create ?capacity_bytes () =
  (match capacity_bytes with
  | Some c when c < 0 -> invalid_arg "Cache.create: negative capacity"
  | Some _ | None -> ());
  {
    entries = Hashtbl.create 256;
    capacity_bytes;
    hits = 0;
    misses = 0;
    evictions = 0;
    corruptions = 0;
    stored = 0;
    tick = 0;
  }

let find c key =
  c.tick <- c.tick + 1;
  match Hashtbl.find_opt c.entries key with
  | Some e ->
    c.hits <- c.hits + 1;
    e.stamp <- c.tick;
    Some e.value
  | None ->
    c.misses <- c.misses + 1;
    None

(* Evict least-recently-used entries until the store fits. The entry
   under [keep] (the one just added) is never evicted, so a single
   oversized artifact still lands. Ties cannot happen: stamps are
   unique ticks. *)
let evict_to_fit c ~keep =
  match c.capacity_bytes with
  | None -> ()
  | Some cap ->
    while
      c.stored > cap
      &&
      let victim = ref None in
      Hashtbl.iter
        (fun k (e : 'a entry) ->
          if not (Support.Digesting.equal k keep) then
            match !victim with
            | Some (_, stamp) when stamp <= e.stamp -> ()
            | Some _ | None -> victim := Some (k, e.stamp))
        c.entries;
      match !victim with
      | None -> false
      | Some (k, _) ->
        let e = Hashtbl.find c.entries k in
        Hashtbl.remove c.entries k;
        c.stored <- c.stored - e.bytes;
        c.evictions <- c.evictions + 1;
        true
    do
      ()
    done

let add ?digest_of c key ~size v =
  c.tick <- c.tick + 1;
  let bytes = size v in
  (match Hashtbl.find_opt c.entries key with
  | Some old -> c.stored <- c.stored - old.bytes
  | None -> ());
  let stored_digest = Option.map (fun f -> f v) digest_of in
  Hashtbl.replace c.entries key { value = v; bytes; stamp = c.tick; stored_digest };
  c.stored <- c.stored + bytes;
  evict_to_fit c ~keep:key

(* Drop [key] without touching hit/miss counters (verification owns the
   accounting of corrupt reads). *)
let remove_entry c key (e : 'a entry) =
  Hashtbl.remove c.entries key;
  c.stored <- c.stored - e.bytes

let find_verified c key ~digest_of =
  c.tick <- c.tick + 1;
  match Hashtbl.find_opt c.entries key with
  | None ->
    c.misses <- c.misses + 1;
    `Miss
  | Some e -> (
    match e.stored_digest with
    | None ->
      (* Stored without a digest: nothing to verify against. *)
      c.hits <- c.hits + 1;
      e.stamp <- c.tick;
      `Hit e.value
    | Some d when Support.Digesting.equal d (digest_of e.value) ->
      c.hits <- c.hits + 1;
      e.stamp <- c.tick;
      `Hit e.value
    | Some _ ->
      (* Digest mismatch: the entry rotted in storage. Evict it and
         report a miss — the caller re-runs the action, exactly as a
         warehouse CAS treats a checksum failure. *)
      remove_entry c key e;
      c.misses <- c.misses + 1;
      c.corruptions <- c.corruptions + 1;
      `Corrupt)

let corrupt c key =
  match Hashtbl.find_opt c.entries key with
  | None -> false
  | Some e ->
    let flipped =
      match e.stored_digest with
      | Some d -> Support.Digesting.of_string ("rot:" ^ Support.Digesting.to_hex d)
      | None -> Support.Digesting.of_string "rot:undigested"
    in
    e.stored_digest <- Some flipped;
    true

let find_or_add c key ~size compute =
  match find c key with
  | Some v -> (v, true)
  | None ->
    let v = compute () in
    add c key ~size v;
    (v, false)

let hits c = c.hits

let misses c = c.misses

let evictions c = c.evictions

let corruptions c = c.corruptions

let stored_bytes c = c.stored

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0.0 else float_of_int c.hits /. float_of_int total

let num_entries c = Hashtbl.length c.entries

let mem c key = Hashtbl.mem c.entries key

let reset_stats c =
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0

type 'a entry = { value : 'a; bytes : int; mutable stamp : int }

type 'a t = {
  entries : (Support.Digesting.t, 'a entry) Hashtbl.t;
  capacity_bytes : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable stored : int;
  mutable tick : int;  (* LRU clock: bumped on every find/add *)
}

let create ?capacity_bytes () =
  (match capacity_bytes with
  | Some c when c < 0 -> invalid_arg "Cache.create: negative capacity"
  | Some _ | None -> ());
  {
    entries = Hashtbl.create 256;
    capacity_bytes;
    hits = 0;
    misses = 0;
    evictions = 0;
    stored = 0;
    tick = 0;
  }

let find c key =
  c.tick <- c.tick + 1;
  match Hashtbl.find_opt c.entries key with
  | Some e ->
    c.hits <- c.hits + 1;
    e.stamp <- c.tick;
    Some e.value
  | None ->
    c.misses <- c.misses + 1;
    None

(* Evict least-recently-used entries until the store fits. The entry
   under [keep] (the one just added) is never evicted, so a single
   oversized artifact still lands. Ties cannot happen: stamps are
   unique ticks. *)
let evict_to_fit c ~keep =
  match c.capacity_bytes with
  | None -> ()
  | Some cap ->
    while
      c.stored > cap
      &&
      let victim = ref None in
      Hashtbl.iter
        (fun k (e : 'a entry) ->
          if not (Support.Digesting.equal k keep) then
            match !victim with
            | Some (_, stamp) when stamp <= e.stamp -> ()
            | Some _ | None -> victim := Some (k, e.stamp))
        c.entries;
      match !victim with
      | None -> false
      | Some (k, _) ->
        let e = Hashtbl.find c.entries k in
        Hashtbl.remove c.entries k;
        c.stored <- c.stored - e.bytes;
        c.evictions <- c.evictions + 1;
        true
    do
      ()
    done

let add c key ~size v =
  c.tick <- c.tick + 1;
  let bytes = size v in
  (match Hashtbl.find_opt c.entries key with
  | Some old -> c.stored <- c.stored - old.bytes
  | None -> ());
  Hashtbl.replace c.entries key { value = v; bytes; stamp = c.tick };
  c.stored <- c.stored + bytes;
  evict_to_fit c ~keep:key

let find_or_add c key ~size compute =
  match find c key with
  | Some v -> (v, true)
  | None ->
    let v = compute () in
    add c key ~size v;
    (v, false)

let hits c = c.hits

let misses c = c.misses

let evictions c = c.evictions

let stored_bytes c = c.stored

let hit_rate c =
  let total = c.hits + c.misses in
  if total = 0 then 0.0 else float_of_int c.hits /. float_of_int total

let num_entries c = Hashtbl.length c.entries

let mem c key = Hashtbl.mem c.entries key

let reset_stats c =
  c.hits <- 0;
  c.misses <- 0;
  c.evictions <- 0

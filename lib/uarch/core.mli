(** The front-end micro-architecture simulator.

    Consumes the execution engine's event stream and drives L1i/L2/L3
    caches, the iTLB, the BTB and the DSB, accumulating the performance
    counters of the paper's Table 4 and a front-end cycle model. The
    paper's Skylake events map as follows:

    - I1 [frontend_retired.l1i_miss]: demand L1i misses;
    - I2 [l2_rqsts.code_rd_miss]: L2 code-read misses;
    - I3 (L2-and-beyond stalls): modelled as L3 code misses;
    - T1 [icache_64b.iftag_miss]: all iTLB lookups that missed;
    - T2 [frontend_retired.itlb_miss]: iTLB misses that also missed L1i
      (the stall-causing subset);
    - B1 [baclears.any]: front-end resteers on BTB misses;
    - B2 [br_inst_retired.near_taken]: taken branches. *)

type config = {
  l1i : Cache.params;
  l2 : Cache.params;
  l3 : Cache.params;
  itlb : Tlb.params;
  btb : Btb.params;
  dsb : Dsb.params;
  hugepages : bool;
  page_scale_bits : int;
      (** Shrink TLB pages by 2^bits for scale-reduced programs (see
          {!Tlb.create}). *)
}

val default_config : config

type counters = {
  mutable instructions : int;
  mutable fetch_events : int;
  mutable i1_l1i_miss : int;
  mutable i2_l2_code_miss : int;
  mutable i3_l3_code_miss : int;
  mutable t1_itlb_miss : int;
  mutable t2_itlb_stall_miss : int;
  mutable b1_baclears : int;
  mutable b2_taken_branches : int;
  mutable dsb_misses : int;
  mutable cond_branches : int;
  mutable dmisses : int;  (** Uncovered delinquent-load data misses. *)
  mutable cycles : float;
}

type t

val create : config -> t

(** [sink t] is the event sink to attach to {!Exec.Interp.run}. *)
val sink : t -> Exec.Event.sink

(** [consume t tape] drains a flat event tape directly — the fast path
    to pair with {!Exec.Interp.run_tape} (no closure indirection, no
    per-event boxing). Observationally identical to feeding the same
    events through [sink t]. *)
val consume : t -> Exec.Event.tape -> unit

val counters : t -> counters

(** [cycles t] is the modelled front-end-bound cycle count. *)
val cycles : t -> float

(** [reset t] clears all structures and counters (fresh run). *)
val reset : t -> unit

(** [counters_assoc c] lists the integer event counters in a fixed,
    documented order (exporters and the diagnostics layer iterate this
    instead of hand-listing fields). [cycles] is not included: it is a
    float gauge, not an event count. *)
val counters_assoc : counters -> (string * int) list

(** [publish ?ctx ~name t] records every counter into the context
    recorder's metrics registry as ["uarch.<name>.<counter>"] (default
    recorder: {!Obs.Recorder.global}). [name] labels the run, e.g.
    ["base"] or ["propeller"]. *)
val publish : ?ctx:Support.Ctx.t -> name:string -> t -> unit

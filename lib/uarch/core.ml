type config = {
  l1i : Cache.params;
  l2 : Cache.params;
  l3 : Cache.params;
  itlb : Tlb.params;
  btb : Btb.params;
  dsb : Dsb.params;
  hugepages : bool;
  page_scale_bits : int;
}

let default_config =
  {
    l1i = Cache.l1i_params;
    l2 = Cache.l2_params;
    l3 = { Cache.sets = 8192; ways = 16; line_bytes = 64 };
    itlb = Tlb.skylake;
    btb = Btb.skylake;
    dsb = Dsb.skylake;
    hugepages = false;
    page_scale_bits = 0;
  }

type counters = {
  mutable instructions : int;
  mutable fetch_events : int;
  mutable i1_l1i_miss : int;
  mutable i2_l2_code_miss : int;
  mutable i3_l3_code_miss : int;
  mutable t1_itlb_miss : int;
  mutable t2_itlb_stall_miss : int;
  mutable b1_baclears : int;
  mutable b2_taken_branches : int;
  mutable dsb_misses : int;
  mutable cond_branches : int;
  mutable dmisses : int;  (** uncovered delinquent-load misses *)
  mutable cycles : float;
}

type t = {
  l1i : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  itlb : Tlb.t;
  btb : Btb.t;
  dsb : Dsb.t;
  c : counters;
  cyc : float array;
      (* Hot cycle accumulator. [counters] is a mixed record, so every
         store to [c.cycles] boxes a float; a one-element float array
         stores unboxed. Synced into [c.cycles] on every read. *)
  hugepages : bool;
  mutable last_page : int;
}

(* Penalty model (cycles). Values are in the range hardware manuals and
   top-down analyses quote; only ratios matter for the benches. *)
let decode_width = 4.0



let l2_hit_penalty = 12.0

let l3_hit_penalty = 40.0

let dram_penalty = 120.0

let itlb_walk_penalty_4k = 25.0

let itlb_walk_penalty_2m = 18.0

let resteer_penalty = 10.0

let taken_branch_bubble = 1.0

let dsb_switch_penalty = 2.0

let dmiss_penalty = 80.0 (* average L3/DRAM data stall *)

let create (config : config) =
  {
    l1i = Cache.create config.l1i;
    l2 = Cache.create config.l2;
    l3 = Cache.create config.l3;
    itlb =
      Tlb.create ~page_scale_bits:config.page_scale_bits config.itlb
        ~hugepages:config.hugepages;
    btb = Btb.create config.btb;
    dsb = Dsb.create config.dsb;
    hugepages = config.hugepages;
    c =
      {
        instructions = 0;
        fetch_events = 0;
        i1_l1i_miss = 0;
        i2_l2_code_miss = 0;
        i3_l3_code_miss = 0;
        t1_itlb_miss = 0;
        t2_itlb_stall_miss = 0;
        b1_baclears = 0;
        b2_taken_branches = 0;
        dsb_misses = 0;
        cond_branches = 0;
        dmisses = 0;
        cycles = 0.0;
      };
    cyc = [| 0.0 |];
    last_page = -1;
  }

let[@inline] add_cycles t x = Array.unsafe_set t.cyc 0 (Array.unsafe_get t.cyc 0 +. x)

let sync t = t.c.cycles <- Array.unsafe_get t.cyc 0

let counters t =
  sync t;
  t.c

let cycles t = Array.unsafe_get t.cyc 0

let fetch t addr len insts =
  let c = t.c in
  c.fetch_events <- c.fetch_events + 1;
  let insts = max 1 insts in
  c.instructions <- c.instructions + insts;
  add_cycles t (float_of_int insts /. decode_width);
  (* Touch every 64B line in [addr, addr+len). *)
  let first_line = addr lsr 6 and last_line = (addr + len - 1) lsr 6 in
  for ln = first_line to last_line do
    let a = ln lsl 6 in
    let l1_hit = Cache.access t.l1i a in
    (* iTLB lookup per page transition. *)
    let pg = Tlb.page t.itlb a in
    if pg <> t.last_page then begin
      t.last_page <- pg;
      if not (Tlb.access t.itlb a) then begin
        c.t1_itlb_miss <- c.t1_itlb_miss + 1;
        if not l1_hit then c.t2_itlb_stall_miss <- c.t2_itlb_stall_miss + 1;
        add_cycles t (if t.hugepages then itlb_walk_penalty_2m else itlb_walk_penalty_4k)
      end
    end;
    if not l1_hit then begin
      c.i1_l1i_miss <- c.i1_l1i_miss + 1;
      if Cache.access t.l2 a then add_cycles t l2_hit_penalty
      else begin
        c.i2_l2_code_miss <- c.i2_l2_code_miss + 1;
        if Cache.access t.l3 a then add_cycles t l3_hit_penalty
        else begin
          c.i3_l3_code_miss <- c.i3_l3_code_miss + 1;
          add_cycles t dram_penalty
        end
      end
    end;
    if not (Dsb.access t.dsb a) then begin
      c.dsb_misses <- c.dsb_misses + 1;
      add_cycles t dsb_switch_penalty
    end;
    (* A second DSB window per line (two 32B windows per 64B line). *)
    if not (Dsb.access t.dsb (a + 32)) then begin
      c.dsb_misses <- c.dsb_misses + 1;
      add_cycles t dsb_switch_penalty
    end
  done

(* [kindc] is the dense Event.kind_to_int code (0 = Cond). *)
let[@inline] branch_coded t ~src ~kindc ~taken =
  let c = t.c in
  if kindc = 0 then c.cond_branches <- c.cond_branches + 1;
  if taken then begin
    c.b2_taken_branches <- c.b2_taken_branches + 1;
    add_cycles t taken_branch_bubble;
    if Btb.taken t.btb ~src then begin
      c.b1_baclears <- c.b1_baclears + 1;
      add_cycles t resteer_penalty
    end
  end

let branch t ~src ~dst:_ ~kind ~taken =
  branch_coded t ~src ~kindc:(Exec.Event.kind_to_int kind) ~taken

let dmiss t =
  let c = t.c in
  c.dmisses <- c.dmisses + 1;
  add_cycles t dmiss_penalty

let sink t =
  {
    Exec.Event.on_fetch = (fun addr len insts -> fetch t addr len insts);
    on_branch = (fun ~src ~dst ~kind ~taken -> branch t ~src ~dst ~kind ~taken);
    on_dmiss = (fun ~src:_ -> dmiss t);
    on_request = (fun _ -> ());
  }

(* Direct tape drain: one monomorphic dispatch loop, no closure hops,
   no variant or float boxing per event. *)
let consume t (tape : Exec.Event.tape) =
  let tags = tape.Exec.Event.tags
  and a = tape.Exec.Event.a
  and b = tape.Exec.Event.b
  and c = tape.Exec.Event.c in
  for i = 0 to tape.Exec.Event.len - 1 do
    match Bytes.unsafe_get tags i with
    | '\000' ->
      fetch t (Array.unsafe_get a i) (Array.unsafe_get b i) (Array.unsafe_get c i)
    | '\001' ->
      let meta = Array.unsafe_get c i in
      branch_coded t ~src:(Array.unsafe_get a i) ~kindc:(meta lsr 1)
        ~taken:(meta land 1 = 1)
    | '\002' -> dmiss t
    | _ -> ()
  done

let reset t =
  Cache.reset t.l1i;
  Cache.reset t.l2;
  Cache.reset t.l3;
  Tlb.reset t.itlb;
  Btb.reset t.btb;
  Dsb.reset t.dsb;
  t.last_page <- -1;
  t.cyc.(0) <- 0.0;
  let c = t.c in
  c.instructions <- 0;
  c.fetch_events <- 0;
  c.i1_l1i_miss <- 0;
  c.i2_l2_code_miss <- 0;
  c.i3_l3_code_miss <- 0;
  c.t1_itlb_miss <- 0;
  c.t2_itlb_stall_miss <- 0;
  c.b1_baclears <- 0;
  c.b2_taken_branches <- 0;
  c.dsb_misses <- 0;
  c.cond_branches <- 0;
  c.dmisses <- 0;
  c.cycles <- 0.0

let counters_assoc (c : counters) =
  [
    ("instructions", c.instructions);
    ("fetch_events", c.fetch_events);
    ("i1_l1i_miss", c.i1_l1i_miss);
    ("i2_l2_code_miss", c.i2_l2_code_miss);
    ("i3_l3_code_miss", c.i3_l3_code_miss);
    ("t1_itlb_miss", c.t1_itlb_miss);
    ("t2_itlb_stall_miss", c.t2_itlb_stall_miss);
    ("b1_baclears", c.b1_baclears);
    ("b2_taken_branches", c.b2_taken_branches);
    ("dsb_misses", c.dsb_misses);
    ("cond_branches", c.cond_branches);
    ("dmisses", c.dmisses);
  ]

let publish_with ?recorder ~name t =
  let r = match recorder with Some r -> r | None -> Obs.Recorder.global in
  Obs.Recorder.with_span r ("uarch:publish:" ^ name) @@ fun () ->
  sync t;
  let c = t.c in
  List.iter
    (fun (counter, v) ->
      Obs.Recorder.add_counter r (Printf.sprintf "uarch.%s.%s" name counter) v)
    (counters_assoc c);
  Obs.Recorder.set_gauge r (Printf.sprintf "uarch.%s.cycles" name) c.cycles

let publish ?ctx ~name t =
  publish_with ?recorder:(Option.map (fun c -> c.Support.Ctx.recorder) ctx) ~name t

type params = { sets : int; ways : int; line_bytes : int }

let l1i_params = { sets = 64; ways = 8; line_bytes = 64 }

let l2_params = { sets = 1024; ways = 16; line_bytes = 64 }

type t = {
  p : params;
  tags : int array;  (** [sets * ways], -1 = invalid *)
  lru : int array;  (** per-entry last-use stamp *)
  mutable clock : int;
  line_shift : int;
  set_mask : int;
}

let log2 v =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go v 0

let create p =
  {
    p;
    tags = Array.make (p.sets * p.ways) (-1);
    lru = Array.make (p.sets * p.ways) 0;
    clock = 0;
    line_shift = log2 p.line_bytes;
    set_mask = p.sets - 1;
  }

let line t addr = addr lsr t.line_shift

let access t addr =
  let ln = addr lsr t.line_shift in
  let set = ln land t.set_mask in
  let base = set * t.p.ways in
  t.clock <- t.clock + 1;
  let ways = t.p.ways in
  (* Int sentinel instead of an option: this probe runs several times
     per fetched line and must not allocate. *)
  let rec find w =
    if w >= ways then -1
    else if Array.unsafe_get t.tags (base + w) = ln then w
    else find (w + 1)
  in
  let hit = find 0 in
  if hit >= 0 then begin
    t.lru.(base + hit) <- t.clock;
    true
  end
  else begin
    (* Evict LRU way. *)
    let victim = ref 0 and oldest = ref max_int in
    for w = 0 to t.p.ways - 1 do
      if t.tags.(base + w) = -1 && !oldest > -1 then begin
        victim := w;
        oldest := -1
      end
      else if !oldest > -1 && t.lru.(base + w) < !oldest then begin
        victim := w;
        oldest := t.lru.(base + w)
      end
    done;
    t.tags.(base + !victim) <- ln;
    t.lru.(base + !victim) <- t.clock;
    false
  end

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0

(** Edge-weight synthesis from flat stack samples — the AutoFDO trick.

    A {!Perfmon.Sampler} profile knows only block residency (leaf PCs)
    and call arcs; it has no branch records, so {!Dcfg.build} cannot
    consume it directly. This module bridges the gap the way AutoFDO and
    the Go PGO pipeline do: estimate per-block execution counts from
    size-normalized sample residency, then fit edge weights over the
    *static* CFG successor sets by iterative proportional fitting — each
    block's out-flow and in-flow are scaled toward its count until the
    weights are flow-consistent (a cheap deterministic cousin of LLVM's
    profi solver), with unsampled blocks joining as free nodes that
    carry whatever flow conservation forces through them. Call arcs are
    rescaled from stack-residency units to execution units, and blocks
    whose zero count is statistically uninformative are pinned hot so
    splitting stays conservative. The result is re-encoded as an
    LBR-shaped profile (ranges carry residency, branch records carry
    synthesized edges and call arcs) so the whole WPA path runs
    unchanged.

    Deliberately absent, because the source cannot see them: branch
    direction bits beyond what residency implies, and the mispredict
    table (left empty). That missing information *is* the LBR-fidelity
    gap that [Diagnostics.Fidelity] measures. *)

(** [synthesize ?period ~samples ~program ~binary ()] converts a sampled
    profile collected while executing [binary] (which must carry a BB
    address map) into an LBR-shaped profile. [program] supplies the
    static CFG topology — successor *sets* only; the true branch
    probabilities are never consulted. [period] is the sampler's mean
    sampling period, used to scale residency to execution counts.
    Raises [Invalid_argument] when [binary] has no address map. *)
val synthesize :
  ?period:int ->
  samples:Perfmon.Sampler.profile ->
  program:Ir.Program.t ->
  binary:Linker.Binary.t ->
  unit ->
  Perfmon.Lbr.profile

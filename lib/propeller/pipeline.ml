type config = {
  wpa : Wpa.config;
  lbr : Perfmon.Lbr.config;
  profile_run : Exec.Interp.config;
  hugepages : bool;
  prefetch : bool;  (** Enable §3.5 software prefetch insertion. *)
  pebs : Perfmon.Pebs.config;
  profile_source : Perfmon.Source.t;
  sampler : Perfmon.Sampler.config;
}

let default_config =
  {
    wpa = Wpa.default_config;
    lbr = Perfmon.Lbr.default_config;
    profile_run = Exec.Interp.default_config;
    hugepages = false;
    prefetch = false;
    pebs = Perfmon.Pebs.default_config;
    profile_source = Perfmon.Source.Lbr;
    sampler = Perfmon.Sampler.default_config;
  }

type phase_times = {
  metadata_build_s : float;
  profiling_s : float;
  conversion_s : float;
  optimize_build_s : float;
}

type result = {
  metadata_build : Buildsys.Driver.result;
  source : Perfmon.Source.t;
  profile : Perfmon.Lbr.profile;
  samples : Perfmon.Sampler.profile option;
  wpa : Wpa.result;
  prefetch : Prefetch.result option;
  optimized_build : Buildsys.Driver.result;
  times : phase_times;
  hot_objects : int;
  total_objects : int;
}

let optimized_binary r = r.optimized_build.binary

let metadata_options =
  ( { Codegen.default_options with emit_bb_addr_map = true; pgo_layout = true },
    { Linker.Link.default_options with keep_bb_addr_map = true } )

let optimize_options ?(hugepages = false) (wpa : Wpa.result) =
  ( { Codegen.default_options with emit_bb_addr_map = true; plans = wpa.plans },
    {
      Linker.Link.default_options with
      keep_bb_addr_map = false;
      ordering = Some wpa.ordering;
      text_align = (if hugepages then 2 * 1024 * 1024 else 4096);
    } )

let baseline_build ~env ~program ~name =
  Buildsys.Driver.build env ~name
    ~program
    ~codegen_options:{ Codegen.default_options with emit_bb_addr_map = false; pgo_layout = true }
    ~link_options:Linker.Link.default_options

(* The modelled load-test duration: production profiling runs for a
   fixed wall-clock window regardless of binary (Table 5 'Profile'). *)
let profiling_window_seconds = 8.0 *. 60.0

(* One optimization round. [prev] carries the previous round's analysis
   so that round N profiles a binary already laid out by round N-1 (the
   "additional round of hardware profiling" of paper 4.6). *)
let run_round ?(config = default_config) ~env ~program ~name ~round ~prev () =
  let rec_ = Buildsys.Driver.recorder env in
  Obs.Recorder.with_span rec_ (Printf.sprintf "round:%d" round) @@ fun () ->
  let cg_meta, ld_meta = metadata_options in
  let cg_meta, ld_meta =
    match prev with
    | None -> (cg_meta, ld_meta)
    | Some (w : Wpa.result) ->
      ( { cg_meta with Codegen.plans = w.plans },
        { ld_meta with Linker.Link.ordering = Some w.ordering } )
  in
  let metadata_build =
    Obs.Recorder.with_span rec_ "phase:metadata_build" @@ fun () ->
    let b =
      Buildsys.Driver.build env
        ~name:(Printf.sprintf "%s.pm%d" name round)
        ~program ~codegen_options:cg_meta ~link_options:ld_meta
    in
    Obs.Recorder.span_args rec_
      [
        ("text_bytes", Obs.Trace.Int (Linker.Binary.text_bytes b.binary));
        ("cache_hits", Obs.Trace.Int b.cache_hits);
        ("cache_misses", Obs.Trace.Int b.cache_misses);
      ];
    b
  in
  (* Phase 3: profile the metadata binary under load. Under the Lbr
     source the hardware branch records drive the layout directly; under
     Sampled a software stack sampler observes the same run and its flat
     profile is synthesized into LBR shape (Autofdo) before WPA. PEBS
     miss samples drive prefetch insertion when enabled, either way. *)
  let profile, samples, pebs_profile =
    Obs.Recorder.with_span rec_ "phase:profiling" @@ fun () ->
    let image = Exec.Image.build program metadata_build.binary in
    let lbr_profile = Perfmon.Lbr.create_profile () in
    let sampled = Perfmon.Sampler.create_profile () in
    let pebs_profile = Perfmon.Pebs.create_profile () in
    (* Hot consumers drain the flat event tape directly; the software
       sampler keeps its closure sink behind the replay adapter. LBR and
       PEBS observe disjoint event kinds, so sequential drains see
       exactly what the tee composition did. *)
    let drain =
      let pebs_c =
        if config.prefetch then Some (Perfmon.Pebs.collector_state config.pebs pebs_profile)
        else None
      in
      let drain_pebs tape =
        match pebs_c with Some c -> Perfmon.Pebs.consume c tape | None -> ()
      in
      match config.profile_source with
      | Perfmon.Source.Lbr ->
        let c = Perfmon.Lbr.collector_state config.lbr lbr_profile in
        fun tape ->
          Perfmon.Lbr.consume c tape;
          drain_pebs tape
      | Perfmon.Source.Sampled ->
        let sink = Perfmon.Sampler.collector config.sampler sampled in
        fun tape ->
          Exec.Event.replay tape sink;
          drain_pebs tape
    in
    let (_ : Exec.Interp.stats) =
      Exec.Interp.run_tape ~ctx:env.Buildsys.Driver.ctx image config.profile_run ~drain
    in
    Obs.Recorder.advance rec_ profiling_window_seconds;
    let profile, samples =
      match config.profile_source with
      | Perfmon.Source.Lbr -> (lbr_profile, None)
      | Perfmon.Source.Sampled ->
        Obs.Recorder.add_counter rec_ "pipeline.profile.sw_samples"
          sampled.Perfmon.Sampler.num_samples;
        Obs.Recorder.add_counter rec_ "pipeline.profile.sw_frames"
          sampled.Perfmon.Sampler.num_frames;
        ( Wpa.resolve_profile ~binary:metadata_build.binary
            (Wpa.Sampled
               {
                 samples = sampled;
                 program;
                 period = config.sampler.Perfmon.Sampler.period;
               }),
          Some sampled )
    in
    Obs.Recorder.add_counter rec_ "pipeline.profile.lbr_samples"
      profile.Perfmon.Lbr.num_samples;
    Obs.Recorder.add_counter rec_ "pipeline.profile.lbr_records"
      profile.Perfmon.Lbr.num_records;
    Obs.Recorder.set_gauge rec_ "pipeline.profile.distinct_edges"
      (float_of_int (Perfmon.Lbr.distinct_edges profile));
    Obs.Recorder.span_args rec_
      [
        ("source", Obs.Trace.Str (Perfmon.Source.to_string config.profile_source));
        ("lbr_samples", Obs.Trace.Int profile.Perfmon.Lbr.num_samples);
        ("lbr_records", Obs.Trace.Int profile.Perfmon.Lbr.num_records);
        ("distinct_edges", Obs.Trace.Int (Perfmon.Lbr.distinct_edges profile));
        ("pebs_samples", Obs.Trace.Int pebs_profile.Perfmon.Pebs.num_samples);
      ];
    (profile, samples, pebs_profile)
  in
  let wpa, prefetch =
    Obs.Recorder.with_span rec_ "phase:wpa" @@ fun () ->
    Support.Pool.reset_stats (Buildsys.Driver.pool env);
    let wpa_start = Obs.Recorder.now rec_ in
    let wpa =
      Wpa.analyze ~config:config.wpa ~ctx:env.Buildsys.Driver.ctx
        ~layout_cache:env.Buildsys.Driver.layout_cache ~profile:(Wpa.Lbr profile)
        ~binary:metadata_build.binary ()
    in
    let prefetch =
      if config.prefetch then
        Some (Prefetch.analyze ~pebs:pebs_profile ~binary:metadata_build.binary ())
      else None
    in
    Obs.Recorder.advance rec_ wpa.cpu_seconds;
    Obs.Recorder.span_args rec_
      [
        ("plans", Obs.Trace.Int (List.length wpa.plans));
        ("peak_mem_bytes", Obs.Trace.Int wpa.peak_mem_bytes);
        ("hot_funcs", Obs.Trace.Int wpa.hot_funcs);
        ("dcfg_blocks", Obs.Trace.Int wpa.dcfg_blocks);
        ("dcfg_edges", Obs.Trace.Int wpa.dcfg_edges);
        ("layout_score", Obs.Trace.Float wpa.layout_score);
        ("layout_cache_hits", Obs.Trace.Int wpa.layout_cache_hits);
        ("layout_cache_misses", Obs.Trace.Int wpa.layout_cache_misses);
      ];
    Obs.Recorder.set_gauge rec_ "pipeline.wpa.layout_score" wpa.layout_score;
    Obs.Recorder.set_gauge rec_ "pipeline.wpa.hot_funcs" (float_of_int wpa.hot_funcs);
    Obs.Recorder.add_counter rec_ "wpa.layout_cache.hits" wpa.layout_cache_hits;
    Obs.Recorder.add_counter rec_ "wpa.layout_cache.misses" wpa.layout_cache_misses;
    Obs.Recorder.add_counter rec_ "wpa.layout_cache.evictions" wpa.layout_cache_evictions;
    (* Shard-drop degradation is accounted here (Wpa itself stays free
       of telemetry); counters only exist when a plan is armed so the
       fault-free export stays byte-identical. *)
    if wpa.shards_dropped > 0 || wpa.dropped_hot_funcs > 0 then begin
      Obs.Recorder.add_counter rec_ "fault.injected" wpa.shards_dropped;
      Obs.Recorder.add_counter rec_ "fault.shards_dropped" wpa.shards_dropped;
      Obs.Recorder.add_counter rec_ "fault.degraded" wpa.dropped_hot_funcs;
      Obs.Recorder.add_counter rec_ "fault.dropped_hot_funcs" wpa.dropped_hot_funcs
    end;
    (* One lane per pool domain that ran layout tasks this phase, laid
       over the wpa span's simulated-time extent. *)
    let st = Support.Pool.stats (Buildsys.Driver.pool env) in
    Array.iteri
      (fun w tasks ->
        if tasks > 0 then
          Obs.Recorder.emit_span rec_ "wpa:domain" ~tid:(2 + w) ~start:wpa_start
            ~duration:wpa.cpu_seconds
            ~args:[ ("domain", Obs.Trace.Int w); ("tasks", Obs.Trace.Int tasks) ])
      st.tasks_per_worker;
    (wpa, prefetch)
  in
  (* Phase 4: regenerate hot objects, reuse cold ones, relink. *)
  let cg_opt, ld_opt = optimize_options ~hugepages:config.hugepages wpa in
  let cg_opt =
    match prefetch with
    | Some p -> { cg_opt with Codegen.prefetch_sites = p.sites }
    | None -> cg_opt
  in
  let optimized_build =
    Obs.Recorder.with_span rec_ "phase:optimized_build" @@ fun () ->
    let b =
      Buildsys.Driver.build env
        ~name:(Printf.sprintf "%s.po%d" name round)
        ~program ~codegen_options:cg_opt ~link_options:ld_opt
    in
    Obs.Recorder.span_args rec_
      [
        ("hot_objects", Obs.Trace.Int b.cache_misses);
        ("total_objects", Obs.Trace.Int (List.length b.objs));
        ("text_bytes", Obs.Trace.Int (Linker.Binary.text_bytes b.binary));
      ];
    b
  in
  {
    metadata_build;
    source = config.profile_source;
    profile;
    samples;
    wpa;
    prefetch;
    optimized_build;
    times =
      {
        metadata_build_s = metadata_build.wall_seconds;
        profiling_s = profiling_window_seconds;
        conversion_s = wpa.cpu_seconds;
        optimize_build_s = optimized_build.wall_seconds;
      };
    hot_objects = optimized_build.cache_misses;
    total_objects = List.length optimized_build.objs;
  }

let run ?(config = default_config) ~env ~program ~name () =
  run_round ~config ~env ~program ~name ~round:1 ~prev:None ()

let run_rounds ?(config = default_config) ~rounds ~env ~program ~name () =
  if rounds < 1 then invalid_arg "Pipeline.run_rounds: rounds must be >= 1";
  let rec go r prev acc =
    if r > rounds then List.rev acc
    else begin
      let result = run_round ~config ~env ~program ~name ~round:r ~prev () in
      go (r + 1) (Some result.wpa) (result :: acc)
    end
  in
  go 1 None []

(** Inter-procedural code layout (paper §4.7).

    Runs Ext-TSP over the merged whole-program CFG — intra-function
    edges plus block-granular call arcs — so a multi-modal function can
    split into several clusters, each placed near its callers. Produces
    cluster directives and the global symbol ordering. *)

type result = {
  plans : Codegen.Directive.t;
  ordering : string list;
  score : float;  (** Global Ext-TSP objective achieved. *)
  global_nodes : int;  (** Size of the merged graph (cost driver). *)
}

(** [layout ~policy ~params ~dcfg ~split_threshold ~entry_func] computes
    the global layout over blocks with count > [split_threshold], using
    [policy] to order the merged graph. [result.score] is always the
    Ext-TSP objective under [params.exttsp], whichever policy ran. *)
val layout :
  policy:Layout.Policy.t ->
  params:Layout.Policy.params ->
  dcfg:Dcfg.t ->
  split_threshold:int ->
  entry_func:string ->
  result

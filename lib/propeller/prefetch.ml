type config = { coverage : float; min_samples : int }

let default_config = { coverage = 0.9; min_samples = 2 }

type result = { sites : (string * int) list; sampled_misses : int; covered_misses : int }

let analyze ?(config = default_config) ~(pebs : Perfmon.Pebs.profile)
    ~(binary : Linker.Binary.t) () =
  (* Attribute miss samples to machine blocks via the address map. *)
  let empty = Perfmon.Lbr.create_profile () in
  let dcfg = Dcfg.build ~profile:empty ~binary in
  let per_block : (string * int, int) Hashtbl.t = Hashtbl.create 256 in
  let total = ref 0 in
  Support.Itab.iter
    (fun addr count ->
      total := !total + count;
      (* The sample records the address after the load instruction. *)
      match Dcfg.find_block dcfg (addr - 1) with
      | Some b -> (
        let key = (b.owner, b.bb) in
        match Hashtbl.find_opt per_block key with
        | Some c -> Hashtbl.replace per_block key (c + count)
        | None -> Hashtbl.add per_block key count)
      | None -> ())
    pebs.misses;
  let ranked =
    Hashtbl.fold (fun key c acc -> (key, c) :: acc) per_block []
    |> List.sort (fun (ka, a) (kb, b) ->
           let c = compare b a in
           if c <> 0 then c else compare ka kb)
  in
  let budget = int_of_float (config.coverage *. float_of_int !total) in
  let rec take acc covered = function
    | [] -> (List.rev acc, covered)
    | (key, c) :: rest ->
      if covered >= budget || c < config.min_samples then (List.rev acc, covered)
      else take (key :: acc) (covered + c) rest
  in
  let sites, covered = take [] 0 ranked in
  { sites; sampled_misses = !total; covered_misses = covered }

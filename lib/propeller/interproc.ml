type result = {
  plans : Codegen.Directive.t;
  ordering : string list;
  score : float;
  global_nodes : int;
}

let layout ~(policy : Layout.Policy.t) ~(params : Layout.Policy.params) ~(dcfg : Dcfg.t)
    ~split_threshold ~entry_func =
  let hot = Dcfg.hot_funcs dcfg in
  (* Global node universe: hot blocks of hot functions; entries always
     included. *)
  let nodes = ref [] in
  let gid : (string * int, int) Hashtbl.t = Hashtbl.create 4096 in
  let add owner bb size weight =
    if not (Hashtbl.mem gid (owner, bb)) then begin
      Hashtbl.replace gid (owner, bb) (Hashtbl.length gid);
      nodes := (owner, bb, size, weight) :: !nodes
    end
  in
  List.iter
    (fun (d : Dcfg.dfunc) ->
      let bbs =
        Hashtbl.fold
          (fun bb (b : Dcfg.mblock) acc ->
            if bb = 0 || b.count > split_threshold then (bb, b) :: acc else acc)
          d.dblocks []
        |> List.sort compare
      in
      let bbs =
        if List.exists (fun (bb, _) -> bb = 0) bbs then bbs
        else
          (0, { Dcfg.lo = 0; msize = Option.value ~default:16 (Hashtbl.find_opt dcfg.size_of (d.dname, 0)); owner = d.dname; bb = 0; count = 0 })
          :: bbs
      in
      List.iter (fun (bb, (b : Dcfg.mblock)) -> add d.dname bb b.msize (float_of_int b.count)) bbs)
    hot;
  let node_arr = Array.of_list (List.rev !nodes) in
  let n = Array.length node_arr in
  let sizes = Array.map (fun (_, _, s, _) -> s) node_arr in
  let weights = Array.map (fun (_, _, _, w) -> w) node_arr in
  let edges = ref [] in
  List.iter
    (fun (d : Dcfg.dfunc) ->
      Support.Itab.iter
        (fun key r ->
          let s = Support.Packed.src key and t = Support.Packed.dst key in
          match Hashtbl.find_opt gid (d.dname, s), Hashtbl.find_opt gid (d.dname, t) with
          | Some si, Some ti -> edges := (si, ti, float_of_int r) :: !edges
          | None, _ | _, None -> ())
        d.dedges)
    hot;
  Hashtbl.iter
    (fun (caller, caller_bb, callee) r ->
      match Hashtbl.find_opt gid (caller, caller_bb), Hashtbl.find_opt gid (callee, 0) with
      | Some si, Some ti -> edges := (si, ti, float_of_int !r) :: !edges
      | None, _ | _, None -> ())
    dcfg.call_arcs;
  let edges = List.sort compare !edges in
  let entry =
    match Hashtbl.find_opt gid (entry_func, 0) with
    | Some e -> e
    | None -> 0
  in
  if n = 0 then { plans = []; ordering = []; score = 0.0; global_nodes = 0 }
  else begin
    let problem = Layout.Problem.make ~sizes ~weights ~edges ~entry in
    let order = policy.order ~params problem in
    let score = Layout.Exttsp.score ~params:params.exttsp ~order problem in
    (* Cut the global order into per-function runs; each run becomes a
       placed cluster. The run containing block 0 must *start* with it
       (the function symbol marks the cluster start), so it is split
       there if needed. *)
    let runs = ref [] (* (owner, blocks in order) in layout order, reversed *) in
    List.iter
      (fun g ->
        let owner, bb, _, _ = node_arr.(g) in
        match !runs with
        | (o, bbs) :: rest when String.equal o owner && bb <> 0 ->
          runs := (o, bb :: bbs) :: rest
        | _ -> runs := (owner, [ bb ]) :: !runs)
      (List.map Fun.id order);
    let runs = List.rev_map (fun (o, bbs) -> (o, List.rev bbs)) !runs in
    (* De-fragment: a placed run shorter than 3 blocks does not pay for
       the extra section, CFI fragment and long branches it costs;
       fold such non-entry runs back into their function's primary
       cluster (generating clusters "when profitable", paper 3.4). *)
    let min_run = 3 in
    let deferred : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
    let runs =
      List.filter
        (fun (o, bbs) ->
          match bbs with
          | 0 :: _ -> true
          | _ when List.length bbs >= min_run -> true
          | _ ->
            (match Hashtbl.find_opt deferred o with
            | Some r -> r := !r @ bbs
            | None -> Hashtbl.add deferred o (ref bbs));
            false)
        runs
    in
    let runs =
      List.map
        (fun (o, bbs) ->
          match bbs with
          | 0 :: _ -> (
            match Hashtbl.find_opt deferred o with
            | Some r -> (o, bbs @ !r)
            | None -> (o, bbs))
          | _ -> (o, bbs))
        runs
    in
    (* Assign cluster kinds per function in run order. *)
    let next_extra : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let clusters_of : (string, (Codegen.Directive.cluster * int) list) Hashtbl.t =
      Hashtbl.create 64
    in
    let ordering = ref [] in
    List.iteri
      (fun pos (owner, bbs) ->
        let kind =
          match bbs with
          | 0 :: _ -> Codegen.Directive.Primary
          | _ ->
            let k = 1 + Option.value ~default:0 (Hashtbl.find_opt next_extra owner) in
            Hashtbl.replace next_extra owner k;
            Codegen.Directive.Extra k
        in
        let cluster = { Codegen.Directive.kind; blocks = bbs } in
        Hashtbl.replace clusters_of owner
          ((cluster, pos) :: Option.value ~default:[] (Hashtbl.find_opt clusters_of owner));
        ordering := Codegen.Directive.symbol owner cluster :: !ordering)
      runs;
    let ordering = List.rev !ordering in
    let plans =
      Hashtbl.fold
        (fun owner clusters acc ->
          let clusters = List.sort (fun (_, a) (_, b) -> compare a b) clusters in
          { Codegen.Directive.func = owner; clusters = List.map fst clusters } :: acc)
        clusters_of []
      |> List.sort (fun (a : Codegen.Directive.func_plan) b -> compare a.func b.func)
    in
    (* Cold clusters trail the ordering. *)
    let colds = List.map (fun (p : Codegen.Directive.func_plan) -> Objfile.Symname.cold p.func) plans in
    { plans; ordering = ordering @ colds; score; global_nodes = n }
  end

type mode = Intra | Interproc

type config = {
  mode : mode;
  layout_policy : string;
  policy_params : Layout.Policy.params;
  split_threshold : int;
  hfsort_max_cluster : int;
  split_functions : bool;
}

let default_config =
  {
    mode = Intra;
    layout_policy = "exttsp";
    policy_params = Layout.Policy.default_params;
    split_threshold = 0;
    hfsort_max_cluster = 1 lsl 20;
    split_functions = true;
  }

(* Resolve the configured policy name against the registry; an unknown
   name is a configuration error, reported with the valid names. *)
let resolve_policy name =
  match Layout.Policy.find name with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "unknown layout policy %S (registered: %s)" name
         (String.concat ", " (Layout.Policy.names ())))

(* The two profile regimes WPA can be driven by. An Lbr profile feeds
   Dcfg directly; a Sampled one is first synthesized into LBR shape
   (Autofdo) against the binary under analysis, which needs the static
   CFG topology and the sampler's period for count scaling. *)
type profile_input =
  | Lbr of Perfmon.Lbr.profile
  | Sampled of {
      samples : Perfmon.Sampler.profile;
      program : Ir.Program.t;
      period : int;
    }

let resolve_profile ~binary = function
  | Lbr p -> p
  | Sampled { samples; program; period } ->
    Autofdo.synthesize ~period ~samples ~program ~binary ()

type result = {
  plans : Codegen.Directive.t;
  ordering : string list;
  hot_funcs : int;
  dcfg_blocks : int;
  dcfg_edges : int;
  layout_score : float;
  peak_mem_bytes : int;
  cpu_seconds : float;
  layout_cache_hits : int;
  layout_cache_misses : int;
  layout_cache_evictions : int;
  shards_dropped : int;
  dropped_hot_funcs : int;
}

(* The sampled block universe of one function: sorted block ids (entry
   always included) and their execution counts, the input to hot/cold
   partitioning. *)
let layout_prelude (d : Dcfg.dfunc) =
  let bbs =
    (0 :: Hashtbl.fold (fun bb _ acc -> bb :: acc) d.dblocks [])
    |> List.sort_uniq compare
  in
  let bb_arr = Array.of_list bbs in
  let counts =
    Array.map
      (fun bb ->
        match Hashtbl.find_opt d.dblocks bb with
        | Some (b : Dcfg.mblock) -> float_of_int b.count
        | None -> 0.0)
      bb_arr
  in
  (bb_arr, counts)

(* Turn a hot/cold partition into the function's Ext-TSP instance over
   its hot blocks (sizes from the address map, edges restricted to the
   hot set). Returns the hot block ids alongside, for mapping the
   instance-index order back to block ids. *)
let layout_instance (dcfg : Dcfg.t) (d : Dcfg.dfunc) bb_arr
    (part : Layout.Split.t) =
  let hot_arr = Array.of_list (List.map (fun i -> bb_arr.(i)) part.hot) in
  let idx_of = Hashtbl.create 16 in
  Array.iteri (fun i bb -> Hashtbl.replace idx_of bb i) hot_arr;
  let sizes =
    Array.map
      (fun bb -> Option.value ~default:16 (Hashtbl.find_opt dcfg.size_of (d.dname, bb)))
      hot_arr
  in
  let weights =
    Array.map
      (fun bb ->
        match Hashtbl.find_opt d.dblocks bb with
        | Some (b : Dcfg.mblock) -> float_of_int b.count
        | None -> 0.0)
      hot_arr
  in
  let edges =
    Support.Itab.fold
      (fun key r acc ->
        let s = Support.Packed.src key and t = Support.Packed.dst key in
        match Hashtbl.find_opt idx_of s, Hashtbl.find_opt idx_of t with
        | Some si, Some ti -> (si, ti, float_of_int r) :: acc
        | None, _ | _, None -> acc)
      d.dedges []
    |> List.sort compare
  in
  let entry = Hashtbl.find idx_of 0 in
  (hot_arr, Layout.Problem.make ~sizes ~weights ~edges ~entry)

type block_layout = { blocks : int list; score : float; policy : string }

(* Layout over one function's sampled blocks under the named policy.
   Returns the hot block order, the Ext-TSP score of that order and the
   policy that produced it; shared by Propeller's WPA and the BOLT
   baseline (its cache+ algorithm is the same objective). *)
let block_layout ?(policy = "exttsp") ?(params = Layout.Policy.default_params)
    ?(split_threshold = 0) (dcfg : Dcfg.t) (d : Dcfg.dfunc) =
  let pol = resolve_policy policy in
  let bb_arr, counts = layout_prelude d in
  let part =
    Layout.Split.partition ~counts ~threshold:(float_of_int split_threshold) ()
  in
  let hot_arr, problem = layout_instance dcfg d bb_arr part in
  let order = pol.order ~params problem in
  let score = Layout.Exttsp.score ~params:params.exttsp ~order problem in
  { blocks = List.map (fun i -> hot_arr.(i)) order; score; policy }

(* Wrap a hot-block order into the function's cluster directive; the
   cold remainder becomes the implicit .cold cluster in codegen. *)
let plan_of_order config (dcfg : Dcfg.t) (d : Dcfg.dfunc) ordered_bbs =
  if config.split_functions then
    {
      Codegen.Directive.func = d.dname;
      clusters =
        [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = ordered_bbs } ];
    }
  else begin
    (* Splitting disabled: keep the whole function contiguous by
       appending unsampled blocks to the primary cluster. Blocks the
       address map knows but the profile never saw are appended in id
       order. *)
    let all_bbs = ref [] in
    Array.iter
      (fun (b : Dcfg.mblock) -> if String.equal b.owner d.dname then all_bbs := b.bb :: !all_bbs)
      dcfg.block_index;
    let rest =
      List.sort_uniq compare !all_bbs |> List.filter (fun bb -> not (List.mem bb ordered_bbs))
    in
    {
      Codegen.Directive.func = d.dname;
      clusters =
        [ { Codegen.Directive.kind = Codegen.Directive.Primary; blocks = ordered_bbs @ rest } ];
    }
  end

(* Config half of the layout key, shared by every function of one
   analysis — rendered once, not per hot function. *)
let layout_params_str config =
  let pp = config.policy_params in
  let p = pp.Layout.Policy.exttsp in
  Printf.sprintf
    "|policy=%s|fw=%d|bw=%d|ftw=%h|fww=%h|bww=%h|msc=%d|pq=%b|mcs=%d|seed=%d|rst=%d|steps=%d|thr=%d|split=%b"
    config.layout_policy p.forward_window p.backward_window p.fallthrough_weight
    p.forward_weight p.backward_weight p.max_split_chain p.use_pqueue pp.max_cluster_size
    pp.seed pp.restarts pp.steps config.split_threshold config.split_functions

(* Per-function "|b<bb>:<size>" block-shape segments from the address
   map, built in one pass over the block index (the per-function scan of
   the whole index was the warm path's biggest allocator). *)
let layout_shape_strs (dcfg : Dcfg.t) =
  let owned : (string, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (blk : Dcfg.mblock) ->
      match Hashtbl.find_opt owned blk.owner with
      | Some cell -> cell := (blk.bb, blk.msize) :: !cell
      | None -> Hashtbl.replace owned blk.owner (ref [ (blk.bb, blk.msize) ]))
    dcfg.block_index;
  let shapes = Hashtbl.create (Hashtbl.length owned) in
  Hashtbl.iter
    (fun owner cell ->
      let b = Buffer.create 128 in
      List.iter
        (fun (bb, sz) ->
          Buffer.add_string b "|b";
          Buffer.add_string b (string_of_int bb);
          Buffer.add_char b ':';
          Buffer.add_string b (string_of_int sz))
        (List.sort compare !cell);
      Hashtbl.replace shapes owner (Buffer.contents b))
    owned;
  shapes

(* Content-addressed key of one function's layout problem: everything
   [plan_of_order (block_layout ...)] can read — the function's sampled
   counts and edges, its block shapes from the address map
   ([shape_strs], precomputed), and the layout configuration
   ([params_str], precomputed). Warm relinks whose profile deltas miss
   this function reuse the cached (plan, score) verbatim. *)
let layout_key ~params_str ~shape_strs (d : Dcfg.dfunc) =
  let b = Buffer.create 256 in
  Buffer.add_string b "layout-v1|";
  Buffer.add_string b d.dname;
  Buffer.add_string b params_str;
  (match Hashtbl.find_opt shape_strs d.dname with
  | Some s -> Buffer.add_string b s
  | None -> ());
  let sampled =
    Hashtbl.fold (fun bb (blk : Dcfg.mblock) acc -> (bb, blk.count) :: acc) d.dblocks []
    |> List.sort compare
  in
  List.iter
    (fun (bb, c) ->
      Buffer.add_string b "|c";
      Buffer.add_string b (string_of_int bb);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int c))
    sampled;
  let edges = Support.Itab.sorted_items d.dedges in
  Array.iter
    (fun (key, w) ->
      Buffer.add_string b "|e";
      Buffer.add_string b (string_of_int (Support.Packed.src key));
      Buffer.add_char b '>';
      Buffer.add_string b (string_of_int (Support.Packed.dst key));
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int w))
    edges;
  Support.Digesting.of_string (Buffer.contents b)

let analyze ?(config = default_config) ?ctx ?layout_cache ~profile
    ~(binary : Linker.Binary.t) () =
  let profile = resolve_profile ~binary profile in
  let pool =
    match ctx with
    | Some c -> c.Support.Ctx.pool
    | None -> Support.Pool.global ()
  in
  let plan =
    match ctx with
    | Some c -> (
      match c.Support.Ctx.faults with
      | Some p when Faultsim.Plan.is_active p && p.Faultsim.Plan.shard_drop > 0.0 ->
        Some p
      | Some _ | None -> None)
    | None -> None
  in
  let cache_snapshot () =
    match layout_cache with
    | Some c -> Buildsys.Cache.(hits c, misses c, evictions c)
    | None -> (0, 0, 0)
  in
  let h0, m0, e0 = cache_snapshot () in
  let dcfg = Dcfg.build ~profile ~binary in
  let all_hot = Dcfg.hot_funcs dcfg in
  (* Graceful degradation on missing profile shards: each hot function's
     samples live in one shard of the sharded profile store; a dropped
     shard takes its functions' plans and ordering entries with it —
     they keep the baseline layout, exactly as if never sampled. The
     analysis (and the relink) always completes. *)
  let shards_dropped, hot =
    match plan with
    | None -> (0, all_hot)
    | Some p ->
      ( List.length (Faultsim.Plan.dropped_shards p),
        List.filter
          (fun (d : Dcfg.dfunc) ->
            not
              (Faultsim.Plan.shard_dropped p
                 ~shard:(Faultsim.Plan.shard_of p ~key:d.dname)))
          all_hot )
  in
  let dropped_hot_funcs = List.length all_hot - List.length hot in
  let dcfg_blocks = Dcfg.num_blocks dcfg in
  let dcfg_edges = Dcfg.num_edges dcfg in
  let score = ref 0.0 in
  let plans, ordering =
    match config.mode with
    | Intra ->
      (* Per-function layout, cached and parallel. The sequential
         skeleton (cache lookups, result commits, score accumulation)
         walks hot functions in dcfg order; only the pure per-function
         work — hot/cold partitioning and Ext-TSP — fans out on the
         pool. All floats are summed in the same order for any jobs
         width, so layout_score is bit-identical. *)
      let funcs = Array.of_list hot in
      let n = Array.length funcs in
      let params_str = layout_params_str config in
      let shape_strs = layout_shape_strs dcfg in
      let keys = Array.map (fun d -> layout_key ~params_str ~shape_strs d) funcs in
      let cached =
        Array.map
          (fun key ->
            match layout_cache with
            | Some c -> Buildsys.Cache.find c key
            | None -> None)
          keys
      in
      let miss_idx =
        Array.to_list (Array.init n Fun.id)
        |> List.filter (fun i -> Option.is_none cached.(i))
        |> Array.of_list
      in
      let preludes = Array.map (fun i -> layout_prelude funcs.(i)) miss_idx in
      let parts =
        Layout.Split.partition_batch ~pool
          ~threshold:(float_of_int config.split_threshold)
          ~counts:(Array.map snd preludes) ()
      in
      let hot_and_insts =
        Array.init (Array.length miss_idx) (fun j ->
            layout_instance dcfg funcs.(miss_idx.(j)) (fst preludes.(j)) parts.(j))
      in
      let solved =
        Layout.Policy.order_batch ~params:config.policy_params ~pool
          (resolve_policy config.layout_policy)
          (Array.map snd hot_and_insts)
      in
      let computed =
        Array.init (Array.length miss_idx) (fun j ->
            let hot_arr, _ = hot_and_insts.(j) in
            let order, s = solved.(j) in
            let d = funcs.(miss_idx.(j)) in
            (plan_of_order config dcfg d (List.map (fun i -> hot_arr.(i)) order), s))
      in
      (* Commit pass in hot-function order: store fresh results, sum
         scores, emit plans. *)
      let next_miss = ref 0 in
      let plans =
        Array.to_list
          (Array.init n (fun i ->
               let plan, s =
                 match cached.(i) with
                 | Some v -> v
                 | None ->
                   let j = !next_miss in
                   incr next_miss;
                   let v = computed.(j) in
                   (match layout_cache with
                   | Some c ->
                     Buildsys.Cache.add c keys.(i)
                       ~size:(fun (p, _) ->
                         String.length (Codegen.Directive.to_text [ p ]) + 8)
                       v
                   | None -> ());
                   v
               in
               score := !score +. s;
               plan))
      in
      (* Global function order: C3 over the hot call graph. *)
      let hot_names = Array.map (fun (d : Dcfg.dfunc) -> d.dname) funcs in
      let name_idx = Hashtbl.create 64 in
      Array.iteri (fun i nm -> Hashtbl.replace name_idx nm i) hot_names;
      let fsizes =
        Array.map
          (fun nm ->
            let d = Hashtbl.find dcfg.funcs nm in
            Hashtbl.fold (fun _ (b : Dcfg.mblock) acc -> acc + b.msize) d.dblocks 0)
          hot_names
      in
      let fsamples =
        Array.map (fun nm -> float_of_int (Hashtbl.find dcfg.funcs nm).dsamples) hot_names
      in
      let arcs =
        Dcfg.func_arcs dcfg
        |> List.filter_map (fun (caller, callee, w) ->
               match Hashtbl.find_opt name_idx caller, Hashtbl.find_opt name_idx callee with
               | Some a, Some b -> Some (a, b, w)
               | None, _ | _, None -> None)
      in
      let func_order =
        Layout.Hfsort.order ~max_cluster_size:config.hfsort_max_cluster
          (Layout.Problem.make ~sizes:fsizes ~weights:fsamples ~edges:arcs ~entry:0)
      in
      let primaries = List.map (fun i -> hot_names.(i)) func_order in
      let colds =
        if config.split_functions then List.map Objfile.Symname.cold primaries else []
      in
      (plans, primaries @ colds)
    | Interproc ->
      let r =
        Interproc.layout
          ~policy:(resolve_policy config.layout_policy)
          ~params:config.policy_params ~dcfg ~split_threshold:config.split_threshold
          ~entry_func:binary.entry_symbol
      in
      score := r.score;
      (r.plans, r.ordering)
  in
  let h1, m1, e1 = cache_snapshot () in
  let profile_bytes = Perfmon.Lbr.raw_bytes Perfmon.Lbr.default_config profile in
  {
    plans;
    ordering;
    hot_funcs = List.length hot;
    dcfg_blocks;
    dcfg_edges;
    layout_score = !score;
    peak_mem_bytes = Buildsys.Costmodel.wpa_mem ~profile_bytes ~dcfg_blocks ~dcfg_edges;
    cpu_seconds =
      Buildsys.Costmodel.wpa_seconds
        ~profile_edges:(Perfmon.Lbr.distinct_edges profile)
        ~dcfg_blocks;
    layout_cache_hits = h1 - h0;
    layout_cache_misses = m1 - m0;
    layout_cache_evictions = e1 - e0;
    shards_dropped;
    dropped_hot_funcs;
  }

(** Dynamic control flow graph reconstruction from LBR samples and the
    BB address map — no disassembly (paper §3.3).

    Taken-branch records give the taken edges; the sequential ranges
    between consecutive LBR records give fall-through edges and block
    counts; cross-function records landing on a function entry give
    call arcs. *)

(** One machine basic block, as described by the address map, with its
    accumulated sample count. *)
type mblock = {
  lo : int;  (** Final virtual address. *)
  msize : int;
  owner : string;  (** Owning function (cluster suffixes stripped). *)
  bb : int;  (** Machine-IR block id. *)
  mutable count : int;
}

(** Per-function accumulator. *)
type dfunc = {
  dname : string;
  dblocks : (int, mblock) Hashtbl.t;
  dedges : Support.Itab.t;
      (** Intra-function edge counts keyed by
          [Support.Packed.pack ~src:src_bb ~dst:dst_bb] — one immediate
          int per edge note instead of a tuple + ref. Iteration order is
          slot order; consumers sort (they always had to under
          [Hashtbl]). *)
  mutable dsamples : int;
}

type t = {
  funcs : (string, dfunc) Hashtbl.t;
  call_arcs : (string * int * string, int ref) Hashtbl.t;
      (** (caller, caller bb, callee) -> count; block granularity so the
          inter-procedural layout can place callees near call sites. *)
  block_index : mblock array;  (** All mapped blocks, address-sorted. *)
  size_of : (string * int, int) Hashtbl.t;  (** (func, bb) -> bytes. *)
}

(** [interval_index binary] builds the address-sorted block array from
    the binary's [.llvm_bb_addr_map], counts zeroed. Shared with profile
    synthesis ({!Autofdo}), which needs the address->block mapping
    without a full DCFG. *)
val interval_index : Linker.Binary.t -> mblock array

(** [find_in blocks addr] binary-searches an address-sorted block array
    for the block containing [addr], returning its index and the block. *)
val find_in : mblock array -> int -> (int * mblock) option

(** [find_idx blocks addr] is the index form of {!find_in}: the index of
    the containing block, or [-1]. Allocation-free — the DCFG build
    calls it twice per LBR pair. *)
val find_idx : mblock array -> int -> int

(** [build ~profile ~binary] reconstructs the DCFG from the binary's
    [.llvm_bb_addr_map] (Propeller's path). Raises [Invalid_argument]
    when [binary] has no address map. *)
val build : profile:Perfmon.Lbr.profile -> binary:Linker.Binary.t -> t

(** [build_of_blocks ~profile ~binary] reconstructs the DCFG from the
    binary's placed blocks — the (idealised) product of disassembly,
    used by the BOLT baseline, which has no metadata section. *)
val build_of_blocks : profile:Perfmon.Lbr.profile -> binary:Linker.Binary.t -> t

(** [hot_funcs t] lists functions with samples, name-sorted. *)
val hot_funcs : t -> dfunc list

(** [num_blocks t] / [num_edges t] count sampled blocks / edges. *)
val num_blocks : t -> int

val num_edges : t -> int

(** [find_block t addr] maps an address to its block. *)
val find_block : t -> int -> mblock option

(** [func_arcs t] aggregates call arcs to function granularity (hfsort
    input), sorted for determinism. *)
val func_arcs : t -> (string * string * float) list

type mblock = { lo : int; msize : int; owner : string; bb : int; mutable count : int }

type dfunc = {
  dname : string;
  dblocks : (int, mblock) Hashtbl.t;
  dedges : Support.Itab.t;  (** packed (src bb, dst bb) -> count *)
  mutable dsamples : int;
}

type t = {
  funcs : (string, dfunc) Hashtbl.t;
  call_arcs : (string * int * string, int ref) Hashtbl.t;
      (** (caller, caller bb, callee) -> count *)
  block_index : mblock array;
  size_of : (string * int, int) Hashtbl.t;
}

let interval_index (binary : Linker.Binary.t) =
  let items = ref [] in
  List.iter
    (fun (fm : Objfile.Bbmap.func_map) ->
      match Linker.Binary.symbol_addr binary fm.func with
      | None -> ()
      | Some sym_addr ->
        let owner = Objfile.Symname.owner fm.func in
        List.iter
          (fun (e : Objfile.Bbmap.entry) ->
            items :=
              { lo = sym_addr + e.offset; msize = e.size; owner; bb = e.bb_id; count = 0 }
              :: !items)
          fm.entries)
    binary.bb_maps;
  let arr = Array.of_list !items in
  Array.sort (fun a b -> compare a.lo b.lo) arr;
  arr

(* Index form of the interval search: [-1] for "no block". The DCFG
   build runs it twice per LBR pair, so the hot path avoids the option
   and tuple of [find_in]. *)
let find_idx arr addr =
  let rec search lo hi =
    if lo > hi then -1
    else begin
      let mid = (lo + hi) / 2 in
      let b = arr.(mid) in
      if addr < b.lo then search lo (mid - 1)
      else if addr >= b.lo + b.msize then search (mid + 1) hi
      else mid
    end
  in
  search 0 (Array.length arr - 1)

let find_in arr addr =
  match find_idx arr addr with
  | -1 -> None
  | i -> Some (i, arr.(i))

let build_with ~profile blocks =
  let funcs : (string, dfunc) Hashtbl.t = Hashtbl.create 1024 in
  let dfunc_of owner =
    match Hashtbl.find_opt funcs owner with
    | Some d -> d
    | None ->
      let d =
        { dname = owner; dblocks = Hashtbl.create 16; dedges = Support.Itab.create 16; dsamples = 0 }
      in
      Hashtbl.replace funcs owner d;
      d
  in
  let note_block (b : mblock) n =
    b.count <- b.count + n;
    let d = dfunc_of b.owner in
    d.dsamples <- d.dsamples + n;
    if not (Hashtbl.mem d.dblocks b.bb) then Hashtbl.replace d.dblocks b.bb b
  in
  let note_edge owner src_bb dst_bb n =
    let d = dfunc_of owner in
    Support.Itab.add d.dedges (Support.Packed.pack ~src:src_bb ~dst:dst_bb) n
  in
  let call_arcs : (string * int * string, int ref) Hashtbl.t = Hashtbl.create 256 in
  let note_call caller caller_bb callee n =
    match Hashtbl.find_opt call_arcs (caller, caller_bb, callee) with
    | Some r -> r := !r + n
    | None -> Hashtbl.replace call_arcs (caller, caller_bb, callee) (ref n)
  in
  (* Taken-branch records: the branch retires at [src] (its end
     address); the block containing src-1 is the source block. *)
  Perfmon.Lbr.iter_pairs
    (fun ~src ~dst n ->
      let si = find_idx blocks (src - 1) in
      if si >= 0 then begin
        let di = find_idx blocks dst in
        if di >= 0 then begin
          let sb = blocks.(si) and db = blocks.(di) in
          note_block db n;
          if String.equal sb.owner db.owner then note_edge sb.owner sb.bb db.bb n
          else if db.bb = 0 && db.lo = dst then note_call sb.owner sb.bb db.owner n
          (* otherwise: a return landing mid-block; not a CFG edge *)
        end
      end)
    profile.Perfmon.Lbr.branches;
  (* Execution covered [range_lo, range_hi): range_hi is the end
     address of the next recorded branch, so a block *starting* exactly
     there never ran. Top-level recursion (via the pre-allocated
     [note_block]/[note_edge] closures) — a nested [let rec] would
     allocate a closure per LBR range entry. *)
  let rec walk_range note_block note_edge blocks range_hi n i =
    if i < Array.length blocks then begin
      let b = blocks.(i) in
      if b.lo < range_hi then begin
        note_block b n;
        (if i + 1 < Array.length blocks then begin
           let nxt = blocks.(i + 1) in
           if nxt.lo = b.lo + b.msize && String.equal nxt.owner b.owner && nxt.lo < range_hi
           then note_edge b.owner b.bb nxt.bb n
         end);
        walk_range note_block note_edge blocks range_hi n (i + 1)
      end
    end
  in
  (* Sequential ranges between consecutive LBR records: fall-through
     edges and block counts. *)
  Perfmon.Lbr.iter_pairs
    (fun ~src:range_lo ~dst:range_hi n ->
      match find_idx blocks range_lo with
      | -1 -> ()
      | i0 -> walk_range note_block note_edge blocks range_hi n i0)
    profile.Perfmon.Lbr.ranges;
  let size_of : (string * int, int) Hashtbl.t = Hashtbl.create 4096 in
  Array.iter (fun b -> Hashtbl.replace size_of (b.owner, b.bb) b.msize) blocks;
  { funcs; call_arcs; block_index = blocks; size_of }

let build ~profile ~(binary : Linker.Binary.t) =
  if binary.bb_maps = [] then
    invalid_arg "Dcfg.build: binary carries no .llvm_bb_addr_map (not a metadata build)";
  build_with ~profile (interval_index binary)

(* Disassembly-equivalent view: block boundaries recovered from the
   binary's placed blocks instead of metadata. This is what a (perfect)
   recursive disassembler would reconstruct; BOLT-style tools consume
   profiles through this path. *)
let build_of_blocks ~profile ~(binary : Linker.Binary.t) =
  let items = ref [] in
  Hashtbl.iter
    (fun (func, bb) (info : Linker.Binary.block_info) ->
      ignore func;
      ignore bb;
      items :=
        { lo = info.addr; msize = info.size; owner = info.func; bb = info.block; count = 0 }
        :: !items)
    binary.blocks;
  let arr = Array.of_list !items in
  Array.sort (fun a b -> compare a.lo b.lo) arr;
  build_with ~profile arr

let hot_funcs t =
  Hashtbl.fold (fun _ d acc -> if d.dsamples > 0 then d :: acc else acc) t.funcs []
  |> List.sort (fun a b -> compare a.dname b.dname)

let num_blocks t =
  Hashtbl.fold (fun _ d acc -> acc + Hashtbl.length d.dblocks) t.funcs 0

let num_edges t = Hashtbl.fold (fun _ d acc -> acc + Support.Itab.length d.dedges) t.funcs 0

let find_block t addr = Option.map snd (find_in t.block_index addr)

let func_arcs t =
  let agg = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (caller, _, callee) r ->
      match Hashtbl.find_opt agg (caller, callee) with
      | Some a -> a := !a + !r
      | None -> Hashtbl.add agg (caller, callee) (ref !r))
    t.call_arcs;
  Hashtbl.fold (fun (caller, callee) r acc -> (caller, callee, float_of_int !r) :: acc) agg []
  |> List.sort compare

(** The end-to-end Propeller workflow (paper Fig 1, §3).

    Phase 1/2 — build the PGO-optimized binary with profile-mapping
    metadata through the distributed build system (objects land in the
    content-addressed cache). Phase 3 — run the workload, sample LBRs,
    and run the whole-program analysis. Phase 4 — re-run codegen for the
    hot objects only (their action keys changed), reuse every cold
    object from the cache, and relink with the global section order. *)

type config = {
  wpa : Wpa.config;
  lbr : Perfmon.Lbr.config;
  profile_run : Exec.Interp.config;  (** Load-test driving the profile. *)
  hugepages : bool;  (** Map text with 2M pages in production. *)
  prefetch : bool;  (** Also run §3.5 software prefetch insertion. *)
  pebs : Perfmon.Pebs.config;
  profile_source : Perfmon.Source.t;
      (** Where the layout profile comes from: hardware branch records
          ([Lbr], the default) or portable software stack samples
          ([Sampled], synthesized into LBR shape before WPA). *)
  sampler : Perfmon.Sampler.config;  (** Used when [profile_source = Sampled]. *)
}

val default_config : config

type phase_times = {
  metadata_build_s : float;  (** Phase 2: distributed codegen + link. *)
  profiling_s : float;  (** Load test (modelled, §5.6). *)
  conversion_s : float;  (** Phase 3: profile conversion + WPA. *)
  optimize_build_s : float;  (** Phase 4: hot codegen + relink. *)
}

type result = {
  metadata_build : Buildsys.Driver.result;  (** The "PM" build. *)
  source : Perfmon.Source.t;  (** Which regime produced [profile]. *)
  profile : Perfmon.Lbr.profile;
      (** The LBR-shaped profile WPA consumed: raw records under [Lbr],
          the Autofdo synthesis under [Sampled]. *)
  samples : Perfmon.Sampler.profile option;
      (** The raw software samples, when [source = Sampled]. *)
  wpa : Wpa.result;
  prefetch : Prefetch.result option;  (** §3.5 directives, if enabled. *)
  optimized_build : Buildsys.Driver.result;  (** The "PO" build. *)
  times : phase_times;
  hot_objects : int;  (** Objects re-generated in Phase 4. *)
  total_objects : int;
}

(** [optimized_binary r] is the Propeller-optimized executable. *)
val optimized_binary : result -> Linker.Binary.t

(** [run ?config ~env ~program ~name ()] executes phases 1–4. The same
    [env] must be reused across phases (its cache is the point); a fresh
    env still works, it just pays full cost in Phase 4. *)
val run :
  ?config:config ->
  env:Buildsys.Driver.env ->
  program:Ir.Program.t ->
  name:string ->
  unit ->
  result

(** [run_rounds ?config ~rounds ~env ~program ~name ()] iterates the
    pipeline: round N's metadata binary is built with round N-1's
    layout, so its hardware profile observes the *optimized* binary —
    the paper's extra-profiling-round refinement (§4.6, ~1% more on
    clang). Returns one result per round, in order. *)
val run_rounds :
  ?config:config ->
  rounds:int ->
  env:Buildsys.Driver.env ->
  program:Ir.Program.t ->
  name:string ->
  unit ->
  result list

(** [baseline_build ~env ~program ~name] produces the PGO+ThinLTO
    baseline binary (no metadata, compile-time layout only) — the
    comparison base of every experiment (§5 methodology). *)
val baseline_build :
  env:Buildsys.Driver.env -> program:Ir.Program.t -> name:string -> Buildsys.Driver.result

(** [metadata_options] / [optimize_options wpa] expose the exact codegen
    and link option pairs the pipeline uses, for tests and ablations. *)
val metadata_options : Codegen.options * Linker.Link.options

val optimize_options : ?hugepages:bool -> Wpa.result -> Codegen.options * Linker.Link.options

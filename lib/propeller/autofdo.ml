(* Average encoded instruction size used to convert block byte sizes to
   instruction counts. Only relative weights matter downstream, so a
   constant is enough. *)
let bytes_per_inst = 4

let bump tbl key n =
  match Hashtbl.find_opt tbl key with
  | Some c -> Hashtbl.replace tbl key (c + n)
  | None -> Hashtbl.add tbl key n

let synthesize ?(period = Perfmon.Sampler.default_config.Perfmon.Sampler.period)
    ~(samples : Perfmon.Sampler.profile) ~(program : Ir.Program.t)
    ~(binary : Linker.Binary.t) () =
  if binary.Linker.Binary.bb_maps = [] then
    invalid_arg "Autofdo.synthesize: binary has no .llvm_bb_addr_map";
  let period = max 1 period in
  let blocks = Dcfg.interval_index binary in
  let n = Array.length blocks in
  let resid = Array.make n 0 in
  Hashtbl.iter
    (fun leaf c ->
      match Dcfg.find_in blocks leaf with
      | Some (i, _) -> resid.(i) <- resid.(i) + c
      | None -> ())
    samples.Perfmon.Sampler.leaves;
  let by_id = Hashtbl.create (max 16 (2 * n)) in
  Array.iteri (fun i (b : Dcfg.mblock) -> Hashtbl.replace by_id (b.owner, b.bb) i) blocks;
  (* Exact instruction count per block, from the IR (a real tool reads
     it off the disassembly). Encoded sizes vary per instruction, so
     msize / bytes_per_inst is only the fallback for blocks the program
     view does not cover. *)
  let insts = Array.make n 0 in
  Array.iteri
    (fun i (b : Dcfg.mblock) -> insts.(i) <- max 1 (b.Dcfg.msize / bytes_per_inst))
    blocks;
  Ir.Program.iter_funcs program (fun (f : Ir.Func.t) ->
      Array.iter
        (fun (blk : Ir.Block.t) ->
          match Hashtbl.find_opt by_id (f.name, blk.id) with
          | Some i -> insts.(i) <- max 1 (List.length blk.body + 1)
          | None -> ())
        f.blocks);
  (* Size-normalized execution-count estimate: a sample lands in a block
     once every [period] instructions executed there, so
     exec ~= samples * period / insts(block). *)
  let est = Array.make n 0 in
  for i = 0 to n - 1 do
    if resid.(i) > 0 then est.(i) <- max 1 (resid.(i) * period / insts.(i))
  done;
  let profile = Perfmon.Lbr.create_profile () in
  let records = ref 0 in
  let add tbl ~src ~dst w =
    Perfmon.Lbr.add_pair tbl ~src ~dst w;
    records := !records + w
  in
  (* Block residency: a one-byte self-range pins the block's count
     without implying any fall-through edge (Dcfg's range walk stops
     before the next block starts).

     An unsampled block of a sampled function is pinned at count 1 —
     kept out of the cold section — unless its absence is statistically
     meaningful: "no samples" cannot distinguish cold from
     merely-brief, and splitting on an uninformative zero exiles
     executed blocks, whose later executions pay far-jump icache
     misses (the over-splitting failure AutoFDO deployments guard
     against with conservative split thresholds). The confidence test:
     had the block run as often as the function's hottest block, would
     it have drawn at least [zero_confidence] samples? If yes, the
     zero says the block is far off the hot path and exiling it is
     safe; if no, the function is too lightly sampled to trust zeros.
     Functions with no samples anywhere keep all-zero counts and stay
     out of the hot set entirely, so provably-cold code is still
     exiled. *)
  let zero_confidence = 5 in
  let est_max : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i (b : Dcfg.mblock) ->
      if est.(i) > 0 then
        match Hashtbl.find_opt est_max b.Dcfg.owner with
        | Some m when m >= est.(i) -> ()
        | _ -> Hashtbl.replace est_max b.Dcfg.owner est.(i))
    blocks;
  Array.iteri
    (fun i (b : Dcfg.mblock) ->
      if b.msize > 0 then begin
        if est.(i) > 0 then add profile.Perfmon.Lbr.ranges ~src:b.lo ~dst:(b.lo + 1) est.(i)
        else begin
          match Hashtbl.find_opt est_max b.Dcfg.owner with
          | Some m when m * insts.(i) < zero_confidence * period ->
            add profile.Perfmon.Lbr.ranges ~src:b.lo ~dst:(b.lo + 1) 1
          | _ -> ()
        end
      end)
    blocks;
  (* Synthesized intra-function edges, by flow inference: only the
     static successor lists ([Term.successors]) and the block residency
     estimates are consulted — the true and PGO-trained branch
     probabilities are ground truth a sampling profiler cannot see.

     A naive residency-proportional split sends real weight down both
     arms of every conditional, which misleads Ext-TSP into breaking
     natural fall-throughs (measurably worse than the baseline layout).
     Instead we fit edge weights to the two flow-conservation
     constraints the counts imply — out-flow of a block sums to its
     count, in-flow likewise (function entries excluded: their count
     arrives via calls) — with a few rounds of iterative proportional
     fitting, the cheap deterministic cousin of LLVM's profi solver.

     Blocks the sampler never hit (small or briefly-live) join the
     network as *free* nodes: no count constraint, just a balance step
     keeping in-flow = out-flow. Conservation then routes flow through
     them exactly when the sampled neighbours demand it, so an
     executed-but-unsampled block keeps a nonzero count instead of
     being exiled to the cold section (the profi trick). *)
  let ipf_rounds = 10 in
  Ir.Program.iter_funcs program (fun (f : Ir.Func.t) ->
      (* Local edge list in block order: (src idx, dst idx, weight).
         Free-node edges start at an epsilon weight: visible to the
         balance step, negligible against sampled counts. *)
      let edges = ref [] in
      Array.iter
        (fun (blk : Ir.Block.t) ->
          match Hashtbl.find_opt by_id (f.name, blk.id) with
          | None -> ()
          | Some i ->
            if blocks.(i).Dcfg.msize > 0 then
              List.iter
                (fun s ->
                  match Hashtbl.find_opt by_id (f.name, s) with
                  | Some j ->
                    let init = if est.(j) > 0 then float_of_int est.(j) else 1.0 in
                    edges := (i, j, ref init) :: !edges
                  | None -> ())
                (Ir.Term.successors blk.term))
        f.blocks;
      let edges = List.rev !edges in
      if List.exists (fun (i, j, _) -> est.(i) > 0 || est.(j) > 0) edges then begin
        let group key =
          let tbl = Hashtbl.create 16 in
          List.iter
            (fun ((i, j, r) : int * int * float ref) ->
              let k = key i j in
              match Hashtbl.find_opt tbl k with
              | Some cell -> cell := r :: !cell
              | None -> Hashtbl.add tbl k (ref [ r ]))
            edges;
          tbl
        in
        let outs = group (fun i _ -> i) and ins = group (fun _ j -> j) in
        let sum_cell cell = List.fold_left (fun acc r -> acc +. !r) 0.0 !cell in
        let scale_to tbl k target =
          match Hashtbl.find_opt tbl k with
          | None -> ()
          | Some cell ->
            let sum = sum_cell cell in
            if sum > 0.0 then List.iter (fun r -> r := !r *. (target /. sum)) !cell
        in
        let scale tbl keep =
          Hashtbl.iter
            (fun k cell ->
              if keep k && est.(k) > 0 then begin
                let sum = sum_cell cell in
                if sum > 0.0 then begin
                  let s = float_of_int est.(k) /. sum in
                  List.iter (fun r -> r := !r *. s) !cell
                end
              end)
            tbl
        in
        (* Deterministic free-node order for the balance step. *)
        let free_nodes =
          List.sort_uniq compare
            (List.concat_map
               (fun (i, j, _) ->
                 List.filter (fun k -> est.(k) = 0) [ i; j ])
               edges)
        in
        for _ = 1 to ipf_rounds do
          scale outs (fun _ -> true);
          (* A function entry's count arrives on call arcs, not intra
             edges; in-scaling it would force spurious back-edge flow. *)
          scale ins (fun j -> blocks.(j).Dcfg.bb <> 0);
          List.iter
            (fun k ->
              let in_sum =
                match Hashtbl.find_opt ins k with Some c -> sum_cell c | None -> 0.0
              in
              let out_sum =
                match Hashtbl.find_opt outs k with Some c -> sum_cell c | None -> 0.0
              in
              (* A free node with no successors in the network is a
                 sink (ret/exit); one with no predecessors keeps its
                 epsilon out-flow. Both sums present: meet halfway. *)
              if in_sum > 0.0 && out_sum > 0.0 then begin
                let t = (in_sum +. out_sum) /. 2.0 in
                scale_to ins k t;
                scale_to outs k t
              end)
            free_nodes
        done;
        List.iter
          (fun (i, j, r) ->
            let w = int_of_float (Float.round !r) in
            (* Edges touching a free node must show real routed flow:
               a bare epsilon remnant would mark every statically
               reachable block hot and undo splitting entirely. *)
            let floor = if est.(i) = 0 || est.(j) = 0 then 2 else 1 in
            if w >= floor then begin
              (* The record retires at the block's end address; Dcfg
                 probes src-1, the block's last byte. *)
              let src_end = blocks.(i).Dcfg.lo + blocks.(i).Dcfg.msize in
              add profile.Perfmon.Lbr.branches ~src:src_end ~dst:blocks.(j).Dcfg.lo w
            end)
          edges
      end);
  (* Call arcs from the stack walks. The (site, callee-entry) pairs are
     real addresses from the run, so Dcfg's entry-landing rule
     classifies them as calls — but their raw counts are at
     stack-residency scale (every sample credits every frame pair on
     the stack), not call-frequency scale. Re-emitting them verbatim
     inflates callee entry-block counts by orders of magnitude against
     the flow-fitted intra weights. Rescale each callee's incoming arcs
     to sum to its entry block's execution estimate, preserving the
     relative caller mix (the signal hfsort wants). *)
  let arc_in : (int, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (_, centry) c -> bump arc_in centry c)
    samples.Perfmon.Sampler.arcs;
  (* Fallback scale for callees whose entry block drew no samples: the
     global est-mass-per-arc-count ratio of the callees that did. *)
  let cov_est = ref 0 and cov_arc = ref 0 in
  Hashtbl.iter
    (fun centry total ->
      match Dcfg.find_in blocks centry with
      | Some (i, b) when b.Dcfg.lo = centry && b.Dcfg.bb = 0 && est.(i) > 0 ->
        cov_est := !cov_est + est.(i);
        cov_arc := !cov_arc + total
      | _ -> ())
    arc_in;
  let fallback_scale =
    if !cov_arc > 0 then float_of_int !cov_est /. float_of_int !cov_arc else 1.0
  in
  Hashtbl.iter
    (fun (site, centry) c ->
      let w =
        match Dcfg.find_in blocks centry with
        | Some (i, b) when b.Dcfg.lo = centry && b.Dcfg.bb = 0 && est.(i) > 0 ->
          let total = max 1 (Hashtbl.find arc_in centry) in
          est.(i) * c / total
        | _ -> int_of_float (Float.round (float_of_int c *. fallback_scale))
      in
      add profile.Perfmon.Lbr.branches ~src:site ~dst:centry (max 1 w))
    samples.Perfmon.Sampler.arcs;
  profile.Perfmon.Lbr.num_samples <- samples.Perfmon.Sampler.num_samples;
  profile.Perfmon.Lbr.num_records <- !records;
  profile

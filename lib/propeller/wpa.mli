(** Phase 3 — Whole Program Analysis (paper §3.3).

    Consumes (a) the hardware LBR profile and (b) the metadata binary's
    symbol table and [.llvm_bb_addr_map] — and nothing else. LBR
    addresses are mapped to machine basic blocks through the address
    map; a dynamic control flow graph (DCFG) is built incrementally
    from the samples; Ext-TSP computes per-function (or whole-program)
    block orders; the results are emitted as compiler directives
    ([cc_prof]) and a linker symbol ordering ([ld_prof]).

    No disassembly happens anywhere: block boundaries, sizes and ids all
    come from the metadata section. *)

type mode =
  | Intra  (** Per-function layout; clusters = hot + cold (§3.5). *)
  | Interproc
      (** Whole-program Ext-TSP over the merged CFG with call edges;
          functions may split into multiple placed clusters (§4.7). *)

type config = {
  mode : mode;
  layout_policy : string;
      (** Registered {!Layout.Policy} name ordering blocks (default
          ["exttsp"]); {!analyze} raises [Invalid_argument] on unknown
          names. *)
  policy_params : Layout.Policy.params;
  split_threshold : int;  (** Block counts <= threshold are cold. *)
  hfsort_max_cluster : int;
  split_functions : bool;  (** Emit [.cold] clusters at all (§4.6). *)
}

val default_config : config

(** The profile regime driving the analysis. [Lbr] is the paper's path:
    hardware branch records consumed by {!Dcfg} directly. [Sampled] is
    the portable fallback: flat stack samples, synthesized into LBR
    shape by {!Autofdo} against the binary under analysis — [program]
    supplies the static CFG topology and [period] the sampler's mean
    period for count scaling. *)
type profile_input =
  | Lbr of Perfmon.Lbr.profile
  | Sampled of {
      samples : Perfmon.Sampler.profile;
      program : Ir.Program.t;
      period : int;
    }

(** [resolve_profile ~binary input] is the LBR-shaped profile WPA will
    actually consume: the identity for [Lbr], {!Autofdo.synthesize} for
    [Sampled]. Exposed so callers can resolve once and reuse the result
    (e.g. for diagnostics) without synthesizing twice. *)
val resolve_profile : binary:Linker.Binary.t -> profile_input -> Perfmon.Lbr.profile

type result = {
  plans : Codegen.Directive.t;  (** cc_prof: per-function clusters. *)
  ordering : string list;  (** ld_prof: global section symbol order. *)
  hot_funcs : int;
  dcfg_blocks : int;  (** Blocks with observed samples. *)
  dcfg_edges : int;
  layout_score : float;  (** Total Ext-TSP objective achieved. *)
  peak_mem_bytes : int;  (** Modelled Phase-3 peak RSS (Fig 4). *)
  cpu_seconds : float;  (** Modelled conversion+analysis time. *)
  layout_cache_hits : int;
      (** Functions whose (plan, score) came from the relink cache in
          this call; 0 when no cache was given. *)
  layout_cache_misses : int;  (** Functions laid out from scratch. *)
  layout_cache_evictions : int;  (** Entries dropped by capacity. *)
  shards_dropped : int;
      (** Profile shards the fault plan dropped (0 without a plan). *)
  dropped_hot_funcs : int;
      (** Hot functions that lost their samples to a dropped shard and
          kept the baseline layout — each is a degradation the caller
          should count against [fault.degraded]. *)
}

(** One function's hot-block layout: the block order, its Ext-TSP
    score, and the policy that produced it. *)
type block_layout = { blocks : int list; score : float; policy : string }

(** [block_layout ?policy ?params ?split_threshold dcfg dfunc] computes
    the hot-block order of one function under the named layout policy
    (default ["exttsp"]) and its Ext-TSP score; shared with the BOLT
    baseline (same objective, different delivery). *)
val block_layout :
  ?policy:string ->
  ?params:Layout.Policy.params ->
  ?split_threshold:int ->
  Dcfg.t ->
  Dcfg.dfunc ->
  block_layout

(** [layout_params_str config] renders the configuration half of the
    layout key, shared by every function of one analysis. *)
val layout_params_str : config -> string

(** [layout_shape_strs dcfg] renders each function's block-shape key
    segment from the address map, in one pass over the block index. *)
val layout_shape_strs : Dcfg.t -> (string, string) Hashtbl.t

(** [layout_key ~params_str ~shape_strs dfunc] is the content-addressed
    key of one function's layout problem: a digest over the function's
    sampled counts and edges, its block shapes from the address map
    ([shape_strs]), and the layout configuration ([params_str]). Two
    profiles that agree on a function produce the same key, so warm
    relinks reuse its cached (plan, score). *)
val layout_key :
  params_str:string ->
  shape_strs:(string, string) Hashtbl.t ->
  Dcfg.dfunc ->
  Support.Digesting.t

(** [analyze ?config ?ctx ?layout_cache ~profile ~binary ()] runs the
    whole-program analysis against a metadata binary (one linked with
    [keep_bb_addr_map = true]; raises [Invalid_argument] otherwise).

    Per-function partitioning and Ext-TSP fan out on the context's
    domain pool (default {!Support.Pool.global}); results commit in
    deterministic order, so plans, ordering and [layout_score] are
    identical for any pool width. With [layout_cache], functions whose
    {!layout_key} is cached skip layout entirely — the
    incremental-relink fast path — and the result's [layout_cache_*]
    fields report this call's deltas.

    When [ctx] carries an active fault plan with a positive shard-drop
    rate, the sharded profile store loses shards: hot functions hashed
    to a dropped shard are analyzed as if never sampled (baseline
    layout, no ordering entry) and counted in [dropped_hot_funcs]; the
    analysis itself always completes. Shard drops model the Intra
    per-function profile store and do not apply to [Interproc] mode. *)
val analyze :
  ?config:config ->
  ?ctx:Support.Ctx.t ->
  ?layout_cache:(Codegen.Directive.func_plan * float) Buildsys.Cache.t ->
  profile:profile_input ->
  binary:Linker.Binary.t ->
  unit ->
  result

type t = Lbr | Sampled

let to_string = function Lbr -> "lbr" | Sampled -> "sampled"

let of_string = function
  | "lbr" -> Some Lbr
  | "sampled" -> Some Sampled
  | _ -> None

let all = [ Lbr; Sampled ]

let equal a b = a = b

type config = { period : int; buffer_depth : int }

let default_config = { period = 101; buffer_depth = 32 }

type profile = {
  branches : (int * int, int) Hashtbl.t;
  ranges : (int * int, int) Hashtbl.t;
  mispredicts : (int * int, int) Hashtbl.t;
  mutable num_samples : int;
  mutable num_records : int;
}

let create_profile () =
  {
    branches = Hashtbl.create 4096;
    ranges = Hashtbl.create 4096;
    mispredicts = Hashtbl.create 1024;
    num_samples = 0;
    num_records = 0;
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> Hashtbl.replace tbl key (c + 1)
  | None -> Hashtbl.add tbl key 1

let collector config profile =
  let depth = config.buffer_depth in
  let ring_src = Array.make depth 0 in
  let ring_dst = Array.make depth 0 in
  let ring_mis = Array.make depth false in
  let head = ref 0 (* next write position *) in
  let filled = ref 0 in
  let since_sample = ref 0 in
  (* Per-record MISPRED bit, as real LBR hardware stores it. Conditional
     direction is predicted by a 2-bit saturating counter per branch
     address; indirect-jump targets by the last target seen at the
     source. Unconditional direct transfers never mispredict. *)
  let cond_state : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let ind_last : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let predict ~src ~dst ~kind ~taken =
    match (kind : Exec.Event.branch_kind) with
    | Exec.Event.Cond ->
      let st = Option.value (Hashtbl.find_opt cond_state src) ~default:1 in
      let predicted_taken = st >= 2 in
      Hashtbl.replace cond_state src (if taken then min 3 (st + 1) else max 0 (st - 1));
      predicted_taken <> taken
    | Exec.Event.Indirect ->
      let last = Hashtbl.find_opt ind_last src in
      Hashtbl.replace ind_last src dst;
      last <> Some dst
    | Exec.Event.Uncond | Exec.Event.Call | Exec.Event.Ret -> false
  in
  let sample () =
    profile.num_samples <- profile.num_samples + 1;
    let n = !filled in
    (* Oldest-to-newest traversal of the ring. *)
    let start = (!head - n + (2 * depth)) mod depth in
    let prev_dst = ref (-1) in
    for k = 0 to n - 1 do
      let i = (start + k) mod depth in
      profile.num_records <- profile.num_records + 1;
      bump profile.branches (ring_src.(i), ring_dst.(i));
      if ring_mis.(i) then bump profile.mispredicts (ring_src.(i), ring_dst.(i));
      if !prev_dst >= 0 && ring_src.(i) >= !prev_dst then
        bump profile.ranges (!prev_dst, ring_src.(i));
      prev_dst := ring_dst.(i)
    done
  in
  {
    Exec.Event.on_fetch = (fun _ _ _ -> ());
    on_branch =
      (fun ~src ~dst ~kind ~taken ->
        let mispredicted = predict ~src ~dst ~kind ~taken in
        if taken then begin
          ring_src.(!head) <- src;
          ring_dst.(!head) <- dst;
          ring_mis.(!head) <- mispredicted;
          head := (!head + 1) mod depth;
          if !filled < depth then incr filled;
          incr since_sample;
          if !since_sample >= config.period then begin
            since_sample := 0;
            sample ()
          end
        end);
    on_dmiss = (fun ~src:_ -> ());
    on_request = (fun _ -> ());
  }

let raw_bytes config profile = profile.num_samples * ((24 * config.buffer_depth) + 64)

let distinct_edges profile = Hashtbl.length profile.branches + Hashtbl.length profile.ranges

let table_total tbl = Hashtbl.fold (fun _ n acc -> acc + n) tbl 0

let branch_total profile = table_total profile.branches

let range_total profile = table_total profile.ranges

let mispredict_total profile = table_total profile.mispredicts

let mispredict_count profile ~src ~dst =
  Option.value (Hashtbl.find_opt profile.mispredicts (src, dst)) ~default:0

let mispredict_rate profile ~src ~dst =
  match Hashtbl.find_opt profile.branches (src, dst) with
  | None | Some 0 -> 0.0
  | Some n -> float_of_int (mispredict_count profile ~src ~dst) /. float_of_int n

let merge_table dst src =
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt dst k with
      | Some c -> Hashtbl.replace dst k (c + v)
      | None -> Hashtbl.add dst k v)
    src

let merge a b =
  merge_table a.branches b.branches;
  merge_table a.ranges b.ranges;
  merge_table a.mispredicts b.mispredicts;
  a.num_samples <- a.num_samples + b.num_samples;
  a.num_records <- a.num_records + b.num_records

type config = { period : int; buffer_depth : int }

let default_config = { period = 101; buffer_depth = 32 }

type profile = {
  branches : (int * int, int) Hashtbl.t;
  ranges : (int * int, int) Hashtbl.t;
  mutable num_samples : int;
  mutable num_records : int;
}

let create_profile () =
  { branches = Hashtbl.create 4096; ranges = Hashtbl.create 4096; num_samples = 0; num_records = 0 }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> Hashtbl.replace tbl key (c + 1)
  | None -> Hashtbl.add tbl key 1

let collector config profile =
  let depth = config.buffer_depth in
  let ring_src = Array.make depth 0 in
  let ring_dst = Array.make depth 0 in
  let head = ref 0 (* next write position *) in
  let filled = ref 0 in
  let since_sample = ref 0 in
  let sample () =
    profile.num_samples <- profile.num_samples + 1;
    let n = !filled in
    (* Oldest-to-newest traversal of the ring. *)
    let start = (!head - n + (2 * depth)) mod depth in
    let prev_dst = ref (-1) in
    for k = 0 to n - 1 do
      let i = (start + k) mod depth in
      profile.num_records <- profile.num_records + 1;
      bump profile.branches (ring_src.(i), ring_dst.(i));
      if !prev_dst >= 0 && ring_src.(i) >= !prev_dst then
        bump profile.ranges (!prev_dst, ring_src.(i));
      prev_dst := ring_dst.(i)
    done
  in
  {
    Exec.Event.on_fetch = (fun _ _ _ -> ());
    on_branch =
      (fun ~src ~dst ~kind:_ ~taken ->
        if taken then begin
          ring_src.(!head) <- src;
          ring_dst.(!head) <- dst;
          head := (!head + 1) mod depth;
          if !filled < depth then incr filled;
          incr since_sample;
          if !since_sample >= config.period then begin
            since_sample := 0;
            sample ()
          end
        end);
    on_dmiss = (fun ~src:_ -> ());
    on_request = (fun _ -> ());
  }

let raw_bytes config profile = profile.num_samples * ((24 * config.buffer_depth) + 64)

let distinct_edges profile = Hashtbl.length profile.branches + Hashtbl.length profile.ranges

let table_total tbl = Hashtbl.fold (fun _ n acc -> acc + n) tbl 0

let branch_total profile = table_total profile.branches

let range_total profile = table_total profile.ranges

let merge a b =
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt a.branches k with
      | Some c -> Hashtbl.replace a.branches k (c + v)
      | None -> Hashtbl.add a.branches k v)
    b.branches;
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt a.ranges k with
      | Some c -> Hashtbl.replace a.ranges k (c + v)
      | None -> Hashtbl.add a.ranges k v)
    b.ranges;
  a.num_samples <- a.num_samples + b.num_samples;
  a.num_records <- a.num_records + b.num_records

type config = { period : int; buffer_depth : int }

let default_config = { period = 101; buffer_depth = 32 }

(* Address-pair tables are flat int->int maps over packed
   (src lsl 31) lor dst keys (Support.Packed): one immediate key per
   record instead of a heap tuple per bump. *)
type profile = {
  branches : Support.Itab.t;
  ranges : Support.Itab.t;
  mispredicts : Support.Itab.t;
  mutable num_samples : int;
  mutable num_records : int;
}

let create_profile () =
  {
    branches = Support.Itab.create 4096;
    ranges = Support.Itab.create 4096;
    mispredicts = Support.Itab.create 1024;
    num_samples = 0;
    num_records = 0;
  }

let add_pair tbl ~src ~dst n = Support.Itab.add tbl (Support.Packed.pack ~src ~dst) n

let find_pair tbl ~src ~dst =
  if src < 0 || src > Support.Packed.max_addr || dst < 0 || dst > Support.Packed.max_addr
  then 0
  else Support.Itab.find tbl (Support.Packed.pack_unsafe ~src ~dst)

let iter_pairs f tbl =
  Support.Itab.iter
    (fun key n -> f ~src:(Support.Packed.src key) ~dst:(Support.Packed.dst key) n)
    tbl

let pair_total tbl = Support.Itab.fold (fun _ n acc -> acc + n) tbl 0

(* Collector state. The rings and predictor tables are flat arrays and
   int tables, so steady-state collection allocates nothing. Per-record
   MISPRED bit, as real LBR hardware stores it: conditional direction
   by a 2-bit saturating counter per branch address, indirect-jump
   targets by the last target seen at the source; unconditional direct
   transfers never mispredict. *)
type collector = {
  period : int;
  depth : int;
  ring_src : int array;
  ring_dst : int array;
  ring_mis : bool array;
  mutable head : int;  (* next write position *)
  mutable filled : int;
  mutable since_sample : int;
  cond_state : Support.Itab.t;
  ind_last : Support.Itab.t;
  profile : profile;
}

let collector_state config profile =
  let depth = config.buffer_depth in
  {
    period = config.period;
    depth;
    ring_src = Array.make depth 0;
    ring_dst = Array.make depth 0;
    ring_mis = Array.make depth false;
    head = 0;
    filled = 0;
    since_sample = 0;
    cond_state = Support.Itab.create 1024;
    ind_last = Support.Itab.create 256;
    profile;
  }

let sample c =
  let p = c.profile in
  p.num_samples <- p.num_samples + 1;
  let n = c.filled in
  (* Oldest-to-newest traversal of the ring. *)
  let start = (c.head - n + (2 * c.depth)) mod c.depth in
  let prev_dst = ref (-1) in
  for k = 0 to n - 1 do
    let i = (start + k) mod c.depth in
    p.num_records <- p.num_records + 1;
    let src = c.ring_src.(i) and dst = c.ring_dst.(i) in
    add_pair p.branches ~src ~dst 1;
    if c.ring_mis.(i) then add_pair p.mispredicts ~src ~dst 1;
    if !prev_dst >= 0 && src >= !prev_dst then add_pair p.ranges ~src:!prev_dst ~dst:src 1;
    prev_dst := dst
  done

(* [kindc] is the dense Event.kind_to_int code (0 = Cond, 2 = Indirect). *)
let[@inline] predict c ~src ~dst ~kindc ~taken =
  if kindc = 0 then begin
    let st = Support.Itab.find_default c.cond_state ~default:1 src in
    let predicted_taken = st >= 2 in
    Support.Itab.set c.cond_state src (if taken then min 3 (st + 1) else max 0 (st - 1));
    predicted_taken <> taken
  end
  else if kindc = 2 then begin
    let last = Support.Itab.find_default c.ind_last ~default:(-1) src in
    Support.Itab.set c.ind_last src dst;
    last <> dst
  end
  else false

let[@inline] on_branch_coded c ~src ~dst ~kindc ~taken =
  let mispredicted = predict c ~src ~dst ~kindc ~taken in
  if taken then begin
    c.ring_src.(c.head) <- src;
    c.ring_dst.(c.head) <- dst;
    c.ring_mis.(c.head) <- mispredicted;
    c.head <- (c.head + 1) mod c.depth;
    if c.filled < c.depth then c.filled <- c.filled + 1;
    c.since_sample <- c.since_sample + 1;
    if c.since_sample >= c.period then begin
      c.since_sample <- 0;
      sample c
    end
  end

(* Direct tape drain: only branch events matter to the LBR. *)
let consume c (tape : Exec.Event.tape) =
  let tags = tape.Exec.Event.tags
  and a = tape.Exec.Event.a
  and b = tape.Exec.Event.b
  and m = tape.Exec.Event.c in
  for i = 0 to tape.Exec.Event.len - 1 do
    if Bytes.unsafe_get tags i = Exec.Event.tag_branch then begin
      let meta = Array.unsafe_get m i in
      on_branch_coded c ~src:(Array.unsafe_get a i) ~dst:(Array.unsafe_get b i)
        ~kindc:(meta lsr 1)
        ~taken:(meta land 1 = 1)
    end
  done

let collector config profile =
  let c = collector_state config profile in
  {
    Exec.Event.on_fetch = (fun _ _ _ -> ());
    on_branch =
      (fun ~src ~dst ~kind ~taken ->
        on_branch_coded c ~src ~dst ~kindc:(Exec.Event.kind_to_int kind) ~taken);
    on_dmiss = (fun ~src:_ -> ());
    on_request = (fun _ -> ());
  }

let raw_bytes config profile = profile.num_samples * ((24 * config.buffer_depth) + 64)

let distinct_edges profile =
  Support.Itab.length profile.branches + Support.Itab.length profile.ranges

let branch_total profile = pair_total profile.branches

let range_total profile = pair_total profile.ranges

let mispredict_total profile = pair_total profile.mispredicts

let mispredict_count profile ~src ~dst = find_pair profile.mispredicts ~src ~dst

let mispredict_rate profile ~src ~dst =
  match find_pair profile.branches ~src ~dst with
  | 0 -> 0.0
  | n -> float_of_int (mispredict_count profile ~src ~dst) /. float_of_int n

let merge_table dst src = Support.Itab.iter (fun k v -> Support.Itab.add dst k v) src

let merge a b =
  merge_table a.branches b.branches;
  merge_table a.ranges b.ranges;
  merge_table a.mispredicts b.mispredicts;
  a.num_samples <- a.num_samples + b.num_samples;
  a.num_records <- a.num_records + b.num_records

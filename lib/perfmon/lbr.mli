(** Last Branch Record sampling (paper §3.3; Linux perf stand-in).

    Intel LBR hardware keeps the last 32 retired taken branches as
    (source, destination) address pairs. Sampling captures this buffer
    every [period] taken branches. Two aggregates are kept:

    - {b branch counts}: how often each (src, dst) pair was observed —
      the taken edges of the dynamic CFG;
    - {b range counts}: for consecutive records, execution between one
      record's destination and the next record's source was sequential;
      these [(range_start, range_end)] pairs recover fall-through
      frequencies without disassembly.

    The aggregation is exactly what [perf script ++ create_llvm_prof]
    would produce and is all Phase 3 consumes.

    Tables are flat {!Support.Itab} maps over packed
    [(src lsl 31) lor dst] keys ({!Support.Packed}) — one immediate int
    per pair, so steady-state collection allocates nothing. Use
    {!iter_pairs}/{!find_pair}/{!add_pair} to consume or build them. *)

type config = {
  period : int;  (** Taken branches between samples. *)
  buffer_depth : int;  (** LBR depth (32 on Intel). *)
}

val default_config : config

type profile = {
  branches : Support.Itab.t;  (** packed (src, dst) -> count *)
  ranges : Support.Itab.t;  (** packed (start, end) -> count *)
  mispredicts : Support.Itab.t;
      (** packed (src, dst) -> count of records whose MISPRED bit was
          set. Hardware LBR stores one mispredict bit per record; the
          collector models it with a 2-bit saturating direction
          predictor per conditional-branch address and a last-target
          predictor per indirect-jump address. Unconditional direct
          transfers never mispredict. *)
  mutable num_samples : int;
  mutable num_records : int;
}

val create_profile : unit -> profile

(** {1 Pair-table helpers}

    The shared vocabulary for every profile consumer: address pairs in,
    packed keys handled internally. *)

val add_pair : Support.Itab.t -> src:int -> dst:int -> int -> unit
(** [add_pair tbl ~src ~dst n] bumps the pair's count by [n]. Raises
    [Invalid_argument] when an address exceeds {!Support.Packed.max_addr}. *)

val find_pair : Support.Itab.t -> src:int -> dst:int -> int
(** The pair's count, or [0] when absent (or unpackable). *)

val iter_pairs : (src:int -> dst:int -> int -> unit) -> Support.Itab.t -> unit
(** [iter_pairs f tbl] applies [f ~src ~dst count] to every pair. *)

val pair_total : Support.Itab.t -> int
(** Sum of all counts in a pair table. *)

(** {1 Collection} *)

type collector
(** Mutable collector state: the LBR ring, the predictor tables and the
    target profile. *)

val collector_state : config -> profile -> collector

val consume : collector -> Exec.Event.tape -> unit
(** [consume c tape] drains a flat event tape directly — the fast path
    to pair with {!Exec.Interp.run_tape}. Observationally identical to
    feeding the same events through [collector config profile]. *)

val collector : config -> profile -> Exec.Event.sink
(** [collector config profile] is a closure sink over a fresh
    {!collector_state} (the adapter for low-rate compositions). *)

(** {1 Aggregates} *)

(** [raw_bytes p] models the on-disk [perf.data] size: every sample
    carries the full LBR buffer (24 B per record + header). *)
val raw_bytes : config -> profile -> int

(** [distinct_edges p] counts distinct aggregated pairs (memory driver
    for profile conversion). *)
val distinct_edges : profile -> int

(** [branch_total p] sums the counts of all aggregated taken-branch
    records (the denominator of profile-mismatch rates). *)
val branch_total : profile -> int

(** [range_total p] sums the counts of all sequential-range records. *)
val range_total : profile -> int

(** [mispredict_total p] sums all mispredicted records. *)
val mispredict_total : profile -> int

(** [mispredict_count p ~src ~dst] is the number of sampled records of
    the (src, dst) pair whose MISPRED bit was set (0 when unseen). *)
val mispredict_count : profile -> src:int -> dst:int -> int

(** [mispredict_rate p ~src ~dst] is the per-branch mispredict rate:
    mispredicted records of the pair over all its records. 0 for pairs
    never sampled (annotation views render those as clean, which is the
    perf-annotate convention). *)
val mispredict_rate : profile -> src:int -> dst:int -> float

(** [merge a b] accumulates profile [b] into [a] (multi-shard collection,
    as production profiles arrive from many machines). *)
val merge : profile -> profile -> unit

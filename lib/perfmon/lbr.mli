(** Last Branch Record sampling (paper §3.3; Linux perf stand-in).

    Intel LBR hardware keeps the last 32 retired taken branches as
    (source, destination) address pairs. Sampling captures this buffer
    every [period] taken branches. Two aggregates are kept:

    - {b branch counts}: how often each (src, dst) pair was observed —
      the taken edges of the dynamic CFG;
    - {b range counts}: for consecutive records, execution between one
      record's destination and the next record's source was sequential;
      these [(range_start, range_end)] pairs recover fall-through
      frequencies without disassembly.

    The aggregation is exactly what [perf script ++ create_llvm_prof]
    would produce and is all Phase 3 consumes. *)

type config = {
  period : int;  (** Taken branches between samples. *)
  buffer_depth : int;  (** LBR depth (32 on Intel). *)
}

val default_config : config

type profile = {
  branches : (int * int, int) Hashtbl.t;  (** (src, dst) -> count *)
  ranges : (int * int, int) Hashtbl.t;  (** (start, end) -> count *)
  mispredicts : (int * int, int) Hashtbl.t;
      (** (src, dst) -> count of records whose MISPRED bit was set.
          Hardware LBR stores one mispredict bit per record; the
          collector models it with a 2-bit saturating direction
          predictor per conditional-branch address and a last-target
          predictor per indirect-jump address. Unconditional direct
          transfers never mispredict. *)
  mutable num_samples : int;
  mutable num_records : int;
}

val create_profile : unit -> profile

(** [collector config profile] is a sink that samples into [profile]. *)
val collector : config -> profile -> Exec.Event.sink

(** [raw_bytes p] models the on-disk [perf.data] size: every sample
    carries the full LBR buffer (24 B per record + header). *)
val raw_bytes : config -> profile -> int

(** [distinct_edges p] counts distinct aggregated pairs (memory driver
    for profile conversion). *)
val distinct_edges : profile -> int

(** [branch_total p] sums the counts of all aggregated taken-branch
    records (the denominator of profile-mismatch rates). *)
val branch_total : profile -> int

(** [range_total p] sums the counts of all sequential-range records. *)
val range_total : profile -> int

(** [mispredict_total p] sums all mispredicted records. *)
val mispredict_total : profile -> int

(** [mispredict_count p ~src ~dst] is the number of sampled records of
    the (src, dst) pair whose MISPRED bit was set (0 when unseen). *)
val mispredict_count : profile -> src:int -> dst:int -> int

(** [mispredict_rate p ~src ~dst] is the per-branch mispredict rate:
    mispredicted records of the pair over all its records. 0 for pairs
    never sampled (annotation views render those as clean, which is the
    perf-annotate convention). *)
val mispredict_rate : profile -> src:int -> dst:int -> float

(** [merge a b] accumulates profile [b] into [a] (multi-shard collection,
    as production profiles arrive from many machines). *)
val merge : profile -> profile -> unit

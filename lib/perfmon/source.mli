(** Where a relink profile comes from.

    [Lbr] is the hardware last-branch-record path the paper assumes:
    taken-branch records with direction and mispredict bits. [Sampled]
    is the portable pprof-style fallback — periodic software stack
    samples with no branch bits at all — for clouds that expose no
    performance counters (the Go PGO / AutoFDO regime). *)

type t = Lbr | Sampled

val to_string : t -> string

(** Case-sensitive; accepts exactly the strings [to_string] produces. *)
val of_string : string -> t option

(** All sources, in declaration order — for CLI enums and help text. *)
val all : t list

val equal : t -> t -> bool

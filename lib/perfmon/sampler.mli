(** Deterministic pprof-style software sampling profiler.

    An [Exec.Event.sink] that takes periodic stack samples on the
    simulated instruction clock: each sample records the leaf PC of the
    currently executing fetch run plus a call-stack walk of the
    interpreter's frame state, reconstructed from Call/Ret branch
    events. The sampling period is jittered per-sample from a seeded
    hash so tight loops cannot alias with the sampler.

    Unlike {!Lbr}, the resulting profile carries no branch-direction,
    edge, or mispredict information — only block residency and call
    arcs. CFG edge weights must be synthesized from it (see
    [Propeller.Autofdo]), which is exactly the fidelity gap this module
    exists to let us measure. *)

type config = {
  period : int;  (** mean instructions between samples *)
  jitter_pct : int;  (** each gap drawn from period +/- jitter_pct% *)
  seed : int;  (** jitter stream seed; same seed => same sample points *)
  max_frames : int;  (** stack-walk depth cap per sample (leaf included) *)
}

val default_config : config

type profile = {
  leaves : (int, int) Hashtbl.t;  (** leaf PC -> sample count *)
  arcs : (int * int, int) Hashtbl.t;
      (** (call-site branch source, callee entry address) -> number of
          samples whose stack walk crossed that call frame *)
  mutable num_samples : int;
  mutable num_frames : int;  (** total frames recorded, leaves included *)
}

val create_profile : unit -> profile

(** Event sink that accumulates into [profile]. The shadow call stack
    resets at every request boundary: an interpreter step-limit abort
    unwinds without emitting Ret events, and samples must never blame
    frames from a previous request. *)
val collector : config -> profile -> Exec.Event.sink

(** Simulated size of the encoded sample file (perf.data analogue). *)
val raw_bytes : profile -> int

val distinct_leaves : profile -> int

(** Sum of all leaf sample counts (= num_samples). *)
val leaf_total : profile -> int

(** Sum of all call-arc crossing counts. *)
val arc_total : profile -> int

(** Accumulate [b] into [a]. *)
val merge : profile -> profile -> unit

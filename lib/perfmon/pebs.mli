(** PEBS-style precise data-miss sampling.

    The paper's §3.5 sketches profile-guided post-link prefetch
    insertion driven by cache-miss profiles; those profiles come from
    precise-event sampling of load misses (PEBS on Intel). This
    collector samples every [period]-th uncovered delinquent-load miss
    and records the retiring instruction address. *)

type config = { period : int }

val default_config : config

type profile = {
  misses : Support.Itab.t;  (** Load end-address -> sample count. *)
  mutable num_samples : int;
}

val create_profile : unit -> profile

type collector
(** Mutable sampling state over a target profile. *)

val collector_state : config -> profile -> collector

val consume : collector -> Exec.Event.tape -> unit
(** [consume c tape] drains a flat event tape directly (pairs with
    {!Exec.Interp.run_tape}); identical observations to the closure
    sink. *)

(** [collector config profile] is a sink sampling into [profile]. *)
val collector : config -> profile -> Exec.Event.sink

(** [total p] sums sample counts. *)
val total : profile -> int

(** [merge a b] accumulates [b] into [a]. *)
val merge : profile -> profile -> unit

type config = { period : int; jitter_pct : int; seed : int; max_frames : int }

let default_config = { period = 13; jitter_pct = 25; seed = 0; max_frames = 16 }

type profile = {
  leaves : (int, int) Hashtbl.t;
  arcs : (int * int, int) Hashtbl.t;
  mutable num_samples : int;
  mutable num_frames : int;
}

let create_profile () =
  { leaves = Hashtbl.create 4096; arcs = Hashtbl.create 1024; num_samples = 0; num_frames = 0 }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> Hashtbl.replace tbl key (c + 1)
  | None -> Hashtbl.add tbl key 1

(* Stream salt: keeps the jitter hashes disjoint from every other
   stateless-hash consumer keyed on small integers. *)
let jitter_salt = 0x53414d50 (* "SAMP" *)

(* Gap before sample [k], drawn uniformly from
   [period - j, period + j] where j = period * jitter_pct / 100.
   Pure in (seed, k): the sample schedule is a function of the config
   alone, never of callback arrival order. *)
let gap config k =
  let j = config.period * config.jitter_pct / 100 in
  let lo = config.period - j in
  let u = Support.Rng.hash_float (config.seed lxor jitter_salt) k in
  max 1 (lo + int_of_float (u *. float_of_int ((2 * j) + 1)))

let collector config profile =
  if config.period <= 0 then invalid_arg "Sampler.collector: period must be positive";
  if config.max_frames <= 0 then invalid_arg "Sampler.collector: max_frames must be positive";
  (* Shadow call stack of (call-site source, callee entry) frames,
     newest first, mirrored from the interpreter's Call/Ret events. *)
  let stack = ref [] in
  let clock = ref 0 in
  let sample_idx = ref 0 in
  let deadline = ref (gap config 0) in
  let sample leaf =
    profile.num_samples <- profile.num_samples + 1;
    profile.num_frames <- profile.num_frames + 1;
    bump profile.leaves leaf;
    let rec walk frames n =
      match frames with
      | [] -> ()
      | _ when n >= config.max_frames -> ()
      | frame :: rest ->
        profile.num_frames <- profile.num_frames + 1;
        bump profile.arcs frame;
        walk rest (n + 1)
    in
    walk !stack 1
  in
  {
    Exec.Event.on_fetch =
      (fun addr _len insts ->
        clock := !clock + insts;
        (* A long fetch run can cross several deadlines; attribute every
           one to the run's start PC (the sampler cannot see inside a
           straight-line run, just like a real timer interrupt lands on
           whatever instruction retires next). *)
        while !clock >= !deadline do
          sample addr;
          incr sample_idx;
          deadline := !deadline + gap config !sample_idx
        done);
    on_branch =
      (fun ~src ~dst ~kind ~taken ->
        match kind with
        | Exec.Event.Call when taken -> stack := (src, dst) :: !stack
        | Exec.Event.Ret -> (
          (* The per-request root return has no matching Call frame. *)
          match !stack with [] -> () | _ :: rest -> stack := rest)
        | _ -> ());
    on_dmiss = (fun ~src:_ -> ());
    on_request =
      (fun _ ->
        (* A step-limit abort (Out_of_steps) unwinds nested calls without
           emitting Ret events; requests are independent, so any frames
           still on the shadow stack here are stale. *)
        stack := []);
  }

(* pprof-style encoding estimate: a location id + count per leaf entry,
   a frame word per recorded frame. *)
let raw_bytes profile = (profile.num_samples * 16) + (profile.num_frames * 8)

let distinct_leaves profile = Hashtbl.length profile.leaves

let table_total tbl = Hashtbl.fold (fun _ n acc -> acc + n) tbl 0

let leaf_total profile = table_total profile.leaves

let arc_total profile = table_total profile.arcs

let merge_table dst src =
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt dst k with
      | Some c -> Hashtbl.replace dst k (c + v)
      | None -> Hashtbl.add dst k v)
    src

let merge a b =
  merge_table a.leaves b.leaves;
  merge_table a.arcs b.arcs;
  a.num_samples <- a.num_samples + b.num_samples;
  a.num_frames <- a.num_frames + b.num_frames
